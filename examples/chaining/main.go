// Command chaining demonstrates StorM's service bundles (Section II-B): a
// tenant concerned about both data security and audit logging chains a
// storage monitor and an encryption middle-box on one volume. The monitor
// records every I/O access, then the data passes through the encryption
// box before reaching the disk.
package main

import (
	"bytes"
	"fmt"
	"log"

	storm "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cloud, err := storm.NewCloud(storm.CloudConfig{})
	if err != nil {
		return err
	}
	defer cloud.Close()
	platform := storm.NewPlatform(cloud)

	if _, err := cloud.LaunchVM("vm1", ""); err != nil {
		return err
	}
	vol, err := cloud.Volumes.Create("audited-data", 64<<20)
	if err != nil {
		return err
	}

	pol := &storm.Policy{
		Tenant: "acme",
		MiddleBoxes: []storm.MiddleBoxSpec{
			{
				Name:   "mon1",
				Type:   storm.TypeMonitor,
				Params: map[string]string{"watch": "/finance"},
			},
			{
				Name: "enc1",
				Type: storm.TypeEncryption,
				Params: map[string]string{
					"key": "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
				},
			},
		},
		Volumes: []storm.VolumeBinding{{
			VM:     "vm1",
			Volume: vol.ID,
			// Order matters: the monitor sees plaintext I/O, then the
			// encryption box transforms it on its way to disk.
			Chain: []string{"mon1", "enc1"},
		}},
	}
	dep, err := platform.Apply(pol)
	if err != nil {
		return err
	}
	fmt.Printf("chained %d middle-boxes for tenant %q\n", len(dep.MBs), dep.Tenant)

	// The tenant formats the volume THROUGH the chain; the monitor learns
	// the file-system geometry from the intercepted superblock writes.
	av := dep.Volumes["vm1/"+vol.ID]
	fs, err := storm.Mkfs(av.Device, storm.FSOptions{})
	if err != nil {
		return err
	}
	if err := fs.MkdirAll("/finance"); err != nil {
		return err
	}
	secret := []byte("Q3 acquisition target: Initech")
	if err := fs.WriteFile("/finance/plan.txt", secret); err != nil {
		return err
	}
	got, err := fs.ReadFile("/finance/plan.txt")
	if err != nil {
		return err
	}
	fmt.Printf("VM reads back through the chain: %q\n", got)

	// The monitor (first box) saw the plaintext-level file operations.
	mon := dep.Monitors["mon1"]
	fmt.Printf("monitor alerts on /finance (%d):\n", len(mon.Alerts()))
	for _, a := range mon.Alerts() {
		fmt.Printf("  %s\n", a.Event.String())
	}

	// The disk (after the encryption box) holds ciphertext only.
	raw := vol.Device()
	buf := make([]byte, 4096)
	leaked := false
	for lba := uint64(0); lba < raw.Blocks(); lba += 8 {
		if err := raw.ReadAt(buf, lba); err != nil {
			return err
		}
		if bytes.Contains(buf, secret) {
			leaked = true
			break
		}
	}
	if leaked {
		return fmt.Errorf("plaintext found on disk despite encryption middle-box")
	}
	fmt.Println("full-disk scan: no plaintext at rest (encryption box is last in the chain)")
	return platform.Teardown("acme")
}
