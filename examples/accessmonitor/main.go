// Command accessmonitor demonstrates the storage access monitor case study
// (Section V-B1): a tenant deploys a monitoring middle-box for a volume,
// marks sensitive directories, and the middle-box reconstructs file-level
// operations from raw block traffic — including the installation footprint
// of a Linux backdoor replayed inside the (assumed compromised) VM.
package main

import (
	"bytes"
	"fmt"
	"log"

	storm "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cloud, err := storm.NewCloud(storm.CloudConfig{})
	if err != nil {
		return err
	}
	defer cloud.Close()
	platform := storm.NewPlatform(cloud)

	vm, err := cloud.LaunchVM("vm1", "")
	if err != nil {
		return err
	}
	vol, err := cloud.Volumes.Create("rootfs", 128<<20)
	if err != nil {
		return err
	}

	// The tenant formats the volume over the legacy path and installs a
	// little system tree.
	dev, err := cloud.AttachVolume(vm, vol.ID)
	if err != nil {
		return err
	}
	fs, err := storm.Mkfs(dev, storm.FSOptions{})
	if err != nil {
		return err
	}
	for _, d := range []string{"/etc/init.d", "/etc/rc3.d", "/bin", "/usr/bin/bsd-port"} {
		if err := fs.MkdirAll(d); err != nil {
			return err
		}
	}
	if err := fs.WriteFile("/bin/netstat", bytes.Repeat([]byte{0x7F, 'E', 'L', 'F'}, 512)); err != nil {
		return err
	}
	_ = dev.Close()
	if err := cloud.DetachVolume(vol.ID); err != nil {
		return err
	}

	// Deploy the monitor and re-attach the volume through it. The watch
	// rules mark /etc and /bin as sensitive.
	pol := &storm.Policy{
		Tenant: "acme",
		MiddleBoxes: []storm.MiddleBoxSpec{{
			Name:   "mon1",
			Type:   storm.TypeMonitor,
			Params: map[string]string{"watch": "/etc,/bin"},
		}},
		Volumes: []storm.VolumeBinding{{VM: "vm1", Volume: vol.ID, Chain: []string{"mon1"}}},
	}
	dep, err := platform.Apply(pol)
	if err != nil {
		return err
	}
	mon := dep.Monitors["mon1"]
	mon.OnAlert(func(a storm.Alert) {
		fmt.Printf("ALERT [%s]  %s\n", a.Rule, a.Event.String())
	})

	// The "malware" (running in the compromised VM) installs itself.
	av := dep.Volumes["vm1/"+vol.ID]
	fs2, err := storm.Mount(av.Device)
	if err != nil {
		return err
	}
	fmt.Println("-- replaying backdoor installation inside the tenant VM --")
	if err := fs2.WriteFile("/etc/init.d/DbSecuritySpt", []byte("#!/bin/bash\n/tmp/malware\n")); err != nil {
		return err
	}
	if err := fs2.Symlink("/etc/init.d/DbSecuritySpt", "/etc/rc3.d/S97DbSecuritySpt"); err != nil {
		return err
	}
	if err := fs2.WriteFile("/usr/bin/bsd-port/getty", bytes.Repeat([]byte{0xEB, 0xFE}, 2048)); err != nil {
		return err
	}
	if err := fs2.WriteFile("/bin/netstat", bytes.Repeat([]byte{0xEB, 0xFE}, 2048)); err != nil {
		return err
	}

	fmt.Printf("\n-- monitor access log (%d events) --\n", len(mon.Log()))
	for _, e := range mon.Log() {
		if e.Type.String() == "create" || e.Type.String() == "write" {
			fmt.Println("  ", e.String())
		}
	}
	fmt.Printf("\n%d alerts raised on watched paths\n", len(mon.Alerts()))
	return platform.Teardown("acme")
}
