// Command objectstorage demonstrates the paper's Section II claim that
// StorM "is equally applicable to other storage systems such as object
// storage": a Swift-like object gateway performs all its I/O through a
// StorM-attached volume, so every PUT and GET transparently traverses the
// tenant's monitoring + encryption middle-box chain.
package main

import (
	"bytes"
	"fmt"
	"log"

	storm "repro"
	"repro/internal/objstore"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cloud, err := storm.NewCloud(storm.CloudConfig{})
	if err != nil {
		return err
	}
	defer cloud.Close()
	platform := storm.NewPlatform(cloud)

	if _, err := cloud.LaunchVM("gateway-vm", ""); err != nil {
		return err
	}
	vol, err := cloud.Volumes.Create("object-pool", 64<<20)
	if err != nil {
		return err
	}
	pol := &storm.Policy{
		Tenant: "acme",
		MiddleBoxes: []storm.MiddleBoxSpec{
			{Name: "mon", Type: storm.TypeMonitor, Params: map[string]string{"watch": "/objects"}},
			{Name: "enc", Type: storm.TypeEncryption, Params: map[string]string{
				"key": "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
			}},
		},
		Volumes: []storm.VolumeBinding{{VM: "gateway-vm", Volume: vol.ID, Chain: []string{"mon", "enc"}}},
	}
	dep, err := platform.Apply(pol)
	if err != nil {
		return err
	}

	// The object gateway formats its pool volume through the chain and
	// serves buckets/objects from it.
	av := dep.Volumes["gateway-vm/"+vol.ID]
	fs, err := storm.Mkfs(av.Device, storm.FSOptions{})
	if err != nil {
		return err
	}
	store, err := objstore.New(fs)
	if err != nil {
		return err
	}
	if err := store.CreateBucket("invoices"); err != nil {
		return err
	}
	payload := []byte("INVOICE #4711 -- total: $1,337.00")
	etag, err := store.Put("invoices", "2016/q2/4711.txt", payload)
	if err != nil {
		return err
	}
	fmt.Printf("PUT invoices/2016/q2/4711.txt  etag=%s…\n", etag[:16])

	got, _, err := store.Get("invoices", "2016/q2/4711.txt")
	if err != nil {
		return err
	}
	fmt.Printf("GET returns: %q\n", got)
	objs, err := store.List("invoices", "2016/")
	if err != nil {
		return err
	}
	for _, o := range objs {
		fmt.Printf("LIST: %-22s %4d bytes  etag=%s…\n", o.Key, o.Size, o.ETag[:16])
	}

	// The monitor (first box in the chain) observed the object write as a
	// file-level operation.
	var monitored bool
	for _, a := range dep.Monitors["mon"].Alerts() {
		if bytes.Contains([]byte(a.Event.Path), []byte("4711")) {
			fmt.Printf("monitor saw: %s\n", a.Event.String())
			monitored = true
			break
		}
	}
	if !monitored {
		return fmt.Errorf("monitor missed the object write")
	}

	// And the pool volume holds ciphertext only.
	raw := vol.Device()
	buf := make([]byte, 4096)
	for lba := uint64(0); lba < raw.Blocks(); lba += 8 {
		if err := raw.ReadAt(buf, lba); err != nil {
			return err
		}
		if bytes.Contains(buf, payload) {
			return fmt.Errorf("plaintext object data at rest")
		}
	}
	fmt.Println("object data is encrypted at rest — the chain applies to object storage unchanged")
	return platform.Teardown("acme")
}
