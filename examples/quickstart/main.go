// Command quickstart boots the simulated cloud, deploys a tenant-defined
// encryption middle-box from a JSON policy, attaches a volume through it,
// and shows that the data is transparently encrypted at rest — the minimal
// end-to-end StorM session.
package main

import (
	"bytes"
	"fmt"
	"log"

	storm "repro"
)

const policyJSON = `{
  "tenant": "acme",
  "middleboxes": [
    {
      "name": "enc1",
      "type": "encryption",
      "mode": "active",
      "params": {
        "key": "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
      }
    }
  ],
  "volumes": [
    {"vm": "vm1", "volume": "vol-0001", "chain": ["enc1"]}
  ]
}`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Boot the Figure 1 topology: compute hosts, a storage host, the two
	// isolated networks, and the StorM control plane.
	cloud, err := storm.NewCloud(storm.CloudConfig{ComputeHosts: 4})
	if err != nil {
		return err
	}
	defer cloud.Close()
	platform := storm.NewPlatform(cloud)

	// Tenant resources: one VM, one 64 MiB volume.
	if _, err := cloud.LaunchVM("vm1", ""); err != nil {
		return err
	}
	vol, err := cloud.Volumes.Create("acme-data", 64<<20)
	if err != nil {
		return err
	}
	fmt.Printf("created volume %s (IQN %s)\n", vol.ID, vol.IQN)

	// Submit the tenant policy: the platform provisions the encryption
	// middle-box, creates the gateway pair, installs the forwarding chain,
	// and attaches the volume through it.
	pol, err := storm.ParsePolicy([]byte(policyJSON))
	if err != nil {
		return err
	}
	dep, err := platform.Apply(pol)
	if err != nil {
		return err
	}
	fmt.Printf("deployed policy for tenant %q: %d middle-box(es)\n", dep.Tenant, len(dep.MBs))

	// The VM sees an ordinary block device; every byte it writes crosses
	// the middle-box chain.
	av := dep.Volumes["vm1/"+vol.ID]
	secret := []byte("attack at dawn -- tenant secret")
	buf := make([]byte, 512)
	copy(buf, secret)
	if err := av.Device.WriteAt(buf, 0); err != nil {
		return err
	}
	got := make([]byte, 512)
	if err := av.Device.ReadAt(got, 0); err != nil {
		return err
	}
	fmt.Printf("VM reads back: %q\n", bytes.TrimRight(got, "\x00"))

	// Provider-side view of the same block: ciphertext.
	raw := make([]byte, 512)
	if err := vol.Device().ReadAt(raw, 0); err != nil {
		return err
	}
	if bytes.Contains(raw, secret) {
		return fmt.Errorf("plaintext leaked to the storage host")
	}
	fmt.Printf("storage host sees:  %x... (ciphertext)\n", raw[:24])

	// Connection attribution: the platform knows which VM owns the flow.
	if b, ok := cloud.Plane.Attributions().ByIQN(vol.IQN); ok {
		fmt.Printf("attribution: %s\n", b)
	}
	return platform.Teardown("acme")
}
