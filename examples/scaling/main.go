// Command scaling walks through StorM's scale-out orchestration: a tenant
// declares an encryption middle-box as an elastic instance group
// (minInstances/maxInstances), the platform seeds the group and hashes
// flows across its members with stable flow affinity, the group grows
// under load without disturbing established connections, and it shrinks
// by draining — a member stops receiving new flows, quiesces (no
// sessions, empty journal), and only then is torn down, so no
// acknowledged write is ever lost.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	storm "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cloud, err := storm.NewCloud(storm.CloudConfig{})
	if err != nil {
		return err
	}
	defer cloud.Close()
	platform := storm.NewPlatform(cloud)

	if _, err := cloud.LaunchVM("vm1", ""); err != nil {
		return err
	}
	vol, err := cloud.Volumes.Create("elastic-data", 64<<20)
	if err != nil {
		return err
	}

	// The group starts at two members and may grow to four. Only stateless
	// services (encryption, forward) may scale: each flow is a TCP splice
	// through exactly one member, and the cipher depends only on key and
	// sector, so members are interchangeable for *new* flows.
	pol := &storm.Policy{
		Tenant: "acme",
		MiddleBoxes: []storm.MiddleBoxSpec{{
			Name:         "enc1",
			Type:         storm.TypeEncryption,
			MinInstances: 2,
			MaxInstances: 4,
			Params: map[string]string{
				"key":         "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
				"copyThreads": "1",
			},
		}},
		Volumes: []storm.VolumeBinding{{
			VM: "vm1", Volume: vol.ID, Chain: []string{"enc1"},
		}},
	}
	dep, err := platform.Apply(pol)
	if err != nil {
		return err
	}
	defer platform.Teardown("acme")

	show := func(when string) {
		fmt.Printf("%s:\n", when)
		for _, ms := range dep.GroupStatus("enc1") {
			fmt.Printf("  %-14s host=%-9s sessions=%d draining=%v\n",
				ms.Name, ms.Host, ms.Sessions, ms.Draining)
		}
	}
	show("group after Apply (minInstances=2)")

	// The attached volume's flow was hashed onto one member at dial time.
	av := dep.Volumes["vm1/"+vol.ID]
	want := bytes.Repeat([]byte("tenant-data!"), 1024)[:8192]
	if err := av.Device.WriteAt(want, 0); err != nil {
		return err
	}

	// Scale out. The established flow keeps its member (flow affinity) —
	// only new flows see the added capacity.
	if err := dep.Scale("enc1", 3); err != nil {
		return err
	}
	show("after Scale to 3 (established flow untouched)")

	// Scale in with zero loss: drain a member that holds no sessions.
	victim := ""
	for _, ms := range dep.GroupStatus("enc1") {
		if ms.Sessions == 0 {
			victim = ms.Name
			break
		}
	}
	if err := dep.BeginDrain("enc1", victim); err != nil {
		return err
	}
	for {
		st, err := dep.DrainStatus("enc1", victim)
		if err != nil {
			return err
		}
		if st.Sessions == 0 && st.JournalBytes == 0 && st.JournalPending == 0 {
			break // quiesced: nothing acknowledged is still in flight
		}
		time.Sleep(time.Millisecond)
	}
	if err := dep.FinishDrain("enc1", victim); err != nil {
		return err
	}
	show(fmt.Sprintf("after draining %s", victim))

	// The data written before the scale events is intact.
	got := make([]byte, len(want))
	if err := av.Device.ReadAt(got, 0); err != nil {
		return err
	}
	fmt.Printf("data intact across scale-out and drain: %v\n", bytes.Equal(got, want))

	// In production the decisions above come from the orchestrator: it
	// watches each member's copy-path utilization (relay busy-time over
	// copy threads) and scales between the policy's bounds on its own.
	orch := storm.NewOrchestrator(storm.OrchestratorConfig{
		Platform: platform,
		Interval: 50 * time.Millisecond,
	})
	if err := orch.Manage("acme", "enc1"); err != nil {
		return err
	}
	orch.Start()
	time.Sleep(200 * time.Millisecond)
	orch.Stop()
	fmt.Printf("orchestrator held the idle group at %d member(s)\n",
		len(dep.Group("enc1")))
	return nil
}
