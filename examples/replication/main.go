// Command replication demonstrates the data reliability case study
// (Section V-B3): a tenant-defined replica dispatch middle-box keeps three
// copies of a database volume, stripes reads across them, and survives the
// loss of a replica mid-run without interrupting the database.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	storm "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cloud, err := storm.NewCloud(storm.CloudConfig{
		// A bounded per-volume device queue models single spindles, the
		// regime where read striping pays off.
		DiskRead:        storm.DiskModel{PerRequest: 1500 * time.Microsecond},
		DiskWrite:       storm.DiskModel{PerRequest: 150 * time.Microsecond},
		DiskConcurrency: 4,
	})
	if err != nil {
		return err
	}
	defer cloud.Close()
	platform := storm.NewPlatform(cloud)

	if _, err := cloud.LaunchVM("mysql-vm", ""); err != nil {
		return err
	}
	vol, err := cloud.Volumes.Create("database", 64<<20)
	if err != nil {
		return err
	}

	pol := &storm.Policy{
		Tenant: "acme",
		MiddleBoxes: []storm.MiddleBoxSpec{{
			Name:   "rep1",
			Type:   storm.TypeReplication,
			Params: map[string]string{"replicas": "3"},
		}},
		Volumes: []storm.VolumeBinding{{VM: "mysql-vm", Volume: vol.ID, Chain: []string{"rep1"}}},
	}
	dep, err := platform.Apply(pol)
	if err != nil {
		return err
	}
	fmt.Printf("replication middle-box deployed: %d backup volume(s) attached\n",
		len(dep.ReplicaVolumes["rep1"]))

	// The database server VM runs the OLTP engine on its (replicated)
	// volume; four client VMs' worth of threads hammer it.
	db, err := storm.OpenDB(dep.Volumes["mysql-vm/"+vol.ID].Device, 4096)
	if err != nil {
		return err
	}

	// Fail one replica at the run midpoint, like the paper's injected
	// error at the 60th second.
	go func() {
		time.Sleep(time.Second)
		fmt.Println(">>> injecting replica failure (closing its iSCSI connection)")
		dep.ReplicaVolumes["rep1"][0].InjectFault(errors.New("iscsi connection closed"))
	}()

	res, err := storm.RunOLTP(storm.OLTPConfig{
		DB:       db,
		Rows:     500,
		Threads:  24, // 4 client VMs x 6 requesting threads
		Duration: 2 * time.Second,
		Bucket:   200 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	fmt.Println("TPS timeline:")
	for i, v := range res.Timeline {
		marker := ""
		if i == 5 {
			marker = "  <- replica fails here"
		}
		fmt.Printf("  t=%3.1fs  %6.0f TPS%s\n", float64(i)*0.2, v, marker)
	}
	fmt.Printf("total: %s\n", res)

	disp := dep.Dispatcher("rep1")
	for _, s := range disp.States() {
		fmt.Printf("replica %-10s alive=%-5v reads=%-6d writes=%-6d err=%v\n",
			s.Name, s.Alive, s.Reads, s.Writes, s.LastErr)
	}
	if res.Errors > 0 {
		fmt.Printf("WARNING: %d transactions failed during failover\n", res.Errors)
	} else {
		fmt.Println("no transaction failed during the replica failover")
	}
	return platform.Teardown("acme")
}
