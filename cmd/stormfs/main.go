// Command stormfs demonstrates the semantics reconstruction pipeline in
// isolation (Section III-C): it formats an in-memory volume with the
// ext-style file system, dumps the initial high-level system view (the
// dumpe2fs analogue), replays a set of tenant file operations through a
// monitored device, and prints the reconstructed block-level access log —
// the Table I / Table II demonstration.
//
// Usage:
//
//	stormfs            # the paper's synthetic scenario
//	stormfs -view      # also print the initial system view
//	stormfs -max 50    # cap the printed log
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro/internal/blockdev"
	"repro/internal/extfs"
	"repro/internal/services/monitor"
)

func main() {
	var (
		showView = flag.Bool("view", false, "print the initial system view")
		maxRows  = flag.Int("max", 80, "maximum log rows to print (0 = all)")
	)
	flag.Parse()
	if err := run(*showView, *maxRows); err != nil {
		fmt.Fprintln(os.Stderr, "stormfs:", err)
		os.Exit(1)
	}
}

func run(showView bool, maxRows int) error {
	disk, err := blockdev.NewMemDisk(512, 262144) // 128 MiB
	if err != nil {
		return err
	}

	// Build the Section V-B1 layout: /mnt/box/name0..name9 each holding
	// 1.img..10.img.
	fs, err := extfs.Mkfs(disk, extfs.Options{})
	if err != nil {
		return err
	}
	if err := fs.MkdirAll("/mnt/box"); err != nil {
		return err
	}
	for d := 0; d < 10; d++ {
		dir := fmt.Sprintf("/mnt/box/name%d", d)
		if err := fs.Mkdir(dir); err != nil {
			return err
		}
		for f := 1; f <= 10; f++ {
			if err := fs.WriteFile(fmt.Sprintf("%s/%d.img", dir, f),
				bytes.Repeat([]byte{byte(f)}, 4096)); err != nil {
				return err
			}
		}
	}

	// The platform-side dump at attach time.
	view, err := fs.Dump()
	if err != nil {
		return err
	}
	if showView {
		fmt.Println("initial high-level system view:")
		fmt.Print(view.String())
		fmt.Println()
	}

	// Re-mount through the monitor's tap, as the middle-box observes the
	// volume, and replay the Table II operations.
	mon := monitor.New(view)
	tapped, err := mon.Service()(disk)
	if err != nil {
		return err
	}
	fs2, err := extfs.Mount(tapped)
	if err != nil {
		return err
	}

	fmt.Println("file operations in the tenant VM (Table II):")
	fmt.Println("  1*  write /mnt/box/name1/1.img 4096")
	fmt.Println("  2** read  /mnt/box/name9/7.img 4096")
	if err := fs2.WriteAt("/mnt/box/name1/1.img", bytes.Repeat([]byte{0x5A}, 4096), 0); err != nil {
		return err
	}
	if _, err := fs2.ReadFile("/mnt/box/name9/7.img"); err != nil {
		return err
	}

	log := mon.Log()
	fmt.Printf("\nreconstructed block-level access log (Table I, %d entries):\n", len(log))
	fmt.Printf("%-6s %-6s %s\n", "ID", "op", "file/size")
	for i, e := range log {
		if maxRows > 0 && i >= maxRows {
			fmt.Printf("... (%d more)\n", len(log)-i)
			break
		}
		fmt.Println(e.String())
	}
	return nil
}
