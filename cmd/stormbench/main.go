// Command stormbench regenerates every table and figure of the paper's
// evaluation (Section V) against the simulated testbed, printing the same
// rows and series the paper reports. Absolute numbers reflect the scaled
// cost model; the shapes (who wins, by roughly what factor, where the
// crossovers fall) are the reproduction targets — see EXPERIMENTS.md.
//
// Usage:
//
//	stormbench                 # run everything
//	stormbench -fig 4          # one figure (4,5,6,7,8,9,10,11,13)
//	stormbench -table 1        # one table (1 or 3)
//	stormbench -ablations      # the design-choice sweeps
//	stormbench -fastpath       # data-plane microbenchmarks vs recorded baseline
//	stormbench -scale          # throughput-vs-instances scale-out sweep
//	stormbench -chaos          # failure-injection smoke suite (non-zero exit on data loss)
//	stormbench -crash          # WAL durability cost + kill/replay suite (non-zero exit on data loss)
//	stormbench -trace          # end-to-end tracing: slowest traces hop by hop + overhead
//	stormbench -soak           # sustained multi-tenant soak with churn (non-zero exit on a failed gate)
//	stormbench -soaktenants 500 -soakdur 10s   # soak scale and measured duration
//	stormbench -backup         # content-addressed backup suite: dedup ratio, fan-out, scrub repair
//	stormbench -backupchunks 512 -backuprounds 4   # backup image size and generations
//	stormbench -overload       # overload suite: WAL/CAS exhaustion, breaker trip/recover (non-zero exit on a failed gate)
//	stormbench -ops 200        # fio ops per point (accuracy vs. runtime)
//	stormbench -json out.json  # machine-readable results (default BENCH_results.json)
//	stormbench -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// benchResults is the machine-readable mirror of the printed report: each
// section holds the same rows the text tables render (per-workload
// throughput plus full latency distributions), and Observability is the
// obs registry snapshot accumulated across every run (per-stage latency
// percentiles, counters, gauges).
type benchResults struct {
	FioOps              int                                  `json:"fio_ops"`
	Routing             []experiments.RoutingRow             `json:"routing,omitempty"`
	ProcessingBySize    []experiments.ProcessingRow          `json:"processing_by_size,omitempty"`
	ProcessingByThreads []experiments.ProcessingRow          `json:"processing_by_threads,omitempty"`
	CPUBreakdown        []experiments.CPURow                 `json:"cpu_breakdown,omitempty"`
	Ablations           map[string][]experiments.AblationRow `json:"ablations,omitempty"`
	Replication         *experiments.ReplicationRun          `json:"replication,omitempty"`
	FastPath            []experiments.FastPathRun            `json:"fastpath,omitempty"`
	Scaling             []experiments.ScalingRun             `json:"scaling,omitempty"`
	Chaos               []experiments.ChaosResult            `json:"chaos,omitempty"`
	Crash               []experiments.CrashRun               `json:"crash,omitempty"`
	Tracing             []experiments.TracingRun             `json:"tracing,omitempty"`
	Soak                []experiments.SoakRun                `json:"soak,omitempty"`
	Backup              []experiments.BackupRun              `json:"backup,omitempty"`
	Overload            []experiments.OverloadRun            `json:"overload,omitempty"`
	Observability       obs.Snapshot                         `json:"observability"`
}

func main() {
	var (
		fig        = flag.Int("fig", 0, "run a single figure (4-11, 13); 0 = all")
		table      = flag.Int("table", 0, "run a single table (1 or 3); 0 = all")
		ablations  = flag.Bool("ablations", false, "run only the ablation sweeps")
		fastpath   = flag.Bool("fastpath", false, "run only the data-plane microbenchmarks (before/after comparison)")
		scale      = flag.Bool("scale", false, "run only the scale-out throughput-vs-instances sweep")
		chaos      = flag.Bool("chaos", false, "run only the failure-injection smoke suite (exit non-zero on data loss)")
		crash      = flag.Bool("crash", false, "run only the WAL durability-cost and kill/replay suite (exit non-zero on data loss)")
		trace      = flag.Bool("trace", false, "run only the end-to-end tracing experiment (slowest traces hop by hop + overhead)")
		soak       = flag.Bool("soak", false, "run only the sustained multi-tenant soak (exit non-zero on a failed gate)")
		soakN      = flag.Int("soaktenants", 500, "steady tenant count for -soak")
		soakDur    = flag.Duration("soakdur", 10*time.Second, "measured soak duration (half quiet, half churn)")
		backup     = flag.Bool("backup", false, "run only the content-addressed backup suite (exit non-zero on a failed gate)")
		backupN    = flag.Int("backupchunks", 512, "backup image size in chunks for -backup")
		backupR    = flag.Int("backuprounds", 4, "backup generations for -backup")
		overload   = flag.Bool("overload", false, "run only the overload/exhaustion suite (exit non-zero on a failed gate)")
		overloadW  = flag.Int("overloadwrites", 400, "writes per measured brownout phase for -overload")
		ops        = flag.Int("ops", 150, "fio operations per data point")
		repDur     = flag.Duration("repdur", 3*time.Second, "replication run duration")
		jsonPath   = flag.String("json", "BENCH_results.json", "write machine-readable results here (empty disables)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile here")
		memProfile = flag.String("memprofile", "", "write a heap profile here on exit")
	)
	flag.Parse()
	stop, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stormbench:", err)
		os.Exit(1)
	}
	err = run(runCfg{
		fig: *fig, table: *table, ablationsOnly: *ablations, fastpathOnly: *fastpath,
		scaleOnly: *scale, chaosOnly: *chaos, crashOnly: *crash, traceOnly: *trace,
		soakOnly: *soak, soakTenants: *soakN, soakDur: *soakDur,
		backupOnly: *backup, backupChunks: *backupN, backupRounds: *backupR,
		overloadOnly: *overload, overloadWrites: *overloadW,
		ops: *ops, repDur: *repDur, jsonPath: *jsonPath,
	})
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "stormbench:", err)
		os.Exit(1)
	}
}

// startProfiles begins CPU profiling and arranges the heap snapshot; the
// returned stop function flushes both (call it before exiting).
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}

// runCfg bundles the CLI selection for run.
type runCfg struct {
	fig, table                                                              int
	ablationsOnly, fastpathOnly, scaleOnly, chaosOnly, crashOnly, traceOnly bool
	soakOnly                                                                bool
	soakTenants                                                             int
	soakDur                                                                 time.Duration
	backupOnly                                                              bool
	backupChunks, backupRounds                                              int
	overloadOnly                                                            bool
	overloadWrites                                                          int
	ops                                                                     int
	repDur                                                                  time.Duration
	jsonPath                                                                string
}

func run(cfg runCfg) error {
	fig, table := cfg.fig, cfg.table
	ablationsOnly, fastpathOnly, scaleOnly := cfg.ablationsOnly, cfg.fastpathOnly, cfg.scaleOnly
	chaosOnly, crashOnly, traceOnly, soakOnly := cfg.chaosOnly, cfg.crashOnly, cfg.traceOnly, cfg.soakOnly
	ops, repDur, jsonPath := cfg.ops, cfg.repDur, cfg.jsonPath
	opts := experiments.Options{FioOps: ops}
	all := fig == 0 && table == 0 && !ablationsOnly && !fastpathOnly && !scaleOnly && !chaosOnly && !crashOnly && !traceOnly && !soakOnly && !cfg.backupOnly && !cfg.overloadOnly
	results := &benchResults{FioOps: ops, Ablations: make(map[string][]experiments.AblationRow)}
	if jsonPath != "" {
		defer func() {
			results.Observability = obs.Default().Snapshot()
			if err := writeResults(jsonPath, results); err != nil {
				fmt.Fprintln(os.Stderr, "stormbench: write results:", err)
			} else {
				fmt.Printf("\nresults written to %s\n", jsonPath)
			}
		}()
	}

	section := func(title string) {
		fmt.Printf("\n================ %s ================\n", title)
	}

	if chaosOnly || all {
		section("Chaos: failure injection, reconnect, journal replay")
		chaosRows, err := experiments.RunChaosSuite()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatChaos(chaosRows))
		results.Chaos = chaosRows
		for _, r := range chaosRows {
			if r.DataLoss {
				return fmt.Errorf("chaos scenario %s lost data: %s", r.Scenario, r.Detail)
			}
		}
		if chaosOnly {
			return nil
		}
	}

	if crashOnly || all {
		section("Crash durability: WAL fsync cost and kill/replay")
		crashRun, err := experiments.RunCrashSuite()
		if err != nil {
			return err
		}
		crashRun.When = time.Now().UTC().Format(time.RFC3339)
		fmt.Print(experiments.FormatCrash(crashRun))
		results.Crash = []experiments.CrashRun{*crashRun}
		for _, r := range crashRun.Replay {
			if r.DataLoss {
				return fmt.Errorf("crash scenario %s lost data: %s", r.Scenario, r.Detail)
			}
		}
		if crashOnly {
			return nil
		}
	}

	if traceOnly || all {
		section("Tracing: end-to-end trace breakdown and overhead")
		traceRun, err := experiments.Tracing(ops)
		if err != nil {
			return err
		}
		traceRun.When = time.Now().UTC().Format(time.RFC3339)
		fmt.Print(experiments.FormatTracing(traceRun))
		results.Tracing = []experiments.TracingRun{*traceRun}
		if traceRun.OverheadPct > 5 {
			fmt.Printf("WARNING: tracing overhead %.2f%% exceeds the 5%% budget\n", traceRun.OverheadPct)
		}
		if traceOnly {
			return nil
		}
	}

	if soakOnly {
		section("Soak: sustained multi-tenant churn under load")
		soakRun, err := experiments.RunSoak(experiments.SoakConfig{
			Tenants:  cfg.soakTenants,
			Duration: cfg.soakDur,
		})
		if err != nil {
			return err
		}
		soakRun.When = time.Now().UTC().Format(time.RFC3339)
		fmt.Print(experiments.FormatSoak(soakRun))
		results.Soak = []experiments.SoakRun{*soakRun}
		if len(soakRun.Violations) > 0 {
			return fmt.Errorf("soak failed: %s", soakRun.Violations[0])
		}
		return nil
	}

	if cfg.backupOnly || all {
		section("Backup: content-addressed replication, dedup, scrub repair")
		backupRun, err := experiments.RunBackup(experiments.BackupConfig{
			Chunks: cfg.backupChunks,
			Rounds: cfg.backupRounds,
		})
		if err != nil {
			return err
		}
		backupRun.When = time.Now().UTC().Format(time.RFC3339)
		fmt.Print(experiments.FormatBackup(backupRun))
		results.Backup = []experiments.BackupRun{*backupRun}
		if len(backupRun.Violations) > 0 {
			return fmt.Errorf("backup failed: %s", backupRun.Violations[0])
		}
		if cfg.backupOnly {
			return nil
		}
	}

	if cfg.overloadOnly || all {
		section("Overload: exhaustion, backpressure, circuit breakers")
		overloadRun, err := experiments.RunOverload(experiments.OverloadConfig{
			BrownoutWrites: cfg.overloadWrites,
		})
		if err != nil {
			return err
		}
		overloadRun.When = time.Now().UTC().Format(time.RFC3339)
		fmt.Print(experiments.FormatOverload(overloadRun))
		results.Overload = []experiments.OverloadRun{*overloadRun}
		if len(overloadRun.Violations) > 0 {
			return fmt.Errorf("overload failed: %s", overloadRun.Violations[0])
		}
		if cfg.overloadOnly {
			return nil
		}
	}

	if fastpathOnly || all {
		section("Fast path: data-plane microbenchmarks (before → after)")
		rows := experiments.FastPath()
		fmt.Print(experiments.FormatFastPath(rows))
		results.FastPath = []experiments.FastPathRun{{
			When: time.Now().UTC().Format(time.RFC3339),
			Rows: rows,
		}}
		if fastpathOnly {
			return nil
		}
	}

	if scaleOnly || all {
		section("Scale-out: aggregate write throughput vs group size")
		rows, err := experiments.Scaling(nil, 0, 0)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatScaling(rows))
		results.Scaling = []experiments.ScalingRun{{
			When: time.Now().UTC().Format(time.RFC3339),
			Rows: rows,
		}}
		if scaleOnly {
			return nil
		}
	}

	if ablationsOnly || all {
		defer func() {
			section("Ablations (design choices)")
			if rows, err := experiments.AblationGatewayPlacement(ops); err == nil {
				fmt.Print(experiments.FormatAblation("gateway placement (16K, 1 thread)", rows))
				results.Ablations["gateway_placement"] = rows
			} else {
				fmt.Println("gateway placement failed:", err)
			}
			if rows, err := experiments.AblationChainLength(ops); err == nil {
				fmt.Print(experiments.FormatAblation("chain length (forward MBs on path)", rows))
				results.Ablations["chain_length"] = rows
			} else {
				fmt.Println("chain length failed:", err)
			}
			if rows, err := experiments.AblationJournalCapacity(ops / 2); err == nil {
				fmt.Print(experiments.FormatAblation("active-relay journal capacity (write-heavy)", rows))
				results.Ablations["journal_capacity"] = rows
			} else {
				fmt.Println("journal capacity failed:", err)
			}
			if rows, err := experiments.AblationReplicaFactor(repDur / 3); err == nil {
				fmt.Print(experiments.FormatAblation("replication factor (OLTP TPS)", rows))
				results.Ablations["replica_factor"] = rows
			} else {
				fmt.Println("replica factor failed:", err)
			}
		}()
		if ablationsOnly {
			return nil
		}
	}

	if all || fig == 4 || fig == 7 {
		section("Figures 4 & 7: traffic redirection overhead (LEGACY vs MB-FWD)")
		fmt.Println("paper: norm IOPS 0.93/0.86/0.83/0.82; norm latency 1.08/1.22/1.25/1.30")
		rows, err := experiments.RoutingOverhead(opts)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatRoutingTable(rows))
		results.Routing = rows
	}

	if all || fig == 5 || fig == 8 {
		section("Figures 5 & 8: middle-box processing overhead by I/O size")
		fmt.Println("paper: active norm IOPS 1.01/1.00/1.06/1.14; active norm latency 0.98/1.01/0.94/0.89")
		rows, err := experiments.ProcessingOverheadBySize(opts)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatProcessingTable(rows, false))
		results.ProcessingBySize = rows
	}

	if all || fig == 6 || fig == 9 {
		section("Figures 6 & 9: middle-box processing overhead by thread count (16K)")
		fmt.Println("paper: active norm IOPS 1.06/1.10/1.27/1.39; active norm latency 0.95/0.91/0.79/0.70")
		rows, err := experiments.ProcessingOverheadByThreads(experiments.Options{FioOps: ops / 2})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatProcessingTable(rows, true))
		results.ProcessingByThreads = rows
	}

	if all || fig == 10 {
		section("Figure 10: CPU utilization breakdown (FTP, AES-256)")
		fmt.Println("paper: tenant-side 85%+24.4%; middle-box 25.1%+37.1%+25% (~20% total savings)")
		rows, err := experiments.CPUBreakdown()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatCPUTable(rows))
		results.CPUBreakdown = rows
	}

	if all || fig == 11 {
		section("Figure 11: PostMark with tenant-side vs middle-box encryption")
		fmt.Println("paper: middle-box improves every component by 23-34%")
		cmp, err := experiments.RunPostmarkComparison()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatPostmarkTable(cmp))
	}

	if all || fig == 12 || fig == 13 {
		section("Figure 13: MySQL stand-in TPS with replica failure")
		fmt.Println("paper: 3 replicas ~1.8x one store; slight drop after a replica fails; service continues")
		rep, err := experiments.RunReplication(repDur)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatReplicationRun(rep))
		results.Replication = rep
	}

	if all || table == 1 {
		section("Tables I & II: semantics reconstruction")
		res, err := experiments.TableI()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatReconstruction(res, 60))
	}

	if all || table == 3 {
		section("Table III: backdoor malware installation footprint")
		steps, log, err := experiments.TableIII()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatMalware(steps, log))
	}
	return nil
}

// writeResults marshals the collected rows to path. The fastpath and
// scaling sections are dated histories: a new run appends to the entries
// already in the file, and runs that skipped those suites (e.g. -fig 4)
// carry the existing entries forward rather than erasing them.
func writeResults(path string, r *benchResults) error {
	if old, err := os.ReadFile(path); err == nil {
		var prev struct {
			FastPath []experiments.FastPathRun `json:"fastpath"`
			Scaling  []experiments.ScalingRun  `json:"scaling"`
			Crash    []experiments.CrashRun    `json:"crash"`
			Tracing  []experiments.TracingRun  `json:"tracing"`
			Soak     []experiments.SoakRun     `json:"soak"`
			Backup   []experiments.BackupRun   `json:"backup"`
			Overload []experiments.OverloadRun `json:"overload"`
		}
		if json.Unmarshal(old, &prev) == nil {
			r.FastPath = append(prev.FastPath, r.FastPath...)
			r.Scaling = append(prev.Scaling, r.Scaling...)
			r.Crash = append(prev.Crash, r.Crash...)
			r.Tracing = append(prev.Tracing, r.Tracing...)
			r.Soak = append(prev.Soak, r.Soak...)
			r.Backup = append(prev.Backup, r.Backup...)
			r.Overload = append(prev.Overload, r.Overload...)
		}
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
