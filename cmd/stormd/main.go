// Command stormd boots the simulated cloud, applies a tenant policy from a
// JSON file (or a built-in demo policy), attaches the bound volumes through
// their middle-box chains, exercises them with a small mixed workload, and
// prints the resulting platform state: deployments, attributions, chains,
// and service telemetry.
//
// Usage:
//
//	stormd                     # built-in demo policy
//	stormd -policy policy.json # apply a tenant policy file
//	stormd -hosts 6            # size the cloud
//	stormd -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	storm "repro"
	"repro/internal/obs"
	"repro/internal/workload"
)

const demoPolicy = `{
  "tenant": "demo",
  "middleboxes": [
    {"name": "mon", "type": "access-monitor", "params": {"watch": "/"}},
    {"name": "enc", "type": "encryption",
     "params": {"key": "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"}}
  ],
  "volumes": [
    {"vm": "vm1", "volume": "vol-0001", "chain": ["mon", "enc"]}
  ]
}`

func main() {
	var (
		policyPath  = flag.String("policy", "", "tenant policy JSON file (default: built-in demo)")
		hosts       = flag.Int("hosts", 4, "number of compute hosts")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /metrics.json, /traces and /debug/pprof on this address (e.g. :9090)")
		trace       = flag.Bool("trace", false, "enable per-command distributed tracing (tail-sampled; exposed on /traces)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile here")
		memProfile  = flag.String("memprofile", "", "write a heap profile here on exit")
	)
	flag.Parse()
	if *trace {
		obs.Default().EnableTracing(obs.TraceConfig{})
	}
	stop, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stormd:", err)
		os.Exit(1)
	}
	err = run(*policyPath, *hosts, *metricsAddr)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "stormd:", err)
		os.Exit(1)
	}
}

// startProfiles begins CPU profiling and arranges the heap snapshot; the
// returned stop function flushes both (call it before exiting).
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}

func run(policyPath string, hosts int, metricsAddr string) error {
	if metricsAddr != "" {
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()

		// Contention telemetry rides along with the metrics endpoint: the
		// runtime's mutex/block profilers feed /debug/pprof, and the sampler
		// publishes the aggregate runtime.* gauges next to the storm metrics.
		obs.ContentionProfiling(0, 0)
		sampler := obs.NewRuntimeSampler(obs.Default())
		sampler.Start(0)
		defer sampler.Stop()

		mux := http.NewServeMux()
		mux.Handle("/", obs.Default().Handler())
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		go func() { _ = http.Serve(ln, mux) }()
		fmt.Printf("metrics: http://%s/metrics (text), /metrics.json, /traces, /debug/pprof\n", ln.Addr())
	}

	data := []byte(demoPolicy)
	if policyPath != "" {
		var err error
		if data, err = os.ReadFile(policyPath); err != nil {
			return err
		}
	}
	pol, err := storm.ParsePolicy(data)
	if err != nil {
		return err
	}

	cloud, err := storm.NewCloud(storm.CloudConfig{ComputeHosts: hosts})
	if err != nil {
		return err
	}
	defer cloud.Close()
	platform := storm.NewPlatform(cloud)
	fmt.Printf("cloud up: compute hosts %v, storage host %s\n",
		cloud.ComputeHosts(), cloud.StorageHost())

	// Boot the VMs and volumes the policy references.
	for _, vb := range pol.Volumes {
		if _, err := cloud.VM(vb.VM); err != nil {
			if _, err := cloud.LaunchVM(vb.VM, ""); err != nil {
				return err
			}
			fmt.Printf("launched VM %s\n", vb.VM)
		}
		if _, err := cloud.Volumes.Get(vb.Volume); err != nil {
			vol, err := cloud.Volumes.Create(vb.VM+"-data", 64<<20)
			if err != nil {
				return err
			}
			if vol.ID != vb.Volume {
				return fmt.Errorf("policy references volume %q; created %q — adjust the policy", vb.Volume, vol.ID)
			}
			fmt.Printf("created volume %s (%d MiB)\n", vol.ID, vol.SizeBytes>>20)
		}
	}

	dep, err := platform.Apply(pol)
	if err != nil {
		return err
	}
	fmt.Printf("\napplied policy for tenant %q:\n", dep.Tenant)
	for name, mb := range dep.MBs {
		fmt.Printf("  middle-box %-8s -> VM %q on %s (%s, relay %s)\n",
			name, mb.Name, mb.Host, mb.Mode, mb.RelayAddr)
	}

	// Exercise each attached volume with a short mixed workload.
	for key, av := range dep.Volumes {
		res, err := workload.RunFio(workload.FioConfig{
			Dev:          av.Device,
			RequestSize:  16 * 1024,
			Threads:      4,
			ReadFraction: 0.5,
			Ops:          200,
			Seed:         1,
		})
		if err != nil {
			return fmt.Errorf("workload on %s: %w", key, err)
		}
		fmt.Printf("\nvolume %s through its chain: %s\n", key, res)
	}

	// Platform state.
	fmt.Println("\nconnection attributions:")
	for _, vb := range pol.Volumes {
		vol, err := cloud.Volumes.Get(vb.Volume)
		if err != nil {
			continue
		}
		if b, ok := cloud.Plane.Attributions().ByIQN(vol.IQN); ok {
			fmt.Printf("  %s\n", b)
		}
	}
	for name, mon := range dep.Monitors {
		fmt.Printf("\nmonitor %s: %d events logged, %d alerts\n",
			name, len(mon.Log()), len(mon.Alerts()))
	}
	for name, disp := range dep.Dispatchers {
		if disp == nil {
			continue
		}
		fmt.Printf("\nreplica dispatcher %s:\n", name)
		for _, s := range disp.States() {
			fmt.Printf("  %-10s alive=%v reads=%d writes=%d\n", s.Name, s.Alive, s.Reads, s.Writes)
		}
	}

	printObservability(obs.Default().Snapshot())
	return platform.Teardown(pol.Tenant)
}

// printObservability renders the end-to-end trace report: per-stage latency
// histograms (the paper's Figure 7/10 breakdown, measured live), then the
// registry's counters, gauges, and recent structured events.
func printObservability(snap obs.Snapshot) {
	fmt.Println("\nper-stage latency (end-to-end trace):")
	names := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		if strings.HasPrefix(name, obs.StagePrefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		s := snap.Histograms[name]
		if s.Count == 0 {
			continue
		}
		fmt.Printf("  %-32s n=%-6d p50=%-10v p95=%-10v p99=%-10v mean=%v\n",
			strings.TrimPrefix(name, obs.StagePrefix), s.Count, s.P50, s.P95, s.P99, s.Mean)
	}

	if len(snap.Counters) > 0 {
		fmt.Println("\ncounters:")
		cnames := make([]string, 0, len(snap.Counters))
		for name := range snap.Counters {
			cnames = append(cnames, name)
		}
		sort.Strings(cnames)
		for _, name := range cnames {
			fmt.Printf("  %-32s %d\n", name, snap.Counters[name])
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Println("\ngauges:")
		gnames := make([]string, 0, len(snap.Gauges))
		for name := range snap.Gauges {
			gnames = append(gnames, name)
		}
		sort.Strings(gnames)
		for _, name := range gnames {
			g := snap.Gauges[name]
			fmt.Printf("  %-32s %d (high-water %d)\n", name, g.Value, g.High)
		}
	}
	if len(snap.Events) > 0 {
		const tail = 10
		evs := snap.Events
		if len(evs) > tail {
			evs = evs[len(evs)-tail:]
		}
		fmt.Printf("\nevents (last %d of %d):\n", len(evs), len(snap.Events))
		for _, e := range evs {
			fmt.Printf("  %s [%s] %s\n", e.Time.Format("15:04:05.000"), e.Kind, e.Msg)
		}
	}
}
