# Pre-commit gate: `make check` runs the format/vet/build gate, the
# race-enabled tests of the packages with the hottest concurrency
# (iscsi, metrics, obs, middlebox, netsim, bufpool, the durable WAL, and
# the scale-out control plane: sdn, splice, vswitch, core, orchestrator),
# and the allocs/op regression gate for the zero-copy chain hot path.
# `make test` is the full suite. `make bench` prints the data-plane
# microbenchmarks with allocation stats and appends a dated before/after
# summary to BENCH_results.json (via stormbench -fastpath). `make crash`
# runs the WAL durability-cost sweep and the kill/replay scenarios
# (stormbench -crash, non-zero exit on data loss). `make trace` runs the
# end-to-end tracing experiment: slowest traces hop by hop, the per-hop
# time budget table, and the tracing-overhead measurement appended to
# BENCH_results.json.

GO ?= go
RACE_PKGS := ./internal/iscsi ./internal/metrics ./internal/obs ./internal/middlebox ./internal/netsim ./internal/bufpool ./internal/initiator ./internal/target ./internal/services/replica ./internal/faults ./internal/wal ./internal/sdn ./internal/splice ./internal/vswitch ./internal/core ./internal/orchestrator ./internal/workload
BENCH_PKGS := ./internal/iscsi ./internal/middlebox ./internal/bufpool ./internal/experiments

.PHONY: check fmt vet build test race bench allocs crash trace

check: fmt vet build race allocs

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Allocation regression gate for the zero-copy chain hot path (skipped under
# -race, which instruments allocations).
allocs:
	$(GO) test -run TestChainWrite4KAllocBudget -count=1 -v ./internal/experiments | grep -E 'allocs/op|FAIL|ok '

test:
	$(GO) test ./...

bench:
	$(GO) test -run '^$$' -bench 'PDU|Encode|Writeback|Chain|GetRelease' -benchmem $(BENCH_PKGS)
	$(GO) run ./cmd/stormbench -fastpath

crash:
	$(GO) run ./cmd/stormbench -crash

trace:
	$(GO) run ./cmd/stormbench -trace
