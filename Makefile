# Pre-commit gate: `make check` runs the format/vet/build gate, the
# race-enabled tests of the packages with the hottest concurrency
# (iscsi, metrics, obs, middlebox, netsim, bufpool, the durable WAL, the
# scale-out control plane — sdn, splice, vswitch, core, cloud,
# orchestrator — and the content-addressed replication stack: cas,
# objstore, scrub, services/replicate), the allocs/op regression gates
# for the zero-copy chain hot path and the flow lookup, a short-mode
# soak smoke, and a short-mode backup smoke. `make test` is the full
# suite. `make bench` prints the data-plane microbenchmarks with
# allocation stats and appends a dated before/after summary to
# BENCH_results.json (via stormbench -fastpath). `make crash` runs the
# WAL durability-cost sweep and the kill/replay scenarios (stormbench
# -crash, non-zero exit on data loss). `make trace` runs the end-to-end
# tracing experiment. `make soak` runs the sustained multi-tenant churn
# soak at full scale (500 tenants, dated entry in BENCH_results.json,
# non-zero exit on any failed gate). `make backup` runs the
# content-addressed replication suite (dedup ratio, fan-out throughput,
# scrub repair after corruption; dated entry in BENCH_results.json).
# `make overload` runs the resource-exhaustion suite (WAL/CAS full typed
# refusal, brownout breaker trip/recover, bounded memory; dated entry in
# BENCH_results.json). `make lint-taxonomy` greps the data-path services
# for raw fmt.Errorf at exhaustion sites that should carry an xerr class.

GO ?= go
RACE_PKGS := ./internal/iscsi ./internal/metrics ./internal/obs ./internal/middlebox ./internal/netsim ./internal/bufpool ./internal/initiator ./internal/target ./internal/services/replica ./internal/faults ./internal/wal ./internal/sdn ./internal/splice ./internal/vswitch ./internal/core ./internal/cloud ./internal/orchestrator ./internal/workload ./internal/cas ./internal/objstore ./internal/scrub ./internal/services/replicate ./internal/xerr ./internal/testutil
BENCH_PKGS := ./internal/iscsi ./internal/middlebox ./internal/bufpool ./internal/experiments

.PHONY: check fmt vet build test race bench allocs crash trace soak soak-short backup backup-short overload overload-short lint-taxonomy

check: fmt vet build lint-taxonomy race allocs soak-short backup-short overload-short

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Allocation regression gates (skipped under -race, which instruments
# allocations): the zero-copy chain hot path and the lock-free flow lookup.
allocs:
	$(GO) test -run 'TestChainWrite4KAllocBudget|TestLookupAllocFree' -count=1 -v ./internal/experiments ./internal/vswitch | grep -E 'allocs|FAIL|ok '

test:
	$(GO) test ./...

bench:
	$(GO) test -run '^$$' -bench 'PDU|Encode|Writeback|Chain|GetRelease' -benchmem $(BENCH_PKGS)
	$(GO) run ./cmd/stormbench -fastpath

crash:
	$(GO) run ./cmd/stormbench -crash

trace:
	$(GO) run ./cmd/stormbench -trace

# Full-scale sustained soak: 500 tenants with deploy/teardown churn,
# p99/alloc/lock-wait telemetry, dated entry in BENCH_results.json.
soak:
	$(GO) run ./cmd/stormbench -soak

# Short soak smoke for the pre-commit gate: small tenant count, short
# measured window, results not recorded.
soak-short:
	$(GO) run ./cmd/stormbench -soak -soaktenants 96 -soakdur 1500ms -json ''

# Full backup suite: multi-round delta workload through the replication
# box, dedup/convergence/scrub-repair gates, dated entry in
# BENCH_results.json.
backup:
	$(GO) run ./cmd/stormbench -backup

# Short backup smoke for the pre-commit gate: small image, results not
# recorded.
backup-short:
	$(GO) run ./cmd/stormbench -backup -backupchunks 128 -backuprounds 3 -json ''

# Full overload suite: WAL-full and CAS-full typed refusal and recovery,
# 1-slow-of-3 brownout with breaker trip/recover, bounded heap growth;
# dated entry in BENCH_results.json, non-zero exit on any failed gate.
overload:
	$(GO) run ./cmd/stormbench -overload

# Short overload smoke for the pre-commit gate: fewer brownout writes,
# results not recorded.
overload-short:
	$(GO) run ./cmd/stormbench -overload -overloadwrites 200 -json ''

# Taxonomy lint: exhaustion/overload/draining sentinels on the data path
# must carry an xerr class (xerr.New), not a bare errors.New — an untyped
# sentinel defeats retry-budget and circuit-breaker classification.
lint-taxonomy:
	@out=$$(grep -rn --include='*.go' --exclude='*_test.go' -E 'errors\.New\("[^"]*(full|drain|overload|exhaust|busy)' internal/wal internal/cas internal/middlebox internal/services internal/iscsi 2>/dev/null || true); \
	if [ -n "$$out" ]; then \
		echo "untyped exhaustion/overload sentinels (use xerr.New):"; echo "$$out"; exit 1; \
	fi
