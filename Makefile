# Pre-commit gate: `make check` runs the format/vet/build gate plus the
# race-enabled tests of the packages with the hottest concurrency
# (metrics, obs, middlebox, netsim). `make test` is the full suite.

GO ?= go
RACE_PKGS := ./internal/metrics ./internal/obs ./internal/middlebox ./internal/netsim

.PHONY: check fmt vet build test race bench

check: fmt vet build race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

race:
	$(GO) test -race $(RACE_PKGS)

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchtime=1x .
