#include "textflag.h"

// func getg() uintptr
//
// Under the register ABI (go1.17+) amd64 permanently reserves R14 for the
// current goroutine's g pointer, including on entry to ABI0 assembly.
TEXT ·getg(SB), NOSPLIT, $0-8
	MOVQ	R14, ret+0(FP)
	RET
