package obs

// getg returns the calling goroutine's runtime g pointer. The value is
// only used as an opaque goroutine identity key after checkGetg validates
// it (see goid); it is never dereferenced.
func getg() uintptr
