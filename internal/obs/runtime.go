package obs

import (
	"math"
	"runtime"
	rtmetrics "runtime/metrics"
	"sync"
	"time"
)

// Runtime contention telemetry: mutex/block profile sampling hooks plus a
// sampler that publishes lock-wait, GC, goroutine, and allocation-rate
// gauges into a Registry. stormd wires this next to its pprof endpoints
// so a soak run exposes both the aggregate gauges (cheap, always on) and
// the full contention profiles (on demand via /debug/pprof/mutex,block).

// ContentionProfiling enables the runtime's mutex and block profilers at
// the given sampling rates (a mutexFraction of 1 samples every contention
// event; blockRate is the ns threshold for block events, 1 records all).
// Pass zeros for moderate defaults suitable for always-on soak telemetry.
func ContentionProfiling(mutexFraction, blockRate int) {
	if mutexFraction <= 0 {
		mutexFraction = 16
	}
	if blockRate <= 0 {
		blockRate = int(100 * time.Microsecond)
	}
	runtime.SetMutexProfileFraction(mutexFraction)
	runtime.SetBlockProfileRate(blockRate)
}

// RuntimeSampler periodically publishes runtime health gauges:
//
//	runtime.goroutines            live goroutine count
//	runtime.heap_bytes            current heap in use
//	runtime.alloc_rate_bps        bytes allocated per second since last sample
//	runtime.lock_wait_us          cumulative mutex wait (from runtime/metrics)
//	runtime.gc_pause_us           cumulative stop-the-world pause
//	runtime.gc_cycles             completed GC cycles
type RuntimeSampler struct {
	reg *Registry

	mu         sync.Mutex
	lastAlloc  uint64
	lastSample time.Time
	stop       chan struct{}
	done       chan struct{}

	rtSamples []rtmetrics.Sample
}

// NewRuntimeSampler builds a sampler publishing into reg.
func NewRuntimeSampler(reg *Registry) *RuntimeSampler {
	return &RuntimeSampler{
		reg: reg,
		rtSamples: []rtmetrics.Sample{
			{Name: "/sync/mutex/wait/total:seconds"},
			{Name: "/gc/pauses:seconds"},
			{Name: "/gc/cycles/total:gc-cycles"},
		},
	}
}

// Sample takes one reading and updates the gauges. Safe to call directly
// (tests, one-shot reports) or from the Start loop.
func (s *RuntimeSampler) Sample() {
	if s == nil || s.reg == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	now := time.Now()
	s.reg.Gauge("runtime.goroutines").Set(int64(runtime.NumGoroutine()))
	s.reg.Gauge("runtime.heap_bytes").Set(int64(ms.HeapInuse))
	if !s.lastSample.IsZero() {
		if dt := now.Sub(s.lastSample).Seconds(); dt > 0 && ms.TotalAlloc >= s.lastAlloc {
			s.reg.Gauge("runtime.alloc_rate_bps").Set(int64(float64(ms.TotalAlloc-s.lastAlloc) / dt))
		}
	}
	s.lastAlloc = ms.TotalAlloc
	s.lastSample = now

	rtmetrics.Read(s.rtSamples)
	for _, sm := range s.rtSamples {
		switch sm.Name {
		case "/sync/mutex/wait/total:seconds":
			if sm.Value.Kind() == rtmetrics.KindFloat64 {
				s.reg.Gauge("runtime.lock_wait_us").Set(int64(sm.Value.Float64() * 1e6))
			}
		case "/gc/pauses:seconds":
			if sm.Value.Kind() == rtmetrics.KindFloat64Histogram {
				if h := sm.Value.Float64Histogram(); h != nil {
					var total float64
					for i, n := range h.Counts {
						// Midpoint estimate per bucket; boundary slices are
						// one longer than counts.
						lo, hi := h.Buckets[i], h.Buckets[i+1]
						if lo < 0 || math.IsInf(lo, -1) {
							lo = 0
						}
						if math.IsInf(hi, 1) {
							hi = lo
						}
						total += float64(n) * (lo + hi) / 2
					}
					s.reg.Gauge("runtime.gc_pause_us").Set(int64(total * 1e6))
				}
			}
		case "/gc/cycles/total:gc-cycles":
			if sm.Value.Kind() == rtmetrics.KindUint64 {
				s.reg.Gauge("runtime.gc_cycles").Set(int64(sm.Value.Uint64()))
			}
		}
	}
}

// Start launches the sampling loop (default interval 1s). Stop with Stop.
func (s *RuntimeSampler) Start(interval time.Duration) {
	if s == nil {
		return
	}
	if interval <= 0 {
		interval = time.Second
	}
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	stop, done := make(chan struct{}), make(chan struct{})
	s.stop, s.done = stop, done
	s.mu.Unlock()
	s.Sample()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.Sample()
			}
		}
	}()
}

// Stop halts the loop and waits for the in-flight sample.
func (s *RuntimeSampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
