package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
)

// GaugeSnapshot is a gauge's point-in-time value and high-water mark.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	High  int64 `json:"high"`
}

// Snapshot is a point-in-time copy of every metric and event in a
// Registry, suitable for JSON encoding (durations encode as nanoseconds).
type Snapshot struct {
	Counters   map[string]int64           `json:"counters"`
	Gauges     map[string]GaugeSnapshot   `json:"gauges"`
	Histograms map[string]metrics.Summary `json:"histograms"`
	Events     []Event                    `json:"events,omitempty"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]GaugeSnapshot),
		Histograms: make(map[string]metrics.Summary),
	}
	if r == nil {
		return snap
	}
	counters := make(map[string]*Counter)
	gauges := make(map[string]*Gauge)
	hists := make(map[string]*metrics.Histogram)
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for k, v := range sh.counters {
			counters[k] = v
		}
		for k, v := range sh.gauges {
			gauges[k] = v
		}
		for k, v := range sh.hists {
			hists[k] = v
		}
		sh.mu.RUnlock()
	}
	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		snap.Gauges[k] = GaugeSnapshot{Value: g.Value(), High: g.High()}
	}
	for k, h := range hists {
		snap.Histograms[k] = h.Snapshot()
	}
	snap.Events = r.Events()
	return snap
}

// WriteJSON writes an indented JSON snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// DefaultBuckets is the latency bucket ladder used for Prometheus
// histogram exposition (upper bounds, ascending). It spans the test bed's
// modelled path costs (tens of µs) up to fault-injection stalls.
var DefaultBuckets = []time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
}

// WriteText writes the registry in the Prometheus text exposition format:
// HELP and TYPE lines for every metric, counters and gauges as single
// samples, histograms with cumulative `le` buckets (including +Inf) plus
// `_sum` and `_count`. Names are prefixed "storm_" and sanitized; output
// is sorted for determinism.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		_, err := fmt.Fprintf(w, "# HELP %s storm counter %s\n# TYPE %s counter\n%s %d\n",
			pn, name, pn, pn, snap.Counters[name])
		if err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		g := snap.Gauges[name]
		_, err := fmt.Fprintf(w,
			"# HELP %s storm gauge %s\n# TYPE %s gauge\n%s %d\n# HELP %s_high high-water mark of %s\n# TYPE %s_high gauge\n%s_high %d\n",
			pn, name, pn, pn, g.Value, pn, name, pn, pn, g.High)
		if err != nil {
			return err
		}
	}

	// Histograms need bucket counts, which the Summary snapshot does not
	// carry; re-resolve the live histograms for the cumulative `le` rows.
	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name) + "_seconds"
		s := snap.Histograms[name]
		if _, err := fmt.Fprintf(w, "# HELP %s storm latency histogram %s\n# TYPE %s histogram\n", pn, name, pn); err != nil {
			return err
		}
		var buckets []int
		if h := r.Histogram(name); h != nil {
			buckets = h.CumulativeBuckets(DefaultBuckets)
		} else {
			buckets = make([]int, len(DefaultBuckets))
		}
		for i, b := range DefaultBuckets {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", pn, b.Seconds(), buckets[i]); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
			pn, s.Count, pn, s.Sum.Seconds(), pn, s.Count)
		if err != nil {
			return err
		}
	}
	return nil
}

// promName maps a dotted registry name to a Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("storm_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Handler serves the registry over HTTP: "/metrics" (Prometheus text),
// "/metrics.json" (JSON snapshot), "/traces" (retained traces, JSON),
// and "/" (a short index).
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		traces := r.Traces()
		if traces == nil {
			traces = []TraceRecord{}
		}
		b, err := json.MarshalIndent(traces, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(append(b, '\n'))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintln(w, "storm metrics: /metrics (Prometheus text), /metrics.json (JSON snapshot), /traces (retained traces)")
	})
	return mux
}
