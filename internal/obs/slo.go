package obs

import (
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// SLOTracker maintains a rolling latency window for one middle-box group
// against its policy `latencySLO` target and publishes the result as
// gauges the orchestrator (and any /metrics scraper) reads:
//
//	slo.<group>.p50_us / p99_us     windowed percentiles (microseconds)
//	slo.<group>.p99_ms              windowed p99 (milliseconds, rounded up)
//	slo.<group>.target_us           the latencySLO target
//	slo.<group>.window_ops          samples in the current window
//	slo.<group>.burn_permille       error-budget burn rate: the share of
//	                                windowed ops over target, relative to
//	                                the allowed share (1000 = burning
//	                                exactly the budget)
//
// Samples are pulled incrementally from the watched stage histograms
// (metrics.Histogram.SamplesSince), so the tracker piggybacks on the
// existing instrumentation without touching the hot path. The window is
// a ring of slots rotated by Tick; expired slots drop off, giving the
// rolling p50/p99 semantics the cumulative stage histograms cannot.
type SLOTracker struct {
	reg    *Registry
	group  string
	target time.Duration
	window time.Duration
	slots  int
	// budget is the allowed violation share in permille (default 10 = 1%).
	budget int64

	mu        sync.Mutex
	sources   map[string]*sloSource
	ring      []sloSlot
	head      int
	headStart time.Time

	p50us, p99us, p99ms, targetUs, windowOps, burn *Gauge
}

type sloSource struct {
	h      *metrics.Histogram
	cursor int
}

type sloSlot struct {
	samples    []time.Duration
	violations int
}

// SLOConfig tunes a tracker; zero fields take the defaults.
type SLOConfig struct {
	// Window is the rolling window length (default 30s).
	Window time.Duration
	// Slots is the window's slot count — roll-over granularity (default 6).
	Slots int
	// BudgetPermille is the allowed share of ops over target, in permille
	// (default 10, i.e. a 99%-under-target objective).
	BudgetPermille int64
}

// SLOStatus is a tracker's point-in-time result.
type SLOStatus struct {
	Group        string        `json:"group"`
	Target       time.Duration `json:"target_ns"`
	P50          time.Duration `json:"p50_ns"`
	P99          time.Duration `json:"p99_ns"`
	WindowOps    int           `json:"window_ops"`
	Violations   int           `json:"violations"`
	BurnPermille int64         `json:"burn_permille"`
}

// NewSLOTracker builds a tracker for the named group (conventionally
// "<tenant>.<mb>") publishing into reg. target is the group's latencySLO.
func NewSLOTracker(reg *Registry, group string, target time.Duration, cfg SLOConfig) *SLOTracker {
	if cfg.Window <= 0 {
		cfg.Window = 30 * time.Second
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 6
	}
	if cfg.BudgetPermille <= 0 {
		cfg.BudgetPermille = 10
	}
	prefix := "slo." + group + "."
	t := &SLOTracker{
		reg:       reg,
		group:     group,
		target:    target,
		window:    cfg.Window,
		slots:     cfg.Slots,
		budget:    cfg.BudgetPermille,
		sources:   make(map[string]*sloSource),
		ring:      make([]sloSlot, cfg.Slots),
		headStart: reg.Now(),
		p50us:     reg.Gauge(prefix + "p50_us"),
		p99us:     reg.Gauge(prefix + "p99_us"),
		p99ms:     reg.Gauge(prefix + "p99_ms"),
		targetUs:  reg.Gauge(prefix + "target_us"),
		windowOps: reg.Gauge(prefix + "window_ops"),
		burn:      reg.Gauge(prefix + "burn_permille"),
	}
	t.targetUs.Set(target.Microseconds())
	return t
}

// Group returns the tracker's group key.
func (t *SLOTracker) Group() string { return t.group }

// Watch adds a registry histogram (by name) as a latency source. Adding
// an already-watched name is a no-op, so callers can re-assert the watch
// set each pass as group membership changes; watches on retired members
// go quiet on their own (their histograms stop growing).
func (t *SLOTracker) Watch(histName string) {
	if t == nil {
		return
	}
	h := t.reg.Histogram(histName)
	if h == nil {
		return
	}
	t.mu.Lock()
	if _, ok := t.sources[histName]; !ok {
		// Start at the current tail: pre-existing samples predate the watch.
		_, cursor := h.SamplesSince(-1)
		t.sources[histName] = &sloSource{h: h, cursor: cursor}
	}
	t.mu.Unlock()
}

// Unwatch drops a latency source (e.g. a retired member's histogram).
func (t *SLOTracker) Unwatch(histName string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	delete(t.sources, histName)
	t.mu.Unlock()
}

// Tick pulls new samples from every watched source into the current
// window slot, rolls expired slots off, and republishes the gauges. Call
// it from the control loop (the orchestrator reconcile pass).
func (t *SLOTracker) Tick(now time.Time) SLOStatus {
	if t == nil {
		return SLOStatus{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	// Roll the ring forward to cover now.
	slotDur := t.window / time.Duration(t.slots)
	for !now.Before(t.headStart.Add(slotDur)) {
		t.head = (t.head + 1) % t.slots
		t.ring[t.head] = sloSlot{}
		t.headStart = t.headStart.Add(slotDur)
		if now.Sub(t.headStart) > t.window {
			// Idle gap longer than the window: fast-forward.
			for i := range t.ring {
				t.ring[i] = sloSlot{}
			}
			t.headStart = now
			break
		}
	}

	// Drain new samples into the head slot.
	slot := &t.ring[t.head]
	for _, src := range t.sources {
		samples, cursor := src.h.SamplesSince(src.cursor)
		src.cursor = cursor
		for _, d := range samples {
			slot.samples = append(slot.samples, d)
			if t.target > 0 && d > t.target {
				slot.violations++
			}
		}
	}

	// Aggregate the window.
	var all []time.Duration
	violations := 0
	for i := range t.ring {
		all = append(all, t.ring[i].samples...)
		violations += t.ring[i].violations
	}
	st := SLOStatus{Group: t.group, Target: t.target, WindowOps: len(all), Violations: violations}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		st.P50 = all[(len(all)-1)/2]
		st.P99 = all[(len(all)-1)*99/100]
		if t.target > 0 {
			violPermille := int64(violations) * 1000 / int64(len(all))
			st.BurnPermille = violPermille * 1000 / t.budget
		}
	}

	t.p50us.Set(st.P50.Microseconds())
	t.p99us.Set(st.P99.Microseconds())
	t.p99ms.Set(int64((st.P99 + time.Millisecond - 1) / time.Millisecond))
	t.windowOps.Set(int64(st.WindowOps))
	t.burn.Set(st.BurnPermille)
	return st
}
