// Package obs is the process-wide observability spine of the StorM test
// bed: a registry of named counters, gauges, and latency histograms
// (reusing metrics.Histogram), per-command stage spans along the
// VM → gateway → middle-box chain → target data path, a bounded
// structured-event log, and Prometheus-style text / JSON exposition.
//
// Hot paths hold on to the *Counter / *Gauge / Timer handles returned by
// the registry — after the one-time get-or-create, updates are a single
// atomic operation (counters, gauges) or one histogram observation.
// Counter and Gauge methods are nil-safe so instrumentation points can be
// wired unconditionally and disabled by passing a nil registry.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Counter is a monotonically increasing event count. A nil *Counter is a
// valid no-op receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level that also remembers its high-water mark
// (e.g. journal occupancy). A nil *Gauge is a valid no-op receiver.
type Gauge struct {
	v    atomic.Int64
	high atomic.Int64
}

// Set stores v and raises the high-water mark if needed.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.raise(v)
}

// Add moves the level by d (negative to lower it) and returns the new
// value, raising the high-water mark if needed.
func (g *Gauge) Add(d int64) int64 {
	if g == nil {
		return 0
	}
	v := g.v.Add(d)
	g.raise(v)
	return v
}

func (g *Gauge) raise(v int64) {
	for {
		h := g.high.Load()
		if v <= h || g.high.CompareAndSwap(h, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// High returns the highest level ever set.
func (g *Gauge) High() int64 {
	if g == nil {
		return 0
	}
	return g.high.Load()
}

// Timer is a nil-safe handle on a registry latency histogram; the zero
// value discards observations.
type Timer struct {
	h *metrics.Histogram
}

// Observe records one latency sample.
func (t Timer) Observe(d time.Duration) {
	if t.h != nil {
		t.h.Observe(d)
	}
}

// Since records the latency elapsed since t0.
func (t Timer) Since(t0 time.Time) {
	if t.h != nil {
		t.h.Observe(time.Since(t0))
	}
}

// Enabled reports whether observations are recorded.
func (t Timer) Enabled() bool { return t.h != nil }

// DroppedMetric names the counter bumped when the series cap rejects a
// new metric name; RetiredMetric counts series removed by RetireInstance.
const (
	DroppedMetric = "obs.metrics_dropped"
	RetiredMetric = "obs.metrics_retired"
)

// DefaultSeriesLimit caps the number of named series (counters + gauges +
// histograms) a registry creates before it starts refusing new names.
// Per-instance relay metrics would otherwise grow without bound across
// scale/crash-replace events; see SetSeriesLimit and RetireInstance.
const DefaultSeriesLimit = 4096

// Registry is a set of named metrics. All methods are safe for concurrent
// use; a nil *Registry returns nil (no-op) handles.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*metrics.Histogram
	limit    int // series cap; DefaultSeriesLimit when 0

	// clock overrides wall time for span/event/trace timestamps (tests);
	// nil means time.Now.
	clock atomic.Pointer[func() time.Time]

	// trace is the tracing plane state; nil until EnableTracing.
	trace atomic.Pointer[traceState]

	evMu   sync.Mutex
	events []Event
	evNext int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*metrics.Histogram),
	}
}

// Now returns the registry's notion of current time: the injected clock if
// one is set (SetClock), wall time otherwise. Nil-safe.
func (r *Registry) Now() time.Time {
	if r != nil {
		if f := r.clock.Load(); f != nil {
			return (*f)()
		}
	}
	return time.Now()
}

// SetClock injects a time source for span, event, and trace timestamps —
// the simtime-style hook that makes latency tests deterministic. A nil
// clock restores wall time.
func (r *Registry) SetClock(now func() time.Time) {
	if r == nil {
		return
	}
	if now == nil {
		r.clock.Store(nil)
		return
	}
	r.clock.Store(&now)
}

// SetSeriesLimit caps the number of distinct metric names this registry
// will create (n <= 0 restores DefaultSeriesLimit). Creations beyond the
// cap return nil no-op handles and bump the DroppedMetric counter.
func (r *Registry) SetSeriesLimit(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.limit = n
	r.mu.Unlock()
}

// admitLocked reports whether one more series may be created, bumping the
// drop counter when the cap is hit. Caller holds r.mu. The drop counter
// itself is exempt so the signal survives a saturated registry.
func (r *Registry) admitLocked(name string) bool {
	limit := r.limit
	if limit <= 0 {
		limit = DefaultSeriesLimit
	}
	if name == DroppedMetric || len(r.counters)+len(r.gauges)+len(r.hists) < limit {
		return true
	}
	c := r.counters[DroppedMetric]
	if c == nil {
		c = new(Counter)
		r.counters[DroppedMetric] = c
	}
	c.Inc()
	return false
}

// RetireInstance removes every metric series named for a torn-down relay
// instance — "relay.<inst>.*", "stage.relay.<inst>.*", and
// "orch.member.<inst>.*" — so per-instance cardinality cannot grow without
// bound across scale-down and crash-replace events. It returns the number
// of series removed (also accumulated in the RetiredMetric counter).
// Handles already held by callers keep working but are no longer exposed.
func (r *Registry) RetireInstance(inst string) int {
	if r == nil || inst == "" {
		return 0
	}
	prefixes := []string{
		"relay." + inst + ".",
		StagePrefix + "relay." + inst + ".",
		"orch.member." + inst + ".",
	}
	match := func(name string) bool {
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	r.mu.Lock()
	n := 0
	for name := range r.counters {
		if match(name) {
			delete(r.counters, name)
			n++
		}
	}
	for name := range r.gauges {
		if match(name) {
			delete(r.gauges, name)
			n++
		}
	}
	for name := range r.hists {
		if match(name) {
			delete(r.hists, name)
			n++
		}
	}
	r.mu.Unlock()
	if n > 0 {
		r.Counter(RetiredMetric).Add(int64(n))
	}
	return n
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that the wired-in
// instrumentation (cloud, splice, relays, caches) reports into.
func Default() *Registry { return defaultRegistry }

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		if !r.admitLocked(name) {
			return nil
		}
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		if !r.admitLocked(name) {
			return nil
		}
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named latency histogram,
// or nil on a nil registry.
func (r *Registry) Histogram(name string) *metrics.Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if !r.admitLocked(name) {
			return nil
		}
		h = new(metrics.Histogram)
		r.hists[name] = h
	}
	return h
}

// Timer returns a nil-safe handle on the named latency histogram.
func (r *Registry) Timer(name string) Timer {
	return Timer{h: r.Histogram(name)}
}

// HistogramNames returns the sorted names of all histograms.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.hists))
	for name := range r.hists {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Reset discards every metric and event (tests; registry handles held by
// callers keep working but point at values no longer exposed).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.hists = make(map[string]*metrics.Histogram)
	r.mu.Unlock()
	r.evMu.Lock()
	r.events = nil
	r.evNext = 0
	r.evMu.Unlock()
	if ts := r.trace.Load(); ts != nil {
		ts.reset()
	}
}
