// Package obs is the process-wide observability spine of the StorM test
// bed: a registry of named counters, gauges, and latency histograms
// (reusing metrics.Histogram), per-command stage spans along the
// VM → gateway → middle-box chain → target data path, a bounded
// structured-event log, and Prometheus-style text / JSON exposition.
//
// Hot paths hold on to the *Counter / *Gauge / Timer handles returned by
// the registry — after the one-time get-or-create, updates are a single
// atomic operation (counters, gauges) or one histogram observation.
// Counter and Gauge methods are nil-safe so instrumentation points can be
// wired unconditionally and disabled by passing a nil registry.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Counter is a monotonically increasing event count. A nil *Counter is a
// valid no-op receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level that also remembers its high-water mark
// (e.g. journal occupancy). A nil *Gauge is a valid no-op receiver.
type Gauge struct {
	v    atomic.Int64
	high atomic.Int64
}

// Set stores v and raises the high-water mark if needed.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.raise(v)
}

// Add moves the level by d (negative to lower it) and returns the new
// value, raising the high-water mark if needed.
func (g *Gauge) Add(d int64) int64 {
	if g == nil {
		return 0
	}
	v := g.v.Add(d)
	g.raise(v)
	return v
}

func (g *Gauge) raise(v int64) {
	for {
		h := g.high.Load()
		if v <= h || g.high.CompareAndSwap(h, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// High returns the highest level ever set.
func (g *Gauge) High() int64 {
	if g == nil {
		return 0
	}
	return g.high.Load()
}

// Timer is a nil-safe handle on a registry latency histogram; the zero
// value discards observations.
type Timer struct {
	h *metrics.Histogram
}

// Observe records one latency sample.
func (t Timer) Observe(d time.Duration) {
	if t.h != nil {
		t.h.Observe(d)
	}
}

// Since records the latency elapsed since t0.
func (t Timer) Since(t0 time.Time) {
	if t.h != nil {
		t.h.Observe(time.Since(t0))
	}
}

// Enabled reports whether observations are recorded.
func (t Timer) Enabled() bool { return t.h != nil }

// DroppedMetric names the counter bumped when the series cap rejects a
// new metric name; RetiredMetric counts series removed by RetireInstance.
const (
	DroppedMetric = "obs.metrics_dropped"
	RetiredMetric = "obs.metrics_retired"
)

// DefaultSeriesLimit caps the number of named series (counters + gauges +
// histograms) a registry creates before it starts refusing new names.
// Per-instance relay metrics would otherwise grow without bound across
// scale/crash-replace events; see SetSeriesLimit and RetireInstance.
const DefaultSeriesLimit = 4096

// regShards is the number of lock stripes a registry's series maps are
// split over. Concurrent tenants creating or resolving handles hash to
// different shards instead of serializing on one registry-wide RWMutex.
const regShards = 32

// regShard is one stripe of the registry's name→series maps.
type regShard struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*metrics.Histogram
}

// Registry is a set of named metrics. All methods are safe for concurrent
// use; a nil *Registry returns nil (no-op) handles. The series maps are
// sharded by name hash; the cardinality cap stays globally consistent via
// one atomic series counter shared by all shards.
type Registry struct {
	shards [regShards]regShard
	series atomic.Int64 // named series across all shards (cap accounting)
	limit  atomic.Int64 // series cap; DefaultSeriesLimit when 0

	// clock overrides wall time for span/event/trace timestamps (tests);
	// nil means time.Now.
	clock atomic.Pointer[func() time.Time]

	// trace is the tracing plane state; nil until EnableTracing.
	trace atomic.Pointer[traceState]

	evMu   sync.Mutex
	events []Event
	evNext int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.counters = make(map[string]*Counter)
		sh.gauges = make(map[string]*Gauge)
		sh.hists = make(map[string]*metrics.Histogram)
	}
	return r
}

// shard returns the stripe owning name (FNV-1a over the name bytes).
func (r *Registry) shard(name string) *regShard {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return &r.shards[h%regShards]
}

// Now returns the registry's notion of current time: the injected clock if
// one is set (SetClock), wall time otherwise. Nil-safe.
func (r *Registry) Now() time.Time {
	if r != nil {
		if f := r.clock.Load(); f != nil {
			return (*f)()
		}
	}
	return time.Now()
}

// SetClock injects a time source for span, event, and trace timestamps —
// the simtime-style hook that makes latency tests deterministic. A nil
// clock restores wall time.
func (r *Registry) SetClock(now func() time.Time) {
	if r == nil {
		return
	}
	if now == nil {
		r.clock.Store(nil)
		return
	}
	r.clock.Store(&now)
}

// SetSeriesLimit caps the number of distinct metric names this registry
// will create (n <= 0 restores DefaultSeriesLimit). Creations beyond the
// cap return nil no-op handles and bump the DroppedMetric counter.
func (r *Registry) SetSeriesLimit(n int) {
	if r == nil {
		return
	}
	r.limit.Store(int64(n))
}

// admit reserves one series slot against the global cap, returning false
// when the registry is full. It is an atomic reserve — concurrent creates
// on different shards can never overshoot the cap. The drop counter itself
// is exempt so the signal survives a saturated registry. Called with the
// owning shard's lock held; the caller bumps DroppedMetric after unlocking
// (the counter may live on another shard).
func (r *Registry) admit(name string) bool {
	if name == DroppedMetric {
		return true
	}
	limit := r.limit.Load()
	if limit <= 0 {
		limit = DefaultSeriesLimit
	}
	if r.series.Add(1) <= limit {
		return true
	}
	r.series.Add(-1)
	return false
}

// RetireInstance removes every metric series named for a torn-down relay
// instance — "relay.<inst>.*", "stage.relay.<inst>.*", and
// "orch.member.<inst>.*" — so per-instance cardinality cannot grow without
// bound across scale-down and crash-replace events. It returns the number
// of series removed (also accumulated in the RetiredMetric counter).
// Handles already held by callers keep working but are no longer exposed.
func (r *Registry) RetireInstance(inst string) int {
	if r == nil || inst == "" {
		return 0
	}
	prefixes := []string{
		"relay." + inst + ".",
		StagePrefix + "relay." + inst + ".",
		"orch.member." + inst + ".",
		"replicate." + inst + ".",
		"scrub." + inst + ".",
	}
	match := func(name string) bool {
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for name := range sh.counters {
			if match(name) {
				delete(sh.counters, name)
				n++
			}
		}
		for name := range sh.gauges {
			if match(name) {
				delete(sh.gauges, name)
				n++
			}
		}
		for name := range sh.hists {
			if match(name) {
				delete(sh.hists, name)
				n++
			}
		}
		sh.mu.Unlock()
	}
	if n > 0 {
		r.series.Add(int64(-n))
		r.Counter(RetiredMetric).Add(int64(n))
	}
	return n
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that the wired-in
// instrumentation (cloud, splice, relays, caches) reports into.
func Default() *Registry { return defaultRegistry }

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	sh := r.shard(name)
	sh.mu.RLock()
	c := sh.counters[name]
	sh.mu.RUnlock()
	if c != nil {
		return c
	}
	sh.mu.Lock()
	if c = sh.counters[name]; c == nil && r.admit(name) {
		c = new(Counter)
		sh.counters[name] = c
	}
	sh.mu.Unlock()
	if c == nil {
		r.Counter(DroppedMetric).Inc()
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	sh := r.shard(name)
	sh.mu.RLock()
	g := sh.gauges[name]
	sh.mu.RUnlock()
	if g != nil {
		return g
	}
	sh.mu.Lock()
	if g = sh.gauges[name]; g == nil && r.admit(name) {
		g = new(Gauge)
		sh.gauges[name] = g
	}
	sh.mu.Unlock()
	if g == nil {
		r.Counter(DroppedMetric).Inc()
	}
	return g
}

// Histogram returns (creating on first use) the named latency histogram,
// or nil on a nil registry.
func (r *Registry) Histogram(name string) *metrics.Histogram {
	if r == nil {
		return nil
	}
	sh := r.shard(name)
	sh.mu.RLock()
	h := sh.hists[name]
	sh.mu.RUnlock()
	if h != nil {
		return h
	}
	sh.mu.Lock()
	if h = sh.hists[name]; h == nil && r.admit(name) {
		h = new(metrics.Histogram)
		sh.hists[name] = h
	}
	sh.mu.Unlock()
	if h == nil {
		r.Counter(DroppedMetric).Inc()
	}
	return h
}

// Timer returns a nil-safe handle on the named latency histogram.
func (r *Registry) Timer(name string) Timer {
	return Timer{h: r.Histogram(name)}
}

// HistogramNames returns the sorted names of all histograms.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	var out []string
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for name := range sh.hists {
			out = append(out, name)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Reset discards every metric and event (tests; registry handles held by
// callers keep working but point at values no longer exposed).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		sh.counters = make(map[string]*Counter)
		sh.gauges = make(map[string]*Gauge)
		sh.hists = make(map[string]*metrics.Histogram)
		sh.mu.Unlock()
	}
	r.series.Store(0)
	r.evMu.Lock()
	r.events = nil
	r.evNext = 0
	r.evMu.Unlock()
	if ts := r.trace.Load(); ts != nil {
		ts.reset()
	}
}
