package obs

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// TestSLOWindowRollOver drives a tracker on a fake clock: violations in
// an early slot must age out of the rolling window once the ring rotates
// past them, and the burn gauge must follow.
func TestSLOWindowRollOver(t *testing.T) {
	r := NewRegistry()
	now := time.Unix(1000, 0)
	r.SetClock(func() time.Time { return now })

	const target = 2 * time.Millisecond
	tr := NewSLOTracker(r, "t1.enc", target, SLOConfig{
		Window: 6 * time.Second, Slots: 6, BudgetPermille: 100,
	})
	h := r.Histogram("stage.relay.t1-enc-0.service.write")
	tr.Watch("stage.relay.t1-enc-0.service.write")

	// Slot 1: ten ops, half over target -> burn 5x the 10% budget.
	for i := 0; i < 5; i++ {
		h.Observe(time.Millisecond)
		h.Observe(5 * time.Millisecond)
	}
	st := tr.Tick(now)
	if st.WindowOps != 10 || st.Violations != 5 {
		t.Fatalf("slot1: ops=%d viol=%d, want 10/5", st.WindowOps, st.Violations)
	}
	if st.BurnPermille != 5000 {
		t.Errorf("slot1 burn = %d, want 5000", st.BurnPermille)
	}
	if got := r.Gauge("slo.t1.enc.burn_permille").Value(); got != 5000 {
		t.Errorf("burn gauge = %d, want 5000", got)
	}
	if got := r.Gauge("slo.t1.enc.p99_us").Value(); got != 5000 {
		t.Errorf("p99 gauge = %d us, want 5000", got)
	}
	if got := r.Gauge("slo.t1.enc.target_us").Value(); got != target.Microseconds() {
		t.Errorf("target gauge = %d, want %d", got, target.Microseconds())
	}

	// Three slots later: add clean ops; the old violations still count.
	now = now.Add(3 * time.Second)
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	st = tr.Tick(now)
	if st.WindowOps != 20 || st.Violations != 5 {
		t.Fatalf("mid-window: ops=%d viol=%d, want 20/5", st.WindowOps, st.Violations)
	}

	// Past the window: the first slot (and its violations) must roll off.
	now = now.Add(3500 * time.Millisecond)
	st = tr.Tick(now)
	if st.Violations != 0 {
		t.Errorf("after roll-over: violations = %d, want 0", st.Violations)
	}
	if st.WindowOps != 10 {
		t.Errorf("after roll-over: ops = %d, want 10 (only the clean slot)", st.WindowOps)
	}
	if st.BurnPermille != 0 {
		t.Errorf("after roll-over: burn = %d, want 0", st.BurnPermille)
	}

	// Idle gap far beyond the window: everything expires.
	now = now.Add(time.Minute)
	st = tr.Tick(now)
	if st.WindowOps != 0 || st.BurnPermille != 0 {
		t.Errorf("after idle gap: ops=%d burn=%d, want 0/0", st.WindowOps, st.BurnPermille)
	}
}

// TestSeriesLimitAndRetire covers the cardinality bound: past the series
// cap new names are rejected (nil-safe handles, obs.metrics_dropped
// counts them) and RetireInstance frees an instance's series for reuse.
func TestSeriesLimitAndRetire(t *testing.T) {
	r := NewRegistry()
	r.SetSeriesLimit(8)
	for i := 0; i < 8; i++ {
		r.Counter(fmt.Sprintf("relay.inst-%d.busy_ns", i)).Inc()
	}
	if c := r.Counter("one.too.many"); c != nil {
		t.Errorf("counter beyond the series limit not rejected")
	}
	r.Counter("one.too.many").Inc() // nil-safe no-op
	if g := r.Gauge("also.too.many"); g != nil {
		t.Errorf("gauge beyond the series limit not rejected")
	}
	if h := r.Histogram("hist.too.many"); h != nil {
		t.Errorf("histogram beyond the series limit not rejected")
	}
	// Every rejected lookup counts: two counter attempts, one gauge, one
	// histogram.
	if got := r.Counter(DroppedMetric).Value(); got != 4 {
		t.Errorf("%s = %d, want 4", DroppedMetric, got)
	}
	// Existing series stay writable at the cap.
	r.Counter("relay.inst-3.busy_ns").Inc()
	if got := r.Counter("relay.inst-3.busy_ns").Value(); got != 2 {
		t.Errorf("existing counter at cap = %d, want 2", got)
	}

	// Retiring an instance deletes its series (all three prefixes) and
	// makes room for new ones.
	r2 := NewRegistry()
	r2.SetSeriesLimit(6)
	r2.Counter("relay.t1-enc-0.busy_ns").Add(7)
	r2.Gauge("orch.member.t1-enc-0.util_permille").Set(500)
	r2.Timer("stage.relay.t1-enc-0.service.read").Observe(time.Millisecond)
	r2.Counter("relay.t1-enc-1.busy_ns").Inc() // survivor
	if n := r2.RetireInstance("t1-enc-0"); n != 3 {
		t.Fatalf("RetireInstance removed %d series, want 3", n)
	}
	if got := r2.Counter(RetiredMetric).Value(); got != 3 {
		t.Errorf("%s = %d, want 3", RetiredMetric, got)
	}
	if got := r2.Counter("relay.t1-enc-1.busy_ns").Value(); got != 1 {
		t.Errorf("survivor counter lost: %d", got)
	}
	// The retired counter name starts fresh.
	if got := r2.Counter("relay.t1-enc-0.busy_ns").Value(); got != 0 {
		t.Errorf("retired counter kept value %d", got)
	}
}

// TestTraceTailRetention exercises the retention policy directly: slow
// roots become exemplars (evicting cheaper ones), non-slow traces are
// head-sampled 1-in-N, and Abort discards a root's trace entirely.
func TestTraceTailRetention(t *testing.T) {
	r := NewRegistry()
	now := time.Unix(0, 0)
	r.SetClock(func() time.Time { return now })
	r.EnableTracing(TraceConfig{SlowPerStage: 2, SampleEvery: 10})

	run := func(d time.Duration) {
		sp := r.StartTraced("initiator", "read", 4096)
		now = now.Add(d)
		sp.End()
	}
	// Two slow commands fill the exemplar slots, then a burst of fast ones
	// that never displace them — those only survive via 1-in-10 sampling.
	run(100 * time.Millisecond)
	run(90 * time.Millisecond)
	for i := 0; i < 18; i++ {
		run(time.Millisecond)
	}
	slow := r.SlowTraces(10)
	if len(slow) != 2 {
		t.Fatalf("retained %d slow traces, want 2 (SlowPerStage)", len(slow))
	}
	if slow[0].Dur != 100*time.Millisecond || slow[1].Dur != 90*time.Millisecond {
		t.Errorf("slow exemplars = %v/%v, want 100ms/90ms", slow[0].Dur, slow[1].Dur)
	}
	if !slow[0].Slow {
		t.Error("exemplar not marked Slow")
	}
	all := r.Traces()
	if len(all) <= 2 {
		t.Errorf("no head samples retained: %d total traces", len(all))
	}
	headSampled := 0
	for _, tr := range all {
		if !tr.Slow {
			headSampled++
			if tr.Dur != time.Millisecond {
				t.Errorf("head sample dur = %v, want 1ms", tr.Dur)
			}
		}
	}
	if headSampled != 1 {
		t.Errorf("head-sampled %d of 18 fast traces at 1-in-10, want 1", headSampled)
	}

	// Abort: a failed command leaves nothing behind.
	r.EnableTracing(TraceConfig{}) // reset plane
	sp := r.StartTraced("initiator", "read", 512)
	now = now.Add(time.Hour) // would dominate any exemplar list
	sp.Abort()
	if got := r.SlowTraces(1); len(got) != 0 {
		t.Errorf("aborted trace retained: %+v", got)
	}
}

// TestTracedPipeCarrier checks the out-of-band ITT carrier: contexts put
// on one end are taken on the other, and Take consumes.
func TestTracedPipeCarrier(t *testing.T) {
	r := NewRegistry()
	r.EnableTracing(TraceConfig{})
	c1, c2 := TracedPipe()
	defer c1.Close()
	defer c2.Close()

	tbl1, tbl2 := CarrierOf(c1), CarrierOf(c2)
	if tbl1 == nil || tbl1 != tbl2 {
		t.Fatal("pipe ends do not share one trace table")
	}
	sp := r.StartTraced("initiator", "read", 0)
	tbl1.Put(42, sp.Context())
	sc, ok := tbl2.Take(42)
	if !ok || sc.Trace() != sp.Context().Trace() {
		t.Fatalf("Take(42) = %+v, %v", sc, ok)
	}
	if _, ok := tbl2.Take(42); ok {
		t.Error("Take did not consume the entry")
	}
	if CarrierOf(nil) != nil {
		t.Error("CarrierOf(nil) != nil")
	}
	sp.End()
}

// TestPrometheusGolden locks the full text exposition format against a
// golden file: HELP/TYPE for every series, cumulative le buckets with
// +Inf, _sum and _count. Regenerate with -update-golden.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.SetClock(func() time.Time { return time.Unix(42, 0) })
	r.Counter("nat.rewrites").Add(3)
	r.Counter("relay.mb1.busy_ns").Add(1500000)
	r.Gauge("journal.used_bytes").Set(128)
	g := r.Gauge("slo.t1.enc.burn_permille")
	g.Set(250)
	h := r.Histogram("stage.target.read")
	for _, d := range []time.Duration{
		30 * time.Microsecond,
		400 * time.Microsecond,
		2 * time.Millisecond,
		2 * time.Millisecond,
		40 * time.Millisecond,
		3 * time.Second,
		10 * time.Second,
	} {
		h.Observe(d)
	}

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
