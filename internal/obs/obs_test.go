package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Add(5)
	r.Timer("z").Observe(time.Millisecond)
	r.Eventf("k", "msg")
	if r.Counter("x").Value() != 0 || r.Gauge("y").Value() != 0 {
		t.Error("nil registry leaked state")
	}
	if r.Timer("z").Enabled() {
		t.Error("nil registry timer should be disabled")
	}
	if sp := r.StartSpan("s"); true {
		sp.End() // must not panic
	}
	if got := r.Snapshot(); len(got.Counters) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	if r.HistogramNames() != nil {
		t.Error("nil registry histogram names not nil")
	}
	r.Reset() // must not panic
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("reqs") != c {
		t.Error("same name should return same counter")
	}

	g := r.Gauge("depth")
	g.Set(10)
	if v := g.Add(-3); v != 7 {
		t.Errorf("Add returned %d, want 7", v)
	}
	g.Add(20)
	g.Add(-25)
	if g.Value() != 2 {
		t.Errorf("gauge = %d, want 2", g.Value())
	}
	if g.High() != 27 {
		t.Errorf("high-water = %d, want 27", g.High())
	}
}

func TestSpanRecordsIntoStageHistogram(t *testing.T) {
	r := NewRegistry()
	now := time.Unix(100, 0)
	r.SetClock(func() time.Time { return now })
	sp := r.StartSpan("gateway.ingress")
	now = now.Add(time.Millisecond)
	sp.End()
	s := r.Histogram(StagePrefix + "gateway.ingress").Snapshot()
	if s.Count != 1 {
		t.Fatalf("span count = %d, want 1", s.Count)
	}
	if s.Mean != time.Millisecond {
		t.Errorf("span mean = %v, want exactly 1ms (fake clock)", s.Mean)
	}
}

func TestStageNames(t *testing.T) {
	if got := RelayServiceStage("mb1"); got != "relay.mb1.service" {
		t.Errorf("RelayServiceStage = %q", got)
	}
	if got := RelayForwardStage(""); got != "relay.forward" {
		t.Errorf("RelayForwardStage(\"\") = %q", got)
	}
}

func TestEventRingBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < maxEvents+37; i++ {
		r.Eventf("k", "event %d", i)
	}
	evs := r.Events()
	if len(evs) != maxEvents {
		t.Fatalf("len(events) = %d, want %d", len(evs), maxEvents)
	}
	// Oldest surviving event is #37; newest is the last appended.
	if want := fmt.Sprintf("event %d", 37); evs[0].Msg != want {
		t.Errorf("first event = %q, want %q", evs[0].Msg, want)
	}
	if want := fmt.Sprintf("event %d", maxEvents+36); evs[len(evs)-1].Msg != want {
		t.Errorf("last event = %q, want %q", evs[len(evs)-1].Msg, want)
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// get-or-create races, hot-path updates, and snapshot readers — and then
// checks nothing was lost. Run with -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		iters   = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared.counter").Inc()
				r.Counter(fmt.Sprintf("per.worker.%d", w)).Inc()
				r.Gauge("shared.gauge").Add(1)
				r.Gauge("shared.gauge").Add(-1)
				r.Timer("shared.latency").Observe(time.Duration(i) * time.Microsecond)
				if i%50 == 0 {
					r.Eventf("worker", "w%d i%d", w, i)
					_ = r.Snapshot()
					var buf bytes.Buffer
					_ = r.WriteText(&buf)
				}
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counter("shared.counter").Value(); got != workers*iters {
		t.Errorf("shared counter = %d, want %d", got, workers*iters)
	}
	for w := 0; w < workers; w++ {
		if got := r.Counter(fmt.Sprintf("per.worker.%d", w)).Value(); got != iters {
			t.Errorf("worker %d counter = %d, want %d", w, got, iters)
		}
	}
	if got := r.Gauge("shared.gauge").Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := r.Histogram("shared.latency").Snapshot().Count; got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("nat.rewrites").Add(3)
	r.Gauge("journal.used_bytes").Set(128)
	r.Timer("stage.target.read").Observe(2 * time.Millisecond)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP storm_nat_rewrites storm counter nat.rewrites",
		"# TYPE storm_nat_rewrites counter",
		"storm_nat_rewrites 3",
		"# TYPE storm_journal_used_bytes gauge",
		"storm_journal_used_bytes 128",
		"storm_journal_used_bytes_high 128",
		"# TYPE storm_stage_target_read_seconds histogram",
		`storm_stage_target_read_seconds_bucket{le="0.001"} 0`,
		`storm_stage_target_read_seconds_bucket{le="0.0025"} 1`,
		`storm_stage_target_read_seconds_bucket{le="+Inf"} 1`,
		"storm_stage_target_read_seconds_sum 0.002",
		"storm_stage_target_read_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Gauge("g").Set(9)
	r.Timer("stage.initiator.read").Observe(time.Millisecond)
	r.Eventf("kind", "hello")
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if snap.Counters["c"] != 1 || snap.Gauges["g"].Value != 9 {
		t.Errorf("snapshot lost values: %+v", snap)
	}
	if snap.Histograms["stage.initiator.read"].Count != 1 {
		t.Error("snapshot lost histogram")
	}
	if len(snap.Events) != 1 || snap.Events[0].Msg != "hello" {
		t.Errorf("snapshot lost events: %+v", snap.Events)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	for path, want := range map[string]string{
		"/metrics":      "storm_hits 1",
		"/metrics.json": `"hits": 1`,
		"/":             "storm metrics",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(buf.String(), want) {
			t.Errorf("GET %s: missing %q in %q", path, want, buf.String())
		}
	}
}
