package obs

import (
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The tracing plane assigns every iSCSI command a trace ID at the
// initiator and follows it across the middle-box chain: each stage a
// command touches (initiator session, gateway hop, relay service leg,
// relay forward leg, MB-FWD hop, target) ends a SpanRecord into the
// owning trace. The ID travels in per-session command state — goroutine
// bindings inside a station, an out-of-band per-connection TraceTable
// keyed by the iSCSI initiator task tag between stations — never on the
// wire format.
//
// Always-on overhead stays low through tail-based retention: when a
// trace's root span ends, the trace is kept only if it ranks among the
// slowest SlowPerStage traces for its root stage (the exemplars attached
// to the histogram tail) or falls on the 1-in-SampleEvery head sample;
// everything else is dropped. Late spans (an active relay's asynchronous
// write-back forward) still land on retained traces during a bounded
// grace window after the root ends.

// TraceID identifies one end-to-end command trace.
type TraceID uint64

// SpanContext names a position in a trace: the trace a downstream span
// joins and the span it records as its parent. The zero value means "no
// trace"; spans started under it open a fresh trace.
type SpanContext struct {
	reg   *Registry
	trace TraceID
	span  uint64
}

// Valid reports whether the context belongs to a live trace.
func (sc SpanContext) Valid() bool { return sc.reg != nil && sc.trace != 0 }

// Trace returns the trace ID (0 when invalid).
func (sc SpanContext) Trace() TraceID { return sc.trace }

// SpanRecord is one finished stage span of a trace.
type SpanRecord struct {
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"`
	Stage  string        `json:"stage"`
	Dir    string        `json:"dir,omitempty"` // "read", "write", "ctl"
	Bytes  int           `json:"bytes,omitempty"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
}

// TraceRecord is one command's collected spans. Root/Start/Dur describe
// the root span (the initiator's end-to-end leg); Slow marks tail
// exemplars (vs head-sampled traces).
type TraceRecord struct {
	ID    TraceID       `json:"id"`
	Root  string        `json:"root"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
	Slow  bool          `json:"slow,omitempty"`
	Spans []SpanRecord  `json:"spans"`
}

// TraceConfig tunes the tracing plane; zero fields take the defaults.
type TraceConfig struct {
	// SlowPerStage is how many tail exemplars (slowest end-to-end traces)
	// to retain per root stage. Default 8.
	SlowPerStage int
	// SampleEvery head-samples 1 in N non-slow traces as a baseline
	// (default 64; negative disables head sampling entirely).
	SampleEvery int
	// MaxSpans bounds the spans kept per trace (default 32).
	MaxSpans int
	// MaxSampled bounds the head-sample ring (default 64).
	MaxSampled int
}

func (c *TraceConfig) fill() {
	if c.SlowPerStage <= 0 {
		c.SlowPerStage = 8
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 64
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = 32
	}
	if c.MaxSampled <= 0 {
		c.MaxSampled = 64
	}
}

// liveCap bounds in-flight traces; doneGrace is how many finished traces
// stay addressable for late spans before eviction.
const (
	liveCap   = 1024
	doneGrace = 128
)

// traceState is a registry's tracing plane.
type traceState struct {
	cfg       TraceConfig
	nextTrace atomic.Uint64
	nextSpan  atomic.Uint64

	mu      sync.Mutex
	live    map[TraceID]*traceEntry
	doneQ   []TraceID // finished traces pending eviction, oldest first
	slow    map[string][]*traceEntry
	sampled []*traceEntry
	sampNxt int
	seen    uint64 // finished traces, for head sampling
}

type traceEntry struct {
	rec      TraceRecord
	done     bool
	retained bool
}

func newTraceState(cfg TraceConfig) *traceState {
	cfg.fill()
	return &traceState{
		cfg:  cfg,
		live: make(map[TraceID]*traceEntry),
		slow: make(map[string][]*traceEntry),
	}
}

func (ts *traceState) reset() {
	ts.mu.Lock()
	ts.live = make(map[TraceID]*traceEntry)
	ts.doneQ = nil
	ts.slow = make(map[string][]*traceEntry)
	ts.sampled = nil
	ts.sampNxt = 0
	ts.seen = 0
	ts.mu.Unlock()
}

// EnableTracing turns the tracing plane on with the given config (zero
// value for defaults). Until called, traced spans degrade to plain stage
// histogram observations with no per-command state.
func (r *Registry) EnableTracing(cfg TraceConfig) {
	if r == nil {
		return
	}
	r.trace.Store(newTraceState(cfg))
}

// DisableTracing turns the tracing plane off and discards its buffers.
func (r *Registry) DisableTracing() {
	if r == nil {
		return
	}
	r.trace.Store(nil)
}

// TracingEnabled reports whether the tracing plane is on.
func (r *Registry) TracingEnabled() bool {
	return r != nil && r.trace.Load() != nil
}

// StartTraced opens a traced span for one stage of one command. The
// histogram observation lands in "stage.<stage>.<dir>" ("stage.<stage>"
// when dir is empty) exactly like StartSpan. If the calling goroutine
// carries a bound span context of this registry, the span joins that
// trace as a child; otherwise it becomes the root of a new trace and its
// End triggers the retention decision. With tracing disabled this is just
// a histogram span.
func (r *Registry) StartTraced(stage, dir string, bytes int) Span {
	if r == nil {
		return Span{}
	}
	name := StagePrefix + stage
	if dir != "" {
		name += "." + dir
	}
	sp := Span{t: r.Timer(name), reg: r, start: r.Now()}
	ts := r.trace.Load()
	if ts == nil {
		return sp
	}
	sp.stage, sp.dir, sp.bytes = stage, dir, bytes
	if cur, ok := Current(); ok && cur.reg == r && cur.trace != 0 {
		sp.tr, sp.parent = cur.trace, cur.span
	} else {
		sp.tr = TraceID(ts.nextTrace.Add(1))
		sp.root = true
	}
	sp.id = ts.nextSpan.Add(1)
	return sp
}

// Context returns the span's position for propagation to a downstream
// stage (goroutine binding or a connection's TraceTable).
func (s Span) Context() SpanContext {
	if s.tr == 0 {
		return SpanContext{}
	}
	return SpanContext{reg: s.reg, trace: s.tr, span: s.id}
}

// spanEnd lands a finished span on its trace, creating the live entry on
// first arrival (children of a synchronous chain end before their root).
func (ts *traceState) spanEnd(s Span, end time.Time) {
	rec := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Stage:  s.stage,
		Dir:    s.dir,
		Bytes:  s.bytes,
		Start:  s.start,
		Dur:    end.Sub(s.start),
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	e := ts.live[s.tr]
	if e == nil {
		if len(ts.live) >= liveCap {
			ts.evictLocked(true)
			if len(ts.live) >= liveCap {
				return // still saturated: drop the span
			}
		}
		e = &traceEntry{rec: TraceRecord{ID: s.tr}}
		ts.live[s.tr] = e
	}
	if len(e.rec.Spans) < ts.cfg.MaxSpans {
		e.rec.Spans = append(e.rec.Spans, rec)
	}
	if !s.root {
		return
	}
	// Root ended: fix the trace's identity and decide retention.
	e.done = true
	e.rec.Root = s.stage
	e.rec.Start = s.start
	e.rec.Dur = rec.Dur
	ts.seen++
	ts.retainLocked(e)
	ts.doneQ = append(ts.doneQ, s.tr)
	if len(ts.doneQ) > doneGrace {
		ts.evictLocked(false)
	}
}

// retainLocked applies the tail-based retention policy to a finished
// trace: keep it as a slow exemplar for its root stage if it beats the
// current slowest-N, else head-sample 1 in SampleEvery into the ring.
func (ts *traceState) retainLocked(e *traceEntry) {
	slow := ts.slow[e.rec.Root]
	if len(slow) < ts.cfg.SlowPerStage {
		e.retained, e.rec.Slow = true, true
		ts.slow[e.rec.Root] = insertByDur(slow, e)
		return
	}
	// slow is sorted ascending by Dur; slow[0] is the cheapest exemplar.
	if e.rec.Dur > slow[0].rec.Dur {
		slow[0].retained = false
		e.retained, e.rec.Slow = true, true
		ts.slow[e.rec.Root] = insertByDur(slow[1:], e)
		return
	}
	if ts.cfg.SampleEvery > 0 && ts.seen%uint64(ts.cfg.SampleEvery) == 1 {
		e.retained = true
		if len(ts.sampled) < ts.cfg.MaxSampled {
			ts.sampled = append(ts.sampled, e)
			return
		}
		ts.sampled[ts.sampNxt].retained = false
		ts.sampled[ts.sampNxt] = e
		ts.sampNxt = (ts.sampNxt + 1) % ts.cfg.MaxSampled
	}
}

func insertByDur(slow []*traceEntry, e *traceEntry) []*traceEntry {
	i := sort.Search(len(slow), func(j int) bool { return slow[j].rec.Dur >= e.rec.Dur })
	slow = append(slow, nil)
	copy(slow[i+1:], slow[i:])
	slow[i] = e
	return slow
}

// evictLocked trims the live map: finished traces beyond the grace queue
// first; under pressure (force) also the oldest finished entries and, as
// a last resort, nothing — unfinished traces are never dropped here, the
// caller drops the incoming span instead.
func (ts *traceState) evictLocked(force bool) {
	target := doneGrace
	if force {
		target = doneGrace / 2
	}
	for len(ts.doneQ) > target {
		id := ts.doneQ[0]
		ts.doneQ = ts.doneQ[1:]
		delete(ts.live, id)
	}
}

// RecordHop charges a completed fabric-hop share (gateway ingress/egress,
// MB-FWD) to the trace bound to the calling goroutine. Repeated frames of
// the same stage under the same parent span coalesce into one span, so a
// multi-frame PDU costs one record per hop, not one per frame. No-op when
// tracing is off or no trace is bound.
func (r *Registry) RecordHop(stage string, d time.Duration) {
	if r == nil {
		return
	}
	ts := r.trace.Load()
	if ts == nil {
		return
	}
	cur, ok := Current()
	if !ok || cur.reg != r || cur.trace == 0 {
		return
	}
	end := r.Now()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	e := ts.live[cur.trace]
	if e == nil {
		if len(ts.live) >= liveCap {
			return
		}
		e = &traceEntry{rec: TraceRecord{ID: cur.trace}}
		ts.live[cur.trace] = e
	}
	for i := range e.rec.Spans {
		sp := &e.rec.Spans[i]
		if sp.Stage == stage && sp.Parent == cur.span {
			sp.Dur += d
			return
		}
	}
	if len(e.rec.Spans) < ts.cfg.MaxSpans {
		e.rec.Spans = append(e.rec.Spans, SpanRecord{
			ID:     ts.nextSpan.Add(1),
			Parent: cur.span,
			Stage:  stage,
			Start:  end.Add(-d),
			Dur:    d,
		})
	}
}

// Traces returns a copy of every retained trace, newest first.
func (r *Registry) Traces() []TraceRecord {
	if r == nil {
		return nil
	}
	ts := r.trace.Load()
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]TraceRecord, 0, len(ts.sampled)+ts.cfg.SlowPerStage*len(ts.slow))
	for _, slow := range ts.slow {
		for _, e := range slow {
			out = append(out, copyTrace(e))
		}
	}
	for _, e := range ts.sampled {
		out = append(out, copyTrace(e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

// SlowTraces returns up to n retained tail exemplars, slowest first.
func (r *Registry) SlowTraces(n int) []TraceRecord {
	if r == nil || n <= 0 {
		return nil
	}
	ts := r.trace.Load()
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	var out []TraceRecord
	for _, slow := range ts.slow {
		for _, e := range slow {
			out = append(out, copyTrace(e))
		}
	}
	ts.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Dur > out[j].Dur })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

func copyTrace(e *traceEntry) TraceRecord {
	rec := e.rec
	rec.Spans = append([]SpanRecord(nil), e.rec.Spans...)
	sort.Slice(rec.Spans, func(i, j int) bool { return rec.Spans[i].Start.Before(rec.Spans[j].Start) })
	return rec
}

// ---- goroutine-bound span context ----------------------------------------
//
// Within one station a command is serviced by a synchronous call chain on
// one goroutine (plus explicitly hand-off points like the write-back
// applier, which re-bind). Binding the span context to the goroutine lets
// deep instrumentation (device stacks, fabric hops, nested forward
// sessions) join the trace without threading a context through every
// blockdev.Device method signature.

const ctxShards = 64

type ctxShard struct {
	mu sync.Mutex
	m  map[uint64]SpanContext
}

var traceCtx [ctxShards]ctxShard

func init() {
	for i := range traceCtx {
		traceCtx[i].m = make(map[uint64]SpanContext)
	}
}

// fastGoid is set at init when getg passes its self-check; it gates the
// g-pointer fast path in goid. Written once before any concurrent use.
var fastGoid = checkGetg()

// checkGetg validates the architecture-specific getg: non-zero, stable
// across calls and stack growth on one goroutine, distinct across
// goroutines. On any failure goid falls back to the stack-header parse.
func checkGetg() bool {
	a := getg()
	if a == 0 || getg() != a || growGetg(64) != a {
		return false
	}
	var other uintptr
	done := make(chan struct{})
	go func() { other = getg(); close(done) }()
	<-done
	return other != 0 && other != a
}

//go:noinline
func growGetg(n int) uintptr {
	if n == 0 {
		return getg()
	}
	var pad [256]byte
	r := growGetg(n - 1)
	_ = pad[0]
	return r
}

// goid returns a per-goroutine identity key. Fast path: the runtime g
// pointer (unique per live goroutine, stable for its lifetime — g structs
// never move). Fallback: the ID parsed from the runtime.Stack header
// ("goroutine 123 [running]: ..."), ~2µs and serialized process-wide on
// the runtime's print lock, which is why the fast path matters on the
// data path. A g key can be reused after its goroutine exits, but every
// Bind is paired with a Restore, so dead goroutines leave no binding for
// a reused key to inherit.
func goid() uint64 {
	if fastGoid {
		return uint64(getg())
	}
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id uint64
	for i := prefix; i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// Bind associates sc with the calling goroutine, returning the previous
// binding for Restore. An invalid sc clears the binding.
func Bind(sc SpanContext) (prev SpanContext, had bool) {
	g := goid()
	sh := &traceCtx[g%ctxShards]
	sh.mu.Lock()
	prev, had = sh.m[g]
	if sc.Valid() {
		sh.m[g] = sc
	} else {
		delete(sh.m, g)
	}
	sh.mu.Unlock()
	return prev, had
}

// Restore reinstates (or clears) the binding saved by Bind.
func Restore(prev SpanContext, had bool) {
	g := goid()
	sh := &traceCtx[g%ctxShards]
	sh.mu.Lock()
	if had {
		sh.m[g] = prev
	} else {
		delete(sh.m, g)
	}
	sh.mu.Unlock()
}

// Current returns the calling goroutine's bound span context, if any.
func Current() (SpanContext, bool) {
	g := goid()
	sh := &traceCtx[g%ctxShards]
	sh.mu.Lock()
	sc, ok := sh.m[g]
	sh.mu.Unlock()
	return sc, ok
}

// ---- per-connection trace carrier ----------------------------------------

// TraceTable is the out-of-band per-connection carrier mapping protocol
// tags (iSCSI initiator task tags) to span contexts: the sender Puts
// before writing the command PDU, the receiver Takes on command receipt.
// It stands in for the wire-format TLV a production deployment would add.
type TraceTable struct {
	mu sync.Mutex
	m  map[uint32]SpanContext
}

// NewTraceTable returns an empty carrier table.
func NewTraceTable() *TraceTable {
	return &TraceTable{m: make(map[uint32]SpanContext)}
}

// Put records the span context travelling with the given task tag.
func (t *TraceTable) Put(tag uint32, sc SpanContext) {
	if t == nil || !sc.Valid() {
		return
	}
	t.mu.Lock()
	t.m[tag] = sc
	t.mu.Unlock()
}

// Take removes and returns the span context for the task tag.
func (t *TraceTable) Take(tag uint32) (SpanContext, bool) {
	if t == nil {
		return SpanContext{}, false
	}
	t.mu.Lock()
	sc, ok := t.m[tag]
	if ok {
		delete(t.m, tag)
	}
	t.mu.Unlock()
	return sc, ok
}

// TraceCarrier is implemented by connections whose two ends share a
// TraceTable (netsim connections; TracedPipe for tests).
type TraceCarrier interface {
	TraceTable() *TraceTable
}

// CarrierOf returns the connection's trace table, or nil when the
// transport does not carry traces.
func CarrierOf(conn net.Conn) *TraceTable {
	if tc, ok := conn.(TraceCarrier); ok {
		return tc.TraceTable()
	}
	return nil
}

// tracedConn overlays a shared TraceTable on an in-memory pipe end.
type tracedConn struct {
	net.Conn
	tbl *TraceTable
}

func (c tracedConn) TraceTable() *TraceTable { return c.tbl }

// TracedPipe is net.Pipe plus a shared trace carrier — the test
// transport for exercising cross-station trace propagation.
func TracedPipe() (net.Conn, net.Conn) {
	c1, c2 := net.Pipe()
	tbl := NewTraceTable()
	return tracedConn{c1, tbl}, tracedConn{c2, tbl}
}
