package obs

import (
	"fmt"
	"time"
)

// Event is one structured log entry (NAT rewrite, SDN chain walk, journal
// high-water, ...). Events live in a bounded ring so always-on logging
// cannot grow without bound.
type Event struct {
	Time time.Time `json:"time"`
	Kind string    `json:"kind"`
	Msg  string    `json:"msg"`
}

// maxEvents bounds the per-registry event ring.
const maxEvents = 512

// Eventf appends a structured event of the given kind; the oldest event
// is dropped once the ring is full. No-op on a nil registry.
func (r *Registry) Eventf(kind, format string, args ...any) {
	if r == nil {
		return
	}
	ev := Event{Time: r.Now(), Kind: kind, Msg: fmt.Sprintf(format, args...)}
	r.evMu.Lock()
	defer r.evMu.Unlock()
	if len(r.events) < maxEvents {
		r.events = append(r.events, ev)
		return
	}
	r.events[r.evNext] = ev
	r.evNext = (r.evNext + 1) % maxEvents
}

// Events returns the buffered events in arrival order.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	r.evMu.Lock()
	defer r.evMu.Unlock()
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.evNext:]...)
	out = append(out, r.events[:r.evNext]...)
	return out
}
