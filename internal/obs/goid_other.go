//go:build !amd64

package obs

// getg is unavailable on this architecture; goid falls back to parsing
// the runtime.Stack header.
func getg() uintptr { return 0 }
