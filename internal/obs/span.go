package obs

import "time"

// Stage names along the paper's data path (Figures 7 and 10 break the
// end-to-end latency and CPU time down over exactly these hops). Each
// stage records into the registry histogram "stage.<stage>" (optionally
// suffixed ".read"/".write"/".ctl" by direction-aware instrumentation).
const (
	// StageInitiator is the VM-side iSCSI session: command issue to
	// completion, the whole end-to-end latency.
	StageInitiator = "initiator"
	// StageGatewayIngress is the splice plane's ingress storage gateway
	// (NAT capture and redirection into the instance network).
	StageGatewayIngress = "gateway.ingress"
	// StageGatewayEgress is the egress storage gateway back onto the
	// storage network towards the volume service.
	StageGatewayEgress = "gateway.egress"
	// StageMBForward is a transparent MB-FWD hop (passive middle-box
	// forwarding without terminating the connection).
	StageMBForward = "mbfwd"
	// StageTarget is the back-end iSCSI target: command receipt to status
	// sent, including medium service time.
	StageTarget = "target"
)

// StagePrefix prefixes every stage histogram name in a Registry.
const StagePrefix = "stage."

// RelayServiceStage names a relay's service-chain span (passive hook or
// active journal-ack processing, inclusive of the downstream forward).
func RelayServiceStage(relay string) string {
	if relay == "" {
		return "relay.service"
	}
	return "relay." + relay + ".service"
}

// RelayForwardStage names a relay's downstream-forward span (the
// pseudo-client session towards the next station or the target).
func RelayForwardStage(relay string) string {
	if relay == "" {
		return "relay.forward"
	}
	return "relay." + relay + ".forward"
}

// Span measures one stage of one command; obtain with StartSpan (plain
// histogram span) or StartTraced (also emits a SpanRecord into the
// registry's trace buffer). The zero Span is a no-op.
type Span struct {
	t     Timer
	start time.Time
	reg   *Registry

	// trace fields, set by StartTraced when tracing is enabled
	tr     TraceID
	id     uint64
	parent uint64
	stage  string
	dir    string
	bytes  int
	root   bool
}

// StartSpan opens a span recording into "stage.<stage>". On a nil
// registry the span is a no-op. Timestamps come from the registry clock
// (SetClock), wall time by default.
func (r *Registry) StartSpan(stage string) Span {
	if r == nil {
		return Span{}
	}
	return Span{t: r.Timer(StagePrefix + stage), reg: r, start: r.Now()}
}

// Abort discards a traced root span's trace without recording anything —
// the failed-command path, where a half-collected trace would otherwise
// linger in the live buffer. Plain and child spans just drop silently.
func (s Span) Abort() {
	if s.tr == 0 || !s.root {
		return
	}
	ts := s.reg.trace.Load()
	if ts == nil {
		return
	}
	ts.mu.Lock()
	delete(ts.live, s.tr)
	ts.mu.Unlock()
}

// End records the span's elapsed time into its stage histogram and, for
// traced spans, lands the SpanRecord on its trace. Ending the root span
// triggers the trace's retention decision.
func (s Span) End() {
	if s.t.h == nil && s.tr == 0 {
		return
	}
	end := s.reg.Now()
	if s.t.h != nil {
		s.t.h.Observe(end.Sub(s.start))
	}
	if s.tr != 0 {
		if ts := s.reg.trace.Load(); ts != nil {
			ts.spanEnd(s, end)
		}
	}
}
