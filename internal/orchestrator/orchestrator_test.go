package orchestrator

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/policy"
)

const aesKeyHex = "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"

// fakeClock is an injectable clock stepped manually by the tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) Now() time.Time          { return f.t }
func (f *fakeClock) Advance(d time.Duration) { f.t = f.t.Add(d) }

// testbed boots a negligible-cost cloud, one VM with a volume, and applies a
// policy chaining it through a scalable encryption group.
func testbed(t *testing.T, tenant string, min, max int) (*cloud.Cloud, *core.Platform, *core.TenantDeployment, string) {
	t.Helper()
	model := netsim.Model{
		MTU:       8 * 1024,
		Bandwidth: 1 << 33,
		Latency:   map[netsim.HopKind]time.Duration{},
		PerPacket: map[netsim.HopKind]time.Duration{},
	}
	c, err := cloud.New(cloud.Config{ComputeHosts: 4, Model: model})
	if err != nil {
		t.Fatalf("cloud.New: %v", err)
	}
	t.Cleanup(c.Close)
	if _, err := c.LaunchVM("vm1", "compute1"); err != nil {
		t.Fatalf("LaunchVM: %v", err)
	}
	vol, err := c.Volumes.Create("vm1-vol", 16*1024*1024)
	if err != nil {
		t.Fatalf("Create volume: %v", err)
	}
	p := core.New(c)
	pol := &policy.Policy{
		Tenant: tenant,
		MiddleBoxes: []policy.MiddleBoxSpec{{
			Name:         "enc1",
			Type:         policy.TypeEncryption,
			MinInstances: min,
			MaxInstances: max,
			Params:       map[string]string{"key": aesKeyHex, "copyThreads": "1"},
		}},
		Volumes: []policy.VolumeBinding{{VM: "vm1", Volume: vol.ID, Chain: []string{"enc1"}}},
	}
	dep, err := p.Apply(pol)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	return c, p, dep, vol.ID
}

// TestReconcileScalesUpUnderSaturation drives the loop with a fake clock and
// synthetic busy-time counters: one saturated member must grow the group one
// instance per decision, respecting cooldown rounds and the max bound.
func TestReconcileScalesUpUnderSaturation(t *testing.T) {
	_, p, dep, _ := testbed(t, "tenOrchUp", 1, 3)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	o := New(Config{Platform: p, Now: clk.Now, CooldownRounds: 1})
	if err := o.Manage("tenOrchUp", "enc1"); err != nil {
		t.Fatalf("Manage: %v", err)
	}
	// Managing an unknown tenant or middle-box is refused.
	if err := o.Manage("nobody", "enc1"); err == nil {
		t.Fatal("Manage(unknown tenant): want error")
	}
	if err := o.Manage("tenOrchUp", "enc9"); err == nil {
		t.Fatal("Manage(unknown mb): want error")
	}

	reg := obs.Default()
	saturate := func() {
		// Charge ~900ms of copy time to every member: util 0.9 next pass.
		for _, ms := range dep.GroupStatus("enc1") {
			reg.Counter("relay." + ms.Name + ".busy_ns").Add(int64(900 * time.Millisecond))
		}
	}
	step := func() {
		clk.Advance(time.Second)
		o.Reconcile()
	}

	step() // pass 1: seeds busy baselines, no decision possible
	if got := len(dep.Group("enc1")); got != 1 {
		t.Fatalf("group size after baseline pass = %d, want 1", got)
	}
	saturate()
	step() // pass 2: util 0.9 -> scale to 2
	if got := len(dep.Group("enc1")); got != 2 {
		t.Fatalf("group size after saturated pass = %d, want 2", got)
	}
	if got := reg.Gauge("orch.group.tenOrchUp.enc1.size").Value(); got != 1 {
		t.Fatalf("size gauge measured before the scale = %d, want 1", got)
	}
	saturate()
	step() // pass 3: cooldown round, no scale despite saturation
	if got := len(dep.Group("enc1")); got != 2 {
		t.Fatalf("cooldown violated: group size = %d, want 2", got)
	}
	saturate()
	step() // pass 4: util 0.9 again -> scale to 3 (= max)
	if got := len(dep.Group("enc1")); got != 3 {
		t.Fatalf("group size after second scale = %d, want 3", got)
	}
	saturate()
	step() // cooldown
	saturate()
	step() // saturated at max: must hold at 3
	if got := len(dep.Group("enc1")); got != 3 {
		t.Fatalf("group grew past maxInstances: size = %d", got)
	}
	if got := reg.Gauge("orch.group.tenOrchUp.enc1.size").Value(); got != 3 {
		t.Fatalf("size gauge = %d, want 3", got)
	}
	// Member utilization was published.
	name := dep.Group("enc1")[0].Name
	if got := reg.Gauge("orch.member." + name + ".util_permille").Value(); got < 800 || got > 1000 {
		t.Fatalf("util gauge for %s = %d permille, want ~900", name, got)
	}
}

// TestReconcileDrainsIdleMember: an over-provisioned idle group must shrink
// by draining the sessionless member, finishing the drain only once it has
// quiesced, and never dip below minInstances.
func TestReconcileDrainsIdleMember(t *testing.T) {
	c, p, dep, volID := testbed(t, "tenOrchDown", 1, 4)
	if err := dep.Scale("enc1", 2); err != nil {
		t.Fatalf("Scale to 2: %v", err)
	}
	av := dep.Volumes["vm1/"+volID]
	want := bytes.Repeat([]byte{0x5A}, 4096)
	if err := av.Device.WriteAt(want, 32); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	var serving string
	for _, ms := range dep.GroupStatus("enc1") {
		if ms.Sessions > 0 {
			serving = ms.Name
		}
	}
	if serving == "" {
		t.Fatal("no member holds the spliced session")
	}

	clk := &fakeClock{t: time.Unix(2000, 0)}
	o := New(Config{Platform: p, Now: clk.Now, CooldownRounds: 1})
	if err := o.Manage("tenOrchDown", "enc1"); err != nil {
		t.Fatalf("Manage: %v", err)
	}
	step := func() {
		clk.Advance(time.Second)
		o.Reconcile()
	}

	step() // pass 1: baselines
	step() // pass 2: all idle -> begin draining the sessionless member
	drained := ""
	for _, ms := range dep.GroupStatus("enc1") {
		if ms.Draining {
			drained = ms.Name
		}
	}
	if drained == "" || drained == serving {
		t.Fatalf("draining member = %q, want the idle one (serving %s)", drained, serving)
	}
	step() // pass 3: idle member has quiesced -> finish drain, tear down
	if got := len(dep.Group("enc1")); got != 1 {
		t.Fatalf("group size after drain completes = %d, want 1", got)
	}
	if _, err := c.MiddleBox(drained); err == nil {
		t.Fatalf("drained instance %s still registered in the cloud", drained)
	}
	step() // cooldown
	step()
	step() // idle at min: must never drain below minInstances
	if got := len(dep.Group("enc1")); got != 1 {
		t.Fatalf("group shrank below minInstances: size = %d", got)
	}

	// The data path survived the scale-down with zero loss.
	got := make([]byte, 4096)
	if err := av.Device.ReadAt(got, 32); err != nil {
		t.Fatalf("ReadAt after drain: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("reconcile-driven scale-down lost data")
	}
}

// TestStartStopLoop smoke-tests the background ticker.
func TestStartStopLoop(t *testing.T) {
	_, p, _, _ := testbed(t, "tenOrchLoop", 1, 2)
	o := New(Config{Platform: p, Interval: 2 * time.Millisecond})
	if err := o.Manage("tenOrchLoop", "enc1"); err != nil {
		t.Fatalf("Manage: %v", err)
	}
	o.Start()
	o.Start() // idempotent
	time.Sleep(20 * time.Millisecond)
	o.Stop()
	o.Stop() // idempotent
	// The loop ran without panicking and the group held its size.
	dep, _ := p.Deployment("tenOrchLoop")
	if got := len(dep.Group("enc1")); got != 1 {
		t.Fatalf("idle loop changed group size to %d", got)
	}
}

// TestReconcileDropsTornDownTenant: reconciling after Teardown unmanages the
// group instead of erroring forever.
func TestReconcileDropsTornDownTenant(t *testing.T) {
	_, p, _, _ := testbed(t, "tenOrchGone", 1, 2)
	o := New(Config{Platform: p})
	if err := o.Manage("tenOrchGone", "enc1"); err != nil {
		t.Fatalf("Manage: %v", err)
	}
	if err := p.Teardown("tenOrchGone"); err != nil {
		t.Fatalf("Teardown: %v", err)
	}
	o.Reconcile()
	// Re-managing after teardown errors cleanly (no deployment).
	if err := o.Manage("tenOrchGone", "enc1"); err == nil {
		t.Fatal("Manage after teardown: want error")
	}
}
