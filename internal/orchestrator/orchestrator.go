// Package orchestrator is StorM's scale-out control loop: it watches each
// managed middle-box instance group's copy-path utilization (the per-relay
// busy-time counters published through internal/obs) and elastically
// resizes the group within its policy bounds. Scale-up adds an instance and
// rehashes only new flows to it — established connections keep their
// serving member (flow affinity). Scale-down is zero-loss: the loop first
// drains the least-loaded member (no new flows, no new sessions), waits for
// its sessions to log out and its write-back journal to empty, and only
// then removes the instance from the steering group and tears the VM down.
package orchestrator

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Config tunes the control loop.
type Config struct {
	// Platform is the StorM control plane owning the deployments.
	Platform *core.Platform
	// Obs is the metrics registry the relays report into and the loop
	// publishes its gauges to (obs.Default() when nil).
	Obs *obs.Registry
	// Interval is the reconcile period of the Start loop (default 250ms).
	Interval time.Duration
	// ScaleUpUtil is the member utilization at which the loop grows the
	// group by one (default 0.75).
	ScaleUpUtil float64
	// ScaleDownUtil: when every member sits at or below it, the loop
	// drains one member (default 0.15).
	ScaleDownUtil float64
	// CooldownRounds is how many reconcile passes to hold after a scale
	// event before deciding again (default 2), letting utilization settle.
	CooldownRounds int
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
	// Logger receives diagnostics.
	Logger *log.Logger
}

// managedGroup is the loop's per-group state.
type managedGroup struct {
	tenant, mb string
	lastBusy   map[string]int64 // busy_ns counter at the previous pass
	lastTime   time.Time
	cooldown   int
	draining   string // member being drained, "" if none

	// SLO tracking (armed when the policy sets a latencySLO for the mb).
	slo        *obs.SLOTracker
	sloWatched map[string]bool // member -> watched service histograms
	sloBurning bool            // last pass exceeded the error budget

	// Overload edge detection (replicate groups): last pass's breaker /
	// backpressure state, so transitions emit exactly one event each way.
	breakerOpen   bool
	backpressured bool
}

// Orchestrator runs the reconcile loop over its managed groups.
type Orchestrator struct {
	cfg Config

	mu     sync.Mutex
	groups map[string]*managedGroup // key "tenant/mb"
	stop   chan struct{}
	done   chan struct{}
}

// New builds an orchestrator; call Manage to enroll groups, then either
// Start the background loop or drive Reconcile directly.
func New(cfg Config) *Orchestrator {
	if cfg.Obs == nil {
		cfg.Obs = obs.Default()
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.ScaleUpUtil <= 0 {
		cfg.ScaleUpUtil = 0.75
	}
	if cfg.ScaleDownUtil <= 0 {
		cfg.ScaleDownUtil = 0.15
	}
	if cfg.CooldownRounds <= 0 {
		cfg.CooldownRounds = 2
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Orchestrator{cfg: cfg, groups: make(map[string]*managedGroup)}
}

// Manage enrolls a tenant's scalable middle-box group.
func (o *Orchestrator) Manage(tenant, mb string) error {
	dep, ok := o.cfg.Platform.Deployment(tenant)
	if !ok {
		return fmt.Errorf("orchestrator: tenant %q has no deployment", tenant)
	}
	if _, _, err := dep.ScaleBounds(mb); err != nil {
		return err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	key := tenant + "/" + mb
	if _, dup := o.groups[key]; dup {
		return fmt.Errorf("orchestrator: group %s already managed", key)
	}
	o.groups[key] = &managedGroup{
		tenant:   tenant,
		mb:       mb,
		lastBusy: make(map[string]int64),
		lastTime: o.cfg.Now(),
	}
	return nil
}

// Unmanage drops a group from the loop.
func (o *Orchestrator) Unmanage(tenant, mb string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.groups, tenant+"/"+mb)
}

// Reconcile runs one pass over every managed group. It is the loop body of
// Start, exposed so tests and callers can step the controller manually.
func (o *Orchestrator) Reconcile() {
	o.mu.Lock()
	groups := make([]*managedGroup, 0, len(o.groups))
	for _, g := range o.groups {
		groups = append(groups, g)
	}
	o.mu.Unlock()
	sort.Slice(groups, func(i, j int) bool {
		return groups[i].tenant+"/"+groups[i].mb < groups[j].tenant+"/"+groups[j].mb
	})
	for _, g := range groups {
		o.reconcileGroup(g)
	}
}

// reconcileGroup measures one group and applies at most one scale action.
func (o *Orchestrator) reconcileGroup(g *managedGroup) {
	dep, ok := o.cfg.Platform.Deployment(g.tenant)
	if !ok {
		// Deployment gone (torn down): stop managing it.
		o.Unmanage(g.tenant, g.mb)
		return
	}

	// Crashed members come first: a dead relay serves nothing, so the loop
	// replaces it immediately — outside the utilization state machine and
	// regardless of cooldown — keeping the group at its current size. The
	// replacement replays the crashed member's durable journals before any
	// flow rebinds to it.
	for _, ms := range dep.GroupStatus(g.mb) {
		if !ms.Crashed {
			continue
		}
		repl, replayed, err := dep.RecoverInstance(g.mb, ms.Name)
		if err != nil {
			o.logf("recover %s/%s %s: %v", g.tenant, g.mb, ms.Name, err)
			return
		}
		o.cfg.Obs.Eventf("orchestrator", "replaced crashed %s/%s member %s with %s (%d journal records replayed)",
			g.tenant, g.mb, ms.Name, repl.Name, replayed)
		delete(g.lastBusy, ms.Name)
		if g.draining == ms.Name {
			g.draining = ""
		}
		g.cooldown = o.cfg.CooldownRounds
		return // one action per pass
	}

	// Re-drive recovery tails a transient failure left behind (backend
	// outage during journal replay, re-attach error): the crashed member is
	// already replaced and no longer reports Crashed, but its acknowledged
	// journaled writes are still owed a replay.
	if dep.PendingRecoveries(g.mb) > 0 {
		n, err := dep.RetryRecoveries(g.mb)
		if err != nil {
			o.logf("retry recovery %s/%s: %v", g.tenant, g.mb, err)
		} else {
			o.cfg.Obs.Eventf("orchestrator", "completed pending recovery for %s/%s (%d journal records replayed)",
				g.tenant, g.mb, n)
		}
		return // one action per pass
	}

	// Finish an in-flight drain once the member has quiesced.
	if g.draining != "" {
		st, err := dep.DrainStatus(g.mb, g.draining)
		switch {
		case err != nil || !st.Draining:
			g.draining = "" // removed or un-drained behind our back
		case st.Sessions == 0 && st.JournalBytes == 0 && st.JournalPending == 0:
			if err := dep.FinishDrain(g.mb, g.draining); err != nil {
				o.logf("finish drain %s/%s %s: %v", g.tenant, g.mb, g.draining, err)
			} else {
				o.cfg.Obs.Eventf("orchestrator", "scaled down %s/%s: drained %s", g.tenant, g.mb, g.draining)
				g.draining = ""
				g.cooldown = o.cfg.CooldownRounds
			}
		}
	}

	now := o.cfg.Now()
	elapsed := now.Sub(g.lastTime)
	g.lastTime = now
	status := dep.GroupStatus(g.mb)
	o.cfg.Obs.Gauge(fmt.Sprintf("orch.group.%s.%s.size", g.tenant, g.mb)).Set(int64(len(status)))
	o.trackSLO(g, dep, status, now)
	o.trackOverload(g, status)

	utils := make([]float64, len(status))
	allMeasured := true
	for i, ms := range status {
		busy := o.cfg.Obs.Counter("relay." + ms.Name + ".busy_ns").Value()
		last, seen := g.lastBusy[ms.Name]
		g.lastBusy[ms.Name] = busy
		if !seen || elapsed <= 0 {
			allMeasured = false
			continue
		}
		threads := ms.CopyThreads
		if threads <= 0 {
			threads = 1
		}
		util := float64(busy-last) / (float64(elapsed.Nanoseconds()) * float64(threads))
		if util < 0 {
			util = 0
		}
		utils[i] = util
		o.cfg.Obs.Gauge("orch.member." + ms.Name + ".util_permille").Set(int64(util * 1000))
	}

	if g.draining != "" {
		return // one wind-down at a time
	}
	if g.cooldown > 0 {
		g.cooldown--
		return
	}
	if elapsed <= 0 || len(status) == 0 || !allMeasured {
		return // no decisions on members we have never measured
	}
	min, max, err := dep.ScaleBounds(g.mb)
	if err != nil {
		return
	}

	peak := 0.0
	for _, u := range utils {
		if u > peak {
			peak = u
		}
	}
	size := len(status)
	if peak >= o.cfg.ScaleUpUtil && size < max {
		if err := dep.Scale(g.mb, size+1); err != nil {
			o.logf("scale up %s/%s: %v", g.tenant, g.mb, err)
			return
		}
		o.cfg.Obs.Eventf("orchestrator", "scaled up %s/%s to %d (peak util %.0f%%)", g.tenant, g.mb, size+1, peak*100)
		g.cooldown = o.cfg.CooldownRounds
		return
	}
	if size > min && peak <= o.cfg.ScaleDownUtil {
		victim := pickVictim(status, utils)
		if victim == "" {
			return
		}
		if err := dep.BeginDrain(g.mb, victim); err != nil {
			o.logf("begin drain %s/%s %s: %v", g.tenant, g.mb, victim, err)
			return
		}
		o.cfg.Obs.Eventf("orchestrator", "draining %s/%s member %s (peak util %.0f%%)", g.tenant, g.mb, victim, peak*100)
		g.draining = victim
	}
}

// trackSLO maintains the group's rolling-latency SLO tracker when the
// policy sets a latencySLO: it re-asserts watches on every live member's
// service histograms, drops watches on departed members, ticks the window,
// and publishes the slo.<tenant>.<mb>.* gauges. An error-budget burn above
// 1000 permille (burning faster than the budget allows) raises an event on
// the transition — a signal only; scale decisions stay utilization-driven.
func (o *Orchestrator) trackSLO(g *managedGroup, dep *core.TenantDeployment, status []core.MemberStatus, now time.Time) {
	target := dep.LatencySLO(g.mb)
	if target <= 0 {
		return
	}
	if g.slo == nil {
		g.slo = obs.NewSLOTracker(o.cfg.Obs, g.tenant+"."+g.mb, target, obs.SLOConfig{})
		g.sloWatched = make(map[string]bool)
	}
	live := make(map[string]bool, len(status))
	for _, ms := range status {
		live[ms.Name] = true
		if !g.sloWatched[ms.Name] {
			g.slo.Watch(obs.StagePrefix + obs.RelayServiceStage(ms.Name) + ".read")
			g.slo.Watch(obs.StagePrefix + obs.RelayServiceStage(ms.Name) + ".write")
			g.sloWatched[ms.Name] = true
		}
	}
	for name := range g.sloWatched {
		if !live[name] {
			g.slo.Unwatch(obs.StagePrefix + obs.RelayServiceStage(name) + ".read")
			g.slo.Unwatch(obs.StagePrefix + obs.RelayServiceStage(name) + ".write")
			delete(g.sloWatched, name)
		}
	}
	st := g.slo.Tick(now)
	burning := st.BurnPermille > 1000
	if burning && !g.sloBurning {
		o.cfg.Obs.Eventf("orchestrator", "SLO burn for %s/%s: p99 %v over target %v (%d of %d ops, burn %d permille)",
			g.tenant, g.mb, st.P99, st.Target, st.Violations, st.WindowOps, st.BurnPermille)
	}
	g.sloBurning = burning
}

// trackOverload surfaces replicate overload transitions as orchestrator
// events and a gauge: a backend circuit breaker opening or recovering, and
// dispatch backpressure engaging or releasing. Edge-triggered, so a
// sustained brownout logs once on entry and once on exit rather than every
// reconcile pass.
func (o *Orchestrator) trackOverload(g *managedGroup, status []core.MemberStatus) {
	var breaker, bp bool
	for _, ms := range status {
		breaker = breaker || ms.BreakerOpen
		bp = bp || ms.Backpressured
	}
	if breaker != g.breakerOpen {
		g.breakerOpen = breaker
		if breaker {
			o.cfg.Obs.Eventf("orchestrator", "backend breaker open in %s/%s: replication degraded, scrubbing paused", g.tenant, g.mb)
		} else {
			o.cfg.Obs.Eventf("orchestrator", "backend breakers recovered in %s/%s", g.tenant, g.mb)
		}
	}
	if bp != g.backpressured {
		g.backpressured = bp
		if bp {
			o.cfg.Obs.Eventf("orchestrator", "backpressure engaged in %s/%s: admission refusing writes (BUSY to initiators)", g.tenant, g.mb)
		} else {
			o.cfg.Obs.Eventf("orchestrator", "backpressure released in %s/%s", g.tenant, g.mb)
		}
	}
	var overloaded int64
	if breaker || bp {
		overloaded = 1
	}
	o.cfg.Obs.Gauge(fmt.Sprintf("orch.group.%s.%s.overloaded", g.tenant, g.mb)).Set(overloaded)
}

// pickVictim chooses the member to drain: fewest sessions, then lowest
// utilization — the cheapest member to quiesce.
func pickVictim(status []core.MemberStatus, utils []float64) string {
	victim, vi := "", -1
	for i, ms := range status {
		if ms.Draining {
			continue
		}
		if vi < 0 ||
			ms.Sessions < status[vi].Sessions ||
			(ms.Sessions == status[vi].Sessions && utils[i] < utils[vi]) {
			victim, vi = ms.Name, i
		}
	}
	return victim
}

// Start runs Reconcile on the configured interval until Stop.
func (o *Orchestrator) Start() {
	o.mu.Lock()
	if o.stop != nil {
		o.mu.Unlock()
		return
	}
	stop, done := make(chan struct{}), make(chan struct{})
	o.stop, o.done = stop, done
	o.mu.Unlock()
	go func() {
		defer close(done)
		ticker := time.NewTicker(o.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				o.Reconcile()
			}
		}
	}()
}

// Stop halts the background loop and waits for the in-flight pass.
func (o *Orchestrator) Stop() {
	o.mu.Lock()
	stop, done := o.stop, o.done
	o.stop, o.done = nil, nil
	o.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (o *Orchestrator) logf(format string, args ...any) {
	if o.cfg.Logger != nil {
		o.cfg.Logger.Printf("orchestrator: "+format, args...)
	}
}
