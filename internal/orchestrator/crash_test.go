package orchestrator

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/policy"
)

// crashTestbed is testbed with durable journals enabled on the group, so a
// crashed member's acknowledged writes survive its replacement.
func crashTestbed(t *testing.T, tenant string) (*cloud.Cloud, *core.Platform, *core.TenantDeployment, *core.AttachedVolume) {
	t.Helper()
	model := netsim.Model{
		MTU:       8 * 1024,
		Bandwidth: 1 << 33,
		Latency:   map[netsim.HopKind]time.Duration{},
		PerPacket: map[netsim.HopKind]time.Duration{},
	}
	c, err := cloud.New(cloud.Config{ComputeHosts: 4, Model: model})
	if err != nil {
		t.Fatalf("cloud.New: %v", err)
	}
	t.Cleanup(c.Close)
	if _, err := c.LaunchVM("vm1", "compute1"); err != nil {
		t.Fatalf("LaunchVM: %v", err)
	}
	vol, err := c.Volumes.Create("vm1-vol", 16*1024*1024)
	if err != nil {
		t.Fatalf("Create volume: %v", err)
	}
	p := core.New(c)
	p.SetStateDir(t.TempDir())
	pol := &policy.Policy{
		Tenant: tenant,
		MiddleBoxes: []policy.MiddleBoxSpec{{
			Name:         "enc1",
			Type:         policy.TypeEncryption,
			MinInstances: 2,
			MaxInstances: 4,
			Params: map[string]string{
				"key":            aesKeyHex,
				"copyThreads":    "1",
				"durableJournal": "true",
			},
		}},
		Volumes: []policy.VolumeBinding{{VM: "vm1", Volume: vol.ID, Chain: []string{"enc1"}}},
	}
	dep, err := p.Apply(pol)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	return c, p, dep, dep.Volumes["vm1/"+vol.ID]
}

// TestReconcileReplacesCrashedMember: the control loop notices a dead group
// member and re-provisions it on a surviving host — outside the utilization
// state machine, keeping the group at size — after which the volume's data
// path works again.
func TestReconcileReplacesCrashedMember(t *testing.T) {
	c, p, dep, av := crashTestbed(t, "tenantX")

	want := bytes.Repeat([]byte{0x5A}, 4096)
	if err := av.Device.WriteAt(want, 8); err != nil {
		t.Fatalf("WriteAt before crash: %v", err)
	}

	// Kill the member serving the flow.
	var victim core.MemberStatus
	for _, ms := range dep.GroupStatus("enc1") {
		if ms.Sessions > 0 {
			victim = ms
		}
	}
	if victim.Name == "" {
		t.Fatal("no member holds the session")
	}
	if err := c.CrashMiddleBox(victim.Name); err != nil {
		t.Fatalf("CrashMiddleBox: %v", err)
	}

	reg := obs.NewRegistry()
	clk := &fakeClock{t: time.Unix(0, 0)}
	o := New(Config{Platform: p, Obs: reg, Now: clk.Now})
	if err := o.Manage("tenantX", "enc1"); err != nil {
		t.Fatalf("Manage: %v", err)
	}

	clk.Advance(time.Second)
	o.Reconcile()

	status := dep.GroupStatus("enc1")
	if len(status) != 2 {
		t.Fatalf("group size after reconcile = %d, want 2", len(status))
	}
	for _, ms := range status {
		if ms.Crashed {
			t.Fatalf("member %s still crashed after reconcile", ms.Name)
		}
		if ms.Name == victim.Name {
			t.Fatalf("crashed member %s still in the group", ms.Name)
		}
		if ms.Name != victim.Name && ms.Host == victim.Host && ms.Sessions > 0 {
			t.Fatalf("replacement landed back on the crashed host %s", victim.Host)
		}
	}

	// RecoverInstance re-attached the volume; the data path must serve the
	// pre-crash write and accept new ones.
	got := make([]byte, 4096)
	if err := av.Device.ReadAt(got, 8); err != nil {
		t.Fatalf("ReadAt after replacement: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("pre-crash acknowledged write lost across the replacement")
	}
	if err := av.Device.WriteAt(want, 64); err != nil {
		t.Fatalf("WriteAt after replacement: %v", err)
	}

	// A second pass makes no further changes (the loop settled).
	clk.Advance(time.Second)
	o.Reconcile()
	if got := len(dep.GroupStatus("enc1")); got != 2 {
		t.Fatalf("group size after settle pass = %d, want 2", got)
	}
}

// TestReconcileRetriesPendingRecovery: when the recovery tail fails after
// the group swap (storage outage during journal replay / re-attachment),
// the member no longer reports Crashed, so the pending-recovery tail is the
// only retry signal left — the control loop must keep re-driving it until
// it completes.
func TestReconcileRetriesPendingRecovery(t *testing.T) {
	c, p, dep, av := crashTestbed(t, "tenantY")

	want := bytes.Repeat([]byte{0xC3}, 4096)
	if err := av.Device.WriteAt(want, 8); err != nil {
		t.Fatalf("WriteAt before crash: %v", err)
	}
	var victim core.MemberStatus
	for _, ms := range dep.GroupStatus("enc1") {
		if ms.Sessions > 0 {
			victim = ms
		}
	}
	if victim.Name == "" {
		t.Fatal("no member holds the session")
	}
	if err := c.CrashMiddleBox(victim.Name); err != nil {
		t.Fatalf("CrashMiddleBox: %v", err)
	}
	// Storage outage: replacement provisioning succeeds, but the recovery
	// tail (replay / re-attach) cannot complete.
	c.Fabric.CutHost(c.StorageHost())

	reg := obs.NewRegistry()
	clk := &fakeClock{t: time.Unix(0, 0)}
	o := New(Config{Platform: p, Obs: reg, Now: clk.Now})
	if err := o.Manage("tenantY", "enc1"); err != nil {
		t.Fatalf("Manage: %v", err)
	}

	clk.Advance(time.Second)
	o.Reconcile() // replaces the crashed member; the tail fails and stays pending
	if got := len(dep.GroupStatus("enc1")); got != 2 {
		t.Fatalf("group size after replacement = %d, want 2", got)
	}
	for _, ms := range dep.GroupStatus("enc1") {
		if ms.Crashed {
			t.Fatalf("member %s still reports Crashed after the swap", ms.Name)
		}
	}
	if got := dep.PendingRecoveries("enc1"); got != 1 {
		t.Fatalf("PendingRecoveries = %d after outage-interrupted recovery, want 1", got)
	}

	clk.Advance(time.Second)
	o.Reconcile() // retry against the still-down backend keeps the tail pending
	if got := dep.PendingRecoveries("enc1"); got != 1 {
		t.Fatalf("PendingRecoveries = %d while backend still down, want 1", got)
	}

	c.Fabric.HealHost(c.StorageHost())
	clk.Advance(time.Second)
	o.Reconcile() // healed: the loop completes the tail
	if got := dep.PendingRecoveries("enc1"); got != 0 {
		t.Fatalf("PendingRecoveries = %d after healed reconcile, want 0", got)
	}

	// The acknowledged pre-crash write survived and the data path is live.
	got := make([]byte, 4096)
	if err := av.Device.ReadAt(got, 8); err != nil {
		t.Fatalf("ReadAt after retried recovery: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("pre-crash acknowledged write lost across the retried recovery")
	}
	if err := av.Device.WriteAt(want, 64); err != nil {
		t.Fatalf("WriteAt after retried recovery: %v", err)
	}
}
