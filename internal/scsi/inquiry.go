package scsi

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// InquiryData is the standard INQUIRY response payload.
type InquiryData struct {
	Vendor   string // up to 8 ASCII characters
	Product  string // up to 16 ASCII characters
	Revision string // up to 4 ASCII characters
}

// Encode serializes a 36-byte standard INQUIRY response for a
// direct-access block device.
func (d *InquiryData) Encode() []byte {
	b := make([]byte, 36)
	// byte 0: peripheral qualifier 0, device type 0 (direct access).
	b[2] = 0x06 // SPC-4
	b[3] = 0x02 // response data format 2
	b[4] = 31   // additional length (n-4)
	copyPadded(b[8:16], d.Vendor)
	copyPadded(b[16:32], d.Product)
	copyPadded(b[32:36], d.Revision)
	return b
}

// DecodeInquiry parses a standard INQUIRY response.
func DecodeInquiry(b []byte) (*InquiryData, error) {
	if len(b) < 36 {
		return nil, fmt.Errorf("scsi: inquiry data too short (%d bytes)", len(b))
	}
	return &InquiryData{
		Vendor:   strings.TrimRight(string(b[8:16]), " "),
		Product:  strings.TrimRight(string(b[16:32]), " "),
		Revision: strings.TrimRight(string(b[32:36]), " "),
	}, nil
}

func copyPadded(dst []byte, s string) {
	for i := range dst {
		dst[i] = ' '
	}
	copy(dst, s)
}

// Capacity describes a block device extent for READ CAPACITY responses.
type Capacity struct {
	// LastLBA is the address of the final logical block (i.e. block count-1).
	LastLBA uint64
	// BlockSize is the logical block length in bytes.
	BlockSize uint32
}

// Blocks returns the total number of logical blocks.
func (c Capacity) Blocks() uint64 { return c.LastLBA + 1 }

// Bytes returns the device size in bytes.
func (c Capacity) Bytes() uint64 { return c.Blocks() * uint64(c.BlockSize) }

// EncodeCapacity10 serializes the 8-byte READ CAPACITY(10) response. A device
// larger than 2^32-1 blocks reports 0xFFFFFFFF per SBC-3, directing the
// initiator to READ CAPACITY(16).
func (c Capacity) EncodeCapacity10() []byte {
	b := make([]byte, 8)
	last := c.LastLBA
	if last > 0xFFFFFFFF {
		last = 0xFFFFFFFF
	}
	binary.BigEndian.PutUint32(b[0:4], uint32(last))
	binary.BigEndian.PutUint32(b[4:8], c.BlockSize)
	return b
}

// EncodeCapacity16 serializes the 32-byte READ CAPACITY(16) response.
func (c Capacity) EncodeCapacity16() []byte {
	b := make([]byte, 32)
	binary.BigEndian.PutUint64(b[0:8], c.LastLBA)
	binary.BigEndian.PutUint32(b[8:12], c.BlockSize)
	return b
}

// DecodeCapacity10 parses a READ CAPACITY(10) response.
func DecodeCapacity10(b []byte) (Capacity, error) {
	if len(b) < 8 {
		return Capacity{}, fmt.Errorf("scsi: capacity(10) data too short (%d bytes)", len(b))
	}
	return Capacity{
		LastLBA:   uint64(binary.BigEndian.Uint32(b[0:4])),
		BlockSize: binary.BigEndian.Uint32(b[4:8]),
	}, nil
}

// DecodeCapacity16 parses a READ CAPACITY(16) response.
func DecodeCapacity16(b []byte) (Capacity, error) {
	if len(b) < 12 {
		return Capacity{}, fmt.Errorf("scsi: capacity(16) data too short (%d bytes)", len(b))
	}
	return Capacity{
		LastLBA:   binary.BigEndian.Uint64(b[0:8]),
		BlockSize: binary.BigEndian.Uint32(b[8:12]),
	}, nil
}
