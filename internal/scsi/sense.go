package scsi

import (
	"encoding/binary"
	"fmt"
)

// SenseKey classifies a CHECK CONDITION outcome (SPC-4 table 54).
type SenseKey byte

// Sense keys used by the target.
const (
	SenseNone           SenseKey = 0x0
	SenseRecoveredError SenseKey = 0x1
	SenseNotReady       SenseKey = 0x2
	SenseMediumError    SenseKey = 0x3
	SenseHardwareError  SenseKey = 0x4
	SenseIllegalRequest SenseKey = 0x5
	SenseUnitAttention  SenseKey = 0x6
	SenseAbortedCommand SenseKey = 0xB
)

// String renders the sense key name.
func (k SenseKey) String() string {
	switch k {
	case SenseNone:
		return "NO SENSE"
	case SenseRecoveredError:
		return "RECOVERED ERROR"
	case SenseNotReady:
		return "NOT READY"
	case SenseMediumError:
		return "MEDIUM ERROR"
	case SenseHardwareError:
		return "HARDWARE ERROR"
	case SenseIllegalRequest:
		return "ILLEGAL REQUEST"
	case SenseUnitAttention:
		return "UNIT ATTENTION"
	case SenseAbortedCommand:
		return "ABORTED COMMAND"
	default:
		return fmt.Sprintf("SENSE(0x%x)", byte(k))
	}
}

// Additional sense code / qualifier pairs used by the target.
const (
	ASCInvalidFieldInCDB     = 0x24
	ASCLBAOutOfRange         = 0x21
	ASCInvalidOpcode         = 0x20
	ASCWriteError            = 0x0C
	ASCUnrecoveredReadError  = 0x11
	ASCLogicalUnitNotSupport = 0x25
)

// Sense is a decoded fixed-format sense data block.
type Sense struct {
	Key  SenseKey
	ASC  byte
	ASCQ byte
	// Info optionally carries the failing LBA.
	Info uint32
}

// Error implements the error interface so a Sense can propagate as an error.
func (s *Sense) Error() string {
	return fmt.Sprintf("scsi: check condition: key=%v asc=0x%02x ascq=0x%02x", s.Key, s.ASC, s.ASCQ)
}

// Encode serializes the sense data in fixed format (response code 0x70),
// 18 bytes long as produced by common Linux targets.
func (s *Sense) Encode() []byte {
	b := make([]byte, 18)
	b[0] = 0x70 // current error, fixed format
	b[2] = byte(s.Key) & 0x0F
	binary.BigEndian.PutUint32(b[3:7], s.Info)
	if s.Info != 0 {
		b[0] |= 0x80 // information field valid
	}
	b[7] = 10 // additional sense length
	b[12] = s.ASC
	b[13] = s.ASCQ
	return b
}

// DecodeSense parses fixed-format sense data.
func DecodeSense(b []byte) (*Sense, error) {
	if len(b) < 14 {
		return nil, fmt.Errorf("scsi: sense data too short (%d bytes)", len(b))
	}
	if rc := b[0] & 0x7F; rc != 0x70 && rc != 0x71 {
		return nil, fmt.Errorf("scsi: unsupported sense response code 0x%02x", rc)
	}
	s := &Sense{
		Key:  SenseKey(b[2] & 0x0F),
		ASC:  b[12],
		ASCQ: b[13],
	}
	if b[0]&0x80 != 0 {
		s.Info = binary.BigEndian.Uint32(b[3:7])
	}
	return s, nil
}

// IllegalRequest returns sense data for a malformed or unsupported command.
func IllegalRequest(asc byte) *Sense {
	return &Sense{Key: SenseIllegalRequest, ASC: asc}
}

// MediumError returns sense data for a failed medium access at the LBA.
func MediumError(asc byte, lba uint32) *Sense {
	return &Sense{Key: SenseMediumError, ASC: asc, Info: lba}
}
