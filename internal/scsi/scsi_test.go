package scsi

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDBRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		give *CDB
	}{
		{"read10", NewRead(1234, 8)},
		{"write10", NewWrite(0xFFFFFFFF, 0xFFFF)},
		{"read16", NewRead(1<<40, 8)},
		{"write16", NewWrite(7, 1<<20)},
		{"capacity10", NewReadCapacity10()},
		{"capacity16", NewReadCapacity16()},
		{"inquiry", NewInquiry(96)},
		{"tur", NewTestUnitReady()},
		{"sync", NewSyncCache(100, 50)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			enc, err := tt.give.Encode()
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			got, err := Decode(enc)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if got.Op != tt.give.Op || got.LBA != tt.give.LBA || got.Blocks != tt.give.Blocks {
				t.Errorf("round trip mismatch: got {op=0x%02x lba=%d blocks=%d}, want {op=0x%02x lba=%d blocks=%d}",
					got.Op, got.LBA, got.Blocks, tt.give.Op, tt.give.LBA, tt.give.Blocks)
			}
			if got.AllocationLength != tt.give.AllocationLength {
				t.Errorf("AllocationLength = %d, want %d", got.AllocationLength, tt.give.AllocationLength)
			}
		})
	}
}

func TestCDBRoundTripProperty(t *testing.T) {
	f := func(lba uint64, blocks uint32, write bool) bool {
		if blocks == 0 {
			blocks = 1
		}
		var c *CDB
		if write {
			c = NewWrite(lba, blocks)
		} else {
			c = NewRead(lba, blocks)
		}
		enc, err := c.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(enc)
		if err != nil {
			return false
		}
		return got.LBA == lba && got.Blocks == blocks && got.IsWrite() == write
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDBSelectsWideFormat(t *testing.T) {
	if got := NewRead(1<<33, 1).Op; got != OpRead16 {
		t.Errorf("NewRead(huge lba).Op = 0x%02x, want READ(16)", got)
	}
	if got := NewRead(10, 1<<17).Op; got != OpRead16 {
		t.Errorf("NewRead(huge count).Op = 0x%02x, want READ(16)", got)
	}
	if got := NewWrite(10, 4).Op; got != OpWrite10 {
		t.Errorf("NewWrite(small).Op = 0x%02x, want WRITE(10)", got)
	}
}

func TestCDBEncodeRangeErrors(t *testing.T) {
	// Force a 10-byte opcode with out-of-range fields.
	c := &CDB{Op: OpRead10, LBA: 1 << 33}
	if _, err := c.Encode(); err == nil {
		t.Error("Encode READ(10) with 33-bit LBA: want error")
	}
	c = &CDB{Op: OpWrite10, Blocks: 1 << 17}
	if _, err := c.Encode(); err == nil {
		t.Error("Encode WRITE(10) with 17-bit count: want error")
	}
	c = &CDB{Op: 0x42}
	if _, err := c.Encode(); err == nil {
		t.Error("Encode unknown opcode: want error")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("Decode(nil): want error")
	}
	if _, err := Decode([]byte{OpRead10, 0, 0}); err == nil {
		t.Error("Decode(short READ10): want error")
	}
	_, err := Decode([]byte{0x42, 0, 0, 0, 0, 0})
	var ue *UnsupportedOpError
	if !errors.As(err, &ue) {
		t.Errorf("Decode(unknown op) error = %v, want UnsupportedOpError", err)
	}
	if ue != nil && ue.Op != 0x42 {
		t.Errorf("UnsupportedOpError.Op = 0x%02x, want 0x42", ue.Op)
	}
}

func TestCDBClassification(t *testing.T) {
	if !NewRead(0, 1).IsRead() || NewRead(0, 1).IsWrite() {
		t.Error("READ classification wrong")
	}
	if !NewWrite(0, 1).IsWrite() || NewWrite(0, 1).IsRead() {
		t.Error("WRITE classification wrong")
	}
	if !NewRead(0, 1).IsMediumAccess() || NewInquiry(36).IsMediumAccess() {
		t.Error("IsMediumAccess classification wrong")
	}
	if !NewInquiry(36).IsRead() {
		t.Error("INQUIRY should be a read-direction command")
	}
}

func TestCDBString(t *testing.T) {
	tests := []struct {
		give *CDB
		want string
	}{
		{NewRead(5, 2), "READ lba=5 blocks=2"},
		{NewWrite(9, 1), "WRITE lba=9 blocks=1"},
		{NewTestUnitReady(), "TEST UNIT READY"},
		{&CDB{Op: 0x99}, "CDB(0x99)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestSenseRoundTrip(t *testing.T) {
	give := &Sense{Key: SenseMediumError, ASC: ASCWriteError, ASCQ: 0x02, Info: 777}
	got, err := DecodeSense(give.Encode())
	if err != nil {
		t.Fatalf("DecodeSense: %v", err)
	}
	if got.Key != give.Key || got.ASC != give.ASC || got.ASCQ != give.ASCQ || got.Info != give.Info {
		t.Errorf("round trip: got %+v, want %+v", got, give)
	}
}

func TestSenseNoInfoValidBit(t *testing.T) {
	give := &Sense{Key: SenseIllegalRequest, ASC: ASCInvalidOpcode}
	enc := give.Encode()
	if enc[0]&0x80 != 0 {
		t.Error("information-valid bit set without Info")
	}
	got, err := DecodeSense(enc)
	if err != nil {
		t.Fatalf("DecodeSense: %v", err)
	}
	if got.Info != 0 {
		t.Errorf("Info = %d, want 0", got.Info)
	}
}

func TestSenseDecodeErrors(t *testing.T) {
	if _, err := DecodeSense([]byte{0x70}); err == nil {
		t.Error("DecodeSense(short): want error")
	}
	bad := make([]byte, 18)
	bad[0] = 0x33
	if _, err := DecodeSense(bad); err == nil {
		t.Error("DecodeSense(bad response code): want error")
	}
}

func TestSenseAsError(t *testing.T) {
	var err error = IllegalRequest(ASCInvalidFieldInCDB)
	if !strings.Contains(err.Error(), "ILLEGAL REQUEST") {
		t.Errorf("Error() = %q, want it to mention ILLEGAL REQUEST", err.Error())
	}
}

func TestSenseKeyStrings(t *testing.T) {
	if SenseMediumError.String() != "MEDIUM ERROR" {
		t.Errorf("SenseMediumError.String() = %q", SenseMediumError.String())
	}
	if got := SenseKey(0xF).String(); got != "SENSE(0xf)" {
		t.Errorf("unknown key String() = %q", got)
	}
}

func TestStatusStrings(t *testing.T) {
	tests := []struct {
		give Status
		want string
	}{
		{StatusGood, "GOOD"},
		{StatusCheckCondition, "CHECK CONDITION"},
		{StatusBusy, "BUSY"},
		{StatusTaskSetFull, "TASK SET FULL"},
		{Status(0x55), "STATUS(0x55)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Status(%#x).String() = %q, want %q", byte(tt.give), got, tt.want)
		}
	}
}

func TestInquiryRoundTrip(t *testing.T) {
	give := &InquiryData{Vendor: "STORM", Product: "VIRTUAL-VOL", Revision: "1.0"}
	enc := give.Encode()
	if len(enc) != 36 {
		t.Fatalf("Encode length = %d, want 36", len(enc))
	}
	got, err := DecodeInquiry(enc)
	if err != nil {
		t.Fatalf("DecodeInquiry: %v", err)
	}
	if *got != *give {
		t.Errorf("round trip: got %+v, want %+v", got, give)
	}
}

func TestInquiryTruncatesLongStrings(t *testing.T) {
	give := &InquiryData{Vendor: "VERYLONGVENDOR", Product: "P", Revision: "1"}
	got, err := DecodeInquiry(give.Encode())
	if err != nil {
		t.Fatalf("DecodeInquiry: %v", err)
	}
	if got.Vendor != "VERYLONG" {
		t.Errorf("Vendor = %q, want truncation to 8 chars", got.Vendor)
	}
}

func TestInquiryDecodeShort(t *testing.T) {
	if _, err := DecodeInquiry(make([]byte, 10)); err == nil {
		t.Error("DecodeInquiry(short): want error")
	}
}

func TestCapacityRoundTrip10(t *testing.T) {
	give := Capacity{LastLBA: 99, BlockSize: 512}
	got, err := DecodeCapacity10(give.EncodeCapacity10())
	if err != nil {
		t.Fatalf("DecodeCapacity10: %v", err)
	}
	if got != give {
		t.Errorf("round trip: got %+v, want %+v", got, give)
	}
	if got.Blocks() != 100 || got.Bytes() != 51200 {
		t.Errorf("Blocks/Bytes = %d/%d, want 100/51200", got.Blocks(), got.Bytes())
	}
}

func TestCapacity10Saturates(t *testing.T) {
	give := Capacity{LastLBA: 1 << 40, BlockSize: 512}
	got, err := DecodeCapacity10(give.EncodeCapacity10())
	if err != nil {
		t.Fatalf("DecodeCapacity10: %v", err)
	}
	if got.LastLBA != 0xFFFFFFFF {
		t.Errorf("LastLBA = %d, want saturation to 0xFFFFFFFF", got.LastLBA)
	}
}

func TestCapacityRoundTrip16(t *testing.T) {
	give := Capacity{LastLBA: 1 << 40, BlockSize: 4096}
	got, err := DecodeCapacity16(give.EncodeCapacity16())
	if err != nil {
		t.Fatalf("DecodeCapacity16: %v", err)
	}
	if got != give {
		t.Errorf("round trip: got %+v, want %+v", got, give)
	}
}

func TestCapacityDecodeShort(t *testing.T) {
	if _, err := DecodeCapacity10(make([]byte, 4)); err == nil {
		t.Error("DecodeCapacity10(short): want error")
	}
	if _, err := DecodeCapacity16(make([]byte, 4)); err == nil {
		t.Error("DecodeCapacity16(short): want error")
	}
}

func TestEncodeSetsRaw(t *testing.T) {
	c := NewRead(8, 2)
	enc, err := c.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !bytes.Equal(c.Raw, enc) {
		t.Error("Encode did not record Raw bytes")
	}
}
