// Package scsi implements the subset of the SCSI block command set that the
// StorM iSCSI stack carries: command descriptor blocks (CDBs) for the
// READ/WRITE/capacity/inquiry family, status codes, and sense data. The
// encoding follows SBC-3/SPC-4 wire layouts so that middle-boxes can parse
// intercepted traffic exactly as the paper's prototype does with Open-iSCSI.
package scsi

import (
	"encoding/binary"
	"fmt"
)

// Operation codes for the supported CDBs.
const (
	OpTestUnitReady  byte = 0x00
	OpInquiry        byte = 0x12
	OpReadCapacity10 byte = 0x25
	OpRead10         byte = 0x28
	OpWrite10        byte = 0x2A
	OpSyncCache10    byte = 0x35
	OpRead16         byte = 0x88
	OpWrite16        byte = 0x8A
	OpReadCapacity16 byte = 0x9E // service action in byte 1
)

// Status is the SCSI command completion status.
type Status byte

// SCSI status codes (SAM-5).
const (
	StatusGood           Status = 0x00
	StatusCheckCondition Status = 0x02
	StatusBusy           Status = 0x08
	StatusTaskSetFull    Status = 0x28
)

// String renders the status name.
func (s Status) String() string {
	switch s {
	case StatusGood:
		return "GOOD"
	case StatusCheckCondition:
		return "CHECK CONDITION"
	case StatusBusy:
		return "BUSY"
	case StatusTaskSetFull:
		return "TASK SET FULL"
	default:
		return fmt.Sprintf("STATUS(0x%02x)", byte(s))
	}
}

// CDB is a decoded command descriptor block.
type CDB struct {
	Op byte
	// LBA and Blocks are meaningful for the READ/WRITE/SYNC family.
	LBA    uint64
	Blocks uint32
	// AllocationLength is meaningful for INQUIRY and READ CAPACITY(16).
	AllocationLength uint32
	// Raw holds the original bytes the CDB was decoded from (or encoded to).
	Raw []byte
}

// IsRead reports whether the CDB transfers data from the device to the
// initiator.
func (c *CDB) IsRead() bool {
	switch c.Op {
	case OpRead10, OpRead16, OpReadCapacity10, OpReadCapacity16, OpInquiry:
		return true
	}
	return false
}

// IsWrite reports whether the CDB transfers data from the initiator to the
// device.
func (c *CDB) IsWrite() bool {
	return c.Op == OpWrite10 || c.Op == OpWrite16
}

// IsMediumAccess reports whether the CDB reads or writes medium blocks.
func (c *CDB) IsMediumAccess() bool {
	switch c.Op {
	case OpRead10, OpRead16, OpWrite10, OpWrite16:
		return true
	}
	return false
}

// String renders a compact human-readable description.
func (c *CDB) String() string {
	switch c.Op {
	case OpRead10, OpRead16:
		return fmt.Sprintf("READ lba=%d blocks=%d", c.LBA, c.Blocks)
	case OpWrite10, OpWrite16:
		return fmt.Sprintf("WRITE lba=%d blocks=%d", c.LBA, c.Blocks)
	case OpReadCapacity10:
		return "READ CAPACITY(10)"
	case OpReadCapacity16:
		return "READ CAPACITY(16)"
	case OpInquiry:
		return "INQUIRY"
	case OpTestUnitReady:
		return "TEST UNIT READY"
	case OpSyncCache10:
		return fmt.Sprintf("SYNCHRONIZE CACHE lba=%d blocks=%d", c.LBA, c.Blocks)
	default:
		return fmt.Sprintf("CDB(0x%02x)", c.Op)
	}
}

// NewRead returns a READ CDB addressing the given extent, choosing READ(10)
// when the extent fits and READ(16) otherwise.
func NewRead(lba uint64, blocks uint32) *CDB {
	c := ReadCDB(lba, blocks)
	return &c
}

// ReadCDB is the value form of NewRead, for hot paths that keep the CDB on
// the stack.
func ReadCDB(lba uint64, blocks uint32) CDB {
	op := OpRead10
	if lba > 0xFFFFFFFF || blocks > 0xFFFF {
		op = OpRead16
	}
	return CDB{Op: op, LBA: lba, Blocks: blocks}
}

// NewWrite returns a WRITE CDB addressing the given extent, choosing
// WRITE(10) when the extent fits and WRITE(16) otherwise.
func NewWrite(lba uint64, blocks uint32) *CDB {
	c := WriteCDB(lba, blocks)
	return &c
}

// WriteCDB is the value form of NewWrite, for hot paths that keep the CDB on
// the stack.
func WriteCDB(lba uint64, blocks uint32) CDB {
	op := OpWrite10
	if lba > 0xFFFFFFFF || blocks > 0xFFFF {
		op = OpWrite16
	}
	return CDB{Op: op, LBA: lba, Blocks: blocks}
}

// NewReadCapacity10 returns a READ CAPACITY(10) CDB.
func NewReadCapacity10() *CDB { return &CDB{Op: OpReadCapacity10} }

// NewReadCapacity16 returns a READ CAPACITY(16) CDB.
func NewReadCapacity16() *CDB {
	return &CDB{Op: OpReadCapacity16, AllocationLength: 32}
}

// NewInquiry returns a standard INQUIRY CDB.
func NewInquiry(alloc uint32) *CDB {
	return &CDB{Op: OpInquiry, AllocationLength: alloc}
}

// NewTestUnitReady returns a TEST UNIT READY CDB.
func NewTestUnitReady() *CDB { return &CDB{Op: OpTestUnitReady} }

// NewSyncCache returns a SYNCHRONIZE CACHE(10) CDB covering the extent; a
// zero extent requests syncing the whole medium.
func NewSyncCache(lba uint64, blocks uint32) *CDB {
	return &CDB{Op: OpSyncCache10, LBA: lba, Blocks: blocks}
}

// Encode serializes the CDB to its wire form (6/10/16 bytes depending on the
// operation code), storing the bytes in c.Raw.
func (c *CDB) Encode() ([]byte, error) {
	b := make([]byte, 16)
	n, err := c.EncodeInto(b)
	if err != nil {
		return nil, err
	}
	c.Raw = b[:n]
	return c.Raw, nil
}

// EncodeInto serializes the CDB into dst without allocating and without
// touching c.Raw — the hot-path form for callers that own a reusable CDB
// field. dst must be at least 16 bytes and zeroed by the caller (reserved
// bytes are not written). Returns the encoded length.
func (c *CDB) EncodeInto(dst []byte) (int, error) {
	if len(dst) < 16 {
		return 0, fmt.Errorf("scsi: CDB destination %d bytes, need 16", len(dst))
	}
	switch c.Op {
	case OpTestUnitReady:
		dst[0] = c.Op
		return 6, nil
	case OpInquiry:
		if c.AllocationLength > 0xFFFF {
			return 0, fmt.Errorf("scsi: inquiry allocation length %d exceeds 16 bits", c.AllocationLength)
		}
		dst[0] = c.Op
		binary.BigEndian.PutUint16(dst[3:5], uint16(c.AllocationLength))
		return 6, nil
	case OpReadCapacity10:
		dst[0] = c.Op
		return 10, nil
	case OpRead10, OpWrite10, OpSyncCache10:
		if c.LBA > 0xFFFFFFFF {
			return 0, fmt.Errorf("scsi: lba %d exceeds 32 bits for 10-byte CDB", c.LBA)
		}
		if c.Blocks > 0xFFFF {
			return 0, fmt.Errorf("scsi: transfer length %d exceeds 16 bits for 10-byte CDB", c.Blocks)
		}
		dst[0] = c.Op
		binary.BigEndian.PutUint32(dst[2:6], uint32(c.LBA))
		binary.BigEndian.PutUint16(dst[7:9], uint16(c.Blocks))
		return 10, nil
	case OpRead16, OpWrite16:
		dst[0] = c.Op
		binary.BigEndian.PutUint64(dst[2:10], c.LBA)
		binary.BigEndian.PutUint32(dst[10:14], c.Blocks)
		return 16, nil
	case OpReadCapacity16:
		dst[0] = c.Op
		dst[1] = 0x10 // READ CAPACITY(16) service action
		binary.BigEndian.PutUint32(dst[10:14], c.AllocationLength)
		return 16, nil
	default:
		return 0, fmt.Errorf("scsi: cannot encode unsupported opcode 0x%02x", c.Op)
	}
}

// Decode parses a wire-format CDB.
func Decode(b []byte) (*CDB, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("scsi: empty CDB")
	}
	c := &CDB{Op: b[0], Raw: b}
	switch b[0] {
	case OpTestUnitReady:
		if len(b) < 6 {
			return nil, fmt.Errorf("scsi: short TEST UNIT READY CDB (%d bytes)", len(b))
		}
		return c, nil
	case OpInquiry:
		if len(b) < 6 {
			return nil, fmt.Errorf("scsi: short INQUIRY CDB (%d bytes)", len(b))
		}
		c.AllocationLength = uint32(binary.BigEndian.Uint16(b[3:5]))
		return c, nil
	case OpReadCapacity10:
		if len(b) < 10 {
			return nil, fmt.Errorf("scsi: short READ CAPACITY(10) CDB (%d bytes)", len(b))
		}
		return c, nil
	case OpRead10, OpWrite10, OpSyncCache10:
		if len(b) < 10 {
			return nil, fmt.Errorf("scsi: short 10-byte CDB (%d bytes)", len(b))
		}
		c.LBA = uint64(binary.BigEndian.Uint32(b[2:6]))
		c.Blocks = uint32(binary.BigEndian.Uint16(b[7:9]))
		return c, nil
	case OpRead16, OpWrite16:
		if len(b) < 16 {
			return nil, fmt.Errorf("scsi: short 16-byte CDB (%d bytes)", len(b))
		}
		c.LBA = binary.BigEndian.Uint64(b[2:10])
		c.Blocks = binary.BigEndian.Uint32(b[10:14])
		return c, nil
	case OpReadCapacity16:
		if len(b) < 16 {
			return nil, fmt.Errorf("scsi: short READ CAPACITY(16) CDB (%d bytes)", len(b))
		}
		c.AllocationLength = binary.BigEndian.Uint32(b[10:14])
		return c, nil
	default:
		return nil, &UnsupportedOpError{Op: b[0]}
	}
}

// UnsupportedOpError reports a CDB opcode outside the supported subset.
type UnsupportedOpError struct {
	Op byte
}

func (e *UnsupportedOpError) Error() string {
	return fmt.Sprintf("scsi: unsupported opcode 0x%02x", e.Op)
}
