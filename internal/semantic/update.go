package semantic

import (
	"encoding/binary"
	"strings"

	"repro/internal/extfs"
)

// This file is the Update phase: intercepted metadata writes mutate the
// reconstructor's live system view so subsequent data accesses resolve to
// the right files.

// ptrKind marks indirect pointer blocks owned by an inode.
type ptrKind int

const (
	ptrL1 ptrKind = 1 // entries point at data blocks
	ptrL2 ptrKind = 2 // entries point at L1 pointer blocks
)

// ensurePtrMaps lazily initializes the pointer-block tracking maps.
func (r *Reconstructor) ensurePtrMaps() {
	if r.ptrBlocks == nil {
		r.ptrBlocks = make(map[uint64]ptrRef)
	}
	if r.dirShadow == nil {
		r.dirShadow = make(map[uint64]map[string]uint32)
		// Single-block directories from the initial view can be shadowed
		// exactly; multi-block directories start empty and converge as
		// their blocks are rewritten.
		for ino, entries := range r.dirEntries {
			m := r.inodes[ino]
			if m == nil || len(m.blocks) != 1 {
				continue
			}
			for blk := range m.blocks {
				shadow := make(map[string]uint32, len(entries))
				for name, child := range entries {
					shadow[name] = child
				}
				r.dirShadow[blk] = shadow
			}
		}
	}
}

type ptrRef struct {
	ino  uint32
	kind ptrKind
}

// learnSuperblock folds an intercepted superblock write into the view. A
// structurally different superblock (fresh mkfs through the middle-box
// chain) rebuilds the geometry; routine free-count updates are ignored.
func (r *Reconstructor) learnSuperblock(data []byte) {
	sb, err := extfs.DecodeSuperblock(data)
	if err != nil {
		return
	}
	structural := sb.BlockSize != r.sb.BlockSize ||
		sb.BlocksCount != r.sb.BlocksCount ||
		sb.GroupCount != uint32(len(r.geom)) ||
		sb.InodesPerGroup != r.sb.InodesPerGroup
	if !structural {
		return
	}
	if sb.BlockSize == 0 || sb.BlockSize%512 != 0 {
		return
	}
	devBlockSize := int(r.view.BlockSize) / max(r.view.SectorsPerBlock, 1)
	if devBlockSize > 0 && int(sb.BlockSize)%devBlockSize == 0 {
		r.view.SectorsPerBlock = int(sb.BlockSize) / devBlockSize
	}
	r.sb = sb
	r.geom = sb.Geometry()
	r.view.BlockSize = sb.BlockSize
	r.view.BlocksCount = sb.BlocksCount
	r.view.InodesPerGroup = sb.InodesPerGroup
	r.view.Groups = r.geom
	// A fresh file system invalidates all prior attribution state.
	r.inodes = make(map[uint32]*inoMeta)
	r.blockOwner = make(map[uint64]uint32)
	r.dirEntries = make(map[uint32]map[string]uint32)
	r.pendingData = make(map[uint64]pendingWrite)
	r.orphaned = make(map[uint32]string)
	r.ptrBlocks = make(map[uint64]ptrRef)
	r.dirShadow = make(map[uint64]map[string]uint32)
}

// updateFromInodeTable diffs a written inode-table block against the live
// view, detecting allocations, deletions, growth, and block mappings.
func (r *Reconstructor) updateFromInodeTable(blk uint64, group uint32, data []byte) []Event {
	r.ensurePtrMaps()
	var evs []Event
	perBlock := int(r.view.BlockSize) / extfs.InodeSize
	tableStart := r.geom[group].InodeTable
	blockIdx := blk - tableStart
	baseIno := group*r.view.InodesPerGroup + uint32(blockIdx)*uint32(perBlock) + 1

	for slot := 0; slot < perBlock && (slot+1)*extfs.InodeSize <= len(data); slot++ {
		ino := baseIno + uint32(slot)
		rec := extfs.DecodeInodeRecord(data[slot*extfs.InodeSize : (slot+1)*extfs.InodeSize])
		old := r.inodes[ino]
		switch {
		case rec.Type == extfs.TypeFree:
			if old != nil && old.typ != extfs.TypeFree {
				p := old.path
				if orphan, ok := r.orphaned[ino]; ok {
					p = orphan
				}
				if p == "" {
					p = "inode_?"
				}
				evs = append(evs, Event{Type: EvDelete, Path: p})
				r.dropInode(ino)
			}
		default:
			if old == nil {
				old = &inoMeta{ino: ino, typ: rec.Type, blocks: make(map[uint64]bool)}
				if ino == extfs.RootIno {
					// The root directory has no naming dentry; its path is
					// fixed by convention.
					old.path = "/"
				}
				r.inodes[ino] = old
				if rec.Type == extfs.TypeDir {
					r.dirEntries[ino] = make(map[string]uint32)
				}
			}
			old.typ = rec.Type
			old.size = rec.Size
			evs = append(evs, r.syncBlockMap(old, rec)...)
		}
	}
	return evs
}

// syncBlockMap registers the inode's direct blocks and pointer blocks,
// attributing any pending data writes.
func (r *Reconstructor) syncBlockMap(m *inoMeta, rec extfs.InodeRecord) []Event {
	var evs []Event
	for _, b := range rec.Direct {
		if b != 0 {
			evs = append(evs, r.claimBlock(m, b)...)
		}
	}
	if rec.Indirect != 0 {
		r.ptrBlocks[rec.Indirect] = ptrRef{ino: m.ino, kind: ptrL1}
	}
	if rec.DoubleIndirect != 0 {
		r.ptrBlocks[rec.DoubleIndirect] = ptrRef{ino: m.ino, kind: ptrL2}
	}
	return evs
}

// claimBlock maps a data block to its owner, emitting held writes. A block
// freed by one file and reallocated to another transfers ownership here,
// keeping attribution correct across reuse.
func (r *Reconstructor) claimBlock(m *inoMeta, blk uint64) []Event {
	if m.blocks[blk] {
		return nil
	}
	if prev, ok := r.blockOwner[blk]; ok && prev != m.ino {
		if old := r.inodes[prev]; old != nil {
			delete(old.blocks, blk)
		}
	}
	m.blocks[blk] = true
	r.blockOwner[blk] = m.ino
	pend, ok := r.pendingData[blk]
	if !ok {
		return nil
	}
	delete(r.pendingData, blk)
	p := m.path
	switch {
	case p == "":
		p = "inode_?"
	case m.typ == extfs.TypeDir:
		p = dirDot(p)
	}
	return []Event{{Type: EvWrite, Path: p, Size: pend.size}}
}

// dropInode removes all state for a freed inode.
func (r *Reconstructor) dropInode(ino uint32) {
	m := r.inodes[ino]
	if m != nil {
		for b := range m.blocks {
			if r.blockOwner[b] == ino {
				delete(r.blockOwner, b)
			}
		}
	}
	for b, ref := range r.ptrBlocks {
		if ref.ino == ino {
			delete(r.ptrBlocks, b)
		}
	}
	delete(r.inodes, ino)
	delete(r.dirEntries, ino)
	delete(r.orphaned, ino)
}

// handlePtrBlock interprets a write to an indirect pointer block.
func (r *Reconstructor) handlePtrBlock(blk uint64, data []byte) ([]Event, bool) {
	r.ensurePtrMaps()
	ref, ok := r.ptrBlocks[blk]
	if !ok || data == nil {
		return nil, ok
	}
	m := r.inodes[ref.ino]
	if m == nil {
		return nil, true
	}
	var evs []Event
	for off := 0; off+extfs.PointerSize <= len(data); off += extfs.PointerSize {
		ptr := binary.LittleEndian.Uint64(data[off : off+extfs.PointerSize])
		if ptr == 0 {
			continue
		}
		if ref.kind == ptrL2 {
			r.ptrBlocks[ptr] = ptrRef{ino: ref.ino, kind: ptrL1}
		} else {
			evs = append(evs, r.claimBlock(m, ptr)...)
		}
	}
	return evs, true
}

// updateFromDirBlock diffs a written directory block against its shadow,
// recovering create, delete and rename operations.
func (r *Reconstructor) updateFromDirBlock(dir *inoMeta, data []byte) []Event {
	r.ensurePtrMaps()
	ents, err := extfs.ParseDirBlock(data)
	if err != nil {
		return nil
	}
	// Locate the block this data belongs to: the caller resolved the block
	// owner before calling us, so re-derive from the access path — instead
	// the caller passes the block through dirShadowKey.
	blk := r.currentDirBlock
	newSet := make(map[string]uint32, len(ents))
	for _, e := range ents {
		if e.Name == "." || e.Name == ".." {
			continue
		}
		newSet[e.Name] = e.Ino
	}
	oldSet := r.dirShadow[blk]

	var evs []Event
	// Additions (and renames).
	for name, ino := range newSet {
		if oldSet[name] == ino {
			continue
		}
		child := r.inodes[ino]
		if child == nil {
			child = &inoMeta{ino: ino, typ: extfs.TypeFile, blocks: make(map[uint64]bool)}
			r.inodes[ino] = child
		}
		newPath := joinPath(dir.path, name)
		switch {
		case child.path == "":
			child.path = newPath
			evs = append(evs, Event{Type: EvCreate, Path: newPath})
			delete(r.orphaned, ino)
		case child.path != newPath:
			oldPath := child.path
			r.repath(child, newPath)
			evs = append(evs, Event{Type: EvRename, Path: newPath, OldPath: oldPath})
			delete(r.orphaned, ino)
		}
		if r.dirEntries[dir.ino] == nil {
			r.dirEntries[dir.ino] = make(map[string]uint32)
		}
		r.dirEntries[dir.ino][name] = ino
	}
	// Removals: mark orphaned; deletion is confirmed when the inode frees.
	for name, ino := range oldSet {
		if _, still := newSet[name]; still {
			continue
		}
		delete(r.dirEntries[dir.ino], name)
		child := r.inodes[ino]
		removedPath := joinPath(dir.path, name)
		if child != nil && child.path == removedPath {
			r.orphaned[ino] = removedPath
			child.path = ""
		}
	}
	r.dirShadow[blk] = newSet
	return evs
}

// repath renames an inode and, for directories, every descendant path.
func (r *Reconstructor) repath(m *inoMeta, newPath string) {
	oldPath := m.path
	m.path = newPath
	if m.typ != extfs.TypeDir {
		return
	}
	prefix := oldPath + "/"
	for _, other := range r.inodes {
		if other != m && strings.HasPrefix(other.path, prefix) {
			other.path = newPath + "/" + strings.TrimPrefix(other.path, prefix)
		}
	}
}

func joinPath(dir, name string) string {
	if dir == "" {
		return "?/" + name
	}
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}
