package semantic

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/blockdev"
	"repro/internal/extfs"
)

// TestReconstructionConsistencyProperty drives random file-operation
// sequences through a monitored volume and checks the reconstructed
// namespace events against ground truth: every file that exists at the end
// was last seen as created (and not subsequently deleted), and vice versa.
func TestReconstructionConsistencyProperty(t *testing.T) {
	type op struct {
		Kind byte // create, write, delete, rename
		A, B uint8
		Size uint16
	}
	f := func(ops []op) bool {
		disk, err := blockdev.NewMemDisk(512, 65536)
		if err != nil {
			return false
		}
		fs, err := extfs.Mkfs(disk, extfs.Options{})
		if err != nil {
			return false
		}
		if err := fs.Mkdir("/d"); err != nil {
			return false
		}
		view, err := fs.Dump()
		if err != nil {
			return false
		}
		r := New(view)
		tap := &tapDevice{dev: disk, r: r}
		fs2, err := extfs.Mount(tap)
		if err != nil {
			return false
		}

		name := func(n uint8) string { return fmt.Sprintf("/d/f%d", n%8) }
		live := make(map[string]bool)
		for _, o := range ops {
			switch o.Kind % 4 {
			case 0, 1: // create or overwrite
				p := name(o.A)
				if err := fs2.WriteFile(p, bytes.Repeat([]byte{1}, int(o.Size%4096)+1)); err != nil {
					return false
				}
				live[p] = true
			case 2: // delete
				p := name(o.A)
				err := fs2.Remove(p)
				if live[p] != (err == nil) {
					return false
				}
				delete(live, p)
			case 3: // rename
				src, dst := name(o.A), name(o.B)
				if src == dst {
					continue
				}
				err := fs2.Rename(src, dst)
				switch {
				case !live[src]:
					if err == nil {
						return false
					}
				case live[dst]:
					if err == nil {
						return false
					}
				default:
					if err != nil {
						return false
					}
					delete(live, src)
					live[dst] = true
				}
			}
		}

		// Replay the reconstructed namespace events into a shadow set.
		shadow := make(map[string]bool)
		for _, e := range r.Events() {
			switch e.Type {
			case EvCreate:
				shadow[e.Path] = true
			case EvDelete:
				delete(shadow, e.Path)
			case EvRename:
				delete(shadow, e.OldPath)
				shadow[e.Path] = true
			}
		}
		for p := range live {
			if !shadow[p] {
				return false
			}
		}
		for p := range shadow {
			if p == "/d" || p == "/" {
				continue
			}
			if !live[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
