// Package semantic implements StorM's semantics reconstruction (Section
// III-C): middle-boxes observe only low-level block accesses (disk sectors,
// raw data, inode metadata), while tenants operate on files and
// directories. A Reconstructor starts from the initial high-level system
// view generated when the volume is attached (extfs.View, the dumpe2fs
// analogue), tracks every metadata access to keep the view current, and
// converts block-level reads and writes into high-level file operations —
// the Classification and Update phases of the paper's monitoring engine.
package semantic

import (
	"fmt"
	"path"
	"strings"
	"sync"

	"repro/internal/extfs"
)

// EventType classifies a reconstructed operation.
type EventType int

// Event types.
const (
	// EvRead / EvWrite are data accesses attributed to a file (or to a
	// directory's entries block, logged as "<dir>/.").
	EvRead EventType = iota + 1
	EvWrite
	// EvMetaRead / EvMetaWrite are metadata accesses (inode tables,
	// bitmaps, superblock).
	EvMetaRead
	EvMetaWrite
	// EvCreate, EvDelete, EvRename are recovered file-level operations.
	EvCreate
	EvDelete
	EvRename
)

// String renders the event type as it appears in the access log.
func (t EventType) String() string {
	switch t {
	case EvRead:
		return "read"
	case EvWrite:
		return "write"
	case EvMetaRead:
		return "read"
	case EvMetaWrite:
		return "write"
	case EvCreate:
		return "create"
	case EvDelete:
		return "delete"
	case EvRename:
		return "rename"
	default:
		return "op(?)"
	}
}

// Event is one reconstructed high-level operation.
type Event struct {
	// Seq is the access sequence number the event was recovered from.
	Seq uint64
	// Type classifies the operation.
	Type EventType
	// Path is the file or directory involved. Directory-entry accesses use
	// the paper's "<dir>/." notation; metadata accesses use "META:
	// <detail>".
	Path string
	// Size is the number of bytes accessed (0 for pure namespace events).
	Size int
	// OldPath carries the source of a rename.
	OldPath string
}

// String renders the event as one Table I row.
func (e Event) String() string {
	if e.Type == EvRename {
		return fmt.Sprintf("%-6d %-6s %s -> %s", e.Seq, e.Type, e.OldPath, e.Path)
	}
	if e.Size > 0 {
		return fmt.Sprintf("%-6d %-6s %s %d", e.Seq, e.Type, e.Path, e.Size)
	}
	return fmt.Sprintf("%-6d %-6s %s", e.Seq, e.Type, e.Path)
}

// inoMeta is the reconstructor's live knowledge of one inode.
type inoMeta struct {
	ino    uint32
	typ    extfs.FileType
	path   string
	size   uint64
	blocks map[uint64]bool
}

// Reconstructor converts block accesses into file-level events.
type Reconstructor struct {
	mu   sync.Mutex
	view *extfs.View
	sb   extfs.Superblock
	geom []extfs.GroupLayout

	seq uint64

	inodes     map[uint32]*inoMeta
	blockOwner map[uint64]uint32            // data block -> ino
	dirEntries map[uint32]map[string]uint32 // dir ino -> name -> child ino
	// pendingData holds writes to blocks not yet attributed to a file;
	// they are emitted once a metadata update maps the block.
	pendingData map[uint64]pendingWrite
	// orphaned tracks names removed from directories whose inodes are
	// still allocated (rename-in-flight or deletion-in-progress).
	orphaned map[uint32]string
	// ptrBlocks tracks indirect pointer blocks by owning inode.
	ptrBlocks map[uint64]ptrRef
	// dirShadow holds the last seen entry set per directory block.
	dirShadow map[uint64]map[string]uint32
	// currentDirBlock is the block being diffed by updateFromDirBlock.
	currentDirBlock uint64

	events []Event
	onEvt  func(Event)
}

type pendingWrite struct {
	seq  uint64
	size int
}

// New builds a reconstructor from the initial system view.
func New(view *extfs.View) *Reconstructor {
	r := &Reconstructor{
		view: view,
		sb: extfs.Superblock{
			BlockSize:      view.BlockSize,
			BlocksCount:    view.BlocksCount,
			InodesPerGroup: view.InodesPerGroup,
			GroupCount:     uint32(len(view.Groups)),
		},
		geom:        view.Groups,
		inodes:      make(map[uint32]*inoMeta),
		blockOwner:  make(map[uint64]uint32),
		dirEntries:  make(map[uint32]map[string]uint32),
		pendingData: make(map[uint64]pendingWrite),
		orphaned:    make(map[uint32]string),
	}
	for _, f := range view.Files {
		m := &inoMeta{
			ino:    f.Ino,
			typ:    f.Type,
			path:   f.Path,
			size:   f.Size,
			blocks: make(map[uint64]bool, len(f.Blocks)),
		}
		for _, b := range f.Blocks {
			m.blocks[b] = true
			r.blockOwner[b] = f.Ino
		}
		r.inodes[f.Ino] = m
		if f.Type == extfs.TypeDir {
			r.dirEntries[f.Ino] = make(map[string]uint32)
		}
	}
	// Populate directory contents from the path tree.
	for _, f := range view.Files {
		if f.Path == "/" {
			continue
		}
		dir := path.Dir(f.Path)
		name := path.Base(f.Path)
		if parent := r.inodeByPath(dir); parent != nil {
			r.dirEntries[parent.ino][name] = f.Ino
		}
	}
	return r
}

// OnEvent registers a callback invoked (without the lock held) for every
// reconstructed event, in order.
func (r *Reconstructor) OnEvent(fn func(Event)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onEvt = fn
}

// Events returns the retained event log.
func (r *Reconstructor) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// EventsSince returns events with Seq > seq — the tenant's periodic log
// retrieval interface (each poll passes the last sequence it saw).
func (r *Reconstructor) EventsSince(seq uint64) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.events {
		if e.Seq > seq {
			out = append(out, e)
		}
	}
	return out
}

// PathOf resolves a data block to its owning file path, exercising the
// fast lookup table (the paper's hash table for IDS-style queries).
func (r *Reconstructor) PathOf(fsBlock uint64) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ino, ok := r.blockOwner[fsBlock]
	if !ok {
		return "", false
	}
	m, ok := r.inodes[ino]
	if !ok || m.path == "" {
		return "", false
	}
	return m.path, true
}

func (r *Reconstructor) inodeByPath(p string) *inoMeta {
	for _, m := range r.inodes {
		if m.path == p {
			return m
		}
	}
	return nil
}

// OnAccess feeds one block-level access: write says the direction,
// sectorLBA is the device sector, and data is the transferred payload
// (required for writes so metadata updates can be parsed; may be nil for
// reads, in which case length gives the size).
func (r *Reconstructor) OnAccess(write bool, sectorLBA uint64, data []byte, length int) []Event {
	r.mu.Lock()
	if data != nil {
		length = len(data)
	}
	r.seq++
	seq := r.seq
	spb := uint64(r.view.SectorsPerBlock)
	bs := uint64(r.view.BlockSize)
	firstBlock := sectorLBA / spb

	// Split the access into fs blocks.
	nBlocks := (uint64(length) + bs - 1) / bs
	if nBlocks == 0 {
		nBlocks = 1
	}
	var out []Event
	emit := func(e Event) {
		e.Seq = seq
		out = append(out, e)
	}
	// Aggregate contiguous same-file data accesses into one event.
	var agg *Event
	flushAgg := func() {
		if agg != nil {
			emit(*agg)
			agg = nil
		}
	}
	for i := uint64(0); i < nBlocks; i++ {
		blk := firstBlock + i
		off := int(i * bs)
		end := off + int(bs)
		if end > length {
			end = length
		}
		var chunk []byte
		if data != nil && off < len(data) {
			chunk = data[off:min(end, len(data))]
		}
		evs := r.classifyBlock(write, blk, chunk, end-off)
		for _, e := range evs {
			if (e.Type == EvRead || e.Type == EvWrite) && agg != nil && agg.Path == e.Path && agg.Type == e.Type {
				agg.Size += e.Size
				continue
			}
			if e.Type == EvRead || e.Type == EvWrite {
				flushAgg()
				cp := e
				agg = &cp
				continue
			}
			flushAgg()
			emit(e)
		}
	}
	flushAgg()

	r.events = append(r.events, out...)
	cb := r.onEvt
	r.mu.Unlock()
	if cb != nil {
		for _, e := range out {
			cb(e)
		}
	}
	return out
}

// classifyBlock is the Classification phase for one fs block.
func (r *Reconstructor) classifyBlock(write bool, blk uint64, data []byte, size int) []Event {
	class, group := r.sb.Classify(blk, r.geom)
	switch class {
	case extfs.ClassSuperblock:
		if write && data != nil {
			r.learnSuperblock(data)
		}
		return []Event{metaEvent(write, "superblock", size)}
	case extfs.ClassBlockBitmap:
		return []Event{metaEvent(write, fmt.Sprintf("block_bitmap_group_%d", group), size)}
	case extfs.ClassInodeBitmap:
		return []Event{metaEvent(write, fmt.Sprintf("inode_bitmap_group_%d", group), size)}
	case extfs.ClassInodeTable:
		if write && data != nil {
			evs := r.updateFromInodeTable(blk, group, data)
			evs = append(evs, metaEvent(true, fmt.Sprintf("inode_group_%d", group), size))
			return evs
		}
		return []Event{metaEvent(write, fmt.Sprintf("inode_group_%d", group), size)}
	default:
		return r.dataAccess(write, blk, data, size)
	}
}

func metaEvent(write bool, detail string, size int) Event {
	t := EvMetaRead
	if write {
		t = EvMetaWrite
	}
	return Event{Type: t, Path: "META: " + detail, Size: size}
}

// dataAccess attributes a data-block access to a file or directory.
func (r *Reconstructor) dataAccess(write bool, blk uint64, data []byte, size int) []Event {
	r.ensurePtrMaps()
	// Indirect pointer blocks masquerade as data; interpret their writes
	// as metadata updates.
	if _, isPtr := r.ptrBlocks[blk]; isPtr {
		var evs []Event
		if write {
			evs, _ = r.handlePtrBlock(blk, data)
		}
		return append(evs, metaEvent(write, "indirect_block", size))
	}
	ino, known := r.blockOwner[blk]
	if !known {
		if write {
			// Data written ahead of its metadata update: hold it.
			r.pendingData[blk] = pendingWrite{seq: r.seq, size: size}
			return nil
		}
		return []Event{{Type: EvRead, Path: fmt.Sprintf("block_%d", blk), Size: size}}
	}
	m := r.inodes[ino]
	if m == nil {
		return nil
	}
	if m.typ == extfs.TypeDir {
		var evs []Event
		if write && data != nil {
			r.currentDirBlock = blk
			evs = r.updateFromDirBlock(m, data)
		}
		t := EvRead
		if write {
			t = EvWrite
		}
		evs = append(evs, Event{Type: t, Path: dirDot(m.path), Size: size})
		return evs
	}
	t := EvRead
	if write {
		t = EvWrite
	}
	p := m.path
	if p == "" {
		p = fmt.Sprintf("inode_%d", ino)
	}
	return []Event{{Type: t, Path: p, Size: size}}
}

func dirDot(p string) string {
	if strings.HasSuffix(p, "/") {
		return p + "."
	}
	return p + "/."
}
