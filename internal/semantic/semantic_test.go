package semantic

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/extfs"
)

// tapDevice feeds every block access to a reconstructor, exactly as the
// storage monitor middle-box observes intercepted traffic.
type tapDevice struct {
	dev blockdev.Device
	r   *Reconstructor
	// mute suppresses tapping during setup.
	mute bool
}

func (d *tapDevice) BlockSize() int { return d.dev.BlockSize() }
func (d *tapDevice) Blocks() uint64 { return d.dev.Blocks() }

func (d *tapDevice) ReadAt(p []byte, lba uint64) error {
	if err := d.dev.ReadAt(p, lba); err != nil {
		return err
	}
	if !d.mute {
		d.r.OnAccess(false, lba, nil, len(p))
	}
	return nil
}

func (d *tapDevice) WriteAt(p []byte, lba uint64) error {
	if err := d.dev.WriteAt(p, lba); err != nil {
		return err
	}
	if !d.mute {
		d.r.OnAccess(true, lba, p, len(p))
	}
	return nil
}

func (d *tapDevice) Flush() error { return d.dev.Flush() }
func (d *tapDevice) Close() error { return d.dev.Close() }

// setup builds the Table I scenario: a volume formatted with extfs holding
// /mnt/box/name0..name9 each with 1.img..10.img, an initial view, and a
// tapped re-mount.
func setup(t *testing.T) (*extfs.FS, *Reconstructor) {
	t.Helper()
	disk, err := blockdev.NewMemDisk(512, 262144) // 128 MiB
	if err != nil {
		t.Fatal(err)
	}
	fs, err := extfs.Mkfs(disk, extfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/mnt/box"); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 10; d++ {
		dir := fmt.Sprintf("/mnt/box/name%d", d)
		if err := fs.Mkdir(dir); err != nil {
			t.Fatal(err)
		}
		for f := 1; f <= 10; f++ {
			if err := fs.WriteFile(fmt.Sprintf("%s/%d.img", dir, f), bytes.Repeat([]byte{byte(f)}, 4096)); err != nil {
				t.Fatal(err)
			}
		}
	}
	view, err := fs.Dump()
	if err != nil {
		t.Fatal(err)
	}
	r := New(view)
	tap := &tapDevice{dev: disk, r: r}
	fs2, err := extfs.Mount(tap)
	if err != nil {
		t.Fatal(err)
	}
	return fs2, r
}

func eventsContain(evs []Event, typ EventType, pathSub string) bool {
	for _, e := range evs {
		if e.Type == typ && strings.Contains(e.Path, pathSub) {
			return true
		}
	}
	return false
}

func TestReconstructFileRead(t *testing.T) {
	fs, r := setup(t)
	if _, err := fs.ReadFile("/mnt/box/name9/7.img"); err != nil {
		t.Fatal(err)
	}
	evs := r.Events()
	if !eventsContain(evs, EvRead, "/mnt/box/name9/7.img") {
		t.Errorf("no read event for the file; got:\n%s", renderEvents(evs))
	}
}

func TestReconstructFileWriteWithSize(t *testing.T) {
	fs, r := setup(t)
	if err := fs.WriteAt("/mnt/box/name9/7.img", bytes.Repeat([]byte{9}, 4096), 0); err != nil {
		t.Fatal(err)
	}
	evs := r.Events()
	var found bool
	for _, e := range evs {
		if e.Type == EvWrite && e.Path == "/mnt/box/name9/7.img" && e.Size == 4096 {
			found = true
		}
	}
	if !found {
		t.Errorf("no 4096-byte write event; got:\n%s", renderEvents(evs))
	}
}

func TestReconstructDirectoryListing(t *testing.T) {
	fs, r := setup(t)
	if _, err := fs.ReadDir("/mnt/box"); err != nil {
		t.Fatal(err)
	}
	evs := r.Events()
	// The paper logs directory-entry reads as "<dir>/." and the inode
	// metadata reads as "META: inode_group_N".
	if !eventsContain(evs, EvRead, "/mnt/box/.") {
		t.Errorf("no directory-dot read; got:\n%s", renderEvents(evs))
	}
	if !eventsContain(evs, EvMetaRead, "inode_group_") {
		t.Errorf("no inode table read; got:\n%s", renderEvents(evs))
	}
}

func TestReconstructCreate(t *testing.T) {
	fs, r := setup(t)
	if err := fs.WriteFile("/mnt/box/name1/new.img", bytes.Repeat([]byte{1}, 16384)); err != nil {
		t.Fatal(err)
	}
	evs := r.Events()
	if !eventsContain(evs, EvCreate, "/mnt/box/name1/new.img") {
		t.Fatalf("no create event; got:\n%s", renderEvents(evs))
	}
	// A fresh read attributes data blocks to the new path.
	if _, err := fs.ReadFile("/mnt/box/name1/new.img"); err != nil {
		t.Fatal(err)
	}
	if !eventsContain(r.Events(), EvRead, "/mnt/box/name1/new.img") {
		t.Error("data blocks of the new file not attributed")
	}
}

func TestReconstructDelete(t *testing.T) {
	fs, r := setup(t)
	if err := fs.Remove("/mnt/box/name2/3.img"); err != nil {
		t.Fatal(err)
	}
	if !eventsContain(r.Events(), EvDelete, "/mnt/box/name2/3.img") {
		t.Errorf("no delete event; got:\n%s", renderEvents(r.Events()))
	}
}

func TestReconstructRename(t *testing.T) {
	fs, r := setup(t)
	if err := fs.Rename("/mnt/box/name3/4.img", "/mnt/box/name3/renamed.img"); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, e := range r.Events() {
		if e.Type == EvRename && e.OldPath == "/mnt/box/name3/4.img" && e.Path == "/mnt/box/name3/renamed.img" {
			found = true
		}
	}
	if !found {
		t.Errorf("no rename event; got:\n%s", renderEvents(r.Events()))
	}
	// No spurious delete for the renamed file.
	if eventsContain(r.Events(), EvDelete, "4.img") {
		t.Error("rename misdetected as delete")
	}
}

func TestReconstructRenameAcrossDirs(t *testing.T) {
	fs, r := setup(t)
	if err := fs.Rename("/mnt/box/name4/5.img", "/mnt/box/name5/moved.img"); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, e := range r.Events() {
		if e.Type == EvRename && e.Path == "/mnt/box/name5/moved.img" {
			found = true
		}
	}
	if !found {
		t.Errorf("cross-dir rename missed; got:\n%s", renderEvents(r.Events()))
	}
}

func TestReconstructDirRenameRepathsChildren(t *testing.T) {
	fs, r := setup(t)
	if err := fs.Rename("/mnt/box/name6", "/mnt/box/renamed-dir"); err != nil {
		t.Fatal(err)
	}
	// Reading a child must resolve under the new directory path.
	if _, err := fs.ReadFile("/mnt/box/renamed-dir/1.img"); err != nil {
		t.Fatal(err)
	}
	if !eventsContain(r.Events(), EvRead, "/mnt/box/renamed-dir/1.img") {
		t.Errorf("child path not updated after dir rename; got:\n%s", renderEvents(r.Events()))
	}
}

func TestReconstructMkdir(t *testing.T) {
	fs, r := setup(t)
	if err := fs.Mkdir("/mnt/box/newdir"); err != nil {
		t.Fatal(err)
	}
	if !eventsContain(r.Events(), EvCreate, "/mnt/box/newdir") {
		t.Errorf("no create event for directory; got:\n%s", renderEvents(r.Events()))
	}
}

func TestPathOfLookup(t *testing.T) {
	fs, r := setup(t)
	_ = fs
	// Use the view to find a known block of a known file.
	var blk uint64
	for _, f := range r.view.Files {
		if f.Path == "/mnt/box/name0/1.img" && len(f.Blocks) > 0 {
			blk = f.Blocks[0]
		}
	}
	if blk == 0 {
		t.Fatal("test setup: file block not found in view")
	}
	p, ok := r.PathOf(blk)
	if !ok || p != "/mnt/box/name0/1.img" {
		t.Errorf("PathOf(%d) = %q, %v", blk, p, ok)
	}
	if _, ok := r.PathOf(1 << 40); ok {
		t.Error("PathOf(unknown) should miss")
	}
}

func TestEventCallbackOrdering(t *testing.T) {
	fs, r := setup(t)
	var seen []Event
	r.OnEvent(func(e Event) { seen = append(seen, e) })
	if err := fs.WriteFile("/mnt/box/name7/cb.img", bytes.Repeat([]byte{1}, 4096)); err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("callback never fired")
	}
	if len(seen) != len(r.Events())-0 && len(seen) > len(r.Events()) {
		t.Errorf("callback count %d vs retained %d", len(seen), len(r.Events()))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i].Seq < seen[i-1].Seq {
			t.Error("events out of order")
		}
	}
}

func TestEventStringFormats(t *testing.T) {
	e := Event{Seq: 72, Type: EvWrite, Path: "/mnt/box/name9/7.img", Size: 16384}
	if got := e.String(); !strings.Contains(got, "write") || !strings.Contains(got, "16384") {
		t.Errorf("String() = %q", got)
	}
	ren := Event{Seq: 1, Type: EvRename, OldPath: "/a", Path: "/b"}
	if got := ren.String(); !strings.Contains(got, "/a -> /b") {
		t.Errorf("rename String() = %q", got)
	}
	bare := Event{Seq: 2, Type: EvCreate, Path: "/c"}
	if got := bare.String(); !strings.Contains(got, "create /c") {
		t.Errorf("create String() = %q", got)
	}
}

func TestSyntheticTableIScenario(t *testing.T) {
	// Table II's two operations: write name1/1.img, read name9/7.img —
	// reconstructed into the Table I style log.
	fs, r := setup(t)
	if err := fs.WriteAt("/mnt/box/name1/1.img", bytes.Repeat([]byte{7}, 4096), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/mnt/box/name9/7.img"); err != nil {
		t.Fatal(err)
	}
	evs := r.Events()
	if !eventsContain(evs, EvWrite, "/mnt/box/name1/1.img") {
		t.Errorf("missing write reconstruction:\n%s", renderEvents(evs))
	}
	if !eventsContain(evs, EvRead, "/mnt/box/name9/7.img") {
		t.Errorf("missing read reconstruction:\n%s", renderEvents(evs))
	}
	// The low-level trace contains directory and inode metadata accesses
	// interleaved, like Table I.
	if !eventsContain(evs, EvRead, "/.") && !eventsContain(evs, EvMetaRead, "inode_group_") {
		t.Errorf("no metadata context events:\n%s", renderEvents(evs))
	}
}

func renderEvents(evs []Event) string {
	var b strings.Builder
	for _, e := range evs {
		fmt.Fprintln(&b, e.String())
	}
	return b.String()
}

func TestBlockReuseTransfersAttribution(t *testing.T) {
	fs, r := setup(t)
	// Delete a file and create a new one; the freed blocks are typically
	// reused. Accesses must attribute to the NEW file, never the old one.
	if err := fs.Remove("/mnt/box/name0/1.img"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/mnt/box/name5/fresh.img", bytes.Repeat([]byte{9}, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/mnt/box/name5/fresh.img"); err != nil {
		t.Fatal(err)
	}
	evs := r.Events()
	for _, e := range evs {
		if (e.Type == EvRead || e.Type == EvWrite) && strings.Contains(e.Path, "name0/1.img") {
			// Accesses after the delete must not resolve to the dead file.
			if e.Seq > evs[0].Seq {
				var deleted bool
				for _, d := range evs {
					if d.Type == EvDelete && strings.Contains(d.Path, "name0/1.img") && d.Seq < e.Seq {
						deleted = true
					}
				}
				if deleted {
					t.Errorf("stale attribution after reuse: %s", e.String())
				}
			}
		}
	}
	if !eventsContain(evs, EvRead, "fresh.img") {
		t.Errorf("new file's reads not attributed:\n%s", renderEvents(evs))
	}
}
