package iscsi

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPDUWireRoundTrip(t *testing.T) {
	cmd := &SCSICommand{
		Final:                      true,
		Write:                      true,
		LUN:                        3,
		ITT:                        42,
		ExpectedDataTransferLength: 4096,
		CmdSN:                      7,
		ExpStatSN:                  9,
		Data:                       bytes.Repeat([]byte{0xAB}, 101), // non-multiple of 4 to exercise padding
	}
	var buf bytes.Buffer
	p := cmd.Encode()
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if buf.Len() != BHSLen+104 {
		t.Errorf("wire length = %d, want %d (padded)", buf.Len(), BHSLen+104)
	}
	got, err := ReadPDU(&buf)
	if err != nil {
		t.Fatalf("ReadPDU: %v", err)
	}
	if got.Op() != OpSCSICommand {
		t.Errorf("Op() = %v, want SCSI-Command", got.Op())
	}
	parsed, err := ParseSCSICommand(got)
	if err != nil {
		t.Fatalf("ParseSCSICommand: %v", err)
	}
	if !bytes.Equal(parsed.Data, cmd.Data) {
		t.Error("data segment corrupted through round trip")
	}
	if parsed.ITT != 42 || parsed.LUN != 3 || parsed.CmdSN != 7 {
		t.Errorf("fields lost: %+v", parsed)
	}
}

func TestReadPDUStream(t *testing.T) {
	// Several PDUs back to back must parse cleanly from a stream.
	var buf bytes.Buffer
	pdus := []*PDU{
		(&NopOut{ITT: 1, CmdSN: 1}).Encode(),
		(&SCSICommand{ITT: 2, Read: true, Final: true}).Encode(),
		(&DataIn{ITT: 2, Final: true, Data: []byte("payload!")}).Encode(),
	}
	for _, p := range pdus {
		if _, err := p.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
	}
	for i, want := range pdus {
		got, err := ReadPDU(&buf)
		if err != nil {
			t.Fatalf("ReadPDU #%d: %v", i, err)
		}
		if got.Op() != want.Op() {
			t.Errorf("PDU #%d op = %v, want %v", i, got.Op(), want.Op())
		}
	}
	if _, err := ReadPDU(&buf); err != io.EOF {
		t.Errorf("ReadPDU on empty stream: err = %v, want EOF", err)
	}
}

func TestReadPDUTruncated(t *testing.T) {
	full := (&DataIn{ITT: 9, Data: []byte("0123456789")}).Encode().Bytes()
	for _, cut := range []int{1, BHSLen - 1, BHSLen + 1, len(full) - 1} {
		if _, err := ReadPDU(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("ReadPDU(truncated at %d): want error", cut)
		}
	}
}

func TestReadPDURejectsAHS(t *testing.T) {
	p := (&NopOut{ITT: 1}).Encode()
	raw := p.Bytes()
	raw[4] = 2 // TotalAHSLength
	if _, err := ReadPDU(bytes.NewReader(raw)); err == nil {
		t.Error("ReadPDU with AHS: want error")
	}
}

func TestDecodePDU(t *testing.T) {
	p := (&DataOut{ITT: 5, Data: []byte("abc")}).Encode()
	raw := p.Bytes()
	got, n, err := DecodePDU(raw)
	if err != nil {
		t.Fatalf("DecodePDU: %v", err)
	}
	if n != len(raw) {
		t.Errorf("consumed %d bytes, want %d", n, len(raw))
	}
	if got.Op() != OpSCSIDataOut || !bytes.Equal(got.Data, []byte("abc")) {
		t.Errorf("DecodePDU mismatch: op=%v data=%q", got.Op(), got.Data)
	}
	if _, _, err := DecodePDU(raw[:10]); err != io.ErrUnexpectedEOF {
		t.Errorf("DecodePDU(short) err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestDecodePDUCopiesData(t *testing.T) {
	raw := (&DataOut{ITT: 5, Data: []byte("abc")}).Encode().Bytes()
	got, _, err := DecodePDU(raw)
	if err != nil {
		t.Fatalf("DecodePDU: %v", err)
	}
	raw[BHSLen] = 'X'
	if got.Data[0] == 'X' {
		t.Error("DecodePDU aliases the input buffer")
	}
}

func TestImmediateBit(t *testing.T) {
	var p PDU
	p.SetOp(OpSCSICommand)
	p.SetImmediate(true)
	if !p.Immediate() || p.Op() != OpSCSICommand {
		t.Error("immediate bit handling broken")
	}
	p.SetImmediate(false)
	if p.Immediate() {
		t.Error("SetImmediate(false) did not clear the bit")
	}
	p.SetImmediate(true)
	p.SetOp(OpNopOut)
	if !p.Immediate() {
		t.Error("SetOp cleared the immediate bit")
	}
}

func TestLUNRoundTrip(t *testing.T) {
	f := func(l uint16) bool {
		l &= 0x3FFF
		return ParseLUN(LUN(l)) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpcodeStrings(t *testing.T) {
	for _, op := range []Opcode{
		OpNopOut, OpSCSICommand, OpTaskMgmtReq, OpLoginReq, OpTextReq,
		OpSCSIDataOut, OpLogoutReq, OpNopIn, OpSCSIResponse, OpTaskMgmtResp,
		OpLoginResp, OpTextResp, OpSCSIDataIn, OpLogoutResp, OpR2T, OpReject,
	} {
		if s := op.String(); s == "" || s[0] == 'O' && s != "Opcode(0x11)" {
			continue
		}
	}
	if got := Opcode(0x11).String(); got != "Opcode(0x11)" {
		t.Errorf("unknown opcode String() = %q", got)
	}
	if OpNopOut.FromTarget() || !OpSCSIResponse.FromTarget() {
		t.Error("FromTarget classification wrong")
	}
}

func TestSCSIResponseRoundTrip(t *testing.T) {
	give := &SCSIResponse{
		ITT:           11,
		Response:      RespCompleted,
		Status:        0x02,
		StatSN:        100,
		ExpCmdSN:      101,
		MaxCmdSN:      164,
		ResidualCount: 512,
		Underflow:     true,
		Sense:         []byte{0x70, 0, 5, 0, 0, 0, 0, 10, 0, 0, 0, 0, 0x24, 0},
	}
	got, err := ParseSCSIResponse(roundTrip(t, give.Encode()))
	if err != nil {
		t.Fatalf("ParseSCSIResponse: %v", err)
	}
	if !reflect.DeepEqual(got, give) {
		t.Errorf("round trip:\n got  %+v\n want %+v", got, give)
	}
}

func TestSCSIResponseBadSenseLength(t *testing.T) {
	p := (&SCSIResponse{ITT: 1}).Encode()
	p.setDataSegment([]byte{0xFF, 0xFF, 0x00}) // claims 65535 sense bytes
	if _, err := ParseSCSIResponse(p); err == nil {
		t.Error("want error for sense length exceeding data segment")
	}
}

func TestDataInRoundTrip(t *testing.T) {
	give := &DataIn{
		Final:         true,
		StatusPresent: true,
		Status:        0,
		LUN:           2,
		ITT:           77,
		TTT:           0xFFFFFFFF,
		StatSN:        5,
		ExpCmdSN:      6,
		MaxCmdSN:      70,
		DataSN:        3,
		BufferOffset:  8192,
		Data:          []byte("block data"),
	}
	got, err := ParseDataIn(roundTrip(t, give.Encode()))
	if err != nil {
		t.Fatalf("ParseDataIn: %v", err)
	}
	if !reflect.DeepEqual(got, give) {
		t.Errorf("round trip:\n got  %+v\n want %+v", got, give)
	}
}

func TestDataOutRoundTrip(t *testing.T) {
	give := &DataOut{
		Final:        true,
		LUN:          1,
		ITT:          10,
		TTT:          20,
		ExpStatSN:    30,
		DataSN:       2,
		BufferOffset: 65536,
		Data:         bytes.Repeat([]byte{7}, 4096),
	}
	got, err := ParseDataOut(roundTrip(t, give.Encode()))
	if err != nil {
		t.Fatalf("ParseDataOut: %v", err)
	}
	if !reflect.DeepEqual(got, give) {
		t.Error("DataOut round trip mismatch")
	}
}

func TestR2TRoundTrip(t *testing.T) {
	give := &R2T{
		LUN:           4,
		ITT:           9,
		TTT:           13,
		StatSN:        1,
		ExpCmdSN:      2,
		MaxCmdSN:      66,
		R2TSN:         0,
		BufferOffset:  128 * 1024,
		DesiredLength: 64 * 1024,
	}
	got, err := ParseR2T(roundTrip(t, give.Encode()))
	if err != nil {
		t.Fatalf("ParseR2T: %v", err)
	}
	if *got != *give {
		t.Errorf("round trip: got %+v, want %+v", got, give)
	}
}

func TestNopRoundTrips(t *testing.T) {
	out := &NopOut{ITT: 1, TTT: 0xFFFFFFFF, CmdSN: 2, ExpStatSN: 3, Data: []byte("ping")}
	gotOut, err := ParseNopOut(roundTrip(t, out.Encode()))
	if err != nil {
		t.Fatalf("ParseNopOut: %v", err)
	}
	if !reflect.DeepEqual(gotOut, out) {
		t.Errorf("NopOut round trip: got %+v, want %+v", gotOut, out)
	}
	in := &NopIn{ITT: 1, TTT: 5, StatSN: 2, ExpCmdSN: 3, MaxCmdSN: 60, Data: []byte("pong")}
	gotIn, err := ParseNopIn(roundTrip(t, in.Encode()))
	if err != nil {
		t.Fatalf("ParseNopIn: %v", err)
	}
	if !reflect.DeepEqual(gotIn, in) {
		t.Errorf("NopIn round trip: got %+v, want %+v", gotIn, in)
	}
}

func TestLogoutRoundTrips(t *testing.T) {
	req := &LogoutRequest{Reason: 1, ITT: 2, CID: 3, CmdSN: 4, ExpStatSN: 5}
	gotReq, err := ParseLogoutRequest(roundTrip(t, req.Encode()))
	if err != nil {
		t.Fatalf("ParseLogoutRequest: %v", err)
	}
	if *gotReq != *req {
		t.Errorf("LogoutRequest round trip: got %+v, want %+v", gotReq, req)
	}
	resp := &LogoutResponse{Response: 0, ITT: 2, StatSN: 6, ExpCmdSN: 5, MaxCmdSN: 69}
	gotResp, err := ParseLogoutResponse(roundTrip(t, resp.Encode()))
	if err != nil {
		t.Fatalf("ParseLogoutResponse: %v", err)
	}
	if *gotResp != *resp {
		t.Errorf("LogoutResponse round trip: got %+v, want %+v", gotResp, resp)
	}
}

func TestRejectRoundTrip(t *testing.T) {
	hdr := make([]byte, BHSLen)
	hdr[0] = byte(OpSCSICommand)
	give := &Reject{Reason: RejectInvalidPDUField, StatSN: 8, Header: hdr}
	got, err := ParseReject(roundTrip(t, give.Encode()))
	if err != nil {
		t.Fatalf("ParseReject: %v", err)
	}
	if got.Reason != give.Reason || !bytes.Equal(got.Header, give.Header) {
		t.Error("Reject round trip mismatch")
	}
}

func TestParseWrongOpcode(t *testing.T) {
	nop := (&NopOut{}).Encode()
	if _, err := ParseSCSICommand(nop); err == nil {
		t.Error("ParseSCSICommand(NopOut): want error")
	}
	if _, err := ParseDataIn(nop); err == nil {
		t.Error("ParseDataIn(NopOut): want error")
	}
	if _, err := ParseR2T(nop); err == nil {
		t.Error("ParseR2T(NopOut): want error")
	}
	if _, err := ParseLoginRequest(nop); err == nil {
		t.Error("ParseLoginRequest(NopOut): want error")
	}
}

func TestPDUDataSegmentProperty(t *testing.T) {
	// Property: any payload survives encode/decode through a stream.
	f := func(data []byte, itt uint32) bool {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		d := &DataIn{ITT: itt, Data: data}
		var buf bytes.Buffer
		if _, err := d.Encode().WriteTo(&buf); err != nil {
			return false
		}
		p, err := ReadPDU(&buf)
		if err != nil {
			return false
		}
		got, err := ParseDataIn(p)
		if err != nil {
			return false
		}
		return got.ITT == itt && bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func roundTrip(t *testing.T, p *PDU) *PDU {
	t.Helper()
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadPDU(&buf)
	if err != nil {
		t.Fatalf("ReadPDU: %v", err)
	}
	return got
}
