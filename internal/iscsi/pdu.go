// Package iscsi implements the subset of the iSCSI protocol (RFC 7143) that
// carries block storage traffic between the StorM initiator, middle-boxes,
// and target: login/logout negotiation, SCSI command/response, Data-In,
// Data-Out, R2T flow control, and NOP keepalives.
//
// PDUs use the standard 48-byte basic header segment (BHS) followed by an
// optional data segment padded to a four-byte boundary. Header and data
// digests are not negotiated (DataDigest=None,HeaderDigest=None), matching
// the paper's prototype configuration. Middle-boxes rely on this package to
// decapsulate and re-encapsulate storage packets exactly as the prototype
// reuses Open-iSCSI's parsing logic.
package iscsi

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/bufpool"
)

// BHSLen is the length of the basic header segment.
const BHSLen = 48

// Opcode identifies the PDU type. Initiator opcodes are 0x00-0x1F, target
// opcodes 0x20-0x3F.
type Opcode byte

// Initiator opcodes.
const (
	OpNopOut       Opcode = 0x00
	OpSCSICommand  Opcode = 0x01
	OpTaskMgmtReq  Opcode = 0x02
	OpLoginReq     Opcode = 0x03
	OpTextReq      Opcode = 0x04
	OpSCSIDataOut  Opcode = 0x05
	OpLogoutReq    Opcode = 0x06
	OpSNACKRequest Opcode = 0x10
)

// Target opcodes.
const (
	OpNopIn        Opcode = 0x20
	OpSCSIResponse Opcode = 0x21
	OpTaskMgmtResp Opcode = 0x22
	OpLoginResp    Opcode = 0x23
	OpTextResp     Opcode = 0x24
	OpSCSIDataIn   Opcode = 0x25
	OpLogoutResp   Opcode = 0x26
	OpR2T          Opcode = 0x31
	OpReject       Opcode = 0x3F
)

// String renders the opcode name.
func (o Opcode) String() string {
	switch o {
	case OpNopOut:
		return "NOP-Out"
	case OpSCSICommand:
		return "SCSI-Command"
	case OpTaskMgmtReq:
		return "TaskMgmt-Req"
	case OpLoginReq:
		return "Login-Req"
	case OpTextReq:
		return "Text-Req"
	case OpSCSIDataOut:
		return "Data-Out"
	case OpLogoutReq:
		return "Logout-Req"
	case OpNopIn:
		return "NOP-In"
	case OpSCSIResponse:
		return "SCSI-Response"
	case OpTaskMgmtResp:
		return "TaskMgmt-Resp"
	case OpLoginResp:
		return "Login-Resp"
	case OpTextResp:
		return "Text-Resp"
	case OpSCSIDataIn:
		return "Data-In"
	case OpLogoutResp:
		return "Logout-Resp"
	case OpR2T:
		return "R2T"
	case OpReject:
		return "Reject"
	default:
		return fmt.Sprintf("Opcode(0x%02x)", byte(o))
	}
}

// FromTarget reports whether the opcode originates at the target side.
func (o Opcode) FromTarget() bool { return o >= 0x20 }

// MaxDataSegment is the largest data segment this implementation accepts,
// guarding against corrupt length fields (the 24-bit wire maximum).
const MaxDataSegment = 1<<24 - 1

// PDU is a raw protocol data unit: the fixed basic header segment plus the
// (possibly empty) data segment. Typed views (SCSICommand, DataIn, ...) parse
// and build PDUs; forwarding paths can relay PDUs without interpretation.
type PDU struct {
	BHS  [BHSLen]byte
	Data []byte

	// dataBuf is the pooled backing store for Data when the PDU was read
	// with ReadPDU. Release returns it to the pool; PDUs whose data was
	// never pooled (typed Encode views, DecodePDU) release as a no-op.
	dataBuf *bufpool.Buf
}

// Release returns the PDU's pooled data segment, if any, to the buffer pool.
// After Release, Data must no longer be referenced. Calling Release on a PDU
// without pooled data (or twice, after the first call cleared it) is a no-op,
// so read loops can release unconditionally once a PDU is fully consumed.
func (p *PDU) Release() {
	if p.dataBuf != nil {
		p.dataBuf.Release()
		p.dataBuf = nil
		p.Data = nil
	}
}

// TakeData transfers ownership of the PDU's pooled data segment to the
// caller: the returned buffer backs the returned slice and the caller becomes
// responsible for releasing it. The PDU is left without data, so a subsequent
// Release is a no-op. PDUs whose data was never pooled (typed Encode views,
// DecodePDU) return (nil, nil) and the caller must copy instead.
func (p *PDU) TakeData() ([]byte, *bufpool.Buf) {
	if p.dataBuf == nil {
		return nil, nil
	}
	data, buf := p.Data, p.dataBuf
	p.Data = nil
	p.dataBuf = nil
	return data, buf
}

// EncodeInto lets a raw PDU flow through encoder-driven send paths alongside
// the typed message views: the PDU is already wire-form, so it encodes as
// itself and the caller's scratch PDU is untouched.
func (p *PDU) EncodeInto(*PDU) *PDU { return p }

// SNAfter reports whether serial number a is after b in RFC 1982 serial
// arithmetic, which iSCSI mandates for StatSN/CmdSN/DataSN: the uint32
// counters wrap, so a plain a > b inverts at 2³².
func SNAfter(a, b uint32) bool { return int32(a-b) > 0 }

// Op returns the PDU opcode (with the immediate-delivery bit masked off).
func (p *PDU) Op() Opcode { return Opcode(p.BHS[0] & 0x3F) }

// Immediate reports whether the immediate-delivery bit is set.
func (p *PDU) Immediate() bool { return p.BHS[0]&0x40 != 0 }

// SetOp stores the opcode, preserving the immediate bit.
func (p *PDU) SetOp(op Opcode) { p.BHS[0] = p.BHS[0]&0x40 | byte(op) }

// SetImmediate sets or clears the immediate-delivery bit.
func (p *PDU) SetImmediate(v bool) {
	if v {
		p.BHS[0] |= 0x40
	} else {
		p.BHS[0] &^= 0x40
	}
}

// Final reports the F bit (bit 7 of byte 1).
func (p *PDU) Final() bool { return p.BHS[1]&0x80 != 0 }

// ITT returns the initiator task tag.
func (p *PDU) ITT() uint32 { return binary.BigEndian.Uint32(p.BHS[16:20]) }

// SetITT stores the initiator task tag.
func (p *PDU) SetITT(v uint32) { binary.BigEndian.PutUint32(p.BHS[16:20], v) }

// DataSegmentLength returns the 24-bit data segment length from the BHS.
func (p *PDU) DataSegmentLength() int {
	return int(p.BHS[5])<<16 | int(p.BHS[6])<<8 | int(p.BHS[7])
}

// setDataSegment stores data in the PDU and updates the BHS length field.
func (p *PDU) setDataSegment(data []byte) {
	p.Data = data
	n := len(data)
	p.BHS[5] = byte(n >> 16)
	p.BHS[6] = byte(n >> 8)
	p.BHS[7] = byte(n)
}

// WireLen returns the total encoded length including data padding.
func (p *PDU) WireLen() int { return BHSLen + pad4(len(p.Data)) }

// BuffersWriter is the vectored-send interface the netsim fabric implements:
// the header and payload segments go out as one send without an intermediate
// assembly copy (the writer copies each segment directly into its frames).
type BuffersWriter interface {
	WriteBuffers(bufs ...[]byte) (int, error)
}

// padZeros backs the ≤3 bytes of data-segment padding on the vectored path.
var padZeros [4]byte

// WriteTo serializes the PDU as a single send: header and payload combine
// either through the writer's vectored interface (no assembly copy) or into
// one pooled wire buffer. It implements io.WriterTo.
func (p *PDU) WriteTo(w io.Writer) (int64, error) {
	if len(p.Data) > MaxDataSegment {
		return 0, fmt.Errorf("iscsi: data segment %d exceeds protocol maximum", len(p.Data))
	}
	if bw, ok := w.(BuffersWriter); ok {
		pad := pad4(len(p.Data)) - len(p.Data)
		n, err := bw.WriteBuffers(p.BHS[:], p.Data, padZeros[:pad])
		return int64(n), err
	}
	wire := bufpool.Get(p.WireLen())
	buf := wire.B
	copy(buf, p.BHS[:])
	copy(buf[BHSLen:], p.Data)
	// Zero the padding: pooled buffers carry stale bytes.
	for i := BHSLen + len(p.Data); i < len(buf); i++ {
		buf[i] = 0
	}
	n, err := w.Write(buf)
	wire.Release()
	return int64(n), err
}

// WritePDUs serializes a batch of PDUs as one send — a whole solicited burst
// or multi-segment Data-In sequence goes out in a single vectored write (or
// one pooled contiguous write when the writer has no vectored interface),
// instead of paying a wire rendezvous per PDU.
func WritePDUs(w io.Writer, pdus []PDU) (int64, error) {
	if len(pdus) == 1 {
		return pdus[0].WriteTo(w)
	}
	total := 0
	for i := range pdus {
		if len(pdus[i].Data) > MaxDataSegment {
			return 0, fmt.Errorf("iscsi: data segment %d exceeds protocol maximum", len(pdus[i].Data))
		}
		total += pdus[i].WireLen()
	}
	if bw, ok := w.(BuffersWriter); ok {
		vecs := make([][]byte, 0, 3*len(pdus))
		for i := range pdus {
			p := &pdus[i]
			pad := pad4(len(p.Data)) - len(p.Data)
			vecs = append(vecs, p.BHS[:], p.Data, padZeros[:pad])
		}
		n, err := bw.WriteBuffers(vecs...)
		return int64(n), err
	}
	wire := bufpool.Get(total)
	buf := wire.B[:0]
	for i := range pdus {
		p := &pdus[i]
		pad := pad4(len(p.Data)) - len(p.Data)
		buf = append(buf, p.BHS[:]...)
		buf = append(buf, p.Data...)
		buf = append(buf, padZeros[:pad]...)
	}
	n, err := w.Write(buf)
	wire.Release()
	return int64(n), err
}

// Bytes returns the full wire encoding of the PDU.
func (p *PDU) Bytes() []byte {
	buf := make([]byte, p.WireLen())
	copy(buf, p.BHS[:])
	copy(buf[BHSLen:], p.Data)
	return buf
}

// ReadPDU reads one PDU from the stream. The data segment is staged in a
// pooled buffer: callers on the hot path should call Release once the PDU is
// fully consumed; callers that skip Release only cost the pool a miss.
func ReadPDU(r io.Reader) (*PDU, error) {
	var p PDU
	if _, err := io.ReadFull(r, p.BHS[:]); err != nil {
		return nil, err
	}
	if ahs := p.BHS[4]; ahs != 0 {
		return nil, fmt.Errorf("iscsi: additional header segments unsupported (TotalAHSLength=%d)", ahs)
	}
	n := p.DataSegmentLength()
	if n > MaxDataSegment {
		return nil, fmt.Errorf("iscsi: data segment length %d exceeds protocol maximum", n)
	}
	if n > 0 {
		buf := bufpool.Get(pad4(n))
		if _, err := io.ReadFull(r, buf.B); err != nil {
			buf.Release()
			return nil, fmt.Errorf("iscsi: read data segment: %w", err)
		}
		p.Data = buf.B[:n]
		p.dataBuf = buf
	}
	return &p, nil
}

// DecodePDU parses a PDU from a contiguous buffer, returning the PDU and the
// number of bytes consumed.
func DecodePDU(b []byte) (*PDU, int, error) {
	if len(b) < BHSLen {
		return nil, 0, io.ErrUnexpectedEOF
	}
	var p PDU
	copy(p.BHS[:], b[:BHSLen])
	n := p.DataSegmentLength()
	total := BHSLen + pad4(n)
	if len(b) < total {
		return nil, 0, io.ErrUnexpectedEOF
	}
	if n > 0 {
		p.Data = append([]byte(nil), b[BHSLen:BHSLen+n]...)
	}
	return &p, total, nil
}

func pad4(n int) int { return (n + 3) &^ 3 }

// LUN packs a logical unit number into the 8-byte BHS representation using
// the flat addressing method for LUNs below 16384.
func LUN(lun uint16) [8]byte {
	var b [8]byte
	binary.BigEndian.PutUint16(b[0:2], lun&0x3FFF)
	return b
}

// ParseLUN extracts a flat-addressed LUN from its 8-byte representation.
func ParseLUN(b [8]byte) uint16 {
	return binary.BigEndian.Uint16(b[0:2]) & 0x3FFF
}
