package iscsi

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestLoginRequestRoundTrip(t *testing.T) {
	give := &LoginRequest{
		Transit:   true,
		CSG:       StageOperational,
		NSG:       StageFullFeature,
		ISID:      [6]byte{0x80, 1, 2, 3, 4, 5},
		TSIH:      0,
		ITT:       1,
		CID:       0,
		CmdSN:     1,
		ExpStatSN: 0,
		Pairs: map[string]string{
			KeyInitiatorName: "iqn.2016-04.edu.purdue.storm:vm1",
			KeyTargetName:    "iqn.2016-04.edu.purdue.storm:vol1",
			KeySourcePort:    "40123",
			KeySessionType:   "Normal",
		},
	}
	got, err := ParseLoginRequest(roundTrip(t, give.Encode()))
	if err != nil {
		t.Fatalf("ParseLoginRequest: %v", err)
	}
	if !reflect.DeepEqual(got, give) {
		t.Errorf("round trip:\n got  %+v\n want %+v", got, give)
	}
}

func TestLoginResponseRoundTrip(t *testing.T) {
	give := &LoginResponse{
		Transit:     true,
		CSG:         StageOperational,
		NSG:         StageFullFeature,
		ISID:        [6]byte{0x80, 0, 0, 0, 0, 1},
		TSIH:        77,
		ITT:         1,
		StatSN:      1,
		ExpCmdSN:    2,
		MaxCmdSN:    65,
		StatusClass: LoginStatusSuccess,
		Pairs:       DefaultParams().Pairs(),
	}
	got, err := ParseLoginResponse(roundTrip(t, give.Encode()))
	if err != nil {
		t.Fatalf("ParseLoginResponse: %v", err)
	}
	if !reflect.DeepEqual(got, give) {
		t.Errorf("round trip:\n got  %+v\n want %+v", got, give)
	}
}

func TestLoginResponseEmptyPairs(t *testing.T) {
	give := &LoginResponse{StatusClass: LoginStatusInitiatorErr}
	got, err := ParseLoginResponse(roundTrip(t, give.Encode()))
	if err != nil {
		t.Fatalf("ParseLoginResponse: %v", err)
	}
	if len(got.Pairs) != 0 {
		t.Errorf("Pairs = %v, want empty", got.Pairs)
	}
}

func TestEncodePairsDeterministic(t *testing.T) {
	p := map[string]string{"b": "2", "a": "1", "c": "3"}
	first := string(EncodePairs(p))
	for i := 0; i < 10; i++ {
		if got := string(EncodePairs(p)); got != first {
			t.Fatal("EncodePairs is not deterministic")
		}
	}
	if first != "a=1\x00b=2\x00c=3\x00" {
		t.Errorf("EncodePairs = %q, want sorted NUL-separated form", first)
	}
}

func TestDecodePairsMalformed(t *testing.T) {
	if _, err := DecodePairs([]byte("novalue\x00")); err == nil {
		t.Error("DecodePairs without '=': want error")
	}
}

func TestDecodePairsTrailingGarbage(t *testing.T) {
	// A final pair without NUL terminator must still parse.
	got, err := DecodePairs([]byte("a=1\x00b=2"))
	if err != nil {
		t.Fatalf("DecodePairs: %v", err)
	}
	want := map[string]string{"a": "1", "b": "2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DecodePairs = %v, want %v", got, want)
	}
}

func TestPairsRoundTripProperty(t *testing.T) {
	f := func(keys, values []string) bool {
		pairs := make(map[string]string)
		for i, k := range keys {
			if k == "" || containsAny(k, "=\x00") {
				continue
			}
			v := ""
			if i < len(values) {
				v = values[i]
			}
			if containsAny(v, "\x00") {
				continue
			}
			pairs[k] = v
		}
		got, err := DecodePairs(EncodePairs(pairs))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, pairs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func containsAny(s, chars string) bool {
	for _, c := range chars {
		for _, r := range s {
			if r == c {
				return true
			}
		}
	}
	return false
}

func TestParamsNegotiate(t *testing.T) {
	local := DefaultParams()
	offered := map[string]string{
		KeyMaxRecvDSL:    "8192",
		KeyFirstBurst:    "16384",
		KeyMaxBurst:      "32768",
		KeyImmediateData: "No",
		KeyInitialR2T:    "Yes",
	}
	got, err := local.Negotiate(offered)
	if err != nil {
		t.Fatalf("Negotiate: %v", err)
	}
	if got.MaxRecvDataSegmentLength != 8192 {
		t.Errorf("MaxRecvDSL = %d, want 8192", got.MaxRecvDataSegmentLength)
	}
	if got.FirstBurstLength != 16384 || got.MaxBurstLength != 32768 {
		t.Errorf("bursts = %d/%d, want 16384/32768", got.FirstBurstLength, got.MaxBurstLength)
	}
	if got.ImmediateData {
		t.Error("ImmediateData should AND to false")
	}
	if !got.InitialR2T {
		t.Error("InitialR2T should OR to true")
	}
}

func TestParamsNegotiateClampsFirstBurst(t *testing.T) {
	local := Params{
		MaxRecvDataSegmentLength: 1 << 20,
		FirstBurstLength:         1 << 20,
		MaxBurstLength:           1 << 20,
	}
	got, err := local.Negotiate(map[string]string{KeyMaxBurst: "4096"})
	if err != nil {
		t.Fatalf("Negotiate: %v", err)
	}
	if got.FirstBurstLength > got.MaxBurstLength {
		t.Errorf("FirstBurstLength %d > MaxBurstLength %d", got.FirstBurstLength, got.MaxBurstLength)
	}
}

func TestParamsNegotiateRejectsGarbage(t *testing.T) {
	local := DefaultParams()
	for _, bad := range []map[string]string{
		{KeyMaxRecvDSL: "zero"},
		{KeyMaxRecvDSL: "-5"},
		{KeyFirstBurst: ""},
		{KeyMaxBurst: "0"},
	} {
		if _, err := local.Negotiate(bad); err == nil {
			t.Errorf("Negotiate(%v): want error", bad)
		}
	}
}

func TestParamsNegotiateEmptyOfferKeepsLocal(t *testing.T) {
	local := DefaultParams()
	got, err := local.Negotiate(nil)
	if err != nil {
		t.Fatalf("Negotiate: %v", err)
	}
	if got != local {
		t.Errorf("Negotiate(nil) = %+v, want unchanged %+v", got, local)
	}
}

func TestDefaultParamsPairs(t *testing.T) {
	pairs := DefaultParams().Pairs()
	if pairs[KeyImmediateData] != "Yes" || pairs[KeyInitialR2T] != "No" {
		t.Errorf("default pairs wrong: %v", pairs)
	}
	if pairs[KeyHeaderDigest] != "None" || pairs[KeyDataDigest] != "None" {
		t.Error("digests must be None")
	}
}
