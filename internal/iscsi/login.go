package iscsi

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Login stages (CSG/NSG values).
const (
	StageSecurity    byte = 0
	StageOperational byte = 1
	StageFullFeature byte = 3
)

// Login status classes.
const (
	LoginStatusSuccess      byte = 0x00
	LoginStatusRedirect     byte = 0x01
	LoginStatusInitiatorErr byte = 0x02
	LoginStatusTargetErr    byte = 0x03
)

// Login status details (RFC 7143 subset) carried with a refusal so the
// initiator can distinguish "retry later" from "don't retry here". The
// target maps its typed error taxonomy onto these: a terminal refusal (for
// example a draining relay) advertises TargetRemoved under InitiatorErr,
// while overload advertises OutOfResources under TargetErr.
const (
	LoginDetailNone               byte = 0x00
	LoginDetailTargetRemoved      byte = 0x04 // class InitiatorErr: gone for good, do not redial
	LoginDetailServiceUnavailable byte = 0x01 // class TargetErr: transient, retry later
	LoginDetailOutOfResources     byte = 0x02 // class TargetErr: overloaded, retry after backoff
)

// LoginRequest is the typed view of a Login Request PDU (opcode 0x03).
type LoginRequest struct {
	Transit   bool
	Continue  bool
	CSG, NSG  byte
	ISID      [6]byte
	TSIH      uint16
	ITT       uint32
	CID       uint16
	CmdSN     uint32
	ExpStatSN uint32
	// Pairs carries the key=value negotiation text.
	Pairs map[string]string
}

// Encode builds the wire PDU.
func (l *LoginRequest) Encode() *PDU {
	p := &PDU{}
	p.SetOp(OpLoginReq)
	p.SetImmediate(true)
	var flags byte
	if l.Transit {
		flags |= 0x80
	}
	if l.Continue {
		flags |= 0x40
	}
	flags |= (l.CSG & 0x3) << 2
	flags |= l.NSG & 0x3
	p.BHS[1] = flags
	p.BHS[2] = 0x00 // VersionMax
	p.BHS[3] = 0x00 // VersionMin
	copy(p.BHS[8:14], l.ISID[:])
	binary.BigEndian.PutUint16(p.BHS[14:16], l.TSIH)
	p.SetITT(l.ITT)
	binary.BigEndian.PutUint16(p.BHS[20:22], l.CID)
	binary.BigEndian.PutUint32(p.BHS[24:28], l.CmdSN)
	binary.BigEndian.PutUint32(p.BHS[28:32], l.ExpStatSN)
	p.setDataSegment(EncodePairs(l.Pairs))
	return p
}

// ParseLoginRequest decodes a Login Request PDU.
func ParseLoginRequest(p *PDU) (*LoginRequest, error) {
	if p.Op() != OpLoginReq {
		return nil, opError(OpLoginReq, p.Op())
	}
	pairs, err := DecodePairs(p.Data)
	if err != nil {
		return nil, err
	}
	l := &LoginRequest{
		Transit:   p.BHS[1]&0x80 != 0,
		Continue:  p.BHS[1]&0x40 != 0,
		CSG:       (p.BHS[1] >> 2) & 0x3,
		NSG:       p.BHS[1] & 0x3,
		TSIH:      binary.BigEndian.Uint16(p.BHS[14:16]),
		ITT:       p.ITT(),
		CID:       binary.BigEndian.Uint16(p.BHS[20:22]),
		CmdSN:     binary.BigEndian.Uint32(p.BHS[24:28]),
		ExpStatSN: binary.BigEndian.Uint32(p.BHS[28:32]),
		Pairs:     pairs,
	}
	copy(l.ISID[:], p.BHS[8:14])
	return l, nil
}

// LoginResponse is the typed view of a Login Response PDU (opcode 0x23).
type LoginResponse struct {
	Transit      bool
	Continue     bool
	CSG, NSG     byte
	ISID         [6]byte
	TSIH         uint16
	ITT          uint32
	StatSN       uint32
	ExpCmdSN     uint32
	MaxCmdSN     uint32
	StatusClass  byte
	StatusDetail byte
	Pairs        map[string]string
}

// Encode builds the wire PDU.
func (l *LoginResponse) Encode() *PDU {
	p := &PDU{}
	p.SetOp(OpLoginResp)
	var flags byte
	if l.Transit {
		flags |= 0x80
	}
	if l.Continue {
		flags |= 0x40
	}
	flags |= (l.CSG & 0x3) << 2
	flags |= l.NSG & 0x3
	p.BHS[1] = flags
	copy(p.BHS[8:14], l.ISID[:])
	binary.BigEndian.PutUint16(p.BHS[14:16], l.TSIH)
	p.SetITT(l.ITT)
	binary.BigEndian.PutUint32(p.BHS[24:28], l.StatSN)
	binary.BigEndian.PutUint32(p.BHS[28:32], l.ExpCmdSN)
	binary.BigEndian.PutUint32(p.BHS[32:36], l.MaxCmdSN)
	p.BHS[36] = l.StatusClass
	p.BHS[37] = l.StatusDetail
	p.setDataSegment(EncodePairs(l.Pairs))
	return p
}

// ParseLoginResponse decodes a Login Response PDU.
func ParseLoginResponse(p *PDU) (*LoginResponse, error) {
	if p.Op() != OpLoginResp {
		return nil, opError(OpLoginResp, p.Op())
	}
	pairs, err := DecodePairs(p.Data)
	if err != nil {
		return nil, err
	}
	l := &LoginResponse{
		Transit:      p.BHS[1]&0x80 != 0,
		Continue:     p.BHS[1]&0x40 != 0,
		CSG:          (p.BHS[1] >> 2) & 0x3,
		NSG:          p.BHS[1] & 0x3,
		TSIH:         binary.BigEndian.Uint16(p.BHS[14:16]),
		ITT:          p.ITT(),
		StatSN:       binary.BigEndian.Uint32(p.BHS[24:28]),
		ExpCmdSN:     binary.BigEndian.Uint32(p.BHS[28:32]),
		MaxCmdSN:     binary.BigEndian.Uint32(p.BHS[32:36]),
		StatusClass:  p.BHS[36],
		StatusDetail: p.BHS[37],
		Pairs:        pairs,
	}
	copy(l.ISID[:], p.BHS[8:14])
	return l, nil
}

// Standard negotiation keys used by this implementation. KeySourcePort is the
// StorM extension from the paper's modified "Login Session" code: the
// initiator exposes its TCP source port together with the IQN so that the
// platform can attribute the storage connection to a VM.
const (
	KeyInitiatorName  = "InitiatorName"
	KeyTargetName     = "TargetName"
	KeySessionType    = "SessionType"
	KeyMaxRecvDSL     = "MaxRecvDataSegmentLength"
	KeyFirstBurst     = "FirstBurstLength"
	KeyMaxBurst       = "MaxBurstLength"
	KeyImmediateData  = "ImmediateData"
	KeyInitialR2T     = "InitialR2T"
	KeyHeaderDigest   = "HeaderDigest"
	KeyDataDigest     = "DataDigest"
	KeyMaxConnections = "MaxConnections"
	KeySourcePort     = "X-edu.purdue.storm.SourcePort"
	KeyAttachedVM     = "X-edu.purdue.storm.AttachedVM"
)

// EncodePairs serializes key=value pairs as NUL-separated login/text data.
// Keys are emitted in sorted order for deterministic wire bytes.
func EncodePairs(pairs map[string]string) []byte {
	if len(pairs) == 0 {
		return nil
	}
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(pairs[k])
		b.WriteByte(0)
	}
	return []byte(b.String())
}

// DecodePairs parses NUL-separated key=value login/text data.
func DecodePairs(data []byte) (map[string]string, error) {
	pairs := make(map[string]string)
	for len(data) > 0 {
		idx := indexByte(data, 0)
		var kv []byte
		if idx < 0 {
			kv, data = data, nil
		} else {
			kv, data = data[:idx], data[idx+1:]
		}
		if len(kv) == 0 {
			continue
		}
		eq := indexByte(kv, '=')
		if eq < 0 {
			return nil, fmt.Errorf("iscsi: malformed key=value pair %q", kv)
		}
		pairs[string(kv[:eq])] = string(kv[eq+1:])
	}
	return pairs, nil
}

func indexByte(b []byte, c byte) int {
	for i, v := range b {
		if v == c {
			return i
		}
	}
	return -1
}

// Params holds the operational parameters a session negotiates.
type Params struct {
	// MaxRecvDataSegmentLength bounds each Data-In/Data-Out data segment.
	MaxRecvDataSegmentLength int
	// FirstBurstLength bounds unsolicited (immediate) write data per command.
	FirstBurstLength int
	// MaxBurstLength bounds each solicited data sequence.
	MaxBurstLength int
	// ImmediateData allows write data inside the SCSI Command PDU.
	ImmediateData bool
	// InitialR2T requires an R2T before any solicited data when true.
	InitialR2T bool
	// MaxConnections bounds the number of connections the session may carry
	// (MC/S). Zero is treated as 1, the RFC default.
	MaxConnections int
}

// EffectiveMaxConnections resolves the MC/S connection bound, mapping the
// zero value (legacy Params literals) to the RFC default of 1.
func (p Params) EffectiveMaxConnections() int {
	if p.MaxConnections <= 0 {
		return 1
	}
	return p.MaxConnections
}

// DefaultParams mirrors the Open-iSCSI defaults used by the paper's
// prototype: immediate data on, initial R2T off, 256 KiB segments and
// first burst (node.session.iscsi.FirstBurstLength=262144), 16 MiB max
// burst.
func DefaultParams() Params {
	return Params{
		MaxRecvDataSegmentLength: 256 * 1024,
		FirstBurstLength:         256 * 1024,
		MaxBurstLength:           16 * 1024 * 1024,
		ImmediateData:            true,
		InitialR2T:               false,
		MaxConnections:           1,
	}
}

// Pairs renders the parameters as negotiation keys.
func (p Params) Pairs() map[string]string {
	return map[string]string{
		KeyMaxRecvDSL:     fmt.Sprintf("%d", p.MaxRecvDataSegmentLength),
		KeyFirstBurst:     fmt.Sprintf("%d", p.FirstBurstLength),
		KeyMaxBurst:       fmt.Sprintf("%d", p.MaxBurstLength),
		KeyImmediateData:  yesNo(p.ImmediateData),
		KeyInitialR2T:     yesNo(p.InitialR2T),
		KeyMaxConnections: fmt.Sprintf("%d", p.EffectiveMaxConnections()),
		KeyHeaderDigest:   "None",
		KeyDataDigest:     "None",
	}
}

// Negotiate merges the peer's offered keys into the parameters, taking the
// more conservative value for each (minimum lengths; logical AND/OR for the
// boolean keys per RFC 7143 result functions).
func (p Params) Negotiate(offered map[string]string) (Params, error) {
	out := p
	if v, ok := offered[KeyMaxRecvDSL]; ok {
		n, err := parsePositiveInt(KeyMaxRecvDSL, v)
		if err != nil {
			return out, err
		}
		out.MaxRecvDataSegmentLength = min(out.MaxRecvDataSegmentLength, n)
	}
	if v, ok := offered[KeyFirstBurst]; ok {
		n, err := parsePositiveInt(KeyFirstBurst, v)
		if err != nil {
			return out, err
		}
		out.FirstBurstLength = min(out.FirstBurstLength, n)
	}
	if v, ok := offered[KeyMaxBurst]; ok {
		n, err := parsePositiveInt(KeyMaxBurst, v)
		if err != nil {
			return out, err
		}
		out.MaxBurstLength = min(out.MaxBurstLength, n)
	}
	if v, ok := offered[KeyMaxConnections]; ok {
		n, err := parsePositiveInt(KeyMaxConnections, v)
		if err != nil {
			return out, err
		}
		out.MaxConnections = min(out.EffectiveMaxConnections(), n)
	}
	if v, ok := offered[KeyImmediateData]; ok {
		out.ImmediateData = out.ImmediateData && v == "Yes" // AND function
	}
	if v, ok := offered[KeyInitialR2T]; ok {
		out.InitialR2T = out.InitialR2T || v == "Yes" // OR function
	}
	if out.FirstBurstLength > out.MaxBurstLength {
		out.FirstBurstLength = out.MaxBurstLength
	}
	return out, nil
}

func parsePositiveInt(key, v string) (int, error) {
	var n int
	if _, err := fmt.Sscanf(v, "%d", &n); err != nil || n <= 0 {
		return 0, fmt.Errorf("iscsi: invalid %s value %q", key, v)
	}
	return n, nil
}

func yesNo(v bool) string {
	if v {
		return "Yes"
	}
	return "No"
}
