package iscsi

import (
	"fmt"
	"io"

	"repro/internal/bufpool"
)

// readerBufSize is the PDUReader's internal staging window. 64 KiB covers a
// BHS plus a typical data segment in one underlying read, and back-to-back
// small PDUs (R2T + Data-Out trains, batched responses) decode from a single
// fill without touching the connection again.
const readerBufSize = 64 * 1024

// PDUReader decodes PDUs from a stream through a pooled staging buffer so
// that each PDU costs at most one underlying read (the bare ReadPDU function
// costs two: header, then data). On simulated fabrics every read is a
// rendezvous with the peer's write, so halving the read count halves the
// synchronization on the wire hot path. Data segments are still handed out in
// their own pooled buffers with the usual single-owner Release contract.
//
// PDUReader is not safe for concurrent use; each connection read loop owns
// one. Close releases the staging buffer.
type PDUReader struct {
	r        io.Reader
	buf      *bufpool.Buf
	pos, end int
}

// NewPDUReader wraps a connection in a buffered PDU decoder.
func NewPDUReader(r io.Reader) *PDUReader {
	return &PDUReader{r: r, buf: bufpool.Get(readerBufSize)}
}

// Close returns the staging buffer to the pool. The reader must not be used
// afterwards.
func (pr *PDUReader) Close() {
	if pr.buf != nil {
		pr.buf.Release()
		pr.buf = nil
	}
}

func (pr *PDUReader) buffered() int { return pr.end - pr.pos }

// Buffered reports how many undecoded bytes are staged. A zero return after
// ReadPDU means no further input had arrived when the last fill ran — read
// loops use it to detect a quiet connection and run work inline.
func (pr *PDUReader) Buffered() int { return pr.buffered() }

// fill compacts the window and reads once from the stream. It returns nil
// whenever at least one new byte arrived.
func (pr *PDUReader) fill() error {
	if pr.pos > 0 {
		copy(pr.buf.B, pr.buf.B[pr.pos:pr.end])
		pr.end -= pr.pos
		pr.pos = 0
	}
	n, err := pr.r.Read(pr.buf.B[pr.end:])
	pr.end += n
	if n > 0 {
		return nil
	}
	if err != nil {
		return err
	}
	return io.ErrNoProgress
}

// need blocks until at least n bytes are buffered. A clean EOF on a PDU
// boundary surfaces as io.EOF; EOF mid-header is unexpected.
func (pr *PDUReader) need(n int) error {
	for pr.buffered() < n {
		if err := pr.fill(); err != nil {
			if err == io.EOF && pr.buffered() > 0 {
				return io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}

// ReadPDU reads one PDU. Small data segments copy out of the staging window;
// segments extending past it are read directly into the PDU's pooled buffer,
// so large transfers don't pay a double copy. Callers own the returned PDU's
// data segment and should Release it once consumed.
func (pr *PDUReader) ReadPDU() (*PDU, error) {
	if err := pr.need(BHSLen); err != nil {
		return nil, err
	}
	var p PDU
	copy(p.BHS[:], pr.buf.B[pr.pos:pr.pos+BHSLen])
	pr.pos += BHSLen
	if ahs := p.BHS[4]; ahs != 0 {
		return nil, fmt.Errorf("iscsi: additional header segments unsupported (TotalAHSLength=%d)", ahs)
	}
	n := p.DataSegmentLength()
	if n > MaxDataSegment {
		return nil, fmt.Errorf("iscsi: data segment length %d exceeds protocol maximum", n)
	}
	if n > 0 {
		padded := pad4(n)
		buf := bufpool.Get(padded)
		have := pr.buffered()
		if have > padded {
			have = padded
		}
		copy(buf.B[:have], pr.buf.B[pr.pos:pr.pos+have])
		pr.pos += have
		if have < padded {
			if _, err := io.ReadFull(pr.r, buf.B[have:padded]); err != nil {
				buf.Release()
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return nil, fmt.Errorf("iscsi: read data segment: %w", err)
			}
		}
		p.Data = buf.B[:n]
		p.dataBuf = buf
	}
	return &p, nil
}
