package iscsi

import (
	"encoding/binary"
	"fmt"
)

// SCSICommand is the typed view of a SCSI Command PDU (opcode 0x01).
type SCSICommand struct {
	Immediate bool
	Final     bool
	Read      bool
	Write     bool
	LUN       uint16
	ITT       uint32
	// ExpectedDataTransferLength is the total transfer size in bytes.
	ExpectedDataTransferLength uint32
	CmdSN                      uint32
	ExpStatSN                  uint32
	CDB                        [16]byte
	// Data carries immediate (unsolicited) write data, when negotiated.
	Data []byte
}

// Encode builds the wire PDU.
func (c *SCSICommand) Encode() *PDU { return c.EncodeInto(&PDU{}) }

// EncodeInto encodes into a caller-provided (typically per-session,
// reused) PDU, overwriting its previous contents.
func (c *SCSICommand) EncodeInto(p *PDU) *PDU {
	*p = PDU{}
	p.SetOp(OpSCSICommand)
	p.SetImmediate(c.Immediate)
	if c.Final {
		p.BHS[1] |= 0x80
	}
	if c.Read {
		p.BHS[1] |= 0x40
	}
	if c.Write {
		p.BHS[1] |= 0x20
	}
	lun := LUN(c.LUN)
	copy(p.BHS[8:16], lun[:])
	p.SetITT(c.ITT)
	binary.BigEndian.PutUint32(p.BHS[20:24], c.ExpectedDataTransferLength)
	binary.BigEndian.PutUint32(p.BHS[24:28], c.CmdSN)
	binary.BigEndian.PutUint32(p.BHS[28:32], c.ExpStatSN)
	copy(p.BHS[32:48], c.CDB[:])
	p.setDataSegment(c.Data)
	return p
}

// ParseSCSICommand decodes a SCSI Command PDU.
func ParseSCSICommand(p *PDU) (*SCSICommand, error) {
	if p.Op() != OpSCSICommand {
		return nil, opError(OpSCSICommand, p.Op())
	}
	var lun [8]byte
	copy(lun[:], p.BHS[8:16])
	c := &SCSICommand{
		Immediate:                  p.Immediate(),
		Final:                      p.BHS[1]&0x80 != 0,
		Read:                       p.BHS[1]&0x40 != 0,
		Write:                      p.BHS[1]&0x20 != 0,
		LUN:                        ParseLUN(lun),
		ITT:                        p.ITT(),
		ExpectedDataTransferLength: binary.BigEndian.Uint32(p.BHS[20:24]),
		CmdSN:                      binary.BigEndian.Uint32(p.BHS[24:28]),
		ExpStatSN:                  binary.BigEndian.Uint32(p.BHS[28:32]),
		Data:                       p.Data,
	}
	copy(c.CDB[:], p.BHS[32:48])
	return c, nil
}

// Response codes for SCSIResponse.Response.
const (
	RespCompleted     byte = 0x00
	RespTargetFailure byte = 0x01
)

// SCSIResponse is the typed view of a SCSI Response PDU (opcode 0x21).
type SCSIResponse struct {
	ITT       uint32
	Response  byte
	Status    byte
	StatSN    uint32
	ExpCmdSN  uint32
	MaxCmdSN  uint32
	ExpDataSN uint32
	// ResidualCount reports an under/overflow of the expected transfer.
	ResidualCount uint32
	Underflow     bool
	Overflow      bool
	// Sense carries sense data for CHECK CONDITION status.
	Sense []byte
}

// Encode builds the wire PDU. Sense data, when present, is framed with the
// standard two-byte SenseLength prefix in the data segment.
func (r *SCSIResponse) Encode() *PDU { return r.EncodeInto(&PDU{}) }

// EncodeInto encodes into a caller-provided (typically per-session,
// reused) PDU, overwriting its previous contents.
func (r *SCSIResponse) EncodeInto(p *PDU) *PDU {
	*p = PDU{}
	p.SetOp(OpSCSIResponse)
	p.BHS[1] = 0x80 // F bit always set
	if r.Underflow {
		p.BHS[1] |= 0x02
	}
	if r.Overflow {
		p.BHS[1] |= 0x04
	}
	p.BHS[2] = r.Response
	p.BHS[3] = r.Status
	p.SetITT(r.ITT)
	binary.BigEndian.PutUint32(p.BHS[24:28], r.StatSN)
	binary.BigEndian.PutUint32(p.BHS[28:32], r.ExpCmdSN)
	binary.BigEndian.PutUint32(p.BHS[32:36], r.MaxCmdSN)
	binary.BigEndian.PutUint32(p.BHS[36:40], r.ExpDataSN)
	binary.BigEndian.PutUint32(p.BHS[44:48], r.ResidualCount)
	if len(r.Sense) > 0 {
		data := make([]byte, 2+len(r.Sense))
		binary.BigEndian.PutUint16(data[0:2], uint16(len(r.Sense)))
		copy(data[2:], r.Sense)
		p.setDataSegment(data)
	}
	return p
}

// ParseSCSIResponse decodes a SCSI Response PDU.
func ParseSCSIResponse(p *PDU) (*SCSIResponse, error) {
	r := new(SCSIResponse)
	if err := ParseSCSIResponseInto(r, p); err != nil {
		return nil, err
	}
	return r, nil
}

// ParseSCSIResponseInto decodes p into r, a caller-owned (typically reused)
// struct — the allocation-free form for response demultiplexing loops.
// r.Sense aliases p's data segment, so consume it before releasing p.
func ParseSCSIResponseInto(r *SCSIResponse, p *PDU) error {
	if p.Op() != OpSCSIResponse {
		return opError(OpSCSIResponse, p.Op())
	}
	*r = SCSIResponse{
		ITT:           p.ITT(),
		Response:      p.BHS[2],
		Status:        p.BHS[3],
		StatSN:        binary.BigEndian.Uint32(p.BHS[24:28]),
		ExpCmdSN:      binary.BigEndian.Uint32(p.BHS[28:32]),
		MaxCmdSN:      binary.BigEndian.Uint32(p.BHS[32:36]),
		ExpDataSN:     binary.BigEndian.Uint32(p.BHS[36:40]),
		ResidualCount: binary.BigEndian.Uint32(p.BHS[44:48]),
		Underflow:     p.BHS[1]&0x02 != 0,
		Overflow:      p.BHS[1]&0x04 != 0,
	}
	if len(p.Data) >= 2 {
		n := int(binary.BigEndian.Uint16(p.Data[0:2]))
		if n > len(p.Data)-2 {
			return fmt.Errorf("iscsi: sense length %d exceeds data segment", n)
		}
		r.Sense = p.Data[2 : 2+n]
	}
	return nil
}

// DataIn is the typed view of a SCSI Data-In PDU (opcode 0x25).
type DataIn struct {
	Final bool
	// StatusPresent indicates phase-collapse: status is carried here and no
	// separate SCSI Response follows.
	StatusPresent bool
	Acknowledge   bool
	Status        byte
	LUN           uint16
	ITT           uint32
	TTT           uint32
	StatSN        uint32
	ExpCmdSN      uint32
	MaxCmdSN      uint32
	DataSN        uint32
	BufferOffset  uint32
	ResidualCount uint32
	Data          []byte
}

// Encode builds the wire PDU.
func (d *DataIn) Encode() *PDU { return d.EncodeInto(&PDU{}) }

// EncodeInto encodes into a caller-provided (typically per-session,
// reused) PDU, overwriting its previous contents.
func (d *DataIn) EncodeInto(p *PDU) *PDU {
	*p = PDU{}
	p.SetOp(OpSCSIDataIn)
	if d.Final {
		p.BHS[1] |= 0x80
	}
	if d.Acknowledge {
		p.BHS[1] |= 0x40
	}
	if d.StatusPresent {
		p.BHS[1] |= 0x01
		p.BHS[3] = d.Status
	}
	lun := LUN(d.LUN)
	copy(p.BHS[8:16], lun[:])
	p.SetITT(d.ITT)
	binary.BigEndian.PutUint32(p.BHS[20:24], d.TTT)
	binary.BigEndian.PutUint32(p.BHS[24:28], d.StatSN)
	binary.BigEndian.PutUint32(p.BHS[28:32], d.ExpCmdSN)
	binary.BigEndian.PutUint32(p.BHS[32:36], d.MaxCmdSN)
	binary.BigEndian.PutUint32(p.BHS[36:40], d.DataSN)
	binary.BigEndian.PutUint32(p.BHS[40:44], d.BufferOffset)
	binary.BigEndian.PutUint32(p.BHS[44:48], d.ResidualCount)
	p.setDataSegment(d.Data)
	return p
}

// ParseDataIn decodes a Data-In PDU.
func ParseDataIn(p *PDU) (*DataIn, error) {
	d := new(DataIn)
	if err := ParseDataInInto(d, p); err != nil {
		return nil, err
	}
	return d, nil
}

// ParseDataInInto decodes p into d, a caller-owned (typically reused)
// struct. d.Data aliases p's data segment, so consume it before releasing p.
func ParseDataInInto(d *DataIn, p *PDU) error {
	if p.Op() != OpSCSIDataIn {
		return opError(OpSCSIDataIn, p.Op())
	}
	var lun [8]byte
	copy(lun[:], p.BHS[8:16])
	*d = DataIn{
		Final:         p.BHS[1]&0x80 != 0,
		Acknowledge:   p.BHS[1]&0x40 != 0,
		StatusPresent: p.BHS[1]&0x01 != 0,
		Status:        p.BHS[3],
		LUN:           ParseLUN(lun),
		ITT:           p.ITT(),
		TTT:           binary.BigEndian.Uint32(p.BHS[20:24]),
		StatSN:        binary.BigEndian.Uint32(p.BHS[24:28]),
		ExpCmdSN:      binary.BigEndian.Uint32(p.BHS[28:32]),
		MaxCmdSN:      binary.BigEndian.Uint32(p.BHS[32:36]),
		DataSN:        binary.BigEndian.Uint32(p.BHS[36:40]),
		BufferOffset:  binary.BigEndian.Uint32(p.BHS[40:44]),
		ResidualCount: binary.BigEndian.Uint32(p.BHS[44:48]),
		Data:          p.Data,
	}
	return nil
}

// DataOut is the typed view of a SCSI Data-Out PDU (opcode 0x05).
type DataOut struct {
	Final        bool
	LUN          uint16
	ITT          uint32
	TTT          uint32
	ExpStatSN    uint32
	DataSN       uint32
	BufferOffset uint32
	Data         []byte
}

// Encode builds the wire PDU.
func (d *DataOut) Encode() *PDU { return d.EncodeInto(&PDU{}) }

// EncodeInto encodes into a caller-provided (typically per-session,
// reused) PDU, overwriting its previous contents.
func (d *DataOut) EncodeInto(p *PDU) *PDU {
	*p = PDU{}
	p.SetOp(OpSCSIDataOut)
	if d.Final {
		p.BHS[1] |= 0x80
	}
	lun := LUN(d.LUN)
	copy(p.BHS[8:16], lun[:])
	p.SetITT(d.ITT)
	binary.BigEndian.PutUint32(p.BHS[20:24], d.TTT)
	binary.BigEndian.PutUint32(p.BHS[28:32], d.ExpStatSN)
	binary.BigEndian.PutUint32(p.BHS[36:40], d.DataSN)
	binary.BigEndian.PutUint32(p.BHS[40:44], d.BufferOffset)
	p.setDataSegment(d.Data)
	return p
}

// ParseDataOut decodes a Data-Out PDU.
func ParseDataOut(p *PDU) (*DataOut, error) {
	if p.Op() != OpSCSIDataOut {
		return nil, opError(OpSCSIDataOut, p.Op())
	}
	var lun [8]byte
	copy(lun[:], p.BHS[8:16])
	return &DataOut{
		Final:        p.BHS[1]&0x80 != 0,
		LUN:          ParseLUN(lun),
		ITT:          p.ITT(),
		TTT:          binary.BigEndian.Uint32(p.BHS[20:24]),
		ExpStatSN:    binary.BigEndian.Uint32(p.BHS[28:32]),
		DataSN:       binary.BigEndian.Uint32(p.BHS[36:40]),
		BufferOffset: binary.BigEndian.Uint32(p.BHS[40:44]),
		Data:         p.Data,
	}, nil
}

// R2T is the typed view of a Ready-To-Transfer PDU (opcode 0x31).
type R2T struct {
	LUN          uint16
	ITT          uint32
	TTT          uint32
	StatSN       uint32
	ExpCmdSN     uint32
	MaxCmdSN     uint32
	R2TSN        uint32
	BufferOffset uint32
	// DesiredLength is the number of Data-Out bytes solicited.
	DesiredLength uint32
}

// Encode builds the wire PDU.
func (r *R2T) Encode() *PDU { return r.EncodeInto(&PDU{}) }

// EncodeInto encodes into a caller-provided (typically per-session,
// reused) PDU, overwriting its previous contents.
func (r *R2T) EncodeInto(p *PDU) *PDU {
	*p = PDU{}
	p.SetOp(OpR2T)
	p.BHS[1] = 0x80
	lun := LUN(r.LUN)
	copy(p.BHS[8:16], lun[:])
	p.SetITT(r.ITT)
	binary.BigEndian.PutUint32(p.BHS[20:24], r.TTT)
	binary.BigEndian.PutUint32(p.BHS[24:28], r.StatSN)
	binary.BigEndian.PutUint32(p.BHS[28:32], r.ExpCmdSN)
	binary.BigEndian.PutUint32(p.BHS[32:36], r.MaxCmdSN)
	binary.BigEndian.PutUint32(p.BHS[36:40], r.R2TSN)
	binary.BigEndian.PutUint32(p.BHS[40:44], r.BufferOffset)
	binary.BigEndian.PutUint32(p.BHS[44:48], r.DesiredLength)
	return p
}

// ParseR2T decodes an R2T PDU.
func ParseR2T(p *PDU) (*R2T, error) {
	r := new(R2T)
	if err := ParseR2TInto(r, p); err != nil {
		return nil, err
	}
	return r, nil
}

// ParseR2TInto decodes p into r, a caller-owned (typically pooled) struct.
func ParseR2TInto(r *R2T, p *PDU) error {
	if p.Op() != OpR2T {
		return opError(OpR2T, p.Op())
	}
	var lun [8]byte
	copy(lun[:], p.BHS[8:16])
	*r = R2T{
		LUN:           ParseLUN(lun),
		ITT:           p.ITT(),
		TTT:           binary.BigEndian.Uint32(p.BHS[20:24]),
		StatSN:        binary.BigEndian.Uint32(p.BHS[24:28]),
		ExpCmdSN:      binary.BigEndian.Uint32(p.BHS[28:32]),
		MaxCmdSN:      binary.BigEndian.Uint32(p.BHS[32:36]),
		R2TSN:         binary.BigEndian.Uint32(p.BHS[36:40]),
		BufferOffset:  binary.BigEndian.Uint32(p.BHS[40:44]),
		DesiredLength: binary.BigEndian.Uint32(p.BHS[44:48]),
	}
	return nil
}

// NopOut is the typed view of a NOP-Out PDU (ping or response to NOP-In).
type NopOut struct {
	ITT       uint32
	TTT       uint32
	CmdSN     uint32
	ExpStatSN uint32
	Data      []byte
}

// Encode builds the wire PDU. NOP-Out is always sent immediate here.
func (n *NopOut) Encode() *PDU { return n.EncodeInto(&PDU{}) }

// EncodeInto encodes into a caller-provided (typically per-session,
// reused) PDU, overwriting its previous contents.
func (n *NopOut) EncodeInto(p *PDU) *PDU {
	*p = PDU{}
	p.SetOp(OpNopOut)
	p.SetImmediate(true)
	p.BHS[1] = 0x80
	p.SetITT(n.ITT)
	binary.BigEndian.PutUint32(p.BHS[20:24], n.TTT)
	binary.BigEndian.PutUint32(p.BHS[24:28], n.CmdSN)
	binary.BigEndian.PutUint32(p.BHS[28:32], n.ExpStatSN)
	p.setDataSegment(n.Data)
	return p
}

// ParseNopOut decodes a NOP-Out PDU.
func ParseNopOut(p *PDU) (*NopOut, error) {
	if p.Op() != OpNopOut {
		return nil, opError(OpNopOut, p.Op())
	}
	return &NopOut{
		ITT:       p.ITT(),
		TTT:       binary.BigEndian.Uint32(p.BHS[20:24]),
		CmdSN:     binary.BigEndian.Uint32(p.BHS[24:28]),
		ExpStatSN: binary.BigEndian.Uint32(p.BHS[28:32]),
		Data:      p.Data,
	}, nil
}

// NopIn is the typed view of a NOP-In PDU.
type NopIn struct {
	ITT      uint32
	TTT      uint32
	StatSN   uint32
	ExpCmdSN uint32
	MaxCmdSN uint32
	Data     []byte
}

// Encode builds the wire PDU.
func (n *NopIn) Encode() *PDU { return n.EncodeInto(&PDU{}) }

// EncodeInto encodes into a caller-provided (typically per-session,
// reused) PDU, overwriting its previous contents.
func (n *NopIn) EncodeInto(p *PDU) *PDU {
	*p = PDU{}
	p.SetOp(OpNopIn)
	p.BHS[1] = 0x80
	p.SetITT(n.ITT)
	binary.BigEndian.PutUint32(p.BHS[20:24], n.TTT)
	binary.BigEndian.PutUint32(p.BHS[24:28], n.StatSN)
	binary.BigEndian.PutUint32(p.BHS[28:32], n.ExpCmdSN)
	binary.BigEndian.PutUint32(p.BHS[32:36], n.MaxCmdSN)
	p.setDataSegment(n.Data)
	return p
}

// ParseNopIn decodes a NOP-In PDU.
func ParseNopIn(p *PDU) (*NopIn, error) {
	if p.Op() != OpNopIn {
		return nil, opError(OpNopIn, p.Op())
	}
	return &NopIn{
		ITT:      p.ITT(),
		TTT:      binary.BigEndian.Uint32(p.BHS[20:24]),
		StatSN:   binary.BigEndian.Uint32(p.BHS[24:28]),
		ExpCmdSN: binary.BigEndian.Uint32(p.BHS[28:32]),
		MaxCmdSN: binary.BigEndian.Uint32(p.BHS[32:36]),
		Data:     p.Data,
	}, nil
}

// LogoutRequest is the typed view of a Logout Request PDU.
type LogoutRequest struct {
	// Reason 0 closes the session; 1 closes the connection.
	Reason    byte
	ITT       uint32
	CID       uint16
	CmdSN     uint32
	ExpStatSN uint32
}

// Encode builds the wire PDU.
func (l *LogoutRequest) Encode() *PDU {
	p := &PDU{}
	p.SetOp(OpLogoutReq)
	p.SetImmediate(true)
	p.BHS[1] = 0x80 | l.Reason&0x7F
	p.SetITT(l.ITT)
	binary.BigEndian.PutUint16(p.BHS[20:22], l.CID)
	binary.BigEndian.PutUint32(p.BHS[24:28], l.CmdSN)
	binary.BigEndian.PutUint32(p.BHS[28:32], l.ExpStatSN)
	return p
}

// ParseLogoutRequest decodes a Logout Request PDU.
func ParseLogoutRequest(p *PDU) (*LogoutRequest, error) {
	if p.Op() != OpLogoutReq {
		return nil, opError(OpLogoutReq, p.Op())
	}
	return &LogoutRequest{
		Reason:    p.BHS[1] & 0x7F,
		ITT:       p.ITT(),
		CID:       binary.BigEndian.Uint16(p.BHS[20:22]),
		CmdSN:     binary.BigEndian.Uint32(p.BHS[24:28]),
		ExpStatSN: binary.BigEndian.Uint32(p.BHS[28:32]),
	}, nil
}

// LogoutResponse is the typed view of a Logout Response PDU.
type LogoutResponse struct {
	Response byte
	ITT      uint32
	StatSN   uint32
	ExpCmdSN uint32
	MaxCmdSN uint32
}

// Encode builds the wire PDU.
func (l *LogoutResponse) Encode() *PDU {
	p := &PDU{}
	p.SetOp(OpLogoutResp)
	p.BHS[1] = 0x80
	p.BHS[2] = l.Response
	p.SetITT(l.ITT)
	binary.BigEndian.PutUint32(p.BHS[24:28], l.StatSN)
	binary.BigEndian.PutUint32(p.BHS[28:32], l.ExpCmdSN)
	binary.BigEndian.PutUint32(p.BHS[32:36], l.MaxCmdSN)
	return p
}

// ParseLogoutResponse decodes a Logout Response PDU.
func ParseLogoutResponse(p *PDU) (*LogoutResponse, error) {
	if p.Op() != OpLogoutResp {
		return nil, opError(OpLogoutResp, p.Op())
	}
	return &LogoutResponse{
		Response: p.BHS[2],
		ITT:      p.ITT(),
		StatSN:   binary.BigEndian.Uint32(p.BHS[24:28]),
		ExpCmdSN: binary.BigEndian.Uint32(p.BHS[28:32]),
		MaxCmdSN: binary.BigEndian.Uint32(p.BHS[32:36]),
	}, nil
}

// Reject is the typed view of a Reject PDU (opcode 0x3F).
type Reject struct {
	Reason byte
	StatSN uint32
	// Header is the BHS of the rejected PDU, carried in the data segment.
	Header []byte
}

// Reject reasons.
const (
	RejectProtocolError       byte = 0x04
	RejectCommandNotSupported byte = 0x05
	RejectInvalidPDUField     byte = 0x09
)

// Encode builds the wire PDU.
func (r *Reject) Encode() *PDU {
	p := &PDU{}
	p.SetOp(OpReject)
	p.BHS[1] = 0x80
	p.BHS[2] = r.Reason
	p.SetITT(0xFFFFFFFF)
	binary.BigEndian.PutUint32(p.BHS[24:28], r.StatSN)
	p.setDataSegment(r.Header)
	return p
}

// ParseReject decodes a Reject PDU.
func ParseReject(p *PDU) (*Reject, error) {
	if p.Op() != OpReject {
		return nil, opError(OpReject, p.Op())
	}
	return &Reject{
		Reason: p.BHS[2],
		StatSN: binary.BigEndian.Uint32(p.BHS[24:28]),
		Header: p.Data,
	}, nil
}

func opError(want, got Opcode) error {
	return fmt.Errorf("iscsi: expected %v PDU, got %v", want, got)
}
