package iscsi

import (
	"bytes"
	"io"
	"testing"
)

// discardBuffers exercises the vectored WriteTo path (what netsim.Conn
// provides on the real fabric).
type discardBuffers struct{ n int64 }

func (d *discardBuffers) Write(p []byte) (int, error) {
	d.n += int64(len(p))
	return len(p), nil
}

func (d *discardBuffers) WriteBuffers(bufs ...[]byte) (int, error) {
	n := 0
	for _, b := range bufs {
		n += len(b)
	}
	d.n += int64(n)
	return n, nil
}

// BenchmarkPDUWriteTo64K serializes a 64 KiB data PDU to a plain io.Writer
// (pooled single-buffer assembly path).
func BenchmarkPDUWriteTo64K(b *testing.B) {
	p := &PDU{}
	p.setDataSegment(make([]byte, 64*1024))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPDUWriteToVectored64K serializes the same PDU through the
// vectored BuffersWriter interface — no assembly buffer at all.
func BenchmarkPDUWriteToVectored64K(b *testing.B) {
	p := &PDU{}
	p.setDataSegment(make([]byte, 64*1024))
	var w discardBuffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.WriteTo(&w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeWrite4K builds a fresh SCSI write command PDU per op (the
// pre-fast-path session behavior).
func BenchmarkEncodeWrite4K(b *testing.B) {
	data := make([]byte, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmd := &SCSICommand{
			Final: true, Write: true, ITT: uint32(i),
			ExpectedDataTransferLength: 4096,
			Data:                       data,
		}
		if cmd.Encode() == nil {
			b.Fatal("nil PDU")
		}
	}
}

// BenchmarkEncodeIntoWrite4K reuses one wire PDU across ops, the way
// initiator and target sessions now frame every hot-path message.
func BenchmarkEncodeIntoWrite4K(b *testing.B) {
	data := make([]byte, 4096)
	var wire PDU
	cmd := &SCSICommand{
		Final: true, Write: true,
		ExpectedDataTransferLength: 4096,
		Data:                       data,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmd.ITT = uint32(i)
		if cmd.EncodeInto(&wire) == nil {
			b.Fatal("nil PDU")
		}
	}
}

// BenchmarkReadPDU64K decodes a 64 KiB Data-In PDU from a stream, releasing
// the pooled segment each op (steady-state read loop).
func BenchmarkReadPDU64K(b *testing.B) {
	din := &DataIn{Final: true, ITT: 7, Data: make([]byte, 64*1024)}
	wire := din.Encode().Bytes()
	r := bytes.NewReader(wire)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(wire)
		p, err := ReadPDU(r)
		if err != nil {
			b.Fatal(err)
		}
		p.Release()
	}
}
