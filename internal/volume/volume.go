// Package volume implements the block storage service of the mini-cloud —
// the OpenStack Cinder analogue. It carves thin-provisioned volumes out of
// the storage host, exports each under its own IQN through an iSCSI target
// server on the storage network, and tracks attachment state.
package volume

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/blockdev"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/target"
)

// Status of a volume.
type Status string

// Volume states.
const (
	StatusAvailable Status = "available"
	StatusAttached  Status = "in-use"
)

// Common errors.
var (
	ErrNotFound    = errors.New("volume: not found")
	ErrInUse       = errors.New("volume: in use")
	ErrNotAttached = errors.New("volume: not attached")
)

// Volume is one provisioned block volume.
type Volume struct {
	ID         string
	Name       string
	SizeBytes  uint64
	IQN        string
	Status     Status
	AttachedTo string

	dev   blockdev.Device
	fault *blockdev.FaultDisk
	mem   *blockdev.MemDisk
}

// Device exposes the backing device (provider-side access, used by the
// platform to dump file-system views and by failure injection).
func (v *Volume) Device() blockdev.Device { return v.dev }

// InjectFault fails the volume's medium with err (Figure 13's injected
// replica error).
func (v *Volume) InjectFault(err error) { v.fault.Trip(err) }

// HealFault clears an injected fault so the volume serves I/O again.
func (v *Volume) HealFault() { v.fault.Heal() }

// Service is the cloud's volume manager.
type Service struct {
	iqnPrefix   string
	readModel   blockdev.ServiceModel
	writeModel  blockdev.ServiceModel
	concurrency int
	blockSize   int

	mu      sync.Mutex
	volumes map[string]*Volume
	nextID  int

	srv  *target.Server
	addr netsim.Addr
}

// Config for a volume service.
type Config struct {
	// IQNPrefix prefixes generated target names (a sane default applies).
	IQNPrefix string
	// DiskRead / DiskWrite are the medium service-time models applied to
	// every volume (reads typically miss to the medium; writes land in the
	// target's write cache).
	DiskRead  blockdev.ServiceModel
	DiskWrite blockdev.ServiceModel
	// DiskConcurrency bounds concurrent medium accesses per volume
	// (0 = unlimited).
	DiskConcurrency int
	// BlockSize is the logical block size (default 512).
	BlockSize int
	// LoginHook is forwarded to the target server (connection attribution).
	LoginHook func(target.LoginInfo)
}

// NewService starts a volume service whose target daemon listens on the
// endpoint's storage NIC at the iSCSI port.
func NewService(ep *netsim.Endpoint, cfg Config) (*Service, error) {
	if cfg.IQNPrefix == "" {
		cfg.IQNPrefix = "iqn.2016-04.edu.purdue.storm"
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 512
	}
	opts := []target.Option{target.WithObs(obs.Default(), obs.StageTarget)}
	if cfg.LoginHook != nil {
		opts = append(opts, target.WithLoginHook(cfg.LoginHook))
	}
	s := &Service{
		iqnPrefix:   cfg.IQNPrefix,
		readModel:   cfg.DiskRead,
		writeModel:  cfg.DiskWrite,
		concurrency: cfg.DiskConcurrency,
		blockSize:   cfg.BlockSize,
		volumes:     make(map[string]*Volume),
		srv:         target.NewServer(opts...),
	}
	ln, err := ep.Listen(netsim.StorageNet, 3260)
	if err != nil {
		return nil, fmt.Errorf("volume: listen: %w", err)
	}
	s.addr = ln.Addr().(netsim.Addr)
	go s.srv.Serve(ln)
	return s, nil
}

// TargetAddr returns the iSCSI target address on the storage network.
func (s *Service) TargetAddr() netsim.Addr { return s.addr }

// Close stops the target server.
func (s *Service) Close() { s.srv.Close() }

// Create provisions a thin volume of the given size.
func (s *Service) Create(name string, sizeBytes uint64) (*Volume, error) {
	if sizeBytes == 0 || sizeBytes%uint64(s.blockSize) != 0 {
		return nil, fmt.Errorf("volume: size %d is not a positive multiple of %d", sizeBytes, s.blockSize)
	}
	mem, err := blockdev.NewMemDisk(s.blockSize, sizeBytes/uint64(s.blockSize))
	if err != nil {
		return nil, err
	}
	fault := blockdev.NewFaultDisk(mem)
	var dev blockdev.Device = fault
	if s.readModel != (blockdev.ServiceModel{}) || s.writeModel != (blockdev.ServiceModel{}) {
		dev = blockdev.NewLatencyDiskQueued(dev, s.readModel, s.writeModel, s.concurrency)
	}

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("vol-%04d", s.nextID)
	v := &Volume{
		ID:        id,
		Name:      name,
		SizeBytes: sizeBytes,
		IQN:       fmt.Sprintf("%s:%s", s.iqnPrefix, id),
		Status:    StatusAvailable,
		dev:       dev,
		fault:     fault,
		mem:       mem,
	}
	s.volumes[id] = v
	s.mu.Unlock()

	if err := s.srv.AddTarget(v.IQN, dev); err != nil {
		s.mu.Lock()
		delete(s.volumes, id)
		s.mu.Unlock()
		return nil, err
	}
	return v, nil
}

// Get returns a volume by ID.
func (s *Service) Get(id string) (*Volume, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.volumes[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return v, nil
}

// List returns all volumes sorted by ID.
func (s *Service) List() []*Volume {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Volume, 0, len(s.volumes))
	for _, v := range s.volumes {
		out = append(out, v)
	}
	return out
}

// MarkAttached records the attachment (Nova-side bookkeeping).
func (s *Service) MarkAttached(id, vm string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.volumes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if v.Status == StatusAttached {
		return fmt.Errorf("%w: attached to %s", ErrInUse, v.AttachedTo)
	}
	v.Status = StatusAttached
	v.AttachedTo = vm
	return nil
}

// MarkDetached records the detachment.
func (s *Service) MarkDetached(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.volumes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if v.Status != StatusAttached {
		return ErrNotAttached
	}
	v.Status = StatusAvailable
	v.AttachedTo = ""
	return nil
}

// Snapshot creates a new available volume holding a point-in-time copy of
// the source volume's data (crash-consistent: concurrent writes either
// land in the snapshot or do not).
func (s *Service) Snapshot(id, name string) (*Volume, error) {
	src, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	mem, err := src.mem.Clone()
	if err != nil {
		return nil, fmt.Errorf("volume: snapshot %s: %w", id, err)
	}
	fault := blockdev.NewFaultDisk(mem)
	var dev blockdev.Device = fault
	if s.readModel != (blockdev.ServiceModel{}) || s.writeModel != (blockdev.ServiceModel{}) {
		dev = blockdev.NewLatencyDiskQueued(dev, s.readModel, s.writeModel, s.concurrency)
	}
	s.mu.Lock()
	s.nextID++
	snapID := fmt.Sprintf("vol-%04d", s.nextID)
	v := &Volume{
		ID:        snapID,
		Name:      name,
		SizeBytes: src.SizeBytes,
		IQN:       fmt.Sprintf("%s:%s", s.iqnPrefix, snapID),
		Status:    StatusAvailable,
		dev:       dev,
		fault:     fault,
		mem:       mem,
	}
	s.volumes[snapID] = v
	s.mu.Unlock()
	if err := s.srv.AddTarget(v.IQN, dev); err != nil {
		s.mu.Lock()
		delete(s.volumes, snapID)
		s.mu.Unlock()
		return nil, err
	}
	return v, nil
}

// Delete removes an available volume.
func (s *Service) Delete(id string) error {
	s.mu.Lock()
	v, ok := s.volumes[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if v.Status == StatusAttached {
		s.mu.Unlock()
		return fmt.Errorf("%w: attached to %s", ErrInUse, v.AttachedTo)
	}
	delete(s.volumes, id)
	s.mu.Unlock()
	s.srv.RemoveTarget(v.IQN)
	return nil
}
