package volume

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/initiator"
	"repro/internal/netsim"
	"repro/internal/target"
)

// newService builds a volume service on a tiny fabric.
func newService(t *testing.T, cfg Config) (*Service, *netsim.Endpoint) {
	t.Helper()
	model := netsim.Model{MTU: 8192, Bandwidth: 1 << 33,
		Latency: map[netsim.HopKind]time.Duration{}, PerPacket: map[netsim.HopKind]time.Duration{}}
	fabric := netsim.NewFabric(model)
	sh, err := fabric.AddHost("storage1", map[netsim.Network]string{netsim.StorageNet: "10.0.0.100"})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := fabric.AddHost("compute1", map[netsim.Network]string{netsim.StorageNet: "10.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(sh.NewEndpoint("tgtd"), cfg)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	t.Cleanup(svc.Close)
	return svc, ch.NewEndpoint("client")
}

func TestCreateGetListDelete(t *testing.T) {
	svc, _ := newService(t, Config{})
	v, err := svc.Create("data", 1<<20)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if v.ID == "" || v.IQN == "" || v.Status != StatusAvailable {
		t.Errorf("volume = %+v", v)
	}
	got, err := svc.Get(v.ID)
	if err != nil || got.Name != "data" {
		t.Errorf("Get = %+v, %v", got, err)
	}
	if len(svc.List()) != 1 {
		t.Errorf("List = %d", len(svc.List()))
	}
	if err := svc.Delete(v.ID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := svc.Get(v.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after Delete err = %v", err)
	}
}

func TestCreateValidation(t *testing.T) {
	svc, _ := newService(t, Config{})
	if _, err := svc.Create("x", 0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := svc.Create("x", 777); err == nil {
		t.Error("unaligned size accepted")
	}
}

func TestAttachmentLifecycle(t *testing.T) {
	svc, _ := newService(t, Config{})
	v, err := svc.Create("data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.MarkAttached(v.ID, "vm1"); err != nil {
		t.Fatalf("MarkAttached: %v", err)
	}
	if v.Status != StatusAttached || v.AttachedTo != "vm1" {
		t.Errorf("volume = %+v", v)
	}
	if err := svc.MarkAttached(v.ID, "vm2"); !errors.Is(err, ErrInUse) {
		t.Errorf("double attach err = %v", err)
	}
	if err := svc.Delete(v.ID); !errors.Is(err, ErrInUse) {
		t.Errorf("Delete while attached err = %v", err)
	}
	if err := svc.MarkDetached(v.ID); err != nil {
		t.Fatalf("MarkDetached: %v", err)
	}
	if err := svc.MarkDetached(v.ID); !errors.Is(err, ErrNotAttached) {
		t.Errorf("double detach err = %v", err)
	}
	if err := svc.MarkAttached("nope", "vm"); !errors.Is(err, ErrNotFound) {
		t.Errorf("attach unknown err = %v", err)
	}
}

func TestVolumeServedOverISCSI(t *testing.T) {
	var hooked bool
	svc, client := newService(t, Config{
		LoginHook: func(target.LoginInfo) { hooked = true },
	})
	v, err := svc.Create("data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := client.DialAddr(svc.TargetAddr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	sess, err := initiator.Login(conn, initiator.Config{InitiatorIQN: "iqn.c", TargetIQN: v.IQN})
	if err != nil {
		t.Fatalf("Login: %v", err)
	}
	defer sess.Close()
	dev, err := initiator.OpenDevice(sess)
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	want := bytes.Repeat([]byte{0xCD}, 512)
	if err := dev.WriteAt(want, 7); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	direct := make([]byte, 512)
	if err := v.Device().ReadAt(direct, 7); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct, want) {
		t.Error("data did not reach the volume's backing store")
	}
	if !hooked {
		t.Error("login hook never fired")
	}
}

func TestFaultInjection(t *testing.T) {
	svc, _ := newService(t, Config{})
	v, err := svc.Create("data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("boom")
	v.InjectFault(wantErr)
	if err := v.Device().ReadAt(make([]byte, 512), 0); !errors.Is(err, wantErr) {
		t.Errorf("ReadAt after fault err = %v", err)
	}
}

func TestDiskModelApplied(t *testing.T) {
	svc, _ := newService(t, Config{
		DiskRead: blockdev.ServiceModel{PerRequest: 20 * time.Millisecond},
	})
	v, err := svc.Create("slow", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := v.Device().ReadAt(make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Errorf("read took %v, want >= ~20ms from the disk model", el)
	}
	// Writes are not slowed (no write model given).
	start = time.Now()
	if err := v.Device().WriteAt(make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 10*time.Millisecond {
		t.Errorf("write took %v, want fast", el)
	}
}

func TestSnapshot(t *testing.T) {
	svc, client := newService(t, Config{})
	v, err := svc.Create("orig", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0xAB}, 512)
	if err := v.Device().WriteAt(want, 5); err != nil {
		t.Fatal(err)
	}
	snap, err := svc.Snapshot(v.ID, "orig-snap")
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if snap.SizeBytes != v.SizeBytes || snap.ID == v.ID || snap.IQN == v.IQN {
		t.Errorf("snapshot = %+v", snap)
	}
	// The snapshot holds the data...
	got := make([]byte, 512)
	if err := snap.Device().ReadAt(got, 5); err != nil || !bytes.Equal(got, want) {
		t.Errorf("snapshot data: %v", err)
	}
	// ...and is independent of later writes to the original.
	if err := v.Device().WriteAt(bytes.Repeat([]byte{0xFF}, 512), 5); err != nil {
		t.Fatal(err)
	}
	if err := snap.Device().ReadAt(got, 5); err != nil || !bytes.Equal(got, want) {
		t.Error("snapshot not isolated from the original")
	}
	// Snapshots are attachable over iSCSI like any other volume.
	conn, err := client.DialAddr(svc.TargetAddr())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := initiator.Login(conn, initiator.Config{InitiatorIQN: "iqn.c", TargetIQN: snap.IQN})
	if err != nil {
		t.Fatalf("Login to snapshot: %v", err)
	}
	defer sess.Close()
	data, err := sess.Read(5, 1, 512)
	if err != nil || !bytes.Equal(data, want) {
		t.Errorf("iSCSI read of snapshot: %v", err)
	}
	if _, err := svc.Snapshot("nope", "x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Snapshot of unknown err = %v", err)
	}
}
