// Package vswitch implements the SDN-enabled virtual switches of StorM's
// forwarding plane (Figure 3). Each host runs one switch holding a
// prioritized flow table. Rules match a storage flow's 4-tuple plus the
// previous station (the analogue of the paper's source-MAC match) and steer
// the flow to the next middle-box — either transparently (IP forwarding, the
// MB-FWD mode) or by terminating the connection at the middle-box's relay.
//
// The flow table is published RCU-style: writers (Install/Remove/
// RemovePrefix) build a new immutable ruleSet under the writer mutex and
// swap it in with one atomic store, while Lookup — the per-packet path —
// reads the current snapshot without taking any lock and without
// allocating. Non-wildcard rules are additionally indexed by their exact
// (flow, station) key, so the common fully-specified match is a single map
// probe instead of a linear scan.
package vswitch

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/netsim"
)

// Mode says how a steered middle-box handles the flow.
type Mode int

// Steering modes.
const (
	// ModeForward passes packets through the middle-box's kernel
	// forwarding path without terminating the connection (MB-FWD).
	ModeForward Mode = iota + 1
	// ModeTerminate lands the connection on the middle-box's relay
	// listener (passive/active relay).
	ModeTerminate
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case ModeForward:
		return "forward"
	case ModeTerminate:
		return "terminate"
	default:
		return "mode(?)"
	}
}

// Match selects flows at a switch. Zero fields are wildcards. FromStation
// matches the station the packet came from (source-MAC analogue): the
// previous middle-box name, or "" for "any".
type Match struct {
	SrcIP       string
	SrcPort     int
	DstIP       string
	DstPort     int
	FromStation string
}

// Matches reports whether the rule selects the flow arriving from station.
func (m Match) Matches(f netsim.Flow, station string) bool {
	if m.SrcIP != "" && m.SrcIP != f.SrcIP {
		return false
	}
	if m.SrcPort != 0 && m.SrcPort != f.SrcPort {
		return false
	}
	if m.DstIP != "" && m.DstIP != f.DstIP {
		return false
	}
	if m.DstPort != 0 && m.DstPort != f.DstPort {
		return false
	}
	if m.FromStation != "" && m.FromStation != station {
		return false
	}
	return true
}

// exact reports whether the match has no wildcard fields, i.e. it selects
// exactly one (flow, station) key and can live in the exact-match index.
func (m Match) exact() bool {
	return m.SrcIP != "" && m.SrcPort != 0 && m.DstIP != "" && m.DstPort != 0 && m.FromStation != ""
}

// exactKey is the exact-match index key: the full 4-tuple plus the arriving
// station.
type exactKey struct {
	srcIP   string
	srcPort int
	dstIP   string
	dstPort int
	station string
}

// Action is the rule's steering decision.
type Action struct {
	Mode Mode
	// Station names the next middle-box (its host for forwarding mode).
	// For group actions it names the group; the serving instance comes
	// from Group.Select.
	Station string
	// Host is the physical host the station runs on.
	Host string
	// TerminateAddr is the relay listener address for ModeTerminate.
	TerminateAddr netsim.Addr
	// Group, when non-nil, makes this a select-group action: the next
	// station is not fixed but resolved per flow with sticky affinity.
	// Station/Host/TerminateAddr above are ignored in favour of the
	// selected member's.
	Group *Group
}

// Rule is a prioritized flow-table entry.
type Rule struct {
	ID       string
	Priority int
	Match    Match
	Action   Action

	packets atomic.Int64
}

// Packets returns the number of lookups this rule has matched.
func (r *Rule) Packets() int64 { return r.packets.Load() }

// String renders the rule.
func (r *Rule) String() string {
	return fmt.Sprintf("flow[%s p%d %+v -> %s@%s]", r.ID, r.Priority, r.Match, r.Action.Mode, r.Action.Station)
}

// indexedRule pairs a rule with its position in the evaluation order, so
// the exact-index hit and the wildcard-scan hit can be arbitrated by "who
// comes first in the table".
type indexedRule struct {
	r   *Rule
	pos int
}

// ruleSet is one immutable snapshot of the flow table. Readers obtain it
// with a single atomic load and never see a partially-updated table;
// writers replace it wholesale (copy-on-write).
type ruleSet struct {
	// rules is the full table in evaluation order (priority desc, install
	// order asc). Shared with Rules() callers: never mutated after publish.
	rules []*Rule
	// wild lists the rules with at least one wildcard field, in evaluation
	// order.
	wild []indexedRule
	// exact indexes fully-specified rules by their (flow, station) key.
	// When several exact rules share a key, the earliest in evaluation
	// order wins (the only one a scan could ever return).
	exact map[exactKey]indexedRule
}

var emptyRuleSet = &ruleSet{}

// Switch is one host's SDN-enabled virtual switch.
type Switch struct {
	host string

	set atomic.Pointer[ruleSet]

	mu    sync.Mutex // serializes writers; Lookup never takes it
	seq   int
	order map[string]int
}

// New creates a switch for the named host.
func New(host string) *Switch {
	s := &Switch{host: host, order: make(map[string]int)}
	s.set.Store(emptyRuleSet)
	return s
}

// Host returns the host the switch runs on.
func (s *Switch) Host() string { return s.host }

// publish builds the derived indexes for an evaluation-ordered rule slice
// and swaps the snapshot in. Caller holds s.mu.
func (s *Switch) publish(rules []*Rule) {
	rs := &ruleSet{rules: rules}
	for i, r := range rules {
		if r.Match.exact() {
			if rs.exact == nil {
				rs.exact = make(map[exactKey]indexedRule)
			}
			k := exactKey{r.Match.SrcIP, r.Match.SrcPort, r.Match.DstIP, r.Match.DstPort, r.Match.FromStation}
			if _, dup := rs.exact[k]; !dup {
				rs.exact[k] = indexedRule{r, i}
			}
			continue
		}
		rs.wild = append(rs.wild, indexedRule{r, i})
	}
	s.set.Store(rs)
}

// Install adds a rule. IDs must be unique per switch.
func (s *Switch) Install(r *Rule) error {
	if r.ID == "" {
		return fmt.Errorf("vswitch: rule must have an ID")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.order[r.ID]; ok {
		return fmt.Errorf("vswitch: duplicate rule ID %q on %s", r.ID, s.host)
	}
	s.order[r.ID] = s.seq
	s.seq++
	cur := s.set.Load().rules
	rules := make([]*Rule, 0, len(cur)+1)
	rules = append(rules, cur...)
	rules = append(rules, r)
	sort.SliceStable(rules, func(i, j int) bool {
		if rules[i].Priority != rules[j].Priority {
			return rules[i].Priority > rules[j].Priority
		}
		return s.order[rules[i].ID] < s.order[rules[j].ID]
	})
	s.publish(rules)
	return nil
}

// Remove deletes a rule by ID (no-op when absent).
func (s *Switch) Remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.order[id]; !ok {
		return
	}
	delete(s.order, id)
	cur := s.set.Load().rules
	rules := make([]*Rule, 0, len(cur)-1)
	for _, r := range cur {
		if r.ID != id {
			rules = append(rules, r)
		}
	}
	s.publish(rules)
}

// RemovePrefix deletes every rule whose ID begins with prefix, used to tear
// down a whole chain atomically. When no rule carries the prefix the
// current snapshot is kept as-is, so sweeping a switch the chain never
// touched costs no allocation.
func (s *Switch) RemovePrefix(prefix string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.set.Load().rules
	n := 0
	for _, r := range cur {
		if len(r.ID) >= len(prefix) && r.ID[:len(prefix)] == prefix {
			n++
		}
	}
	if n == 0 {
		return
	}
	rules := make([]*Rule, 0, len(cur)-n)
	for _, r := range cur {
		if len(r.ID) >= len(prefix) && r.ID[:len(prefix)] == prefix {
			delete(s.order, r.ID)
			continue
		}
		rules = append(rules, r)
	}
	s.publish(rules)
}

// Lookup finds the highest-priority rule matching the flow arriving from
// station, bumping its packet counter. It returns nil when no rule matches
// (normal L2/L3 forwarding applies). Lookup is lock-free and allocation-
// free: it reads one immutable snapshot, probes the exact-match index, and
// scans only the wildcard rules that could outrank the indexed hit.
func (s *Switch) Lookup(f netsim.Flow, station string) *Rule {
	rs := s.set.Load()
	var best *Rule
	bestPos := int(^uint(0) >> 1) // max int
	if rs.exact != nil {
		if ir, ok := rs.exact[exactKey{f.SrcIP, f.SrcPort, f.DstIP, f.DstPort, station}]; ok {
			best, bestPos = ir.r, ir.pos
		}
	}
	for _, ir := range rs.wild {
		if ir.pos >= bestPos {
			break // ordered: nothing later can outrank the exact hit
		}
		if ir.r.Match.Matches(f, station) {
			best = ir.r
			break
		}
	}
	if best != nil {
		best.packets.Add(1)
	}
	return best
}

// Rules returns the current snapshot in evaluation order. The slice is the
// switch's immutable published table: callers may read it freely but must
// not modify it. Unlike the pre-RCU implementation this is O(1) — pollers
// under churn no longer induce a quadratic copy.
func (s *Switch) Rules() []*Rule {
	return s.set.Load().rules
}

// Len returns the number of installed rules.
func (s *Switch) Len() int {
	return len(s.set.Load().rules)
}
