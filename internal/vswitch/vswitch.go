// Package vswitch implements the SDN-enabled virtual switches of StorM's
// forwarding plane (Figure 3). Each host runs one switch holding a
// prioritized flow table. Rules match a storage flow's 4-tuple plus the
// previous station (the analogue of the paper's source-MAC match) and steer
// the flow to the next middle-box — either transparently (IP forwarding, the
// MB-FWD mode) or by terminating the connection at the middle-box's relay.
package vswitch

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/netsim"
)

// Mode says how a steered middle-box handles the flow.
type Mode int

// Steering modes.
const (
	// ModeForward passes packets through the middle-box's kernel
	// forwarding path without terminating the connection (MB-FWD).
	ModeForward Mode = iota + 1
	// ModeTerminate lands the connection on the middle-box's relay
	// listener (passive/active relay).
	ModeTerminate
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case ModeForward:
		return "forward"
	case ModeTerminate:
		return "terminate"
	default:
		return "mode(?)"
	}
}

// Match selects flows at a switch. Zero fields are wildcards. FromStation
// matches the station the packet came from (source-MAC analogue): the
// previous middle-box name, or "" for "any".
type Match struct {
	SrcIP       string
	SrcPort     int
	DstIP       string
	DstPort     int
	FromStation string
}

// Matches reports whether the rule selects the flow arriving from station.
func (m Match) Matches(f netsim.Flow, station string) bool {
	if m.SrcIP != "" && m.SrcIP != f.SrcIP {
		return false
	}
	if m.SrcPort != 0 && m.SrcPort != f.SrcPort {
		return false
	}
	if m.DstIP != "" && m.DstIP != f.DstIP {
		return false
	}
	if m.DstPort != 0 && m.DstPort != f.DstPort {
		return false
	}
	if m.FromStation != "" && m.FromStation != station {
		return false
	}
	return true
}

// Action is the rule's steering decision.
type Action struct {
	Mode Mode
	// Station names the next middle-box (its host for forwarding mode).
	// For group actions it names the group; the serving instance comes
	// from Group.Select.
	Station string
	// Host is the physical host the station runs on.
	Host string
	// TerminateAddr is the relay listener address for ModeTerminate.
	TerminateAddr netsim.Addr
	// Group, when non-nil, makes this a select-group action: the next
	// station is not fixed but resolved per flow with sticky affinity.
	// Station/Host/TerminateAddr above are ignored in favour of the
	// selected member's.
	Group *Group
}

// Rule is a prioritized flow-table entry.
type Rule struct {
	ID       string
	Priority int
	Match    Match
	Action   Action

	packets atomic.Int64
}

// Packets returns the number of lookups this rule has matched.
func (r *Rule) Packets() int64 { return r.packets.Load() }

// String renders the rule.
func (r *Rule) String() string {
	return fmt.Sprintf("flow[%s p%d %+v -> %s@%s]", r.ID, r.Priority, r.Match, r.Action.Mode, r.Action.Station)
}

// Switch is one host's SDN-enabled virtual switch.
type Switch struct {
	host string

	mu    sync.Mutex
	rules []*Rule
	seq   int
	order map[string]int
}

// New creates a switch for the named host.
func New(host string) *Switch {
	return &Switch{host: host, order: make(map[string]int)}
}

// Host returns the host the switch runs on.
func (s *Switch) Host() string { return s.host }

// Install adds a rule. IDs must be unique per switch.
func (s *Switch) Install(r *Rule) error {
	if r.ID == "" {
		return fmt.Errorf("vswitch: rule must have an ID")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.order[r.ID]; ok {
		return fmt.Errorf("vswitch: duplicate rule ID %q on %s", r.ID, s.host)
	}
	s.order[r.ID] = s.seq
	s.seq++
	s.rules = append(s.rules, r)
	sort.SliceStable(s.rules, func(i, j int) bool {
		if s.rules[i].Priority != s.rules[j].Priority {
			return s.rules[i].Priority > s.rules[j].Priority
		}
		return s.order[s.rules[i].ID] < s.order[s.rules[j].ID]
	})
	return nil
}

// Remove deletes a rule by ID (no-op when absent).
func (s *Switch) Remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, r := range s.rules {
		if r.ID == id {
			s.rules = append(s.rules[:i], s.rules[i+1:]...)
			delete(s.order, id)
			return
		}
	}
}

// RemovePrefix deletes every rule whose ID begins with prefix, used to tear
// down a whole chain atomically.
func (s *Switch) RemovePrefix(prefix string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.rules[:0]
	for _, r := range s.rules {
		if len(r.ID) >= len(prefix) && r.ID[:len(prefix)] == prefix {
			delete(s.order, r.ID)
			continue
		}
		kept = append(kept, r)
	}
	s.rules = kept
}

// Lookup finds the highest-priority rule matching the flow arriving from
// station, bumping its packet counter. It returns nil when no rule matches
// (normal L2/L3 forwarding applies).
func (s *Switch) Lookup(f netsim.Flow, station string) *Rule {
	s.mu.Lock()
	rules := make([]*Rule, len(s.rules))
	copy(rules, s.rules)
	s.mu.Unlock()
	for _, r := range rules {
		if r.Match.Matches(f, station) {
			r.packets.Add(1)
			return r
		}
	}
	return nil
}

// Rules returns a snapshot in evaluation order.
func (s *Switch) Rules() []*Rule {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Rule, len(s.rules))
	copy(out, s.rules)
	return out
}

// Len returns the number of installed rules.
func (s *Switch) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.rules)
}
