package vswitch

import (
	"sync"
	"testing"

	"repro/internal/netsim"
)

func storageFlow() netsim.Flow {
	return netsim.Flow{
		Net:     netsim.InstanceNet,
		SrcIP:   "192.168.0.10",
		SrcPort: 40001,
		DstIP:   "192.168.0.20",
		DstPort: 3260,
	}
}

func TestMatchSemantics(t *testing.T) {
	f := storageFlow()
	tests := []struct {
		name    string
		give    Match
		station string
		want    bool
	}{
		{"wildcard", Match{}, "any", true},
		{"four tuple", Match{SrcIP: f.SrcIP, SrcPort: f.SrcPort, DstIP: f.DstIP, DstPort: f.DstPort}, "", true},
		{"from station", Match{FromStation: "mb1"}, "mb1", true},
		{"wrong station", Match{FromStation: "mb1"}, "mb2", false},
		{"wrong src port", Match{SrcPort: 1}, "", false},
		{"wrong dst", Match{DstIP: "1.2.3.4"}, "", false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.give.Matches(f, tt.station); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSwitchPriorityAndCounters(t *testing.T) {
	s := New("compute1")
	if s.Host() != "compute1" {
		t.Errorf("Host() = %q", s.Host())
	}
	mustInstall(t, s, &Rule{ID: "catchall", Priority: 0, Match: Match{},
		Action: Action{Mode: ModeForward, Station: "default"}})
	mustInstall(t, s, &Rule{ID: "steer", Priority: 100, Match: Match{DstPort: 3260},
		Action: Action{Mode: ModeForward, Station: "mb1", Host: "host4"}})

	r := s.Lookup(storageFlow(), "")
	if r == nil || r.ID != "steer" {
		t.Fatalf("Lookup = %v, want steer rule", r)
	}
	if r.Packets() != 1 {
		t.Errorf("Packets = %d, want 1", r.Packets())
	}
	other := storageFlow()
	other.DstPort = 80
	if r := s.Lookup(other, ""); r == nil || r.ID != "catchall" {
		t.Errorf("Lookup(other) = %v, want catchall", r)
	}
}

func TestSwitchChainByStation(t *testing.T) {
	// The Figure 3 pattern: first rule matches traffic from the gateway and
	// steers to MB1; the second matches traffic from MB1 and steers to MB2.
	s := New("h")
	mustInstall(t, s, &Rule{ID: "c1", Priority: 10,
		Match:  Match{DstPort: 3260, FromStation: "ingress"},
		Action: Action{Mode: ModeForward, Station: "mb1", Host: "h4"}})
	mustInstall(t, s, &Rule{ID: "c2", Priority: 10,
		Match:  Match{DstPort: 3260, FromStation: "mb1"},
		Action: Action{Mode: ModeForward, Station: "mb2", Host: "h5"}})

	f := storageFlow()
	if r := s.Lookup(f, "ingress"); r == nil || r.Action.Station != "mb1" {
		t.Errorf("from ingress: %v, want steer to mb1", r)
	}
	if r := s.Lookup(f, "mb1"); r == nil || r.Action.Station != "mb2" {
		t.Errorf("from mb1: %v, want steer to mb2", r)
	}
	if r := s.Lookup(f, "mb2"); r != nil {
		t.Errorf("from mb2: %v, want normal forwarding (nil)", r)
	}
}

func TestSwitchRemove(t *testing.T) {
	s := New("h")
	mustInstall(t, s, &Rule{ID: "a", Match: Match{}})
	s.Remove("a")
	if s.Len() != 0 {
		t.Errorf("Len = %d after Remove", s.Len())
	}
	s.Remove("a") // no-op
	if r := s.Lookup(storageFlow(), ""); r != nil {
		t.Error("removed rule still matches")
	}
}

func TestSwitchRemovePrefix(t *testing.T) {
	s := New("h")
	mustInstall(t, s, &Rule{ID: "chain1/hop0", Match: Match{}})
	mustInstall(t, s, &Rule{ID: "chain1/hop1", Match: Match{}})
	mustInstall(t, s, &Rule{ID: "chain2/hop0", Match: Match{}})
	s.RemovePrefix("chain1/")
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if s.Rules()[0].ID != "chain2/hop0" {
		t.Errorf("surviving rule = %v", s.Rules()[0])
	}
}

func TestSwitchDuplicateAndEmptyID(t *testing.T) {
	s := New("h")
	mustInstall(t, s, &Rule{ID: "a", Match: Match{}})
	if err := s.Install(&Rule{ID: "a", Match: Match{}}); err == nil {
		t.Error("duplicate ID: want error")
	}
	if err := s.Install(&Rule{Match: Match{}}); err == nil {
		t.Error("empty ID: want error")
	}
}

func TestSwitchTieBreakByInsertion(t *testing.T) {
	s := New("h")
	mustInstall(t, s, &Rule{ID: "first", Priority: 7, Match: Match{}, Action: Action{Station: "x"}})
	mustInstall(t, s, &Rule{ID: "second", Priority: 7, Match: Match{}, Action: Action{Station: "y"}})
	if r := s.Lookup(storageFlow(), ""); r.ID != "first" {
		t.Errorf("tie broken to %q, want first", r.ID)
	}
}

func TestSwitchConcurrency(t *testing.T) {
	s := New("h")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := string(rune('a'+g)) + "-rule"
				_ = s.Install(&Rule{ID: id, Match: Match{}})
				s.Lookup(storageFlow(), "")
				s.Remove(id)
			}
		}(g)
	}
	wg.Wait()
}

func TestModeString(t *testing.T) {
	if ModeForward.String() != "forward" || ModeTerminate.String() != "terminate" {
		t.Error("Mode.String wrong")
	}
	if Mode(0).String() != "mode(?)" {
		t.Error("unknown mode String wrong")
	}
}

func mustInstall(t *testing.T, s *Switch, r *Rule) {
	t.Helper()
	if err := s.Install(r); err != nil {
		t.Fatalf("Install(%v): %v", r, err)
	}
}
