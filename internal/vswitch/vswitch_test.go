package vswitch

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/netsim"
)

func storageFlow() netsim.Flow {
	return netsim.Flow{
		Net:     netsim.InstanceNet,
		SrcIP:   "192.168.0.10",
		SrcPort: 40001,
		DstIP:   "192.168.0.20",
		DstPort: 3260,
	}
}

func TestMatchSemantics(t *testing.T) {
	f := storageFlow()
	tests := []struct {
		name    string
		give    Match
		station string
		want    bool
	}{
		{"wildcard", Match{}, "any", true},
		{"four tuple", Match{SrcIP: f.SrcIP, SrcPort: f.SrcPort, DstIP: f.DstIP, DstPort: f.DstPort}, "", true},
		{"from station", Match{FromStation: "mb1"}, "mb1", true},
		{"wrong station", Match{FromStation: "mb1"}, "mb2", false},
		{"wrong src port", Match{SrcPort: 1}, "", false},
		{"wrong dst", Match{DstIP: "1.2.3.4"}, "", false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.give.Matches(f, tt.station); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSwitchPriorityAndCounters(t *testing.T) {
	s := New("compute1")
	if s.Host() != "compute1" {
		t.Errorf("Host() = %q", s.Host())
	}
	mustInstall(t, s, &Rule{ID: "catchall", Priority: 0, Match: Match{},
		Action: Action{Mode: ModeForward, Station: "default"}})
	mustInstall(t, s, &Rule{ID: "steer", Priority: 100, Match: Match{DstPort: 3260},
		Action: Action{Mode: ModeForward, Station: "mb1", Host: "host4"}})

	r := s.Lookup(storageFlow(), "")
	if r == nil || r.ID != "steer" {
		t.Fatalf("Lookup = %v, want steer rule", r)
	}
	if r.Packets() != 1 {
		t.Errorf("Packets = %d, want 1", r.Packets())
	}
	other := storageFlow()
	other.DstPort = 80
	if r := s.Lookup(other, ""); r == nil || r.ID != "catchall" {
		t.Errorf("Lookup(other) = %v, want catchall", r)
	}
}

func TestSwitchChainByStation(t *testing.T) {
	// The Figure 3 pattern: first rule matches traffic from the gateway and
	// steers to MB1; the second matches traffic from MB1 and steers to MB2.
	s := New("h")
	mustInstall(t, s, &Rule{ID: "c1", Priority: 10,
		Match:  Match{DstPort: 3260, FromStation: "ingress"},
		Action: Action{Mode: ModeForward, Station: "mb1", Host: "h4"}})
	mustInstall(t, s, &Rule{ID: "c2", Priority: 10,
		Match:  Match{DstPort: 3260, FromStation: "mb1"},
		Action: Action{Mode: ModeForward, Station: "mb2", Host: "h5"}})

	f := storageFlow()
	if r := s.Lookup(f, "ingress"); r == nil || r.Action.Station != "mb1" {
		t.Errorf("from ingress: %v, want steer to mb1", r)
	}
	if r := s.Lookup(f, "mb1"); r == nil || r.Action.Station != "mb2" {
		t.Errorf("from mb1: %v, want steer to mb2", r)
	}
	if r := s.Lookup(f, "mb2"); r != nil {
		t.Errorf("from mb2: %v, want normal forwarding (nil)", r)
	}
}

func TestSwitchRemove(t *testing.T) {
	s := New("h")
	mustInstall(t, s, &Rule{ID: "a", Match: Match{}})
	s.Remove("a")
	if s.Len() != 0 {
		t.Errorf("Len = %d after Remove", s.Len())
	}
	s.Remove("a") // no-op
	if r := s.Lookup(storageFlow(), ""); r != nil {
		t.Error("removed rule still matches")
	}
}

func TestSwitchRemovePrefix(t *testing.T) {
	s := New("h")
	mustInstall(t, s, &Rule{ID: "chain1/hop0", Match: Match{}})
	mustInstall(t, s, &Rule{ID: "chain1/hop1", Match: Match{}})
	mustInstall(t, s, &Rule{ID: "chain2/hop0", Match: Match{}})
	s.RemovePrefix("chain1/")
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if s.Rules()[0].ID != "chain2/hop0" {
		t.Errorf("surviving rule = %v", s.Rules()[0])
	}
}

func TestSwitchDuplicateAndEmptyID(t *testing.T) {
	s := New("h")
	mustInstall(t, s, &Rule{ID: "a", Match: Match{}})
	if err := s.Install(&Rule{ID: "a", Match: Match{}}); err == nil {
		t.Error("duplicate ID: want error")
	}
	if err := s.Install(&Rule{Match: Match{}}); err == nil {
		t.Error("empty ID: want error")
	}
}

func TestSwitchTieBreakByInsertion(t *testing.T) {
	s := New("h")
	mustInstall(t, s, &Rule{ID: "first", Priority: 7, Match: Match{}, Action: Action{Station: "x"}})
	mustInstall(t, s, &Rule{ID: "second", Priority: 7, Match: Match{}, Action: Action{Station: "y"}})
	if r := s.Lookup(storageFlow(), ""); r.ID != "first" {
		t.Errorf("tie broken to %q, want first", r.ID)
	}
}

func TestSwitchConcurrency(t *testing.T) {
	s := New("h")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := string(rune('a'+g)) + "-rule"
				_ = s.Install(&Rule{ID: id, Match: Match{}})
				s.Lookup(storageFlow(), "")
				s.Remove(id)
			}
		}(g)
	}
	wg.Wait()
}

// TestLookupAllocFree gates the tentpole property: the per-packet Lookup
// path performs zero heap allocations, for both exact-index hits and
// wildcard-scan hits, on a table big enough that the old copy-the-slice
// implementation would have allocated every call.
func TestLookupAllocFree(t *testing.T) {
	s := New("h")
	for i := 0; i < 200; i++ {
		mustInstall(t, s, &Rule{
			ID: fmt.Sprintf("chain%d/hop0", i), Priority: 100,
			Match:  Match{DstIP: fmt.Sprintf("192.168.1.%d", i), DstPort: 3260, FromStation: "ingress"},
			Action: Action{Mode: ModeForward, Station: "mb"},
		})
	}
	mustInstall(t, s, &Rule{
		ID: "exact", Priority: 100,
		Match:  Match{SrcIP: "192.168.0.10", SrcPort: 40001, DstIP: "192.168.0.20", DstPort: 3260, FromStation: "ingress"},
		Action: Action{Mode: ModeForward, Station: "mbX"},
	})
	f := storageFlow()
	cases := map[string]func(){
		"exact": func() { s.Lookup(f, "ingress") },
		"wildcard": func() {
			s.Lookup(netsim.Flow{Net: netsim.InstanceNet, SrcIP: "10.9.9.9", SrcPort: 7, DstIP: "192.168.1.7", DstPort: 3260}, "ingress")
		},
		"miss": func() { s.Lookup(f, "nowhere") },
	}
	for name, fn := range cases {
		fn() // warm up
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("Lookup(%s) allocates %.1f allocs/op, want 0", name, allocs)
		}
	}
}

// linearSwitch is the pre-RCU reference implementation: a mutex-guarded
// prioritized slice scanned front to back. The randomized equivalence test
// drives it in lockstep with the indexed Switch.
type linearSwitch struct {
	rules []*Rule
	order map[string]int
	seq   int
}

func (l *linearSwitch) install(r *Rule) {
	l.order[r.ID] = l.seq
	l.seq++
	l.rules = append(l.rules, r)
	sort.SliceStable(l.rules, func(i, j int) bool {
		if l.rules[i].Priority != l.rules[j].Priority {
			return l.rules[i].Priority > l.rules[j].Priority
		}
		return l.order[l.rules[i].ID] < l.order[l.rules[j].ID]
	})
}

func (l *linearSwitch) remove(id string) {
	for i, r := range l.rules {
		if r.ID == id {
			l.rules = append(l.rules[:i], l.rules[i+1:]...)
			delete(l.order, id)
			return
		}
	}
}

func (l *linearSwitch) removePrefix(prefix string) {
	kept := l.rules[:0]
	for _, r := range l.rules {
		if strings.HasPrefix(r.ID, prefix) {
			delete(l.order, r.ID)
			continue
		}
		kept = append(kept, r)
	}
	l.rules = kept
}

func (l *linearSwitch) lookup(f netsim.Flow, station string) *Rule {
	for _, r := range l.rules {
		if r.Match.Matches(f, station) {
			return r
		}
	}
	return nil
}

// TestLookupEquivalenceRandomized brute-forces the indexed snapshot table
// against the old linear scan: random interleaved Install/Remove/
// RemovePrefix mutations, each followed by lookups of every key in a small
// universe (so exact hits, wildcard hits, shadowing, and misses all occur),
// asserting both implementations always pick the same rule.
func TestLookupEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ips := []string{"10.0.0.1", "10.0.0.2", "10.0.0.3", ""}
	ports := []int{0, 3260, 40001}
	stations := []string{"", "ingress", "mb1", "mb2"}

	randMatch := func() Match {
		return Match{
			SrcIP:       ips[rng.Intn(len(ips))],
			SrcPort:     ports[rng.Intn(len(ports))],
			DstIP:       ips[rng.Intn(len(ips))],
			DstPort:     ports[rng.Intn(len(ports))],
			FromStation: stations[rng.Intn(len(stations))],
		}
	}
	checkAll := func(step int, s *Switch, l *linearSwitch) {
		t.Helper()
		for _, si := range ips[:3] {
			for _, sp := range ports[1:] {
				for _, di := range ips[:3] {
					for _, st := range stations {
						f := netsim.Flow{SrcIP: si, SrcPort: sp, DstIP: di, DstPort: 3260}
						got, want := s.Lookup(f, st), l.lookup(f, st)
						gotID, wantID := "", ""
						if got != nil {
							gotID = got.ID
						}
						if want != nil {
							wantID = want.ID
						}
						if gotID != wantID {
							t.Fatalf("step %d: Lookup(%+v, %q) = %q, linear scan = %q", step, f, st, gotID, wantID)
						}
					}
				}
			}
		}
	}

	s := New("h")
	l := &linearSwitch{order: make(map[string]int)}
	live := make(map[string]bool)
	next := 0
	for step := 0; step < 400; step++ {
		switch op := rng.Intn(10); {
		case op < 6 || len(live) == 0: // install
			id := fmt.Sprintf("c%d/hop%d", next%7, next)
			next++
			m := randMatch()
			prio := rng.Intn(3) * 50
			mustInstall(t, s, &Rule{ID: id, Priority: prio, Match: m, Action: Action{Mode: ModeForward, Station: id}})
			l.install(&Rule{ID: id, Priority: prio, Match: m, Action: Action{Mode: ModeForward, Station: id}})
			live[id] = true
		case op < 9: // remove one
			for id := range live {
				s.Remove(id)
				l.remove(id)
				delete(live, id)
				break
			}
		default: // remove a whole chain prefix
			prefix := fmt.Sprintf("c%d/", rng.Intn(7))
			s.RemovePrefix(prefix)
			l.removePrefix(prefix)
			for id := range live {
				if strings.HasPrefix(id, prefix) {
					delete(live, id)
				}
			}
		}
		if s.Len() != len(l.rules) {
			t.Fatalf("step %d: Len = %d, linear = %d", step, s.Len(), len(l.rules))
		}
		checkAll(step, s, l)
	}
}

func TestModeString(t *testing.T) {
	if ModeForward.String() != "forward" || ModeTerminate.String() != "terminate" {
		t.Error("Mode.String wrong")
	}
	if Mode(0).String() != "mode(?)" {
		t.Error("unknown mode String wrong")
	}
}

func mustInstall(t *testing.T, s *Switch, r *Rule) {
	t.Helper()
	if err := s.Install(r); err != nil {
		t.Fatalf("Install(%v): %v", r, err)
	}
}
