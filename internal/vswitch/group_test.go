package vswitch

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/netsim"
)

func gm(station, host string) GroupMember {
	return GroupMember{Station: station, Host: host, TerminateAddr: netsim.Addr{Net: netsim.InstanceNet, IP: "192.168.10." + station, Port: 3260}}
}

func flowN(n int) netsim.Flow {
	return netsim.Flow{Net: netsim.InstanceNet, SrcIP: "192.168.20.1", SrcPort: 40000 + n, DstIP: "192.168.20.2", DstPort: 3260}
}

func TestGroupSelectIsSticky(t *testing.T) {
	g := NewGroup("g")
	g.SetMembers([]GroupMember{gm("a", "h1"), gm("b", "h2")})
	f := flowN(1)
	m1, ok := g.Select(f)
	if !ok {
		t.Fatal("select failed")
	}
	for i := 0; i < 10; i++ {
		m, _ := g.Select(f)
		if m.Station != m1.Station {
			t.Fatalf("flow rebound from %s to %s", m1.Station, m.Station)
		}
	}
}

func TestGroupSpreadsNewFlows(t *testing.T) {
	g := NewGroup("g")
	g.SetMembers([]GroupMember{gm("a", "h1"), gm("b", "h2"), gm("c", "h3"), gm("d", "h4")})
	for i := 0; i < 8; i++ {
		if _, ok := g.Select(flowN(i)); !ok {
			t.Fatal("select failed")
		}
	}
	for st, n := range g.Load() {
		if n != 2 {
			t.Fatalf("least-loaded select should balance: member %s has %d of 8 flows (%v)", st, n, g.Load())
		}
	}
}

func TestGroupScaleUpKeepsBindings(t *testing.T) {
	g := NewGroup("g")
	g.SetMembers([]GroupMember{gm("a", "h1")})
	before := make(map[netsim.Flow]string)
	for i := 0; i < 4; i++ {
		m, _ := g.Select(flowN(i))
		before[flowN(i)] = m.Station
	}
	g.SetMembers([]GroupMember{gm("a", "h1"), gm("b", "h2")})
	for f, st := range before {
		m, _ := g.Select(f)
		if m.Station != st {
			t.Fatalf("scale-up remapped flow %v: %s -> %s", f, st, m.Station)
		}
	}
	// New flows land on the empty member.
	m, _ := g.Select(flowN(100))
	if m.Station != "b" {
		t.Fatalf("new flow should fill the new member, got %s", m.Station)
	}
}

func TestGroupDrainingExcludedFromNewFlows(t *testing.T) {
	g := NewGroup("g")
	g.SetMembers([]GroupMember{gm("a", "h1"), gm("b", "h2")})
	g.SetDraining("a", true)
	for i := 0; i < 6; i++ {
		m, ok := g.Select(flowN(i))
		if !ok || m.Station != "b" {
			t.Fatalf("new flow %d selected draining member (got %v ok=%v)", i, m.Station, ok)
		}
	}
	if !g.Draining("a") {
		t.Fatal("drain mark lost")
	}
}

func TestGroupDrainRebindsOnReconnect(t *testing.T) {
	g := NewGroup("g")
	g.SetMembers([]GroupMember{gm("a", "h1"), gm("b", "h2")})
	// Force a binding onto a, then drain a.
	var onA netsim.Flow
	for i := 0; ; i++ {
		f := flowN(i)
		m, _ := g.Select(f)
		if m.Station == "a" {
			onA = f
			break
		}
	}
	g.SetDraining("a", true)
	// A re-walk of the same flow (reconnect) must move off the draining
	// member, which refuses new sessions.
	m, ok := g.Select(onA)
	if !ok || m.Station != "b" {
		t.Fatalf("reconnecting flow stayed on draining member: %v ok=%v", m.Station, ok)
	}
}

func TestGroupAllDrainingStillServes(t *testing.T) {
	g := NewGroup("g")
	g.SetMembers([]GroupMember{gm("a", "h1")})
	g.SetDraining("a", true)
	if _, ok := g.Select(flowN(1)); !ok {
		t.Fatal("group with only draining members must still resolve rather than black-hole")
	}
}

func TestGroupRemoveMemberPrunesBindings(t *testing.T) {
	g := NewGroup("g")
	g.SetMembers([]GroupMember{gm("a", "h1"), gm("b", "h2")})
	f := flowN(1)
	m, _ := g.Select(f)
	other := "a"
	if m.Station == "a" {
		other = "b"
	}
	g.SetMembers([]GroupMember{gm(other, "hx")})
	got, ok := g.Select(f)
	if !ok || got.Station != other {
		t.Fatalf("flow of removed member should rebind to %s, got %v ok=%v", other, got.Station, ok)
	}
	if _, bound := g.Binding(flowN(2)); bound {
		t.Fatal("unknown flow reported bound")
	}
}

func TestGroupEmpty(t *testing.T) {
	g := NewGroup("g")
	if _, ok := g.Select(flowN(1)); ok {
		t.Fatal("empty group resolved a member")
	}
}

func TestGroupConcurrentSelect(t *testing.T) {
	g := NewGroup("g")
	g.SetMembers([]GroupMember{gm("a", "h1"), gm("b", "h2"), gm("c", "h3")})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f := flowN(w)
			first, ok := g.Select(f)
			if !ok {
				errs <- fmt.Errorf("select failed")
				return
			}
			for i := 0; i < 200; i++ {
				m, _ := g.Select(f)
				if m.Station != first.Station {
					errs <- fmt.Errorf("flow %d moved %s -> %s", w, first.Station, m.Station)
					return
				}
				if i == 50 && w == 0 {
					g.SetMembers(append(g.Members(), gm("d", "h4")))
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
