package vswitch

import (
	"hash/fnv"
	"sync"

	"repro/internal/netsim"
)

// GroupMember is one instance of a replicated middle-box position: a
// station a select group can steer flows to.
type GroupMember struct {
	// Station is the instance's unique station name.
	Station string
	// Host is the physical host the instance runs on.
	Host string
	// TerminateAddr is the instance's relay listener (ModeTerminate groups).
	TerminateAddr netsim.Addr
}

// Group is a select group: the steering primitive behind horizontally
// scaled middle-boxes. A rule whose Action references a group does not name
// a fixed next station; instead each flow is assigned a member on first
// lookup and sticks to it for the flow's lifetime, so the per-connection
// TCP/relay state a terminating middle-box accumulates stays on one
// instance (flow-affine steering). Members marked draining receive no new
// flows but keep serving the flows already bound to them until those
// connections end.
//
// A Group is shared by reference: the controller installs the same *Group
// in rules on every switch that steers to the replicated position, so the
// binding table is consistent no matter where on the path selection
// happens.
type Group struct {
	id string

	mu       sync.Mutex
	members  []GroupMember
	draining map[string]bool
	bindings map[netsim.Flow]string // flow -> member station
}

// NewGroup creates an empty select group.
func NewGroup(id string) *Group {
	return &Group{
		id:       id,
		draining: make(map[string]bool),
		bindings: make(map[netsim.Flow]string),
	}
}

// ID returns the group's name.
func (g *Group) ID() string { return g.id }

// SetMembers replaces the member list. Bindings to members that survive the
// change are preserved (a scale event never remaps an existing flow);
// bindings and drain marks of removed members are pruned, and their flows
// rebind on their next lookup.
func (g *Group) SetMembers(members []GroupMember) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.members = append([]GroupMember(nil), members...)
	present := make(map[string]bool, len(members))
	for _, m := range members {
		present[m.Station] = true
	}
	for f, st := range g.bindings {
		if !present[st] {
			delete(g.bindings, f)
		}
	}
	for st := range g.draining {
		if !present[st] {
			delete(g.draining, st)
		}
	}
}

// Members returns a snapshot of the member list.
func (g *Group) Members() []GroupMember {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]GroupMember(nil), g.members...)
}

// Len returns the number of members.
func (g *Group) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.members)
}

// SetDraining marks (or unmarks) a member as draining: new flows are no
// longer assigned to it, and flows that were bound to it rebind elsewhere
// on their next connection setup (its established connections are routed
// already and keep flowing).
func (g *Group) SetDraining(station string, draining bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if draining {
		g.draining[station] = true
	} else {
		delete(g.draining, station)
	}
}

// Draining reports whether the member is refusing new flows.
func (g *Group) Draining(station string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining[station]
}

// Select resolves the member serving flow f, binding it on first sight.
// New flows go to the least-bound accepting member, with the flow hash
// breaking ties, so load spreads evenly as the group grows; a bound flow
// keeps its member until the member is removed or starts draining. Select
// reports false only when the group has no members at all.
func (g *Group) Select(f netsim.Flow) (GroupMember, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if st, ok := g.bindings[f]; ok {
		if m := g.memberLocked(st); m != nil && !g.draining[st] {
			return *m, true
		}
		// Member gone or draining: this is a fresh connection setup (bound
		// routes are resolved once, at dial), so rebind among the living.
		delete(g.bindings, f)
	}
	if len(g.members) == 0 {
		return GroupMember{}, false
	}
	elig := make([]GroupMember, 0, len(g.members))
	for _, m := range g.members {
		if !g.draining[m.Station] {
			elig = append(elig, m)
		}
	}
	if len(elig) == 0 {
		// Every member is draining; keep serving rather than black-hole.
		elig = append(elig, g.members...)
	}
	load := g.loadLocked()
	min := -1
	for _, m := range elig {
		if min < 0 || load[m.Station] < min {
			min = load[m.Station]
		}
	}
	ties := elig[:0]
	for _, m := range elig {
		if load[m.Station] == min {
			ties = append(ties, m)
		}
	}
	chosen := ties[flowHash(f)%uint64(len(ties))]
	g.bindings[f] = chosen.Station
	return chosen, true
}

// Binding returns the member station a flow is bound to, if any.
func (g *Group) Binding(f netsim.Flow) (string, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	st, ok := g.bindings[f]
	return st, ok
}

// Bindings returns a copy of the full flow→member binding table.
func (g *Group) Bindings() map[netsim.Flow]string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[netsim.Flow]string, len(g.bindings))
	for f, st := range g.bindings {
		out[f] = st
	}
	return out
}

// Forget drops a flow's binding (connection teardown); its next appearance
// selects afresh.
func (g *Group) Forget(f netsim.Flow) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.bindings, f)
}

// Load returns the number of bound flows per member station, including
// stations with zero bindings.
func (g *Group) Load() map[string]int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.loadLocked()
}

func (g *Group) loadLocked() map[string]int {
	load := make(map[string]int, len(g.members))
	for _, m := range g.members {
		load[m.Station] = 0
	}
	for _, st := range g.bindings {
		load[st]++
	}
	return load
}

// Stations returns the member station names in order.
func (g *Group) Stations() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, len(g.members))
	for i, m := range g.members {
		out[i] = m.Station
	}
	return out
}

func (g *Group) memberLocked(station string) *GroupMember {
	for i := range g.members {
		if g.members[i].Station == station {
			return &g.members[i]
		}
	}
	return nil
}

// flowHash digests the flow tuple for deterministic tie-breaking.
func flowHash(f netsim.Flow) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(f.SrcIP))
	_, _ = h.Write([]byte{byte(f.SrcPort >> 8), byte(f.SrcPort), byte(f.Net)})
	_, _ = h.Write([]byte(f.DstIP))
	_, _ = h.Write([]byte{byte(f.DstPort >> 8), byte(f.DstPort)})
	return h.Sum64()
}
