package wal

import (
	"errors"
	"os"
	"testing"

	"repro/internal/faults"
	"repro/internal/xerr"
)

// TestQuotaFullSurfacesTypedError drives the log into its byte quota and
// checks the full lifecycle: typed ErrWALFull classed Exhausted, reclaim via
// commit admitting writes again, and quota growth (pressure release) ending
// the episode.
func TestQuotaFullSurfacesTypedError(t *testing.T) {
	dir := t.TempDir()
	quota := faults.NewDiskFull(4096)
	l, err := Create(dir, Meta{}, Options{SegmentBytes: 1024, Quota: quota})
	if err != nil {
		t.Fatalf("create under quota: %v", err)
	}
	defer l.Close()

	data := make([]byte, 256)
	var seqs []uint64
	var full error
	for i := 0; i < 64; i++ {
		seq, err := l.Append(uint64(i), data)
		if err != nil {
			full = err
			break
		}
		seqs = append(seqs, seq)
	}
	if full == nil {
		t.Fatal("quota never filled")
	}
	if !errors.Is(full, ErrWALFull) {
		t.Fatalf("append over quota: got %v, want ErrWALFull", full)
	}
	if xerr.Classify(full) != xerr.Exhausted {
		t.Fatalf("ErrWALFull classed %v, want Exhausted", xerr.Classify(full))
	}
	if xerr.Retryable(full) {
		t.Fatal("exhausted error must not be retryable without reclaim")
	}

	// Committing everything lets compaction drop leading segments, refunding
	// the quota so the next append admits — the reclaim-before-surfacing
	// path exercised for real.
	for _, seq := range seqs {
		if err := l.Commit(seq); err != nil {
			t.Fatalf("commit %d: %v", seq, err)
		}
	}
	if _, err := l.Append(100, data); err != nil {
		t.Fatalf("append after reclaim: %v", err)
	}

	// And growing the quota (the operator adds disk) admits bigger records.
	quota.Grow(1 << 20)
	for i := 0; i < 16; i++ {
		if _, err := l.Append(uint64(200+i), data); err != nil {
			t.Fatalf("append after grow: %v", err)
		}
	}
}

// TestOpenUnwritableDirTyped pins the satellite: wal.Open on a read-only
// directory must fail with ErrUnwritable, never something a caller could
// mistake for ErrCorrupt or ErrNoSegments.
func TestOpenUnwritableDirTyped(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: permission bits are not enforced")
	}
	dir := t.TempDir()
	l, err := Create(dir, Meta{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o500); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)

	_, _, err = Open(dir, Options{})
	if !errors.Is(err, ErrUnwritable) {
		t.Fatalf("open 0o500 dir: got %v, want ErrUnwritable", err)
	}
	if errors.Is(err, ErrCorrupt) || errors.Is(err, ErrNoSegments) {
		t.Fatalf("unwritable misclassified: %v", err)
	}
	if !xerr.IsTerminal(err) {
		t.Fatalf("ErrUnwritable classed %v, want Terminal", xerr.Classify(err))
	}
}

// TestCreateUnwritableDirTyped covers the Create path against a read-only
// parent.
func TestCreateUnwritableDirTyped(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: permission bits are not enforced")
	}
	parent := t.TempDir()
	if err := os.Chmod(parent, 0o500); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(parent, 0o755)
	_, err := Create(parent+"/log", Meta{}, Options{})
	if !errors.Is(err, ErrUnwritable) {
		t.Fatalf("create under 0o500 parent: got %v, want ErrUnwritable", err)
	}
}
