// Package wal is the crash-durable backing store for the middle-box
// journal: a segmented, file-backed write-ahead log standing in for the
// NVRAM the paper's active relay journals early-acknowledged writes to
// (Section III-B). Every record is length-prefixed and CRC32C-protected
// and carries a monotonic sequence number; appends become durable through
// a group-commit fsync (a configurable window batches concurrent appends
// into one sync), commits are buffered markers that let whole segments be
// compacted away once every append they hold has been applied, and Open
// replays the surviving records after a crash — tolerating a torn final
// record while refusing (with ErrCorrupt) logs damaged anywhere else.
//
// On-disk layout: dir/NNNNNNNN.seg files with contiguous indices. Each
// record is
//
//	| payload length uint32 | crc32c(payload) uint32 | payload |
//
// (little-endian), where payload starts with a one-byte type and the
// record's sequence number:
//
//	meta:   attrs as JSON — written first in every segment so compaction
//	        can drop old segments without losing the log's identity
//	append: LBA uint64 followed by the write data
//	commit: nothing further — the append with this seq reached the backend
//
// A crash can only tear the tail of the newest segment: record writes are
// appended in order and fsync covers the whole file prefix, so the durable
// image is always a prefix of what was written. Recovery leans on exactly
// that — an unreadable record mid-log means corruption, not a crash.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/xerr"
)

// ErrCorrupt reports damage recovery cannot attribute to a torn final
// write: a bad record with more log after it, an impossible length, or a
// sequence regression. Callers must treat the log as unrecoverable rather
// than trust any suffix.
var ErrCorrupt = errors.New("wal: corrupt log")

// ErrClosed reports use of a closed (or crash-killed) log.
var ErrClosed = errors.New("wal: log closed")

// ErrNoSegments reports an Open of a directory holding no segment files: a
// log that was never durably created (a crash between the directory's
// creation and its first segment write), as opposed to a damaged one.
// Nothing was ever acknowledged from such a log, so callers may treat it as
// empty.
var ErrNoSegments = errors.New("wal: no segments")

// ErrWALFull reports that the log's disk space is exhausted — a real ENOSPC
// from the filesystem or a configured Quota that can't cover the record —
// and a segment-reclaim attempt freed nothing. Classed Exhausted: retrying
// helps only after commits release segments or the operator adds space.
var ErrWALFull = xerr.New(xerr.Exhausted, "wal: log full")

// ErrUnwritable reports that the log directory refuses writes (permissions,
// read-only mount) — an environment problem, not damage, so it is distinct
// from ErrCorrupt and ErrNoSegments and classed Terminal: no retry against
// this directory can succeed.
var ErrUnwritable = xerr.New(xerr.Terminal, "wal: directory unwritable")

// Quota bounds the log's on-disk footprint for fault injection: every
// record write first charges its framed size, and compaction refunds
// reclaimed segments. *faults.DiskFull satisfies it.
type Quota interface {
	// Consume charges n bytes, failing (without charging) when the budget
	// can't cover them.
	Consume(n uint64) error
	// Release refunds n bytes.
	Release(n uint64)
}

// Record types.
const (
	recMeta   byte = 1
	recAppend byte = 2
	recCommit byte = 3
)

// recHeaderSize is the fixed per-record header: length + CRC.
const recHeaderSize = 8

// maxRecordBytes bounds a single record's payload; anything larger in a
// header is corruption, not a real record.
const maxRecordBytes = 16 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Meta identifies a log to its recovery consumer: free-form attributes
// written at the head of every segment (the middle-box relay stores the
// backend IQN and next-hop address so a replacement instance knows where
// to replay).
type Meta struct {
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Record is one unapplied append returned by recovery.
type Record struct {
	Seq  uint64
	LBA  uint64
	Data []byte
}

// Recovery is what Open found on disk.
type Recovery struct {
	// Records are the appends with no commit marker, in sequence order —
	// the acknowledged writes whose delivery the crash cut off.
	Records []Record
	// Meta is the log identity from the oldest surviving segment.
	Meta Meta
	// Torn reports that the final record was partially written and has
	// been truncated away.
	Torn bool
	// TruncatedBytes is how much tail the torn-record cleanup removed.
	TruncatedBytes int64
}

// Options tunes a log.
type Options struct {
	// SegmentBytes caps each segment file (default 1 MiB). Appends larger
	// than the cap get a segment of their own.
	SegmentBytes int
	// SyncWindow is the group-commit window: an append becomes durable at
	// the next fsync, which the syncer issues at most once per window, so
	// concurrent appends share one disk flush at the cost of up to one
	// window of added ack latency. 0 syncs inline on every append (still
	// batching appends that piled up behind the sync mutex).
	SyncWindow time.Duration
	// Quota, when set, bounds the log's on-disk bytes: record writes that
	// the budget can't cover fail with ErrWALFull after a reclaim attempt.
	// Used by overload experiments to drive deterministic disk-full.
	Quota Quota
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	return o
}

// Log is an open write-ahead log.
type Log struct {
	dir  string
	opts Options
	meta Meta

	mu       sync.Mutex
	f        *os.File
	firstSeg int
	curSeg   int
	curSize  int64
	nextSeq  uint64
	live     map[int]int    // segment index -> appends not yet committed
	segOf    map[uint64]int // append seq -> segment holding it
	closed   bool
	killed   bool

	// Group commit: writeIdx counts records written, syncIdx the highest
	// writeIdx covered by an fsync. Appenders wait until syncIdx reaches
	// their record; the window syncer (or an inline sync at window 0)
	// advances it.
	syncCond  *sync.Cond
	writeIdx  uint64
	syncIdx   uint64
	syncErr   error
	dirty     bool
	syncerNow chan struct{} // wakes the window syncer
	syncerWG  sync.WaitGroup

	fsyncs    *obs.Counter
	appends   *obs.Counter
	compacted *obs.Counter
	segGauge  *obs.Gauge
}

// Create initializes a fresh log in dir (created if missing; must hold no
// existing segments) and writes the meta record durably before returning.
func Create(dir string, meta Meta, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		if isPermission(err) {
			return nil, fmt.Errorf("%w: create %s: %v", ErrUnwritable, dir, err)
		}
		return nil, fmt.Errorf("wal: create %s: %w", dir, err)
	}
	if segs, err := listSegments(dir); err != nil {
		return nil, err
	} else if len(segs) > 0 {
		return nil, fmt.Errorf("wal: create %s: log already exists (use Open)", dir)
	}
	l := newLog(dir, meta, opts)
	if err := l.openSegment(0); err != nil {
		return nil, err
	}
	if err := l.writeMetaLocked(); err != nil {
		_ = l.f.Close()
		return nil, err
	}
	if err := l.f.Sync(); err != nil {
		_ = l.f.Close()
		return nil, fmt.Errorf("wal: sync meta: %w", err)
	}
	l.startSyncer()
	return l, nil
}

// Open recovers an existing log directory: it scans every segment in
// order, verifies record framing and checksums, truncates a torn final
// record, and returns the log (ready for further appends) together with
// the unapplied records. A log damaged anywhere but the torn tail yields
// ErrCorrupt and no log.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	if len(segs) == 0 {
		return nil, nil, fmt.Errorf("wal: open %s: %w", dir, ErrNoSegments)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i] != segs[i-1]+1 {
			return nil, nil, fmt.Errorf("%w: segment gap %d -> %d", ErrCorrupt, segs[i-1], segs[i])
		}
	}
	// Probe writability up front: a read-only directory can still let the
	// current segment reopen for append (file permissions, not directory
	// ones, govern that), which would defer the failure to the first
	// rotation. Surfacing ErrUnwritable here keeps "bad permissions" from
	// ever being mistaken for corruption mid-run.
	if err := checkWritable(dir); err != nil {
		return nil, nil, err
	}
	rec := &Recovery{}
	pending := make(map[uint64]Record)
	segOf := make(map[uint64]int)
	// Append contiguity and the commit high-water mark are tracked apart:
	// a surviving segment can legitimately open with a commit whose seq is
	// below the next surviving append (a commit-triggered rotation whose
	// older segments compacted away), so commits must never feed the
	// append-gap check — they only floor where new sequence numbers resume.
	var lastAppend, maxCommit uint64
	haveMeta := false
	for i, seg := range segs {
		final := i == len(segs)-1
		if !final {
			// Every live segment starts with a durable meta record; an
			// empty non-final segment means its contents were destroyed.
			if fi, err := os.Stat(segPath(dir, seg)); err == nil && fi.Size() == 0 {
				return nil, nil, fmt.Errorf("%w: empty non-final segment %d", ErrCorrupt, seg)
			}
		}
		keep, err := scanSegment(segPath(dir, seg), final, func(typ byte, seq uint64, payload []byte) error {
			switch typ {
			case recMeta:
				if !haveMeta {
					if err := json.Unmarshal(payload, &rec.Meta); err != nil {
						return fmt.Errorf("%w: meta record: %v", ErrCorrupt, err)
					}
					haveMeta = true
				}
			case recAppend:
				// Appends take consecutive seqs and compaction only drops
				// whole leading segments, so within the surviving log the
				// append seqs are contiguous; a gap means records were
				// silently lost (e.g. a mid-log truncation on a record
				// boundary), which torn-write semantics cannot explain.
				if lastAppend != 0 && seq != lastAppend+1 {
					return fmt.Errorf("%w: append seq %d after %d (gap or regression)", ErrCorrupt, seq, lastAppend)
				}
				lastAppend = seq
				if len(payload) < 8 {
					return fmt.Errorf("%w: short append payload", ErrCorrupt)
				}
				pending[seq] = Record{
					Seq:  seq,
					LBA:  binary.LittleEndian.Uint64(payload),
					Data: append([]byte(nil), payload[8:]...),
				}
				segOf[seq] = seg
			case recCommit:
				// A commit for a seq we never saw belongs to an append in
				// a segment compaction already removed — applied, gone.
				// It still advances the seq high-water mark: its append
				// preceded it in time, so seqs must resume above it.
				delete(pending, seq)
				delete(segOf, seq)
				if seq > maxCommit {
					maxCommit = seq
				}
			default:
				return fmt.Errorf("%w: unknown record type %d", ErrCorrupt, typ)
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		if keep >= 0 { // torn tail: truncate to the clean prefix
			fi, statErr := os.Stat(segPath(dir, seg))
			if statErr == nil {
				rec.TruncatedBytes += fi.Size() - keep
			}
			if err := os.Truncate(segPath(dir, seg), keep); err != nil {
				return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			rec.Torn = true
		}
	}

	l := newLog(dir, rec.Meta, opts)
	l.firstSeg = segs[0]
	l.curSeg = segs[len(segs)-1]
	l.nextSeq = lastAppend
	if maxCommit > l.nextSeq {
		l.nextSeq = maxCommit
	}
	for seq, seg := range segOf {
		l.segOf[seq] = seg
		l.live[seg]++
	}
	f, err := os.OpenFile(segPath(dir, l.curSeg), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		if isPermission(err) {
			return nil, nil, fmt.Errorf("%w: reopen segment: %v", ErrUnwritable, err)
		}
		return nil, nil, fmt.Errorf("wal: reopen segment: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	l.f, l.curSize = f, fi.Size()
	l.segGauge.Set(int64(l.curSeg - l.firstSeg + 1))
	if l.curSize == 0 {
		// The torn-tail truncation ate the whole segment, meta record
		// included; re-stamp it so this segment stands alone if older
		// ones compact away.
		if err := l.writeMetaLocked(); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("wal: sync meta: %w", err)
		}
		l.syncIdx = l.writeIdx
	}

	rec.Records = make([]Record, 0, len(pending))
	for _, r := range pending {
		rec.Records = append(rec.Records, r)
	}
	sort.Slice(rec.Records, func(a, b int) bool { return rec.Records[a].Seq < rec.Records[b].Seq })
	l.startSyncer()
	return l, rec, nil
}

func newLog(dir string, meta Meta, opts Options) *Log {
	l := &Log{
		dir:       dir,
		opts:      opts.withDefaults(),
		meta:      meta,
		live:      make(map[int]int),
		segOf:     make(map[uint64]int),
		syncerNow: make(chan struct{}, 1),
		fsyncs:    obs.Default().Counter("wal.fsyncs"),
		appends:   obs.Default().Counter("wal.appends"),
		compacted: obs.Default().Counter("wal.segments_compacted"),
		segGauge:  obs.Default().Gauge("wal.segments"),
	}
	l.syncCond = sync.NewCond(&l.mu)
	return l
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Meta returns the log's identity attributes.
func (l *Log) Meta() Meta { return l.meta }

// NextSeq returns the sequence number the next append will take.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq + 1
}

// Segments returns the number of live segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.curSeg - l.firstSeg + 1
}

// Pending returns the number of appended-but-uncommitted records.
func (l *Log) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segOf)
}

// Append writes one record and blocks until it is durable (fsynced). The
// returned sequence number is the handle Commit takes.
func (l *Log) Append(lba uint64, data []byte) (uint64, error) {
	payload := make([]byte, 1+8+8+len(data))
	payload[0] = recAppend

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	// The sequence number is consumed only once the record is written: a
	// failed write must leave nextSeq untouched, or the next successful
	// append would create an on-disk append-seq gap that Open (rightly)
	// rejects as corruption.
	seq := l.nextSeq + 1
	binary.LittleEndian.PutUint64(payload[1:], seq)
	binary.LittleEndian.PutUint64(payload[9:], lba)
	copy(payload[17:], data)
	idx, err := l.writeRecordLocked(payload)
	if err != nil {
		l.mu.Unlock()
		return 0, err
	}
	l.nextSeq = seq
	l.segOf[seq] = l.curSeg
	l.live[l.curSeg]++
	l.appends.Inc()
	err = l.waitDurableLocked(idx)
	l.mu.Unlock()
	if err != nil {
		return 0, err
	}
	return seq, nil
}

// Commit marks an append applied. The marker is buffered — it rides the
// next fsync — because nothing external depends on its durability: losing
// a commit only means recovery replays an already-applied (idempotent)
// write. Fully applied segments older than the current one are deleted.
func (l *Log) Commit(seq uint64) error {
	payload := make([]byte, 1+8)
	payload[0] = recCommit
	binary.LittleEndian.PutUint64(payload[1:], seq)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, ok := l.segOf[seq]; !ok {
		return fmt.Errorf("wal: commit of unknown seq %d", seq)
	}
	if _, err := l.writeRecordLocked(payload); err != nil {
		return err
	}
	seg := l.segOf[seq]
	delete(l.segOf, seq)
	l.live[seg]--
	l.compactLocked()
	return nil
}

// Sync forces an fsync covering every record written so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.writeIdx <= l.syncIdx {
		return l.syncErr
	}
	return l.syncLocked()
}

// Close flushes and closes the log, leaving the directory for a later
// Open.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	var syncErr error
	if !l.killed && l.writeIdx > l.syncIdx {
		syncErr = l.syncLocked()
	}
	l.closed = true
	l.syncCond.Broadcast()
	f := l.f
	l.f = nil
	l.mu.Unlock()
	close(l.syncerNow)
	l.syncerWG.Wait()
	var closeErr error
	if f != nil {
		closeErr = f.Close()
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Kill simulates the process dying at this instant: in-flight and future
// appends fail without their fsync, nothing further reaches the file, and
// the directory is left exactly as the "crash" found it for a later Open.
func (l *Log) Kill() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.killed = true
	l.closed = true
	if l.syncErr == nil {
		l.syncErr = ErrClosed
	}
	l.syncCond.Broadcast()
	f := l.f
	l.f = nil
	l.mu.Unlock()
	close(l.syncerNow)
	l.syncerWG.Wait()
	if f != nil {
		_ = f.Close()
	}
}

// Remove closes the log and deletes its directory — the journal applied
// everything and owes recovery nothing.
func (l *Log) Remove() error {
	_ = l.Close()
	return os.RemoveAll(l.dir)
}

// writeRecordLocked frames and writes one record to the current segment,
// rotating first when the append would overflow it. Returns the record's
// write index for durability waits. Caller holds l.mu.
func (l *Log) writeRecordLocked(payload []byte) (uint64, error) {
	if l.f == nil {
		return 0, ErrClosed
	}
	need := int64(recHeaderSize + len(payload))
	if l.curSize > 0 && l.curSize+need > int64(l.opts.SegmentBytes) {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	if q := l.opts.Quota; q != nil {
		if err := q.Consume(uint64(need)); err != nil {
			// Reclaim before surfacing: fully-committed leading segments may
			// still be on disk if an earlier compaction attempt hit an error;
			// dropping them refunds their bytes and may admit this record.
			l.compactLocked()
			if err := q.Consume(uint64(need)); err != nil {
				return 0, fmt.Errorf("%w: %d-byte record over quota: %w", ErrWALFull, need, err)
			}
		}
	}
	buf := make([]byte, recHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, castagnoli))
	copy(buf[recHeaderSize:], payload)
	if _, err := l.f.Write(buf); err != nil {
		if q := l.opts.Quota; q != nil {
			q.Release(uint64(need))
		}
		if errors.Is(err, syscall.ENOSPC) {
			return 0, fmt.Errorf("%w: %v", ErrWALFull, err)
		}
		return 0, fmt.Errorf("wal: write record: %w", err)
	}
	l.curSize += int64(len(buf))
	l.writeIdx++
	l.dirty = true
	return l.writeIdx, nil
}

// writeMetaLocked writes the log's identity record to the current segment.
func (l *Log) writeMetaLocked() error {
	attrs, err := json.Marshal(l.meta)
	if err != nil {
		return fmt.Errorf("wal: encode meta: %w", err)
	}
	payload := make([]byte, 1+8+len(attrs))
	payload[0] = recMeta
	copy(payload[9:], attrs)
	_, err = l.writeRecordLocked(payload)
	return err
}

// rotateLocked syncs and closes the current segment and starts the next,
// re-stamping the meta record so compaction of old segments never loses it.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	l.f = nil
	if err := l.openSegment(l.curSeg + 1); err != nil {
		return err
	}
	return l.writeMetaLocked()
}

// openSegment creates segment idx and makes it current. Caller holds l.mu
// (or owns the log exclusively during Create).
func (l *Log) openSegment(idx int) error {
	f, err := os.OpenFile(segPath(l.dir, idx), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if isPermission(err) {
			return fmt.Errorf("%w: new segment: %v", ErrUnwritable, err)
		}
		if errors.Is(err, syscall.ENOSPC) {
			return fmt.Errorf("%w: new segment: %v", ErrWALFull, err)
		}
		return fmt.Errorf("wal: new segment: %w", err)
	}
	l.f = f
	l.curSeg = idx
	l.curSize = 0
	l.segGauge.Set(int64(l.curSeg - l.firstSeg + 1))
	return nil
}

// compactLocked deletes leading segments whose appends are all committed.
// The current segment always survives. Caller holds l.mu.
func (l *Log) compactLocked() {
	for l.firstSeg < l.curSeg && l.live[l.firstSeg] == 0 {
		var segBytes uint64
		if fi, err := os.Stat(segPath(l.dir, l.firstSeg)); err == nil {
			segBytes = uint64(fi.Size())
		}
		if err := os.Remove(segPath(l.dir, l.firstSeg)); err != nil {
			obs.Default().Eventf("wal", "compact %s segment %d: %v", l.dir, l.firstSeg, err)
			return
		}
		if q := l.opts.Quota; q != nil {
			q.Release(segBytes)
		}
		delete(l.live, l.firstSeg)
		l.firstSeg++
		l.compacted.Inc()
	}
	l.segGauge.Set(int64(l.curSeg - l.firstSeg + 1))
}

// waitDurableLocked blocks until an fsync covers write index idx. With a
// sync window it pokes the syncer and waits; at window 0 it syncs inline,
// and appenders that piled up behind the sync mutex find their records
// already covered — group commit either way. Caller holds l.mu.
func (l *Log) waitDurableLocked(idx uint64) error {
	if l.opts.SyncWindow <= 0 {
		if l.syncIdx >= idx {
			return l.syncErr
		}
		return l.syncLocked()
	}
	select {
	case l.syncerNow <- struct{}{}:
	default:
	}
	for l.syncIdx < idx && l.syncErr == nil && !l.closed {
		l.syncCond.Wait()
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	if l.syncIdx < idx {
		return ErrClosed
	}
	return nil
}

// syncLocked fsyncs the current segment, covering every record written so
// far. Caller holds l.mu.
func (l *Log) syncLocked() error {
	if l.f == nil {
		return ErrClosed
	}
	target := l.writeIdx
	err := l.f.Sync()
	l.fsyncs.Inc()
	if err != nil {
		err = fmt.Errorf("wal: fsync: %w", err)
		if l.syncErr == nil {
			l.syncErr = err
		}
	} else {
		l.syncIdx = target
		l.dirty = false
	}
	l.syncCond.Broadcast()
	return err
}

// startSyncer launches the window syncer when a group-commit window is
// configured.
func (l *Log) startSyncer() {
	if l.opts.SyncWindow <= 0 {
		return
	}
	l.syncerWG.Add(1)
	go func() {
		defer l.syncerWG.Done()
		for {
			if _, ok := <-l.syncerNow; !ok {
				return
			}
			time.Sleep(l.opts.SyncWindow)
			l.mu.Lock()
			if !l.closed && l.dirty {
				_ = l.syncLocked()
			}
			l.mu.Unlock()
		}
	}()
}

// isPermission reports errors a caller cannot write around: permission
// denials and read-only filesystems.
func isPermission(err error) bool {
	return os.IsPermission(err) || errors.Is(err, syscall.EROFS)
}

// checkWritable proves dir accepts file creation by creating and removing a
// probe file, surfacing ErrUnwritable on permission/read-only failures. A
// leftover probe from a crashed earlier check is removed first so O_EXCL
// stays meaningful.
func checkWritable(dir string) error {
	probe := filepath.Join(dir, ".wal-writable")
	_ = os.Remove(probe)
	f, err := os.OpenFile(probe, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if isPermission(err) {
			return fmt.Errorf("%w: %s: %v", ErrUnwritable, dir, err)
		}
		return fmt.Errorf("wal: writability probe %s: %w", dir, err)
	}
	_ = f.Close()
	_ = os.Remove(probe)
	return nil
}

// segPath names a segment file.
func segPath(dir string, idx int) string {
	return filepath.Join(dir, fmt.Sprintf("%08d.seg", idx))
}

// listSegments returns the sorted segment indices present in dir.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var segs []int
	for _, e := range entries {
		var idx int
		if n, _ := fmt.Sscanf(e.Name(), "%08d.seg", &idx); n == 1 {
			segs = append(segs, idx)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// scanSegment walks one segment's records, calling visit per record. For
// the final segment a damaged tail is tolerated when it is consistent with
// a torn write — the bad record's declared extent runs to (or past) end of
// file, or everything from the bad record on is zero padding — in which
// case scanSegment returns the clean-prefix length to truncate to. A good
// scan returns -1. Damage followed by more data is ErrCorrupt.
func scanSegment(path string, final bool, visit func(typ byte, seq uint64, payload []byte) error) (truncateTo int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return -1, fmt.Errorf("wal: read segment: %w", err)
	}
	off := int64(0)
	for off < int64(len(data)) {
		rest := data[off:]
		bad := ""
		var recEnd int64
		if len(rest) < recHeaderSize {
			bad, recEnd = "truncated header", int64(len(data))+1
		} else {
			plen := int64(binary.LittleEndian.Uint32(rest))
			crc := binary.LittleEndian.Uint32(rest[4:])
			recEnd = off + recHeaderSize + plen
			switch {
			case plen == 0 || plen > maxRecordBytes:
				bad = fmt.Sprintf("implausible record length %d", plen)
			case recEnd > int64(len(data)):
				bad = "record truncated by EOF"
			case crc32.Checksum(rest[recHeaderSize:recHeaderSize+plen], castagnoli) != crc:
				bad = "checksum mismatch"
			}
		}
		if bad == "" {
			plen := int64(binary.LittleEndian.Uint32(rest))
			payload := rest[recHeaderSize : recHeaderSize+plen]
			if len(payload) < 9 {
				return -1, fmt.Errorf("%w: %s: record without seq at offset %d", ErrCorrupt, path, off)
			}
			typ := payload[0]
			seq := binary.LittleEndian.Uint64(payload[1:9])
			if err := visit(typ, seq, payload[9:]); err != nil {
				return -1, fmt.Errorf("%s offset %d: %w", path, off, err)
			}
			off = recEnd
			continue
		}
		// Damaged record. Only the newest segment's tail can legitimately
		// be damaged, and only in ways a torn write produces: the record
		// runs into EOF, or the rest of the file is zero fill (a partially
		// persisted extension). Anything else is corruption.
		if final && (recEnd >= int64(len(data)) || allZero(rest)) {
			return off, nil
		}
		return -1, fmt.Errorf("%w: %s offset %d: %s with %d bytes of log after it",
			ErrCorrupt, path, off, bad, int64(len(data))-off)
	}
	return -1, nil
}

// allZero reports whether b is nothing but zero padding.
func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}
