package wal

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func testMeta() Meta {
	return Meta{Attrs: map[string]string{"iqn": "iqn.test:vol0", "next": "10.0.0.9:3260"}}
}

func mustCreate(t *testing.T, opts Options) (*Log, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "wal")
	l, err := Create(dir, testMeta(), opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return l, dir
}

func TestAppendCommitRoundTrip(t *testing.T) {
	l, dir := mustCreate(t, Options{})
	type w struct {
		lba  uint64
		data []byte
	}
	var writes []w
	var seqs []uint64
	for i := 0; i < 10; i++ {
		data := bytes.Repeat([]byte{byte('a' + i)}, 64+i)
		seq, err := l.Append(uint64(i*8), data)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if len(seqs) > 0 && seq <= seqs[len(seqs)-1] {
			t.Fatalf("seq not monotonic: %d after %d", seq, seqs[len(seqs)-1])
		}
		writes = append(writes, w{uint64(i * 8), data})
		seqs = append(seqs, seq)
	}
	// Commit the even ones; the odd ones must survive recovery.
	for i, seq := range seqs {
		if i%2 == 0 {
			if err := l.Commit(seq); err != nil {
				t.Fatalf("Commit %d: %v", seq, err)
			}
		}
	}
	if got := l.Pending(); got != 5 {
		t.Fatalf("Pending = %d, want 5", got)
	}
	l.Kill()

	re, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer re.Close()
	if rec.Torn {
		t.Fatalf("clean log reported torn")
	}
	if rec.Meta.Attrs["iqn"] != "iqn.test:vol0" {
		t.Fatalf("meta lost: %+v", rec.Meta)
	}
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records, want 5", len(rec.Records))
	}
	for i, r := range rec.Records {
		wi := 2*i + 1 // odd writes, in seq order
		if r.Seq != seqs[wi] || r.LBA != writes[wi].lba || !bytes.Equal(r.Data, writes[wi].data) {
			t.Fatalf("record %d = {seq %d lba %d %q}, want {seq %d lba %d %q}",
				i, r.Seq, r.LBA, r.Data, seqs[wi], writes[wi].lba, writes[wi].data)
		}
	}
	// New appends continue the sequence past everything recovered.
	seq, err := re.Append(0, []byte("after"))
	if err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if seq <= seqs[len(seqs)-1] {
		t.Fatalf("reopened log reused seq %d (max was %d)", seq, seqs[len(seqs)-1])
	}
}

func TestSegmentRotationAndCompaction(t *testing.T) {
	l, dir := mustCreate(t, Options{SegmentBytes: 256})
	var seqs []uint64
	for i := 0; i < 20; i++ {
		seq, err := l.Append(uint64(i), bytes.Repeat([]byte{byte(i)}, 100))
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		seqs = append(seqs, seq)
	}
	if got := l.Segments(); got < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", got)
	}
	before := l.Segments()
	for _, seq := range seqs {
		if err := l.Commit(seq); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	if got := l.Segments(); got != 1 {
		t.Fatalf("compaction left %d segments (from %d), want 1", got, before)
	}
	// The compacted log must still carry its meta and recover cleanly.
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re, rec, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("Open after compaction: %v", err)
	}
	defer re.Close()
	if rec.Meta.Attrs["iqn"] != "iqn.test:vol0" {
		t.Fatalf("meta lost after compaction: %+v", rec.Meta)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("fully committed log recovered %d records", len(rec.Records))
	}
	if seq, err := re.Append(7, []byte("x")); err != nil || seq <= seqs[len(seqs)-1] {
		t.Fatalf("append after compaction: seq %d err %v (max was %d)", seq, err, seqs[len(seqs)-1])
	}
}

func TestCommitSurvivingCompactionIsIgnoredOnOpen(t *testing.T) {
	// A commit record can land in a newer segment than its append; once
	// compaction removes the append's segment the commit is an orphan the
	// recovery scan must tolerate (the write was applied — nothing to do).
	l, dir := mustCreate(t, Options{SegmentBytes: 200})
	seq1, err := l.Append(0, bytes.Repeat([]byte{1}, 150))
	if err != nil {
		t.Fatal(err)
	}
	// Force rotation so the commit for seq1 lands in segment 1.
	seq2, err := l.Append(8, bytes.Repeat([]byte{2}, 150))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(seq1); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(seq2); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, rec, err := Open(dir, Options{SegmentBytes: 200})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer re.Close()
	if len(rec.Records) != 0 {
		t.Fatalf("recovered %d records from fully committed log", len(rec.Records))
	}
}

// TestCommitTriggeredRotationCompactionReopens is the regression test for a
// recovery bug: when a commit record itself triggers segment rotation, the
// new segment opens with meta + that commit, and once the older segments
// compact away the surviving log legitimately starts with a commit whose
// seq is below the next surviving append. Open must not mistake that shape
// for an append-seq gap.
func TestCommitTriggeredRotationCompactionReopens(t *testing.T) {
	// Sizes tuned so both appends fit segment 0 and the first commit record
	// overflows it; the intermediate Segments() assertions fail loudly if
	// the framing arithmetic ever drifts.
	l, dir := mustCreate(t, Options{SegmentBytes: 256})
	seq1, err := l.Append(0, bytes.Repeat([]byte{1}, 66))
	if err != nil {
		t.Fatal(err)
	}
	seq2, err := l.Append(8, bytes.Repeat([]byte{2}, 66))
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Segments(); got != 1 {
		t.Fatalf("setup: both appends must share segment 0, Segments = %d", got)
	}
	// The commit record overflows segment 0: rotation puts meta + commit(1)
	// at the head of segment 1.
	if err := l.Commit(seq1); err != nil {
		t.Fatal(err)
	}
	if got := l.Segments(); got != 2 {
		t.Fatalf("setup: commit must trigger rotation, Segments = %d", got)
	}
	seq3, err := l.Append(16, []byte("survivor"))
	if err != nil {
		t.Fatal(err)
	}
	// Committing seq2 fully applies segment 0, which compacts away; the
	// surviving segment now reads meta, commit(1), append(3), commit(2).
	if err := l.Commit(seq2); err != nil {
		t.Fatal(err)
	}
	if got := l.Segments(); got != 1 {
		t.Fatalf("setup: compaction must drop segment 0, Segments = %d", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, rec, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("Open after commit-triggered rotation + compaction: %v", err)
	}
	defer re.Close()
	if len(rec.Records) != 1 || rec.Records[0].Seq != seq3 || string(rec.Records[0].Data) != "survivor" {
		t.Fatalf("recovered %+v, want only seq %d", rec.Records, seq3)
	}
	// New appends resume above everything ever written.
	if seq, err := re.Append(24, []byte("next")); err != nil || seq != seq3+1 {
		t.Fatalf("append after reopen: seq %d err %v, want seq %d", seq, err, seq3+1)
	}
}

// TestAppendWriteErrorDoesNotBurnSeq: a failed record write must not consume
// a sequence number, or the next successful append would leave an on-disk
// append-seq gap that Open rejects as corruption.
func TestAppendWriteErrorDoesNotBurnSeq(t *testing.T) {
	l, _ := mustCreate(t, Options{})
	if _, err := l.Append(0, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	want := l.NextSeq()
	// Sabotage the segment file handle so the next record write fails.
	l.mu.Lock()
	f := l.f
	l.mu.Unlock()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(8, []byte("fails")); err == nil {
		t.Fatal("Append on a closed segment file succeeded")
	}
	if got := l.NextSeq(); got != want {
		t.Fatalf("failed append burned a seq: NextSeq = %d, want %d", got, want)
	}
	if got := l.Pending(); got != 1 {
		t.Fatalf("failed append left bookkeeping: Pending = %d, want 1", got)
	}
}

func TestTornFinalRecordTruncated(t *testing.T) {
	l, dir := mustCreate(t, Options{})
	var keepData = []byte("survives the crash")
	if _, err := l.Append(40, keepData); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(48, []byte("torn away")); err != nil {
		t.Fatal(err)
	}
	l.Kill()

	seg := segPath(dir, 0)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record: chop off its final 4 bytes.
	if err := os.Truncate(seg, fi.Size()-4); err != nil {
		t.Fatal(err)
	}
	re, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open on torn log: %v", err)
	}
	defer re.Close()
	if !rec.Torn {
		t.Fatalf("torn tail not reported")
	}
	if rec.TruncatedBytes <= 0 {
		t.Fatalf("TruncatedBytes = %d, want > 0", rec.TruncatedBytes)
	}
	if len(rec.Records) != 1 || !bytes.Equal(rec.Records[0].Data, keepData) {
		t.Fatalf("recovered %+v, want the single intact record", rec.Records)
	}
}

func TestTornZeroFillTailTruncated(t *testing.T) {
	// A torn extension can persist as zero fill past the last record; that
	// is recoverable, not corrupt.
	l, dir := mustCreate(t, Options{})
	if _, err := l.Append(0, []byte("kept")); err != nil {
		t.Fatal(err)
	}
	l.Kill()
	seg := segPath(dir, 0)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 37)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	re, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open on zero-filled tail: %v", err)
	}
	defer re.Close()
	if !rec.Torn || len(rec.Records) != 1 {
		t.Fatalf("torn=%v records=%d, want torn with 1 record", rec.Torn, len(rec.Records))
	}
}

func TestMidLogCorruptionDetected(t *testing.T) {
	l, dir := mustCreate(t, Options{})
	for i := 0; i < 4; i++ {
		if _, err := l.Append(uint64(i), bytes.Repeat([]byte{byte(i + 1)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	l.Kill()
	seg := segPath(dir, 0)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the middle of the file — damage with live log after it.
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on mid-log corruption: err = %v, want ErrCorrupt", err)
	}
}

func TestCorruptionInOlderSegmentDetected(t *testing.T) {
	l, dir := mustCreate(t, Options{SegmentBytes: 256})
	for i := 0; i < 10; i++ {
		if _, err := l.Append(uint64(i), bytes.Repeat([]byte{byte(i + 1)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 2 {
		t.Fatalf("need >= 2 segments, got %d", l.Segments())
	}
	l.Kill()
	// Truncate the FIRST segment — torn-tail handling must not apply there.
	seg := segPath(dir, 0)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, Options{SegmentBytes: 256})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with damaged non-final segment: err = %v, want ErrCorrupt", err)
	}
}

func TestGroupCommitWindowBatchesFsyncs(t *testing.T) {
	l, _ := mustCreate(t, Options{SyncWindow: 2 * time.Millisecond})
	defer l.Close()
	start := l.fsyncs.Value()
	var wg sync.WaitGroup
	const writers = 16
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := l.Append(uint64(i*8), []byte("grouped")); err != nil {
				t.Errorf("Append: %v", err)
			}
		}(i)
	}
	wg.Wait()
	// All writers launched within one window; far fewer fsyncs than appends.
	if got := l.fsyncs.Value() - start; got >= writers {
		t.Fatalf("window batched nothing: %d fsyncs for %d appends", got, writers)
	}
}

func TestAppendAfterKillFails(t *testing.T) {
	l, _ := mustCreate(t, Options{})
	if _, err := l.Append(0, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	l.Kill()
	if _, err := l.Append(8, []byte("no")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Kill: err = %v, want ErrClosed", err)
	}
	if err := l.Commit(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Commit after Kill: err = %v, want ErrClosed", err)
	}
}

func TestCreateRefusesExistingLog(t *testing.T) {
	l, dir := mustCreate(t, Options{})
	l.Close()
	if _, err := Create(dir, testMeta(), Options{}); err == nil {
		t.Fatalf("Create over an existing log succeeded")
	}
}

func TestRemoveDeletesDirectory(t *testing.T) {
	l, dir := mustCreate(t, Options{})
	if _, err := l.Append(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Remove(); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("dir still present after Remove: %v", err)
	}
}

func TestConcurrentAppendCommit(t *testing.T) {
	l, dir := mustCreate(t, Options{SegmentBytes: 4 << 10})
	var wg sync.WaitGroup
	const writers, perWriter = 8, 25
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq, err := l.Append(uint64(w*1000+i), []byte{byte(w), byte(i)})
				if err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				if i%2 == 0 {
					if err := l.Commit(seq); err != nil {
						t.Errorf("Commit: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	want := l.Pending()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re, rec, err := Open(dir, Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer re.Close()
	if len(rec.Records) != want {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), want)
	}
	for i := 1; i < len(rec.Records); i++ {
		if rec.Records[i].Seq <= rec.Records[i-1].Seq {
			t.Fatalf("recovery out of order: %d after %d", rec.Records[i].Seq, rec.Records[i-1].Seq)
		}
	}
}

// TestCorruptionSweep is the satellite fuzz/table test: build a known log,
// then at EVERY byte offset try truncation, a bit flip, and zero fill, and
// require Open to either recover a clean prefix of the original records or
// fail with ErrCorrupt — never panic, never surface a record that was not
// written ("phantom"), never reorder.
func TestCorruptionSweep(t *testing.T) {
	// Reference log: two segments, some commits, known pristine bytes.
	srcDir := filepath.Join(t.TempDir(), "src")
	l, err := Create(srcDir, testMeta(), Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	var reference []Record
	for i := 0; i < 8; i++ {
		data := bytes.Repeat([]byte{byte(0x10 + i)}, 48+i*7)
		seq, err := l.Append(uint64(i*16), data)
		if err != nil {
			t.Fatal(err)
		}
		reference = append(reference, Record{Seq: seq, LBA: uint64(i * 16), Data: data})
	}
	if err := l.Commit(reference[2].Seq); err != nil {
		t.Fatal(err)
	}
	l.Kill()
	segs, err := listSegments(srcDir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want a multi-segment reference log, got %v (%v)", segs, err)
	}
	pristine := make(map[int][]byte)
	for _, s := range segs {
		b, err := os.ReadFile(segPath(srcDir, s))
		if err != nil {
			t.Fatal(err)
		}
		pristine[s] = b
	}
	// Expected surviving set: every append except the committed one. Any
	// recovery must be a prefix-by-content of this (commits may also be
	// lost to damage, which can only ADD records back — so a recovered
	// record is valid if it matches the full uncommitted-append list).
	appends := make(map[uint64]Record)
	for _, r := range reference {
		appends[r.Seq] = r
	}

	restore := func(dir string) {
		for s, b := range pristine {
			if err := os.WriteFile(segPath(dir, s), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	check := func(t *testing.T, dir, mutation string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: Open panicked: %v", mutation, r)
			}
		}()
		lg, rec, err := Open(dir, Options{SegmentBytes: 512})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("%s: Open returned untyped error %v", mutation, err)
			}
			return
		}
		lg.Kill()
		var lastSeq uint64
		for _, r := range rec.Records {
			ref, ok := appends[r.Seq]
			if !ok {
				t.Fatalf("%s: phantom record seq %d", mutation, r.Seq)
			}
			if r.LBA != ref.LBA || !bytes.Equal(r.Data, ref.Data) {
				t.Fatalf("%s: record seq %d content mismatch", mutation, r.Seq)
			}
			if r.Seq <= lastSeq {
				t.Fatalf("%s: records out of order", mutation)
			}
			lastSeq = r.Seq
		}
	}

	workDir := filepath.Join(t.TempDir(), "fuzz")
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, seg := range segs {
		orig := pristine[seg]
		for off := 0; off <= len(orig); off++ {
			// Truncate at off.
			restore(workDir)
			if err := os.Truncate(segPath(workDir, seg), int64(off)); err != nil {
				t.Fatal(err)
			}
			check(t, workDir, fmt.Sprintf("seg %d truncate@%d", seg, off))
			if off == len(orig) {
				continue
			}
			// Flip one bit at off.
			restore(workDir)
			mut := append([]byte(nil), orig...)
			mut[off] ^= 1 << (off % 8)
			if err := os.WriteFile(segPath(workDir, seg), mut, 0o644); err != nil {
				t.Fatal(err)
			}
			check(t, workDir, fmt.Sprintf("seg %d bitflip@%d", seg, off))
			// Zero-fill from off to EOF.
			restore(workDir)
			mut = append([]byte(nil), orig[:off]...)
			mut = append(mut, make([]byte, len(orig)-off)...)
			if err := os.WriteFile(segPath(workDir, seg), mut, 0o644); err != nil {
				t.Fatal(err)
			}
			check(t, workDir, fmt.Sprintf("seg %d zerofill@%d", seg, off))
		}
	}
}

// TestCorruptionRandomized drives the same invariant with random multi-byte
// damage for breadth beyond the systematic sweep.
func TestCorruptionRandomized(t *testing.T) {
	srcDir := filepath.Join(t.TempDir(), "src")
	l, err := Create(srcDir, testMeta(), Options{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	valid := make(map[uint64]Record)
	for i := 0; i < 12; i++ {
		data := bytes.Repeat([]byte{byte(i + 1)}, 30+i*11)
		seq, err := l.Append(uint64(i*32), data)
		if err != nil {
			t.Fatal(err)
		}
		valid[seq] = Record{Seq: seq, LBA: uint64(i * 32), Data: data}
	}
	l.Kill()
	segs, _ := listSegments(srcDir)
	pristine := make(map[int][]byte)
	for _, s := range segs {
		b, _ := os.ReadFile(segPath(srcDir, s))
		pristine[s] = b
	}
	workDir := filepath.Join(t.TempDir(), "fuzz")
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		for s, b := range pristine {
			mut := append([]byte(nil), b...)
			for n := rng.Intn(4) + 1; n > 0; n-- {
				mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
			}
			if rng.Intn(3) == 0 {
				mut = mut[:rng.Intn(len(mut)+1)]
			}
			if err := os.WriteFile(segPath(workDir, s), mut, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("iter %d: Open panicked: %v", iter, r)
				}
			}()
			lg, rec, err := Open(workDir, Options{SegmentBytes: 1 << 10})
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("iter %d: untyped error %v", iter, err)
				}
				return
			}
			lg.Kill()
			var last uint64
			for _, r := range rec.Records {
				ref, ok := valid[r.Seq]
				if !ok || r.LBA != ref.LBA || !bytes.Equal(r.Data, ref.Data) {
					t.Fatalf("iter %d: phantom or mutated record seq %d", iter, r.Seq)
				}
				if r.Seq <= last {
					t.Fatalf("iter %d: out of order", iter)
				}
				last = r.Seq
			}
		}()
	}
}
