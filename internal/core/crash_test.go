package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/policy"
)

// crashPolicy chains vm1's volume through a scalable encryption group whose
// members keep crash-durable journals. The inflated cipher cost slows the
// write-back apply path so the journal holds unapplied acknowledged writes
// when the crash hits (otherwise the replay assertions would be vacuous).
func crashPolicy(volID string) *policy.Policy {
	return &policy.Policy{
		Tenant: "tenantC",
		MiddleBoxes: []policy.MiddleBoxSpec{{
			Name:         "enc1",
			Type:         policy.TypeEncryption,
			MinInstances: 2,
			MaxInstances: 4,
			Params: map[string]string{
				"key":                aesKeyHex,
				"durableJournal":     "true",
				"journalFsyncWindow": "1ms",
				"cipherCostNsPerKiB": "200000",
			},
		}},
		Volumes: []policy.VolumeBinding{{VM: "vm1", Volume: volID, Chain: []string{"enc1"}}},
	}
}

// corePattern is write i's 4 KiB payload, distinct per write so overwrites
// of the same LBA are order-sensitive.
func corePattern(i int) []byte {
	p := make([]byte, 4096)
	for k := range p {
		p[k] = byte(i*37 + k*13 + 5)
	}
	return p
}

const (
	coreCrashWrites = 40
	coreCrashLBAs   = 16 // < writes so later writes overwrite earlier ones
)

// servingMember returns the group member currently holding the volume's
// session.
func servingMember(t *testing.T, dep *TenantDeployment, mb string) MemberStatus {
	t.Helper()
	for _, ms := range dep.GroupStatus(mb) {
		if ms.Sessions > 0 {
			return ms
		}
	}
	t.Fatal("no group member holds a session")
	return MemberStatus{}
}

// TestCrashRecoveryEndToEnd drives the full provider-side crash story: a
// group member's VM dies mid-workload at a seed-chosen point, the platform
// provisions a replacement on a surviving host, reopens and replays the
// crashed instance's durable journal, re-attaches the volume, and the
// client retries its one unacknowledged write — ending with the volume
// byte-identical to a crash-free run and the journal directory consumed.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	c, p := fastCloud(t)
	stateDir := t.TempDir()
	p.SetStateDir(stateDir)
	_, volID := launchAndVolume(t, c, "vm1")
	dep, err := p.Apply(crashPolicy(volID))
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	av := dep.Volumes["vm1/"+volID]

	serving := servingMember(t, dep, "enc1")

	// A healthy member must be refused: recovery is for crashed relays only.
	if _, _, err := dep.RecoverInstance("enc1", serving.Name); err == nil ||
		!strings.Contains(err.Error(), "not crashed") {
		t.Fatalf("RecoverInstance on a healthy member: err = %v, want 'not crashed'", err)
	}

	sched := faults.NewSchedule()
	tick := faults.Crash(sched, 7, 4, coreCrashWrites-4, func() {
		if err := c.CrashMiddleBox(serving.Name); err != nil {
			t.Errorf("CrashMiddleBox(%s): %v", serving.Name, err)
		}
	})

	crashed := false
	replayed := 0
	for i := 0; i < coreCrashWrites; i++ {
		err := av.Device.WriteAt(corePattern(i), uint64(i%coreCrashLBAs)*8)
		if err != nil {
			if crashed {
				t.Fatalf("write %d failed after recovery: %v", i, err)
			}
			// Crash-detect: exactly the scheduled member must be down.
			var dead string
			for _, ms := range dep.GroupStatus("enc1") {
				if ms.Crashed {
					dead = ms.Name
				}
			}
			if dead != serving.Name {
				t.Fatalf("write %d failed but crashed member = %q, want %q", i, dead, serving.Name)
			}
			repl, n, rerr := dep.RecoverInstance("enc1", serving.Name)
			if rerr != nil {
				t.Fatalf("RecoverInstance at tick %d: %v", tick, rerr)
			}
			if repl.Host == serving.Host {
				t.Fatalf("replacement placed on the crashed host %q", serving.Host)
			}
			if repl.Name == serving.Name {
				t.Fatalf("replacement reused the crashed station name %q", repl.Name)
			}
			replayed = n
			crashed = true
			i-- // retry the failed, never-acknowledged write
			continue
		}
		sched.Step()
	}
	if !crashed {
		t.Fatalf("workload finished without observing the crash at tick %d", tick)
	}
	if replayed == 0 {
		t.Fatal("recovery replayed no journal records — the crash never caught unapplied acknowledged writes (vacuous test)")
	}

	if err := av.Device.Flush(); err != nil {
		t.Fatalf("Flush after recovery: %v", err)
	}
	// Every LBA must hold the payload of its last write — exactly what a
	// crash-free run would leave.
	for lba := 0; lba < coreCrashLBAs; lba++ {
		last := lba
		for last+coreCrashLBAs < coreCrashWrites {
			last += coreCrashLBAs
		}
		got := make([]byte, 4096)
		if err := av.Device.ReadAt(got, uint64(lba)*8); err != nil {
			t.Fatalf("read-back lba %d: %v", lba, err)
		}
		if !bytes.Equal(got, corePattern(last)) {
			t.Fatalf("lba %d differs from the no-crash outcome (acknowledged write lost or misordered)", lba)
		}
	}

	// The crashed instance's journal directory is consumed by the replay.
	if entries, err := os.ReadDir(filepath.Join(stateDir, serving.Name)); err == nil && len(entries) != 0 {
		t.Fatalf("crashed instance's journal dir still holds %d entries after replay", len(entries))
	}
	// Group health: back to full strength, nobody crashed.
	status := dep.GroupStatus("enc1")
	if len(status) != 2 {
		t.Fatalf("group size after recovery = %d, want 2", len(status))
	}
	for _, ms := range status {
		if ms.Crashed {
			t.Fatalf("member %s still marked crashed after recovery", ms.Name)
		}
	}
}

// TestRecoveryRetryAfterTransientReplayFailure: a backend outage during the
// replacement's journal replay must not strand the crashed member's
// acknowledged writes. The group swap leaves a pending-recovery tail, the
// journal stays on disk, and RetryRecoveries re-drives replay and
// re-attachment to completion once the backend heals — the failure mode
// where the member no longer reports Crashed so nothing else would retry.
func TestRecoveryRetryAfterTransientReplayFailure(t *testing.T) {
	c, p := fastCloud(t)
	stateDir := t.TempDir()
	p.SetStateDir(stateDir)
	_, volID := launchAndVolume(t, c, "vm1")
	pol := crashPolicy(volID)
	// Inflate the apply cost further so the short pre-crash burst reliably
	// leaves acknowledged-but-unapplied records in the journal.
	pol.MiddleBoxes[0].Params["cipherCostNsPerKiB"] = "1000000"
	dep, err := p.Apply(pol)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	av := dep.Volumes["vm1/"+volID]
	serving := servingMember(t, dep, "enc1")

	const writes = 12
	for i := 0; i < writes; i++ {
		if err := av.Device.WriteAt(corePattern(i), uint64(i)*8); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := c.CrashMiddleBox(serving.Name); err != nil {
		t.Fatalf("CrashMiddleBox: %v", err)
	}

	// Storage outage: the replacement provisions and joins the group, but
	// journal replay cannot reach the backend.
	c.Fabric.CutHost(c.StorageHost())
	repl, _, rerr := dep.RecoverInstance("enc1", serving.Name)
	if rerr == nil {
		t.Fatal("RecoverInstance succeeded with the storage host cut")
	}
	if repl == nil {
		t.Fatal("replacement not provisioned despite the replay failure")
	}
	if got := dep.PendingRecoveries("enc1"); got != 1 {
		t.Fatalf("PendingRecoveries = %d after failed replay, want 1", got)
	}
	// The swap already happened: nothing reports Crashed anymore, so the
	// pending tail is the only thing keeping this recovery alive.
	for _, ms := range dep.GroupStatus("enc1") {
		if ms.Crashed {
			t.Fatalf("member %s still reports Crashed after the swap", ms.Name)
		}
		if ms.Name == serving.Name {
			t.Fatal("crashed member still in the group")
		}
	}
	if entries, err := os.ReadDir(filepath.Join(stateDir, serving.Name)); err != nil || len(entries) == 0 {
		t.Fatalf("journal dir consumed or missing after failed replay (entries=%d err=%v)", len(entries), err)
	}

	// Retrying against the still-down backend fails and keeps the tail.
	if _, err := dep.RetryRecoveries("enc1"); err == nil {
		t.Fatal("RetryRecoveries succeeded with the storage host still cut")
	}
	if got := dep.PendingRecoveries("enc1"); got != 1 {
		t.Fatalf("PendingRecoveries = %d after failed retry, want 1", got)
	}

	// Heal and retry: the journal replays, volumes re-attach, tail clears.
	c.Fabric.HealHost(c.StorageHost())
	n, err := dep.RetryRecoveries("enc1")
	if err != nil {
		t.Fatalf("RetryRecoveries after heal: %v", err)
	}
	if n == 0 {
		t.Fatal("healed retry replayed no journal records — the crash never caught unapplied acknowledged writes (vacuous test)")
	}
	if got := dep.PendingRecoveries("enc1"); got != 0 {
		t.Fatalf("PendingRecoveries = %d after successful retry, want 0", got)
	}
	if entries, err := os.ReadDir(filepath.Join(stateDir, serving.Name)); err == nil && len(entries) != 0 {
		t.Fatalf("journal dir still holds %d entries after successful retry", len(entries))
	}

	// Every acknowledged write survived the outage-interrupted recovery, and
	// the re-attached data path accepts new I/O.
	if err := av.Device.Flush(); err != nil {
		t.Fatalf("Flush after retry: %v", err)
	}
	for i := 0; i < writes; i++ {
		got := make([]byte, 4096)
		if err := av.Device.ReadAt(got, uint64(i)*8); err != nil {
			t.Fatalf("read-back %d: %v", i, err)
		}
		if !bytes.Equal(got, corePattern(i)) {
			t.Fatalf("write %d lost across the retried recovery", i)
		}
	}
	if err := av.Device.WriteAt(corePattern(99), uint64(writes)*8); err != nil {
		t.Fatalf("new write after retried recovery: %v", err)
	}
}

// TestDurableJournalRequiresStateDir: a policy asking for durable journals
// must be refused while the platform has nowhere durable to keep them.
func TestDurableJournalRequiresStateDir(t *testing.T) {
	_, p := fastCloud(t)
	c := p.Cloud()
	_, volID := launchAndVolume(t, c, "vm1")
	if _, err := p.Apply(crashPolicy(volID)); err == nil ||
		!strings.Contains(err.Error(), "state dir") {
		t.Fatalf("Apply without SetStateDir: err = %v, want state-dir error", err)
	}
	// With a state dir the same policy deploys.
	p.SetStateDir(t.TempDir())
	if _, err := p.Apply(crashPolicy(volID)); err != nil {
		t.Fatalf("Apply with state dir: %v", err)
	}
}
