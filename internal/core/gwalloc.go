package core

import (
	"errors"
	"fmt"
	"sync"
)

// ErrGatewayIPsExhausted reports that the tenant-network gateway address
// range has no free addresses left. Callers see it wrapped in the Apply
// error; errors.Is unwraps it.
var ErrGatewayIPsExhausted = errors.New("core: gateway IP space exhausted")

// gwAddrSpace is the number of gateway addresses the platform can hand out
// concurrently. The range spans 192.168.20.1 .. 192.168.63.254 (44 /24s of
// 254 usable addresses each) — far past the single /24 the old monotonic
// allocator silently overflowed, and disjoint from the compute-host
// (192.168.0.x) and guest (192.168.100.x+) address plans.
const gwAddrSpace = 44 * 254

// gwAllocator hands out gateway addresses in the tenant network space as a
// free-list: released addresses are reused before the never-used frontier
// advances, so deploy/teardown churn of any number of tenants stays within
// the range, and a live address is never handed out twice.
type gwAllocator struct {
	mu   sync.Mutex
	free []string // released addresses, reused LIFO
	next int      // next never-used index
	cap  int
}

func newGWAllocator() *gwAllocator {
	return &gwAllocator{cap: gwAddrSpace}
}

// gwIP renders the i-th address of the gateway range.
func gwIP(i int) string {
	return fmt.Sprintf("192.168.%d.%d", 20+i/254, 1+i%254)
}

// Alloc returns a free gateway address, preferring previously released
// ones, or ErrGatewayIPsExhausted when every address is live.
func (a *gwAllocator) Alloc() (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if n := len(a.free); n > 0 {
		ip := a.free[n-1]
		a.free = a.free[:n-1]
		return ip, nil
	}
	if a.next >= a.cap {
		return "", ErrGatewayIPsExhausted
	}
	ip := gwIP(a.next)
	a.next++
	return ip, nil
}

// Release returns an address to the free list ("" is ignored). The caller
// must own the address; double releases would hand it out twice.
func (a *gwAllocator) Release(ip string) {
	if ip == "" {
		return
	}
	a.mu.Lock()
	a.free = append(a.free, ip)
	a.mu.Unlock()
}

// Live reports how many addresses are currently allocated.
func (a *gwAllocator) Live() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.next - len(a.free)
}

// GatewayIPsLive reports how many gateway addresses the platform currently
// has allocated — zero once every deployment is torn down (leak detector
// for soak and churn harnesses).
func (p *Platform) GatewayIPsLive() int { return p.gwIPs.Live() }
