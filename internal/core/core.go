// Package core implements the StorM platform itself (Figure 2): it accepts
// tenant policies, provisions middle-box VMs with the requested service
// logic, creates the per-volume storage gateway pairs, installs SDN
// forwarding chains, generates initial file-system views for semantic
// services, and connects volumes to their VMs with middle-box services
// enabled — dividing service creation between tenant (the policy and
// service logic) and provider (all infrastructural support).
package core

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/blockdev"
	"repro/internal/cloud"
	"repro/internal/extfs"
	"repro/internal/initiator"
	"repro/internal/middlebox"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/sdn"
	"repro/internal/services/crypt"
	"repro/internal/services/monitor"
	"repro/internal/services/replica"
	"repro/internal/splice"
	"repro/internal/volume"
	"repro/internal/vswitch"
)

// AttachedVolume is one volume connected through its middle-box chain.
type AttachedVolume struct {
	VolumeID     string
	VM           string
	DeploymentID string
	// Device is the VM-side block device (I/O flows through the chain).
	Device *initiator.Device
}

// TenantDeployment is the realized state of one applied policy.
type TenantDeployment struct {
	Tenant string
	// MBs maps middle-box names to their provisioned VMs.
	MBs map[string]*cloud.MiddleBox
	// Monitors exposes the monitoring engine per monitor middle-box (the
	// tenant's log/alert retrieval interface).
	Monitors map[string]*monitor.Monitor
	// Dispatchers exposes the live replica dispatcher per replication
	// middle-box (populated when the volume session is established).
	Dispatchers map[string]*replica.Dispatcher
	// ReplicaVolumes lists the backup volumes created per replication
	// middle-box (for failure injection in experiments).
	ReplicaVolumes map[string][]*volume.Volume
	// Volumes holds the attached volumes keyed "vm/volumeID".
	Volumes map[string]*AttachedVolume

	mu sync.Mutex
}

// setDispatcher records a replication middle-box's live dispatcher.
func (t *TenantDeployment) setDispatcher(mb string, d *replica.Dispatcher) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Dispatchers[mb] = d
}

// Dispatcher returns the live dispatcher of a replication middle-box.
func (t *TenantDeployment) Dispatcher(mb string) *replica.Dispatcher {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.Dispatchers[mb]
}

// Platform is the StorM control plane.
type Platform struct {
	cloud *cloud.Cloud

	mu      sync.Mutex
	tenants map[string]*TenantDeployment
	nextGW  int
}

// New builds a platform over the cloud.
func New(c *cloud.Cloud) *Platform {
	return &Platform{cloud: c, tenants: make(map[string]*TenantDeployment)}
}

// Cloud returns the underlying infrastructure.
func (p *Platform) Cloud() *cloud.Cloud { return p.cloud }

// allocGatewayIP hands out gateway addresses in the tenant network space.
func (p *Platform) allocGatewayIP() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextGW++
	return fmt.Sprintf("192.168.20.%d", p.nextGW)
}

// Apply deploys a tenant policy: provision middle-boxes, install chains,
// and attach every bound volume through its chain.
func (p *Platform) Apply(pol *policy.Policy) (*TenantDeployment, error) {
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	if _, ok := p.tenants[pol.Tenant]; ok {
		p.mu.Unlock()
		return nil, fmt.Errorf("core: tenant %q already has a deployment", pol.Tenant)
	}
	p.mu.Unlock()

	dep := &TenantDeployment{
		Tenant:         pol.Tenant,
		MBs:            make(map[string]*cloud.MiddleBox),
		Monitors:       make(map[string]*monitor.Monitor),
		Dispatchers:    make(map[string]*replica.Dispatcher),
		ReplicaVolumes: make(map[string][]*volume.Volume),
		Volumes:        make(map[string]*AttachedVolume),
	}

	// Provision middle-boxes (forward-type boxes need no relay VM service
	// stack; they are pure routing hops and need no provisioning here).
	specs := make(map[string]*policy.MiddleBoxSpec)
	for i := range pol.MiddleBoxes {
		spec := &pol.MiddleBoxes[i]
		specs[spec.Name] = spec
		if spec.Type == policy.TypeForward {
			continue
		}
		mb, err := p.provisionMB(pol, spec, dep)
		if err != nil {
			return nil, err
		}
		dep.MBs[spec.Name] = mb
	}

	// Wire each volume through its chain and attach it.
	for _, vb := range pol.Volumes {
		av, err := p.attachBinding(pol.Tenant, vb, specs, dep)
		if err != nil {
			return nil, err
		}
		dep.Volumes[vb.VM+"/"+vb.Volume] = av
	}

	p.mu.Lock()
	p.tenants[pol.Tenant] = dep
	p.mu.Unlock()
	return dep, nil
}

// provisionMB launches one service middle-box.
func (p *Platform) provisionMB(pol *policy.Policy, spec *policy.MiddleBoxSpec, dep *TenantDeployment) (*cloud.MiddleBox, error) {
	mode := middlebox.Active
	if spec.EffectiveMode() == policy.ModePassive {
		mode = middlebox.Passive
	}
	build := func(mb *cloud.MiddleBox) ([]middlebox.ServiceFactory, error) {
		switch spec.Type {
		case policy.TypeMonitor:
			mon, err := p.buildMonitor(pol, spec, dep)
			if err != nil {
				return nil, err
			}
			dep.Monitors[spec.Name] = mon
			return []middlebox.ServiceFactory{mon.Service()}, nil
		case policy.TypeEncryption:
			key, err := spec.Key()
			if err != nil {
				return nil, err
			}
			cpu := p.cloud.HostCPU(mb.Host)
			cost := crypt.DefaultCostModel(cpu)
			if v := spec.Params["cipherCostNsPerKiB"]; v != "" {
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("core: middle-box %q: bad cipherCostNsPerKiB %q", spec.Name, v)
				}
				cost.PerKiB = time.Duration(n) * time.Nanosecond
			}
			return []middlebox.ServiceFactory{crypt.Service(key, cost)}, nil
		case policy.TypeReplication:
			return p.buildReplication(pol, spec, mb, dep)
		default:
			return nil, fmt.Errorf("core: middle-box %q: unsupported type %q", spec.Name, spec.Type)
		}
	}
	return p.cloud.LaunchMiddleBox(cloud.MBSpec{
		Name:          pol.Tenant + "-" + spec.Name,
		Host:          spec.Host,
		Mode:          mode,
		BuildServices: build,
	})
}

// buildMonitor creates the monitoring engine with the initial system view
// of the (single) volume chained through this monitor.
func (p *Platform) buildMonitor(pol *policy.Policy, spec *policy.MiddleBoxSpec, dep *TenantDeployment) (*monitor.Monitor, error) {
	volID := ""
	for _, vb := range pol.Volumes {
		for _, name := range vb.Chain {
			if name == spec.Name {
				volID = vb.Volume
			}
		}
	}
	if volID == "" {
		return nil, fmt.Errorf("core: monitor %q is chained by no volume", spec.Name)
	}
	vol, err := p.cloud.Volumes.Get(volID)
	if err != nil {
		return nil, err
	}
	view, err := p.DumpView(vol)
	if err != nil {
		return nil, err
	}
	mon := monitor.New(view)
	if watch := spec.Params["watch"]; watch != "" {
		for _, prefix := range strings.Split(watch, ",") {
			if prefix = strings.TrimSpace(prefix); prefix != "" {
				mon.Watch(prefix)
			}
		}
	}
	return mon, nil
}

// DumpView generates the initial high-level system view of a volume: the
// platform-side dumpe2fs pass run when the device is attached. An
// unformatted volume yields a raw (geometry-only) view.
func (p *Platform) DumpView(vol *volume.Volume) (*extfs.View, error) {
	fs, err := extfs.Mount(vol.Device())
	if err == extfs.ErrNotFormatted {
		return &extfs.View{
			BlockSize:       4096,
			SectorsPerBlock: 4096 / vol.Device().BlockSize(),
			BlocksCount:     vol.SizeBytes / 4096,
		}, nil
	}
	if err != nil {
		return nil, err
	}
	return fs.Dump()
}

// buildReplication provisions the backup volumes, attaches them to the
// middle-box over the storage network, and returns the dispatcher factory.
func (p *Platform) buildReplication(pol *policy.Policy, spec *policy.MiddleBoxSpec, mb *cloud.MiddleBox, dep *TenantDeployment) ([]middlebox.ServiceFactory, error) {
	// The primary volume is the one chained through this middle-box; the
	// backups match its size.
	var primary *volume.Volume
	for _, vb := range pol.Volumes {
		for _, name := range vb.Chain {
			if name == spec.Name {
				vol, err := p.cloud.Volumes.Get(vb.Volume)
				if err != nil {
					return nil, err
				}
				primary = vol
			}
		}
	}
	if primary == nil {
		return nil, fmt.Errorf("core: replication %q is chained by no volume", spec.Name)
	}
	nExtra := spec.Replicas() - 1
	var extras []replica.NamedDevice
	for i := 0; i < nExtra; i++ {
		rv, err := p.cloud.Volumes.Create(fmt.Sprintf("%s-%s-replica%d", pol.Tenant, spec.Name, i+1), primary.SizeBytes)
		if err != nil {
			return nil, err
		}
		dev, err := p.cloud.MBAttachVolume(mb, rv.ID)
		if err != nil {
			return nil, err
		}
		dep.ReplicaVolumes[spec.Name] = append(dep.ReplicaVolumes[spec.Name], rv)
		extras = append(extras, replica.NamedDevice{Name: rv.ID, Dev: dev})
	}
	factory := func(backend blockdev.Device) (blockdev.Device, error) {
		d, err := replica.New(backend, extras...)
		if err != nil {
			return nil, err
		}
		dep.setDispatcher(spec.Name, d)
		return d, nil
	}
	return []middlebox.ServiceFactory{factory}, nil
}

// attachBinding deploys the splice path for one volume and attaches it.
func (p *Platform) attachBinding(tenant string, vb policy.VolumeBinding, specs map[string]*policy.MiddleBoxSpec, dep *TenantDeployment) (*AttachedVolume, error) {
	vm, err := p.cloud.VM(vb.VM)
	if err != nil {
		return nil, err
	}
	vol, err := p.cloud.Volumes.Get(vb.Volume)
	if err != nil {
		return nil, err
	}

	// Build the SDN chain from the policy order.
	var chain []sdn.MBSpec
	for _, name := range vb.Chain {
		spec := specs[name]
		if spec.Type == policy.TypeForward {
			host := spec.Host
			if host == "" {
				host = p.pickOtherHost(vm.Host)
			}
			chain = append(chain, sdn.MBSpec{
				Name: tenant + "-" + name, Host: host, Mode: vswitch.ModeForward,
			})
			continue
		}
		mb := dep.MBs[name]
		chain = append(chain, sdn.MBSpec{
			Name: mb.Name, Host: mb.Host, Mode: vswitch.ModeTerminate, RelayAddr: mb.RelayAddr,
		})
	}

	ingressHost := vb.IngressHost
	if ingressHost == "" {
		ingressHost = vm.Host
	}
	egressHost := vb.EgressHost
	if egressHost == "" {
		egressHost = p.pickOtherHost(vm.Host)
	}
	d := &splice.Deployment{
		ID:         fmt.Sprintf("%s/%s/%s", tenant, vb.VM, vb.Volume),
		VM:         vb.VM,
		VMHost:     vm.Host,
		VolumeIQN:  vol.IQN,
		TargetAddr: p.cloud.Volumes.TargetAddr(),
		Ingress:    splice.GatewaySpec{Name: "gw-in", Host: ingressHost, InstanceIP: p.allocGatewayIP()},
		Egress:     splice.GatewaySpec{Name: "gw-out", Host: egressHost, InstanceIP: p.allocGatewayIP()},
		Chain:      chain,
	}
	if err := p.cloud.Plane.Deploy(d); err != nil {
		return nil, err
	}

	if err := p.cloud.Volumes.MarkAttached(vol.ID, vb.VM); err != nil {
		p.cloud.Plane.Undeploy(d.ID)
		return nil, err
	}
	var dev *initiator.Device
	err = p.cloud.Plane.AtomicAttach(d, func() error {
		conn, err := vm.Endpoint.DialAddr(d.TargetAddr)
		if err != nil {
			return err
		}
		sess, err := initiator.Login(conn, initiator.Config{
			InitiatorIQN: "iqn.2016-04.edu.purdue.storm:init:" + vb.VM,
			TargetIQN:    vol.IQN,
			AttachedVM:   vb.VM,
			Obs:          obs.Default(),
		})
		if err != nil {
			_ = conn.Close()
			return err
		}
		dev, err = initiator.OpenDevice(sess)
		if err != nil {
			_ = sess.Close()
		}
		return err
	})
	if err != nil {
		_ = p.cloud.Volumes.MarkDetached(vol.ID)
		p.cloud.Plane.Undeploy(d.ID)
		return nil, fmt.Errorf("core: attach %s: %w", d.ID, err)
	}
	p.cloud.Plane.Attributions().RecordAttachment(vb.VM, vol.IQN)
	return &AttachedVolume{
		VolumeID:     vol.ID,
		VM:           vb.VM,
		DeploymentID: d.ID,
		Device:       dev,
	}, nil
}

// pickOtherHost returns a compute host different from avoid when possible.
func (p *Platform) pickOtherHost(avoid string) string {
	hosts := p.cloud.ComputeHosts()
	for _, h := range hosts {
		if h != avoid {
			return h
		}
	}
	return hosts[0]
}

// Teardown removes a tenant's deployment: volumes detach, chains and
// middle-boxes are destroyed.
func (p *Platform) Teardown(tenant string) error {
	p.mu.Lock()
	dep, ok := p.tenants[tenant]
	if ok {
		delete(p.tenants, tenant)
	}
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: tenant %q has no deployment", tenant)
	}
	for _, av := range dep.Volumes {
		_ = av.Device.Close()
		p.cloud.Plane.Undeploy(av.DeploymentID)
		_ = p.cloud.Volumes.MarkDetached(av.VolumeID)
	}
	for _, mb := range dep.MBs {
		mb.Close()
	}
	return nil
}

// Deployment returns a tenant's live deployment.
func (p *Platform) Deployment(tenant string) (*TenantDeployment, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	dep, ok := p.tenants[tenant]
	return dep, ok
}

// UpdateChain mutates a live volume's middle-box chain by deployment ID —
// the on-demand scaling interface.
func (p *Platform) UpdateChain(deploymentID string, chain []sdn.MBSpec) error {
	return p.cloud.Plane.UpdateChain(deploymentID, chain)
}
