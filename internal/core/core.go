// Package core implements the StorM platform itself (Figure 2): it accepts
// tenant policies, provisions middle-box VMs with the requested service
// logic, creates the per-volume storage gateway pairs, installs SDN
// forwarding chains, generates initial file-system views for semantic
// services, and connects volumes to their VMs with middle-box services
// enabled — dividing service creation between tenant (the policy and
// service logic) and provider (all infrastructural support).
package core

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/blockdev"
	"repro/internal/cas"
	"repro/internal/cloud"
	"repro/internal/extfs"
	"repro/internal/initiator"
	"repro/internal/middlebox"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/scrub"
	"repro/internal/sdn"
	"repro/internal/services/crypt"
	"repro/internal/services/monitor"
	"repro/internal/services/replica"
	"repro/internal/services/replicate"
	"repro/internal/splice"
	"repro/internal/volume"
	"repro/internal/vswitch"
)

// AttachedVolume is one volume connected through its middle-box chain.
type AttachedVolume struct {
	VolumeID     string
	VM           string
	DeploymentID string
	// Device is the VM-side block device (I/O flows through the chain).
	Device *initiator.Device

	// gwIngressIP/gwEgressIP are the deployment's allocated gateway
	// addresses, returned to the platform's free list on teardown.
	gwIngressIP string
	gwEgressIP  string
}

// MBInstance is one member of a scalable middle-box instance group.
type MBInstance struct {
	// Name is the station name, "<tenant>-<mb>-<seq>".
	Name string
	// Host is the compute host placing the instance.
	Host string
	// MB is the provisioned relay VM; nil for forward-type instances,
	// which are pure routing hops.
	MB *cloud.MiddleBox
}

// TenantDeployment is the realized state of one applied policy.
type TenantDeployment struct {
	Tenant string
	// MBs maps fixed (non-scalable) middle-box names to their VMs.
	MBs map[string]*cloud.MiddleBox
	// Groups maps scalable middle-box names to their current instance
	// groups in steering order.
	Groups map[string][]*MBInstance
	// Monitors exposes the monitoring engine per monitor middle-box (the
	// tenant's log/alert retrieval interface).
	Monitors map[string]*monitor.Monitor
	// Dispatchers exposes the live replica dispatcher per replication
	// middle-box (populated when the volume session is established).
	Dispatchers map[string]*replica.Dispatcher
	// ReplicaVolumes lists the backup volumes created per replication
	// middle-box (for failure injection in experiments).
	ReplicaVolumes map[string][]*volume.Volume
	// Replicators exposes the live content-addressed replication box per
	// replicate middle-box (populated when the volume session is
	// established).
	Replicators map[string]*replicate.Box
	// Scrubbers exposes the background integrity scrubber per replicate
	// middle-box (nil when the policy disables scrubbing).
	Scrubbers map[string]*scrub.Scrubber
	// BackendVolumes lists the content-addressed backend volumes created
	// per replicate middle-box. They outlive any single box instance: a
	// crash-replacement reattaches the same volumes, so the replica sets
	// (and their dedup state) survive the instance.
	BackendVolumes map[string][]*volume.Volume
	// Volumes holds the attached volumes keyed "vm/volumeID".
	Volumes map[string]*AttachedVolume

	platform *Platform
	pol      *policy.Policy

	mu       sync.Mutex
	groupSeq map[string]int // next instance index per group (never reused)
	// pendingRecovery holds, per middle-box group, the tails of crash
	// recoveries that still owe work: the crashed member is replaced, but
	// journal replay or volume re-attachment failed transiently and must be
	// re-driven until it succeeds — otherwise acknowledged journaled writes
	// would be silently stranded on disk.
	pendingRecovery map[string][]*recoveryTail

	// scaleMu serializes Scale / BeginDrain / FinishDrain per deployment.
	scaleMu sync.Mutex
}

// recoveryTail is the remainder of a crash recovery that must eventually
// succeed: reinstalling the steering chains, replaying the crashed
// instance's durable journals, and re-attaching the group's volumes.
type recoveryTail struct {
	inst string // crashed instance, owner of the journal directory
	repl string // replacement instance name
	dir  string // durable journal dir ("" when the spec keeps none)
}

// setDispatcher records a replication middle-box's live dispatcher.
func (t *TenantDeployment) setDispatcher(mb string, d *replica.Dispatcher) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Dispatchers[mb] = d
}

// Dispatcher returns the live dispatcher of a replication middle-box.
func (t *TenantDeployment) Dispatcher(mb string) *replica.Dispatcher {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.Dispatchers[mb]
}

// setReplicator records a replicate middle-box's live box.
func (t *TenantDeployment) setReplicator(mb string, b *replicate.Box) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Replicators[mb] = b
}

// Replicator returns the live box of a replicate middle-box.
func (t *TenantDeployment) Replicator(mb string) *replicate.Box {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.Replicators[mb]
}

// setScrubber records a replicate middle-box's scrubber, stopping the
// predecessor (a crash-replaced instance's scrubber would otherwise keep
// scanning dead targets forever).
func (t *TenantDeployment) setScrubber(mb string, s *scrub.Scrubber) {
	t.mu.Lock()
	old := t.Scrubbers[mb]
	t.Scrubbers[mb] = s
	t.mu.Unlock()
	if old != nil {
		old.Stop()
	}
}

// Scrubber returns the live scrubber of a replicate middle-box (nil when
// scrubbing is disabled).
func (t *TenantDeployment) Scrubber(mb string) *scrub.Scrubber {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.Scrubbers[mb]
}

// tenantShards stripes the platform's tenant registry so Apply/Teardown of
// different tenants never serialize on one mutex.
const tenantShards = 32

// tenantShard is one stripe of the tenant registry.
type tenantShard struct {
	mu      sync.Mutex
	tenants map[string]*TenantDeployment
	pending map[string]bool // tenants with an Apply in flight
}

// Platform is the StorM control plane. Its hot maps are sharded per tenant
// and the gateway address space is a free-list allocator, so concurrent
// Apply/Teardown across tenants share no global critical section beyond
// O(1) allocator pops.
type Platform struct {
	cloud *cloud.Cloud

	shards [tenantShards]tenantShard
	gwIPs  *gwAllocator

	// stateDir roots the durable per-instance journal directories
	// (<stateDir>/<instance name>). Empty disables durable journaling even
	// for policies that request it.
	stateMu  sync.RWMutex
	stateDir string
}

// New builds a platform over the cloud.
func New(c *cloud.Cloud) *Platform {
	p := &Platform{cloud: c, gwIPs: newGWAllocator()}
	for i := range p.shards {
		p.shards[i].tenants = make(map[string]*TenantDeployment)
		p.shards[i].pending = make(map[string]bool)
	}
	return p
}

// shard returns the stripe owning a tenant name (FNV-1a).
func (p *Platform) shard(tenant string) *tenantShard {
	h := uint32(2166136261)
	for i := 0; i < len(tenant); i++ {
		h = (h ^ uint32(tenant[i])) * 16777619
	}
	return &p.shards[h%tenantShards]
}

// Cloud returns the underlying infrastructure.
func (p *Platform) Cloud() *cloud.Cloud { return p.cloud }

// SetStateDir points the platform at the directory holding durable
// middle-box journals. Policies with the "durableJournal" param refuse to
// deploy until this is set: a WAL with nowhere durable to live would
// silently void the crash contract.
func (p *Platform) SetStateDir(dir string) {
	p.stateMu.Lock()
	defer p.stateMu.Unlock()
	p.stateDir = dir
}

// StateDir returns the durable-journal root ("" when unset).
func (p *Platform) StateDir() string {
	p.stateMu.RLock()
	defer p.stateMu.RUnlock()
	return p.stateDir
}

// journalDir returns the durable journal directory for an instance name
// ("" when the spec does not request one).
func (p *Platform) journalDir(spec *policy.MiddleBoxSpec, name string) (string, error) {
	if !spec.DurableJournal() {
		return "", nil
	}
	root := p.StateDir()
	if root == "" {
		return "", fmt.Errorf("core: middle-box %q requests durableJournal but the platform has no state dir (SetStateDir)", spec.Name)
	}
	return filepath.Join(root, name), nil
}

// Apply deploys a tenant policy: provision middle-boxes, install chains,
// and attach every bound volume through its chain.
func (p *Platform) Apply(pol *policy.Policy) (*TenantDeployment, error) {
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	// Reserve the tenant name before provisioning anything, so a duplicate
	// Apply racing this one fails immediately instead of both provisioning
	// and the loser leaking its resources.
	sh := p.shard(pol.Tenant)
	sh.mu.Lock()
	if _, ok := sh.tenants[pol.Tenant]; ok || sh.pending[pol.Tenant] {
		sh.mu.Unlock()
		return nil, fmt.Errorf("core: tenant %q already has a deployment", pol.Tenant)
	}
	sh.pending[pol.Tenant] = true
	sh.mu.Unlock()

	dep := &TenantDeployment{
		Tenant:          pol.Tenant,
		MBs:             make(map[string]*cloud.MiddleBox),
		Groups:          make(map[string][]*MBInstance),
		Monitors:        make(map[string]*monitor.Monitor),
		Dispatchers:     make(map[string]*replica.Dispatcher),
		ReplicaVolumes:  make(map[string][]*volume.Volume),
		Replicators:     make(map[string]*replicate.Box),
		Scrubbers:       make(map[string]*scrub.Scrubber),
		BackendVolumes:  make(map[string][]*volume.Volume),
		Volumes:         make(map[string]*AttachedVolume),
		platform:        p,
		pol:             pol,
		groupSeq:        make(map[string]int),
		pendingRecovery: make(map[string][]*recoveryTail),
	}
	committed := false
	defer func() {
		if !committed {
			p.cleanupPartial(dep)
		}
		sh.mu.Lock()
		delete(sh.pending, pol.Tenant)
		sh.mu.Unlock()
	}()

	// Provision middle-boxes. Grouped boxes (scalable ones, plus replicate,
	// which is pinned at one member but grouped for crash-replacement)
	// become instance groups seeded at their minimum size; fixed
	// forward-type boxes need no relay VM (they are pure routing hops
	// resolved at chain build time).
	specs := make(map[string]*policy.MiddleBoxSpec)
	for i := range pol.MiddleBoxes {
		spec := &pol.MiddleBoxes[i]
		specs[spec.Name] = spec
		if spec.Grouped() {
			if err := p.provisionGroupInstances(pol, spec, dep, spec.EffectiveMinInstances()); err != nil {
				return nil, err
			}
			continue
		}
		if spec.Type == policy.TypeForward {
			continue
		}
		mb, err := p.provisionMB(pol, spec, dep, pol.Tenant+"-"+spec.Name, spec.Host)
		if err != nil {
			return nil, err
		}
		dep.MBs[spec.Name] = mb
	}

	// Wire each volume through its chain and attach it.
	for _, vb := range pol.Volumes {
		av, err := p.attachBinding(pol.Tenant, vb, specs, dep)
		if err != nil {
			return nil, err
		}
		dep.Volumes[vb.VM+"/"+vb.Volume] = av
	}

	sh.mu.Lock()
	sh.tenants[pol.Tenant] = dep
	sh.mu.Unlock()
	committed = true
	return dep, nil
}

// cleanupPartial unwinds whatever a failed Apply managed to provision.
func (p *Platform) cleanupPartial(dep *TenantDeployment) {
	for _, s := range dep.Scrubbers {
		if s != nil {
			s.Stop()
		}
	}
	for _, av := range dep.Volumes {
		_ = av.Device.Close()
		p.cloud.Plane.Undeploy(av.DeploymentID)
		_ = p.cloud.Volumes.MarkDetached(av.VolumeID)
		p.gwIPs.Release(av.gwIngressIP)
		p.gwIPs.Release(av.gwEgressIP)
	}
	for _, insts := range dep.Groups {
		for _, in := range insts {
			if in.MB != nil {
				_ = p.cloud.RemoveMiddleBox(in.Name)
			}
			obs.Default().RetireInstance(in.Name)
		}
	}
	for _, mb := range dep.MBs {
		_ = p.cloud.RemoveMiddleBox(mb.Name)
		obs.Default().RetireInstance(mb.Name)
	}
	for _, bvs := range dep.BackendVolumes {
		for _, bv := range bvs {
			_ = p.cloud.Volumes.MarkDetached(bv.ID)
		}
	}
}

// provisionGroupInstances launches count new members of a scalable
// middle-box group, spread over the least-loaded hosts, and appends them to
// the deployment's group state. Instance indices are never reused so a
// re-grown group cannot collide with a draining predecessor's station name.
func (p *Platform) provisionGroupInstances(pol *policy.Policy, spec *policy.MiddleBoxSpec, dep *TenantDeployment, count int) error {
	hosts := p.cloud.PlaceHosts(count)
	for i := 0; i < count; i++ {
		dep.mu.Lock()
		idx := dep.groupSeq[spec.Name]
		dep.groupSeq[spec.Name] = idx + 1
		dep.mu.Unlock()
		name := fmt.Sprintf("%s-%s-%d", pol.Tenant, spec.Name, idx)
		host := spec.Host
		if host == "" {
			host = hosts[i]
		}
		in := &MBInstance{Name: name, Host: host}
		if spec.Type != policy.TypeForward {
			mb, err := p.provisionMB(pol, spec, dep, name, host)
			if err != nil {
				return err
			}
			in.MB = mb
		}
		dep.mu.Lock()
		dep.Groups[spec.Name] = append(dep.Groups[spec.Name], in)
		dep.mu.Unlock()
	}
	return nil
}

// relayCost maps a spec's sizing knobs onto the relay cost model. With no
// knobs set it returns the zero model (the relay substitutes its defaults);
// with any interception param set it starts from the defaults so the other
// fields stay calibrated.
func relayCost(spec *policy.MiddleBoxSpec) (middlebox.CostModel, error) {
	cm := middlebox.CostModel{CopyThreads: spec.CopyThreads()}
	perBatch, batchBytes := spec.Params["interceptPerBatchNs"], spec.Params["interceptBatchBytes"]
	if perBatch == "" && batchBytes == "" {
		return cm, nil
	}
	def := middlebox.DefaultCostModel()
	def.CopyThreads = cm.CopyThreads
	cm = def
	if perBatch != "" {
		n, err := strconv.Atoi(perBatch)
		if err != nil || n < 0 {
			return cm, fmt.Errorf("core: middle-box %q: bad interceptPerBatchNs %q", spec.Name, perBatch)
		}
		cm.ActivePerBatch = time.Duration(n) * time.Nanosecond
	}
	if batchBytes != "" {
		n, err := strconv.Atoi(batchBytes)
		if err != nil || n <= 0 {
			return cm, fmt.Errorf("core: middle-box %q: bad interceptBatchBytes %q", spec.Name, batchBytes)
		}
		cm.BatchSize = n
	}
	return cm, nil
}

// provisionMB launches one service middle-box VM under the given station
// name and placement.
func (p *Platform) provisionMB(pol *policy.Policy, spec *policy.MiddleBoxSpec, dep *TenantDeployment, name, host string) (*cloud.MiddleBox, error) {
	mode := middlebox.Active
	if spec.EffectiveMode() == policy.ModePassive {
		mode = middlebox.Passive
	}
	build := func(mb *cloud.MiddleBox) ([]middlebox.ServiceFactory, error) {
		switch spec.Type {
		case policy.TypeMonitor:
			mon, err := p.buildMonitor(pol, spec, dep)
			if err != nil {
				return nil, err
			}
			dep.Monitors[spec.Name] = mon
			return []middlebox.ServiceFactory{mon.Service()}, nil
		case policy.TypeEncryption:
			key, err := spec.Key()
			if err != nil {
				return nil, err
			}
			cpu := p.cloud.HostCPU(mb.Host)
			cost := crypt.DefaultCostModel(cpu)
			if v := spec.Params["cipherCostNsPerKiB"]; v != "" {
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("core: middle-box %q: bad cipherCostNsPerKiB %q", spec.Name, v)
				}
				cost.PerKiB = time.Duration(n) * time.Nanosecond
			}
			return []middlebox.ServiceFactory{crypt.Service(key, cost)}, nil
		case policy.TypeReplication:
			return p.buildReplication(pol, spec, mb, dep)
		case policy.TypeReplicate:
			return p.buildReplicate(pol, spec, mb, dep)
		default:
			return nil, fmt.Errorf("core: middle-box %q: unsupported type %q", spec.Name, spec.Type)
		}
	}
	cost, err := relayCost(spec)
	if err != nil {
		return nil, err
	}
	jdir, err := p.journalDir(spec, name)
	if err != nil {
		return nil, err
	}
	return p.cloud.LaunchMiddleBox(cloud.MBSpec{
		Name:              name,
		Host:              host,
		Mode:              mode,
		BuildServices:     build,
		Cost:              cost,
		JournalDir:        jdir,
		JournalSyncWindow: spec.JournalFsyncWindow(),
		ForwardConns:      spec.ForwardConns(),
	})
}

// buildMonitor creates the monitoring engine with the initial system view
// of the (single) volume chained through this monitor.
func (p *Platform) buildMonitor(pol *policy.Policy, spec *policy.MiddleBoxSpec, dep *TenantDeployment) (*monitor.Monitor, error) {
	volID := ""
	for _, vb := range pol.Volumes {
		for _, name := range vb.Chain {
			if name == spec.Name {
				volID = vb.Volume
			}
		}
	}
	if volID == "" {
		return nil, fmt.Errorf("core: monitor %q is chained by no volume", spec.Name)
	}
	vol, err := p.cloud.Volumes.Get(volID)
	if err != nil {
		return nil, err
	}
	view, err := p.DumpView(vol)
	if err != nil {
		return nil, err
	}
	mon := monitor.New(view)
	if watch := spec.Params["watch"]; watch != "" {
		for _, prefix := range strings.Split(watch, ",") {
			if prefix = strings.TrimSpace(prefix); prefix != "" {
				mon.Watch(prefix)
			}
		}
	}
	return mon, nil
}

// DumpView generates the initial high-level system view of a volume: the
// platform-side dumpe2fs pass run when the device is attached. An
// unformatted volume yields a raw (geometry-only) view.
func (p *Platform) DumpView(vol *volume.Volume) (*extfs.View, error) {
	fs, err := extfs.Mount(vol.Device())
	if err == extfs.ErrNotFormatted {
		return &extfs.View{
			BlockSize:       4096,
			SectorsPerBlock: 4096 / vol.Device().BlockSize(),
			BlocksCount:     vol.SizeBytes / 4096,
		}, nil
	}
	if err != nil {
		return nil, err
	}
	return fs.Dump()
}

// buildReplication provisions the backup volumes, attaches them to the
// middle-box over the storage network, and returns the dispatcher factory.
func (p *Platform) buildReplication(pol *policy.Policy, spec *policy.MiddleBoxSpec, mb *cloud.MiddleBox, dep *TenantDeployment) ([]middlebox.ServiceFactory, error) {
	// The primary volume is the one chained through this middle-box; the
	// backups match its size.
	var primary *volume.Volume
	for _, vb := range pol.Volumes {
		for _, name := range vb.Chain {
			if name == spec.Name {
				vol, err := p.cloud.Volumes.Get(vb.Volume)
				if err != nil {
					return nil, err
				}
				primary = vol
			}
		}
	}
	if primary == nil {
		return nil, fmt.Errorf("core: replication %q is chained by no volume", spec.Name)
	}
	nExtra := spec.Replicas() - 1
	var extras []replica.NamedDevice
	for i := 0; i < nExtra; i++ {
		rv, err := p.cloud.Volumes.Create(fmt.Sprintf("%s-%s-replica%d", pol.Tenant, spec.Name, i+1), primary.SizeBytes)
		if err != nil {
			return nil, err
		}
		dev, err := p.cloud.MBAttachVolume(mb, rv.ID)
		if err != nil {
			return nil, err
		}
		dep.ReplicaVolumes[spec.Name] = append(dep.ReplicaVolumes[spec.Name], rv)
		extras = append(extras, replica.NamedDevice{Name: rv.ID, Dev: dev})
	}
	factory := func(backend blockdev.Device) (blockdev.Device, error) {
		d, err := replica.New(backend, extras...)
		if err != nil {
			return nil, err
		}
		dep.setDispatcher(spec.Name, d)
		return d, nil
	}
	return []middlebox.ServiceFactory{factory}, nil
}

// buildReplicate provisions (or, on crash-replacement, reattaches) the
// content-addressed backend volumes for a replicate middle-box and returns
// the factory that assembles the replication box and its scrubber. The
// backend volumes and the dispatch journal are keyed by the group name, not
// the instance name, so a replacement instance reopens the same replica
// sets and replays the crashed box's uncommitted dispatch queue.
func (p *Platform) buildReplicate(pol *policy.Policy, spec *policy.MiddleBoxSpec, mb *cloud.MiddleBox, dep *TenantDeployment) ([]middlebox.ServiceFactory, error) {
	// The primary volume is the one chained through this middle-box; the
	// backends size to cover its image in chunks. Exactly one volume may
	// chain through: the box's slot table and dispatch journal address a
	// single logical image.
	var primary *volume.Volume
	for _, vb := range pol.Volumes {
		for _, name := range vb.Chain {
			if name == spec.Name {
				if primary != nil {
					return nil, fmt.Errorf("core: replicate %q is chained by more than one volume", spec.Name)
				}
				vol, err := p.cloud.Volumes.Get(vb.Volume)
				if err != nil {
					return nil, err
				}
				primary = vol
			}
		}
	}
	if primary == nil {
		return nil, fmt.Errorf("core: replicate %q is chained by no volume", spec.Name)
	}
	root := p.StateDir()
	if root == "" {
		return nil, fmt.Errorf("core: replicate %q needs a dispatch journal but the platform has no state dir (SetStateDir)", spec.Name)
	}
	walDir := filepath.Join(root, pol.Tenant+"-"+spec.Name+"-dispatch")

	chunk := spec.ReplicaChunkBytes()
	bs := primary.Device().BlockSize()
	if chunk%bs != 0 {
		return nil, fmt.Errorf("core: replicate %q: chunk size %d is not a multiple of volume block size %d", spec.Name, chunk, bs)
	}
	slots := (primary.SizeBytes + uint64(chunk) - 1) / uint64(chunk)
	need, err := cas.BlockBackendBytes(bs, chunk, slots)
	if err != nil {
		return nil, fmt.Errorf("core: replicate %q: %w", spec.Name, err)
	}

	// Reuse the group's existing backend volumes when this build replaces a
	// crashed instance; otherwise create them. Stale attachment state from
	// the dead box is cleared before reattaching.
	dep.mu.Lock()
	bvs := append([]*volume.Volume(nil), dep.BackendVolumes[spec.Name]...)
	dep.mu.Unlock()
	n := spec.ReplicaBackends()
	if len(bvs) == 0 {
		for i := 0; i < n; i++ {
			bv, err := p.cloud.Volumes.Create(fmt.Sprintf("%s-%s-backend%d", pol.Tenant, spec.Name, i+1), need)
			if err != nil {
				return nil, err
			}
			bvs = append(bvs, bv)
		}
		dep.mu.Lock()
		dep.BackendVolumes[spec.Name] = bvs
		dep.mu.Unlock()
	}
	var backends []replicate.NamedStore
	for _, bv := range bvs {
		_ = p.cloud.Volumes.MarkDetached(bv.ID)
		dev, err := p.cloud.MBAttachVolume(mb, bv.ID)
		if err != nil {
			return nil, err
		}
		be, err := cas.OpenBlockBackend(dev, chunk, slots)
		if err != nil {
			return nil, fmt.Errorf("core: replicate %q: backend %s: %w", spec.Name, bv.ID, err)
		}
		store, err := cas.Open(be, chunk, slots)
		if err != nil {
			return nil, fmt.Errorf("core: replicate %q: backend %s: %w", spec.Name, bv.ID, err)
		}
		backends = append(backends, replicate.NamedStore{Name: bv.ID, Store: store})
	}

	factory := func(backend blockdev.Device) (blockdev.Device, error) {
		// The factory runs once per backend session. On a reconnect the
		// predecessor box must release the dispatch journal before the new
		// box opens (and replays) it; Close after a crash-kill is a no-op,
		// so a replacement instance leaves the frozen journal untouched
		// until its own replay.
		if old := dep.Replicator(spec.Name); old != nil {
			_ = old.Close()
		}
		box, err := replicate.New(replicate.Config{
			Name:               mb.Name,
			Quorum:             spec.ReplicaQuorum(),
			ChunkSize:          chunk,
			WALDir:             walDir,
			SyncWindow:         spec.JournalFsyncWindow(),
			QueueHighWatermark: spec.QueueHighWatermark(),
			BreakerThreshold:   spec.BreakerThreshold(),
			DegradedQuorum:     spec.DegradedQuorum(),
		}, backend, backends)
		if err != nil {
			return nil, err
		}
		dep.setReplicator(spec.Name, box)
		if iv := spec.ScrubInterval(); iv > 0 {
			reps := make([]scrub.Replica, 0, len(box.Targets()))
			for _, t := range box.Targets() {
				reps = append(reps, t)
			}
			sc := scrub.New(scrub.Config{
				Name:      mb.Name,
				Replicas:  reps,
				Slots:     slots,
				ChunkSize: chunk,
				Interval:  iv,
				Paused:    box.BreakerOpen,
			})
			sc.Start()
			dep.setScrubber(spec.Name, sc)
		}
		return box, nil
	}
	return []middlebox.ServiceFactory{factory}, nil
}

// attachBinding deploys the splice path for one volume and attaches it.
func (p *Platform) attachBinding(tenant string, vb policy.VolumeBinding, specs map[string]*policy.MiddleBoxSpec, dep *TenantDeployment) (*AttachedVolume, error) {
	vm, err := p.cloud.VM(vb.VM)
	if err != nil {
		return nil, err
	}
	vol, err := p.cloud.Volumes.Get(vb.Volume)
	if err != nil {
		return nil, err
	}

	chain := p.buildChain(tenant, vb, specs, dep, vm.Host)

	ingressHost := vb.IngressHost
	if ingressHost == "" {
		ingressHost = vm.Host
	}
	egressHost := vb.EgressHost
	if egressHost == "" {
		egressHost = p.pickOtherHost(vm.Host)
	}
	ingressIP, err := p.gwIPs.Alloc()
	if err != nil {
		return nil, fmt.Errorf("core: tenant %q: %w", tenant, err)
	}
	egressIP, err := p.gwIPs.Alloc()
	if err != nil {
		p.gwIPs.Release(ingressIP)
		return nil, fmt.Errorf("core: tenant %q: %w", tenant, err)
	}
	d := &splice.Deployment{
		ID:         fmt.Sprintf("%s/%s/%s", tenant, vb.VM, vb.Volume),
		VM:         vb.VM,
		VMHost:     vm.Host,
		VolumeIQN:  vol.IQN,
		TargetAddr: p.cloud.Volumes.TargetAddr(),
		Ingress:    splice.GatewaySpec{Name: "gw-in", Host: ingressHost, InstanceIP: ingressIP},
		Egress:     splice.GatewaySpec{Name: "gw-out", Host: egressHost, InstanceIP: egressIP},
		Chain:      chain,
	}
	releaseIPs := func() {
		p.gwIPs.Release(ingressIP)
		p.gwIPs.Release(egressIP)
	}
	if err := p.cloud.Plane.Deploy(d); err != nil {
		releaseIPs()
		return nil, err
	}

	if err := p.cloud.Volumes.MarkAttached(vol.ID, vb.VM); err != nil {
		p.cloud.Plane.Undeploy(d.ID)
		releaseIPs()
		return nil, err
	}
	dev, err := p.attachDevice(vm, d, vb.VM, vol.IQN)
	if err != nil {
		_ = p.cloud.Volumes.MarkDetached(vol.ID)
		p.cloud.Plane.Undeploy(d.ID)
		releaseIPs()
		return nil, fmt.Errorf("core: attach %s: %w", d.ID, err)
	}
	p.cloud.Plane.Attributions().RecordAttachment(vb.VM, vol.IQN)
	return &AttachedVolume{
		VolumeID:     vol.ID,
		VM:           vb.VM,
		DeploymentID: d.ID,
		Device:       dev,
		gwIngressIP:  ingressIP,
		gwEgressIP:   egressIP,
	}, nil
}

// attachDevice logs a VM into its volume under the deployment's capture
// rule (AtomicAttach) and opens the block device. The capture rule exists
// only for the duration of the attach, so a reconnect must come back
// through here to be spliced into the chain.
func (p *Platform) attachDevice(vm *cloud.VM, d *splice.Deployment, vmName, iqn string) (*initiator.Device, error) {
	var dev *initiator.Device
	err := p.cloud.Plane.AtomicAttach(d, func() error {
		conn, err := vm.Endpoint.DialAddr(d.TargetAddr)
		if err != nil {
			return err
		}
		sess, err := initiator.Login(conn, initiator.Config{
			InitiatorIQN: "iqn.2016-04.edu.purdue.storm:init:" + vmName,
			TargetIQN:    iqn,
			AttachedVM:   vmName,
			Obs:          obs.Default(),
		})
		if err != nil {
			_ = conn.Close()
			return err
		}
		dev, err = initiator.OpenDevice(sess)
		if err != nil {
			_ = sess.Close()
		}
		return err
	})
	return dev, err
}

// Reattach re-runs the atomic attachment for a binding whose VM-side
// device was closed (a VM reconnect). The new flow dials under a fresh
// capture rule and is hashed by the steering group onto its current
// non-draining members, so reconnects naturally migrate off a draining
// instance. The binding's Device handle is replaced.
func (t *TenantDeployment) Reattach(key string) error {
	av, ok := t.Volumes[key]
	if !ok {
		return fmt.Errorf("core: tenant %q has no attached volume %q", t.Tenant, key)
	}
	vm, err := t.platform.cloud.VM(av.VM)
	if err != nil {
		return err
	}
	vol, err := t.platform.cloud.Volumes.Get(av.VolumeID)
	if err != nil {
		return err
	}
	d := t.platform.cloud.Plane.Deployment(av.DeploymentID)
	if d == nil {
		return fmt.Errorf("core: deployment %q is gone", av.DeploymentID)
	}
	dev, err := t.platform.attachDevice(vm, d, av.VM, vol.IQN)
	if err != nil {
		return fmt.Errorf("core: reattach %s: %w", av.DeploymentID, err)
	}
	av.Device = dev
	return nil
}

// buildChain renders a volume binding's middle-box list into SDN chain
// specs from the deployment's current state: fixed boxes become single
// stations, scalable boxes become select groups over their live instances.
func (p *Platform) buildChain(tenant string, vb policy.VolumeBinding, specs map[string]*policy.MiddleBoxSpec, dep *TenantDeployment, vmHost string) []sdn.MBSpec {
	var chain []sdn.MBSpec
	for _, name := range vb.Chain {
		spec := specs[name]
		if spec.Grouped() {
			mode := vswitch.ModeTerminate
			if spec.Type == policy.TypeForward {
				mode = vswitch.ModeForward
			}
			dep.mu.Lock()
			insts := append([]*MBInstance(nil), dep.Groups[name]...)
			dep.mu.Unlock()
			members := make([]sdn.Instance, len(insts))
			for i, in := range insts {
				members[i] = sdn.Instance{Name: in.Name, Host: in.Host}
				if in.MB != nil {
					members[i].RelayAddr = in.MB.RelayAddr
				}
			}
			chain = append(chain, sdn.MBSpec{
				Name: tenant + "-" + name, Mode: mode, Instances: members,
			})
			continue
		}
		if spec.Type == policy.TypeForward {
			host := spec.Host
			if host == "" {
				host = p.pickOtherHost(vmHost)
			}
			chain = append(chain, sdn.MBSpec{
				Name: tenant + "-" + name, Host: host, Mode: vswitch.ModeForward,
			})
			continue
		}
		mb := dep.MBs[name]
		chain = append(chain, sdn.MBSpec{
			Name: mb.Name, Host: mb.Host, Mode: vswitch.ModeTerminate, RelayAddr: mb.RelayAddr,
		})
	}
	return chain
}

// pickOtherHost returns a compute host different from avoid when possible.
func (p *Platform) pickOtherHost(avoid string) string {
	hosts := p.cloud.ComputeHosts()
	for _, h := range hosts {
		if h != avoid {
			return h
		}
	}
	return hosts[0]
}

// Teardown removes a tenant's deployment: volumes detach, chains and
// middle-boxes are destroyed.
func (p *Platform) Teardown(tenant string) error {
	sh := p.shard(tenant)
	sh.mu.Lock()
	dep, ok := sh.tenants[tenant]
	if ok {
		delete(sh.tenants, tenant)
	}
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: tenant %q has no deployment", tenant)
	}
	// Serialize against in-flight scale operations on this deployment.
	dep.scaleMu.Lock()
	defer dep.scaleMu.Unlock()
	// Background scrubbers first, so they are not scanning targets whose
	// relays are being torn down underneath them.
	dep.mu.Lock()
	scrubbers := make([]*scrub.Scrubber, 0, len(dep.Scrubbers))
	for _, s := range dep.Scrubbers {
		if s != nil {
			scrubbers = append(scrubbers, s)
		}
	}
	dep.mu.Unlock()
	for _, s := range scrubbers {
		s.Stop()
	}
	for _, av := range dep.Volumes {
		_ = av.Device.Close()
		p.cloud.Plane.Undeploy(av.DeploymentID)
		_ = p.cloud.Volumes.MarkDetached(av.VolumeID)
		p.gwIPs.Release(av.gwIngressIP)
		p.gwIPs.Release(av.gwEgressIP)
	}
	dep.mu.Lock()
	var groupInsts []*MBInstance
	for _, insts := range dep.Groups {
		groupInsts = append(groupInsts, insts...)
	}
	dep.mu.Unlock()
	for _, in := range groupInsts {
		if in.MB != nil {
			_ = p.cloud.RemoveMiddleBox(in.Name)
		}
		obs.Default().RetireInstance(in.Name)
	}
	for _, mb := range dep.MBs {
		_ = p.cloud.RemoveMiddleBox(mb.Name)
		obs.Default().RetireInstance(mb.Name)
	}
	for _, bvs := range dep.BackendVolumes {
		for _, bv := range bvs {
			_ = p.cloud.Volumes.MarkDetached(bv.ID)
		}
	}
	return nil
}

// Deployment returns a tenant's live deployment.
func (p *Platform) Deployment(tenant string) (*TenantDeployment, bool) {
	sh := p.shard(tenant)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	dep, ok := sh.tenants[tenant]
	return dep, ok
}

// UpdateChain mutates a live volume's middle-box chain by deployment ID —
// the on-demand scaling interface.
func (p *Platform) UpdateChain(deploymentID string, chain []sdn.MBSpec) error {
	return p.cloud.Plane.UpdateChain(deploymentID, chain)
}

// spec returns the deployment's policy spec for a middle-box name.
func (t *TenantDeployment) spec(mb string) *policy.MiddleBoxSpec {
	for i := range t.pol.MiddleBoxes {
		if t.pol.MiddleBoxes[i].Name == mb {
			return &t.pol.MiddleBoxes[i]
		}
	}
	return nil
}

// LatencySLO returns the middle-box's configured per-command latency
// objective (zero when the policy sets none or the name is unknown).
func (t *TenantDeployment) LatencySLO(mb string) time.Duration {
	spec := t.spec(mb)
	if spec == nil {
		return 0
	}
	return spec.LatencySLO()
}

// ScaleBounds returns a scalable middle-box's configured instance bounds.
func (t *TenantDeployment) ScaleBounds(mb string) (min, max int, err error) {
	spec := t.spec(mb)
	if spec == nil {
		return 0, 0, fmt.Errorf("core: tenant %q has no middle-box %q", t.Tenant, mb)
	}
	if !spec.Grouped() {
		return 0, 0, fmt.Errorf("core: middle-box %q is not scalable", mb)
	}
	if !spec.Scalable() {
		// A replicate group is pinned at a single member: the group exists
		// for crash-replacement coverage, not elasticity.
		return 1, 1, nil
	}
	return spec.EffectiveMinInstances(), spec.EffectiveMaxInstances(), nil
}

// Group returns a snapshot of a scalable middle-box's current instances.
func (t *TenantDeployment) Group(mb string) []*MBInstance {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*MBInstance(nil), t.Groups[mb]...)
}

// instance finds a group member by station name.
func (t *TenantDeployment) instance(mb, inst string) *MBInstance {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, in := range t.Groups[mb] {
		if in.Name == inst {
			return in
		}
	}
	return nil
}

// steeringGroup returns the vswitch select group steering flows across the
// middle-box's instances (nil before any chain is installed).
func (t *TenantDeployment) steeringGroup(mb string) *vswitch.Group {
	return t.platform.cloud.Controller.Group(t.Tenant + "-" + mb)
}

// reinstallChains pushes the middle-box's current group membership to every
// deployed chain steering through it.
func (t *TenantDeployment) reinstallChains(mbName string) error {
	specs := make(map[string]*policy.MiddleBoxSpec, len(t.pol.MiddleBoxes))
	for i := range t.pol.MiddleBoxes {
		specs[t.pol.MiddleBoxes[i].Name] = &t.pol.MiddleBoxes[i]
	}
	for _, vb := range t.pol.Volumes {
		uses := false
		for _, n := range vb.Chain {
			if n == mbName {
				uses = true
			}
		}
		if !uses {
			continue
		}
		vmHost := ""
		if vm, err := t.platform.cloud.VM(vb.VM); err == nil {
			vmHost = vm.Host
		}
		chain := t.platform.buildChain(t.Tenant, vb, specs, t, vmHost)
		id := fmt.Sprintf("%s/%s/%s", t.Tenant, vb.VM, vb.Volume)
		if err := t.platform.UpdateChain(id, chain); err != nil {
			return err
		}
	}
	return nil
}

// Scale grows a scalable middle-box group to n instances and installs the
// updated steering rules; established flows keep their serving instance.
// Scaling down must go through BeginDrain/FinishDrain so in-flight sessions
// and journaled writes survive.
func (t *TenantDeployment) Scale(mbName string, n int) error {
	t.scaleMu.Lock()
	defer t.scaleMu.Unlock()
	spec := t.spec(mbName)
	if spec == nil {
		return fmt.Errorf("core: tenant %q has no middle-box %q", t.Tenant, mbName)
	}
	if !spec.Scalable() {
		return fmt.Errorf("core: middle-box %q is not scalable (maxInstances %d)", mbName, spec.EffectiveMaxInstances())
	}
	cur := len(t.Group(mbName))
	switch {
	case n < 1 || n > spec.EffectiveMaxInstances():
		return fmt.Errorf("core: middle-box %q: target size %d outside [1,%d]", mbName, n, spec.EffectiveMaxInstances())
	case n < cur:
		return fmt.Errorf("core: middle-box %q: scale-down from %d to %d must drain (BeginDrain/FinishDrain)", mbName, cur, n)
	case n == cur:
		return nil
	}
	if err := t.platform.provisionGroupInstances(t.pol, spec, t, n-cur); err != nil {
		return err
	}
	return t.reinstallChains(mbName)
}

// BeginDrain starts winding an instance down: the steering group stops
// hashing new flows to it, and its relay refuses new sessions, so the
// member quiesces as established sessions log out.
func (t *TenantDeployment) BeginDrain(mbName, inst string) error {
	t.scaleMu.Lock()
	defer t.scaleMu.Unlock()
	in := t.instance(mbName, inst)
	if in == nil {
		return fmt.Errorf("core: middle-box %q has no instance %q", mbName, inst)
	}
	// Steering first: reconnects of flows bound here rebind elsewhere.
	if g := t.steeringGroup(mbName); g != nil {
		g.SetDraining(inst, true)
	}
	if in.MB != nil {
		in.MB.Relay.Drain()
	}
	return nil
}

// CancelDrain returns a draining instance to full service.
func (t *TenantDeployment) CancelDrain(mbName, inst string) error {
	t.scaleMu.Lock()
	defer t.scaleMu.Unlock()
	in := t.instance(mbName, inst)
	if in == nil {
		return fmt.Errorf("core: middle-box %q has no instance %q", mbName, inst)
	}
	if g := t.steeringGroup(mbName); g != nil {
		g.SetDraining(inst, false)
	}
	if in.MB != nil {
		in.MB.Relay.CancelDrain()
	}
	return nil
}

// DrainStatus reports an instance's wind-down progress. Forward instances
// hold no sessions or journal, so they quiesce the moment steering stops.
func (t *TenantDeployment) DrainStatus(mbName, inst string) (middlebox.DrainStatus, error) {
	in := t.instance(mbName, inst)
	if in == nil {
		return middlebox.DrainStatus{}, fmt.Errorf("core: middle-box %q has no instance %q", mbName, inst)
	}
	if in.MB == nil {
		g := t.steeringGroup(mbName)
		return middlebox.DrainStatus{Draining: g != nil && g.Draining(inst)}, nil
	}
	return in.MB.Relay.DrainStatus(), nil
}

// FinishDrain completes a zero-loss scale-down: it verifies the instance
// has fully quiesced (no sessions, empty journal), removes it from the
// steering group, and tears the VM down. It refuses to run on an instance
// still holding sessions or journaled bytes, and never empties a group.
func (t *TenantDeployment) FinishDrain(mbName, inst string) error {
	t.scaleMu.Lock()
	defer t.scaleMu.Unlock()
	in := t.instance(mbName, inst)
	if in == nil {
		return fmt.Errorf("core: middle-box %q has no instance %q", mbName, inst)
	}
	if len(t.Group(mbName)) <= 1 {
		return fmt.Errorf("core: middle-box %q: refusing to drain the last instance", mbName)
	}
	if in.MB != nil {
		if !in.MB.Relay.Quiesced() {
			st := in.MB.Relay.DrainStatus()
			return fmt.Errorf("core: instance %q not quiesced (draining=%v sessions=%d journal=%dB)",
				inst, st.Draining, st.Sessions, st.JournalBytes)
		}
	} else if g := t.steeringGroup(mbName); g == nil || !g.Draining(inst) {
		return fmt.Errorf("core: instance %q is not draining", inst)
	}
	t.mu.Lock()
	insts := t.Groups[mbName]
	for i, e := range insts {
		if e == in {
			t.Groups[mbName] = append(insts[:i:i], insts[i+1:]...)
			break
		}
	}
	t.mu.Unlock()
	// Reinstalling the chains shrinks the select group, which also prunes
	// the removed member's flow bindings and drain mark.
	if err := t.reinstallChains(mbName); err != nil {
		return err
	}
	// Retire the departed member's metric series so group churn cannot grow
	// the registry without bound.
	obs.Default().RetireInstance(inst)
	if in.MB != nil {
		return t.platform.cloud.RemoveMiddleBox(in.Name)
	}
	return nil
}

// MemberStatus is one group member's scale/drain snapshot.
type MemberStatus struct {
	Name         string
	Host         string
	Draining     bool
	Crashed      bool
	Sessions     int
	JournalBytes int
	// CopyThreads is the member's concurrent copy bound — the denominator
	// for utilization (0 = unbounded).
	CopyThreads int
	// BreakerOpen and Backpressured surface a replicate member's overload
	// state (a backend circuit breaker open / dispatch admission refusing
	// writes); always false for non-replicate groups.
	BreakerOpen   bool
	Backpressured bool
}

// RecoverInstance replaces a crashed group member: it verifies the member's
// relay crash-stopped, provisions a replacement on a surviving host under a
// fresh (never reused) instance index, swaps it into the steering group,
// replays the crashed instance's durable journals through the replacement's
// service chain, and re-attaches every volume steered through the group so
// parked flows resume. It returns the replacement instance and how many
// journal records the replay delivered — writes the crashed relay
// acknowledged but never applied to the backing volume.
//
// Recovery is retryable at every failure point: until the replacement is
// provisioned the crashed member stays in the group (still reported Crashed,
// so the orchestrator re-runs RecoverInstance), and once the group has been
// swapped the remaining steps are recorded as a pending-recovery tail that
// RetryRecoveries re-drives until journal replay and re-attachment succeed.
// A transient backend error can therefore never strand acknowledged
// journaled writes on disk.
func (t *TenantDeployment) RecoverInstance(mbName, inst string) (*MBInstance, int, error) {
	t.scaleMu.Lock()
	defer t.scaleMu.Unlock()
	spec := t.spec(mbName)
	if spec == nil {
		return nil, 0, fmt.Errorf("core: tenant %q has no middle-box %q", t.Tenant, mbName)
	}
	in := t.instance(mbName, inst)
	if in == nil {
		return nil, 0, fmt.Errorf("core: middle-box %q has no instance %q", mbName, inst)
	}
	if in.MB == nil {
		return nil, 0, fmt.Errorf("core: instance %q is a forward hop; nothing to recover", inst)
	}
	if !in.MB.Relay.Killed() {
		return nil, 0, fmt.Errorf("core: instance %q has not crashed", inst)
	}
	p := t.platform
	dir, derr := p.journalDir(spec, inst)
	if derr != nil {
		dir = "" // journaling misconfigured (caught at Apply); nothing to replay
	}

	// Provision the replacement before touching the group: if this fails the
	// crashed member is still visible as Crashed and the next reconcile pass
	// retries the whole recovery. The instance index is burned either way so
	// the replacement's station name can never collide with stale steering
	// state.
	t.mu.Lock()
	idx := t.groupSeq[mbName]
	t.groupSeq[mbName] = idx + 1
	t.mu.Unlock()
	name := fmt.Sprintf("%s-%s-%d", t.Tenant, mbName, idx)
	host := spec.Host
	if host == "" {
		host = p.cloud.PlaceHostsAvoiding(1, map[string]bool{in.Host: true})[0]
	}
	mb, err := p.provisionMB(t.pol, spec, t, name, host)
	if err != nil {
		return nil, 0, fmt.Errorf("core: replacement for crashed %q: %w", inst, err)
	}
	repl := &MBInstance{Name: name, Host: host, MB: mb}

	// Swap the group and record the owed tail in the same critical section:
	// from this instant the member no longer reports Crashed, so any failure
	// in the remaining steps must leave a pending-recovery record behind or
	// the journal would never be replayed.
	t.mu.Lock()
	insts := t.Groups[mbName]
	for i, e := range insts {
		if e == in {
			t.Groups[mbName] = append(insts[:i:i], insts[i+1:]...)
			break
		}
	}
	t.Groups[mbName] = append(t.Groups[mbName], repl)
	tail := &recoveryTail{inst: inst, repl: name, dir: dir}
	t.pendingRecovery[mbName] = append(t.pendingRecovery[mbName], tail)
	t.mu.Unlock()

	// The crashed member is out of the group for good; drop its metric
	// series so repeated crash/replace cycles cannot grow the registry.
	obs.Default().RetireInstance(inst)

	replayed, err := t.finishRecovery(mbName, tail)
	if err != nil {
		return repl, replayed, err
	}
	obs.Default().Eventf("core", "tenant %s: crashed %s/%s recovered onto %s (host %s, %d journal records replayed)",
		t.Tenant, mbName, inst, name, host, replayed)
	return repl, replayed, nil
}

// finishRecovery drives a recovery tail to completion: chain reinstall,
// journal replay, volume re-attachment. On success the tail is cleared; on
// error it stays pending for RetryRecoveries. Every step tolerates
// re-execution — reinstallChains rebuilds from current membership, replay
// of an already-consumed journal dir is a no-op, and re-attachment replaces
// the device handle it replaced before. Caller holds t.scaleMu.
func (t *TenantDeployment) finishRecovery(mbName string, tail *recoveryTail) (int, error) {
	// Reinstalling the chains swaps the select-group membership and prunes
	// the dead member's flow bindings, so reconnects hash onto survivors.
	if err := t.reinstallChains(mbName); err != nil {
		return 0, err
	}

	// Replay the crashed instance's durable journals before any client
	// traffic reconnects: recovered writes land first, so a retried
	// in-flight write can never be overwritten by an older journal record.
	// The replacement's relay hosts the replay; if it is already gone
	// (scaled away between retries), any surviving relay member serves.
	replayed := 0
	if tail.dir != "" {
		relay := t.instance(mbName, tail.repl)
		if relay == nil || relay.MB == nil {
			for _, e := range t.Group(mbName) {
				if e.MB != nil {
					relay = e
					break
				}
			}
		}
		if relay == nil || relay.MB == nil {
			return 0, fmt.Errorf("core: no relay instance left in %q to replay %s", mbName, tail.dir)
		}
		n, err := relay.MB.Relay.RecoverFrom(tail.dir)
		if err != nil {
			return n, fmt.Errorf("core: journal replay of crashed %q: %w", tail.inst, err)
		}
		replayed = n
	}

	// Un-park: re-run the atomic attachment for every volume steered
	// through this group. The old VM-side devices died with the relay.
	for _, vb := range t.pol.Volumes {
		uses := false
		for _, n := range vb.Chain {
			if n == mbName {
				uses = true
			}
		}
		if !uses {
			continue
		}
		key := vb.VM + "/" + vb.Volume
		if av, ok := t.Volumes[key]; ok {
			_ = av.Device.Close()
		}
		if err := t.Reattach(key); err != nil {
			return replayed, err
		}
	}

	t.mu.Lock()
	tails := t.pendingRecovery[mbName]
	for i, e := range tails {
		if e == tail {
			t.pendingRecovery[mbName] = append(tails[:i:i], tails[i+1:]...)
			break
		}
	}
	t.mu.Unlock()
	return replayed, nil
}

// PendingRecoveries reports how many crash recoveries of this group still
// owe journal replay or volume re-attachment (see RetryRecoveries).
func (t *TenantDeployment) PendingRecoveries(mbName string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pendingRecovery[mbName])
}

// RetryRecoveries re-drives the unfinished tail of earlier crash
// recoveries whose journal replay or re-attachment failed transiently
// (backend outage, network cut). It returns the total journal records
// replayed; on error the remaining tails stay pending for the next retry.
func (t *TenantDeployment) RetryRecoveries(mbName string) (int, error) {
	t.scaleMu.Lock()
	defer t.scaleMu.Unlock()
	t.mu.Lock()
	tails := append([]*recoveryTail(nil), t.pendingRecovery[mbName]...)
	t.mu.Unlock()
	total := 0
	for _, tail := range tails {
		n, err := t.finishRecovery(mbName, tail)
		total += n
		if err != nil {
			return total, err
		}
		obs.Default().Eventf("core", "tenant %s: retried recovery of crashed %s/%s (%d journal records replayed)",
			t.Tenant, mbName, tail.inst, n)
	}
	return total, nil
}

// GroupStatus snapshots every member of a scalable middle-box group.
func (t *TenantDeployment) GroupStatus(mbName string) []MemberStatus {
	g := t.steeringGroup(mbName)
	insts := t.Group(mbName)
	// Replicate groups are pinned at one instance; its box's overload state
	// is the member's overload state.
	box := t.Replicator(mbName)
	out := make([]MemberStatus, 0, len(insts))
	for _, in := range insts {
		ms := MemberStatus{Name: in.Name, Host: in.Host}
		if g != nil {
			ms.Draining = g.Draining(in.Name)
		}
		if in.MB != nil {
			ms.Crashed = in.MB.Relay.Killed()
			st := in.MB.Relay.DrainStatus()
			ms.Draining = ms.Draining || st.Draining
			ms.Sessions = st.Sessions
			ms.JournalBytes = st.JournalBytes
			ms.CopyThreads = in.MB.Relay.CopyThreads()
		}
		if box != nil && !box.Killed() {
			ms.BreakerOpen = box.BreakerOpen()
			ms.Backpressured = box.Backpressured()
		}
		out = append(out, ms)
	}
	return out
}
