package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/policy"
)

// TestMultiTenantSoak runs several tenants with different service chains
// concurrently — mixed I/O, live teardown and re-deployment churn — and
// verifies isolation and data integrity throughout. This is the
// "production cloud" stress the platform must survive.
func TestMultiTenantSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	c, p := fastCloud(t)

	type tenantCfg struct {
		name string
		mb   policy.MiddleBoxSpec
	}
	tenants := []tenantCfg{
		{
			name: "t-enc",
			mb: policy.MiddleBoxSpec{
				Name: "enc", Type: policy.TypeEncryption,
				Params: map[string]string{"key": aesKeyHex},
			},
		},
		{
			name: "t-fwd",
			mb:   policy.MiddleBoxSpec{Name: "fwd", Type: policy.TypeForward},
		},
		{
			name: "t-rep",
			mb: policy.MiddleBoxSpec{
				Name: "rep", Type: policy.TypeReplication,
				Params: map[string]string{"replicas": "2"},
			},
		},
	}

	var wg sync.WaitGroup
	for i, tc := range tenants {
		wg.Add(1)
		go func(i int, tc tenantCfg) {
			defer wg.Done()
			vmName := fmt.Sprintf("vm-%s", tc.name)
			if _, err := c.LaunchVM(vmName, ""); err != nil {
				t.Errorf("%s: LaunchVM: %v", tc.name, err)
				return
			}
			// Two deploy/teardown cycles per tenant.
			for cycle := 0; cycle < 2; cycle++ {
				vol, err := c.Volumes.Create(fmt.Sprintf("%s-vol-%d", tc.name, cycle), 8<<20)
				if err != nil {
					t.Errorf("%s: Create: %v", tc.name, err)
					return
				}
				tenant := fmt.Sprintf("%s-c%d", tc.name, cycle)
				mb := tc.mb
				mb.Name = fmt.Sprintf("%s-c%d", tc.mb.Name, cycle)
				chain := []string{mb.Name}
				pol := &policy.Policy{
					Tenant:      tenant,
					MiddleBoxes: []policy.MiddleBoxSpec{mb},
					Volumes: []policy.VolumeBinding{{
						VM: vmName, Volume: vol.ID, Chain: chain,
					}},
				}
				dep, err := p.Apply(pol)
				if err != nil {
					t.Errorf("%s cycle %d: Apply: %v", tc.name, cycle, err)
					return
				}
				av := dep.Volumes[vmName+"/"+vol.ID]
				want := bytes.Repeat([]byte{byte(i*16 + cycle + 1)}, 4096)
				for op := 0; op < 15; op++ {
					lba := uint64(op * 8)
					if err := av.Device.WriteAt(want, lba); err != nil {
						t.Errorf("%s: WriteAt: %v", tc.name, err)
						return
					}
					got := make([]byte, 4096)
					if err := av.Device.ReadAt(got, lba); err != nil {
						t.Errorf("%s: ReadAt: %v", tc.name, err)
						return
					}
					if !bytes.Equal(got, want) {
						t.Errorf("%s: data corruption at cycle %d op %d", tc.name, cycle, op)
						return
					}
				}
				if err := av.Device.Flush(); err != nil {
					t.Errorf("%s: Flush: %v", tc.name, err)
				}
				if err := p.Teardown(tenant); err != nil {
					t.Errorf("%s cycle %d: Teardown: %v", tc.name, cycle, err)
					return
				}
			}
		}(i, tc)
	}
	wg.Wait()
}
