package core

import (
	"bytes"
	"crypto/sha256"
	"testing"
	"time"

	"repro/internal/cas"
	"repro/internal/obs"
	"repro/internal/policy"
)

// replicatePolicy chains vm1's volume through a content-addressed
// replication box with three backends and a fast background scrubber.
func replicatePolicy(volID, scrubInterval string) *policy.Policy {
	return &policy.Policy{
		Tenant: "tenantR",
		MiddleBoxes: []policy.MiddleBoxSpec{{
			Name: "cas1",
			Type: policy.TypeReplicate,
			Params: map[string]string{
				"replicaBackends": "3",
				"replicaQuorum":   "2",
				"scrubInterval":   scrubInterval,
			},
		}},
		Volumes: []policy.VolumeBinding{{VM: "vm1", Volume: volID, Chain: []string{"cas1"}}},
	}
}

// waitReplicateDrained polls until the box has dispatched and committed
// every enqueued write on every backend.
func waitReplicateDrained(t *testing.T, dep *TenantDeployment, mb string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		box := dep.Replicator(mb)
		if box != nil && box.Drained() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("replication box never drained")
		}
		time.Sleep(time.Millisecond)
	}
}

// imageHash reads the volume's whole logical image through the attached
// device and hashes it — the reference every backend must converge to.
func imageHash(t *testing.T, av *AttachedVolume, sizeBytes uint64) cas.ID {
	t.Helper()
	buf := make([]byte, sizeBytes)
	bs := uint64(av.Device.BlockSize())
	for off := uint64(0); off < sizeBytes; off += 64 * 1024 {
		if err := av.Device.ReadAt(buf[off:off+64*1024], off/bs); err != nil {
			t.Fatalf("image read at %d: %v", off, err)
		}
	}
	return cas.ID(sha256.Sum256(buf))
}

// TestApplyReplicatePolicy deploys the content-addressed replication
// service end to end: writes through the chain land on the primary and fan
// out to every backend, duplicate content is stored once, and the backends
// converge to the primary's logical image.
func TestApplyReplicatePolicy(t *testing.T) {
	c, p := fastCloud(t)
	p.SetStateDir(t.TempDir())
	if _, err := c.LaunchVM("vm1", "compute1"); err != nil {
		t.Fatalf("LaunchVM: %v", err)
	}
	const volBytes = 1 << 20
	vol, err := c.Volumes.Create("vm1-vol", volBytes)
	if err != nil {
		t.Fatalf("Create volume: %v", err)
	}
	dep, err := p.Apply(replicatePolicy(vol.ID, "0"))
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got := len(dep.BackendVolumes["cas1"]); got != 3 {
		t.Fatalf("backend volumes = %d, want 3", got)
	}
	av := dep.Volumes["vm1/"+vol.ID]

	// Distinct payloads on the first 8 chunks, then the same payload on 8
	// more chunks: the duplicate suffix must dedup against itself.
	chunk := make([]byte, 4096)
	for i := 0; i < 8; i++ {
		for k := range chunk {
			chunk[k] = byte(i*31 + k*7 + 1)
		}
		if err := av.Device.WriteAt(chunk, uint64(i)*8); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for k := range chunk {
		chunk[k] = 0xAB
	}
	for i := 8; i < 16; i++ {
		if err := av.Device.WriteAt(chunk, uint64(i)*8); err != nil {
			t.Fatalf("dup write %d: %v", i, err)
		}
	}
	if err := av.Device.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	waitReplicateDrained(t, dep, "cas1")

	box := dep.Replicator("cas1")
	if box == nil {
		t.Fatal("no replicator handle")
	}
	want := imageHash(t, av, volBytes)
	for _, tg := range box.Targets() {
		got, err := tg.Store().LogicalHash()
		if err != nil {
			t.Fatalf("backend %s hash: %v", tg.Name(), err)
		}
		if got != want {
			t.Fatalf("backend %s diverges from the primary image", tg.Name())
		}
		st := tg.Store().Stats()
		if st.DedupHits == 0 {
			t.Fatalf("backend %s saw no dedup hits on a 50%%-duplicate workload", tg.Name())
		}
	}

	// Teardown retires the box's and scrubber's per-instance metric series.
	retired := obs.Default().Counter(obs.RetiredMetric).Value()
	if err := p.Teardown("tenantR"); err != nil {
		t.Fatalf("Teardown: %v", err)
	}
	if got := obs.Default().Counter(obs.RetiredMetric).Value(); got <= retired {
		t.Fatalf("Teardown retired no metric series (retired counter %d -> %d)", retired, got)
	}
}

// TestReplicateScrubRepairsThroughPlatform corrupts one backend's stored
// chunk bytes behind the box's back and waits for the policy-configured
// background scrubber to repair it from the healthy majority.
func TestReplicateScrubRepairsThroughPlatform(t *testing.T) {
	c, p := fastCloud(t)
	p.SetStateDir(t.TempDir())
	if _, err := c.LaunchVM("vm1", "compute1"); err != nil {
		t.Fatalf("LaunchVM: %v", err)
	}
	vol, err := c.Volumes.Create("vm1-vol", 1<<20)
	if err != nil {
		t.Fatalf("Create volume: %v", err)
	}
	dep, err := p.Apply(replicatePolicy(vol.ID, "5ms"))
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	av := dep.Volumes["vm1/"+vol.ID]

	payload := bytes.Repeat([]byte{0x5C}, 4096)
	if err := av.Device.WriteAt(payload, 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := av.Device.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	waitReplicateDrained(t, dep, "cas1")

	if dep.Scrubber("cas1") == nil {
		t.Fatal("no scrubber despite scrubInterval=5ms")
	}
	victim := dep.Replicator("cas1").Targets()[1]
	if err := victim.Store().Corrupt(0); err != nil {
		t.Fatalf("Corrupt: %v", err)
	}
	if err := victim.Store().VerifySlot(0); err == nil {
		t.Fatal("corruption injection did not take")
	}
	deadline := time.Now().Add(10 * time.Second)
	for victim.Store().VerifySlot(0) != nil {
		if time.Now().After(deadline) {
			t.Fatal("background scrubber never repaired the corrupted backend")
		}
		time.Sleep(time.Millisecond)
	}
	got, err := victim.ReadChunk(0)
	if err != nil {
		t.Fatalf("read repaired chunk: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("repaired chunk differs from the written payload")
	}
}

// TestReplicateCrashRecoveryConverges crash-kills the replicate instance
// mid-workload, recovers it through the platform's group machinery (the
// same RecoverInstance path the orchestrator drives), and verifies the
// replacement reopened the group's dispatch journal and backend volumes:
// after the remaining writes, every backend matches the primary image.
func TestReplicateCrashRecoveryConverges(t *testing.T) {
	c, p := fastCloud(t)
	p.SetStateDir(t.TempDir())
	if _, err := c.LaunchVM("vm1", "compute1"); err != nil {
		t.Fatalf("LaunchVM: %v", err)
	}
	const volBytes = 1 << 20
	vol, err := c.Volumes.Create("vm1-vol", volBytes)
	if err != nil {
		t.Fatalf("Create volume: %v", err)
	}
	dep, err := p.Apply(replicatePolicy(vol.ID, "0"))
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	av := dep.Volumes["vm1/"+vol.ID]

	pattern := func(i int) []byte {
		b := make([]byte, 4096)
		for k := range b {
			b[k] = byte(i*41 + k*11 + 3)
		}
		return b
	}
	const writes, lbas = 24, 12 // later writes overwrite earlier ones
	serving := dep.Group("cas1")[0]

	crashed := false
	for i := 0; i < writes; i++ {
		if i == writes/2 && !crashed {
			if err := c.CrashMiddleBox(serving.Name); err != nil {
				t.Fatalf("CrashMiddleBox: %v", err)
			}
		}
		err := av.Device.WriteAt(pattern(i), uint64(i%lbas)*8)
		if err != nil {
			if crashed {
				t.Fatalf("write %d failed after recovery: %v", i, err)
			}
			var dead string
			for _, ms := range dep.GroupStatus("cas1") {
				if ms.Crashed {
					dead = ms.Name
				}
			}
			if dead != serving.Name {
				t.Fatalf("write %d failed but crashed member = %q, want %q", i, dead, serving.Name)
			}
			repl, _, rerr := dep.RecoverInstance("cas1", serving.Name)
			if rerr != nil {
				t.Fatalf("RecoverInstance: %v", rerr)
			}
			if repl.Name == serving.Name {
				t.Fatalf("replacement reused the crashed station name %q", repl.Name)
			}
			crashed = true
			i-- // retry the failed, never-acknowledged write
			continue
		}
	}
	if !crashed {
		t.Fatal("workload finished without observing the crash")
	}
	if err := av.Device.Flush(); err != nil {
		t.Fatalf("Flush after recovery: %v", err)
	}
	waitReplicateDrained(t, dep, "cas1")

	// The replacement box reuses the group's backend volumes.
	if got := len(dep.BackendVolumes["cas1"]); got != 3 {
		t.Fatalf("backend volumes after recovery = %d, want 3", got)
	}
	// Every LBA holds its last write, and every backend matches the image.
	for lba := 0; lba < lbas; lba++ {
		last := lba
		for last+lbas < writes {
			last += lbas
		}
		got := make([]byte, 4096)
		if err := av.Device.ReadAt(got, uint64(lba)*8); err != nil {
			t.Fatalf("read-back lba %d: %v", lba, err)
		}
		if !bytes.Equal(got, pattern(last)) {
			t.Fatalf("lba %d differs from the no-crash outcome", lba)
		}
	}
	want := imageHash(t, av, volBytes)
	box := dep.Replicator("cas1")
	for _, tg := range box.Targets() {
		got, err := tg.Store().LogicalHash()
		if err != nil {
			t.Fatalf("backend %s hash: %v", tg.Name(), err)
		}
		if got != want {
			t.Fatalf("backend %s diverges from the primary image after crash recovery", tg.Name())
		}
	}
}
