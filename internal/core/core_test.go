package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/cloud"
	"repro/internal/extfs"
	"repro/internal/netsim"
	"repro/internal/policy"
)

const aesKeyHex = "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"

// fastCloud builds a cloud with negligible network costs for functional
// tests.
func fastCloud(t *testing.T) (*cloud.Cloud, *Platform) {
	t.Helper()
	model := netsim.Model{
		MTU:       8 * 1024,
		Bandwidth: 1 << 33,
		Latency:   map[netsim.HopKind]time.Duration{},
		PerPacket: map[netsim.HopKind]time.Duration{},
	}
	c, err := cloud.New(cloud.Config{ComputeHosts: 4, Model: model})
	if err != nil {
		t.Fatalf("cloud.New: %v", err)
	}
	t.Cleanup(c.Close)
	return c, New(c)
}

// launchAndVolume boots a VM and creates a 16 MiB volume.
func launchAndVolume(t *testing.T, c *cloud.Cloud, vmName string) (vm *cloud.VM, volID string) {
	t.Helper()
	v, err := c.LaunchVM(vmName, "compute1")
	if err != nil {
		t.Fatalf("LaunchVM: %v", err)
	}
	vol, err := c.Volumes.Create(vmName+"-vol", 16*1024*1024)
	if err != nil {
		t.Fatalf("Create volume: %v", err)
	}
	return v, vol.ID
}

func TestLegacyAttachAndIO(t *testing.T) {
	c, _ := fastCloud(t)
	vm, volID := launchAndVolume(t, c, "vm1")
	dev, err := c.AttachVolume(vm, volID)
	if err != nil {
		t.Fatalf("AttachVolume: %v", err)
	}
	defer dev.Close()
	want := bytes.Repeat([]byte{0xAD}, 4096)
	if err := dev.WriteAt(want, 100); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, 4096)
	if err := dev.ReadAt(got, 100); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("legacy attach corrupted data")
	}
	// Attribution assembled from hypervisor + login halves.
	vol, _ := c.Volumes.Get(volID)
	b, ok := c.Plane.Attributions().ByIQN(vol.IQN)
	if !ok || !b.Complete() {
		t.Errorf("attribution = %+v, %v", b, ok)
	}
	// Double attach is refused.
	if _, err := c.AttachVolume(vm, volID); err == nil {
		t.Error("double attach: want error")
	}
}

func TestApplyEncryptionPolicy(t *testing.T) {
	c, p := fastCloud(t)
	_, volID := launchAndVolume(t, c, "vm1")
	pol := &policy.Policy{
		Tenant: "tenantA",
		MiddleBoxes: []policy.MiddleBoxSpec{{
			Name:   "enc1",
			Type:   policy.TypeEncryption,
			Host:   "compute3",
			Params: map[string]string{"key": aesKeyHex},
		}},
		Volumes: []policy.VolumeBinding{{VM: "vm1", Volume: volID, Chain: []string{"enc1"}}},
	}
	dep, err := p.Apply(pol)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	av := dep.Volumes["vm1/"+volID]
	if av == nil {
		t.Fatal("no attached volume handle")
	}
	want := bytes.Repeat([]byte("topsecret."), 410)[:4096]
	if err := av.Device.WriteAt(want, 10); err != nil {
		t.Fatalf("WriteAt through encryption chain: %v", err)
	}
	got := make([]byte, 4096)
	if err := av.Device.ReadAt(got, 10); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("round trip through encryption middle-box corrupted data")
	}
	// The volume's backing store must hold ciphertext.
	vol, _ := c.Volumes.Get(volID)
	raw := make([]byte, 4096)
	if err := vol.Device().ReadAt(raw, 10); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("topsecret")) {
		t.Error("plaintext reached the storage host: encryption is not in the path")
	}
}

func TestApplyMonitorPolicy(t *testing.T) {
	c, p := fastCloud(t)
	vm, volID := launchAndVolume(t, c, "vm1")

	// Tenant formats the volume over the legacy path first.
	dev, err := c.AttachVolume(vm, volID)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := extfs.Mkfs(dev, extfs.Options{})
	if err != nil {
		t.Fatalf("Mkfs: %v", err)
	}
	if err := fs.MkdirAll("/mnt/box"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/mnt/box/secret.txt", []byte("classified")); err != nil {
		t.Fatal(err)
	}
	_ = dev.Close()
	if err := c.DetachVolume(volID); err != nil {
		t.Fatal(err)
	}

	pol := &policy.Policy{
		Tenant: "tenantA",
		MiddleBoxes: []policy.MiddleBoxSpec{{
			Name:   "mon1",
			Type:   policy.TypeMonitor,
			Params: map[string]string{"watch": "/mnt/box"},
		}},
		Volumes: []policy.VolumeBinding{{VM: "vm1", Volume: volID, Chain: []string{"mon1"}}},
	}
	dep, err := p.Apply(pol)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	av := dep.Volumes["vm1/"+volID]
	fs2, err := extfs.Mount(av.Device)
	if err != nil {
		t.Fatalf("Mount through monitor: %v", err)
	}
	if _, err := fs2.ReadFile("/mnt/box/secret.txt"); err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	mon := dep.Monitors["mon1"]
	if mon == nil {
		t.Fatal("no monitor handle")
	}
	var watched bool
	for _, a := range mon.Alerts() {
		if strings.Contains(a.Event.Path, "secret.txt") {
			watched = true
		}
	}
	if !watched {
		t.Errorf("watched read not alerted; log has %d events", len(mon.Log()))
	}
}

func TestApplyReplicationPolicyWithFailover(t *testing.T) {
	c, p := fastCloud(t)
	_, volID := launchAndVolume(t, c, "vm1")
	pol := &policy.Policy{
		Tenant: "tenantA",
		MiddleBoxes: []policy.MiddleBoxSpec{{
			Name:   "rep1",
			Type:   policy.TypeReplication,
			Params: map[string]string{"replicas": "3"},
		}},
		Volumes: []policy.VolumeBinding{{VM: "vm1", Volume: volID, Chain: []string{"rep1"}}},
	}
	dep, err := p.Apply(pol)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got := len(dep.ReplicaVolumes["rep1"]); got != 2 {
		t.Fatalf("replica volumes = %d, want 2", got)
	}
	av := dep.Volumes["vm1/"+volID]
	want := bytes.Repeat([]byte{0xE7}, 2048)
	if err := av.Device.WriteAt(want, 50); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := av.Device.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	// All three copies hold the data.
	vol, _ := c.Volumes.Get(volID)
	for i, bd := range []blockdev.Device{vol.Device(), dep.ReplicaVolumes["rep1"][0].Device(), dep.ReplicaVolumes["rep1"][1].Device()} {
		got := make([]byte, 2048)
		if err := bd.ReadAt(got, 50); err != nil {
			t.Fatalf("replica %d read: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("replica %d diverges", i)
		}
	}
	// Inject the Figure 13 failure into one replica: service continues.
	disp := dep.Dispatcher("rep1")
	if disp == nil {
		t.Fatal("no dispatcher handle")
	}
	dep.ReplicaVolumes["rep1"][0].InjectFault(errors.New("iscsi connection closed"))
	for i := 0; i < 8; i++ {
		got := make([]byte, 2048)
		if err := av.Device.ReadAt(got, 50); err != nil {
			t.Fatalf("read after replica failure: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("stale read after failover")
		}
	}
	if err := av.Device.WriteAt(want, 60); err != nil {
		t.Fatalf("write after replica failure: %v", err)
	}
	if err := av.Device.Flush(); err != nil {
		t.Fatalf("flush after replica failure: %v", err)
	}
	if disp.AliveCount() != 2 {
		t.Errorf("AliveCount = %d, want 2", disp.AliveCount())
	}
}

func TestApplyChainedServices(t *testing.T) {
	// The paper's service-bundle scenario: monitor + encryption chained on
	// one volume. The monitor records the I/O, then the data is encrypted
	// on its way to disk.
	c, p := fastCloud(t)
	_, volID := launchAndVolume(t, c, "vm1")

	// The tenant formats the fresh volume THROUGH the chain: the monitor
	// learns the file-system geometry from the intercepted superblock and
	// metadata writes, and everything lands encrypted on disk.
	pol := &policy.Policy{
		Tenant: "tenantA",
		MiddleBoxes: []policy.MiddleBoxSpec{
			{Name: "mon1", Type: policy.TypeMonitor, Params: map[string]string{"watch": "/data"}},
			{Name: "enc1", Type: policy.TypeEncryption, Params: map[string]string{"key": aesKeyHex}},
		},
		Volumes: []policy.VolumeBinding{{VM: "vm1", Volume: volID, Chain: []string{"mon1", "enc1"}}},
	}
	dep, err := p.Apply(pol)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	av := dep.Volumes["vm1/"+volID]
	fs2, err := extfs.Mkfs(av.Device, extfs.Options{})
	if err != nil {
		t.Fatalf("Mkfs through chain: %v", err)
	}
	if err := fs2.MkdirAll("/data"); err != nil {
		t.Fatal(err)
	}
	secret := []byte("chained-secret-payload")
	if err := fs2.WriteFile("/data/f.bin", secret); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := fs2.ReadFile("/data/f.bin")
	if err != nil || !bytes.Equal(got, secret) {
		t.Fatalf("ReadFile through chain: %q, %v", got, err)
	}
	// Monitor saw the file operation.
	mon := dep.Monitors["mon1"]
	var created bool
	for _, a := range mon.Alerts() {
		if strings.Contains(a.Event.Path, "/data/f.bin") {
			created = true
		}
	}
	if !created {
		t.Error("monitor missed the chained write")
	}
	// Disk holds ciphertext.
	vol, _ := c.Volumes.Get(volID)
	raw := make([]byte, vol.SizeBytes)
	rawDev := vol.Device()
	buf := make([]byte, 4096)
	var leaked bool
	for lba := uint64(0); lba < rawDev.Blocks(); lba += 8 {
		if err := rawDev.ReadAt(buf, lba); err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(buf, secret) {
			leaked = true
			break
		}
	}
	_ = raw
	if leaked {
		t.Error("plaintext on disk despite encryption middle-box")
	}
}

func TestApplyValidatesAndRejectsDuplicates(t *testing.T) {
	c, p := fastCloud(t)
	_, volID := launchAndVolume(t, c, "vm1")
	pol := &policy.Policy{
		Tenant: "tenantA",
		MiddleBoxes: []policy.MiddleBoxSpec{{
			Name: "enc1", Type: policy.TypeEncryption,
			Params: map[string]string{"key": aesKeyHex},
		}},
		Volumes: []policy.VolumeBinding{{VM: "vm1", Volume: volID, Chain: []string{"enc1"}}},
	}
	if _, err := p.Apply(pol); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if _, err := p.Apply(pol); err == nil {
		t.Error("duplicate tenant Apply: want error")
	}
	bad := &policy.Policy{Tenant: "x"}
	if _, err := p.Apply(bad); err == nil {
		t.Error("invalid policy: want error")
	}
	_ = c
}

func TestTeardownReleasesResources(t *testing.T) {
	c, p := fastCloud(t)
	_, volID := launchAndVolume(t, c, "vm1")
	pol := &policy.Policy{
		Tenant: "tenantA",
		MiddleBoxes: []policy.MiddleBoxSpec{{
			Name: "enc1", Type: policy.TypeEncryption,
			Params: map[string]string{"key": aesKeyHex},
		}},
		Volumes: []policy.VolumeBinding{{VM: "vm1", Volume: volID, Chain: []string{"enc1"}}},
	}
	if _, err := p.Apply(pol); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := p.Teardown("tenantA"); err != nil {
		t.Fatalf("Teardown: %v", err)
	}
	if _, ok := p.Deployment("tenantA"); ok {
		t.Error("deployment survives Teardown")
	}
	// The volume is available again.
	vol, _ := c.Volumes.Get(volID)
	if vol.Status != "available" {
		t.Errorf("volume status = %s after teardown", vol.Status)
	}
	if err := p.Teardown("tenantA"); err == nil {
		t.Error("double Teardown: want error")
	}
	// Re-apply works after teardown... with a fresh tenant key (gateway
	// IPs are fresh; middle-box names must differ as guest IPs persist).
	pol2 := &policy.Policy{
		Tenant: "tenantB",
		MiddleBoxes: []policy.MiddleBoxSpec{{
			Name: "enc2", Type: policy.TypeEncryption,
			Params: map[string]string{"key": aesKeyHex},
		}},
		Volumes: []policy.VolumeBinding{{VM: "vm1", Volume: volID, Chain: []string{"enc2"}}},
	}
	if _, err := p.Apply(pol2); err != nil {
		t.Fatalf("re-Apply: %v", err)
	}
}

func TestForwardOnlyChain(t *testing.T) {
	// The MB-FWD evaluation configuration: a forward-type middle-box on
	// the path, no relay.
	c, p := fastCloud(t)
	_, volID := launchAndVolume(t, c, "vm1")
	pol := &policy.Policy{
		Tenant: "tenantA",
		MiddleBoxes: []policy.MiddleBoxSpec{{
			Name: "fwd1", Type: policy.TypeForward, Host: "compute4",
		}},
		Volumes: []policy.VolumeBinding{{VM: "vm1", Volume: volID, Chain: []string{"fwd1"}}},
	}
	dep, err := p.Apply(pol)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	av := dep.Volumes["vm1/"+volID]
	want := bytes.Repeat([]byte{1}, 1024)
	if err := av.Device.WriteAt(want, 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	// The session's route crosses the forward host.
	conn, ok := av.Device.Session().Conn().(*netsim.Conn)
	if !ok {
		t.Fatal("expected fabric connection")
	}
	var crosses bool
	for _, h := range conn.Route().Hops {
		if h.Host == "compute4" && h.Kind == netsim.HopForward {
			crosses = true
		}
	}
	if !crosses {
		t.Errorf("route does not forward through compute4: %+v", conn.Route().Hops)
	}
	_ = c
}

func TestMultiTenantIsolation(t *testing.T) {
	c, p := fastCloud(t)
	_, volA := launchAndVolume(t, c, "vmA")
	vmB, err := c.LaunchVM("vmB", "compute2")
	if err != nil {
		t.Fatal(err)
	}
	volB, err := c.Volumes.Create("vmB-vol", 16*1024*1024)
	if err != nil {
		t.Fatal(err)
	}
	for i, tn := range []struct {
		tenant, vm, vol string
	}{{"tenantA", "vmA", volA}, {"tenantB", "vmB", volB.ID}} {
		pol := &policy.Policy{
			Tenant: tn.tenant,
			MiddleBoxes: []policy.MiddleBoxSpec{{
				Name: fmt.Sprintf("enc%d", i), Type: policy.TypeEncryption,
				Params: map[string]string{"key": aesKeyHex},
			}},
			Volumes: []policy.VolumeBinding{{VM: tn.vm, Volume: tn.vol, Chain: []string{fmt.Sprintf("enc%d", i)}}},
		}
		if _, err := p.Apply(pol); err != nil {
			t.Fatalf("Apply %s: %v", tn.tenant, err)
		}
	}
	depA, _ := p.Deployment("tenantA")
	depB, _ := p.Deployment("tenantB")
	a := depA.Volumes["vmA/"+volA]
	b := depB.Volumes["vmB/"+volB.ID]
	if err := a.Device.WriteAt(bytes.Repeat([]byte{0xAA}, 512), 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Device.WriteAt(bytes.Repeat([]byte{0xBB}, 512), 0); err != nil {
		t.Fatal(err)
	}
	bufA := make([]byte, 512)
	if err := a.Device.ReadAt(bufA, 0); err != nil {
		t.Fatal(err)
	}
	if bufA[0] != 0xAA {
		t.Error("tenant A sees wrong data")
	}
	// Tenant B cannot dial tenant A's middle-box.
	mbA := depA.MBs["enc0"]
	if _, err := vmB.Endpoint.Dial(netsim.InstanceNet, mbA.InstanceIP+":3260"); err == nil {
		t.Error("tenant B dialed tenant A's middle-box: isolation broken")
	}
}
