package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/sdn"
	"repro/internal/vswitch"
)

// TestVolumeFaultPropagatesThroughChain: a medium failure on the primary
// volume surfaces to the VM as an I/O error through the whole spliced path
// (relay, gateways), not as a hang.
func TestVolumeFaultPropagatesThroughChain(t *testing.T) {
	c, p := fastCloud(t)
	_, volID := launchAndVolume(t, c, "vm1")
	pol := &policy.Policy{
		Tenant: "tenantA",
		MiddleBoxes: []policy.MiddleBoxSpec{{
			Name: "enc1", Type: policy.TypeEncryption,
			Params: map[string]string{"key": aesKeyHex},
		}},
		Volumes: []policy.VolumeBinding{{VM: "vm1", Volume: volID, Chain: []string{"enc1"}}},
	}
	dep, err := p.Apply(pol)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	av := dep.Volumes["vm1/"+volID]
	if err := av.Device.WriteAt(make([]byte, 512), 0); err != nil {
		t.Fatalf("WriteAt before fault: %v", err)
	}
	vol, _ := c.Volumes.Get(volID)
	vol.InjectFault(errors.New("medium failure"))

	done := make(chan error, 1)
	go func() { done <- av.Device.ReadAt(make([]byte, 512), 0) }()
	select {
	case err := <-done:
		if err == nil {
			t.Error("read of failed medium succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("read of failed medium hung")
	}
}

// TestConcurrentIOThroughActiveRelay hammers one chained volume from many
// goroutines and verifies data integrity end to end.
func TestConcurrentIOThroughActiveRelay(t *testing.T) {
	c, p := fastCloud(t)
	_, volID := launchAndVolume(t, c, "vm1")
	pol := &policy.Policy{
		Tenant: "tenantA",
		MiddleBoxes: []policy.MiddleBoxSpec{{
			Name: "enc1", Type: policy.TypeEncryption,
			Params: map[string]string{"key": aesKeyHex},
		}},
		Volumes: []policy.VolumeBinding{{VM: "vm1", Volume: volID, Chain: []string{"enc1"}}},
	}
	dep, err := p.Apply(pol)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	av := dep.Volumes["vm1/"+volID]

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g * 256)
			want := bytes.Repeat([]byte{byte(g + 1)}, 2048)
			for i := 0; i < 20; i++ {
				if err := av.Device.WriteAt(want, base+uint64(i%8)*4); err != nil {
					t.Errorf("g=%d WriteAt: %v", g, err)
					return
				}
				got := make([]byte, 2048)
				if err := av.Device.ReadAt(got, base+uint64(i%8)*4); err != nil {
					t.Errorf("g=%d ReadAt: %v", g, err)
					return
				}
				if !bytes.Equal(got, want) {
					t.Errorf("g=%d read stale/corrupt data", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := av.Device.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

// TestLiveChainScaling adds a second middle-box to a live deployment's
// chain while the first session keeps running, then verifies a re-attach
// traverses both (the paper's on-demand service scaling).
func TestLiveChainScaling(t *testing.T) {
	c, p := fastCloud(t)
	_, volID := launchAndVolume(t, c, "vm1")
	pol := &policy.Policy{
		Tenant: "tenantA",
		MiddleBoxes: []policy.MiddleBoxSpec{{
			Name: "enc1", Type: policy.TypeEncryption, Host: "compute2",
			Params: map[string]string{"key": aesKeyHex},
		}},
		Volumes: []policy.VolumeBinding{{VM: "vm1", Volume: volID, Chain: []string{"enc1"}}},
	}
	dep, err := p.Apply(pol)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	av := dep.Volumes["vm1/"+volID]
	want := bytes.Repeat([]byte{0x77}, 512)
	if err := av.Device.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}

	// Scale up: append a forward-mode middle-box to the live chain.
	mb1 := dep.MBs["enc1"]
	newChain := []sdn.MBSpec{
		{Name: mb1.Name, Host: mb1.Host, Mode: vswitch.ModeTerminate, RelayAddr: mb1.RelayAddr},
		{Name: "tenantA-fwd2", Host: "compute4", Mode: vswitch.ModeForward},
	}
	if err := p.UpdateChain(av.DeploymentID, newChain); err != nil {
		t.Fatalf("UpdateChain: %v", err)
	}

	// The established session keeps flowing on its old route.
	got := make([]byte, 512)
	if err := av.Device.ReadAt(got, 0); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("established session broken by chain update: %v", err)
	}

	// A new connection from the relay onward picks up the extra hop: the
	// relay's next backend session (for a fresh front session) routes
	// through compute4. Verify by re-attaching the volume.
	// (Detach first: close device, undeploy bookkeeping stays, so attach a
	// second session through the same deployment's capture path.)
	vm, err := c.VM("vm1")
	if err != nil {
		t.Fatal(err)
	}
	d := c.Plane.Deployment(av.DeploymentID)
	if d == nil {
		t.Fatal("deployment vanished")
	}
	var conn *netsim.Conn
	err = c.Plane.AtomicAttach(d, func() error {
		cn, err := vm.Endpoint.DialAddr(d.TargetAddr)
		if err != nil {
			return err
		}
		conn = cn
		return nil
	})
	if err != nil {
		t.Fatalf("re-dial through updated chain: %v", err)
	}
	defer conn.Close()
	// The front conn still terminates at enc1's relay (first hop).
	if conn.Route().Terminate != mb1.RelayAddr {
		t.Errorf("front terminates at %v, want relay %v", conn.Route().Terminate, mb1.RelayAddr)
	}
}

// TestTeardownUnderLoad tears a deployment down while I/O is in flight;
// in-flight operations fail cleanly rather than hanging.
func TestTeardownUnderLoad(t *testing.T) {
	c, p := fastCloud(t)
	_, volID := launchAndVolume(t, c, "vm1")
	pol := &policy.Policy{
		Tenant: "tenantA",
		MiddleBoxes: []policy.MiddleBoxSpec{{
			Name: "enc1", Type: policy.TypeEncryption,
			Params: map[string]string{"key": aesKeyHex},
		}},
		Volumes: []policy.VolumeBinding{{VM: "vm1", Volume: volID, Chain: []string{"enc1"}}},
	}
	dep, err := p.Apply(pol)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	av := dep.Volumes["vm1/"+volID]

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 4096)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = av.Device.WriteAt(buf, 0)
			_ = av.Device.ReadAt(buf, 0)
		}
	}()
	time.Sleep(50 * time.Millisecond)

	tearDone := make(chan error, 1)
	go func() { tearDone <- p.Teardown("tenantA") }()
	select {
	case err := <-tearDone:
		if err != nil {
			t.Fatalf("Teardown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Teardown hung under load")
	}
	close(stop)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("I/O goroutine hung after teardown")
	}
}
