package core

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/policy"
	"repro/internal/sdn"
	"repro/internal/vswitch"
)

// scalingPolicy binds vm1's volume through one scalable encryption group.
func scalingPolicy(volID string, min, max int) *policy.Policy {
	return &policy.Policy{
		Tenant: "tenantS",
		MiddleBoxes: []policy.MiddleBoxSpec{{
			Name:         "enc1",
			Type:         policy.TypeEncryption,
			MinInstances: min,
			MaxInstances: max,
			Params:       map[string]string{"key": aesKeyHex},
		}},
		Volumes: []policy.VolumeBinding{{VM: "vm1", Volume: volID, Chain: []string{"enc1"}}},
	}
}

func TestScalableGroupLifecycle(t *testing.T) {
	c, p := fastCloud(t)
	_, volID := launchAndVolume(t, c, "vm1")
	dep, err := p.Apply(scalingPolicy(volID, 2, 4))
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got := len(dep.Group("enc1")); got != 2 {
		t.Fatalf("group seeded with %d instances, want minInstances=2", got)
	}
	av := dep.Volumes["vm1/"+volID]
	want := bytes.Repeat([]byte{0x42}, 4096)
	if err := av.Device.WriteAt(want, 16); err != nil {
		t.Fatalf("WriteAt through group: %v", err)
	}
	got := make([]byte, 4096)
	if err := av.Device.ReadAt(got, 16); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("group data path corrupted data")
	}

	g := c.Controller.Group("tenantS-enc1")
	if g == nil {
		t.Fatal("no steering group installed")
	}
	before := g.Bindings()
	if len(before) != 1 {
		t.Fatalf("bindings = %v, want the one spliced flow", before)
	}

	if err := dep.Scale("enc1", 4); err != nil {
		t.Fatalf("Scale to 4: %v", err)
	}
	if got := len(dep.Group("enc1")); got != 4 {
		t.Fatalf("group size after scale = %d, want 4", got)
	}
	// Flow affinity: the established connection keeps its serving instance.
	after := g.Bindings()
	for f, st := range before {
		if after[f] != st {
			t.Fatalf("scale event moved flow %v: %s -> %s", f, st, after[f])
		}
	}
	// The established device keeps working through the scaled group.
	if err := av.Device.WriteAt(want, 64); err != nil {
		t.Fatalf("WriteAt after scale: %v", err)
	}
	if err := av.Device.ReadAt(got, 64); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("ReadAt after scale: err=%v equal=%v", err, bytes.Equal(got, want))
	}

	// Bounds are enforced.
	if err := dep.Scale("enc1", 5); err == nil {
		t.Fatal("scale past maxInstances: want error")
	}
	if err := dep.Scale("enc1", 1); err == nil {
		t.Fatal("direct scale-down: want error pointing at drain")
	}
	status := dep.GroupStatus("enc1")
	if len(status) != 4 {
		t.Fatalf("GroupStatus has %d members, want 4", len(status))
	}
	sessions := 0
	for _, ms := range status {
		sessions += ms.Sessions
	}
	if sessions != 1 {
		t.Fatalf("group holds %d sessions across members, want 1", sessions)
	}
}

func TestDrainScaleDownKeepsService(t *testing.T) {
	c, p := fastCloud(t)
	_, volID := launchAndVolume(t, c, "vm1")
	dep, err := p.Apply(scalingPolicy(volID, 2, 4))
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	av := dep.Volumes["vm1/"+volID]
	want := bytes.Repeat([]byte{0x17}, 4096)
	if err := av.Device.WriteAt(want, 8); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	g := c.Controller.Group("tenantS-enc1")
	var serving string
	for _, st := range g.Bindings() {
		serving = st
	}
	if serving == "" {
		t.Fatal("no serving instance bound")
	}
	var idle string
	for _, in := range dep.Group("enc1") {
		if in.Name != serving {
			idle = in.Name
		}
	}

	// The serving instance cannot finish draining while its session lives.
	if err := dep.BeginDrain("enc1", serving); err != nil {
		t.Fatalf("BeginDrain(serving): %v", err)
	}
	if err := dep.FinishDrain("enc1", serving); err == nil {
		t.Fatal("FinishDrain with a live session: want not-quiesced error")
	}
	if err := dep.CancelDrain("enc1", serving); err != nil {
		t.Fatalf("CancelDrain: %v", err)
	}

	// The idle member quiesces immediately and tears down with zero loss.
	if err := dep.BeginDrain("enc1", idle); err != nil {
		t.Fatalf("BeginDrain(idle): %v", err)
	}
	st, err := dep.DrainStatus("enc1", idle)
	if err != nil || !st.Draining || st.Sessions != 0 || st.JournalBytes != 0 {
		t.Fatalf("DrainStatus(idle) = %+v, %v; want draining and empty", st, err)
	}
	if err := dep.FinishDrain("enc1", idle); err != nil {
		t.Fatalf("FinishDrain(idle): %v", err)
	}
	if got := len(dep.Group("enc1")); got != 1 {
		t.Fatalf("group size after drain = %d, want 1", got)
	}
	if _, err := c.MiddleBox(idle); err == nil {
		t.Fatal("drained instance VM still registered in the cloud")
	}

	// The data path survives the scale-down on the same serving instance.
	got := make([]byte, 4096)
	if err := av.Device.ReadAt(got, 8); err != nil {
		t.Fatalf("ReadAt after drain: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("scale-down lost data")
	}
	for _, st := range g.Bindings() {
		if st != serving {
			t.Fatalf("flow rebound to %s after unrelated drain", st)
		}
	}

	// The last instance is never drained away.
	if err := dep.FinishDrain("enc1", serving); err == nil {
		t.Fatal("draining the last instance: want refusal")
	}
}

func TestDuplicateApplyExactlyOneWins(t *testing.T) {
	c, p := fastCloud(t)
	_, volID := launchAndVolume(t, c, "vm1")

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.Apply(scalingPolicy(volID, 1, 2))
		}(i)
	}
	wg.Wait()
	winners := 0
	for _, e := range errs {
		if e == nil {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("concurrent duplicate Apply: %d winners (errs=%v), want exactly 1", winners, errs)
	}
	// The loser left nothing behind: teardown the winner and re-apply.
	if err := p.Teardown("tenantS"); err != nil {
		t.Fatalf("Teardown: %v", err)
	}
	if _, err := p.Apply(scalingPolicy(volID, 1, 2)); err != nil {
		t.Fatalf("re-Apply after teardown: %v", err)
	}
	if c != nil {
		_ = p.Teardown("tenantS")
	}
}

// TestTeardownAndUpdateChainRaceApply drives Teardown and UpdateChain
// against an in-flight Apply of the same tenant (run with -race): the
// platform must neither corrupt shared state nor fail the Apply — a
// teardown of an uncommitted deployment is a clean "no deployment" error.
func TestTeardownAndUpdateChainRaceApply(t *testing.T) {
	c, p := fastCloud(t)
	_, volID := launchAndVolume(t, c, "vm1")
	depID := "tenantS/vm1/" + volID
	alt := []sdn.MBSpec{{Name: "tenantS-alt", Host: "compute2", Mode: vswitch.ModeForward}}

	for round := 0; round < 4; round++ {
		var wg sync.WaitGroup
		applyErr := make(chan error, 1)
		wg.Add(3)
		go func() {
			defer wg.Done()
			_, err := p.Apply(scalingPolicy(volID, 2, 4))
			applyErr <- err
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_ = p.Teardown("tenantS")
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_ = p.UpdateChain(depID, alt)
			}
		}()
		wg.Wait()
		if err := <-applyErr; err != nil {
			t.Fatalf("round %d: Apply failed under racing Teardown/UpdateChain: %v", round, err)
		}
		// Whatever the interleaving, the tenant ends in a consistent state:
		// either already torn down or torn down cleanly now.
		if err := p.Teardown("tenantS"); err == nil {
			continue
		}
		if _, ok := p.Deployment("tenantS"); ok {
			t.Fatalf("round %d: deployment present but Teardown failed", round)
		}
	}
	// The platform is still fully usable.
	dep, err := p.Apply(scalingPolicy(volID, 2, 4))
	if err != nil {
		t.Fatalf("final Apply: %v", err)
	}
	av := dep.Volumes["vm1/"+volID]
	if err := av.Device.WriteAt(bytes.Repeat([]byte{1}, 512), 0); err != nil {
		t.Fatalf("final WriteAt: %v", err)
	}
	_ = c
}
