package core

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/policy"
)

// TestGWAllocatorChurnNeverRepeatsLive drives thousands of alloc/release
// cycles — with the live set held well past the 254 addresses of a single
// /24 — and checks a live address is never handed out twice. The old
// monotonic allocator walked 192.168.20.255, .256, ... here.
func TestGWAllocatorChurnNeverRepeatsLive(t *testing.T) {
	a := newGWAllocator()
	rng := rand.New(rand.NewSource(7))
	live := make(map[string]bool)
	var held []string
	peak := 0
	for i := 0; i < 4000; i++ {
		if len(held) > 0 && rng.Intn(3) == 0 {
			j := rng.Intn(len(held))
			ip := held[j]
			held[j] = held[len(held)-1]
			held = held[:len(held)-1]
			delete(live, ip)
			a.Release(ip)
			continue
		}
		ip, err := a.Alloc()
		if err != nil {
			t.Fatalf("Alloc after %d ops: %v", i, err)
		}
		if live[ip] {
			t.Fatalf("live address %s handed out twice", ip)
		}
		live[ip] = true
		held = append(held, ip)
		if len(held) > peak {
			peak = len(held)
		}
	}
	if peak <= 254 {
		t.Fatalf("churn only reached %d concurrent addresses; need >254 to exercise the multi-/24 range", peak)
	}
	if got := a.Live(); got != len(live) {
		t.Fatalf("Live() = %d, want %d", got, len(live))
	}
}

// TestGWAllocatorRangeAndExhaustion checks the rendered range spills across
// /24s correctly, the typed exhaustion error surfaces at capacity, and
// released addresses are reused.
func TestGWAllocatorRangeAndExhaustion(t *testing.T) {
	if got, want := gwIP(0), "192.168.20.1"; got != want {
		t.Errorf("gwIP(0) = %s, want %s", got, want)
	}
	if got, want := gwIP(253), "192.168.20.254"; got != want {
		t.Errorf("gwIP(253) = %s, want %s", got, want)
	}
	if got, want := gwIP(254), "192.168.21.1"; got != want {
		t.Errorf("gwIP(254) = %s, want %s", got, want)
	}

	a := newGWAllocator()
	a.cap = 5
	for i := 0; i < 5; i++ {
		if _, err := a.Alloc(); err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
	}
	if _, err := a.Alloc(); !errors.Is(err, ErrGatewayIPsExhausted) {
		t.Fatalf("Alloc at capacity: err = %v, want ErrGatewayIPsExhausted", err)
	}
	a.Release("192.168.20.3")
	ip, err := a.Alloc()
	if err != nil || ip != "192.168.20.3" {
		t.Fatalf("Alloc after release = %q, %v; want reuse of 192.168.20.3", ip, err)
	}
}

// TestGatewayIPLifecycle checks the platform releases gateway addresses on
// Teardown: after deploy/teardown churn the allocator reports zero live
// addresses, so the space can sustain unlimited tenant churn.
func TestGatewayIPLifecycle(t *testing.T) {
	c, p := fastCloud(t)
	if _, err := c.LaunchVM("gw-vm", "compute1"); err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 3; cycle++ {
		vol, err := c.Volumes.Create(fmt.Sprintf("gwlife-vol%d", cycle), 8<<20)
		if err != nil {
			t.Fatal(err)
		}
		pol := &policy.Policy{
			Tenant:      fmt.Sprintf("gwlife-%d", cycle),
			MiddleBoxes: []policy.MiddleBoxSpec{{Name: "fwd", Type: policy.TypeForward}},
			Volumes:     []policy.VolumeBinding{{VM: "gw-vm", Volume: vol.ID, Chain: []string{"fwd"}}},
		}
		if _, err := p.Apply(pol); err != nil {
			t.Fatalf("Apply cycle %d: %v", cycle, err)
		}
		if got := p.gwIPs.Live(); got != 2 {
			t.Fatalf("cycle %d: %d gateway IPs live during deployment, want 2", cycle, got)
		}
		if err := p.Teardown(pol.Tenant); err != nil {
			t.Fatalf("Teardown cycle %d: %v", cycle, err)
		}
		if got := p.gwIPs.Live(); got != 0 {
			t.Fatalf("cycle %d: %d gateway IPs leaked after Teardown", cycle, got)
		}
	}
}

// TestConcurrentApplyTeardownChurn runs many tenants through concurrent
// Apply → I/O → Teardown cycles (mixed forward and encryption chains) and
// asserts isolation via per-tenant content hashes: every tenant reads back
// exactly the bytes it wrote, under -race, and no gateway address leaks.
func TestConcurrentApplyTeardownChurn(t *testing.T) {
	c, p := fastCloud(t)
	const tenants = 8
	const cycles = 3
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vmName := fmt.Sprintf("churn-vm%d", i)
			if _, err := c.LaunchVM(vmName, ""); err != nil {
				t.Errorf("tenant %d: LaunchVM: %v", i, err)
				return
			}
			for cy := 0; cy < cycles; cy++ {
				vol, err := c.Volumes.Create(fmt.Sprintf("churn%d-vol%d", i, cy), 8<<20)
				if err != nil {
					t.Errorf("tenant %d: Create: %v", i, err)
					return
				}
				mb := policy.MiddleBoxSpec{Name: "fwd", Type: policy.TypeForward}
				if i%2 == 1 {
					mb = policy.MiddleBoxSpec{
						Name: "enc", Type: policy.TypeEncryption,
						Params: map[string]string{"key": aesKeyHex},
					}
				}
				tenant := fmt.Sprintf("churn%d-c%d", i, cy)
				pol := &policy.Policy{
					Tenant:      tenant,
					MiddleBoxes: []policy.MiddleBoxSpec{mb},
					Volumes:     []policy.VolumeBinding{{VM: vmName, Volume: vol.ID, Chain: []string{mb.Name}}},
				}
				dep, err := p.Apply(pol)
				if err != nil {
					t.Errorf("tenant %d cycle %d: Apply: %v", i, cy, err)
					return
				}
				av := dep.Volumes[vmName+"/"+vol.ID]
				// Tenant-unique payload: any cross-tenant bleed shows up as a
				// hash mismatch on read-back.
				want := bytes.Repeat([]byte{byte(1 + i*29 + cy*7)}, 4096)
				wantSum := sha256.Sum256(want)
				for op := 0; op < 8; op++ {
					lba := uint64(op * 8)
					if err := av.Device.WriteAt(want, lba); err != nil {
						t.Errorf("tenant %d: WriteAt: %v", i, err)
						return
					}
					got := make([]byte, 4096)
					if err := av.Device.ReadAt(got, lba); err != nil {
						t.Errorf("tenant %d: ReadAt: %v", i, err)
						return
					}
					if sha256.Sum256(got) != wantSum {
						t.Errorf("tenant %d cycle %d op %d: content hash mismatch (isolation violation)", i, cy, op)
						return
					}
				}
				if err := p.Teardown(tenant); err != nil {
					t.Errorf("tenant %d cycle %d: Teardown: %v", i, cy, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if got := p.gwIPs.Live(); got != 0 {
		t.Errorf("%d gateway IPs leaked after concurrent churn", got)
	}
}
