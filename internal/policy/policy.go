// Package policy implements StorM's tenant policy interface (Section
// III-D): the declarative description tenants submit to the provider
// naming which VMs and volumes use middle-box services, what each
// middle-box runs and with which virtual resources, and how middle-boxes
// are chained per volume. The platform (internal/core) parses and deploys
// these policies.
package policy

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"time"
)

// ServiceType names a middle-box service.
type ServiceType string

// Supported service types. TypeForward is a pass-through middle-box (the
// MB-FWD configuration used in the evaluation).
const (
	TypeMonitor     ServiceType = "access-monitor"
	TypeEncryption  ServiceType = "encryption"
	TypeReplication ServiceType = "replication"
	TypeForward     ServiceType = "forward"
	// TypeReplicate is the content-addressed replication service: writes
	// are chunked, addressed by content hash (dedup), journaled, and fanned
	// out to N content-addressed backend volumes with quorum acks; a
	// background scrubber repairs divergent backends from the healthy
	// majority.
	TypeReplicate ServiceType = "replicate"
)

// Mode selects the relay design for a middle-box.
type Mode string

// Relay modes. ModeForward is implied by TypeForward.
const (
	ModeActive  Mode = "active"
	ModePassive Mode = "passive"
	ModeForward Mode = "forward"
)

// MiddleBoxSpec declares one middle-box VM.
type MiddleBoxSpec struct {
	Name string      `json:"name"`
	Type ServiceType `json:"type"`
	// Host optionally pins placement.
	Host string `json:"host,omitempty"`
	// Mode selects active or passive relaying (active by default).
	Mode Mode `json:"mode,omitempty"`
	// VCPUs and MemoryMB size the middle-box VM. VCPUs also bounds the
	// relay's concurrent packet-copy paths unless the "copyThreads" param
	// overrides it.
	VCPUs    int `json:"vcpus,omitempty"`
	MemoryMB int `json:"memoryMB,omitempty"`
	// MinInstances / MaxInstances turn the middle-box into an elastic
	// instance group: the platform provisions MinInstances members up
	// front (default 1) and the orchestrator may grow the group to
	// MaxInstances (default MinInstances) under load. Only stateless
	// services — encryption and forward — may scale beyond one instance;
	// monitors reconstruct a single file-system view and replication owns
	// its backup volumes, so splitting their flows would diverge state.
	MinInstances int `json:"minInstances,omitempty"`
	MaxInstances int `json:"maxInstances,omitempty"`
	// Params carries service-specific settings:
	//   encryption:  "key" (64 hex chars)
	//   replication: "replicas" (total copies, >= 2)
	//   access-monitor: "watch" (comma-separated path prefixes)
	//   replicate:   "replicaBackends" content-addressed backend count
	//                (2..4), "replicaQuorum" acks per write (1..backends,
	//                default strict majority), "scrubInterval" background
	//                integrity-scrub pass interval as a Go duration
	//                ("500ms", ...; "0" disables scrubbing),
	//                "replicaChunkBytes" content-addressing granularity
	//                (block-multiple, default 4096)
	// plus relay tuning knobs:
	//   "copyThreads"         concurrent copy paths (overrides VCPUs)
	//   "interceptPerBatchNs" active-relay per-batch copy cost
	//   "interceptBatchBytes" active-relay copy batch size
	//   "forwardConns"        MC/S width of the relay's downstream leg:
	//                         commands spread across this many connections
	//                         to the next hop (1..8, default 1)
	// and durability knobs (active relays only):
	//   "durableJournal"      "true" backs the write journal with an on-disk
	//                         WAL that survives a middle-box crash
	//   "journalFsyncWindow"  WAL group-commit window as a Go duration
	//                         ("0", "1ms", ...); 0 fsyncs every append
	// and observability knobs:
	//   "latencySLO"          per-command service-latency objective as a Go
	//                         duration ("2ms", ...); arms the orchestrator's
	//                         rolling p99/error-budget tracker for the group
	Params map[string]string `json:"params,omitempty"`
}

// VolumeBinding routes one VM's volume through a chain of middle-boxes.
type VolumeBinding struct {
	VM     string `json:"vm"`
	Volume string `json:"volume"`
	// Chain lists middle-box names in traversal order.
	Chain []string `json:"chain"`
	// IngressHost / EgressHost optionally pin the gateway pair (defaults:
	// ingress co-located with the VM, egress chosen by the platform).
	IngressHost string `json:"ingressHost,omitempty"`
	EgressHost  string `json:"egressHost,omitempty"`
}

// Policy is a tenant's full middle-box deployment request.
type Policy struct {
	Tenant      string          `json:"tenant"`
	MiddleBoxes []MiddleBoxSpec `json:"middleboxes"`
	Volumes     []VolumeBinding `json:"volumes"`
}

// Parse decodes a JSON policy and validates it.
func Parse(data []byte) (*Policy, error) {
	var p Policy
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("policy: parse: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Encode renders the policy as JSON.
func (p *Policy) Encode() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// Validate checks structural and service-specific constraints.
func (p *Policy) Validate() error {
	if p.Tenant == "" {
		return fmt.Errorf("policy: tenant name required")
	}
	mbs := make(map[string]*MiddleBoxSpec, len(p.MiddleBoxes))
	for i := range p.MiddleBoxes {
		mb := &p.MiddleBoxes[i]
		if mb.Name == "" {
			return fmt.Errorf("policy: middle-box %d missing name", i)
		}
		if _, dup := mbs[mb.Name]; dup {
			return fmt.Errorf("policy: duplicate middle-box %q", mb.Name)
		}
		mbs[mb.Name] = mb
		switch mb.Type {
		case TypeMonitor, TypeForward:
		case TypeEncryption:
			key := mb.Params["key"]
			raw, err := hex.DecodeString(key)
			if err != nil || len(raw) != 32 {
				return fmt.Errorf("policy: middle-box %q needs a 64-hex-char AES-256 key", mb.Name)
			}
		case TypeReplication:
			n, err := strconv.Atoi(mb.Params["replicas"])
			if err != nil || n < 2 || n > 8 {
				return fmt.Errorf("policy: middle-box %q needs replicas in [2,8]", mb.Name)
			}
		case TypeReplicate:
			n, err := strconv.Atoi(mb.Params["replicaBackends"])
			if err != nil || n < 2 || n > 4 {
				return fmt.Errorf("policy: middle-box %q needs replicaBackends in [2,4]", mb.Name)
			}
			if v := mb.Params["replicaQuorum"]; v != "" {
				q, err := strconv.Atoi(v)
				if err != nil || q < 1 || q > n {
					return fmt.Errorf("policy: middle-box %q: replicaQuorum must be in [1,%d], got %q", mb.Name, n, v)
				}
			}
			if v := mb.Params["scrubInterval"]; v != "" {
				d, err := time.ParseDuration(v)
				if err != nil || d < 0 {
					return fmt.Errorf("policy: middle-box %q: bad scrubInterval %q", mb.Name, v)
				}
			}
			if v := mb.Params["replicaChunkBytes"]; v != "" {
				c, err := strconv.Atoi(v)
				if err != nil || c < 512 || c%512 != 0 {
					return fmt.Errorf("policy: middle-box %q: replicaChunkBytes must be a positive multiple of 512, got %q", mb.Name, v)
				}
			}
			if v := mb.Params["queueHighWatermark"]; v != "" {
				q, err := strconv.Atoi(v)
				if err != nil || q < 1 {
					return fmt.Errorf("policy: middle-box %q: queueHighWatermark must be a positive integer, got %q", mb.Name, v)
				}
			}
			if v := mb.Params["breakerThreshold"]; v != "" {
				b, err := strconv.Atoi(v)
				if err != nil || b < 1 {
					return fmt.Errorf("policy: middle-box %q: breakerThreshold must be a positive integer, got %q", mb.Name, v)
				}
			}
			if v := mb.Params["degradedQuorum"]; v != "" {
				q, err := strconv.Atoi(v)
				if err != nil || q < 1 || q > mb.ReplicaQuorum() {
					return fmt.Errorf("policy: middle-box %q: degradedQuorum must be in [1,%d] (the write quorum), got %q", mb.Name, mb.ReplicaQuorum(), v)
				}
			}
			if mb.EffectiveMode() != ModeActive {
				return fmt.Errorf("policy: middle-box %q: replicate requires an active relay (it intercepts writes)", mb.Name)
			}
		default:
			return fmt.Errorf("policy: middle-box %q has unknown type %q", mb.Name, mb.Type)
		}
		switch mb.Mode {
		case "", ModeActive, ModePassive:
		case ModeForward:
			if mb.Type != TypeForward {
				return fmt.Errorf("policy: middle-box %q: forward mode requires forward type", mb.Name)
			}
		default:
			return fmt.Errorf("policy: middle-box %q has unknown mode %q", mb.Name, mb.Mode)
		}
		if mb.Type == TypeForward && mb.Mode != "" && mb.Mode != ModeForward {
			return fmt.Errorf("policy: middle-box %q: forward type cannot run a relay", mb.Name)
		}
		if mb.MinInstances < 0 || mb.MaxInstances < 0 {
			return fmt.Errorf("policy: middle-box %q: negative instance bounds", mb.Name)
		}
		min, max := mb.EffectiveMinInstances(), mb.EffectiveMaxInstances()
		if max > 16 {
			return fmt.Errorf("policy: middle-box %q: maxInstances %d exceeds the cap of 16", mb.Name, max)
		}
		if max < min {
			return fmt.Errorf("policy: middle-box %q: maxInstances %d below minInstances %d", mb.Name, max, min)
		}
		if max > 1 && mb.Type != TypeEncryption && mb.Type != TypeForward {
			return fmt.Errorf("policy: middle-box %q: type %q cannot scale beyond one instance", mb.Name, mb.Type)
		}
		switch mb.Params["durableJournal"] {
		case "", "false":
		case "true":
			if mb.EffectiveMode() != ModeActive {
				return fmt.Errorf("policy: middle-box %q: durableJournal requires an active relay", mb.Name)
			}
		default:
			return fmt.Errorf("policy: middle-box %q: durableJournal must be true or false", mb.Name)
		}
		if v := mb.Params["forwardConns"]; v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 || n > 8 {
				return fmt.Errorf("policy: middle-box %q: forwardConns must be in [1,8], got %q", mb.Name, v)
			}
			if mb.EffectiveMode() == ModeForward {
				return fmt.Errorf("policy: middle-box %q: forwardConns requires a relay (forward type has no downstream session)", mb.Name)
			}
		}
		if v := mb.Params["journalFsyncWindow"]; v != "" {
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return fmt.Errorf("policy: middle-box %q: bad journalFsyncWindow %q", mb.Name, v)
			}
		}
		if v := mb.Params["latencySLO"]; v != "" {
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return fmt.Errorf("policy: middle-box %q: bad latencySLO %q", mb.Name, v)
			}
		}
	}
	if len(p.Volumes) == 0 {
		return fmt.Errorf("policy: at least one volume binding required")
	}
	monitorUse := make(map[string]int)
	for i, vb := range p.Volumes {
		if vb.VM == "" || vb.Volume == "" {
			return fmt.Errorf("policy: volume binding %d missing vm or volume", i)
		}
		for _, name := range vb.Chain {
			mb, ok := mbs[name]
			if !ok {
				return fmt.Errorf("policy: volume %q chains unknown middle-box %q", vb.Volume, name)
			}
			if mb.Type == TypeMonitor {
				monitorUse[name]++
			}
		}
	}
	// A monitor reconstructs one file system; it serves exactly one volume.
	for name, uses := range monitorUse {
		if uses > 1 {
			return fmt.Errorf("policy: monitor middle-box %q chained by %d volumes; monitors serve one volume", name, uses)
		}
	}
	return nil
}

// EffectiveMode resolves the relay mode for a spec.
func (m *MiddleBoxSpec) EffectiveMode() Mode {
	if m.Type == TypeForward {
		return ModeForward
	}
	if m.Mode == "" {
		return ModeActive
	}
	return m.Mode
}

// Key decodes the encryption key parameter.
func (m *MiddleBoxSpec) Key() ([]byte, error) {
	raw, err := hex.DecodeString(m.Params["key"])
	if err != nil {
		return nil, fmt.Errorf("policy: middle-box %q key: %w", m.Name, err)
	}
	return raw, nil
}

// Replicas returns the replication factor parameter.
func (m *MiddleBoxSpec) Replicas() int {
	n, _ := strconv.Atoi(m.Params["replicas"])
	return n
}

// EffectiveMinInstances resolves the group's initial size (default 1).
func (m *MiddleBoxSpec) EffectiveMinInstances() int {
	if m.MinInstances <= 0 {
		return 1
	}
	return m.MinInstances
}

// EffectiveMaxInstances resolves the group's growth ceiling (default the
// minimum: a fixed-size group).
func (m *MiddleBoxSpec) EffectiveMaxInstances() int {
	if m.MaxInstances <= 0 {
		return m.EffectiveMinInstances()
	}
	return m.MaxInstances
}

// Scalable reports whether the middle-box is an elastic instance group.
func (m *MiddleBoxSpec) Scalable() bool {
	return m.EffectiveMaxInstances() > 1
}

// Grouped reports whether the middle-box is provisioned through the
// instance-group machinery. All scalable services are; so is replicate,
// pinned at one instance (its backend volumes and journal are
// single-writer) but grouped so the orchestrator's crash-replacement loop
// covers it.
func (m *MiddleBoxSpec) Grouped() bool {
	return m.Scalable() || m.Type == TypeReplicate
}

// ReplicaBackends returns the content-addressed backend count for a
// replicate middle-box.
func (m *MiddleBoxSpec) ReplicaBackends() int {
	n, _ := strconv.Atoi(m.Params["replicaBackends"])
	return n
}

// ReplicaQuorum resolves the "replicaQuorum" param — how many backend
// acknowledgements a write waits for. Default: a strict majority of the
// backends.
func (m *MiddleBoxSpec) ReplicaQuorum() int {
	if q, err := strconv.Atoi(m.Params["replicaQuorum"]); err == nil && q >= 1 {
		return q
	}
	return m.ReplicaBackends()/2 + 1
}

// ScrubInterval resolves the "scrubInterval" param — the background
// integrity scrubber's pass interval. Unset defaults to 1s; an explicit
// "0" disables scrubbing.
func (m *MiddleBoxSpec) ScrubInterval() time.Duration {
	v, ok := m.Params["scrubInterval"]
	if !ok {
		return time.Second
	}
	d, err := time.ParseDuration(v)
	if err != nil || d < 0 {
		return time.Second
	}
	return d
}

// ReplicaChunkBytes resolves the "replicaChunkBytes" param — the
// content-addressing granularity. Default 4096.
func (m *MiddleBoxSpec) ReplicaChunkBytes() int {
	if c, err := strconv.Atoi(m.Params["replicaChunkBytes"]); err == nil && c >= 512 && c%512 == 0 {
		return c
	}
	return 4096
}

// QueueHighWatermark resolves the "queueHighWatermark" param — the
// replication box's bounded-admission dispatch-queue ceiling: a write
// arriving with that many journaled-but-uncommitted records pending is
// refused with BUSY instead of queued. 0 (the default) keeps the service
// default.
func (m *MiddleBoxSpec) QueueHighWatermark() int {
	if n, err := strconv.Atoi(m.Params["queueHighWatermark"]); err == nil && n >= 1 {
		return n
	}
	return 0
}

// BreakerThreshold resolves the "breakerThreshold" param — how many
// consecutive failures (or over-deadline applies) trip a backend's
// circuit breaker. 0 (the default) keeps the service default.
func (m *MiddleBoxSpec) BreakerThreshold() int {
	if n, err := strconv.Atoi(m.Params["breakerThreshold"]); err == nil && n >= 1 {
		return n
	}
	return 0
}

// DegradedQuorum resolves the "degradedQuorum" param — the reduced
// write quorum the box may fall back to while backend breakers are open.
// 0 (the default) disables degraded mode: writes hedge at full quorum and
// catch up asynchronously.
func (m *MiddleBoxSpec) DegradedQuorum() int {
	if n, err := strconv.Atoi(m.Params["degradedQuorum"]); err == nil && n >= 1 {
		return n
	}
	return 0
}

// DurableJournal reports whether the middle-box asked for a crash-durable
// (file-backed WAL) write journal via the "durableJournal" param.
func (m *MiddleBoxSpec) DurableJournal() bool {
	return m.Params["durableJournal"] == "true"
}

// JournalFsyncWindow resolves the "journalFsyncWindow" param — the durable
// journal's group-commit window. Zero (the default) fsyncs inline on every
// append.
func (m *MiddleBoxSpec) JournalFsyncWindow() time.Duration {
	d, err := time.ParseDuration(m.Params["journalFsyncWindow"])
	if err != nil || d < 0 {
		return 0
	}
	return d
}

// LatencySLO resolves the "latencySLO" param — the per-command service
// latency objective the orchestrator tracks for the group. Zero (the
// default) disables SLO tracking.
func (m *MiddleBoxSpec) LatencySLO() time.Duration {
	d, err := time.ParseDuration(m.Params["latencySLO"])
	if err != nil || d <= 0 {
		return 0
	}
	return d
}

// ForwardConns resolves the "forwardConns" param — how many MC/S
// connections the relay's downstream (pseudo-client) leg spreads commands
// across. 1 (the default) keeps the single-connection forward leg.
func (m *MiddleBoxSpec) ForwardConns() int {
	if n, err := strconv.Atoi(m.Params["forwardConns"]); err == nil && n >= 1 && n <= 8 {
		return n
	}
	return 1
}

// CopyThreads resolves the relay's concurrent copy-path bound: the
// "copyThreads" param when set, otherwise the VM's vCPU count, otherwise 0
// (unbounded).
func (m *MiddleBoxSpec) CopyThreads() int {
	if v := m.Params["copyThreads"]; v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			return n
		}
	}
	if m.VCPUs > 0 {
		return m.VCPUs
	}
	return 0
}
