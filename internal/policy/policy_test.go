package policy

import (
	"strings"
	"testing"
)

const goodKey = "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"

func validPolicy() *Policy {
	return &Policy{
		Tenant: "acme",
		MiddleBoxes: []MiddleBoxSpec{
			{Name: "mon", Type: TypeMonitor, Params: map[string]string{"watch": "/x"}},
			{Name: "enc", Type: TypeEncryption, Params: map[string]string{"key": goodKey}},
			{Name: "rep", Type: TypeReplication, Params: map[string]string{"replicas": "3"}},
			{Name: "fwd", Type: TypeForward},
		},
		Volumes: []VolumeBinding{
			{VM: "vm1", Volume: "vol-0001", Chain: []string{"mon", "enc"}},
			{VM: "vm2", Volume: "vol-0002", Chain: []string{"rep", "fwd"}},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := validPolicy().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	data, err := validPolicy().Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	p, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Tenant != "acme" || len(p.MiddleBoxes) != 4 || len(p.Volumes) != 2 {
		t.Errorf("round trip lost data: %+v", p)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("{nope")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := Parse([]byte(`{"tenant":""}`)); err == nil {
		t.Error("empty tenant accepted")
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Policy)
		wantSub string
	}{
		{"no tenant", func(p *Policy) { p.Tenant = "" }, "tenant"},
		{"unnamed mb", func(p *Policy) { p.MiddleBoxes[0].Name = "" }, "missing name"},
		{"dup mb", func(p *Policy) { p.MiddleBoxes[1].Name = "mon" }, "duplicate"},
		{"bad type", func(p *Policy) { p.MiddleBoxes[0].Type = "teleport" }, "unknown type"},
		{"bad key", func(p *Policy) { p.MiddleBoxes[1].Params["key"] = "abc" }, "AES-256"},
		{"bad replicas", func(p *Policy) { p.MiddleBoxes[2].Params["replicas"] = "1" }, "replicas"},
		{"bad mode", func(p *Policy) { p.MiddleBoxes[0].Mode = "turbo" }, "unknown mode"},
		{"fwd with relay mode", func(p *Policy) { p.MiddleBoxes[3].Mode = ModeActive }, "forward type"},
		{"relay with fwd mode", func(p *Policy) { p.MiddleBoxes[0].Mode = ModeForward }, "forward mode"},
		{"no volumes", func(p *Policy) { p.Volumes = nil }, "volume binding"},
		{"binding no vm", func(p *Policy) { p.Volumes[0].VM = "" }, "missing vm"},
		{"unknown chain", func(p *Policy) { p.Volumes[0].Chain = []string{"ghost"} }, "unknown middle-box"},
		{"shared monitor", func(p *Policy) { p.Volumes[1].Chain = []string{"mon"} }, "one volume"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := validPolicy()
			tt.mutate(p)
			err := p.Validate()
			if err == nil {
				t.Fatal("Validate accepted the broken policy")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not mention %q", err, tt.wantSub)
			}
		})
	}
}

func TestEffectiveMode(t *testing.T) {
	if (&MiddleBoxSpec{Type: TypeForward}).EffectiveMode() != ModeForward {
		t.Error("forward type should force forward mode")
	}
	if (&MiddleBoxSpec{Type: TypeMonitor}).EffectiveMode() != ModeActive {
		t.Error("default mode should be active")
	}
	if (&MiddleBoxSpec{Type: TypeMonitor, Mode: ModePassive}).EffectiveMode() != ModePassive {
		t.Error("explicit passive ignored")
	}
}

func TestOverloadKnobValidation(t *testing.T) {
	// Build a policy with a replicate box (3 backends → write quorum 2)
	// carrying the given overload params.
	withKnobs := func(params map[string]string) *Policy {
		params["replicaBackends"] = "3"
		p := validPolicy()
		p.MiddleBoxes = append(p.MiddleBoxes, MiddleBoxSpec{Name: "rpl", Type: TypeReplicate, Params: params})
		p.Volumes[1].Chain = []string{"rpl"}
		return p
	}
	good := withKnobs(map[string]string{
		"queueHighWatermark": "256",
		"breakerThreshold":   "5",
		"degradedQuorum":     "1",
	})
	if err := good.Validate(); err != nil {
		t.Fatalf("valid overload knobs rejected: %v", err)
	}
	bad := []struct {
		name   string
		params map[string]string
		want   string
	}{
		{"zero watermark", map[string]string{"queueHighWatermark": "0"}, "queueHighWatermark"},
		{"garbage watermark", map[string]string{"queueHighWatermark": "lots"}, "queueHighWatermark"},
		{"zero threshold", map[string]string{"breakerThreshold": "0"}, "breakerThreshold"},
		{"zero degraded quorum", map[string]string{"degradedQuorum": "0"}, "degradedQuorum"},
		{"degraded above quorum", map[string]string{"degradedQuorum": "3"}, "degradedQuorum"},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			err := withKnobs(tt.params).Validate()
			if err == nil {
				t.Fatal("Validate accepted the broken knob")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
	spec := &MiddleBoxSpec{Type: TypeReplicate, Params: map[string]string{"replicaBackends": "3"}}
	if spec.QueueHighWatermark() != 0 || spec.BreakerThreshold() != 0 || spec.DegradedQuorum() != 0 {
		t.Error("unset overload knobs should resolve to 0 (service defaults)")
	}
}

func TestKeyAndReplicasAccessors(t *testing.T) {
	enc := &MiddleBoxSpec{Type: TypeEncryption, Params: map[string]string{"key": goodKey}}
	key, err := enc.Key()
	if err != nil || len(key) != 32 {
		t.Errorf("Key() = %d bytes, %v", len(key), err)
	}
	bad := &MiddleBoxSpec{Type: TypeEncryption, Params: map[string]string{"key": "zz"}}
	if _, err := bad.Key(); err == nil {
		t.Error("bad hex accepted")
	}
	rep := &MiddleBoxSpec{Type: TypeReplication, Params: map[string]string{"replicas": "4"}}
	if rep.Replicas() != 4 {
		t.Errorf("Replicas() = %d", rep.Replicas())
	}
}
