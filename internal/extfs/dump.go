package extfs

import (
	"fmt"
	"sort"
	"strings"
)

// FileRecord is one live inode in the dumped system view.
type FileRecord struct {
	Ino  uint32
	Path string
	Type FileType
	Size uint64
	// Blocks are the file's data blocks in logical order (absolute fs
	// block numbers).
	Blocks []uint64
}

// View is the initial high-level system view StorM generates when a block
// device is attached to its tenant VM (Section III-C): the file system's
// geometry (so metadata accesses can be classified) plus the mapping from
// data blocks to file paths. It is the analogue of the prototype's
// dumpe2fs-derived view.
type View struct {
	BlockSize       uint32
	SectorsPerBlock int
	BlocksCount     uint64
	InodesPerGroup  uint32
	Groups          []GroupLayout
	// Files lists every live inode with its path and block map.
	Files []FileRecord
}

// Dump builds the initial system view by walking the directory tree.
func (fs *FS) Dump() (*View, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	v := &View{
		BlockSize:       fs.sb.BlockSize,
		SectorsPerBlock: fs.sectorsPerBlock,
		BlocksCount:     fs.sb.BlocksCount,
		InodesPerGroup:  fs.sb.InodesPerGroup,
		Groups:          append([]GroupLayout(nil), fs.geom...),
	}
	if err := fs.dumpDir("/", RootIno, v, make(map[uint32]bool)); err != nil {
		return nil, err
	}
	sort.Slice(v.Files, func(i, j int) bool { return v.Files[i].Path < v.Files[j].Path })
	return v, nil
}

func (fs *FS) dumpDir(path string, ino uint32, v *View, seen map[uint32]bool) error {
	if seen[ino] {
		return fmt.Errorf("extfs: directory cycle at inode %d", ino)
	}
	seen[ino] = true
	in, err := fs.readInode(ino)
	if err != nil {
		return err
	}
	blocks, err := fs.fileBlocks(in)
	if err != nil {
		return err
	}
	v.Files = append(v.Files, FileRecord{
		Ino:    ino,
		Path:   path,
		Type:   TypeDir,
		Size:   in.Size,
		Blocks: blocks,
	})
	for _, blk := range blocks {
		buf, err := fs.readBlock(blk)
		if err != nil {
			return err
		}
		ents, err := parseDirBlock(buf)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if e.Name == "." || e.Name == ".." {
				continue
			}
			child := joinPath(path, e.Name)
			if e.Type == TypeDir {
				if err := fs.dumpDir(child, e.Ino, v, seen); err != nil {
					return err
				}
				continue
			}
			cin, err := fs.readInode(e.Ino)
			if err != nil {
				return err
			}
			cblocks, err := fs.fileBlocks(cin)
			if err != nil {
				return err
			}
			v.Files = append(v.Files, FileRecord{
				Ino:    e.Ino,
				Path:   child,
				Type:   cin.Type,
				Size:   cin.Size,
				Blocks: cblocks,
			})
		}
	}
	return nil
}

func joinPath(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}

// String renders a dumpe2fs-style summary.
func (v *View) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "extfs view: %d blocks of %d bytes, %d groups\n",
		v.BlocksCount, v.BlockSize, len(v.Groups))
	for _, f := range v.Files {
		fmt.Fprintf(&b, "  %-4s %8d  %s (inode %d, %d blocks)\n",
			f.Type, f.Size, f.Path, f.Ino, len(f.Blocks))
	}
	return b.String()
}
