package extfs

// This file exports the raw metadata decoders the semantics-reconstruction
// layer needs to interpret intercepted metadata writes. The decoders are
// read-only views over on-disk bytes; they never touch a device.

// InodeRecord is the publicly decodable on-disk inode form.
type InodeRecord struct {
	Type           FileType
	Links          uint16
	Size           uint64
	Mtime          uint64
	Direct         [directBlocks]uint64
	Indirect       uint64
	DoubleIndirect uint64
}

// DirectBlockCount is the number of direct pointers per inode.
const DirectBlockCount = directBlocks

// PointerSize is the width of a block pointer inside indirect blocks.
const PointerSize = ptrSize

// DecodeInodeRecord parses one on-disk inode (InodeSize bytes).
func DecodeInodeRecord(b []byte) InodeRecord {
	var in Inode
	in.decode(b)
	return InodeRecord{
		Type:           in.Type,
		Links:          in.Links,
		Size:           in.Size,
		Mtime:          in.Mtime,
		Direct:         in.Direct,
		Indirect:       in.Indirect,
		DoubleIndirect: in.DoubleIndirect,
	}
}

// ParseDirBlock parses the live entries of a raw directory block.
func ParseDirBlock(b []byte) ([]Dirent, error) {
	return parseDirBlock(b)
}

// DecodeSuperblock parses an on-disk superblock, returning ErrNotFormatted
// when the magic is absent.
func DecodeSuperblock(b []byte) (Superblock, error) {
	var sb Superblock
	err := sb.decode(b)
	return sb, err
}
