package extfs

import (
	"fmt"
	"sort"
	"strings"
)

// FileInfo describes a file or directory.
type FileInfo struct {
	Name string
	Ino  uint32
	Type FileType
	Size uint64
	// Mtime is the logical modification timestamp.
	Mtime uint64
}

// IsDir reports whether the entry is a directory.
func (fi FileInfo) IsDir() bool { return fi.Type == TypeDir }

// splitPath normalizes an absolute path into components.
func splitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("extfs: path %q is not absolute", path)
	}
	var parts []string
	for _, p := range strings.Split(path, "/") {
		switch p {
		case "", ".":
		case "..":
			if len(parts) > 0 {
				parts = parts[:len(parts)-1]
			}
		default:
			parts = append(parts, p)
		}
	}
	return parts, nil
}

// resolve walks the path to its inode.
func (fs *FS) resolve(path string) (uint32, *Inode, error) {
	parts, err := splitPath(path)
	if err != nil {
		return 0, nil, err
	}
	ino := uint32(RootIno)
	in, err := fs.readInode(ino)
	if err != nil {
		return 0, nil, err
	}
	for _, name := range parts {
		if in.Type != TypeDir {
			return 0, nil, ErrNotDir
		}
		ent, err := fs.lookupInDir(in, name)
		if err != nil {
			return 0, nil, err
		}
		ino = ent.Ino
		if in, err = fs.readInode(ino); err != nil {
			return 0, nil, err
		}
	}
	return ino, in, nil
}

// resolveParent walks to the parent directory of path, returning it plus
// the leaf name.
func (fs *FS) resolveParent(path string) (uint32, *Inode, string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return 0, nil, "", err
	}
	if len(parts) == 0 {
		return 0, nil, "", fmt.Errorf("extfs: %q has no parent", path)
	}
	parent := "/" + strings.Join(parts[:len(parts)-1], "/")
	ino, in, err := fs.resolve(parent)
	if err != nil {
		return 0, nil, "", err
	}
	if in.Type != TypeDir {
		return 0, nil, "", ErrNotDir
	}
	return ino, in, parts[len(parts)-1], nil
}

// Create makes an empty regular file.
func (fs *FS) Create(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, err := fs.createNode(path, TypeFile)
	return err
}

// Mkdir makes a directory.
func (fs *FS) Mkdir(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, err := fs.createNode(path, TypeDir)
	return err
}

// MkdirAll makes a directory and any missing ancestors.
func (fs *FS) MkdirAll(path string) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	cur := ""
	for _, p := range parts {
		cur += "/" + p
		if err := fs.Mkdir(cur); err != nil && err != ErrExists {
			return err
		}
	}
	return nil
}

// createNode allocates an inode and links it under the parent.
func (fs *FS) createNode(path string, ft FileType) (uint32, error) {
	parentIno, parent, name, err := fs.resolveParent(path)
	if err != nil {
		return 0, err
	}
	if _, err := fs.lookupInDir(parent, name); err == nil {
		return 0, ErrExists
	} else if err != ErrNotFound {
		return 0, err
	}
	ino, err := fs.allocInode()
	if err != nil {
		return 0, err
	}
	now := fs.tick()
	in := Inode{Type: ft, Links: 1, Mtime: now, Ctime: now}
	if ft == TypeDir {
		blk, err := fs.allocBlock()
		if err != nil {
			return 0, err
		}
		in.Direct[0] = blk
		in.Size = uint64(fs.sb.BlockSize)
		in.Links = 2
		buf := make([]byte, fs.sb.BlockSize)
		initDirBlock(buf, ino, parentIno)
		if err := fs.writeBlock(blk, buf); err != nil {
			return 0, err
		}
	}
	if err := fs.writeInode(ino, &in); err != nil {
		return 0, err
	}
	if err := fs.addDirEntry(parentIno, parent, name, ino, ft); err != nil {
		return 0, err
	}
	if ft == TypeDir {
		parent.Links++
	}
	parent.Mtime = fs.tick()
	if err := fs.writeInode(parentIno, parent); err != nil {
		return 0, err
	}
	return ino, nil
}

// WriteFile truncates the file (creating it if needed) and writes data.
func (fs *FS) WriteFile(path string, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, in, err := fs.resolve(path)
	if err == ErrNotFound {
		if ino, err = fs.createNode(path, TypeFile); err != nil {
			return err
		}
		if in, err = fs.readInode(ino); err != nil {
			return err
		}
	} else if err != nil {
		return err
	}
	if in.Type == TypeDir {
		return ErrIsDir
	}
	if err := fs.freeInodeBlocks(in); err != nil {
		return err
	}
	return fs.writeAtLocked(ino, in, data, 0)
}

// WriteAt writes data at the byte offset, growing the file as needed.
func (fs *FS) WriteAt(path string, data []byte, offset uint64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, in, err := fs.resolve(path)
	if err != nil {
		return err
	}
	if in.Type == TypeDir {
		return ErrIsDir
	}
	return fs.writeAtLocked(ino, in, data, offset)
}

// Append writes data at the end of the file.
func (fs *FS) Append(path string, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, in, err := fs.resolve(path)
	if err != nil {
		return err
	}
	if in.Type == TypeDir {
		return ErrIsDir
	}
	return fs.writeAtLocked(ino, in, data, in.Size)
}

func (fs *FS) writeAtLocked(ino uint32, in *Inode, data []byte, offset uint64) error {
	bs := uint64(fs.sb.BlockSize)
	if (offset+uint64(len(data))+bs-1)/bs > fs.maxFileBlocks() {
		return ErrFileTooBig
	}
	pos := offset
	rest := data
	for len(rest) > 0 {
		idx := pos / bs
		within := pos % bs
		n := bs - within
		if n > uint64(len(rest)) {
			n = uint64(len(rest))
		}
		blk, err := fs.blockOfFile(in, idx, true)
		if err != nil {
			return err
		}
		if within == 0 && n == bs {
			if err := fs.writeBlock(blk, rest[:bs]); err != nil {
				return err
			}
		} else {
			buf, err := fs.readBlock(blk)
			if err != nil {
				return err
			}
			copy(buf[within:], rest[:n])
			if err := fs.writeBlock(blk, buf); err != nil {
				return err
			}
		}
		pos += n
		rest = rest[n:]
	}
	if pos > in.Size {
		in.Size = pos
	}
	in.Mtime = fs.tick()
	return fs.writeInode(ino, in)
}

// ReadFile reads the whole file.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, in, err := fs.resolve(path)
	if err != nil {
		return nil, err
	}
	if in.Type == TypeDir {
		return nil, ErrIsDir
	}
	buf := make([]byte, in.Size)
	if err := fs.readAtLocked(in, buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadAt fills p from the byte offset. Reading past EOF is an error.
func (fs *FS) ReadAt(path string, p []byte, offset uint64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, in, err := fs.resolve(path)
	if err != nil {
		return err
	}
	if in.Type == TypeDir {
		return ErrIsDir
	}
	if offset+uint64(len(p)) > in.Size {
		return fmt.Errorf("extfs: read [%d,%d) beyond size %d", offset, offset+uint64(len(p)), in.Size)
	}
	return fs.readAtLocked(in, p, offset)
}

func (fs *FS) readAtLocked(in *Inode, p []byte, offset uint64) error {
	bs := uint64(fs.sb.BlockSize)
	pos := offset
	rest := p
	for len(rest) > 0 {
		idx := pos / bs
		within := pos % bs
		n := bs - within
		if n > uint64(len(rest)) {
			n = uint64(len(rest))
		}
		blk, err := fs.blockOfFile(in, idx, false)
		if err != nil {
			return err
		}
		if blk == 0 {
			clear(rest[:n]) // sparse hole
		} else {
			buf, err := fs.readBlock(blk)
			if err != nil {
				return err
			}
			copy(rest[:n], buf[within:within+n])
		}
		pos += n
		rest = rest[n:]
	}
	return nil
}

// Remove unlinks a regular file, freeing its inode and blocks.
func (fs *FS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parentIno, parent, name, err := fs.resolveParent(path)
	if err != nil {
		return err
	}
	ent, err := fs.lookupInDir(parent, name)
	if err != nil {
		return err
	}
	in, err := fs.readInode(ent.Ino)
	if err != nil {
		return err
	}
	if in.Type == TypeDir {
		return ErrIsDir
	}
	if err := fs.removeDirEntry(parent, name); err != nil {
		return err
	}
	if err := fs.freeInodeBlocks(in); err != nil {
		return err
	}
	in.Type = TypeFree
	in.Links = 0
	if err := fs.writeInode(ent.Ino, in); err != nil {
		return err
	}
	if err := fs.freeInode(ent.Ino); err != nil {
		return err
	}
	parent.Mtime = fs.tick()
	return fs.writeInode(parentIno, parent)
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parentIno, parent, name, err := fs.resolveParent(path)
	if err != nil {
		return err
	}
	ent, err := fs.lookupInDir(parent, name)
	if err != nil {
		return err
	}
	in, err := fs.readInode(ent.Ino)
	if err != nil {
		return err
	}
	if in.Type != TypeDir {
		return ErrNotDir
	}
	empty, err := fs.dirIsEmpty(in)
	if err != nil {
		return err
	}
	if !empty {
		return ErrNotEmpty
	}
	if err := fs.removeDirEntry(parent, name); err != nil {
		return err
	}
	if err := fs.freeInodeBlocks(in); err != nil {
		return err
	}
	in.Type = TypeFree
	in.Links = 0
	if err := fs.writeInode(ent.Ino, in); err != nil {
		return err
	}
	if err := fs.freeInode(ent.Ino); err != nil {
		return err
	}
	parent.Links--
	parent.Mtime = fs.tick()
	return fs.writeInode(parentIno, parent)
}

// Rename moves oldPath to newPath (which must not exist).
func (fs *FS) Rename(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	oldParentIno, oldParent, oldName, err := fs.resolveParent(oldPath)
	if err != nil {
		return err
	}
	ent, err := fs.lookupInDir(oldParent, oldName)
	if err != nil {
		return err
	}
	newParentIno, newParent, newName, err := fs.resolveParent(newPath)
	if err != nil {
		return err
	}
	if _, err := fs.lookupInDir(newParent, newName); err == nil {
		return ErrExists
	} else if err != ErrNotFound {
		return err
	}
	if err := fs.addDirEntry(newParentIno, newParent, newName, ent.Ino, ent.Type); err != nil {
		return err
	}
	// Re-read the old parent when both parents are the same inode, so we
	// see the entry layout the insert produced.
	if newParentIno == oldParentIno {
		oldParent, err = fs.readInode(oldParentIno)
		if err != nil {
			return err
		}
	}
	if err := fs.removeDirEntry(oldParent, oldName); err != nil {
		return err
	}
	if ent.Type == TypeDir && oldParentIno != newParentIno {
		oldParent.Links--
		newParent.Links++
		if err := fs.writeInode(newParentIno, newParent); err != nil {
			return err
		}
	}
	oldParent.Mtime = fs.tick()
	if err := fs.writeInode(oldParentIno, oldParent); err != nil {
		return err
	}
	if newParentIno != oldParentIno {
		newParent.Mtime = fs.tick()
		return fs.writeInode(newParentIno, newParent)
	}
	return nil
}

// ReadDir lists the directory (excluding "." and ".."), sorted by name.
func (fs *FS) ReadDir(path string) ([]Dirent, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, in, err := fs.resolve(path)
	if err != nil {
		return nil, err
	}
	if in.Type != TypeDir {
		return nil, ErrNotDir
	}
	blocks, err := fs.dirBlocks(in)
	if err != nil {
		return nil, err
	}
	var out []Dirent
	for _, blk := range blocks {
		buf, err := fs.readBlock(blk)
		if err != nil {
			return nil, err
		}
		ents, err := parseDirBlock(buf)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			if e.Name != "." && e.Name != ".." {
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Stat returns metadata for a path.
func (fs *FS) Stat(path string) (FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, in, err := fs.resolve(path)
	if err != nil {
		return FileInfo{}, err
	}
	parts, _ := splitPath(path)
	name := "/"
	if len(parts) > 0 {
		name = parts[len(parts)-1]
	}
	return FileInfo{Name: name, Ino: ino, Type: in.Type, Size: in.Size, Mtime: in.Mtime}, nil
}

// Truncate sets the file size. Shrinking frees whole blocks past the new
// end; growing leaves a sparse hole.
func (fs *FS) Truncate(path string, size uint64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, in, err := fs.resolve(path)
	if err != nil {
		return err
	}
	if in.Type == TypeDir {
		return ErrIsDir
	}
	bs := uint64(fs.sb.BlockSize)
	if size < in.Size {
		keep := (size + bs - 1) / bs
		total := (in.Size + bs - 1) / bs
		for idx := keep; idx < total; idx++ {
			blk, err := fs.blockOfFile(in, idx, false)
			if err != nil {
				return err
			}
			if blk == 0 {
				continue
			}
			if err := fs.freeBlock(blk); err != nil {
				return err
			}
			if err := fs.clearBlockPointer(in, idx); err != nil {
				return err
			}
		}
	}
	if (size+bs-1)/bs > fs.maxFileBlocks() {
		return ErrFileTooBig
	}
	in.Size = size
	in.Mtime = fs.tick()
	return fs.writeInode(ino, in)
}

// clearBlockPointer zeroes the mapping for logical block idx.
func (fs *FS) clearBlockPointer(in *Inode, idx uint64) error {
	p := fs.ptrsPerBlock()
	switch {
	case idx < directBlocks:
		in.Direct[idx] = 0
		return nil
	case idx < directBlocks+p:
		if in.Indirect == 0 {
			return nil
		}
		return fs.zeroPtrSlot(in.Indirect, idx-directBlocks)
	default:
		if in.DoubleIndirect == 0 {
			return nil
		}
		rest := idx - directBlocks - p
		mid, err := fs.ptrInBlock(in.DoubleIndirect, rest/p, false)
		if err != nil || mid == 0 {
			return err
		}
		return fs.zeroPtrSlot(mid, rest%p)
	}
}

func (fs *FS) zeroPtrSlot(blk, i uint64) error {
	buf, err := fs.readBlock(blk)
	if err != nil {
		return err
	}
	clear(buf[int(i)*ptrSize : int(i)*ptrSize+8])
	return fs.writeBlock(blk, buf)
}

// Sync flushes the backing device.
func (fs *FS) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.dev.Flush()
}

// Exists reports whether the path resolves.
func (fs *FS) Exists(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, _, err := fs.resolve(path)
	return err == nil
}
