// Package extfs implements an ext2-style file system from scratch on top of
// a blockdev.Device: superblock, block groups with block/inode bitmaps and
// inode tables, directories as dentry blocks, and direct/indirect/double-
// indirect data addressing. The simulated tenant VM formats its attached
// iSCSI volume with extfs and performs file operations on it, generating
// exactly the metadata and data block traffic StorM's semantics
// reconstruction (Section III-C) interprets; Dump produces the initial
// high-level system view the platform supplies to middle-boxes.
//
// The on-disk layout is little-endian, mirroring the ext family.
package extfs

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic identifies an extfs superblock.
const Magic uint32 = 0x53746F72 // "Stor"

// Well-known inode numbers (ext convention: inode numbering is 1-based and
// the root directory is inode 2).
const (
	BadBlocksIno = 1
	RootIno      = 2
	firstFreeIno = 3
)

// InodeSize is the on-disk inode record size.
const InodeSize = 128

// File type codes stored in inodes and directory entries.
type FileType uint8

// File types.
const (
	TypeFree    FileType = 0
	TypeFile    FileType = 1
	TypeDir     FileType = 2
	TypeSymlink FileType = 3
)

// String renders the file type.
func (t FileType) String() string {
	switch t {
	case TypeFile:
		return "file"
	case TypeDir:
		return "dir"
	case TypeSymlink:
		return "link"
	default:
		return "free"
	}
}

// Common file system errors.
var (
	ErrNotFormatted = errors.New("extfs: device holds no file system")
	ErrExists       = errors.New("extfs: file exists")
	ErrNotFound     = errors.New("extfs: no such file or directory")
	ErrNotDir       = errors.New("extfs: not a directory")
	ErrIsDir        = errors.New("extfs: is a directory")
	ErrNotEmpty     = errors.New("extfs: directory not empty")
	ErrNoSpace      = errors.New("extfs: no space left on device")
	ErrNameTooLong  = errors.New("extfs: file name too long")
	ErrFileTooBig   = errors.New("extfs: file exceeds maximum size")
)

// MaxNameLen bounds directory entry names.
const MaxNameLen = 255

// Superblock is the file system's root metadata (fs block 0).
type Superblock struct {
	Magic          uint32
	BlockSize      uint32 // fs block size in bytes
	BlocksCount    uint64 // total fs blocks
	InodesCount    uint32
	BlocksPerGroup uint32
	InodesPerGroup uint32
	GroupCount     uint32
	FreeBlocks     uint64
	FreeInodes     uint32
	// MountGen increments on every mount (used as a logical clock base).
	MountGen uint32
}

const superblockLen = 44

// encode serializes the superblock into b (at least superblockLen bytes).
func (sb *Superblock) encode(b []byte) {
	binary.LittleEndian.PutUint32(b[0:4], sb.Magic)
	binary.LittleEndian.PutUint32(b[4:8], sb.BlockSize)
	binary.LittleEndian.PutUint64(b[8:16], sb.BlocksCount)
	binary.LittleEndian.PutUint32(b[16:20], sb.InodesCount)
	binary.LittleEndian.PutUint32(b[20:24], sb.BlocksPerGroup)
	binary.LittleEndian.PutUint32(b[24:28], sb.InodesPerGroup)
	binary.LittleEndian.PutUint32(b[28:32], sb.GroupCount)
	binary.LittleEndian.PutUint64(b[32:40], sb.FreeBlocks)
	// FreeInodes and MountGen share the remaining 4+4... keep layout flat:
	binary.LittleEndian.PutUint32(b[40:44], sb.FreeInodes)
}

// decode parses a superblock.
func (sb *Superblock) decode(b []byte) error {
	if len(b) < superblockLen {
		return fmt.Errorf("extfs: superblock buffer too short (%d bytes)", len(b))
	}
	sb.Magic = binary.LittleEndian.Uint32(b[0:4])
	if sb.Magic != Magic {
		return ErrNotFormatted
	}
	sb.BlockSize = binary.LittleEndian.Uint32(b[4:8])
	sb.BlocksCount = binary.LittleEndian.Uint64(b[8:16])
	sb.InodesCount = binary.LittleEndian.Uint32(b[16:20])
	sb.BlocksPerGroup = binary.LittleEndian.Uint32(b[20:24])
	sb.InodesPerGroup = binary.LittleEndian.Uint32(b[24:28])
	sb.GroupCount = binary.LittleEndian.Uint32(b[28:32])
	sb.FreeBlocks = binary.LittleEndian.Uint64(b[32:40])
	sb.FreeInodes = binary.LittleEndian.Uint32(b[40:44])
	return nil
}

// GroupLayout locates one block group's metadata inside the fs block space.
// All positions are absolute fs block numbers.
type GroupLayout struct {
	Index         uint32
	BlockBitmap   uint64
	InodeBitmap   uint64
	InodeTable    uint64 // first inode-table block
	InodeBlocks   uint32 // inode-table length in blocks
	DataStart     uint64 // first data block
	BlocksInGroup uint32 // fs blocks covered by this group (incl. metadata)
}

// Geometry derives the full group layout from a superblock. The group
// metadata lives at the start of each group: [block bitmap][inode bitmap]
// [inode table][data...]. Group 0 starts at fs block 1 (after the
// superblock).
func (sb *Superblock) Geometry() []GroupLayout {
	inodeBlocks := (sb.InodesPerGroup*InodeSize + sb.BlockSize - 1) / sb.BlockSize
	groups := make([]GroupLayout, sb.GroupCount)
	next := uint64(1) // block 0 is the superblock
	remaining := sb.BlocksCount - 1
	for i := range groups {
		g := &groups[i]
		g.Index = uint32(i)
		g.BlockBitmap = next
		g.InodeBitmap = next + 1
		g.InodeTable = next + 2
		g.InodeBlocks = inodeBlocks
		g.DataStart = next + 2 + uint64(inodeBlocks)
		span := uint64(sb.BlocksPerGroup)
		if span > remaining {
			span = remaining
		}
		g.BlocksInGroup = uint32(span)
		next += span
		remaining -= span
	}
	return groups
}

// dataBlocksInGroup returns the number of allocatable data blocks in g.
func (g *GroupLayout) dataBlocks() uint32 {
	meta := uint32(g.DataStart - g.BlockBitmap)
	if g.BlocksInGroup <= meta {
		return 0
	}
	return g.BlocksInGroup - meta
}

// BlockClass classifies an fs block for the semantics layer.
type BlockClass int

// Block classes.
const (
	ClassSuperblock BlockClass = iota + 1
	ClassBlockBitmap
	ClassInodeBitmap
	ClassInodeTable
	ClassData
)

// String renders the class.
func (c BlockClass) String() string {
	switch c {
	case ClassSuperblock:
		return "superblock"
	case ClassBlockBitmap:
		return "block-bitmap"
	case ClassInodeBitmap:
		return "inode-bitmap"
	case ClassInodeTable:
		return "inode-table"
	case ClassData:
		return "data"
	default:
		return "class(?)"
	}
}

// Classify maps an fs block number to its class and owning group.
func (sb *Superblock) Classify(fsBlock uint64, geom []GroupLayout) (BlockClass, uint32) {
	if fsBlock == 0 {
		return ClassSuperblock, 0
	}
	for i := range geom {
		g := &geom[i]
		if fsBlock < g.BlockBitmap || fsBlock >= g.BlockBitmap+uint64(g.BlocksInGroup) {
			continue
		}
		switch {
		case fsBlock == g.BlockBitmap:
			return ClassBlockBitmap, g.Index
		case fsBlock == g.InodeBitmap:
			return ClassInodeBitmap, g.Index
		case fsBlock < g.DataStart:
			return ClassInodeTable, g.Index
		default:
			return ClassData, g.Index
		}
	}
	return ClassData, 0
}
