package extfs

import (
	"encoding/binary"
	"fmt"
)

// Directory entries use the ext2 record format: a block is fully covered by
// variable-length records; deleting an entry merges its space into the
// preceding record's length.
const direntHeader = 8 // inode(4) + recLen(2) + nameLen(1) + fileType(1)

// Dirent is one parsed directory entry.
type Dirent struct {
	Ino  uint32
	Type FileType
	Name string
}

// direntRecLen returns the aligned record length for a name.
func direntRecLen(nameLen int) int {
	return (direntHeader + nameLen + 3) &^ 3
}

// initDirBlock fills a fresh directory block with "." and ".." entries.
func initDirBlock(blk []byte, self, parent uint32) {
	// "."
	binary.LittleEndian.PutUint32(blk[0:4], self)
	binary.LittleEndian.PutUint16(blk[4:6], uint16(direntRecLen(1)))
	blk[6] = 1
	blk[7] = byte(TypeDir)
	blk[8] = '.'
	// ".." covering the rest of the block.
	off := direntRecLen(1)
	binary.LittleEndian.PutUint32(blk[off:off+4], parent)
	binary.LittleEndian.PutUint16(blk[off+4:off+6], uint16(len(blk)-off))
	blk[off+6] = 2
	blk[off+7] = byte(TypeDir)
	blk[off+8] = '.'
	blk[off+9] = '.'
}

// parseDirBlock yields the live entries of a directory block.
func parseDirBlock(blk []byte) ([]Dirent, error) {
	var out []Dirent
	off := 0
	for off < len(blk) {
		if off+direntHeader > len(blk) {
			return nil, fmt.Errorf("extfs: corrupt dirent at offset %d", off)
		}
		ino := binary.LittleEndian.Uint32(blk[off : off+4])
		recLen := int(binary.LittleEndian.Uint16(blk[off+4 : off+6]))
		nameLen := int(blk[off+6])
		if recLen < direntHeader || off+recLen > len(blk) || direntHeader+nameLen > recLen {
			return nil, fmt.Errorf("extfs: corrupt dirent record at offset %d (recLen=%d nameLen=%d)", off, recLen, nameLen)
		}
		if ino != 0 && nameLen > 0 {
			out = append(out, Dirent{
				Ino:  ino,
				Type: FileType(blk[off+7]),
				Name: string(blk[off+direntHeader : off+direntHeader+nameLen]),
			})
		}
		off += recLen
	}
	return out, nil
}

// dirBlocks iterates the data blocks of a directory inode.
func (fs *FS) dirBlocks(in *Inode) ([]uint64, error) {
	return fs.fileBlocks(in)
}

// lookupInDir finds name in the directory, returning its entry.
func (fs *FS) lookupInDir(dir *Inode, name string) (*Dirent, error) {
	blocks, err := fs.dirBlocks(dir)
	if err != nil {
		return nil, err
	}
	for _, blk := range blocks {
		buf, err := fs.readBlock(blk)
		if err != nil {
			return nil, err
		}
		ents, err := parseDirBlock(buf)
		if err != nil {
			return nil, err
		}
		for i := range ents {
			if ents[i].Name == name {
				return &ents[i], nil
			}
		}
	}
	return nil, ErrNotFound
}

// addDirEntry inserts (name -> ino) into the directory, growing it by one
// block if needed. dirIno is the directory's inode number; dir is mutated
// (size) and written back by the caller when grown.
func (fs *FS) addDirEntry(dirIno uint32, dir *Inode, name string, ino uint32, ft FileType) error {
	if len(name) == 0 || len(name) > MaxNameLen {
		return ErrNameTooLong
	}
	need := direntRecLen(len(name))
	blocks, err := fs.dirBlocks(dir)
	if err != nil {
		return err
	}
	for _, blk := range blocks {
		buf, err := fs.readBlock(blk)
		if err != nil {
			return err
		}
		if fs.insertIntoDirBlock(buf, name, ino, ft, need) {
			return fs.writeBlock(blk, buf)
		}
	}
	// No room: grow the directory by one block.
	idx := dir.Size / uint64(fs.sb.BlockSize)
	blk, err := fs.blockOfFile(dir, idx, true)
	if err != nil {
		return err
	}
	buf := make([]byte, fs.sb.BlockSize)
	// One record spanning the whole block.
	binary.LittleEndian.PutUint32(buf[0:4], ino)
	binary.LittleEndian.PutUint16(buf[4:6], uint16(len(buf)))
	buf[6] = byte(len(name))
	buf[7] = byte(ft)
	copy(buf[direntHeader:], name)
	if err := fs.writeBlock(blk, buf); err != nil {
		return err
	}
	dir.Size += uint64(fs.sb.BlockSize)
	dir.Mtime = fs.tick()
	return fs.writeInode(dirIno, dir)
}

// insertIntoDirBlock finds space in one directory block, splitting an
// existing record. Returns false when the block has no room.
func (fs *FS) insertIntoDirBlock(buf []byte, name string, ino uint32, ft FileType, need int) bool {
	off := 0
	for off < len(buf) {
		entIno := binary.LittleEndian.Uint32(buf[off : off+4])
		recLen := int(binary.LittleEndian.Uint16(buf[off+4 : off+6]))
		nameLen := int(buf[off+6])
		if recLen < direntHeader || off+recLen > len(buf) {
			return false // corrupt; let reads report it
		}
		var used int
		if entIno == 0 || nameLen == 0 {
			used = 0
		} else {
			used = direntRecLen(nameLen)
		}
		if recLen-used >= need {
			insertAt := off + used
			if used == 0 {
				insertAt = off
			} else {
				binary.LittleEndian.PutUint16(buf[off+4:off+6], uint16(used))
			}
			rest := off + recLen - insertAt
			binary.LittleEndian.PutUint32(buf[insertAt:insertAt+4], ino)
			binary.LittleEndian.PutUint16(buf[insertAt+4:insertAt+6], uint16(rest))
			buf[insertAt+6] = byte(len(name))
			buf[insertAt+7] = byte(ft)
			copy(buf[insertAt+direntHeader:], name)
			// Clear stale name bytes after the new name within the header
			// area we own (cosmetic; parsing uses nameLen).
			return true
		}
		off += recLen
	}
	return false
}

// removeDirEntry deletes name from the directory.
func (fs *FS) removeDirEntry(dir *Inode, name string) error {
	blocks, err := fs.dirBlocks(dir)
	if err != nil {
		return err
	}
	for _, blk := range blocks {
		buf, err := fs.readBlock(blk)
		if err != nil {
			return err
		}
		if fs.removeFromDirBlock(buf, name) {
			return fs.writeBlock(blk, buf)
		}
	}
	return ErrNotFound
}

// removeFromDirBlock unlinks a name inside one block by merging its record
// into the predecessor (or zeroing the inode when it is the first record).
func (fs *FS) removeFromDirBlock(buf []byte, name string) bool {
	off, prev := 0, -1
	for off < len(buf) {
		ino := binary.LittleEndian.Uint32(buf[off : off+4])
		recLen := int(binary.LittleEndian.Uint16(buf[off+4 : off+6]))
		nameLen := int(buf[off+6])
		if recLen < direntHeader || off+recLen > len(buf) {
			return false
		}
		if ino != 0 && nameLen > 0 && string(buf[off+direntHeader:off+direntHeader+nameLen]) == name {
			if prev >= 0 {
				prevLen := int(binary.LittleEndian.Uint16(buf[prev+4 : prev+6]))
				binary.LittleEndian.PutUint16(buf[prev+4:prev+6], uint16(prevLen+recLen))
			} else {
				binary.LittleEndian.PutUint32(buf[off:off+4], 0)
				buf[off+6] = 0
			}
			return true
		}
		prev = off
		off += recLen
	}
	return false
}

// dirIsEmpty reports whether the directory holds only "." and "..".
func (fs *FS) dirIsEmpty(dir *Inode) (bool, error) {
	blocks, err := fs.dirBlocks(dir)
	if err != nil {
		return false, err
	}
	for _, blk := range blocks {
		buf, err := fs.readBlock(blk)
		if err != nil {
			return false, err
		}
		ents, err := parseDirBlock(buf)
		if err != nil {
			return false, err
		}
		for _, e := range ents {
			if e.Name != "." && e.Name != ".." {
				return false, nil
			}
		}
	}
	return true, nil
}
