package extfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/blockdev"
)

// newFS formats a fresh 32 MiB volume.
func newFS(t *testing.T) *FS {
	t.Helper()
	dev, err := blockdev.NewMemDisk(512, 65536) // 32 MiB
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Mkfs(dev, Options{})
	if err != nil {
		t.Fatalf("Mkfs: %v", err)
	}
	return fs
}

func TestMkfsAndMount(t *testing.T) {
	dev, err := blockdev.NewMemDisk(512, 65536)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Mkfs(dev, Options{})
	if err != nil {
		t.Fatalf("Mkfs: %v", err)
	}
	sb := fs.Superblock()
	if sb.Magic != Magic || sb.BlockSize != 4096 {
		t.Errorf("superblock = %+v", sb)
	}
	if err := fs.WriteFile("/hello.txt", []byte("world")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	// Remount and read back.
	fs2, err := Mount(dev)
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	got, err := fs2.ReadFile("/hello.txt")
	if err != nil {
		t.Fatalf("ReadFile after remount: %v", err)
	}
	if string(got) != "world" {
		t.Errorf("ReadFile = %q", got)
	}
}

func TestMountUnformatted(t *testing.T) {
	dev, err := blockdev.NewMemDisk(512, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mount(dev); !errors.Is(err, ErrNotFormatted) {
		t.Errorf("Mount(blank) err = %v, want ErrNotFormatted", err)
	}
}

func TestMkfsValidation(t *testing.T) {
	dev, _ := blockdev.NewMemDisk(512, 65536)
	if _, err := Mkfs(dev, Options{BlockSize: 1000}); err == nil {
		t.Error("unaligned block size: want error")
	}
	tiny, _ := blockdev.NewMemDisk(512, 16)
	if _, err := Mkfs(tiny, Options{}); err == nil {
		t.Error("tiny device: want error")
	}
	if _, err := Mkfs(dev, Options{BlockSize: 4096, BlocksPerGroup: 4096*8 + 1}); err == nil {
		t.Error("group larger than bitmap: want error")
	}
}

func TestCreateAndStat(t *testing.T) {
	fs := newFS(t)
	if err := fs.Create("/a.txt"); err != nil {
		t.Fatalf("Create: %v", err)
	}
	fi, err := fs.Stat("/a.txt")
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if fi.Type != TypeFile || fi.Size != 0 || fi.Name != "a.txt" {
		t.Errorf("Stat = %+v", fi)
	}
	if err := fs.Create("/a.txt"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate Create err = %v, want ErrExists", err)
	}
	root, err := fs.Stat("/")
	if err != nil || !root.IsDir() || root.Ino != RootIno {
		t.Errorf("Stat(/) = %+v, %v", root, err)
	}
}

func TestMkdirTree(t *testing.T) {
	fs := newFS(t)
	if err := fs.MkdirAll("/mnt/box/name1"); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	fi, err := fs.Stat("/mnt/box/name1")
	if err != nil || !fi.IsDir() {
		t.Fatalf("Stat = %+v, %v", fi, err)
	}
	if err := fs.Mkdir("/mnt"); !errors.Is(err, ErrExists) {
		t.Errorf("Mkdir existing err = %v", err)
	}
	if err := fs.Mkdir("/nosuch/dir"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Mkdir missing parent err = %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := newFS(t)
	sizes := []int{1, 100, 4096, 4097, 12 * 4096, 13 * 4096, 100 * 4096}
	for _, size := range sizes {
		path := fmt.Sprintf("/f%d", size)
		want := make([]byte, size)
		for i := range want {
			want[i] = byte(i * 31)
		}
		if err := fs.WriteFile(path, want); err != nil {
			t.Fatalf("WriteFile(%d): %v", size, err)
		}
		got, err := fs.ReadFile(path)
		if err != nil {
			t.Fatalf("ReadFile(%d): %v", size, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("size %d round trip corrupted", size)
		}
	}
}

func TestWriteFileDoubleIndirect(t *testing.T) {
	// > 12 + 512 blocks forces the double-indirect path (block size 4096,
	// 512 pointers per block).
	fs := newFS(t)
	size := (directBlocks + 512 + 40) * 4096
	want := bytes.Repeat([]byte{0xAB}, size)
	if err := fs.WriteFile("/big", want); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := fs.ReadFile("/big")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("double-indirect file corrupted")
	}
	// Deleting it returns all blocks.
	free0 := fs.Superblock().FreeBlocks
	if err := fs.Remove("/big"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	free1 := fs.Superblock().FreeBlocks
	wantBack := uint64(size/4096) + 2 + 1 // data + indirect+dbl pointer + l1 pointer
	if free1-free0 < wantBack {
		t.Errorf("freed %d blocks, want >= %d", free1-free0, wantBack)
	}
}

func TestAppendAndWriteAt(t *testing.T) {
	fs := newFS(t)
	if err := fs.WriteFile("/log", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append("/log", []byte("-beta")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/log")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "alpha-beta" {
		t.Errorf("after Append = %q", got)
	}
	if err := fs.WriteAt("/log", []byte("BETA"), 6); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.ReadFile("/log")
	if string(got) != "alpha-BETA" {
		t.Errorf("after WriteAt = %q", got)
	}
	// ReadAt window.
	buf := make([]byte, 4)
	if err := fs.ReadAt("/log", buf, 6); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "BETA" {
		t.Errorf("ReadAt = %q", buf)
	}
	if err := fs.ReadAt("/log", buf, 8); err == nil {
		t.Error("ReadAt past EOF: want error")
	}
}

func TestSparseFiles(t *testing.T) {
	fs := newFS(t)
	if err := fs.Create("/sparse"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteAt("/sparse", []byte("end"), 100*4096); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	fi, _ := fs.Stat("/sparse")
	if fi.Size != 100*4096+3 {
		t.Errorf("Size = %d", fi.Size)
	}
	// The hole reads back as zeros.
	buf := make([]byte, 4096)
	if err := fs.ReadAt("/sparse", buf, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 4096)) {
		t.Error("hole is not zero")
	}
}

func TestRemoveFreesSpace(t *testing.T) {
	fs := newFS(t)
	before := fs.Superblock()
	if err := fs.WriteFile("/x", bytes.Repeat([]byte{1}, 8192)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/x"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	after := fs.Superblock()
	if after.FreeBlocks != before.FreeBlocks || after.FreeInodes != before.FreeInodes {
		t.Errorf("space leak: before %d/%d, after %d/%d",
			before.FreeBlocks, before.FreeInodes, after.FreeBlocks, after.FreeInodes)
	}
	if fs.Exists("/x") {
		t.Error("file still exists")
	}
	if err := fs.Remove("/x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double Remove err = %v", err)
	}
}

func TestRemoveDirSemantics(t *testing.T) {
	fs := newFS(t)
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); !errors.Is(err, ErrIsDir) {
		t.Errorf("Remove(dir) err = %v, want ErrIsDir", err)
	}
	if err := fs.WriteFile("/d/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("Rmdir(non-empty) err = %v, want ErrNotEmpty", err)
	}
	if err := fs.Remove("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/d"); err != nil {
		t.Fatalf("Rmdir: %v", err)
	}
	if err := fs.Rmdir("/d"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double Rmdir err = %v", err)
	}
}

func TestRenameFile(t *testing.T) {
	fs := newFS(t)
	if err := fs.WriteFile("/old", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/dir"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/old", "/dir/new"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if fs.Exists("/old") {
		t.Error("old path still exists")
	}
	got, err := fs.ReadFile("/dir/new")
	if err != nil || string(got) != "payload" {
		t.Errorf("ReadFile(new) = %q, %v", got, err)
	}
	// Same-directory rename.
	if err := fs.Rename("/dir/new", "/dir/newer"); err != nil {
		t.Fatalf("same-dir Rename: %v", err)
	}
	if !fs.Exists("/dir/newer") || fs.Exists("/dir/new") {
		t.Error("same-dir rename wrong")
	}
	// Destination exists.
	if err := fs.WriteFile("/other", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/other", "/dir/newer"); !errors.Is(err, ErrExists) {
		t.Errorf("Rename onto existing err = %v", err)
	}
}

func TestRenameDirAcrossParents(t *testing.T) {
	fs := newFS(t)
	if err := fs.MkdirAll("/a/sub"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/sub/f", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/a/sub", "/b/sub"); err != nil {
		t.Fatalf("Rename dir: %v", err)
	}
	if got, err := fs.ReadFile("/b/sub/f"); err != nil || string(got) != "1" {
		t.Errorf("moved dir content: %q, %v", got, err)
	}
}

func TestReadDirListsSorted(t *testing.T) {
	fs := newFS(t)
	for _, n := range []string{"/c", "/a", "/b"} {
		if err := fs.Create(n); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := fs.ReadDir("/")
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(ents) != 3 || ents[0].Name != "a" || ents[2].Name != "c" {
		t.Errorf("ReadDir = %+v", ents)
	}
	if _, err := fs.ReadDir("/a"); !errors.Is(err, ErrNotDir) {
		t.Errorf("ReadDir(file) err = %v", err)
	}
}

func TestManyFilesInDirectory(t *testing.T) {
	// Force directory growth past one block.
	fs := newFS(t)
	if err := fs.Mkdir("/many"); err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		if err := fs.Create(fmt.Sprintf("/many/file-%03d-with-a-longer-name", i)); err != nil {
			t.Fatalf("Create #%d: %v", i, err)
		}
	}
	ents, err := fs.ReadDir("/many")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != n {
		t.Errorf("ReadDir lists %d entries, want %d", len(ents), n)
	}
	// Delete every other one, then verify.
	for i := 0; i < n; i += 2 {
		if err := fs.Remove(fmt.Sprintf("/many/file-%03d-with-a-longer-name", i)); err != nil {
			t.Fatalf("Remove #%d: %v", i, err)
		}
	}
	ents, _ = fs.ReadDir("/many")
	if len(ents) != n/2 {
		t.Errorf("after deletions %d entries, want %d", len(ents), n/2)
	}
}

func TestTruncate(t *testing.T) {
	fs := newFS(t)
	if err := fs.WriteFile("/t", bytes.Repeat([]byte{9}, 3*4096)); err != nil {
		t.Fatal(err)
	}
	free0 := fs.Superblock().FreeBlocks
	if err := fs.Truncate("/t", 4096); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if got := fs.Superblock().FreeBlocks - free0; got != 2 {
		t.Errorf("Truncate freed %d blocks, want 2", got)
	}
	fi, _ := fs.Stat("/t")
	if fi.Size != 4096 {
		t.Errorf("Size = %d", fi.Size)
	}
	// Growing leaves a readable hole.
	if err := fs.Truncate("/t", 2*4096); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if err := fs.ReadAt("/t", buf, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 4096)) {
		t.Error("grown area not zero")
	}
}

func TestPathValidation(t *testing.T) {
	fs := newFS(t)
	if err := fs.Create("relative"); err == nil {
		t.Error("relative path: want error")
	}
	if _, _, err := fs.resolve("/a/../b/./c"); !errors.Is(err, ErrNotFound) {
		t.Errorf("normalized resolve err = %v", err)
	}
	long := "/" + string(bytes.Repeat([]byte{'x'}, MaxNameLen+1))
	if err := fs.Create(long); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("long name err = %v", err)
	}
}

func TestNoSpace(t *testing.T) {
	dev, _ := blockdev.NewMemDisk(512, 2048) // 1 MiB
	fs, err := Mkfs(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = nil
	for i := 0; err == nil && i < 10000; i++ {
		err = fs.WriteFile(fmt.Sprintf("/f%d", i), bytes.Repeat([]byte{1}, 64*1024))
	}
	if !errors.Is(err, ErrNoSpace) && !errors.Is(err, ErrFileTooBig) {
		t.Errorf("filling device: err = %v, want ErrNoSpace", err)
	}
}

func TestDumpView(t *testing.T) {
	fs := newFS(t)
	if err := fs.MkdirAll("/mnt/box"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/mnt/box/1.img", bytes.Repeat([]byte{1}, 8192)); err != nil {
		t.Fatal(err)
	}
	v, err := fs.Dump()
	if err != nil {
		t.Fatalf("Dump: %v", err)
	}
	byPath := make(map[string]FileRecord)
	for _, f := range v.Files {
		byPath[f.Path] = f
	}
	if _, ok := byPath["/"]; !ok {
		t.Error("view missing root")
	}
	img, ok := byPath["/mnt/box/1.img"]
	if !ok {
		t.Fatal("view missing file")
	}
	if img.Size != 8192 || len(img.Blocks) != 2 {
		t.Errorf("file record = %+v", img)
	}
	if img.Type != TypeFile {
		t.Errorf("file type = %v", img.Type)
	}
	if v.String() == "" {
		t.Error("View.String empty")
	}
	// Classification of the file's data blocks.
	class, _ := fs.sb.Classify(img.Blocks[0], v.Groups)
	if class != ClassData {
		t.Errorf("data block classified as %v", class)
	}
	class, _ = fs.sb.Classify(0, v.Groups)
	if class != ClassSuperblock {
		t.Errorf("block 0 classified as %v", class)
	}
}

func TestClassifyAllGroups(t *testing.T) {
	fs := newFS(t)
	sb := fs.Superblock()
	geom := fs.Geometry()
	for _, g := range geom {
		if c, grp := sb.Classify(g.BlockBitmap, geom); c != ClassBlockBitmap || grp != g.Index {
			t.Errorf("group %d block bitmap classified %v/%d", g.Index, c, grp)
		}
		if c, _ := sb.Classify(g.InodeBitmap, geom); c != ClassInodeBitmap {
			t.Errorf("group %d inode bitmap classified %v", g.Index, c)
		}
		if c, _ := sb.Classify(g.InodeTable, geom); c != ClassInodeTable {
			t.Errorf("group %d inode table classified %v", g.Index, c)
		}
		if c, _ := sb.Classify(g.DataStart, geom); c != ClassData {
			t.Errorf("group %d data start classified %v", g.Index, c)
		}
	}
}

func TestInodeEncodeDecodeProperty(t *testing.T) {
	f := func(typ uint8, links uint16, size, mtime uint64, directRaw [12]uint32, ind, dbl uint32) bool {
		var direct [12]uint64
		for i, v := range directRaw {
			direct[i] = uint64(v)
		}
		in := Inode{
			Type:           FileType(typ % 3),
			Links:          links,
			Size:           size,
			Mtime:          mtime,
			Ctime:          mtime + 1,
			Direct:         direct,
			Indirect:       uint64(ind),
			DoubleIndirect: uint64(dbl),
		}
		buf := make([]byte, InodeSize)
		in.encode(buf)
		var out Inode
		out.decode(buf)
		return out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFSModelProperty(t *testing.T) {
	// Property: a random sequence of writes/deletes matches a map model.
	type op struct {
		Name byte
		Size uint16
		Del  bool
	}
	f := func(ops []op) bool {
		dev, err := blockdev.NewMemDisk(512, 32768)
		if err != nil {
			return false
		}
		fs, err := Mkfs(dev, Options{})
		if err != nil {
			return false
		}
		model := make(map[string][]byte)
		for _, o := range ops {
			path := fmt.Sprintf("/f%d", o.Name%16)
			if o.Del {
				err := fs.Remove(path)
				_, existed := model[path]
				if existed != (err == nil) {
					return false
				}
				delete(model, path)
				continue
			}
			data := bytes.Repeat([]byte{o.Name}, int(o.Size%8192))
			if err := fs.WriteFile(path, data); err != nil {
				return false
			}
			model[path] = data
		}
		for path, want := range model {
			got, err := fs.ReadFile(path)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSyncAndDeviceAccessors(t *testing.T) {
	fs := newFS(t)
	if err := fs.Sync(); err != nil {
		t.Errorf("Sync: %v", err)
	}
	if fs.Device() == nil || fs.BlockSize() != 4096 {
		t.Error("accessors wrong")
	}
}

func TestSymlink(t *testing.T) {
	fs := newFS(t)
	if err := fs.MkdirAll("/etc/init.d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/etc/init.d/DbSecuritySpt", []byte("#!/bin/bash")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/etc/init.d/DbSecuritySpt", "/etc/S97DbSecuritySpt"); err != nil {
		t.Fatalf("Symlink: %v", err)
	}
	got, err := fs.Readlink("/etc/S97DbSecuritySpt")
	if err != nil || got != "/etc/init.d/DbSecuritySpt" {
		t.Errorf("Readlink = %q, %v", got, err)
	}
	fi, err := fs.Stat("/etc/S97DbSecuritySpt")
	if err != nil || fi.Type != TypeSymlink {
		t.Errorf("Stat = %+v, %v", fi, err)
	}
	// Readlink of a non-link fails.
	if _, err := fs.Readlink("/etc/init.d/DbSecuritySpt"); err == nil {
		t.Error("Readlink(file): want error")
	}
	// Symlinks can be removed like files.
	if err := fs.Remove("/etc/S97DbSecuritySpt"); err != nil {
		t.Errorf("Remove(symlink): %v", err)
	}
	// Oversized target rejected.
	if err := fs.Symlink(string(bytes.Repeat([]byte{'x'}, 5000)), "/etc/too-long"); err == nil {
		t.Error("oversized target: want error")
	}
}

func TestCheckCleanFS(t *testing.T) {
	fs := newFS(t)
	if err := fs.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/b/f", bytes.Repeat([]byte{1}, 100*4096)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/a/b/f", "/a/l"); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !r.Ok() {
		t.Errorf("clean fs has problems: %v", r.Problems)
	}
	if r.Files != 2 || r.Dirs != 3 {
		t.Errorf("Check counts: %d files, %d dirs", r.Files, r.Dirs)
	}
}

func TestCheckDetectsCorruption(t *testing.T) {
	fs := newFS(t)
	if err := fs.WriteFile("/f", bytes.Repeat([]byte{1}, 4096)); err != nil {
		t.Fatal(err)
	}
	// Corrupt: clear the file's block bitmap bit behind the fs's back.
	_, in, err := fs.resolve("/f")
	if err != nil {
		t.Fatal(err)
	}
	blk := in.Direct[0]
	if err := fs.freeBlock(blk); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if r.Ok() {
		t.Error("Check missed a cleared bitmap bit")
	}
}

func TestCheckPropertyAfterRandomOps(t *testing.T) {
	type op struct {
		Kind byte
		Name uint8
		Size uint16
	}
	f := func(ops []op) bool {
		dev, err := blockdev.NewMemDisk(512, 32768)
		if err != nil {
			return false
		}
		fs, err := Mkfs(dev, Options{})
		if err != nil {
			return false
		}
		if err := fs.Mkdir("/d"); err != nil {
			return false
		}
		for _, o := range ops {
			p := fmt.Sprintf("/d/f%d", o.Name%12)
			switch o.Kind % 3 {
			case 0:
				_ = fs.WriteFile(p, bytes.Repeat([]byte{1}, int(o.Size%20000)))
			case 1:
				_ = fs.Remove(p)
			case 2:
				_ = fs.Rename(p, fmt.Sprintf("/d/g%d", o.Name%12))
			}
		}
		r, err := fs.Check()
		return err == nil && r.Ok()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
