package extfs

import (
	"fmt"
	"sync"

	"repro/internal/blockdev"
)

// Options configures Mkfs.
type Options struct {
	// BlockSize is the fs block size (default 4096; must be a multiple of
	// the device block size).
	BlockSize int
	// InodesPerGroup sets group inode density (default 1024).
	InodesPerGroup int
	// BlocksPerGroup sets group extent (default BlockSize*8, so one
	// bitmap block covers the group).
	BlocksPerGroup int
}

// FS is a mounted extfs instance. All operations are serialized by one
// mutex (a single-VM file system, as in the tenant VM).
type FS struct {
	mu   sync.Mutex
	dev  blockdev.Device
	sb   Superblock
	geom []GroupLayout
	// clock is the logical operation counter used for timestamps.
	clock uint64
	// sectorsPerBlock caches the device-to-fs block ratio.
	sectorsPerBlock int
}

// Mkfs formats the device and returns the mounted file system.
func Mkfs(dev blockdev.Device, opts Options) (*FS, error) {
	if opts.BlockSize == 0 {
		opts.BlockSize = 4096
	}
	if opts.InodesPerGroup == 0 {
		opts.InodesPerGroup = 1024
	}
	if opts.BlocksPerGroup == 0 {
		opts.BlocksPerGroup = opts.BlockSize * 8
	}
	if opts.BlockSize%dev.BlockSize() != 0 {
		return nil, fmt.Errorf("extfs: block size %d is not a multiple of device block size %d",
			opts.BlockSize, dev.BlockSize())
	}
	if opts.BlocksPerGroup > opts.BlockSize*8 {
		return nil, fmt.Errorf("extfs: %d blocks per group exceeds one bitmap block (%d bits)",
			opts.BlocksPerGroup, opts.BlockSize*8)
	}
	if opts.InodesPerGroup > opts.BlockSize*8 {
		return nil, fmt.Errorf("extfs: %d inodes per group exceeds one bitmap block", opts.InodesPerGroup)
	}
	devBlocks := dev.Blocks() * uint64(dev.BlockSize())
	fsBlocks := devBlocks / uint64(opts.BlockSize)
	if fsBlocks < 16 {
		return nil, fmt.Errorf("extfs: device too small (%d fs blocks)", fsBlocks)
	}
	groups := uint32((fsBlocks - 1 + uint64(opts.BlocksPerGroup) - 1) / uint64(opts.BlocksPerGroup))
	fs := &FS{
		dev: dev,
		sb: Superblock{
			Magic:          Magic,
			BlockSize:      uint32(opts.BlockSize),
			BlocksCount:    fsBlocks,
			InodesCount:    groups * uint32(opts.InodesPerGroup),
			BlocksPerGroup: uint32(opts.BlocksPerGroup),
			InodesPerGroup: uint32(opts.InodesPerGroup),
			GroupCount:     groups,
		},
		sectorsPerBlock: opts.BlockSize / dev.BlockSize(),
	}
	fs.geom = fs.sb.Geometry()

	// Zero all group metadata blocks (bitmaps and inode tables).
	zero := make([]byte, opts.BlockSize)
	for i := range fs.geom {
		g := &fs.geom[i]
		for blk := g.BlockBitmap; blk < g.DataStart; blk++ {
			if err := fs.writeBlock(blk, zero); err != nil {
				return nil, err
			}
		}
		fs.sb.FreeBlocks += uint64(g.dataBlocks())
	}
	fs.sb.FreeInodes = fs.sb.InodesCount

	// Reserve inodes 1 (bad blocks) and 2 (root).
	for _, ino := range []uint32{BadBlocksIno, RootIno} {
		if err := fs.setInodeBitmap(ino, true); err != nil {
			return nil, err
		}
		fs.sb.FreeInodes--
	}

	// Create the root directory.
	rootBlk, err := fs.allocBlock()
	if err != nil {
		return nil, err
	}
	root := Inode{Type: TypeDir, Links: 2, Size: uint64(opts.BlockSize)}
	root.Direct[0] = rootBlk
	dirBlk := make([]byte, opts.BlockSize)
	initDirBlock(dirBlk, RootIno, RootIno)
	if err := fs.writeBlock(rootBlk, dirBlk); err != nil {
		return nil, err
	}
	if err := fs.writeInode(RootIno, &root); err != nil {
		return nil, err
	}
	if err := fs.writeSuper(); err != nil {
		return nil, err
	}
	return fs, nil
}

// Mount opens an already-formatted device.
func Mount(dev blockdev.Device) (*FS, error) {
	probe := make([]byte, dev.BlockSize())
	if err := dev.ReadAt(probe, 0); err != nil {
		return nil, err
	}
	var sb Superblock
	if err := sb.decode(probe); err != nil {
		return nil, err
	}
	if sb.BlockSize == 0 || sb.BlockSize%uint32(dev.BlockSize()) != 0 {
		return nil, ErrNotFormatted
	}
	fs := &FS{
		dev:             dev,
		sb:              sb,
		sectorsPerBlock: int(sb.BlockSize) / dev.BlockSize(),
	}
	fs.geom = fs.sb.Geometry()
	return fs, nil
}

// Superblock returns a copy of the superblock.
func (fs *FS) Superblock() Superblock {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.sb
}

// Geometry returns the block group layout.
func (fs *FS) Geometry() []GroupLayout {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return append([]GroupLayout(nil), fs.geom...)
}

// BlockSize returns the fs block size.
func (fs *FS) BlockSize() int { return int(fs.sb.BlockSize) }

// Device returns the backing device.
func (fs *FS) Device() blockdev.Device { return fs.dev }

// tick advances the logical clock.
func (fs *FS) tick() uint64 {
	fs.clock++
	return fs.clock
}

// readBlock reads one fs block.
func (fs *FS) readBlock(blk uint64) ([]byte, error) {
	buf := make([]byte, fs.sb.BlockSize)
	if err := fs.dev.ReadAt(buf, blk*uint64(fs.sectorsPerBlock)); err != nil {
		return nil, fmt.Errorf("extfs: read fs block %d: %w", blk, err)
	}
	return buf, nil
}

// writeBlock writes one fs block.
func (fs *FS) writeBlock(blk uint64, data []byte) error {
	if len(data) != int(fs.sb.BlockSize) {
		return fmt.Errorf("extfs: write fs block %d: bad buffer length %d", blk, len(data))
	}
	if err := fs.dev.WriteAt(data, blk*uint64(fs.sectorsPerBlock)); err != nil {
		return fmt.Errorf("extfs: write fs block %d: %w", blk, err)
	}
	return nil
}

// writeSuper persists the superblock.
func (fs *FS) writeSuper() error {
	buf := make([]byte, fs.sb.BlockSize)
	fs.sb.encode(buf)
	return fs.writeBlock(0, buf)
}

// --- bitmap and allocation helpers ---

// bitmapOp reads a bitmap block, applies fn to bit idx, writing back when
// fn reports a change.
func (fs *FS) bitmapOp(blk uint64, idx uint32, fn func(buf []byte, byteOff int, mask byte) bool) error {
	buf, err := fs.readBlock(blk)
	if err != nil {
		return err
	}
	byteOff := int(idx / 8)
	mask := byte(1) << (idx % 8)
	if fn(buf, byteOff, mask) {
		return fs.writeBlock(blk, buf)
	}
	return nil
}

// setInodeBitmap marks inode ino used or free.
func (fs *FS) setInodeBitmap(ino uint32, used bool) error {
	g, idx := fs.inodeGroup(ino)
	return fs.bitmapOp(fs.geom[g].InodeBitmap, idx, func(buf []byte, off int, mask byte) bool {
		if used {
			buf[off] |= mask
		} else {
			buf[off] &^= mask
		}
		return true
	})
}

// inodeGroup maps an inode number to (group, index within group).
func (fs *FS) inodeGroup(ino uint32) (uint32, uint32) {
	i := ino - 1 // inode numbers are 1-based
	return i / fs.sb.InodesPerGroup, i % fs.sb.InodesPerGroup
}

// allocInode finds and reserves a free inode.
func (fs *FS) allocInode() (uint32, error) {
	if fs.sb.FreeInodes == 0 {
		return 0, ErrNoSpace
	}
	for g := range fs.geom {
		buf, err := fs.readBlock(fs.geom[g].InodeBitmap)
		if err != nil {
			return 0, err
		}
		for i := uint32(0); i < fs.sb.InodesPerGroup; i++ {
			if buf[i/8]&(1<<(i%8)) == 0 {
				buf[i/8] |= 1 << (i % 8)
				if err := fs.writeBlock(fs.geom[g].InodeBitmap, buf); err != nil {
					return 0, err
				}
				fs.sb.FreeInodes--
				if err := fs.writeSuper(); err != nil {
					return 0, err
				}
				return uint32(g)*fs.sb.InodesPerGroup + i + 1, nil
			}
		}
	}
	return 0, ErrNoSpace
}

// freeInode releases an inode number.
func (fs *FS) freeInode(ino uint32) error {
	if err := fs.setInodeBitmap(ino, false); err != nil {
		return err
	}
	fs.sb.FreeInodes++
	return fs.writeSuper()
}

// allocBlock finds and reserves a free data block.
func (fs *FS) allocBlock() (uint64, error) {
	if fs.sb.FreeBlocks == 0 {
		return 0, ErrNoSpace
	}
	for g := range fs.geom {
		gl := &fs.geom[g]
		n := gl.dataBlocks()
		if n == 0 {
			continue
		}
		buf, err := fs.readBlock(gl.BlockBitmap)
		if err != nil {
			return 0, err
		}
		for i := uint32(0); i < n; i++ {
			if buf[i/8]&(1<<(i%8)) == 0 {
				buf[i/8] |= 1 << (i % 8)
				if err := fs.writeBlock(gl.BlockBitmap, buf); err != nil {
					return 0, err
				}
				fs.sb.FreeBlocks--
				if err := fs.writeSuper(); err != nil {
					return 0, err
				}
				return gl.DataStart + uint64(i), nil
			}
		}
	}
	return 0, ErrNoSpace
}

// allocZeroedBlock allocates a block and zeroes it on disk (for pointer
// and directory blocks).
func (fs *FS) allocZeroedBlock() (uint64, error) {
	blk, err := fs.allocBlock()
	if err != nil {
		return 0, err
	}
	if err := fs.writeBlock(blk, make([]byte, fs.sb.BlockSize)); err != nil {
		return 0, err
	}
	return blk, nil
}

// freeBlock releases a data block.
func (fs *FS) freeBlock(blk uint64) error {
	for g := range fs.geom {
		gl := &fs.geom[g]
		if blk < gl.DataStart || blk >= gl.BlockBitmap+uint64(gl.BlocksInGroup) {
			continue
		}
		idx := uint32(blk - gl.DataStart)
		if err := fs.bitmapOp(gl.BlockBitmap, idx, func(buf []byte, off int, mask byte) bool {
			buf[off] &^= mask
			return true
		}); err != nil {
			return err
		}
		fs.sb.FreeBlocks++
		return fs.writeSuper()
	}
	return fmt.Errorf("extfs: free of unmapped block %d", blk)
}

// --- inode table I/O ---

// inodeLocation returns the fs block and byte offset holding inode ino.
func (fs *FS) inodeLocation(ino uint32) (uint64, int) {
	g, idx := fs.inodeGroup(ino)
	perBlock := fs.sb.BlockSize / InodeSize
	blk := fs.geom[g].InodeTable + uint64(idx/perBlock)
	off := int(idx%perBlock) * InodeSize
	return blk, off
}

// readInode loads inode ino.
func (fs *FS) readInode(ino uint32) (*Inode, error) {
	if ino == 0 || ino > fs.sb.InodesCount {
		return nil, fmt.Errorf("extfs: invalid inode %d", ino)
	}
	blk, off := fs.inodeLocation(ino)
	buf, err := fs.readBlock(blk)
	if err != nil {
		return nil, err
	}
	var in Inode
	in.decode(buf[off : off+InodeSize])
	return &in, nil
}

// writeInode persists inode ino.
func (fs *FS) writeInode(ino uint32, in *Inode) error {
	blk, off := fs.inodeLocation(ino)
	buf, err := fs.readBlock(blk)
	if err != nil {
		return err
	}
	in.encode(buf[off : off+InodeSize])
	return fs.writeBlock(blk, buf)
}
