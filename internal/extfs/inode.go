package extfs

import (
	"encoding/binary"
)

// Inode addressing: 12 direct blocks, one single-indirect, one
// double-indirect (matching ext2's first 14 pointers; the triple-indirect
// slot is reserved but unused).
const (
	directBlocks = 12
	ptrSize      = 8 // block pointers are 64-bit on disk
)

// Inode is the in-memory form of an on-disk inode.
type Inode struct {
	Type  FileType
	Links uint16
	Size  uint64
	// Mtime/Ctime are logical timestamps (monotonic operation counter).
	Mtime uint64
	Ctime uint64
	// Direct block pointers; 0 means unallocated (block 0 is the
	// superblock and can never be file data).
	Direct [directBlocks]uint64
	// Indirect is a block of pointers; DoubleIndirect is a block of
	// pointers to pointer blocks.
	Indirect       uint64
	DoubleIndirect uint64
}

// encode serializes the inode into b (InodeSize bytes). Block pointers are
// stored as 32-bit values (ext2's width), bounding the fs to 2^32 blocks —
// 16 TiB at a 4 KiB block size.
func (in *Inode) encode(b []byte) {
	clear(b[:InodeSize])
	b[0] = byte(in.Type)
	binary.LittleEndian.PutUint16(b[2:4], in.Links)
	binary.LittleEndian.PutUint64(b[8:16], in.Size)
	binary.LittleEndian.PutUint64(b[16:24], in.Mtime)
	binary.LittleEndian.PutUint64(b[24:32], in.Ctime)
	off := 32
	for _, p := range in.Direct {
		binary.LittleEndian.PutUint32(b[off:off+4], uint32(p))
		off += 4
	}
	binary.LittleEndian.PutUint32(b[off:off+4], uint32(in.Indirect))
	binary.LittleEndian.PutUint32(b[off+4:off+8], uint32(in.DoubleIndirect))
}

// decode parses an inode from b.
func (in *Inode) decode(b []byte) {
	in.Type = FileType(b[0])
	in.Links = binary.LittleEndian.Uint16(b[2:4])
	in.Size = binary.LittleEndian.Uint64(b[8:16])
	in.Mtime = binary.LittleEndian.Uint64(b[16:24])
	in.Ctime = binary.LittleEndian.Uint64(b[24:32])
	off := 32
	for i := range in.Direct {
		in.Direct[i] = uint64(binary.LittleEndian.Uint32(b[off : off+4]))
		off += 4
	}
	in.Indirect = uint64(binary.LittleEndian.Uint32(b[off : off+4]))
	in.DoubleIndirect = uint64(binary.LittleEndian.Uint32(b[off+4 : off+8]))
}

// ptrsPerBlock returns how many block pointers fit one fs block.
func (fs *FS) ptrsPerBlock() uint64 {
	return uint64(fs.sb.BlockSize) / ptrSize
}

// maxFileBlocks returns the largest addressable file length in fs blocks.
func (fs *FS) maxFileBlocks() uint64 {
	p := fs.ptrsPerBlock()
	return directBlocks + p + p*p
}

// blockOfFile resolves logical file block idx to its physical fs block
// (0 if unmapped). alloc extends the mapping, allocating data and pointer
// blocks as needed; the inode is mutated but not written back.
func (fs *FS) blockOfFile(in *Inode, idx uint64, alloc bool) (uint64, error) {
	p := fs.ptrsPerBlock()
	switch {
	case idx < directBlocks:
		if in.Direct[idx] == 0 && alloc {
			blk, err := fs.allocBlock()
			if err != nil {
				return 0, err
			}
			in.Direct[idx] = blk
		}
		return in.Direct[idx], nil
	case idx < directBlocks+p:
		if in.Indirect == 0 {
			if !alloc {
				return 0, nil
			}
			blk, err := fs.allocZeroedBlock()
			if err != nil {
				return 0, err
			}
			in.Indirect = blk
		}
		return fs.ptrInBlock(in.Indirect, idx-directBlocks, alloc)
	case idx < directBlocks+p+p*p:
		if in.DoubleIndirect == 0 {
			if !alloc {
				return 0, nil
			}
			blk, err := fs.allocZeroedBlock()
			if err != nil {
				return 0, err
			}
			in.DoubleIndirect = blk
		}
		rest := idx - directBlocks - p
		l1 := rest / p
		l2 := rest % p
		mid, err := fs.ptrInBlockAllocPointer(in.DoubleIndirect, l1, alloc)
		if err != nil || mid == 0 {
			return mid, err
		}
		return fs.ptrInBlock(mid, l2, alloc)
	default:
		return 0, ErrFileTooBig
	}
}

// ptrInBlock reads slot i of the pointer block at blk, allocating a data
// block into the slot when alloc is set and the slot is empty.
func (fs *FS) ptrInBlock(blk, i uint64, alloc bool) (uint64, error) {
	buf, err := fs.readBlock(blk)
	if err != nil {
		return 0, err
	}
	off := int(i) * ptrSize
	ptr := binary.LittleEndian.Uint64(buf[off : off+8])
	if ptr == 0 && alloc {
		ptr, err = fs.allocBlock()
		if err != nil {
			return 0, err
		}
		binary.LittleEndian.PutUint64(buf[off:off+8], ptr)
		if err := fs.writeBlock(blk, buf); err != nil {
			return 0, err
		}
	}
	return ptr, nil
}

// ptrInBlockAllocPointer is ptrInBlock but allocates a zeroed *pointer*
// block into empty slots (for the double-indirect level).
func (fs *FS) ptrInBlockAllocPointer(blk, i uint64, alloc bool) (uint64, error) {
	buf, err := fs.readBlock(blk)
	if err != nil {
		return 0, err
	}
	off := int(i) * ptrSize
	ptr := binary.LittleEndian.Uint64(buf[off : off+8])
	if ptr == 0 && alloc {
		ptr, err = fs.allocZeroedBlock()
		if err != nil {
			return 0, err
		}
		binary.LittleEndian.PutUint64(buf[off:off+8], ptr)
		if err := fs.writeBlock(blk, buf); err != nil {
			return 0, err
		}
	}
	return ptr, nil
}

// fileBlocks walks every mapped data block of the inode in logical order.
func (fs *FS) fileBlocks(in *Inode) ([]uint64, error) {
	var out []uint64
	nblocks := (in.Size + uint64(fs.sb.BlockSize) - 1) / uint64(fs.sb.BlockSize)
	for idx := uint64(0); idx < nblocks; idx++ {
		blk, err := fs.blockOfFile(in, idx, false)
		if err != nil {
			return nil, err
		}
		if blk != 0 {
			out = append(out, blk)
		}
	}
	return out, nil
}

// freeInodeBlocks releases all data and pointer blocks of the inode.
func (fs *FS) freeInodeBlocks(in *Inode) error {
	p := fs.ptrsPerBlock()
	for i, blk := range in.Direct {
		if blk != 0 {
			if err := fs.freeBlock(blk); err != nil {
				return err
			}
			in.Direct[i] = 0
		}
	}
	if in.Indirect != 0 {
		if err := fs.freePointerBlock(in.Indirect, 1); err != nil {
			return err
		}
		in.Indirect = 0
	}
	if in.DoubleIndirect != 0 {
		if err := fs.freePointerBlock(in.DoubleIndirect, 2); err != nil {
			return err
		}
		in.DoubleIndirect = 0
	}
	_ = p
	in.Size = 0
	return nil
}

// freePointerBlock frees a pointer block of the given depth (1 = entries
// are data blocks, 2 = entries are level-1 pointer blocks) and the block
// itself.
func (fs *FS) freePointerBlock(blk uint64, depth int) error {
	buf, err := fs.readBlock(blk)
	if err != nil {
		return err
	}
	n := int(fs.ptrsPerBlock())
	for i := 0; i < n; i++ {
		ptr := binary.LittleEndian.Uint64(buf[i*ptrSize : i*ptrSize+8])
		if ptr == 0 {
			continue
		}
		if depth > 1 {
			if err := fs.freePointerBlock(ptr, depth-1); err != nil {
				return err
			}
		} else if err := fs.freeBlock(ptr); err != nil {
			return err
		}
	}
	return fs.freeBlock(blk)
}
