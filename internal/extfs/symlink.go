package extfs

// Symbolic links: the link target is stored in the inode's first data
// block (no fast symlinks, keeping the on-disk format uniform), with the
// inode size holding the target length.

// Symlink creates a symbolic link at linkPath pointing at target. The
// target is stored verbatim; it need not exist.
func (fs *FS) Symlink(target, linkPath string) error {
	if len(target) == 0 || len(target) > int(fs.sb.BlockSize) {
		return ErrNameTooLong
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, err := fs.createNode(linkPath, TypeSymlink)
	if err != nil {
		return err
	}
	in, err := fs.readInode(ino)
	if err != nil {
		return err
	}
	blk, err := fs.allocBlock()
	if err != nil {
		return err
	}
	buf := make([]byte, fs.sb.BlockSize)
	copy(buf, target)
	if err := fs.writeBlock(blk, buf); err != nil {
		return err
	}
	in.Direct[0] = blk
	in.Size = uint64(len(target))
	in.Mtime = fs.tick()
	return fs.writeInode(ino, in)
}

// Readlink returns the target of the symbolic link at path.
func (fs *FS) Readlink(path string) (string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, in, err := fs.resolve(path)
	if err != nil {
		return "", err
	}
	if in.Type != TypeSymlink {
		return "", ErrNotFound
	}
	if in.Direct[0] == 0 {
		return "", nil
	}
	buf, err := fs.readBlock(in.Direct[0])
	if err != nil {
		return "", err
	}
	return string(buf[:in.Size]), nil
}
