package extfs

import (
	"fmt"
)

// CheckReport summarizes a consistency check (the fsck analogue).
type CheckReport struct {
	// Files and Dirs count reachable inodes.
	Files int
	Dirs  int
	// UsedBlocks counts data and pointer blocks reachable from the tree.
	UsedBlocks uint64
	// Problems lists every inconsistency found.
	Problems []string
}

// Ok reports whether the file system is consistent.
func (r *CheckReport) Ok() bool { return len(r.Problems) == 0 }

// Check walks the directory tree and verifies the file system's core
// invariants:
//
//   - every reachable block is marked used in its group's block bitmap;
//   - no block is referenced by two files (or twice by one);
//   - every reachable inode is marked used in its inode bitmap;
//   - superblock free counts match the bitmaps;
//   - directory entries reference live inodes of the recorded type.
func (fs *FS) Check() (*CheckReport, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()

	r := &CheckReport{}
	seenBlocks := make(map[uint64]uint32) // block -> first owner ino
	seenInodes := make(map[uint32]bool)

	var walk func(path string, ino uint32) error
	walk = func(path string, ino uint32) error {
		if seenInodes[ino] {
			r.Problems = append(r.Problems, fmt.Sprintf("inode %d reachable twice (at %s)", ino, path))
			return nil
		}
		seenInodes[ino] = true
		in, err := fs.readInode(ino)
		if err != nil {
			return err
		}
		if used, err := fs.inodeMarked(ino); err != nil {
			return err
		} else if !used {
			r.Problems = append(r.Problems, fmt.Sprintf("inode %d (%s) not marked in inode bitmap", ino, path))
		}
		// Collect the inode's blocks, including indirect pointer blocks.
		blocks, err := fs.allBlocksOf(in)
		if err != nil {
			return err
		}
		for _, b := range blocks {
			if owner, dup := seenBlocks[b]; dup {
				r.Problems = append(r.Problems,
					fmt.Sprintf("block %d shared by inodes %d and %d", b, owner, ino))
				continue
			}
			seenBlocks[b] = ino
			if used, err := fs.blockMarked(b); err != nil {
				return err
			} else if !used {
				r.Problems = append(r.Problems,
					fmt.Sprintf("block %d of inode %d (%s) not marked in block bitmap", b, ino, path))
			}
		}
		switch in.Type {
		case TypeDir:
			r.Dirs++
			dataBlocks, err := fs.fileBlocks(in)
			if err != nil {
				return err
			}
			for _, blk := range dataBlocks {
				buf, err := fs.readBlock(blk)
				if err != nil {
					return err
				}
				ents, err := parseDirBlock(buf)
				if err != nil {
					r.Problems = append(r.Problems, fmt.Sprintf("%s: corrupt dirent block %d: %v", path, blk, err))
					continue
				}
				for _, e := range ents {
					if e.Name == "." || e.Name == ".." {
						continue
					}
					child, err := fs.readInode(e.Ino)
					if err != nil {
						return err
					}
					if child.Type == TypeFree {
						r.Problems = append(r.Problems,
							fmt.Sprintf("%s/%s references freed inode %d", path, e.Name, e.Ino))
						continue
					}
					if child.Type != e.Type {
						r.Problems = append(r.Problems,
							fmt.Sprintf("%s/%s: dirent type %v != inode type %v", path, e.Name, e.Type, child.Type))
					}
					if err := walk(joinPath(path, e.Name), e.Ino); err != nil {
						return err
					}
				}
			}
		case TypeFile, TypeSymlink:
			r.Files++
		default:
			r.Problems = append(r.Problems, fmt.Sprintf("%s: inode %d has invalid type %d", path, ino, in.Type))
		}
		return nil
	}
	if err := walk("/", RootIno); err != nil {
		return nil, err
	}
	r.UsedBlocks = uint64(len(seenBlocks))

	// Free counts: used inodes = reachable + reserved (bad blocks).
	usedBitmapBlocks, usedBitmapInodes, err := fs.countBitmaps()
	if err != nil {
		return nil, err
	}
	if usedBitmapBlocks != uint64(len(seenBlocks)) {
		r.Problems = append(r.Problems, fmt.Sprintf(
			"block bitmap marks %d used, tree reaches %d (leak or corruption)",
			usedBitmapBlocks, len(seenBlocks)))
	}
	wantInodes := len(seenInodes) + 1 // + bad-blocks inode
	if int(usedBitmapInodes) != wantInodes {
		r.Problems = append(r.Problems, fmt.Sprintf(
			"inode bitmap marks %d used, tree reaches %d (+1 reserved)",
			usedBitmapInodes, len(seenInodes)))
	}
	if fs.sb.FreeBlocks != fs.totalDataBlocks()-usedBitmapBlocks {
		r.Problems = append(r.Problems, fmt.Sprintf(
			"superblock free blocks %d != bitmap-derived %d",
			fs.sb.FreeBlocks, fs.totalDataBlocks()-usedBitmapBlocks))
	}
	if fs.sb.FreeInodes != fs.sb.InodesCount-uint32(usedBitmapInodes) {
		r.Problems = append(r.Problems, fmt.Sprintf(
			"superblock free inodes %d != bitmap-derived %d",
			fs.sb.FreeInodes, fs.sb.InodesCount-uint32(usedBitmapInodes)))
	}
	return r, nil
}

// allBlocksOf returns data plus indirect pointer blocks of an inode.
func (fs *FS) allBlocksOf(in *Inode) ([]uint64, error) {
	blocks, err := fs.fileBlocks(in)
	if err != nil {
		return nil, err
	}
	if in.Indirect != 0 {
		blocks = append(blocks, in.Indirect)
	}
	if in.DoubleIndirect != 0 {
		blocks = append(blocks, in.DoubleIndirect)
		buf, err := fs.readBlock(in.DoubleIndirect)
		if err != nil {
			return nil, err
		}
		n := int(fs.ptrsPerBlock())
		for i := 0; i < n; i++ {
			ptr := uint64(0)
			for b := 0; b < ptrSize; b++ {
				ptr |= uint64(buf[i*ptrSize+b]) << (8 * b)
			}
			if ptr != 0 {
				blocks = append(blocks, ptr)
			}
		}
	}
	return blocks, nil
}

// inodeMarked reports the inode bitmap bit.
func (fs *FS) inodeMarked(ino uint32) (bool, error) {
	g, idx := fs.inodeGroup(ino)
	buf, err := fs.readBlock(fs.geom[g].InodeBitmap)
	if err != nil {
		return false, err
	}
	return buf[idx/8]&(1<<(idx%8)) != 0, nil
}

// blockMarked reports the block bitmap bit for an absolute fs block.
func (fs *FS) blockMarked(blk uint64) (bool, error) {
	for g := range fs.geom {
		gl := &fs.geom[g]
		if blk < gl.DataStart || blk >= gl.BlockBitmap+uint64(gl.BlocksInGroup) {
			continue
		}
		idx := uint32(blk - gl.DataStart)
		buf, err := fs.readBlock(gl.BlockBitmap)
		if err != nil {
			return false, err
		}
		return buf[idx/8]&(1<<(idx%8)) != 0, nil
	}
	return false, fmt.Errorf("extfs: block %d outside any group's data area", blk)
}

// countBitmaps tallies used bits across all groups.
func (fs *FS) countBitmaps() (blocks uint64, inodes uint64, err error) {
	for g := range fs.geom {
		gl := &fs.geom[g]
		bbuf, err := fs.readBlock(gl.BlockBitmap)
		if err != nil {
			return 0, 0, err
		}
		n := gl.dataBlocks()
		for i := uint32(0); i < n; i++ {
			if bbuf[i/8]&(1<<(i%8)) != 0 {
				blocks++
			}
		}
		ibuf, err := fs.readBlock(gl.InodeBitmap)
		if err != nil {
			return 0, 0, err
		}
		for i := uint32(0); i < fs.sb.InodesPerGroup; i++ {
			if ibuf[i/8]&(1<<(i%8)) != 0 {
				inodes++
			}
		}
	}
	return blocks, inodes, nil
}

// totalDataBlocks sums allocatable blocks across groups.
func (fs *FS) totalDataBlocks() uint64 {
	var t uint64
	for g := range fs.geom {
		t += uint64(fs.geom[g].dataBlocks())
	}
	return t
}
