// Package testutil holds small helpers shared across the repo's test
// suites.
package testutil

import (
	"testing"
	"time"
)

// WaitFor polls cond once per millisecond until it reports true, failing
// the test if timeout elapses first. It replaces the hand-rolled
// wall-clock deadline loops that used to be copy-pasted per test file:
// one generous timeout, one failure message, no flake-prone arithmetic
// under CI load.
func WaitFor(t testing.TB, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", timeout, what)
		}
		time.Sleep(time.Millisecond)
	}
}
