package experiments

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/blockdev"
	"repro/internal/cas"
	"repro/internal/metrics"
	"repro/internal/scrub"
	"repro/internal/services/replicate"
)

// The backup experiment exercises the content-addressed replication stack
// the way a tenant backup service would: repeated full-image backup rounds
// where only a fraction of chunks changed since the previous round. It
// reports the dedup ratio the content addressing buys on that delta
// workload, the journaled fan-out write throughput across the quorum, and
// proves the scrub service repairs a backend whose stored bytes rotted.

// BackupConfig sizes a backup run.
type BackupConfig struct {
	// Chunks is the logical image size in chunks (default 512).
	Chunks int
	// Rounds is the number of full-image backup generations (default 4).
	Rounds int
	// Backends is the content-addressed replica count (default 3).
	Backends int
	// ChunkBytes is the content-addressing granularity (default 4096).
	ChunkBytes int
	// ModifiedPct is the percentage of chunks whose content changes between
	// consecutive rounds (default 25) — the backup delta.
	ModifiedPct int
}

// BackupRun is one dated backup-suite result.
type BackupRun struct {
	When        string `json:"when"`
	Backends    int    `json:"backends"`
	Quorum      int    `json:"quorum"`
	ChunkBytes  int    `json:"chunk_bytes"`
	Chunks      int    `json:"chunks"`
	Rounds      int    `json:"rounds"`
	ModifiedPct int    `json:"modified_pct"`

	// Dedup: logical bytes ingested vs chunk bytes actually stored, per
	// backend (identical across backends by construction).
	LogicalMB  float64 `json:"logical_mib"`
	StoredMB   float64 `json:"stored_mib"`
	DedupRatio float64 `json:"dedup_ratio"`
	DedupHits  uint64  `json:"dedup_hits"`

	// Fan-out: journaled quorum-acknowledged write throughput, measured
	// over the whole workload including the final drain of every backend.
	WriteMBps float64       `json:"fanout_write_mib_per_s"`
	WriteP99  time.Duration `json:"write_p99_ns"`
	Converged bool          `json:"backends_converged"`

	// Scrub repair after corruption.
	CorruptedChunks int    `json:"corrupted_chunks"`
	ScrubScanned    uint64 `json:"scrub_scanned"`
	ScrubRepaired   uint64 `json:"scrub_repaired"`
	RepairOK        bool   `json:"scrub_repair_ok"`

	// Violations lists failed gates; empty means the suite passed.
	Violations []string `json:"violations,omitempty"`
}

// backupChunk renders the deterministic content of a slot at a generation.
func backupChunk(gen, slot, size int) []byte {
	rng := rand.New(rand.NewSource(int64(gen)*1_000_003 + int64(slot)))
	b := make([]byte, size)
	rng.Read(b)
	return b
}

// RunBackup assembles a replication box over block-backed content stores,
// drives the multi-round backup workload, and evaluates the gates.
func RunBackup(cfg BackupConfig) (*BackupRun, error) {
	if cfg.Chunks <= 0 {
		cfg.Chunks = 512
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 4
	}
	if cfg.Backends <= 0 {
		cfg.Backends = 3
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 4096
	}
	if cfg.ModifiedPct <= 0 {
		cfg.ModifiedPct = 25
	}
	const bs = 512
	run := &BackupRun{
		Backends:    cfg.Backends,
		Quorum:      cfg.Backends/2 + 1,
		ChunkBytes:  cfg.ChunkBytes,
		Chunks:      cfg.Chunks,
		Rounds:      cfg.Rounds,
		ModifiedPct: cfg.ModifiedPct,
	}

	// The primary image and the content-addressed backends, each on its own
	// block device with the on-disk CAS layout (superblock, slot table,
	// chunk slots) — the same stack the platform attaches per backend
	// volume.
	slots := uint64(cfg.Chunks)
	primary, err := blockdev.NewMemDisk(bs, slots*uint64(cfg.ChunkBytes)/bs)
	if err != nil {
		return nil, err
	}
	devBytes, err := cas.BlockBackendBytes(bs, cfg.ChunkBytes, slots)
	if err != nil {
		return nil, err
	}
	var backends []replicate.NamedStore
	for i := 0; i < cfg.Backends; i++ {
		disk, err := blockdev.NewMemDisk(bs, devBytes/bs)
		if err != nil {
			return nil, err
		}
		be, err := cas.OpenBlockBackend(disk, cfg.ChunkBytes, slots)
		if err != nil {
			return nil, err
		}
		store, err := cas.Open(be, cfg.ChunkBytes, slots)
		if err != nil {
			return nil, err
		}
		backends = append(backends, replicate.NamedStore{Name: fmt.Sprintf("backend%d", i), Store: store})
	}
	walDir, err := os.MkdirTemp("", "storm-backup-wal")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(walDir)
	box, err := replicate.New(replicate.Config{
		Name:   "bench-backup",
		Quorum: run.Quorum, ChunkSize: cfg.ChunkBytes, WALDir: walDir,
	}, primary, backends)
	if err != nil {
		return nil, err
	}
	defer box.Close()

	// The backup workload: round 0 writes a fully unique image; each later
	// round re-ingests the full image with ModifiedPct of the chunks
	// changed. gen tracks the generation whose content a slot carries.
	bpc := uint64(cfg.ChunkBytes / bs)
	gen := make([]int, cfg.Chunks)
	hist := &metrics.Histogram{}
	start := time.Now()
	for r := 0; r < cfg.Rounds; r++ {
		for s := 0; s < cfg.Chunks; s++ {
			if r > 0 && (s*31+r*17)%100 < cfg.ModifiedPct {
				gen[s] = r
			}
			t0 := time.Now()
			if err := box.WriteAt(backupChunk(gen[s], s, cfg.ChunkBytes), uint64(s)*bpc); err != nil {
				return nil, fmt.Errorf("backup round %d slot %d: %w", r, s, err)
			}
			hist.Observe(time.Since(t0))
		}
	}
	if err := box.Flush(); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(30 * time.Second)
	for !box.Drained() {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("backup: box never drained")
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)

	st := backends[0].Store.Stats()
	run.LogicalMB = float64(st.BytesLogical) / (1 << 20)
	run.StoredMB = float64(st.BytesStored) / (1 << 20)
	run.DedupRatio = st.DedupRatio()
	run.DedupHits = st.DedupHits
	run.WriteMBps = run.LogicalMB / elapsed.Seconds()
	run.WriteP99 = hist.Percentile(99)

	// Convergence: every backend's logical image must hash identically to
	// the primary's bytes.
	img := make([]byte, slots*uint64(cfg.ChunkBytes))
	for off := uint64(0); off < uint64(len(img)); off += uint64(cfg.ChunkBytes) {
		if err := primary.ReadAt(img[off:off+uint64(cfg.ChunkBytes)], off/bs); err != nil {
			return nil, err
		}
	}
	want := cas.ID(sha256.Sum256(img))
	run.Converged = true
	for _, nb := range backends {
		got, err := nb.Store.LogicalHash()
		if err != nil || got != want {
			run.Converged = false
		}
	}

	// Scrub repair: rot a spread of chunks on one backend behind the box's
	// back, then let one scrub pass repair them from the healthy majority.
	corrupt := cfg.Chunks / 64
	if corrupt < 4 {
		corrupt = 4
	}
	victim := box.Targets()[0]
	for i := 0; i < corrupt; i++ {
		slot := uint64(i * cfg.Chunks / corrupt)
		if err := victim.Store().Corrupt(slot); err != nil {
			return nil, fmt.Errorf("backup: corrupt slot %d: %w", slot, err)
		}
	}
	run.CorruptedChunks = corrupt
	reps := make([]scrub.Replica, 0, len(box.Targets()))
	for _, t := range box.Targets() {
		reps = append(reps, t)
	}
	sc := scrub.New(scrub.Config{
		Name: "bench-backup", Replicas: reps, Slots: slots, ChunkSize: cfg.ChunkBytes,
	})
	pass, err := sc.RunPass()
	if err != nil {
		return nil, fmt.Errorf("backup: scrub pass: %w", err)
	}
	run.ScrubScanned = pass.Scanned
	run.ScrubRepaired = pass.Repaired
	run.RepairOK = pass.Repaired >= uint64(corrupt) && pass.Unrepairable == 0
	if got, err := victim.Store().LogicalHash(); err != nil || got != want {
		run.RepairOK = false
	}

	// Gates.
	if run.DedupRatio < 1.5 {
		run.Violations = append(run.Violations,
			fmt.Sprintf("dedup ratio %.2fx below the 1.5x floor on a %d%%-delta workload", run.DedupRatio, cfg.ModifiedPct))
	}
	if !run.Converged {
		run.Violations = append(run.Violations, "backends diverged from the primary image after drain")
	}
	if !run.RepairOK {
		run.Violations = append(run.Violations,
			fmt.Sprintf("scrub repaired %d of %d corrupted chunks", run.ScrubRepaired, corrupt))
	}
	return run, nil
}

// FormatBackup renders the backup report.
func FormatBackup(run *BackupRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "backup: %d rounds x %d chunks (%d B), %d%% modified per round, %d backends quorum %d\n",
		run.Rounds, run.Chunks, run.ChunkBytes, run.ModifiedPct, run.Backends, run.Quorum)
	fmt.Fprintf(&b, "  ingested           %.1f MiB logical, %.1f MiB stored per backend\n", run.LogicalMB, run.StoredMB)
	fmt.Fprintf(&b, "  dedup ratio        %.2fx (%d chunk writes deduplicated)\n", run.DedupRatio, run.DedupHits)
	fmt.Fprintf(&b, "  fan-out throughput %.1f MiB/s quorum-acknowledged (write p99 %v)\n",
		run.WriteMBps, run.WriteP99.Round(time.Microsecond))
	fmt.Fprintf(&b, "  convergence        all backends content-hash equal: %v\n", run.Converged)
	fmt.Fprintf(&b, "  scrub repair       %d/%d corrupted chunks repaired (scanned %d)\n",
		run.ScrubRepaired, run.CorruptedChunks, run.ScrubScanned)
	if len(run.Violations) == 0 {
		b.WriteString("  PASS: all backup gates held\n")
	} else {
		for _, v := range run.Violations {
			fmt.Fprintf(&b, "  FAIL: %s\n", v)
		}
	}
	return b.String()
}
