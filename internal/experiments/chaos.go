// Chaos smoke suite: the failure-recovery counterpart of the performance
// experiments. Each scenario injects faults from a deterministic schedule
// into a live data path and verifies no write is lost or misordered —
// the property StorM's early-ack journaling (Section III-B) and replica
// eviction/recovery (Figure 13) must preserve under failures.
package experiments

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"strings"
	"time"

	"repro/internal/blockdev"
	"repro/internal/faults"
	"repro/internal/initiator"
	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/services/replica"
	"repro/internal/target"
)

// ChaosResult reports one chaos scenario's outcome. DataLoss is the
// pass/fail verdict: true when any acknowledged write was lost, reordered,
// or left stranded in a journal.
type ChaosResult struct {
	Scenario string `json:"scenario"`
	Writes   int    `json:"writes"`
	Faults   int    `json:"faults"`
	// JournalFailures counts write attempts the outage failed (later
	// replayed); zero faults hitting the data path makes the run vacuous,
	// so the scenario reports it.
	JournalFailures int `json:"journal_failures,omitempty"`
	// Replayed counts journal records a crash recovery delivered to the
	// backend (kill/replay scenarios).
	Replayed int    `json:"replayed,omitempty"`
	DataLoss bool   `json:"data_loss"`
	Detail   string `json:"detail"`
}

// RunChaosSuite executes every chaos scenario and returns the results.
// Callers treat any DataLoss=true as a failed run.
func RunChaosSuite() ([]ChaosResult, error) {
	relayRes, err := chaosRelayBackendCut()
	if err != nil {
		return nil, fmt.Errorf("relay-backend-cut: %w", err)
	}
	replicaRes, err := chaosReplicaKillHeal()
	if err != nil {
		return nil, fmt.Errorf("replica-kill-heal: %w", err)
	}
	return []ChaosResult{relayRes, replicaRes}, nil
}

// FormatChaos renders the chaos results as a report table.
func FormatChaos(results []ChaosResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %8s %7s %9s %-6s detail\n", "scenario", "writes", "faults", "failures", "loss")
	for _, r := range results {
		verdict := "ok"
		if r.DataLoss {
			verdict = "LOST"
		}
		fmt.Fprintf(&b, "%-22s %8d %7d %9d %-6s %s\n",
			r.Scenario, r.Writes, r.Faults, r.JournalFailures, verdict, r.Detail)
	}
	return b.String()
}

// chaosRelayWorkload runs one VM→active-relay→target write workload over
// the netsim fabric, cutting the relay→storage link at the given logical
// ticks, and returns the read-back content hash plus the session journal.
func chaosRelayWorkload(cuts ...uint64) (sum [32]byte, j middlebox.Journal, err error) {
	model := netsim.Model{MTU: 8 * 1024, Bandwidth: 1 << 32,
		Latency: map[netsim.HopKind]time.Duration{}, PerPacket: map[netsim.HopKind]time.Duration{}}
	fab := netsim.NewFabric(model)
	vmHost, err := fab.AddHost("compute1", map[netsim.Network]string{netsim.StorageNet: "10.0.0.1"})
	if err != nil {
		return sum, nil, err
	}
	mbHost, err := fab.AddHost("mb1", map[netsim.Network]string{netsim.StorageNet: "10.0.0.50"})
	if err != nil {
		return sum, nil, err
	}
	storHost, err := fab.AddHost("storage1", map[netsim.Network]string{netsim.StorageNet: "10.0.0.100"})
	if err != nil {
		return sum, nil, err
	}

	disk, err := blockdev.NewMemDisk(512, 1024)
	if err != nil {
		return sum, nil, err
	}
	tsrv := target.NewServer()
	const iqn = "iqn.2016-04.edu.purdue.storm:chaos"
	if err := tsrv.AddTarget(iqn, disk); err != nil {
		return sum, nil, err
	}
	storLn, err := storHost.NewEndpoint("tgt").Listen(netsim.StorageNet, 3260)
	if err != nil {
		return sum, nil, err
	}
	go tsrv.Serve(storLn)
	defer tsrv.Close()

	relay, err := middlebox.NewRelay(middlebox.Config{
		Name:     "mb1",
		Mode:     middlebox.Active,
		Endpoint: mbHost.NewEndpoint("relay"),
		NextHop:  netsim.Addr{Net: netsim.StorageNet, IP: "10.0.0.100", Port: 3260},
		Cost:     middlebox.CostModel{MTU: 8192, BatchSize: 65536},
		// Chaos runs exercise link cuts against an MC/S downstream leg.
		ForwardConns: 2,
		Recovery:     middlebox.RecoveryConfig{BackoffBase: time.Millisecond, BackoffCap: 4 * time.Millisecond},
	})
	if err != nil {
		return sum, nil, err
	}
	mbLn, err := mbHost.NewEndpoint("front").Listen(netsim.StorageNet, 3260)
	if err != nil {
		return sum, nil, err
	}
	go relay.Serve(mbLn)
	defer relay.Close()

	front, err := vmHost.NewEndpoint("vm").Dial(netsim.StorageNet, "10.0.0.50:3260")
	if err != nil {
		return sum, nil, err
	}
	sess, err := initiator.Login(front, initiator.Config{
		InitiatorIQN: "iqn.vm-chaos", TargetIQN: iqn,
	})
	if err != nil {
		return sum, nil, fmt.Errorf("login through relay: %w", err)
	}
	j = <-relay.Journals()

	sched := faults.NewSchedule()
	for _, tick := range cuts {
		sched.At(tick, fmt.Sprintf("cut@%d", tick), func() {
			fab.CutLink("mb1", "storage1")
		})
	}

	const n = 48
	for i := 0; i < n; i++ {
		p := make([]byte, 512)
		for k := range p {
			p[k] = byte(i*7 + k)
		}
		if err := sess.Write(uint64(i), p, 512); err != nil {
			return sum, nil, fmt.Errorf("write %d: %w", i, err)
		}
		sched.Step()
	}
	if err := sess.Flush(); err != nil {
		return sum, nil, fmt.Errorf("flush: %w", err)
	}
	if fired := sched.Fired(); len(fired) != len(cuts) {
		return sum, nil, fmt.Errorf("schedule fired %d faults, want %d", len(fired), len(cuts))
	}

	h := sha256.New()
	for i := 0; i < n; i++ {
		b, err := sess.Read(uint64(i), 1, 512)
		if err != nil {
			return sum, nil, fmt.Errorf("read-back %d: %w", i, err)
		}
		h.Write(b)
	}
	if err := sess.Logout(); err != nil {
		return sum, nil, fmt.Errorf("logout: %w", err)
	}
	copy(sum[:], h.Sum(nil))
	return sum, j, nil
}

// chaosRelayBackendCut cuts the relay's backend link twice mid-workload and
// compares the surviving content against a no-fault run.
func chaosRelayBackendCut() (ChaosResult, error) {
	res := ChaosResult{Scenario: "relay-backend-cut", Writes: 48, Faults: 2}
	wantHash, cleanJ, err := chaosRelayWorkload()
	if err != nil {
		return res, fmt.Errorf("no-fault baseline: %w", err)
	}
	if used := cleanJ.UsedBytes(); used != 0 {
		return res, fmt.Errorf("no-fault baseline left %d journal bytes", used)
	}

	gotHash, j, err := chaosRelayWorkload(10, 30)
	if err != nil {
		return res, err
	}
	res.JournalFailures = len(j.Failures())
	switch {
	case gotHash != wantHash:
		res.DataLoss = true
		res.Detail = "content hash diverged from no-fault run"
	case j.UsedBytes() != 0 || j.Pending() != 0:
		res.DataLoss = true
		res.Detail = fmt.Sprintf("journal not drained: %d bytes, %d pending", j.UsedBytes(), j.Pending())
	case res.JournalFailures == 0:
		res.DataLoss = true
		res.Detail = "cuts never hit the data path (vacuous run)"
	default:
		res.Detail = "reconnected and replayed; content identical to no-fault run"
	}
	return res, nil
}

// chaosReplicaKillHeal kills one replica mid-workload, heals it, and checks
// the probe-driven resync leaves it byte-identical to the primary.
func chaosReplicaKillHeal() (ChaosResult, error) {
	res := ChaosResult{Scenario: "replica-kill-heal", Writes: 40, Faults: 2}
	mk := func() (*blockdev.MemDisk, error) { return blockdev.NewMemDisk(512, 128) }
	primary, err := mk()
	if err != nil {
		return res, err
	}
	rep1, err := mk()
	if err != nil {
		return res, err
	}
	rep2, err := mk()
	if err != nil {
		return res, err
	}
	fd := blockdev.NewFaultDisk(rep2)
	disp, err := replica.New(primary,
		replica.NamedDevice{Name: "replica1", Dev: rep1},
		replica.NamedDevice{Name: "replica2", Dev: fd})
	if err != nil {
		return res, err
	}

	sched := faults.NewSchedule()
	sched.At(10, "kill-replica2", func() { fd.Trip(fmt.Errorf("replica2 host down")) })
	sched.At(25, "heal-replica2", func() {
		fd.Heal()
		disp.Probe()
	})

	for i := 0; i < res.Writes; i++ {
		p := make([]byte, 512)
		for k := range p {
			p[k] = byte(i*13 + k)
		}
		if err := disp.WriteAt(p, uint64(i%64)); err != nil {
			return res, fmt.Errorf("write %d: %w", i, err)
		}
		sched.Step()
	}
	if err := disp.Flush(); err != nil {
		return res, err
	}
	if disp.AliveCount() != 3 {
		res.DataLoss = true
		res.Detail = fmt.Sprintf("healed replica not re-admitted: alive=%d", disp.AliveCount())
		return res, nil
	}
	pri := make([]byte, 512)
	rep := make([]byte, 512)
	for lba := uint64(0); lba < primary.Blocks(); lba++ {
		if err := primary.ReadAt(pri, lba); err != nil {
			return res, err
		}
		if err := rep2.ReadAt(rep, lba); err != nil {
			return res, err
		}
		if !bytes.Equal(pri, rep) {
			res.DataLoss = true
			res.Detail = fmt.Sprintf("replica2 diverges from primary at lba %d", lba)
			return res, nil
		}
	}
	res.Detail = "evicted, resynced, re-admitted; byte-identical to primary"
	return res, nil
}
