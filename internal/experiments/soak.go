package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	rtmetrics "runtime/metrics"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/initiator"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/sdn"
)

// The soak experiment is the control-plane scalability stress: hundreds of
// tenants share a handful of compute hosts, every tenant drives verified
// I/O through its own middle-box chain, and a churn pool concurrently
// deploys and tears down tenants the whole time. It measures data-path
// latency with and without control-plane churn, the process alloc rate,
// runtime mutex wait, and gates the vswitch flow lookup at 0 allocs/op —
// the properties the sharded platform maps and RCU rule sets exist for.

// SoakConfig sizes a soak run.
type SoakConfig struct {
	// Tenants is the steady-state tenant count (default 500). Every 16th
	// steady tenant runs an active encryption relay; the rest are pure
	// forward chains, so relay goroutine count stays bounded.
	Tenants int
	// ChurnTenants is the concurrently deploying/tearing pool size
	// (default Tenants/8, minimum 1).
	ChurnTenants int
	// Duration is total measured soak time, split evenly between a quiet
	// phase (no control-plane activity) and a churn phase (default 10s).
	Duration time.Duration
	// Hosts is the compute host count (default 8): tenants share hosts at
	// ~60+ guests each rather than getting private machines.
	Hosts int
	// MutexWaitPerOpBudget gates runtime mutex wait per I/O op (default
	// 20ms). Recorded full-scale runs sit at 1.8–8.4ms/op (mutex wait sums
	// across all goroutines, so it can exceed wall time); a reintroduced
	// global lock on the apply/teardown or data path blows well past this.
	MutexWaitPerOpBudget time.Duration
}

// SoakRun is one dated soak result.
type SoakRun struct {
	When         string        `json:"when"`
	Tenants      int           `json:"tenants"`
	ChurnTenants int           `json:"churn_tenants"`
	Hosts        int           `json:"hosts"`
	Duration     time.Duration `json:"duration_ns"`
	SetupTime    time.Duration `json:"setup_ns"`

	Ops         int64 `json:"ops"`
	ChurnCycles int64 `json:"churn_cycles"`

	QuietP50 time.Duration `json:"quiet_p50_ns"`
	QuietP99 time.Duration `json:"quiet_p99_ns"`
	ChurnP50 time.Duration `json:"churn_p50_ns"`
	ChurnP99 time.Duration `json:"churn_p99_ns"`

	// AllocRateMB is process-wide heap allocation over the measured phases,
	// MiB per second.
	AllocRateMB float64 `json:"alloc_rate_mib_per_s"`
	// MutexWait is the runtime's total mutex wait accumulated across the
	// measured phases (/sync/mutex/wait/total:seconds delta), and
	// MutexWaitPerOp is that total divided by the I/O ops that paid it
	// (gated against SoakConfig.MutexWaitPerOpBudget).
	MutexWait      time.Duration `json:"mutex_wait_ns"`
	MutexWaitPerOp time.Duration `json:"mutex_wait_per_op_ns"`
	// LookupAllocs is allocations per vswitch flow lookup on a live chain
	// switch (must be 0).
	LookupAllocs float64 `json:"lookup_allocs_per_op"`

	GatewayIPsLive      int   `json:"gateway_ips_live_after"`
	IsolationViolations int64 `json:"isolation_violations"`
	IOErrors            int64 `json:"io_errors"`

	// Violations lists failed gates; empty means the soak passed.
	Violations []string `json:"violations,omitempty"`
}

// soakTenant is one steady tenant's live handles.
type soakTenant struct {
	name    string
	depID   string
	pattern byte
	dev     *initiator.Device
}

// RunSoak assembles the shared-host cloud, deploys the steady tenants,
// runs the quiet and churn phases, and evaluates the gates.
func RunSoak(cfg SoakConfig) (*SoakRun, error) {
	if cfg.Tenants <= 0 {
		cfg.Tenants = 500
	}
	if cfg.ChurnTenants <= 0 {
		cfg.ChurnTenants = cfg.Tenants / 8
		if cfg.ChurnTenants < 1 {
			cfg.ChurnTenants = 1
		}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Hosts <= 0 {
		cfg.Hosts = 8
	}
	if cfg.MutexWaitPerOpBudget <= 0 {
		cfg.MutexWaitPerOpBudget = 20 * time.Millisecond
	}
	run := &SoakRun{
		Tenants:      cfg.Tenants,
		ChurnTenants: cfg.ChurnTenants,
		Hosts:        cfg.Hosts,
		Duration:     cfg.Duration,
	}

	// A fast fabric: the soak measures control-plane contention, not the
	// calibrated wire costs, so modelled latencies stay out of the way.
	c, err := cloud.New(cloud.Config{ComputeHosts: cfg.Hosts, Model: netsim.Model{
		MTU:       8 * 1024,
		Bandwidth: 1 << 33,
		Latency:   map[netsim.HopKind]time.Duration{},
		PerPacket: map[netsim.HopKind]time.Duration{},
	}})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	p := core.New(c)

	var (
		errs       atomic.Int64
		violations atomic.Int64
	)

	// Deploy the steady tenants through a bounded worker pool.
	setupStart := time.Now()
	tenants := make([]*soakTenant, cfg.Tenants)
	var wg sync.WaitGroup
	sem := make(chan struct{}, 32)
	for i := 0; i < cfg.Tenants; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			st, err := deploySoakTenant(c, p, i)
			if err != nil {
				errs.Add(1)
				fmt.Printf("soak: deploy tenant %d: %v\n", i, err)
				return
			}
			tenants[i] = st
		}(i)
	}
	wg.Wait()
	run.SetupTime = time.Since(setupStart)
	live := tenants[:0]
	for _, st := range tenants {
		if st != nil {
			live = append(live, st)
		}
	}
	tenants = live
	if len(tenants) == 0 {
		return nil, fmt.Errorf("soak: no tenant deployed")
	}

	// Gate: flow lookup on a live chain switch must not allocate. Measured
	// while the bed is quiescent (AllocsPerRun reads global counters).
	run.LookupAllocs = measureLookupAllocs(c, tenants[0].depID)

	// Launch the churn pool's VMs and volumes once; cycles reuse them.
	churnVMs := make([]string, cfg.ChurnTenants)
	churnVols := make([]string, cfg.ChurnTenants)
	for i := range churnVMs {
		vmName := fmt.Sprintf("churn-vm%d", i)
		if _, err := c.LaunchVM(vmName, ""); err != nil {
			return nil, err
		}
		vol, err := c.Volumes.Create(fmt.Sprintf("churn-vol%d", i), 4<<20)
		if err != nil {
			return nil, err
		}
		churnVMs[i], churnVols[i] = vmName, vol.ID
	}

	var (
		ops    atomic.Int64
		cycles atomic.Int64
	)
	hQuiet := &metrics.Histogram{}
	hChurn := &metrics.Histogram{}

	memBefore := heapAllocated()
	mutexBefore := mutexWaitTotal()
	measured := time.Now()

	// ioPhase drives every steady tenant's verified read-after-write loop
	// until the deadline.
	ioPhase := func(h *metrics.Histogram, d time.Duration) {
		stop := make(chan struct{})
		time.AfterFunc(d, func() { close(stop) })
		var pw sync.WaitGroup
		for _, st := range tenants {
			pw.Add(1)
			go func(st *soakTenant) {
				defer pw.Done()
				buf := bytes.Repeat([]byte{st.pattern}, 4096)
				got := make([]byte, 4096)
				for op := 0; ; op++ {
					lba := uint64((op % 64) * 8)
					t0 := time.Now()
					if err := st.dev.WriteAt(buf, lba); err != nil {
						errs.Add(1)
						return
					}
					if err := st.dev.ReadAt(got, lba); err != nil {
						errs.Add(1)
						return
					}
					h.Observe(time.Since(t0))
					ops.Add(2)
					if !bytes.Equal(got, buf) {
						violations.Add(1)
						return
					}
					// The deadline is checked after the op, never before:
					// every tenant must land at least one verified write per
					// phase (op 0 covers lba 0), because the final integrity
					// pass asserts the pattern is durable at lba 0. Under a
					// saturated scheduler a tenant's first timeslice can
					// arrive after the deadline; bailing out up front would
					// leave its volume unwritten and misread as data loss.
					select {
					case <-stop:
						return
					default:
					}
				}
			}(st)
		}
		pw.Wait()
	}

	// Quiet phase: data path only.
	ioPhase(hQuiet, cfg.Duration/2)

	// Churn phase: the same data path while the churn pool concurrently
	// applies and tears down deployments on the shared hosts.
	churnStop := make(chan struct{})
	var cw sync.WaitGroup
	for i := 0; i < cfg.ChurnTenants; i++ {
		cw.Add(1)
		go func(i int) {
			defer cw.Done()
			for cyc := 0; ; cyc++ {
				select {
				case <-churnStop:
					return
				default:
				}
				tenant := fmt.Sprintf("churn%d-c%d", i, cyc)
				pol := &policy.Policy{
					Tenant:      tenant,
					MiddleBoxes: []policy.MiddleBoxSpec{{Name: "fwd", Type: policy.TypeForward}},
					Volumes: []policy.VolumeBinding{{
						VM: churnVMs[i], Volume: churnVols[i], Chain: []string{"fwd"},
					}},
				}
				dep, err := p.Apply(pol)
				if err != nil {
					errs.Add(1)
					continue
				}
				av := dep.Volumes[churnVMs[i]+"/"+churnVols[i]]
				blk := bytes.Repeat([]byte{byte(251)}, 4096)
				if err := av.Device.WriteAt(blk, 0); err != nil {
					errs.Add(1)
				}
				if err := p.Teardown(tenant); err != nil {
					errs.Add(1)
					continue
				}
				cycles.Add(1)
			}
		}(i)
	}
	ioPhase(hChurn, cfg.Duration/2)
	close(churnStop)
	cw.Wait()

	elapsed := time.Since(measured)
	run.MutexWait = mutexWaitTotal() - mutexBefore
	run.AllocRateMB = float64(heapAllocated()-memBefore) / (1 << 20) / elapsed.Seconds()
	run.Ops = ops.Load()
	if run.Ops > 0 {
		run.MutexWaitPerOp = run.MutexWait / time.Duration(run.Ops)
	}
	run.ChurnCycles = cycles.Load()
	run.QuietP50 = hQuiet.Percentile(50)
	run.QuietP99 = hQuiet.Percentile(99)
	run.ChurnP50 = hChurn.Percentile(50)
	run.ChurnP99 = hChurn.Percentile(99)

	// Final integrity pass: every steady tenant wrote its pattern at lba 0
	// (op 0 of the quiet phase, guaranteed by the post-op deadline check),
	// so it must still read back — any other content is cross-tenant bleed
	// or data loss. Then tear everything down and check for leaks.
	for _, st := range tenants {
		buf := bytes.Repeat([]byte{st.pattern}, 4096)
		got := make([]byte, 4096)
		if err := st.dev.ReadAt(got, 0); err != nil {
			errs.Add(1)
		} else if !bytes.Equal(got, buf) {
			violations.Add(1)
		}
	}
	for _, st := range tenants {
		if err := p.Teardown(st.name); err != nil {
			errs.Add(1)
		}
	}
	run.GatewayIPsLive = p.GatewayIPsLive()
	run.IOErrors = errs.Load()
	run.IsolationViolations = violations.Load()

	// Gates.
	if run.LookupAllocs != 0 {
		run.Violations = append(run.Violations,
			fmt.Sprintf("flow lookup allocates %.1f/op (budget 0)", run.LookupAllocs))
	}
	if run.IsolationViolations > 0 {
		run.Violations = append(run.Violations,
			fmt.Sprintf("%d isolation/data-loss violations", run.IsolationViolations))
	}
	if run.IOErrors > 0 {
		run.Violations = append(run.Violations,
			fmt.Sprintf("%d I/O or control-plane errors", run.IOErrors))
	}
	if run.GatewayIPsLive != 0 {
		run.Violations = append(run.Violations,
			fmt.Sprintf("%d gateway IPs leaked after teardown", run.GatewayIPsLive))
	}
	// Churn must not blow up the data-path tail: allow 4x the quiet p99
	// with a 2ms absolute floor so sub-millisecond jitter doesn't flap.
	budget := 4 * run.QuietP99
	if budget < 2*time.Millisecond {
		budget = 2 * time.Millisecond
	}
	if run.ChurnP99 > budget {
		run.Violations = append(run.Violations,
			fmt.Sprintf("churn-phase p99 %v exceeds budget %v (quiet p99 %v)",
				run.ChurnP99, budget, run.QuietP99))
	}
	// Lock contention must stay in the recorded band: mutex wait per op
	// blowing past the budget means a serialization point crept back into
	// the sharded control plane or the data path.
	if run.MutexWaitPerOp > cfg.MutexWaitPerOpBudget {
		run.Violations = append(run.Violations,
			fmt.Sprintf("mutex wait %v/op exceeds budget %v (total %v over %d ops)",
				run.MutexWaitPerOp, cfg.MutexWaitPerOpBudget, run.MutexWait.Round(time.Millisecond), run.Ops))
	}
	return run, nil
}

// deploySoakTenant launches one steady tenant: VM, thin volume, and a
// forward chain — or an active encryption relay for every 16th tenant.
func deploySoakTenant(c *cloud.Cloud, p *core.Platform, i int) (*soakTenant, error) {
	tenant := fmt.Sprintf("soak%04d", i)
	vmName := tenant + "-vm"
	if _, err := c.LaunchVM(vmName, ""); err != nil {
		return nil, err
	}
	vol, err := c.Volumes.Create(tenant+"-vol", 4<<20)
	if err != nil {
		return nil, err
	}
	mb := policy.MiddleBoxSpec{Name: "fwd", Type: policy.TypeForward}
	if i%16 == 0 {
		mb = policy.MiddleBoxSpec{
			Name: "enc", Type: policy.TypeEncryption,
			Mode: policy.ModeActive, Params: map[string]string{"key": aesKeyHex},
		}
	}
	pol := &policy.Policy{
		Tenant:      tenant,
		MiddleBoxes: []policy.MiddleBoxSpec{mb},
		Volumes:     []policy.VolumeBinding{{VM: vmName, Volume: vol.ID, Chain: []string{mb.Name}}},
	}
	dep, err := p.Apply(pol)
	if err != nil {
		return nil, err
	}
	av := dep.Volumes[vmName+"/"+vol.ID]
	return &soakTenant{
		name:    tenant,
		depID:   av.DeploymentID,
		pattern: byte(1 + i%250),
		dev:     av.Device,
	}, nil
}

// measureLookupAllocs runs the vswitch flow lookup for a live deployment's
// chain flow on its ingress-host switch and reports allocs/op.
func measureLookupAllocs(c *cloud.Cloud, depID string) float64 {
	d := c.Plane.Deployment(depID)
	if d == nil {
		return -1
	}
	sw := c.Controller.SwitchFor(d.Ingress.Host)
	flow := netsim.Flow{
		Net:     netsim.InstanceNet,
		SrcIP:   d.Ingress.InstanceIP,
		SrcPort: 40000,
		DstIP:   d.Egress.InstanceIP,
		DstPort: 3260,
	}
	return testing.AllocsPerRun(1000, func() {
		sw.Lookup(flow, sdn.IngressStation)
	})
}

// heapAllocated returns cumulative bytes allocated by the process.
func heapAllocated() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// mutexWaitTotal reads the runtime's cumulative mutex wait.
func mutexWaitTotal() time.Duration {
	samples := []rtmetrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	rtmetrics.Read(samples)
	if samples[0].Value.Kind() != rtmetrics.KindFloat64 {
		return 0
	}
	return time.Duration(samples[0].Value.Float64() * float64(time.Second))
}

// FormatSoak renders the soak report.
func FormatSoak(run *SoakRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "soak: %d steady tenants + %d churners on %d hosts, %v measured (setup %v)\n",
		run.Tenants, run.ChurnTenants, run.Hosts, run.Duration, run.SetupTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "  I/O ops            %d (verified read-after-write)\n", run.Ops)
	fmt.Fprintf(&b, "  churn cycles       %d deploy+teardown during churn phase\n", run.ChurnCycles)
	fmt.Fprintf(&b, "  quiet p50/p99      %v / %v\n",
		run.QuietP50.Round(time.Microsecond), run.QuietP99.Round(time.Microsecond))
	fmt.Fprintf(&b, "  churn p50/p99      %v / %v\n",
		run.ChurnP50.Round(time.Microsecond), run.ChurnP99.Round(time.Microsecond))
	fmt.Fprintf(&b, "  alloc rate         %.1f MiB/s\n", run.AllocRateMB)
	fmt.Fprintf(&b, "  mutex wait         %v total across phases (%v/op)\n",
		run.MutexWait.Round(time.Microsecond), run.MutexWaitPerOp.Round(time.Microsecond))
	fmt.Fprintf(&b, "  flow lookup        %.1f allocs/op\n", run.LookupAllocs)
	fmt.Fprintf(&b, "  gateway IPs live   %d after teardown\n", run.GatewayIPsLive)
	fmt.Fprintf(&b, "  isolation          %d violations, %d I/O errors\n",
		run.IsolationViolations, run.IOErrors)
	if len(run.Violations) == 0 {
		b.WriteString("  PASS: all soak gates held\n")
	} else {
		for _, v := range run.Violations {
			fmt.Fprintf(&b, "  FAIL: %s\n", v)
		}
	}
	return b.String()
}
