package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/policy"
	"repro/internal/workload"
)

// AblationRow is one configuration point of a design-choice sweep.
type AblationRow struct {
	Label   string
	IOPS    float64
	Latency time.Duration
}

// FormatAblation renders an ablation sweep as text.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-24s %10s %12s\n", title, "config", "IOPS", "mean lat")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %10.0f %12v\n", r.Label, r.IOPS, r.Latency.Round(time.Microsecond))
	}
	return b.String()
}

// ablationFio is the common workload for the sweeps.
func ablationFio(dev interface {
	BlockSize() int
	Blocks() uint64
	ReadAt([]byte, uint64) error
	WriteAt([]byte, uint64) error
	Flush() error
	Close() error
}, ops int) (*workload.FioResult, error) {
	return workload.RunFio(workload.FioConfig{
		Dev:          dev,
		RequestSize:  16 * 1024,
		Threads:      1,
		ReadFraction: 0.5,
		Ops:          ops,
		Seed:         99,
	})
}

// AblationGatewayPlacement quantifies Section V-A's placement note: the
// worst-case spread (all hops on distinct hosts) versus co-locating the
// ingress gateway with the VM and the egress gateway near the target.
func AblationGatewayPlacement(ops int) ([]AblationRow, error) {
	type placement struct {
		label           string
		ingress, egress string
	}
	placements := []placement{
		{"worst-case spread", "compute2", "compute4"},
		{"ingress@VM host", "compute1", "compute4"},
		{"co-located both", "compute1", "compute1"},
	}
	// A LEGACY baseline isolates the routing overhead each placement adds.
	var rows []AblationRow
	{
		l, err := NewLab()
		if err != nil {
			return nil, err
		}
		dev, cleanup, err := l.provision(Legacy, "vm-gw-base")
		if err != nil {
			l.Close()
			return nil, err
		}
		res, err := ablationFio(dev, ops)
		cleanup()
		l.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Label: "legacy (no StorM)", IOPS: res.IOPS, Latency: res.Latency.Mean})
	}
	for i, pl := range placements {
		l, err := NewLab()
		if err != nil {
			return nil, err
		}
		vmName := fmt.Sprintf("vm-gw-%d", i)
		if _, err := l.Cloud.LaunchVM(vmName, "compute1"); err != nil {
			l.Close()
			return nil, err
		}
		vol, err := l.Cloud.Volumes.Create(vmName+"-vol", volumeSize)
		if err != nil {
			l.Close()
			return nil, err
		}
		pol := &policy.Policy{
			Tenant: l.nextTenant(),
			MiddleBoxes: []policy.MiddleBoxSpec{{
				Name: "fwd", Type: policy.TypeForward, Host: "compute3",
			}},
			Volumes: []policy.VolumeBinding{{
				VM: vmName, Volume: vol.ID, Chain: []string{"fwd"},
				IngressHost: pl.ingress, EgressHost: pl.egress,
			}},
		}
		dep, err := l.Platform.Apply(pol)
		if err != nil {
			l.Close()
			return nil, err
		}
		res, err := ablationFio(dep.Volumes[vmName+"/"+vol.ID].Device, ops)
		l.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Label: pl.label, IOPS: res.IOPS, Latency: res.Latency.Mean})
	}
	return rows, nil
}

// AblationChainLength sweeps the number of forwarding middle-boxes on the
// path (0-3), the cost of chaining Section III-A enables.
func AblationChainLength(ops int) ([]AblationRow, error) {
	var rows []AblationRow
	for n := 0; n <= 3; n++ {
		l, err := NewLab()
		if err != nil {
			return nil, err
		}
		vmName := fmt.Sprintf("vm-chain-%d", n)
		if _, err := l.Cloud.LaunchVM(vmName, "compute1"); err != nil {
			l.Close()
			return nil, err
		}
		vol, err := l.Cloud.Volumes.Create(vmName+"-vol", volumeSize)
		if err != nil {
			l.Close()
			return nil, err
		}
		pol := &policy.Policy{Tenant: l.nextTenant()}
		var chain []string
		hosts := []string{"compute2", "compute3", "compute4"}
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("fwd%d", i)
			pol.MiddleBoxes = append(pol.MiddleBoxes, policy.MiddleBoxSpec{
				Name: name, Type: policy.TypeForward, Host: hosts[i%len(hosts)],
			})
			chain = append(chain, name)
		}
		pol.Volumes = []policy.VolumeBinding{{
			VM: vmName, Volume: vol.ID, Chain: chain,
			IngressHost: "compute2", EgressHost: "compute4",
		}}
		dep, err := l.Platform.Apply(pol)
		if err != nil {
			l.Close()
			return nil, err
		}
		res, err := ablationFio(dep.Volumes[vmName+"/"+vol.ID].Device, ops)
		l.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Label: fmt.Sprintf("%d middle-boxes", n), IOPS: res.IOPS, Latency: res.Latency.Mean,
		})
	}
	return rows, nil
}

// AblationJournalCapacity sweeps the active relay's NVRAM budget: too
// small and early acknowledgement degrades to write-through under load.
func AblationJournalCapacity(ops int) ([]AblationRow, error) {
	capacities := []int{32 * 1024, 256 * 1024, 4 << 20}
	var rows []AblationRow
	for i, capBytes := range capacities {
		l, err := NewLab()
		if err != nil {
			return nil, err
		}
		vmName := fmt.Sprintf("vm-j-%d", i)
		dev, cleanup, err := l.provisionActiveWithJournal(vmName, capBytes)
		if err != nil {
			l.Close()
			return nil, err
		}
		res, err := workload.RunFio(workload.FioConfig{
			Dev: dev, RequestSize: 16 * 1024, Threads: 8,
			ReadFraction: 0.2, Ops: ops * 4, Seed: 99,
		})
		cleanup()
		l.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Label: fmt.Sprintf("journal %d KiB", capBytes/1024), IOPS: res.IOPS, Latency: res.Latency.Mean,
		})
	}
	return rows, nil
}

// AblationReplicaFactor sweeps the replication factor's effect on OLTP
// throughput (read striping gain vs. write fan-out cost).
func AblationReplicaFactor(duration time.Duration) ([]AblationRow, error) {
	if duration <= 0 {
		duration = time.Second
	}
	var rows []AblationRow
	for _, replicas := range []int{2, 3, 4} {
		l, err := NewLabQueuedDisk(4)
		if err != nil {
			return nil, err
		}
		res, err := l.replicatedOLTP(fmt.Sprintf("vm-rf-%d", replicas), replicas, duration)
		l.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Label: fmt.Sprintf("%d replicas", replicas),
			IOPS:  res.TPS,
		})
	}
	return rows, nil
}
