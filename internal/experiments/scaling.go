package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/policy"
)

// ScalingRun is one dated execution of the scale-out sweep; stormbench
// appends these to BENCH_results.json so the trajectory across PRs is kept.
type ScalingRun struct {
	When string       `json:"when"`
	Rows []ScalingRow `json:"rows"`
}

// ScalingRow is the aggregate write throughput of a fixed flow population
// pushed through an encryption middle-box group of a given size. The
// per-instance copy path is deliberately the bottleneck (one copy thread,
// calibrated per-batch cost), so the sweep isolates how throughput scales
// as the orchestrator would grow the group.
type ScalingRow struct {
	Instances      int     `json:"instances"`
	Flows          int     `json:"flows"`
	TotalBytes     int64   `json:"total_bytes"`
	ElapsedMs      float64 `json:"elapsed_ms"`
	ThroughputMBps float64 `json:"throughput_mbps"`
	// SpeedupVs1 is this row's throughput over the single-instance row's.
	SpeedupVs1 float64 `json:"speedup_vs_1"`
}

// Per-instance copy-path calibration for the sweep: one copy thread at
// 200 µs per 4 KiB batch caps each instance near 20 MB/s, far below the
// fabric, so the group is the resource being scaled.
const (
	scalingCopyCostNs  = 200_000
	scalingCopyBatch   = 4096
	scalingWriteChunk  = 64 << 10
	scalingMaxGroupCap = 4
)

// Scaling sweeps the encryption group across the given sizes (default
// 1, 2, 4) and measures aggregate write throughput of `flows` concurrent
// writers (default 4), each pushing perFlow bytes (default 2 MiB) through
// its own volume and spliced flow. Flow→member steering is the production
// path: the vswitch select group hashes each new flow to the least-loaded
// member, so flows spread evenly and each run is the steady state the
// orchestrator converges to at that size.
func Scaling(sizes []int, flows int, perFlow int64) ([]ScalingRow, error) {
	if len(sizes) == 0 {
		sizes = []int{1, 2, 4}
	}
	if flows <= 0 {
		flows = 4
	}
	if perFlow <= 0 {
		perFlow = 2 << 20
	}
	maxSize := scalingMaxGroupCap
	for _, n := range sizes {
		if n > maxSize {
			maxSize = n
		}
	}
	rows := make([]ScalingRow, 0, len(sizes))
	for _, n := range sizes {
		row, err := scalingOne(n, maxSize, flows, perFlow)
		if err != nil {
			return nil, fmt.Errorf("experiments: scaling at %d instances: %w", n, err)
		}
		if len(rows) > 0 && rows[0].ThroughputMBps > 0 {
			row.SpeedupVs1 = row.ThroughputMBps / rows[0].ThroughputMBps
		} else {
			row.SpeedupVs1 = 1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// scalingOne runs the flow population against a group seeded at size n.
func scalingOne(n, maxSize, flows int, perFlow int64) (ScalingRow, error) {
	// Negligible fabric and disk costs: the relay copy gate is the only
	// contended resource, which is the quantity the sweep measures.
	model := netsim.Model{
		MTU:       8 * 1024,
		Bandwidth: 1 << 33,
		Latency:   map[netsim.HopKind]time.Duration{},
		PerPacket: map[netsim.HopKind]time.Duration{},
	}
	c, err := cloud.New(cloud.Config{ComputeHosts: 4, Model: model})
	if err != nil {
		return ScalingRow{}, err
	}
	defer c.Close()
	p := core.New(c)

	pol := &policy.Policy{
		Tenant: "tenantScale",
		MiddleBoxes: []policy.MiddleBoxSpec{{
			Name:         "enc1",
			Type:         policy.TypeEncryption,
			MinInstances: n,
			MaxInstances: maxSize,
			Params: map[string]string{
				"key":                 aesKeyHex,
				"copyThreads":         "1",
				"interceptPerBatchNs": fmt.Sprint(scalingCopyCostNs),
				"interceptBatchBytes": fmt.Sprint(scalingCopyBatch),
			},
		}},
	}
	for i := 0; i < flows; i++ {
		vmName := fmt.Sprintf("svm%d", i+1)
		if _, err := c.LaunchVM(vmName, "compute1"); err != nil {
			return ScalingRow{}, err
		}
		vol, err := c.Volumes.Create(vmName+"-vol", volumeSize)
		if err != nil {
			return ScalingRow{}, err
		}
		pol.Volumes = append(pol.Volumes, policy.VolumeBinding{
			VM: vmName, Volume: vol.ID, Chain: []string{"enc1"},
		})
	}
	dep, err := p.Apply(pol)
	if err != nil {
		return ScalingRow{}, err
	}
	defer p.Teardown("tenantScale")

	var wg sync.WaitGroup
	errs := make(chan error, flows)
	start := time.Now()
	for _, vb := range pol.Volumes {
		av := dep.Volumes[vb.VM+"/"+vb.Volume]
		wg.Add(1)
		go func(av *core.AttachedVolume) {
			defer wg.Done()
			buf := make([]byte, scalingWriteChunk)
			step := uint64(len(buf) / av.Device.BlockSize())
			for lba, written := uint64(0), int64(0); written < perFlow; written += int64(len(buf)) {
				if err := av.Device.WriteAt(buf, lba); err != nil {
					errs <- err
					return
				}
				lba += step
			}
		}(av)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return ScalingRow{}, err
	}

	total := int64(flows) * perFlow
	return ScalingRow{
		Instances:      n,
		Flows:          flows,
		TotalBytes:     total,
		ElapsedMs:      float64(elapsed.Nanoseconds()) / 1e6,
		ThroughputMBps: float64(total) / (1 << 20) / elapsed.Seconds(),
	}, nil
}

// FormatScaling renders the sweep table.
func FormatScaling(rows []ScalingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-6s %-12s %-12s %-12s %s\n",
		"instances", "flows", "total_MiB", "elapsed_ms", "MB/s", "speedup_vs_1")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %-6d %-12.1f %-12.1f %-12.1f %.2fx\n",
			r.Instances, r.Flows, float64(r.TotalBytes)/(1<<20),
			r.ElapsedMs, r.ThroughputMBps, r.SpeedupVs1)
	}
	return b.String()
}
