package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// SizeSweep is the I/O request sizes of Figures 4, 5, 7, 8.
var SizeSweep = []int{4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024}

// ThreadSweep is the parallelism sweep of Figures 6 and 9.
var ThreadSweep = []int{4, 8, 16, 32}

// RoutingRow is one point of Figures 4 and 7: LEGACY vs MB-FWD at one I/O
// size (one thread, 50/50 random read/write).
type RoutingRow struct {
	IOSize        int
	LegacyIOPS    float64
	MBFwdIOPS     float64
	LegacyLatency time.Duration
	MBFwdLatency  time.Duration
	// LegacyLat / MBFwdLat are the full latency distributions (percentiles
	// for machine-readable output); the *Latency fields above keep the means
	// for the text tables.
	LegacyLat metrics.Summary
	MBFwdLat  metrics.Summary
}

// NormIOPS returns MB-FWD IOPS normalized to LEGACY (Figure 4's bars).
func (r RoutingRow) NormIOPS() float64 { return r.MBFwdIOPS / r.LegacyIOPS }

// NormLatency returns MB-FWD latency normalized to LEGACY (Figure 7).
func (r RoutingRow) NormLatency() float64 {
	return float64(r.MBFwdLatency) / float64(r.LegacyLatency)
}

// Options tunes experiment durations (benchmarks use smaller op counts
// than cmd/stormbench).
type Options struct {
	// FioOps is the op count per fio run (default 120).
	FioOps int
	// Seed for reproducibility.
	Seed int64
}

func (o *Options) defaults() {
	if o.FioOps <= 0 {
		o.FioOps = 120
	}
	if o.Seed == 0 {
		o.Seed = 20160628 // DSN'16 conference date
	}
}

// runFio provisions a scenario and runs one fio configuration against it.
func runFio(l *Lab, s Scenario, vmName string, size, threads, ops int, seed int64) (*workload.FioResult, error) {
	dev, cleanup, err := l.provision(s, vmName)
	if err != nil {
		return nil, fmt.Errorf("experiments: provision %s: %w", s, err)
	}
	defer cleanup()
	return workload.RunFio(workload.FioConfig{
		Dev:          dev,
		RequestSize:  size,
		Threads:      threads,
		ReadFraction: 0.5,
		Ops:          ops,
		Seed:         seed,
	})
}

// RoutingOverhead reproduces Figures 4 and 7: the redirection cost of the
// new forwarding plane with a non-processing middle-box, worst-case
// placement, one thread.
func RoutingOverhead(opts Options) ([]RoutingRow, error) {
	opts.defaults()
	var rows []RoutingRow
	for i, size := range SizeSweep {
		l, err := NewLab()
		if err != nil {
			return nil, err
		}
		leg, err := runFio(l, Legacy, fmt.Sprintf("vm-leg-%d", i), size, 1, opts.FioOps, opts.Seed)
		if err != nil {
			l.Close()
			return nil, err
		}
		fwd, err := runFio(l, MBFwd, fmt.Sprintf("vm-fwd-%d", i), size, 1, opts.FioOps, opts.Seed)
		if err != nil {
			l.Close()
			return nil, err
		}
		l.Close()
		rows = append(rows, RoutingRow{
			IOSize:        size,
			LegacyIOPS:    leg.IOPS,
			MBFwdIOPS:     fwd.IOPS,
			LegacyLatency: leg.Latency.Mean,
			MBFwdLatency:  fwd.Latency.Mean,
			LegacyLat:     leg.Latency,
			MBFwdLat:      fwd.Latency,
		})
	}
	return rows, nil
}

// ProcessingRow is one point of Figures 5, 6, 8, 9: the three middle-box
// designs at one configuration (the relays run the stream cipher service).
type ProcessingRow struct {
	// IOSize and Threads identify the configuration.
	IOSize  int
	Threads int

	FwdIOPS     float64
	PassiveIOPS float64
	ActiveIOPS  float64

	FwdLatency     time.Duration
	PassiveLatency time.Duration
	ActiveLatency  time.Duration

	// Full latency distributions for machine-readable output.
	FwdLat     metrics.Summary
	PassiveLat metrics.Summary
	ActiveLat  metrics.Summary
}

// Norm returns the scenario's IOPS normalized to MB-FWD.
func (r ProcessingRow) NormIOPS(s Scenario) float64 {
	switch s {
	case MBPassive:
		return r.PassiveIOPS / r.FwdIOPS
	case MBActive:
		return r.ActiveIOPS / r.FwdIOPS
	default:
		return 1
	}
}

// NormLatency returns the scenario's latency normalized to MB-FWD.
func (r ProcessingRow) NormLatency(s Scenario) float64 {
	switch s {
	case MBPassive:
		return float64(r.PassiveLatency) / float64(r.FwdLatency)
	case MBActive:
		return float64(r.ActiveLatency) / float64(r.FwdLatency)
	default:
		return 1
	}
}

// ProcessingOverheadBySize reproduces Figures 5 and 8: one thread, size
// sweep.
func ProcessingOverheadBySize(opts Options) ([]ProcessingRow, error) {
	opts.defaults()
	var rows []ProcessingRow
	for i, size := range SizeSweep {
		row, err := processingPoint(size, 1, i, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// ProcessingOverheadByThreads reproduces Figures 6 and 9: 16 KiB I/O,
// thread sweep.
func ProcessingOverheadByThreads(opts Options) ([]ProcessingRow, error) {
	opts.defaults()
	var rows []ProcessingRow
	for i, threads := range ThreadSweep {
		row, err := processingPoint(16*1024, threads, 100+i, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func processingPoint(size, threads, idx int, opts Options) (*ProcessingRow, error) {
	l, err := NewLab()
	if err != nil {
		return nil, err
	}
	defer l.Close()
	ops := opts.FioOps * threads
	fwd, err := runFio(l, MBFwd, fmt.Sprintf("vm-f%d", idx), size, threads, ops, opts.Seed)
	if err != nil {
		return nil, err
	}
	pas, err := runFio(l, MBPassive, fmt.Sprintf("vm-p%d", idx), size, threads, ops, opts.Seed)
	if err != nil {
		return nil, err
	}
	act, err := runFio(l, MBActive, fmt.Sprintf("vm-a%d", idx), size, threads, ops, opts.Seed)
	if err != nil {
		return nil, err
	}
	return &ProcessingRow{
		IOSize:         size,
		Threads:        threads,
		FwdIOPS:        fwd.IOPS,
		PassiveIOPS:    pas.IOPS,
		ActiveIOPS:     act.IOPS,
		FwdLatency:     fwd.Latency.Mean,
		PassiveLatency: pas.Latency.Mean,
		ActiveLatency:  act.Latency.Mean,
		FwdLat:         fwd.Latency,
		PassiveLat:     pas.Latency,
		ActiveLat:      act.Latency,
	}, nil
}

// FormatRoutingTable renders Figures 4/7 as text.
func FormatRoutingTable(rows []RoutingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %12s %10s | %12s %12s %10s\n",
		"size", "LEGACY iops", "MB-FWD iops", "norm", "LEGACY lat", "MB-FWD lat", "norm")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %12.0f %12.0f %10.2f | %12v %12v %10.2f\n",
			sizeLabel(r.IOSize), r.LegacyIOPS, r.MBFwdIOPS, r.NormIOPS(),
			r.LegacyLatency.Round(time.Microsecond), r.MBFwdLatency.Round(time.Microsecond), r.NormLatency())
	}
	return b.String()
}

// FormatProcessingTable renders Figures 5/6/8/9 as text.
func FormatProcessingTable(rows []ProcessingRow, byThreads bool) string {
	var b strings.Builder
	key := "size"
	if byThreads {
		key = "threads"
	}
	fmt.Fprintf(&b, "%-8s %10s %10s %10s | %9s %9s | %9s %9s\n",
		key, "FWD iops", "PASSIVE", "ACTIVE", "pas norm", "act norm", "pas lat", "act lat")
	for _, r := range rows {
		label := sizeLabel(r.IOSize)
		if byThreads {
			label = fmt.Sprintf("%d", r.Threads)
		}
		fmt.Fprintf(&b, "%-8s %10.0f %10.0f %10.0f | %9.2f %9.2f | %9.2f %9.2f\n",
			label, r.FwdIOPS, r.PassiveIOPS, r.ActiveIOPS,
			r.NormIOPS(MBPassive), r.NormIOPS(MBActive),
			r.NormLatency(MBPassive), r.NormLatency(MBActive))
	}
	return b.String()
}

func sizeLabel(n int) string {
	if n >= 1024 && n%1024 == 0 {
		return fmt.Sprintf("%dKB", n/1024)
	}
	return fmt.Sprintf("%dB", n)
}
