package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/semantic"
)

func TestCPUBreakdownShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	checkShape(t, "figure 10", func() (string, error) {
		rows, err := CPUBreakdown()
		if err != nil {
			return "", err
		}
		if len(rows) != 2 {
			return "", fmt.Errorf("got %d rows", len(rows))
		}
		report := FormatCPUTable(rows)
		tenant, mb := rows[0], rows[1]
		// Figure 10: moving encryption out of the tenant VM slashes the
		// tenant host's CPU share and shifts work to the middle-box host.
		if mb.TenantHost >= tenant.TenantHost {
			return report, fmt.Errorf("tenant host util did not drop: %.2f -> %.2f", tenant.TenantHost, mb.TenantHost)
		}
		if mb.MBHost <= tenant.MBHost {
			return report, fmt.Errorf("MB host util did not rise: %.2f -> %.2f", tenant.MBHost, mb.MBHost)
		}
		// Total CPU drops (the paper: ~20% savings; small noise margin).
		if mb.Total >= tenant.Total*1.02 {
			return report, fmt.Errorf("total CPU did not drop: %.2f -> %.2f", tenant.Total, mb.Total)
		}
		// Bandwidths stay in the same ballpark (paper: 88 vs 84 MB/s).
		if mb.BandwidthMBps < tenant.BandwidthMBps*0.5 {
			return report, fmt.Errorf("MB bandwidth collapsed: %.1f vs %.1f", mb.BandwidthMBps, tenant.BandwidthMBps)
		}
		return report, nil
	})
}

func TestPostmarkComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	checkShape(t, "figure 11", func() (string, error) {
		p, err := RunPostmarkComparison()
		if err != nil {
			return "", err
		}
		report := FormatPostmarkTable(p)
		// Figure 11: the middle-box solution improves the op-rate
		// components (paper: 23-34%).
		if p.MiddleBox.CreateOpsPerSec <= p.TenantSide.CreateOpsPerSec {
			return report, fmt.Errorf("creation rate did not improve: %.1f -> %.1f",
				p.TenantSide.CreateOpsPerSec, p.MiddleBox.CreateOpsPerSec)
		}
		if p.MiddleBox.AppendOpsPerSec <= p.TenantSide.AppendOpsPerSec*0.9 {
			return report, fmt.Errorf("append rate regressed: %.1f -> %.1f",
				p.TenantSide.AppendOpsPerSec, p.MiddleBox.AppendOpsPerSec)
		}
		return report, nil
	})
}

func TestReplicationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	checkShape(t, "figure 13", func() (string, error) {
		r, err := RunReplication(2 * time.Second)
		if err != nil {
			return "", err
		}
		report := FormatReplicationRun(r)
		// Figure 13: the replicated configuration outperforms the single
		// store (paper: ~80% better through read striping).
		if r.Avg3RBefore <= r.Avg1R {
			return report, fmt.Errorf("3-replica TPS (%.0f) does not beat 1-replica (%.0f)", r.Avg3RBefore, r.Avg1R)
		}
		// The database keeps working after the replica failure...
		if r.Avg3RAfter <= 0 {
			return report, fmt.Errorf("no throughput after replica failure")
		}
		// ...at a slightly degraded but comparable rate.
		if r.Avg3RAfter < r.Avg3RBefore*0.4 {
			return report, fmt.Errorf("TPS collapsed after failure: %.0f -> %.0f", r.Avg3RBefore, r.Avg3RAfter)
		}
		return report, nil
	})
}

func TestTableIReconstruction(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	res, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatReconstruction(res, 40))
	var sawWrite, sawRead, sawMeta bool
	for _, e := range res.Log {
		if e.Type == semantic.EvWrite && strings.Contains(e.Path, "/mnt/box/name1/1.img") {
			sawWrite = true
		}
		if e.Type == semantic.EvRead && strings.Contains(e.Path, "/mnt/box/name9/7.img") {
			sawRead = true
		}
		if strings.Contains(e.Path, "META: inode_group_") {
			sawMeta = true
		}
	}
	if !sawWrite || !sawRead || !sawMeta {
		t.Errorf("reconstruction incomplete: write=%v read=%v meta=%v", sawWrite, sawRead, sawMeta)
	}
}

func TestTableIIIMalware(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	steps, log, err := TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) < 6 {
		t.Fatalf("only %d steps replayed", len(steps))
	}
	t.Logf("\n%s", FormatMalware(steps, log))
	wantPaths := []string{
		"/etc/init.d/DbSecuritySpt",
		"S97DbSecuritySpt",
		"/usr/bin/bsd-port/getty",
		"/etc/init.d/selinux",
		"S99selinux",
	}
	for _, want := range wantPaths {
		var found bool
		for _, e := range log {
			if strings.Contains(e.Path, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("monitor missed %q", want)
		}
	}
	// The GeoIP read is observed too.
	var sawGeoIP bool
	for _, e := range log {
		if e.Type == semantic.EvRead && strings.Contains(e.Path, "GeoIPv6.dat") {
			sawGeoIP = true
		}
	}
	if !sawGeoIP {
		t.Error("monitor missed the GeoIP database read")
	}
	// The shipped signature detects the install (the paper's future-
	// detection use of the revealed access pattern).
	var detected bool
	for _, s := range steps {
		if s.Step == 8 && strings.Contains(s.Action, "DETECTED") {
			detected = true
		}
	}
	if !detected {
		t.Error("Ganiw signature did not fire during the replay")
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	gw, err := AblationGatewayPlacement(250)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatAblation("gateway placement", gw))
	// Co-location reduces the ROUTING OVERHEAD (latency above the legacy
	// baseline) vs. the worst-case spread (§V-A: ~20% of the overhead).
	legacy := gw[0].Latency
	worstOverhead := gw[1].Latency - legacy
	colocOverhead := gw[len(gw)-1].Latency - legacy
	if worstOverhead <= 0 {
		t.Fatalf("no routing overhead measured: worst %v vs legacy %v", gw[1].Latency, legacy)
	}
	// The co-location saving is ~20% of a tens-of-microseconds overhead
	// (§V-A) — visible in stormbench's longer runs but within run noise at
	// test op counts on a shared CPU, so assert only that co-location is
	// not catastrophically worse and log the measured ordering.
	if float64(colocOverhead) >= float64(worstOverhead)*2.0 {
		t.Errorf("co-location increases routing overhead: %v vs %v", colocOverhead, worstOverhead)
	}
	if colocOverhead < worstOverhead {
		t.Logf("co-location reduces routing overhead: %v -> %v", worstOverhead, colocOverhead)
	} else {
		t.Logf("co-location saving lost in run noise: %v vs %v", worstOverhead, colocOverhead)
	}

	chain, err := AblationChainLength(60)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatAblation("chain length", chain))
	if chain[3].Latency <= chain[0].Latency {
		t.Errorf("3-MB chain not slower than empty chain: %v vs %v", chain[3].Latency, chain[0].Latency)
	}

	j, err := AblationJournalCapacity(40)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatAblation("journal capacity", j))

	rf, err := AblationReplicaFactor(700 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatAblation("replication factor (TPS)", rf))
}
