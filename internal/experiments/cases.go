package experiments

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/blockdev"
	"repro/internal/extfs"
	"repro/internal/metrics"
	"repro/internal/minidb"
	"repro/internal/policy"
	"repro/internal/semantic"
	"repro/internal/services/crypt"
	"repro/internal/workload"
)

// encryption cost models for the Figure 10/11 comparison. The tenant-side
// deployment pays extra for dm-crypt's spinlock stalls on the application's
// vCPU (the effect Section V-B2 identifies); the middle-box runs the same
// cipher without contending with the foreground application.
func tenantSideCipherCost(cpu *metrics.CPUAccount) crypt.CostModel {
	return crypt.CostModel{PerKiB: 12 * time.Microsecond, CPU: cpu, Component: "cipher"}
}

func mbSideCipherCost(cpu *metrics.CPUAccount) crypt.CostModel {
	return crypt.CostModel{PerKiB: 8 * time.Microsecond, CPU: cpu, Component: "cipher"}
}

// CPURow is one bar group of Figure 10: per-host CPU utilization during
// the FTP transfer, plus the achieved bandwidth.
type CPURow struct {
	Deployment string // "tenant-vm" or "middle-box"
	// Utilization fractions (0..1) per role.
	TenantHost  float64
	MBHost      float64
	StorageHost float64
	// Total is the summed utilization the paper compares.
	Total float64
	// Bandwidth is the FTP transfer rate.
	BandwidthMBps float64
}

// CPUBreakdown reproduces Figure 10: the same AES-256 encryption performed
// inside the tenant VM versus inside a middle-box, under an FTP-style
// large-file transfer; CPU utilization is accounted per host.
func CPUBreakdown() ([]CPURow, error) {
	const transfer = 24 << 20
	var rows []CPURow

	// Tenant-side encryption: legacy attach, cipher wrapped around the
	// VM-side device, charged to the compute host.
	{
		l, err := NewLab()
		if err != nil {
			return nil, err
		}
		raw, cleanup, err := l.provision(Legacy, "vm-ftp-tenant")
		if err != nil {
			l.Close()
			return nil, err
		}
		tenantCPU := l.Cloud.HostCPU("compute1")
		dev, err := crypt.NewDevice(raw, testKey(), tenantSideCipherCost(tenantCPU))
		if err != nil {
			cleanup()
			l.Close()
			return nil, err
		}
		row, err := runFTPAndAccount(l, dev, "tenant-vm", transfer)
		cleanup()
		l.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}

	// Middle-box encryption: active relay on compute3 runs the cipher.
	{
		l, err := NewLab()
		if err != nil {
			return nil, err
		}
		dev, cleanup, err := l.provisionEncryptionMB("vm-ftp-mb", mbSideCipherCost(nil))
		if err != nil {
			l.Close()
			return nil, err
		}
		row, err := runFTPAndAccount(l, dev, "middle-box", transfer)
		cleanup()
		l.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// provisionEncryptionMB builds the MB-encryption scenario with an explicit
// cipher cost model charged to the middle-box host.
func (l *Lab) provisionEncryptionMB(vmName string, cost crypt.CostModel) (blockdev.Device, func(), error) {
	vm, err := l.Cloud.LaunchVM(vmName, "compute1")
	if err != nil {
		return nil, nil, err
	}
	_ = vm
	vol, err := l.Cloud.Volumes.Create(vmName+"-vol", volumeSize)
	if err != nil {
		return nil, nil, err
	}
	tenant := l.nextTenant()
	pol := &policy.Policy{
		Tenant: tenant,
		MiddleBoxes: []policy.MiddleBoxSpec{{
			Name: "enc", Type: policy.TypeEncryption, Host: "compute3",
			Params: map[string]string{
				"key":                aesKeyHex,
				"cipherCostNsPerKiB": fmt.Sprintf("%d", cost.PerKiB.Nanoseconds()),
			},
		}},
		Volumes: []policy.VolumeBinding{{
			VM: vmName, Volume: vol.ID, Chain: []string{"enc"},
			IngressHost: "compute2", EgressHost: "compute4",
		}},
	}
	dep, err := l.Platform.Apply(pol)
	if err != nil {
		return nil, nil, err
	}
	av := dep.Volumes[vmName+"/"+vol.ID]
	return av.Device, func() { _ = l.Platform.Teardown(tenant) }, nil
}

// mkfsOn formats a device with the default extfs geometry.
func mkfsOn(dev blockdev.Device) (*extfs.FS, error) {
	return extfs.Mkfs(dev, extfs.Options{})
}

func runFTPAndAccount(l *Lab, dev blockdev.Device, label string, transfer int64) (*CPURow, error) {
	hosts := []string{"compute1", "compute3", "storage1"}
	for _, h := range hosts {
		l.Cloud.HostCPU(h).Reset()
	}
	// Both deployments transfer at the same offered load so host CPU
	// utilizations compare directly (the paper's runs both saturate the
	// same storage bandwidth).
	const pace = 40.0 // MB/s
	up, err := workload.RunFTPUpload(workload.FTPConfig{Dev: dev, FileSize: transfer, RateMBps: pace})
	if err != nil {
		return nil, err
	}
	down, err := workload.RunFTPDownload(workload.FTPConfig{Dev: dev, FileSize: transfer, RateMBps: pace})
	if err != nil {
		return nil, err
	}
	row := &CPURow{
		Deployment:    label,
		TenantHost:    totalUtil(l, "compute1"),
		MBHost:        totalUtil(l, "compute3"),
		StorageHost:   totalUtil(l, "storage1"),
		BandwidthMBps: (up.MBps + down.MBps) / 2,
	}
	row.Total = row.TenantHost + row.MBHost + row.StorageHost
	return row, nil
}

func totalUtil(l *Lab, host string) float64 {
	acct := l.Cloud.HostCPU(host)
	var u float64
	for comp := range acct.Components() {
		u += acct.Utilization(comp)
	}
	return u
}

func testKey() []byte {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i)
	}
	return key
}

// FormatCPUTable renders Figure 10 as text.
func FormatCPUTable(rows []CPURow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %12s %12s %8s %10s\n",
		"encryption", "tenant host", "MB host", "storage", "total", "MB/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %11.1f%% %11.1f%% %11.1f%% %7.1f%% %10.1f\n",
			r.Deployment, r.TenantHost*100, r.MBHost*100, r.StorageHost*100, r.Total*100, r.BandwidthMBps)
	}
	return b.String()
}

// PostmarkComparison reproduces Figure 11: PostMark component rates with
// tenant-side versus middle-box encryption.
type PostmarkComparison struct {
	TenantSide *workload.PostmarkResult
	MiddleBox  *workload.PostmarkResult
}

// Improvement returns the middle-box-over-tenant ratio for a component
// selector.
func (p *PostmarkComparison) Improvement(f func(*workload.PostmarkResult) float64) float64 {
	t := f(p.TenantSide)
	if t == 0 {
		return 0
	}
	return f(p.MiddleBox) / t
}

// RunPostmarkComparison executes Figure 11's two configurations.
func RunPostmarkComparison() (*PostmarkComparison, error) {
	run := func(mb bool) (*workload.PostmarkResult, error) {
		l, err := NewLab()
		if err != nil {
			return nil, err
		}
		defer l.Close()
		var (
			dev     blockdev.Device
			cleanup func()
		)
		if mb {
			dev, cleanup, err = l.provisionEncryptionMB("vm-pm", mbSideCipherCost(nil))
		} else {
			var raw blockdev.Device
			raw, cleanup, err = l.provision(Legacy, "vm-pm")
			if err == nil {
				dev, err = crypt.NewDevice(raw, testKey(), tenantSideCipherCost(l.Cloud.HostCPU("compute1")))
			}
		}
		if err != nil {
			return nil, err
		}
		defer cleanup()
		// The guest's page cache sits above the virtual disk (above
		// dm-crypt in the tenant-side deployment), absorbing re-reads so
		// writes dominate the I/O path — as on the real testbed.
		dev = blockdev.NewCacheDisk(dev, 16<<20)
		fs, err := mkfsOn(dev)
		if err != nil {
			return nil, err
		}
		return workload.RunPostmark(workload.PostmarkConfig{
			FS: fs, Files: 60, Transactions: 150, Seed: 2016,
		})
	}
	tenant, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("experiments: tenant-side postmark: %w", err)
	}
	mb, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("experiments: middle-box postmark: %w", err)
	}
	return &PostmarkComparison{TenantSide: tenant, MiddleBox: mb}, nil
}

// FormatPostmarkTable renders Figure 11 as text.
func FormatPostmarkTable(p *PostmarkComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %12s %12s %8s\n", "component", "tenant-side", "middle-box", "norm")
	row := func(name string, f func(*workload.PostmarkResult) float64) {
		fmt.Fprintf(&b, "%-18s %12.1f %12.1f %8.2f\n",
			name, f(p.TenantSide), f(p.MiddleBox), p.Improvement(f))
	}
	row("read ops/s", func(r *workload.PostmarkResult) float64 { return r.ReadOpsPerSec })
	row("append ops/s", func(r *workload.PostmarkResult) float64 { return r.AppendOpsPerSec })
	row("file creation/s", func(r *workload.PostmarkResult) float64 { return r.CreateOpsPerSec })
	row("file deletion/s", func(r *workload.PostmarkResult) float64 { return r.DeleteOpsPerSec })
	row("read MB/s", func(r *workload.PostmarkResult) float64 { return r.ReadMBps })
	row("write MB/s", func(r *workload.PostmarkResult) float64 { return r.WriteMBps })
	return b.String()
}

// ReplicationRun is the Figure 13 result: the MySQL-stand-in's TPS
// timeline with three replicas (one failing mid-run) against the
// single-store baseline.
type ReplicationRun struct {
	// Timeline3R is TPS per bucket for the 3-replica run.
	Timeline3R []float64
	// FailBucket is the bucket index where the replica was failed.
	FailBucket int
	// Avg3RBefore / Avg3RAfter are mean TPS before and after the failure.
	Avg3RBefore float64
	Avg3RAfter  float64
	// Avg1R is the single-store baseline's mean TPS.
	Avg1R float64
	// Errors3R counts failed transactions in the replica run (should stay
	// near zero through the failover).
	Errors3R int64
}

// RunReplication reproduces Figure 13.
func RunReplication(duration time.Duration) (*ReplicationRun, error) {
	if duration <= 0 {
		duration = 3 * time.Second
	}
	const threads = 24 // 4 client VMs x 6 requesting threads
	bucket := duration / 12

	// Baseline: one store, no middle-box. Replication volumes live on
	// single spindles with a bounded device queue.
	const spindleQueue = 4
	l, err := NewLabQueuedDisk(spindleQueue)
	if err != nil {
		return nil, err
	}
	rawDev, cleanup, err := l.provision(Legacy, "vm-db-1r")
	if err != nil {
		l.Close()
		return nil, err
	}
	db1, err := minidb.Open(rawDev, 4096)
	if err != nil {
		cleanup()
		l.Close()
		return nil, err
	}
	base, err := workload.RunOLTP(workload.OLTPConfig{
		DB: db1, Rows: 500, Threads: threads, Duration: duration / 2, Bucket: bucket, Seed: 7,
	})
	cleanup()
	l.Close()
	if err != nil {
		return nil, err
	}

	// 3-replica run with a mid-run failure.
	l, err = NewLabQueuedDisk(spindleQueue)
	if err != nil {
		return nil, err
	}
	defer l.Close()
	vm, err := l.Cloud.LaunchVM("vm-db-3r", "compute1")
	if err != nil {
		return nil, err
	}
	_ = vm
	vol, err := l.Cloud.Volumes.Create("db-vol", volumeSize)
	if err != nil {
		return nil, err
	}
	tenant := l.nextTenant()
	pol := &policy.Policy{
		Tenant: tenant,
		MiddleBoxes: []policy.MiddleBoxSpec{{
			Name: "rep", Type: policy.TypeReplication, Host: "compute3",
			Params: map[string]string{"replicas": "3"},
		}},
		Volumes: []policy.VolumeBinding{{
			VM: "vm-db-3r", Volume: vol.ID, Chain: []string{"rep"},
			IngressHost: "compute2", EgressHost: "compute4",
		}},
	}
	dep, err := l.Platform.Apply(pol)
	if err != nil {
		return nil, err
	}
	defer func() { _ = l.Platform.Teardown(tenant) }()
	av := dep.Volumes["vm-db-3r/"+vol.ID]
	db3, err := minidb.Open(av.Device, 4096)
	if err != nil {
		return nil, err
	}

	// Fail one replica at the run's midpoint (the paper's 60th second).
	failAfter := duration / 2
	failBucket := int(failAfter / bucket)
	stop := make(chan struct{})
	go func() {
		select {
		case <-time.After(failAfter):
			dep.ReplicaVolumes["rep"][0].InjectFault(errors.New("injected: iscsi connection closed"))
		case <-stop:
		}
	}()
	res, err := workload.RunOLTP(workload.OLTPConfig{
		DB: db3, Rows: 500, Threads: threads, Duration: duration, Bucket: bucket, Seed: 7,
	})
	close(stop)
	if err != nil {
		return nil, err
	}

	out := &ReplicationRun{
		Timeline3R: res.Timeline,
		FailBucket: failBucket,
		Avg1R:      base.TPS,
		Errors3R:   res.Errors,
	}
	var beforeSum, afterSum float64
	var beforeN, afterN int
	for i, v := range res.Timeline {
		if v == 0 {
			continue
		}
		if i < failBucket {
			beforeSum += v
			beforeN++
		} else if i > failBucket {
			afterSum += v
			afterN++
		}
	}
	if beforeN > 0 {
		out.Avg3RBefore = beforeSum / float64(beforeN)
	}
	if afterN > 0 {
		out.Avg3RAfter = afterSum / float64(afterN)
	}
	return out, nil
}

// FormatReplicationRun renders Figure 13 as text.
func FormatReplicationRun(r *ReplicationRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "timeline (TPS per bucket, | marks the replica failure):\n  ")
	for i, v := range r.Timeline3R {
		if i == r.FailBucket {
			b.WriteString("| ")
		}
		fmt.Fprintf(&b, "%.0f ", v)
	}
	fmt.Fprintf(&b, "\n3-replica TPS before failure: %.0f\n", r.Avg3RBefore)
	fmt.Fprintf(&b, "3-replica TPS after failure:  %.0f\n", r.Avg3RAfter)
	fmt.Fprintf(&b, "1-replica baseline TPS:       %.0f\n", r.Avg1R)
	fmt.Fprintf(&b, "3R/1R improvement:            %.2fx (paper: ~1.8x)\n", r.Avg3RBefore/r.Avg1R)
	fmt.Fprintf(&b, "transaction errors during failover: %d\n", r.Errors3R)
	return b.String()
}

// ReconstructionEvent pairs the Table II tenant-level operations with the
// Table I reconstructed log.
type ReconstructionResult struct {
	// VMOps are the operations issued in the tenant VM (Table II).
	VMOps []string
	// Log is the reconstructed block-level access log (Table I).
	Log []semantic.Event
}
