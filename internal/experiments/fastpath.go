package experiments

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/initiator"
	"repro/internal/iscsi"
	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/target"
)

// FastPathRun is one dated execution of the fast-path suite; stormbench
// appends these to BENCH_results.json so the trajectory across PRs is kept.
type FastPathRun struct {
	When string        `json:"when"`
	Rows []FastPathRow `json:"rows"`
}

// FastPathRow is one data-plane microbenchmark result next to the recorded
// pre-optimization baseline (measured on the same harness before the pooled
// buffers, vectored PDU sends, and indexed write-back dispatch landed).
type FastPathRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Metric/MetricValue carry a benchmark-specific extra metric (e.g. the
	// drain benchmarks report ns/write across the whole queue).
	Metric      string  `json:"metric,omitempty"`
	MetricValue float64 `json:"metric_value,omitempty"`

	BaselineNs     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineBytes  int64   `json:"baseline_bytes_per_op,omitempty"`
	BaselineAllocs int64   `json:"baseline_allocs_per_op,omitempty"`
	BaselineMetric float64 `json:"baseline_metric_value,omitempty"`

	// Speedup is baseline/current on the primary axis (the extra metric
	// when present, ns/op otherwise). >1 means the fast path won.
	Speedup float64 `json:"speedup"`
}

// fastPathBaseline holds the pre-optimization numbers, keyed by row name.
type fastPathBaseline struct {
	ns     float64
	bytes  int64
	allocs int64
	metric float64
}

// Recorded before the fast-path changes (single-buffer PDU assembly,
// per-message encode allocations, O(n²) write-back dispatch scan) on the
// same 2.10 GHz Xeon harness the BENCH history uses.
var fastPathBaselines = map[string]fastPathBaseline{
	"pdu_write_64k":                {ns: 38369, bytes: 73728, allocs: 1},
	"pdu_encode_write_4k":          {ns: 633.9, bytes: 4944, allocs: 2},
	"pdu_read_64k":                 {ns: 15745, bytes: 65616, allocs: 2},
	"writeback_drain_1024":         {metric: 1904},
	"writeback_overlap_drain_1024": {metric: 2215},
	"chain_write_4k":               {ns: 26320, bytes: 33108, allocs: 42},
	"chain_read_4k":                {ns: 23279, bytes: 35949, allocs: 32},
	// Measured immediately before the wire-efficiency pass (negotiated
	// bursts, MC/S forward legs, buffered PDU reads, inline execution,
	// journal-aliased write-back) on the same harness.
	"chain_write_64k": {ns: 43000, bytes: 1336, allocs: 21},
}

// FastPath runs the data-plane microbenchmarks in-process and returns each
// next to its recorded baseline: PDU codec (serialize, encode, decode),
// write-back drain at queue depth 1024 (disjoint and fully overlapping
// extents), and the full VM → active relay → target chain for 4 KiB I/O.
func FastPath() []FastPathRow {
	rows := []FastPathRow{
		fastPathRow("pdu_write_64k", "", benchPDUWrite64K),
		fastPathRow("pdu_encode_write_4k", "", benchPDUEncodeWrite4K),
		fastPathRow("pdu_read_64k", "", benchPDURead64K),
		fastPathRow("writeback_drain_1024", "ns/write", func(b *testing.B) { benchDrain(b, 1024, false) }),
		fastPathRow("writeback_overlap_drain_1024", "ns/write", func(b *testing.B) { benchDrain(b, 1024, true) }),
		fastPathRow("chain_write_4k", "", benchChainWrite4K),
		fastPathRow("chain_read_4k", "", benchChainRead4K),
		fastPathRow("chain_write_64k", "", benchChainWrite64K),
	}
	return rows
}

// fastPathRow runs one benchmark body under testing.Benchmark and pairs the
// result with its baseline.
func fastPathRow(name, metric string, fn func(b *testing.B)) FastPathRow {
	res := testing.Benchmark(fn)
	row := FastPathRow{
		Name:        name,
		NsPerOp:     float64(res.NsPerOp()),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		Metric:      metric,
	}
	if metric != "" {
		row.MetricValue = res.Extra[metric]
	}
	base, ok := fastPathBaselines[name]
	if !ok {
		return row
	}
	row.BaselineNs = base.ns
	row.BaselineBytes = base.bytes
	row.BaselineAllocs = base.allocs
	row.BaselineMetric = base.metric
	switch {
	case metric != "" && row.MetricValue > 0:
		row.Speedup = base.metric / row.MetricValue
	case row.NsPerOp > 0:
		row.Speedup = base.ns / row.NsPerOp
	}
	return row
}

// FormatFastPath renders the comparison table.
func FormatFastPath(rows []FastPathRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-30s %12s %12s %10s %10s %8s\n",
		"benchmark", "before", "after", "B/op", "allocs/op", "speedup")
	for _, r := range rows {
		before, after := r.BaselineNs, r.NsPerOp
		unit := "ns/op"
		if r.Metric != "" {
			before, after = r.BaselineMetric, r.MetricValue
			unit = r.Metric
		}
		fmt.Fprintf(&sb, "%-30s %10.0f %s %10.0f %s %10d %10d %7.1fx\n",
			r.Name, before, unit, after, unit, r.BytesPerOp, r.AllocsPerOp, r.Speedup)
	}
	return sb.String()
}

// --- benchmark bodies (mirrors of the package-level Benchmark* tests) ---

func benchPDUWrite64K(b *testing.B) {
	din := &iscsi.DataIn{Final: true, Data: make([]byte, 64*1024)}
	p := din.Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPDUEncodeWrite4K(b *testing.B) {
	data := make([]byte, 4096)
	var wire iscsi.PDU
	cmd := &iscsi.SCSICommand{
		Final: true, Write: true,
		ExpectedDataTransferLength: 4096,
		Data:                       data,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmd.ITT = uint32(i)
		if cmd.EncodeInto(&wire) == nil {
			b.Fatal("nil PDU")
		}
	}
}

func benchPDURead64K(b *testing.B) {
	din := &iscsi.DataIn{Final: true, ITT: 7, Data: make([]byte, 64*1024)}
	wire := din.Encode().Bytes()
	r := bytes.NewReader(wire)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(wire)
		p, err := iscsi.ReadPDU(r)
		if err != nil {
			b.Fatal(err)
		}
		p.Release()
	}
}

// fastPathGate blocks WriteAt until the gate closes, building a
// deterministic pending-queue depth before the drain starts.
type fastPathGate struct {
	blockdev.Device
	gate chan struct{}
}

func (g *fastPathGate) WriteAt(p []byte, lba uint64) error {
	<-g.gate
	return g.Device.WriteAt(p, lba)
}

func benchDrain(b *testing.B, depth int, overlap bool) {
	b.ReportAllocs()
	buf := make([]byte, 512)
	var total time.Duration
	for iter := 0; iter < b.N; iter++ {
		b.StopTimer()
		disk, err := blockdev.NewMemDisk(512, uint64(depth)+16)
		if err != nil {
			b.Fatal(err)
		}
		gate := make(chan struct{})
		wb := middlebox.NewWriteBack(&fastPathGate{Device: disk, gate: gate}, middlebox.NewJournal(0))
		b.StartTimer()
		start := time.Now()
		for i := 0; i < depth; i++ {
			lba := uint64(0)
			if !overlap {
				lba = uint64(i)
			}
			if err := wb.WriteAt(buf, lba); err != nil {
				b.Fatal(err)
			}
		}
		close(gate)
		if err := wb.Flush(); err != nil {
			b.Fatal(err)
		}
		total += time.Since(start)
		b.StopTimer()
		_ = wb.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(total.Nanoseconds())/float64(b.N*depth), "ns/write")
}

// fastPathChain assembles VM — active relay — target over net.Pipe links
// (zero modelled interception cost, so the benchmark isolates code-path
// cost, not the calibrated simulation charges).
func fastPathChain(b testing.TB) *initiator.Session {
	disk, err := blockdev.NewMemDisk(512, 2048)
	if err != nil {
		b.Fatal(err)
	}
	// The backend serves a memory disk, so quiet connections may execute
	// commands inline in the read loop (the production stormd backend keeps
	// per-command goroutines; its disks model seek latency).
	tsrv := target.NewServer(target.WithInlineExec())
	const iqn = "iqn.2016-04.edu.purdue.storm:fastpath"
	if err := tsrv.AddTarget(iqn, disk); err != nil {
		b.Fatal(err)
	}
	relay, err := middlebox.NewRelay(middlebox.Config{
		Name: "mb1",
		Mode: middlebox.Active,
		Dial: func(netsim.Addr) (net.Conn, error) {
			c, s := net.Pipe()
			go tsrv.Serve(newPipeListener(s))
			return c, nil
		},
		NextHop: netsim.Addr{Net: netsim.StorageNet, IP: "10.0.0.100", Port: 3260},
		Cost:    middlebox.CostModel{MTU: 8192, BatchSize: 65536},
	})
	if err != nil {
		b.Fatal(err)
	}
	front, back := net.Pipe()
	go relay.Serve(newPipeListener(back))
	b.Cleanup(func() {
		relay.Close()
		tsrv.Close()
	})
	sess, err := initiator.Login(front, initiator.Config{
		InitiatorIQN: "iqn.vm1", TargetIQN: iqn,
	})
	if err != nil {
		b.Fatalf("login through relay: %v", err)
	}
	b.Cleanup(func() { _ = sess.Close() })
	return sess
}

func benchChainWrite4K(b *testing.B) {
	sess := fastPathChain(b)
	buf := make([]byte, 4096)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := sess.Write(uint64((i%64)*8), buf, 512); err != nil {
			b.Fatal(err)
		}
	}
}

func benchChainWrite64K(b *testing.B) {
	sess := fastPathChain(b)
	buf := make([]byte, 64*1024)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := sess.Write(uint64((i%8)*128), buf, 512); err != nil {
			b.Fatal(err)
		}
	}
}

func benchChainRead4K(b *testing.B) {
	sess := fastPathChain(b)
	buf := make([]byte, 4096)
	if err := sess.Write(0, buf, 512); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sess.ReadInto(buf, 0, 8, 512); err != nil {
			b.Fatal(err)
		}
	}
}

// pipeListener yields a single pre-established connection, then blocks until
// closed — the minimal net.Listener for net.Pipe-backed servers.
type pipeListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func newPipeListener(c net.Conn) *pipeListener {
	l := &pipeListener{ch: make(chan net.Conn, 1), done: make(chan struct{})}
	l.ch <- c
	return l
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *pipeListener) Addr() net.Addr {
	return &net.UnixAddr{Name: "fastpath", Net: "pipe"}
}
