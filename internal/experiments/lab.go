// Package experiments reproduces the paper's evaluation (Section V): it
// assembles the testbed topology, runs each figure's workload sweep, and
// reports the same normalized series the paper plots. The root-level
// benchmarks and cmd/stormbench both drive this package.
//
// Constants here are the scaled-down calibration of the 10-machine 1 GbE
// testbed; see EXPERIMENTS.md for the calibration notes and measured-vs-
// paper tables.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/blockdev"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/policy"
)

// aesKeyHex is the tenant's AES-256 key used by encryption scenarios.
const aesKeyHex = "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"

// LabModel returns the calibrated fabric cost model.
func LabModel() netsim.Model {
	return netsim.Model{
		MTU:       8 * 1024,
		Bandwidth: 400 << 20, // 1 GbE-class serialization at the time scale
		Latency: map[netsim.HopKind]time.Duration{
			netsim.HopVirtio:  2500 * time.Nanosecond,
			netsim.HopWire:    3750 * time.Nanosecond,
			netsim.HopSwitch:  1250 * time.Nanosecond,
			netsim.HopForward: 2500 * time.Nanosecond,
			netsim.HopBridge:  1500 * time.Nanosecond,
		},
		PerPacket: map[netsim.HopKind]time.Duration{
			netsim.HopVirtio:  4 * time.Microsecond,
			netsim.HopWire:    750 * time.Nanosecond,
			netsim.HopSwitch:  750 * time.Nanosecond,
			netsim.HopForward: 2500 * time.Nanosecond,
			netsim.HopBridge:  1 * time.Microsecond,
		},
	}
}

// LabDiskReadModel: reads miss the target's cache — a fixed seek/queue
// cost plus 1 ns/B of streaming time (256 KiB adds ~262 µs).
func LabDiskReadModel() blockdev.ServiceModel {
	return blockdev.ServiceModel{
		PerRequest: 1750 * time.Microsecond,
		PerByte:    3 * time.Nanosecond,
	}
}

// LabDiskWriteModel: writes land in the target's write cache — fast
// acknowledgement plus a small streaming cost.
func LabDiskWriteModel() blockdev.ServiceModel {
	return blockdev.ServiceModel{
		PerRequest: 150 * time.Microsecond,
	}
}

// Lab is one assembled testbed.
type Lab struct {
	Cloud    *cloud.Cloud
	Platform *core.Platform
	tenantN  int
}

// NewLab assembles the Figure 1 topology: four compute hosts, one storage
// host, calibrated cost models.
func NewLab() (*Lab, error) {
	return NewLabWithDisk(LabDiskReadModel(), LabDiskWriteModel())
}

// NewLabWithDisk assembles the topology with explicit medium models.
func NewLabWithDisk(read, write blockdev.ServiceModel) (*Lab, error) {
	return newLab(read, write, LabDiskConcurrency)
}

// NewLabQueuedDisk assembles the topology with the default medium models
// and a bounded per-volume device queue — the single-spindle regime of the
// replication case study, where read striping across replicas pays off.
func NewLabQueuedDisk(concurrency int) (*Lab, error) {
	return newLab(LabDiskReadModel(), LabDiskWriteModel(), concurrency)
}

func newLab(read, write blockdev.ServiceModel, concurrency int) (*Lab, error) {
	c, err := cloud.New(cloud.Config{
		ComputeHosts:    4,
		Model:           LabModel(),
		DiskRead:        read,
		DiskWrite:       write,
		DiskConcurrency: concurrency,
	})
	if err != nil {
		return nil, err
	}
	return &Lab{Cloud: c, Platform: core.New(c)}, nil
}

// LabDiskConcurrency bounds each volume's concurrent medium accesses; at
// high thread counts the device queue saturates and latency grows, as on
// the loaded testbed.
const LabDiskConcurrency = 0 // unlimited: the array absorbs the queue

// Close tears the lab down.
func (l *Lab) Close() { l.Cloud.Close() }

// nextTenant hands out unique tenant names within a lab.
func (l *Lab) nextTenant() string {
	l.tenantN++
	return fmt.Sprintf("tenant%02d", l.tenantN)
}

// Scenario names the evaluated configurations.
type Scenario string

// Evaluated configurations (Section V-A).
const (
	// Legacy is the direct VM-to-target baseline without StorM.
	Legacy Scenario = "LEGACY"
	// MBFwd routes through a middle-box that only forwards (no relay).
	MBFwd Scenario = "MB-FWD"
	// MBPassive intercepts with the passive relay running the stream
	// cipher service.
	MBPassive Scenario = "MB-PASSIVE-RELAY"
	// MBActive intercepts with the active relay running the stream cipher
	// service.
	MBActive Scenario = "MB-ACTIVE-RELAY"
)

// volumeSize for the micro-benchmarks (thin-provisioned).
const volumeSize = 64 << 20

// provision builds one scenario and returns the VM-side device. The
// worst-case placement of Section V-A is used: tenant VM, ingress gateway,
// middle-box, and egress gateway all on different physical hosts.
func (l *Lab) provision(s Scenario, vmName string) (blockdev.Device, func(), error) {
	vm, err := l.Cloud.LaunchVM(vmName, "compute1")
	if err != nil {
		return nil, nil, err
	}
	vol, err := l.Cloud.Volumes.Create(vmName+"-vol", volumeSize)
	if err != nil {
		return nil, nil, err
	}
	if s == Legacy {
		dev, err := l.Cloud.AttachVolume(vm, vol.ID)
		if err != nil {
			return nil, nil, err
		}
		return dev, func() { _ = dev.Close() }, nil
	}

	tenant := l.nextTenant()
	var mb policy.MiddleBoxSpec
	switch s {
	case MBFwd:
		mb = policy.MiddleBoxSpec{Name: "mb1", Type: policy.TypeForward, Host: "compute3"}
	case MBPassive:
		mb = policy.MiddleBoxSpec{
			Name: "mb1", Type: policy.TypeEncryption, Host: "compute3",
			Mode: policy.ModePassive, Params: map[string]string{"key": aesKeyHex},
		}
	case MBActive:
		mb = policy.MiddleBoxSpec{
			Name: "mb1", Type: policy.TypeEncryption, Host: "compute3",
			Mode: policy.ModeActive, Params: map[string]string{"key": aesKeyHex},
		}
	default:
		return nil, nil, fmt.Errorf("experiments: unknown scenario %q", s)
	}
	pol := &policy.Policy{
		Tenant:      tenant,
		MiddleBoxes: []policy.MiddleBoxSpec{mb},
		Volumes: []policy.VolumeBinding{{
			VM: vmName, Volume: vol.ID, Chain: []string{"mb1"},
			IngressHost: "compute2", EgressHost: "compute4",
		}},
	}
	dep, err := l.Platform.Apply(pol)
	if err != nil {
		return nil, nil, err
	}
	av := dep.Volumes[vmName+"/"+vol.ID]
	return av.Device, func() { _ = l.Platform.Teardown(tenant) }, nil
}
