package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/extfs"
	"repro/internal/policy"
	"repro/internal/semantic"
	"repro/internal/services/monitor"
)

// monitoredVolume builds the Section V-B1 setup: an extfs volume with
// folders name0..name9 each holding 1.img..10.img, attached through a
// monitoring middle-box. It returns the tenant-side file system and the
// monitor handle.
func monitoredVolume(l *Lab, vmName string, watch string) (*extfs.FS, *monitor.Monitor, func(), error) {
	vm, err := l.Cloud.LaunchVM(vmName, "compute1")
	if err != nil {
		return nil, nil, nil, err
	}
	vol, err := l.Cloud.Volumes.Create(vmName+"-vol", 128<<20)
	if err != nil {
		return nil, nil, nil, err
	}
	// The tenant formats and populates the volume over the legacy path.
	dev, err := l.Cloud.AttachVolume(vm, vol.ID)
	if err != nil {
		return nil, nil, nil, err
	}
	fs, err := extfs.Mkfs(dev, extfs.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	if err := fs.MkdirAll("/mnt/box"); err != nil {
		return nil, nil, nil, err
	}
	for d := 0; d < 10; d++ {
		dir := fmt.Sprintf("/mnt/box/name%d", d)
		if err := fs.Mkdir(dir); err != nil {
			return nil, nil, nil, err
		}
		for f := 1; f <= 10; f++ {
			if err := fs.WriteFile(fmt.Sprintf("%s/%d.img", dir, f),
				bytes.Repeat([]byte{byte(f)}, 4096)); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	_ = dev.Close()
	if err := l.Cloud.DetachVolume(vol.ID); err != nil {
		return nil, nil, nil, err
	}

	// Deploy the monitoring middle-box and re-attach through it; the
	// platform dumps the initial system view at this point.
	tenant := l.nextTenant()
	pol := &policy.Policy{
		Tenant: tenant,
		MiddleBoxes: []policy.MiddleBoxSpec{{
			Name: "mon", Type: policy.TypeMonitor, Host: "compute3",
			Params: map[string]string{"watch": watch},
		}},
		Volumes: []policy.VolumeBinding{{
			VM: vmName, Volume: vol.ID, Chain: []string{"mon"},
			IngressHost: "compute2", EgressHost: "compute4",
		}},
	}
	dep, err := l.Platform.Apply(pol)
	if err != nil {
		return nil, nil, nil, err
	}
	av := dep.Volumes[vmName+"/"+vol.ID]
	fs2, err := extfs.Mount(av.Device)
	if err != nil {
		return nil, nil, nil, err
	}
	cleanup := func() { _ = l.Platform.Teardown(tenant) }
	return fs2, dep.Monitors["mon"], cleanup, nil
}

// TableI reproduces the synthetic attack scenario of Tables I and II: the
// Table II file operations are issued in the tenant VM and the monitoring
// middle-box reconstructs the Table I access log.
func TableI() (*ReconstructionResult, error) {
	l, err := NewLab()
	if err != nil {
		return nil, err
	}
	defer l.Close()
	fs, mon, cleanup, err := monitoredVolume(l, "vm-mon", "/mnt/box")
	if err != nil {
		return nil, err
	}
	defer cleanup()

	// Table II: 1* write /mnt/box/name1/1.img, 2** read /mnt/box/name9/7.img.
	if err := fs.WriteAt("/mnt/box/name1/1.img", bytes.Repeat([]byte{0x11}, 4096), 0); err != nil {
		return nil, err
	}
	if _, err := fs.ReadFile("/mnt/box/name9/7.img"); err != nil {
		return nil, err
	}
	return &ReconstructionResult{
		VMOps: []string{
			"1*  write /mnt/box/name1/1.img 4096",
			"2** read  /mnt/box/name9/7.img 4096",
		},
		Log: mon.Log(),
	}, nil
}

// MalwareStep is one recorded action of the Table III backdoor replay.
type MalwareStep struct {
	Step   int
	Action string
}

// TableIII replays the HEUR:Backdoor.Linux.Ganiw.a installation footprint
// (Table III) inside the monitored tenant VM and returns the monitor's
// reconstructed log. The monitor carries the malware's signature (the
// paper: "the revealed file access patterns of malware can then be used by
// the middle-box for future detection"), which fires during the replay.
func TableIII() ([]MalwareStep, []semantic.Event, error) {
	l, err := NewLab()
	if err != nil {
		return nil, nil, err
	}
	defer l.Close()
	fs, mon, cleanup, err := monitoredVolume(l, "vm-mal", "/")
	if err != nil {
		return nil, nil, err
	}
	defer cleanup()
	mon.AddSignature(monitor.GaniwSignature())

	// System tree the malware touches.
	for _, dir := range []string{"/etc/init.d", "/bin", "/usr/bin/bsd-port", "/usr/share/GeoIP",
		"/usr/lib/python3.4/xml/sax", "/etc/rc1.d", "/etc/rc2.d", "/etc/rc3.d", "/etc/rc4.d", "/etc/rc5.d"} {
		if err := fs.MkdirAll(dir); err != nil {
			return nil, nil, err
		}
	}
	for _, f := range []string{"/bin/netstat", "/bin/ps", "/bin/ss", "/usr/bin/lsof"} {
		if err := fs.WriteFile(f, bytes.Repeat([]byte{0x7F, 'E', 'L', 'F'}, 1024)); err != nil {
			return nil, nil, err
		}
	}
	if err := fs.WriteFile("/usr/share/GeoIP/GeoIPv6.dat", bytes.Repeat([]byte{9}, 32768)); err != nil {
		return nil, nil, err
	}
	if err := fs.WriteFile("/usr/lib/python3.4/xml/sax/expatreader.py", bytes.Repeat([]byte{'#'}, 8192)); err != nil {
		return nil, nil, err
	}

	payload := bytes.Repeat([]byte{0xEB, 0xFE}, 4096) // the dropped binary

	var steps []MalwareStep
	record := func(step int, action string) {
		steps = append(steps, MalwareStep{Step: step, Action: action})
	}

	// Step 1: persistence script in /etc/init.d.
	if err := fs.WriteFile("/etc/init.d/DbSecuritySpt", []byte("#!/bin/bash\n/tmp/malware\n")); err != nil {
		return nil, nil, err
	}
	record(1, `cp "#!/bin/bash\n<path_to_malware>" /etc/init.d/DbSecuritySpt`)

	// Step 2: link the start script into run levels 1-5.
	for lvl := 1; lvl <= 5; lvl++ {
		if err := fs.Symlink("/etc/init.d/DbSecuritySpt",
			fmt.Sprintf("/etc/rc%d.d/S97DbSecuritySpt", lvl)); err != nil {
			return nil, nil, err
		}
	}
	record(2, "ln -s /etc/init.d/DbSecuritySpt /etc/rc[1-5].d/S97DbSecuritySpt")

	// Step 3: drop the getty backdoor.
	if err := fs.WriteFile("/usr/bin/bsd-port/getty", payload); err != nil {
		return nil, nil, err
	}
	record(3, "cp <path_to_malware> /usr/bin/bsd-port/getty")

	// Step 4: fake selinux launcher.
	if err := fs.WriteFile("/etc/init.d/selinux", []byte("#!/bin/bash\n/usr/bin/bsd-port/getty\n")); err != nil {
		return nil, nil, err
	}
	record(4, `cp "#!/bin/bash\n/usr/bin/bsd-port/getty" /etc/init.d/selinux`)

	// Step 5: link the fake selinux into run levels.
	for lvl := 1; lvl <= 5; lvl++ {
		if err := fs.Symlink("/etc/init.d/selinux",
			fmt.Sprintf("/etc/rc%d.d/S99selinux", lvl)); err != nil {
			return nil, nil, err
		}
	}
	record(5, "ln -s /etc/init.d/selinux /etc/rc[1-5].d/S99selinux")

	// Step 6: replace system tools with trojaned versions.
	for _, f := range []string{"/bin/netstat", "/usr/bin/lsof", "/bin/ps", "/bin/ss"} {
		if err := fs.WriteFile(f, payload); err != nil {
			return nil, nil, err
		}
	}
	record(6, "cp <path_to_malware> /bin/netstat /usr/bin/lsof /bin/ps /bin/ss")

	// The malware also reads the GeoIP database and the Python SAX driver.
	if _, err := fs.ReadFile("/usr/share/GeoIP/GeoIPv6.dat"); err != nil {
		return nil, nil, err
	}
	if _, err := fs.ReadFile("/usr/lib/python3.4/xml/sax/expatreader.py"); err != nil {
		return nil, nil, err
	}
	record(7, "read /usr/share/GeoIP/GeoIPv6.dat, /usr/lib/python3.4/xml/sax/expatreader.py")

	for _, match := range mon.SignatureMatches() {
		record(8, fmt.Sprintf("DETECTED by signature: %s", match.Signature))
	}
	return steps, mon.Log(), nil
}

// FormatReconstruction renders Table I/II style output.
func FormatReconstruction(r *ReconstructionResult, maxRows int) string {
	var b strings.Builder
	b.WriteString("File operations in the tenant VM (Table II):\n")
	for _, op := range r.VMOps {
		fmt.Fprintf(&b, "  %s\n", op)
	}
	fmt.Fprintf(&b, "Reconstructed block-level access log (Table I, %d entries):\n", len(r.Log))
	for i, e := range r.Log {
		if maxRows > 0 && i >= maxRows {
			fmt.Fprintf(&b, "  ... (%d more)\n", len(r.Log)-i)
			break
		}
		fmt.Fprintf(&b, "  %s\n", e.String())
	}
	return b.String()
}

// FormatMalware renders Table III style output.
func FormatMalware(steps []MalwareStep, log []semantic.Event) string {
	var b strings.Builder
	b.WriteString("Malware actions (Table III):\n")
	for _, s := range steps {
		fmt.Fprintf(&b, "  Step %d  %s\n", s.Step, s.Action)
	}
	fmt.Fprintf(&b, "Monitor observations (%d events); file-level operations:\n", len(log))
	for _, e := range log {
		if e.Type == semantic.EvCreate || e.Type == semantic.EvDelete || e.Type == semantic.EvRename {
			fmt.Fprintf(&b, "  %s\n", e.String())
		}
	}
	return b.String()
}
