// Crash suite: the durability counterpart of the chaos scenarios. It
// prices the crash-durable journal (what fsync coupling does to the active
// relay's early-ack latency, across group-commit windows) and then proves
// the payoff: a relay killed mid-workload at seed-chosen points is replaced,
// its WAL reopened and replayed, and the volume ends byte-identical to a
// crash-free run — the property an in-memory journal cannot offer.
package experiments

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/blockdev"
	"repro/internal/faults"
	"repro/internal/initiator"
	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/target"
)

// DurabilityRow prices one journal configuration: the client-visible cost
// of acknowledged writes when the ack is coupled to an fsync policy.
type DurabilityRow struct {
	// Journal names the configuration: "memory" (no WAL — crash loses the
	// journal) or "wal-<window>" (durable, group-commit window).
	Journal string `json:"journal"`
	Writes  int    `json:"writes"`
	// AvgAckUs / P99AckUs are the per-write acknowledgement latencies.
	AvgAckUs float64 `json:"avg_ack_us"`
	P99AckUs float64 `json:"p99_ack_us"`
	// Fsyncs counts WAL fsync calls during the run: the group-commit
	// window's lever (0 for the in-memory journal).
	Fsyncs int64 `json:"fsyncs"`
}

// CrashRun is one dated crash-suite execution for the results history.
type CrashRun struct {
	When       string          `json:"when"`
	Durability []DurabilityRow `json:"durability"`
	// Replay holds the kill/replay verdicts, one per crash seed; any
	// DataLoss=true fails the run.
	Replay []ChaosResult `json:"replay"`
}

// crashLab is one VM→active-relay→target universe over netsim for the
// crash suite. The backend write delay builds journal backlog so a kill
// finds acknowledged-but-unapplied writes (non-vacuous replay).
type crashLab struct {
	fab    *netsim.Fabric
	vmHost *netsim.Host
	mbHost *netsim.Host
	tsrv   *target.Server
	iqn    string
	sn     int
}

// delayDisk postpones every backend write; see crashLab.
type delayDisk struct {
	blockdev.Device
	delay time.Duration
}

func (d *delayDisk) WriteAt(p []byte, lba uint64) error {
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	return d.Device.WriteAt(p, lba)
}

func newCrashLab(backendDelay time.Duration) (*crashLab, error) {
	model := netsim.Model{MTU: 8 * 1024, Bandwidth: 1 << 32,
		Latency: map[netsim.HopKind]time.Duration{}, PerPacket: map[netsim.HopKind]time.Duration{}}
	fab := netsim.NewFabric(model)
	vmHost, err := fab.AddHost("compute1", map[netsim.Network]string{netsim.StorageNet: "10.0.0.1"})
	if err != nil {
		return nil, err
	}
	mbHost, err := fab.AddHost("mb1", map[netsim.Network]string{netsim.StorageNet: "10.0.0.50"})
	if err != nil {
		return nil, err
	}
	storHost, err := fab.AddHost("storage1", map[netsim.Network]string{netsim.StorageNet: "10.0.0.100"})
	if err != nil {
		return nil, err
	}
	disk, err := blockdev.NewMemDisk(512, 1024)
	if err != nil {
		return nil, err
	}
	tsrv := target.NewServer()
	const iqn = "iqn.2016-04.edu.purdue.storm:crashbench"
	if err := tsrv.AddTarget(iqn, &delayDisk{Device: disk, delay: backendDelay}); err != nil {
		return nil, err
	}
	storLn, err := storHost.NewEndpoint("tgt").Listen(netsim.StorageNet, 3260)
	if err != nil {
		return nil, err
	}
	go tsrv.Serve(storLn)
	return &crashLab{fab: fab, vmHost: vmHost, mbHost: mbHost, tsrv: tsrv, iqn: iqn}, nil
}

func (l *crashLab) Close() { l.tsrv.Close() }

// startRelay launches an active relay on a fresh port; dir == "" selects
// the in-memory journal.
func (l *crashLab) startRelay(dir string, window time.Duration) (*middlebox.Relay, string, error) {
	l.sn++
	name := fmt.Sprintf("mb1-%d", l.sn)
	relay, err := middlebox.NewRelay(middlebox.Config{
		Name:              name,
		Mode:              middlebox.Active,
		Endpoint:          l.mbHost.NewEndpoint("relay-" + name),
		NextHop:           netsim.Addr{Net: netsim.StorageNet, IP: "10.0.0.100", Port: 3260},
		Cost:              middlebox.CostModel{MTU: 8192, BatchSize: 65536},
		JournalDir:        dir,
		JournalSyncWindow: window,
		// Two forward connections so every crash scenario also proves MC/S
		// journal replay stays byte-identical.
		ForwardConns: 2,
		Recovery:     middlebox.RecoveryConfig{BackoffBase: time.Millisecond, BackoffCap: 4 * time.Millisecond},
	})
	if err != nil {
		return nil, "", err
	}
	port := 3260 + l.sn
	ln, err := l.mbHost.NewEndpoint("front-"+name).Listen(netsim.StorageNet, port)
	if err != nil {
		relay.Close()
		return nil, "", err
	}
	go relay.Serve(ln)
	return relay, fmt.Sprintf("10.0.0.50:%d", port), nil
}

func (l *crashLab) login(addr, ep string) (*initiator.Session, error) {
	conn, err := l.vmHost.NewEndpoint(ep).Dial(netsim.StorageNet, addr)
	if err != nil {
		return nil, err
	}
	return initiator.Login(conn, initiator.Config{
		InitiatorIQN: "iqn.vm-crashbench", TargetIQN: l.iqn,
	})
}

// crashBenchPattern is write i's 512-byte payload, distinct per write.
func crashBenchPattern(i int) []byte {
	p := make([]byte, 512)
	for k := range p {
		p[k] = byte(i*31 + k*7 + 11)
	}
	return p
}

const (
	crashBenchWrites = 48
	crashBenchLBAs   = 32
)

// durabilityCost measures acked-write latency under one journal config.
func durabilityCost(name, dir string, window time.Duration, writes int) (DurabilityRow, error) {
	row := DurabilityRow{Journal: name, Writes: writes}
	lab, err := newCrashLab(0)
	if err != nil {
		return row, err
	}
	defer lab.Close()
	relay, addr, err := lab.startRelay(dir, window)
	if err != nil {
		return row, err
	}
	defer relay.Close()
	sess, err := lab.login(addr, "vm")
	if err != nil {
		return row, err
	}
	fsyncs := obs.Default().Counter("wal.fsyncs")
	startFsyncs := fsyncs.Value()
	// Concurrent writers share the session's command window, so a non-zero
	// group-commit window can batch their appends into one fsync — the
	// tradeoff the sweep prices (single-stream writes never batch).
	const writers = 4
	perWriter := writes / writers
	lats := make([]time.Duration, writers*perWriter)
	payload := crashBenchPattern(0)
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < perWriter; i++ {
				lba := uint64((w*perWriter + i) % crashBenchLBAs)
				t0 := time.Now()
				if err := sess.Write(lba, payload, 512); err != nil {
					errs <- fmt.Errorf("%s writer %d write %d: %w", name, w, i, err)
					return
				}
				lats[w*perWriter+i] = time.Since(t0)
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errs; err != nil {
			return row, err
		}
	}
	row.Writes = writers * perWriter
	if err := sess.Flush(); err != nil {
		return row, err
	}
	if err := sess.Logout(); err != nil {
		return row, err
	}
	row.Fsyncs = fsyncs.Value() - startFsyncs
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var total time.Duration
	for _, d := range lats {
		total += d
	}
	row.AvgAckUs = float64(total.Microseconds()) / float64(len(lats))
	row.P99AckUs = float64(lats[len(lats)*99/100].Microseconds())
	return row, nil
}

// crashBenchHash reads back every LBA the workload touched.
func crashBenchHash(sess *initiator.Session) ([32]byte, error) {
	var sum [32]byte
	h := sha256.New()
	for lba := 0; lba < crashBenchLBAs; lba++ {
		b, err := sess.Read(uint64(lba), 1, 512)
		if err != nil {
			return sum, fmt.Errorf("read-back lba %d: %w", lba, err)
		}
		h.Write(b)
	}
	copy(sum[:], h.Sum(nil))
	return sum, nil
}

// crashBaselineHash runs the workload crash-free and returns the content hash.
func crashBaselineHash(stateRoot string) ([32]byte, error) {
	var sum [32]byte
	lab, err := newCrashLab(200 * time.Microsecond)
	if err != nil {
		return sum, err
	}
	defer lab.Close()
	relay, addr, err := lab.startRelay(filepath.Join(stateRoot, "baseline"), 0)
	if err != nil {
		return sum, err
	}
	defer relay.Close()
	sess, err := lab.login(addr, "vm")
	if err != nil {
		return sum, err
	}
	for i := 0; i < crashBenchWrites; i++ {
		if err := sess.Write(uint64(i%crashBenchLBAs), crashBenchPattern(i), 512); err != nil {
			return sum, fmt.Errorf("baseline write %d: %w", i, err)
		}
	}
	if err := sess.Flush(); err != nil {
		return sum, err
	}
	sum, err = crashBenchHash(sess)
	if err != nil {
		return sum, err
	}
	return sum, sess.Logout()
}

// crashReplayScenario kills the relay at the seed-chosen tick, recovers
// onto a replacement (WAL reopen + in-order replay), finishes the workload
// there, and verdicts the surviving content against the crash-free hash.
func crashReplayScenario(stateRoot string, seed int64, want [32]byte) (ChaosResult, error) {
	tick := faults.CrashPoint(seed, 2, crashBenchWrites-2)
	res := ChaosResult{
		Scenario: fmt.Sprintf("kill-replay-seed%d-tick%d", seed, tick),
		Writes:   crashBenchWrites,
		Faults:   1,
	}
	lab, err := newCrashLab(200 * time.Microsecond)
	if err != nil {
		return res, err
	}
	defer lab.Close()
	dir1 := filepath.Join(stateRoot, fmt.Sprintf("seed%d-gen1", seed))
	relay1, addr1, err := lab.startRelay(dir1, 0)
	if err != nil {
		return res, err
	}
	defer relay1.Close()

	sched := faults.NewSchedule()
	faults.Crash(sched, seed, 2, crashBenchWrites-2, relay1.Kill)

	sess, err := lab.login(addr1, "vm")
	if err != nil {
		return res, err
	}
	replayed, crashed := 0, false
	for i := 0; i < crashBenchWrites; i++ {
		err := sess.Write(uint64(i%crashBenchLBAs), crashBenchPattern(i), 512)
		if err != nil {
			if crashed || !relay1.Killed() {
				return res, fmt.Errorf("write %d failed unexpectedly: %w", i, err)
			}
			crashed = true
			_ = sess.Close()
			relay2, addr2, rerr := lab.startRelay(filepath.Join(stateRoot, fmt.Sprintf("seed%d-gen2", seed)), 0)
			if rerr != nil {
				return res, rerr
			}
			defer relay2.Close()
			n, rerr := relay2.RecoverFrom(dir1)
			if rerr != nil {
				return res, fmt.Errorf("replay after crash at tick %d: %w", tick, rerr)
			}
			replayed = n
			if sess, rerr = lab.login(addr2, "vm2"); rerr != nil {
				return res, rerr
			}
			i-- // retry the failed, never-acknowledged write
			continue
		}
		sched.Step()
	}
	res.Replayed = replayed
	if !crashed {
		res.DataLoss = true
		res.Detail = "workload finished without observing the crash (vacuous run)"
		return res, nil
	}
	if err := sess.Flush(); err != nil {
		return res, err
	}
	got, err := crashBenchHash(sess)
	if err != nil {
		return res, err
	}
	if err := sess.Logout(); err != nil {
		return res, err
	}
	switch {
	case got != want:
		res.DataLoss = true
		res.Detail = "content hash diverged from crash-free run (acknowledged write lost or misordered)"
	default:
		if entries, err := os.ReadDir(dir1); err == nil && len(entries) != 0 {
			res.DataLoss = true
			res.Detail = fmt.Sprintf("journal dir still holds %d entries after replay", len(entries))
			return res, nil
		}
		res.Detail = fmt.Sprintf("killed at tick %d; %d journal record(s) replayed; content identical to crash-free run", tick, replayed)
	}
	return res, nil
}

// RunCrashSuite executes the durability-cost sweep and the kill/replay
// scenarios. Callers treat any Replay entry with DataLoss=true as a failed
// run.
func RunCrashSuite() (*CrashRun, error) {
	stateRoot, err := os.MkdirTemp("", "storm-crash-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(stateRoot)

	run := &CrashRun{}
	const costWrites = 200
	configs := []struct {
		name   string
		dir    string
		window time.Duration
	}{
		{"memory", "", 0},
		{"wal-0", filepath.Join(stateRoot, "cost-w0"), 0},
		{"wal-1ms", filepath.Join(stateRoot, "cost-w1"), time.Millisecond},
		{"wal-5ms", filepath.Join(stateRoot, "cost-w5"), 5 * time.Millisecond},
	}
	for _, c := range configs {
		row, err := durabilityCost(c.name, c.dir, c.window, costWrites)
		if err != nil {
			return nil, fmt.Errorf("durability %s: %w", c.name, err)
		}
		run.Durability = append(run.Durability, row)
	}

	want, err := crashBaselineHash(stateRoot)
	if err != nil {
		return nil, fmt.Errorf("crash-free baseline: %w", err)
	}
	replayedTotal := 0
	for _, seed := range []int64{1, 5, 9} {
		res, err := crashReplayScenario(stateRoot, seed, want)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", res.Scenario, err)
		}
		replayedTotal += res.Replayed
		run.Replay = append(run.Replay, res)
	}
	// Across seeds at least one kill must catch unapplied acknowledged
	// writes, or the suite proved nothing about replay.
	if replayedTotal == 0 && len(run.Replay) > 0 {
		last := &run.Replay[len(run.Replay)-1]
		last.DataLoss = true
		last.Detail = "no seed replayed any journal record (vacuous suite)"
	}
	return run, nil
}

// FormatCrash renders the crash run as report tables.
func FormatCrash(run *CrashRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %12s %12s %8s\n", "journal", "writes", "avg ack us", "p99 ack us", "fsyncs")
	for _, r := range run.Durability {
		fmt.Fprintf(&b, "%-10s %8d %12.1f %12.1f %8d\n", r.Journal, r.Writes, r.AvgAckUs, r.P99AckUs, r.Fsyncs)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-28s %8s %9s %-6s detail\n", "scenario", "writes", "replayed", "loss")
	for _, r := range run.Replay {
		verdict := "ok"
		if r.DataLoss {
			verdict = "LOST"
		}
		fmt.Fprintf(&b, "%-28s %8d %9d %-6s %s\n", r.Scenario, r.Writes, r.Replayed, verdict, r.Detail)
	}
	return b.String()
}
