package experiments

import (
	"fmt"
	"time"

	"repro/internal/blockdev"
	"repro/internal/cloud"
	"repro/internal/initiator"
	"repro/internal/middlebox"
	"repro/internal/minidb"
	"repro/internal/policy"
	"repro/internal/sdn"
	"repro/internal/services/crypt"
	"repro/internal/splice"
	"repro/internal/vswitch"
	"repro/internal/workload"
)

// provisionActiveWithJournal builds an active encryption relay with an
// explicit NVRAM budget, bypassing the policy layer (which does not expose
// the knob).
func (l *Lab) provisionActiveWithJournal(vmName string, journalCap int) (blockdev.Device, func(), error) {
	vm, err := l.Cloud.LaunchVM(vmName, "compute1")
	if err != nil {
		return nil, nil, err
	}
	vol, err := l.Cloud.Volumes.Create(vmName+"-vol", volumeSize)
	if err != nil {
		return nil, nil, err
	}
	mbName := vmName + "-mb"
	key := testKey()
	mb, err := l.Cloud.LaunchMiddleBox(cloud.MBSpec{
		Name: mbName,
		Host: "compute3",
		Mode: middlebox.Active,
		BuildServices: func(*cloud.MiddleBox) ([]middlebox.ServiceFactory, error) {
			return []middlebox.ServiceFactory{crypt.Service(key, crypt.CostModel{})}, nil
		},
		JournalCapacity: journalCap,
	})
	if err != nil {
		return nil, nil, err
	}
	d := &splice.Deployment{
		ID:         "journal-ablation/" + vmName,
		VM:         vmName,
		VMHost:     vm.Host,
		VolumeIQN:  vol.IQN,
		TargetAddr: l.Cloud.Volumes.TargetAddr(),
		Ingress:    splice.GatewaySpec{Name: "gw-in", Host: "compute2", InstanceIP: fmt.Sprintf("192.168.30.%d", len(vmName))},
		Egress:     splice.GatewaySpec{Name: "gw-out", Host: "compute4", InstanceIP: fmt.Sprintf("192.168.31.%d", len(vmName))},
		Chain: []sdn.MBSpec{{
			Name: mbName, Host: mb.Host, Mode: vswitch.ModeTerminate, RelayAddr: mb.RelayAddr,
		}},
	}
	if err := l.Cloud.Plane.Deploy(d); err != nil {
		return nil, nil, err
	}
	var dev *initiator.Device
	err = l.Cloud.Plane.AtomicAttach(d, func() error {
		conn, err := vm.Endpoint.DialAddr(d.TargetAddr)
		if err != nil {
			return err
		}
		sess, err := initiator.Login(conn, initiator.Config{
			InitiatorIQN: "iqn.x:" + vmName, TargetIQN: vol.IQN,
		})
		if err != nil {
			return err
		}
		dev, err = initiator.OpenDevice(sess)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	cleanup := func() {
		_ = dev.Close()
		l.Cloud.Plane.Undeploy(d.ID)
		mb.Close()
	}
	return dev, cleanup, nil
}

// replicatedOLTP deploys an n-replica dispatch middle-box and drives the
// OLTP workload against it.
func (l *Lab) replicatedOLTP(vmName string, replicas int, duration time.Duration) (*workload.OLTPResult, error) {
	if _, err := l.Cloud.LaunchVM(vmName, "compute1"); err != nil {
		return nil, err
	}
	vol, err := l.Cloud.Volumes.Create(vmName+"-vol", volumeSize)
	if err != nil {
		return nil, err
	}
	tenant := l.nextTenant()
	pol := &policy.Policy{
		Tenant: tenant,
		MiddleBoxes: []policy.MiddleBoxSpec{{
			Name: "rep", Type: policy.TypeReplication, Host: "compute3",
			Params: map[string]string{"replicas": fmt.Sprintf("%d", replicas)},
		}},
		Volumes: []policy.VolumeBinding{{
			VM: vmName, Volume: vol.ID, Chain: []string{"rep"},
			IngressHost: "compute2", EgressHost: "compute4",
		}},
	}
	dep, err := l.Platform.Apply(pol)
	if err != nil {
		return nil, err
	}
	defer func() { _ = l.Platform.Teardown(tenant) }()
	db, err := minidb.Open(dep.Volumes[vmName+"/"+vol.ID].Device, 4096)
	if err != nil {
		return nil, err
	}
	return workload.RunOLTP(workload.OLTPConfig{
		DB: db, Rows: 400, Threads: 24, Duration: duration, Seed: 3,
	})
}
