package experiments

// Benchmark entry points for the chain microbenchmarks, so the fastpath
// rows can be run (and profiled) directly with `go test -bench Chain`
// instead of through stormbench.

import "testing"

func BenchmarkChainWrite4K(b *testing.B) { benchChainWrite4K(b) }

func BenchmarkChainRead4K(b *testing.B) { benchChainRead4K(b) }

func BenchmarkChainWrite64K(b *testing.B) { benchChainWrite64K(b) }
