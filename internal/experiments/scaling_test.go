package experiments

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/policy"
)

// TestScalingThroughputMonotonic is the scale-out acceptance sweep: with the
// per-instance copy path saturated, aggregate write throughput must grow
// monotonically (with real margin) as the group grows 1 → 2 → 4.
func TestScalingThroughputMonotonic(t *testing.T) {
	rows, err := Scaling([]int{1, 2, 4}, 4, 512<<10)
	if err != nil {
		t.Fatalf("Scaling: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	t.Logf("\n%s", FormatScaling(rows))
	for i := 1; i < len(rows); i++ {
		prev, cur := rows[i-1], rows[i]
		if cur.ThroughputMBps < prev.ThroughputMBps*1.15 {
			t.Fatalf("throughput not scaling: %d instances %.1f MB/s -> %d instances %.1f MB/s (want >1.15x)",
				prev.Instances, prev.ThroughputMBps, cur.Instances, cur.ThroughputMBps)
		}
	}
}

// drainEqualityRun executes the same two-flow write schedule against a
// two-member encryption group, optionally closing flow A mid-run, draining
// and removing the member it leaves idle, and re-attaching A through the
// survivor. It returns the sha256 of each volume's backing store
// (ciphertext), so a run with the drain must be byte-identical to one
// without it.
func drainEqualityRun(t *testing.T, drain bool) map[string][32]byte {
	t.Helper()
	model := netsim.Model{
		MTU:       8 * 1024,
		Bandwidth: 1 << 33,
		Latency:   map[netsim.HopKind]time.Duration{},
		PerPacket: map[netsim.HopKind]time.Duration{},
	}
	c, err := cloud.New(cloud.Config{ComputeHosts: 4, Model: model})
	if err != nil {
		t.Fatalf("cloud.New: %v", err)
	}
	t.Cleanup(c.Close)
	p := core.New(c)

	const volBytes = 8 << 20
	pol := &policy.Policy{
		Tenant: "tenantEq",
		MiddleBoxes: []policy.MiddleBoxSpec{{
			Name:         "enc1",
			Type:         policy.TypeEncryption,
			MinInstances: 2,
			MaxInstances: 4,
			Params:       map[string]string{"key": aesKeyHex},
		}},
	}
	vols := make(map[string]string, 2) // vm -> volume ID
	for _, vmName := range []string{"vmA", "vmB"} {
		if _, err := c.LaunchVM(vmName, "compute1"); err != nil {
			t.Fatalf("LaunchVM(%s): %v", vmName, err)
		}
		vol, err := c.Volumes.Create(vmName+"-vol", volBytes)
		if err != nil {
			t.Fatalf("Create volume: %v", err)
		}
		vols[vmName] = vol.ID
		pol.Volumes = append(pol.Volumes, policy.VolumeBinding{
			VM: vmName, Volume: vol.ID, Chain: []string{"enc1"},
		})
	}
	dep, err := p.Apply(pol)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}

	write := func(vm string, phase byte) {
		av := dep.Volumes[vm+"/"+vols[vm]]
		buf := bytes.Repeat([]byte{phase, vm[2]}, 2048) // 4 KiB, distinct per phase+vm
		bs := uint64(av.Device.BlockSize())
		for i := uint64(0); i < 8; i++ {
			off := (uint64(phase)*64*1024 + i*4096) / bs
			if err := av.Device.WriteAt(buf, off); err != nil {
				t.Fatalf("phase %d write %s: %v", phase, vm, err)
			}
		}
	}
	write("vmA", 1)
	write("vmB", 1)

	if drain {
		// Flow A logs out; its member goes idle while B keeps serving.
		if err := dep.Volumes["vmA/"+vols["vmA"]].Device.Close(); err != nil {
			t.Fatalf("close vmA device: %v", err)
		}
		idle := ""
		deadline := time.Now().Add(2 * time.Second)
		for idle == "" {
			for _, ms := range dep.GroupStatus("enc1") {
				if ms.Sessions == 0 {
					idle = ms.Name
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("no member went idle after logout: %+v", dep.GroupStatus("enc1"))
			}
		}
		if err := dep.BeginDrain("enc1", idle); err != nil {
			t.Fatalf("BeginDrain(%s): %v", idle, err)
		}
		for {
			st, err := dep.DrainStatus("enc1", idle)
			if err != nil {
				t.Fatalf("DrainStatus: %v", err)
			}
			if st.Sessions == 0 && st.JournalBytes == 0 && st.JournalPending == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("member %s never quiesced: %+v", idle, st)
			}
			time.Sleep(time.Millisecond)
		}
		// Zero-loss gate: the drained member's journal is empty.
		if st, _ := dep.DrainStatus("enc1", idle); st.JournalBytes != 0 {
			t.Fatalf("drained member holds %d journal bytes", st.JournalBytes)
		}
		if err := dep.FinishDrain("enc1", idle); err != nil {
			t.Fatalf("FinishDrain(%s): %v", idle, err)
		}
		if _, err := c.MiddleBox(idle); err == nil {
			t.Fatalf("drained instance %s still registered", idle)
		}
		// A reconnects: the fresh flow hashes onto the surviving member.
		if err := dep.Reattach("vmA/" + vols["vmA"]); err != nil {
			t.Fatalf("Reattach: %v", err)
		}
	}

	write("vmA", 2)
	write("vmB", 2)

	// Writes are early-acked; flush so the backing store holds every
	// acknowledged byte before it is hashed.
	for vm, id := range vols {
		if err := dep.Volumes[vm+"/"+id].Device.Flush(); err != nil {
			t.Fatalf("flush %s: %v", vm, err)
		}
	}
	hashes := make(map[string][32]byte, len(vols))
	for vm, id := range vols {
		vol, err := c.Volumes.Get(id)
		if err != nil {
			t.Fatalf("Volumes.Get(%s): %v", id, err)
		}
		raw := make([]byte, volBytes)
		if err := vol.Device().ReadAt(raw, 0); err != nil {
			t.Fatalf("read backing store %s: %v", id, err)
		}
		hashes[vm] = sha256.Sum256(raw)
	}
	if err := p.Teardown("tenantEq"); err != nil {
		t.Fatalf("Teardown: %v", err)
	}
	return hashes
}

// TestDrainScaleDownContentEquality: a scale-down by draining in the middle
// of the write schedule must leave every volume's backing store (the
// ciphertext the provider persists) byte-identical to a run that never
// scaled — the zero-data-loss acceptance criterion.
func TestDrainScaleDownContentEquality(t *testing.T) {
	plain := drainEqualityRun(t, false)
	drained := drainEqualityRun(t, true)
	for vm, want := range plain {
		if got, ok := drained[vm]; !ok || got != want {
			t.Fatalf("volume of %s diverged after drain scale-down: %x != %x", vm, got, want)
		}
	}
	if len(plain) != len(drained) {
		t.Fatalf("run shapes differ: %d vs %d volumes", len(plain), len(drained))
	}
}

// TestScalingRowJSONShape guards the BENCH_results.json section shape.
func TestScalingRowJSONShape(t *testing.T) {
	row := ScalingRow{Instances: 2, Flows: 4, TotalBytes: 8 << 20,
		ElapsedMs: 100, ThroughputMBps: 80, SpeedupVs1: 1.9}
	s := fmt.Sprintf("%+v", row)
	for _, f := range []string{"Instances:2", "Flows:4", "ThroughputMBps:80"} {
		if !bytes.Contains([]byte(s), []byte(f)) {
			t.Fatalf("row %s missing %s", s, f)
		}
	}
}
