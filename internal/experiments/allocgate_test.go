//go:build !race

// The race detector instruments allocations, so the budget only holds on
// plain builds; `make check` runs this gate alongside (not inside) the race
// pass.

package experiments

import "testing"

// chainWrite4KAllocBudget caps the allocations for one 4 KiB write through
// the full VM→active-relay→target chain. The zero-copy pass landed at
// ~12 allocs/op (journal-owned buffer aliasing, pooled PDU staging, vectored
// forward sends); 19 leaves headroom for scheduler noise while still
// catching any copy or per-PDU allocation sneaking back into the hot path.
const chainWrite4KAllocBudget = 19

// TestChainWrite4KAllocBudget is the allocs/op regression gate: it measures
// whole-process allocations per chain write with testing.AllocsPerRun (which
// covers the relay and target goroutines too, not just the caller) and fails
// when the budget is exceeded.
func TestChainWrite4KAllocBudget(t *testing.T) {
	sess := fastPathChain(t)
	buf := make([]byte, 4096)
	// Warm every pool on the path (PDU staging, journal, write-back items)
	// so the measurement sees steady state, not first-touch growth.
	for i := 0; i < 64; i++ {
		if err := sess.Write(uint64((i%64)*8), buf, 512); err != nil {
			t.Fatal(err)
		}
	}
	var i int
	avg := testing.AllocsPerRun(200, func() {
		if err := sess.Write(uint64((i%64)*8), buf, 512); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg > chainWrite4KAllocBudget {
		t.Errorf("chain 4K write allocates %.1f allocs/op, budget %d (zero-copy hot path regressed)", avg, chainWrite4KAllocBudget)
	}
	t.Logf("chain 4K write: %.1f allocs/op (budget %d)", avg, chainWrite4KAllocBudget)
}
