package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/blockdev"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/workload"
)

// The tracing experiment drives a two-middle-box chain (a transparent
// MB-FWD hop followed by an active encryption relay) with end-to-end
// tracing enabled, then reports the slowest retained traces hop by hop
// and the per-hop time budget across every collected trace. It also
// measures the fio-path cost of tracing at the default tail-sampling
// configuration against the identical chain with tracing off — the
// always-on overhead claim recorded in BENCH_results.json.

// HopBudgetRow is one stage's share of the traced command time. Self is
// exclusive time: the stage's span durations minus its child spans, so
// the rows decompose the end-to-end latency without double counting.
type HopBudgetRow struct {
	Stage    string        `json:"stage"`
	Spans    int           `json:"spans"`
	Self     time.Duration `json:"self_ns"`
	MeanSelf time.Duration `json:"mean_self_ns"`
	SharePct float64       `json:"share_pct"`
}

// TracingRun is one dated tracing-experiment result.
type TracingRun struct {
	When         string         `json:"when"`
	Ops          int            `json:"ops"`
	BaselineIOPS float64        `json:"baseline_iops"`
	TracedIOPS   float64        `json:"traced_iops"`
	OverheadPct  float64        `json:"overhead_pct"`
	TraceCount   int            `json:"trace_count"`
	Budget       []HopBudgetRow `json:"hop_budget,omitempty"`

	// Slowest holds the tail exemplars for the printed report; the raw
	// span trees are too bulky for the results file.
	Slowest []obs.TraceRecord `json:"-"`
}

// provisionTraceChain builds the two-middle-box scenario: VM on compute1,
// ingress gateway on compute2, an MB-FWD hop on compute3, an active
// encryption relay on compute4, egress gateway on compute4.
func (l *Lab) provisionTraceChain(vmName string) (blockdev.Device, func(), error) {
	if _, err := l.Cloud.LaunchVM(vmName, "compute1"); err != nil {
		return nil, nil, err
	}
	vol, err := l.Cloud.Volumes.Create(vmName+"-vol", volumeSize)
	if err != nil {
		return nil, nil, err
	}
	tenant := l.nextTenant()
	pol := &policy.Policy{
		Tenant: tenant,
		MiddleBoxes: []policy.MiddleBoxSpec{
			{Name: "fwd", Type: policy.TypeForward, Host: "compute3"},
			{Name: "enc", Type: policy.TypeEncryption, Host: "compute4",
				Mode: policy.ModeActive, Params: map[string]string{"key": aesKeyHex}},
		},
		Volumes: []policy.VolumeBinding{{
			VM: vmName, Volume: vol.ID, Chain: []string{"fwd", "enc"},
			IngressHost: "compute2", EgressHost: "compute4",
		}},
	}
	dep, err := l.Platform.Apply(pol)
	if err != nil {
		return nil, nil, err
	}
	av := dep.Volumes[vmName+"/"+vol.ID]
	return av.Device, func() { _ = l.Platform.Teardown(tenant) }, nil
}

// tracingFio runs the experiment's mixed workload on dev.
func tracingFio(dev blockdev.Device, ops int) (*workload.FioResult, error) {
	return workload.RunFio(workload.FioConfig{
		Dev:          dev,
		RequestSize:  16 * 1024,
		Threads:      4,
		ReadFraction: 0.5,
		Ops:          ops,
		Seed:         7,
	})
}

// Tracing runs the end-to-end tracing experiment: one pass over the
// two-middle-box chain with tracing off (baseline), one with tracing on
// at the default tail-sampling config (collecting the traces), and the
// overhead between the two. Tracing on obs.Default() is restored to off
// before returning.
func Tracing(ops int) (*TracingRun, error) {
	if ops <= 0 {
		ops = 150
	}
	run := &TracingRun{Ops: ops}

	// Baseline: identical chain, tracing off.
	obs.Default().DisableTracing()
	base, err := oneTracingPass("vm-trace-base", ops)
	if err != nil {
		return nil, err
	}
	run.BaselineIOPS = base.IOPS

	// Traced pass at the default sampling configuration.
	obs.Default().EnableTracing(obs.TraceConfig{})
	defer obs.Default().DisableTracing()
	traced, err := oneTracingPass("vm-trace-on", ops)
	if err != nil {
		return nil, err
	}
	run.TracedIOPS = traced.IOPS
	if run.BaselineIOPS > 0 {
		run.OverheadPct = (run.BaselineIOPS - run.TracedIOPS) / run.BaselineIOPS * 100
	}

	all := obs.Default().Traces()
	run.TraceCount = len(all)
	run.Slowest = obs.Default().SlowTraces(5)
	run.Budget = hopBudget(all)
	return run, nil
}

// oneTracingPass provisions a fresh lab chain and runs the workload once.
func oneTracingPass(vmName string, ops int) (*workload.FioResult, error) {
	l, err := NewLab()
	if err != nil {
		return nil, err
	}
	defer l.Close()
	dev, cleanup, err := l.provisionTraceChain(vmName)
	if err != nil {
		return nil, err
	}
	res, err := tracingFio(dev, ops)
	cleanup()
	if err != nil {
		return nil, err
	}
	return res, nil
}

// hopBudget aggregates exclusive (self) time per stage across traces.
func hopBudget(traces []obs.TraceRecord) []HopBudgetRow {
	type agg struct {
		spans int
		self  time.Duration
	}
	byStage := make(map[string]*agg)
	var total time.Duration
	for _, tr := range traces {
		child := make(map[uint64]time.Duration)
		for _, sp := range tr.Spans {
			if sp.Parent != 0 {
				child[sp.Parent] += sp.Dur
			}
		}
		for _, sp := range tr.Spans {
			self := sp.Dur - child[sp.ID]
			if self < 0 {
				self = 0
			}
			a := byStage[sp.Stage]
			if a == nil {
				a = &agg{}
				byStage[sp.Stage] = a
			}
			a.spans++
			a.self += self
			total += self
		}
	}
	rows := make([]HopBudgetRow, 0, len(byStage))
	for stage, a := range byStage {
		row := HopBudgetRow{Stage: stage, Spans: a.spans, Self: a.self}
		if a.spans > 0 {
			row.MeanSelf = a.self / time.Duration(a.spans)
		}
		if total > 0 {
			row.SharePct = float64(a.self) / float64(total) * 100
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Self > rows[j].Self })
	return rows
}

// FormatTracing renders the hop-by-hop report: the slowest retained
// traces as indented span trees, the per-hop time budget, and the
// overhead line.
func FormatTracing(run *TracingRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "two-middle-box chain (MB-FWD -> active encryption relay), %d ops\n", run.Ops)
	fmt.Fprintf(&b, "collected traces: %d (tail exemplars + head samples)\n\n", run.TraceCount)

	for i, tr := range run.Slowest {
		kind := "sampled"
		if tr.Slow {
			kind = "slow"
		}
		fmt.Fprintf(&b, "trace #%d  id=%d  root=%s  total=%v  [%s]\n", i+1, tr.ID, tr.Root, tr.Dur, kind)
		writeSpanTree(&b, tr)
		b.WriteString("\n")
	}

	if len(run.Budget) > 0 {
		b.WriteString("per-hop time budget (exclusive time across all collected traces):\n")
		fmt.Fprintf(&b, "  %-28s %7s %12s %12s %7s\n", "stage", "spans", "self", "mean", "share")
		for _, row := range run.Budget {
			fmt.Fprintf(&b, "  %-28s %7d %12v %12v %6.1f%%\n",
				row.Stage, row.Spans, row.Self.Round(time.Microsecond),
				row.MeanSelf.Round(time.Microsecond), row.SharePct)
		}
		b.WriteString("\n")
	}

	fmt.Fprintf(&b, "tracing overhead: baseline %.0f IOPS -> traced %.0f IOPS (%.2f%%)\n",
		run.BaselineIOPS, run.TracedIOPS, run.OverheadPct)
	return b.String()
}

// writeSpanTree prints a trace's spans as a parent-indented tree with
// offsets from the root span's start.
func writeSpanTree(b *strings.Builder, tr obs.TraceRecord) {
	children := make(map[uint64][]obs.SpanRecord)
	var roots []obs.SpanRecord
	ids := make(map[uint64]bool, len(tr.Spans))
	for _, sp := range tr.Spans {
		ids[sp.ID] = true
	}
	for _, sp := range tr.Spans {
		if sp.Parent != 0 && ids[sp.Parent] {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	var walk func(sp obs.SpanRecord, depth int)
	walk = func(sp obs.SpanRecord, depth int) {
		name := sp.Stage
		if sp.Dir != "" {
			name += "." + sp.Dir
		}
		off := sp.Start.Sub(tr.Start)
		fmt.Fprintf(b, "  %s+%-10v %-40s %v", strings.Repeat("  ", depth),
			off.Round(time.Microsecond), name, sp.Dur.Round(time.Microsecond))
		if sp.Bytes > 0 {
			fmt.Fprintf(b, "  (%d B)", sp.Bytes)
		}
		b.WriteString("\n")
		for _, c := range children[sp.ID] {
			walk(c, depth+1)
		}
	}
	for _, sp := range roots {
		walk(sp, 0)
	}
}
