package experiments

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/blockdev"
	"repro/internal/cas"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/services/replicate"
	"repro/internal/wal"
	"repro/internal/xerr"
)

// The overload suite drives the replication stack into its resource walls
// and checks it degrades the way the robustness design promises: exhaustion
// surfaces as typed errors (never hangs, never corruption), pressure release
// restores service with no data loss, a browned-out backend trips its
// circuit breaker without dragging the healthy path down, and the whole
// episode stays within a bounded memory envelope.

// OverloadConfig sizes an overload run.
type OverloadConfig struct {
	// Chunks is the logical image size in chunks (default 64).
	Chunks int
	// ChunkBytes is the content-addressing granularity (default 4096).
	ChunkBytes int
	// Backends is the replica count (default 3).
	Backends int
	// BrownoutWrites is the write count per measured phase of the brownout
	// scenario (default 400).
	BrownoutWrites int
}

// OverloadRun is one dated overload-suite result.
type OverloadRun struct {
	When     string `json:"when"`
	Backends int    `json:"backends"`
	Quorum   int    `json:"quorum"`
	Chunks   int    `json:"chunks"`

	// WAL-full: a dispatch journal hitting its byte quota mid-workload.
	WALWritesAdmitted int  `json:"wal_writes_admitted"`
	WALWritesRefused  int  `json:"wal_writes_refused"`
	WALFullTyped      bool `json:"wal_full_typed"`
	WALConverged      bool `json:"wal_converged_after_release"`

	// CAS-full: a backend out of physical chunk slots.
	CASFullTyped bool `json:"cas_full_typed"`
	CASRecovered bool `json:"cas_recovered_after_free"`

	// Brownout: one backend of three answering slowly.
	BreakerTripped    bool          `json:"breaker_tripped"`
	BreakerRecovered  bool          `json:"breaker_recovered"`
	BaselineP99       time.Duration `json:"baseline_p99_ns"`
	BrownoutP99       time.Duration `json:"brownout_p99_ns"`
	BrownoutConverged bool          `json:"brownout_converged"`

	// HeapGrowthMB is the live-heap delta across the whole suite (post-GC),
	// the bounded-memory gate.
	HeapGrowthMB float64 `json:"heap_growth_mib"`

	// Violations lists failed gates; empty means the suite passed.
	Violations []string `json:"violations,omitempty"`
}

// overloadChunk renders deterministic unique content for a slot at a
// generation.
func overloadChunk(gen, slot, size int) []byte {
	rng := rand.New(rand.NewSource(int64(gen)*2_000_003 + int64(slot)))
	b := make([]byte, size)
	rng.Read(b)
	return b
}

// overloadBox assembles a replication box over fresh content-addressed
// backends, returning the box, its backends, and the primary.
func overloadBox(cfg OverloadConfig, rcfg replicate.Config, wrap func(i int, be cas.Backend) cas.Backend) (*replicate.Box, []replicate.NamedStore, blockdev.Device, func(), error) {
	const bs = 512
	slots := uint64(cfg.Chunks)
	primary, err := blockdev.NewMemDisk(bs, slots*uint64(cfg.ChunkBytes)/bs)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	var backends []replicate.NamedStore
	for i := 0; i < cfg.Backends; i++ {
		var be cas.Backend = cas.NewMemBackend(slots)
		if wrap != nil {
			be = wrap(i, be)
		}
		store, err := cas.Open(be, cfg.ChunkBytes, slots)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		backends = append(backends, replicate.NamedStore{Name: fmt.Sprintf("backend%d", i), Store: store})
	}
	walDir, err := os.MkdirTemp("", "storm-overload-wal")
	if err != nil {
		return nil, nil, nil, nil, err
	}
	rcfg.ChunkSize = cfg.ChunkBytes
	rcfg.WALDir = walDir
	box, err := replicate.New(rcfg, primary, backends)
	if err != nil {
		os.RemoveAll(walDir)
		return nil, nil, nil, nil, err
	}
	cleanup := func() {
		box.Close()
		os.RemoveAll(walDir)
	}
	return box, backends, primary, cleanup, nil
}

// imageHash reads the primary's full logical image and hashes it — the
// convergence reference every backend's LogicalHash must equal.
func imageHash(primary blockdev.Device, chunks, chunkBytes int) (cas.ID, error) {
	const bs = 512
	img := make([]byte, chunks*chunkBytes)
	for off := 0; off < len(img); off += chunkBytes {
		if err := primary.ReadAt(img[off:off+chunkBytes], uint64(off/bs)); err != nil {
			return cas.ID{}, err
		}
	}
	return cas.ID(sha256.Sum256(img)), nil
}

// converged reports whether every backend's logical image content-hashes
// equal to the primary's.
func converged(primary blockdev.Device, backends []replicate.NamedStore, chunks, chunkBytes int) (bool, error) {
	want, err := imageHash(primary, chunks, chunkBytes)
	if err != nil {
		return false, err
	}
	for _, nb := range backends {
		got, err := nb.Store.LogicalHash()
		if err != nil || got != want {
			return false, nil
		}
	}
	return true, nil
}

// waitDrained polls the box to full convergence.
func waitDrained(box *replicate.Box, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for !box.Drained() {
		if time.Now().After(deadline) {
			return fmt.Errorf("overload: box never drained")
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// runWALFull drives the ENOSPC scenario: a dispatch journal under a byte
// quota fills mid-workload, writes refuse typed, the quota grows (the
// operator adds disk), and the full image reconverges with nothing lost.
func runWALFull(cfg OverloadConfig, run *OverloadRun) error {
	quota := faults.NewDiskFull(32 << 10)
	box, backends, primary, cleanup, err := overloadBox(cfg, replicate.Config{
		Name:     "ovl-wal",
		Quorum:   cfg.Backends/2 + 1,
		WALQuota: quota,
		Obs:      obs.NewRegistry(),
	}, nil)
	if err != nil {
		return err
	}
	defer cleanup()

	bpc := uint64(cfg.ChunkBytes / 512)
	var full error
	for s := 0; s < cfg.Chunks; s++ {
		if err := box.WriteAt(overloadChunk(0, s, cfg.ChunkBytes), uint64(s)*bpc); err != nil {
			full = err
			break
		}
		run.WALWritesAdmitted++
	}
	if full == nil {
		return fmt.Errorf("overload: 32 KiB journal quota admitted all %d chunk writes", cfg.Chunks)
	}
	run.WALFullTyped = errors.Is(full, wal.ErrWALFull) &&
		xerr.Classify(full) == xerr.Exhausted && !xerr.Retryable(full)

	// The wall holds: every write during the episode refuses typed, none
	// hangs, none corrupts.
	for i := 0; i < 8; i++ {
		err := box.WriteAt(overloadChunk(0, i, cfg.ChunkBytes), uint64(i)*bpc)
		if err == nil {
			return fmt.Errorf("overload: write admitted against a full journal")
		}
		if !errors.Is(err, wal.ErrWALFull) {
			run.WALFullTyped = false
		}
		run.WALWritesRefused++
	}

	// Pressure release: grow the quota and re-ingest the whole image.
	quota.Grow(64 << 20)
	for s := 0; s < cfg.Chunks; s++ {
		if err := box.WriteAt(overloadChunk(1, s, cfg.ChunkBytes), uint64(s)*bpc); err != nil {
			return fmt.Errorf("overload: write after quota grow: %w", err)
		}
	}
	if err := box.Flush(); err != nil {
		return err
	}
	if err := waitDrained(box, 30*time.Second); err != nil {
		return err
	}
	run.WALConverged, err = converged(primary, backends, cfg.Chunks, cfg.ChunkBytes)
	return err
}

// runCASFull drives a block-backed content store into physical chunk-slot
// exhaustion: new unique content refuses typed, and freeing a slot (the
// dedup overwrite path) readmits writes.
func runCASFull(cfg OverloadConfig, run *OverloadRun) error {
	const (
		bs    = 512
		slots = 32
	)
	devBytes, err := cas.BlockBackendBytes(bs, cfg.ChunkBytes, slots)
	if err != nil {
		return err
	}
	disk, err := blockdev.NewMemDisk(bs, devBytes/bs)
	if err != nil {
		return err
	}
	be, err := cas.OpenBlockBackend(disk, cfg.ChunkBytes, slots)
	if err != nil {
		return err
	}
	s, err := cas.Open(be, cfg.ChunkBytes, slots)
	if err != nil {
		return err
	}
	defer s.Close()

	for i := uint64(0); i < slots; i++ {
		if _, err := s.Write(i, overloadChunk(2, int(i), cfg.ChunkBytes)); err != nil {
			return fmt.Errorf("overload: cas fill slot %d: %w", i, err)
		}
	}
	// Consume the backend's orphan-slack physical slots with direct puts
	// until the store sits at its exact last slot.
	for i := 0; i < slots*4; i++ {
		data := overloadChunk(3, i, cfg.ChunkBytes)
		if err := be.PutChunk(cas.Sum(data), data); err != nil {
			break
		}
	}
	_, full := s.Write(0, overloadChunk(4, 0, cfg.ChunkBytes))
	if full == nil {
		return fmt.Errorf("overload: full content store admitted new unique content")
	}
	run.CASFullTyped = errors.Is(full, cas.ErrStoreFull) && xerr.Classify(full) == xerr.Exhausted

	// Recovery: a dedup overwrite displaces slot 0's old chunk (refcount to
	// zero, physical slot freed), after which new unique content admits.
	if _, err := s.Write(0, overloadChunk(2, 1, cfg.ChunkBytes)); err != nil {
		return fmt.Errorf("overload: dedup overwrite at capacity: %w", err)
	}
	fresh := overloadChunk(5, 0, cfg.ChunkBytes)
	if _, err := s.Write(0, fresh); err != nil {
		return fmt.Errorf("overload: write to freed slot: %w", err)
	}
	buf := make([]byte, cfg.ChunkBytes)
	if err := s.Read(0, buf); err != nil {
		return err
	}
	run.CASRecovered = string(buf) == string(fresh)
	return nil
}

// pacedBackend wraps a content backend with a token-bucket pacer: it
// answers correctly but late — the injected brownout.
type pacedBackend struct {
	cas.Backend
	mu    sync.Mutex
	pacer *faults.SlowBackend
}

func (p *pacedBackend) setRate(rate, burst float64) {
	p.mu.Lock()
	if rate <= 0 {
		p.pacer = nil
	} else {
		p.pacer = faults.NewSlowBackend(rate, burst)
	}
	p.mu.Unlock()
}

func (p *pacedBackend) PutChunk(id cas.ID, data []byte) error {
	p.mu.Lock()
	pacer := p.pacer
	p.mu.Unlock()
	pacer.Pace(len(data))
	return p.Backend.PutChunk(id, data)
}

// runBrownout drives the 1-slow-of-3 scenario: one backend browns out, its
// breaker trips on over-deadline applies (visible on the breaker_state
// gauge), the healthy path's p99 stays bounded, and healing closes the
// breaker and reconverges the straggler.
func runBrownout(cfg OverloadConfig, run *OverloadRun) error {
	victim := &pacedBackend{}
	reg := obs.NewRegistry()
	box, backends, primary, cleanup, err := overloadBox(cfg, replicate.Config{
		Name:             "ovl-slow",
		Quorum:           cfg.Backends/2 + 1,
		BreakerThreshold: 2,
		ApplyTimeout:     3 * time.Millisecond,
		// Long enough that a tripped breaker's resync (which holds the
		// write path while it re-pushes diverged slots through the paced
		// backend) cannot land inside a measured phase and smear the
		// healthy-path p99; short enough that post-heal recovery is quick.
		ProbeInterval: 500 * time.Millisecond,
		Obs:           reg,
	}, func(i int, be cas.Backend) cas.Backend {
		if i != cfg.Backends-1 {
			return be
		}
		victim.Backend = be
		return victim
	})
	if err != nil {
		return err
	}
	defer cleanup()
	gBreaker := reg.Gauge(fmt.Sprintf("replicate.ovl-slow.backend%d.breaker_state", cfg.Backends-1))

	bpc := uint64(cfg.ChunkBytes / 512)
	// seq makes every write's content unique: a repeat of a slot's previous
	// content is a dedup hit that skips the backend entirely, which would
	// let the paced victim dodge its slow applies (and reset its breaker's
	// slow-streak between the ones it does serve).
	seq := 0
	writePhase := func(gen int) (time.Duration, error) {
		hist := &metrics.Histogram{}
		rng := rand.New(rand.NewSource(int64(gen)))
		for i := 0; i < cfg.BrownoutWrites; i++ {
			s := rng.Intn(cfg.Chunks)
			seq++
			t0 := time.Now()
			if err := box.WriteAt(overloadChunk(gen+seq<<8, s, cfg.ChunkBytes), uint64(s)*bpc); err != nil {
				return 0, fmt.Errorf("overload: brownout write (gen %d): %w", gen, err)
			}
			hist.Observe(time.Since(t0))
		}
		return hist.Percentile(99), nil
	}

	// Baseline: all backends healthy.
	if run.BaselineP99, err = writePhase(10); err != nil {
		return err
	}
	if err := waitDrained(box, 30*time.Second); err != nil {
		return err
	}

	// Brownout: the victim answers a 4 KiB apply in ~16 ms — far over the
	// 3 ms apply deadline — so its breaker trips while the two healthy
	// backends keep satisfying the quorum. A half-open probe whose chunk
	// happens to dedup-hit can briefly reclose the breaker, so a concurrent
	// watcher samples the breaker_state gauge to catch open windows a
	// phase-end poll would miss.
	victim.setRate(256<<10, 4096)
	watchStop := make(chan struct{})
	watchDone := make(chan struct{})
	var sawOpen bool
	go func() {
		defer close(watchDone)
		for {
			select {
			case <-watchStop:
				return
			default:
			}
			if gBreaker.Value() == replicate.BreakerOpen {
				sawOpen = true
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	if run.BrownoutP99, err = writePhase(11); err != nil {
		close(watchStop)
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for !sawOpen && time.Now().Before(deadline) {
		if _, err := writePhase(11); err != nil {
			close(watchStop)
			return err
		}
	}
	close(watchStop)
	<-watchDone
	run.BreakerTripped = sawOpen

	// Heal: probes close the breaker and resync reconverges the straggler.
	victim.setRate(0, 0)
	healDeadline := time.Now().Add(10 * time.Second)
	for gBreaker.Value() != replicate.BreakerClosed && time.Now().Before(healDeadline) {
		time.Sleep(5 * time.Millisecond)
	}
	run.BreakerRecovered = gBreaker.Value() == replicate.BreakerClosed
	if _, err := writePhase(12); err != nil {
		return err
	}
	if err := box.Flush(); err != nil {
		return err
	}
	if err := waitDrained(box, 30*time.Second); err != nil {
		return err
	}
	run.BrownoutConverged, err = converged(primary, backends, cfg.Chunks, cfg.ChunkBytes)
	return err
}

// liveHeapMB reports the post-GC live heap in MiB.
func liveHeapMB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

// RunOverload runs the three overload scenarios and evaluates the gates.
func RunOverload(cfg OverloadConfig) (*OverloadRun, error) {
	if cfg.Chunks <= 0 {
		cfg.Chunks = 64
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 4096
	}
	if cfg.Backends <= 0 {
		cfg.Backends = 3
	}
	if cfg.BrownoutWrites <= 0 {
		cfg.BrownoutWrites = 400
	}
	run := &OverloadRun{
		Backends: cfg.Backends,
		Quorum:   cfg.Backends/2 + 1,
		Chunks:   cfg.Chunks,
	}
	heap0 := liveHeapMB()
	if err := runWALFull(cfg, run); err != nil {
		return nil, err
	}
	if err := runCASFull(cfg, run); err != nil {
		return nil, err
	}
	if err := runBrownout(cfg, run); err != nil {
		return nil, err
	}
	run.HeapGrowthMB = liveHeapMB() - heap0

	// Gates.
	if !run.WALFullTyped {
		run.Violations = append(run.Violations, "journal exhaustion did not surface as typed ErrWALFull (Exhausted, non-retryable)")
	}
	if !run.WALConverged {
		run.Violations = append(run.Violations, "backends diverged after the WAL-full episode (data loss)")
	}
	if !run.CASFullTyped {
		run.Violations = append(run.Violations, "content-store exhaustion did not surface as typed ErrStoreFull")
	}
	if !run.CASRecovered {
		run.Violations = append(run.Violations, "content store did not readmit writes after a slot freed")
	}
	if !run.BreakerTripped {
		run.Violations = append(run.Violations, "slow backend never tripped its circuit breaker")
	}
	if !run.BreakerRecovered {
		run.Violations = append(run.Violations, "circuit breaker never closed after the brownout healed")
	}
	// The healthy path must not be dragged down by the browned-out backend:
	// p99 within 3x the healthy baseline, with a 5 ms absolute floor so
	// scheduler jitter on a sub-millisecond baseline can't fail the gate.
	if limit := 3 * run.BaselineP99; run.BrownoutP99 > limit && run.BrownoutP99 > 5*time.Millisecond {
		run.Violations = append(run.Violations,
			fmt.Sprintf("healthy-path p99 %v during brownout exceeds 3x baseline %v", run.BrownoutP99, run.BaselineP99))
	}
	if !run.BrownoutConverged {
		run.Violations = append(run.Violations, "backends diverged after the brownout episode (data loss)")
	}
	if run.HeapGrowthMB > 64 {
		run.Violations = append(run.Violations,
			fmt.Sprintf("live heap grew %.1f MiB across the suite (bound 64 MiB)", run.HeapGrowthMB))
	}
	return run, nil
}

// FormatOverload renders the overload report.
func FormatOverload(run *OverloadRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "overload: %d backends quorum %d, %d-chunk image\n", run.Backends, run.Quorum, run.Chunks)
	fmt.Fprintf(&b, "  WAL full     %d writes admitted, then %d refused typed=%v; converged after release: %v\n",
		run.WALWritesAdmitted, run.WALWritesRefused+1, run.WALFullTyped, run.WALConverged)
	fmt.Fprintf(&b, "  CAS full     typed refusal: %v; readmitted after free: %v\n", run.CASFullTyped, run.CASRecovered)
	fmt.Fprintf(&b, "  brownout     breaker tripped: %v, recovered: %v; converged: %v\n",
		run.BreakerTripped, run.BreakerRecovered, run.BrownoutConverged)
	fmt.Fprintf(&b, "  healthy p99  %v baseline -> %v during brownout\n",
		run.BaselineP99.Round(time.Microsecond), run.BrownoutP99.Round(time.Microsecond))
	fmt.Fprintf(&b, "  memory       live heap %+.1f MiB across the suite\n", run.HeapGrowthMB)
	if len(run.Violations) == 0 {
		b.WriteString("  PASS: all overload gates held\n")
	} else {
		for _, v := range run.Violations {
			fmt.Fprintf(&b, "  FAIL: %s\n", v)
		}
	}
	return b.String()
}
