package target

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/blockdev"
	"repro/internal/bufpool"
	"repro/internal/iscsi"
	"repro/internal/obs"
	"repro/internal/scsi"
)

// maxTransfer bounds a single command's data transfer so a corrupt
// ExpectedDataTransferLength cannot allocate unbounded memory.
const maxTransfer = 64 << 20

// transfer tracks one in-progress R2T-solicited write. buf is pooled staging
// owned by the command goroutine, which releases it once the device write
// completes.
type transfer struct {
	mu   sync.Mutex
	buf  []byte
	pbuf *bufpool.Buf
	// burst is signaled when the Final Data-Out of a solicited burst
	// arrives.
	burst chan struct{}
}

// release detaches the staging buffer (so a straggling Data-Out can no
// longer copy into it — handleDataOut copies under tr.mu) and returns it to
// the pool. Nil-safe for paths that never created a transfer.
func (tr *transfer) release() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	pb := tr.pbuf
	tr.buf, tr.pbuf = nil, nil
	tr.mu.Unlock()
	pb.Release()
}

// session is one logged-in connection.
type session struct {
	srv    *Server
	conn   net.Conn
	params iscsi.Params
	dev    blockdev.Device
	ownDev bool
	iqn    string

	sendMu  sync.Mutex
	wirePDU iscsi.PDU // reusable encode target for outgoing PDUs, guarded by sendMu
	statSN  atomic.Uint32

	lastCmdSN atomic.Uint32

	xferMu sync.Mutex
	xfers  map[uint32]*transfer

	cmdWG sync.WaitGroup
	// done is closed when the session ends, releasing command goroutines
	// blocked on data solicitation.
	done chan struct{}
}

// serveConn runs one connection: login, full-feature phase, teardown.
func (s *Server) serveConn(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	ss, err := s.login(conn)
	if err != nil {
		s.logf("target: login on %v failed: %v", conn.RemoteAddr(), err)
		return
	}
	ss.run()
	ss.cleanup()
}

// login performs the single-round login exchange the initiator drives.
func (s *Server) login(conn net.Conn) (*session, error) {
	pdu, err := iscsi.ReadPDU(conn)
	if err != nil {
		return nil, fmt.Errorf("read login: %w", err)
	}
	req, err := iscsi.ParseLoginRequest(pdu)
	if err != nil {
		return nil, err
	}
	iqn := req.Pairs[iscsi.KeyTargetName]
	reject := func(cause error) (*session, error) {
		resp := &iscsi.LoginResponse{
			Transit:     true,
			CSG:         iscsi.StageOperational,
			NSG:         iscsi.StageFullFeature,
			ISID:        req.ISID,
			ITT:         req.ITT,
			StatSN:      1,
			ExpCmdSN:    req.CmdSN + 1,
			MaxCmdSN:    req.CmdSN + 1,
			StatusClass: iscsi.LoginStatusInitiatorErr,
		}
		if _, werr := resp.Encode().WriteTo(conn); werr != nil && cause == nil {
			cause = werr
		}
		return nil, cause
	}
	dev, owned, err := s.lookup(iqn, conn)
	if err != nil {
		return reject(err)
	}
	params, err := s.params.Negotiate(req.Pairs)
	if err != nil {
		if owned {
			_ = dev.Close()
		}
		return reject(err)
	}
	resp := &iscsi.LoginResponse{
		Transit:     true,
		CSG:         iscsi.StageOperational,
		NSG:         iscsi.StageFullFeature,
		ISID:        req.ISID,
		TSIH:        1,
		ITT:         req.ITT,
		StatSN:      1,
		ExpCmdSN:    req.CmdSN + 1,
		MaxCmdSN:    req.CmdSN + 65,
		StatusClass: iscsi.LoginStatusSuccess,
		Pairs:       params.Pairs(),
	}
	if _, err := resp.Encode().WriteTo(conn); err != nil {
		if owned {
			_ = dev.Close()
		}
		return nil, fmt.Errorf("send login response: %w", err)
	}
	if s.loginHook != nil {
		info := LoginInfo{
			TargetIQN:    iqn,
			InitiatorIQN: req.Pairs[iscsi.KeyInitiatorName],
			AttachedVM:   req.Pairs[iscsi.KeyAttachedVM],
			RemoteAddr:   conn.RemoteAddr(),
		}
		if v := req.Pairs[iscsi.KeySourcePort]; v != "" {
			if port, err := strconv.Atoi(v); err == nil {
				info.SourcePort = port
			}
		}
		s.loginHook(info)
	}
	s.obsReg.Counter("iscsi.logins").Inc()
	ss := &session{
		srv:    s,
		conn:   conn,
		params: params,
		dev:    dev,
		ownDev: owned,
		iqn:    iqn,
		xfers:  make(map[uint32]*transfer),
		done:   make(chan struct{}),
	}
	ss.statSN.Store(1)
	ss.lastCmdSN.Store(req.CmdSN)
	return ss, nil
}

// run is the full-feature phase loop. It returns when the connection
// drops, the initiator logs out, or the server closes.
func (ss *session) run() {
	for {
		pdu, err := iscsi.ReadPDU(ss.conn)
		if err != nil {
			return
		}
		switch pdu.Op() {
		case iscsi.OpSCSICommand:
			cmd, err := iscsi.ParseSCSICommand(pdu)
			if err != nil {
				return
			}
			ss.noteCmdSN(cmd.CmdSN)
			// The command goroutine owns the PDU from here: cmd.Data (the
			// immediate write data) aliases its pooled segment, which is
			// released once that data is staged into the transfer buffer.
			ss.startCommand(cmd, pdu)
		case iscsi.OpSCSIDataOut:
			dout, err := iscsi.ParseDataOut(pdu)
			if err != nil {
				return
			}
			ss.handleDataOut(dout)
			pdu.Release()
		case iscsi.OpNopOut:
			nop, err := iscsi.ParseNopOut(pdu)
			if err != nil {
				return
			}
			pdu.Release()
			ss.noteCmdSN(nop.CmdSN)
			_ = ss.sendMsg(&iscsi.NopIn{
				ITT:      nop.ITT,
				TTT:      0xFFFFFFFF,
				StatSN:   ss.statSN.Load(),
				ExpCmdSN: ss.expCmdSN(),
				MaxCmdSN: ss.maxCmdSN(),
			})
		case iscsi.OpTextReq:
			err := ss.handleText(pdu)
			pdu.Release()
			if err != nil {
				return
			}
		case iscsi.OpLogoutReq:
			req, err := iscsi.ParseLogoutRequest(pdu)
			if err != nil {
				return
			}
			ss.noteCmdSN(req.CmdSN)
			// Let in-flight commands complete before acknowledging.
			ss.cmdWG.Wait()
			_ = ss.send((&iscsi.LogoutResponse{
				ITT:      req.ITT,
				StatSN:   ss.statSN.Add(1),
				ExpCmdSN: ss.expCmdSN(),
				MaxCmdSN: ss.maxCmdSN(),
			}).Encode())
			return
		default:
			ss.srv.logf("target: session %q: unsupported PDU %v", ss.iqn, pdu.Op())
			_ = ss.send((&iscsi.Reject{
				Reason: iscsi.RejectCommandNotSupported,
				StatSN: ss.statSN.Load(),
				Header: append([]byte(nil), pdu.BHS[:]...),
			}).Encode())
			return
		}
	}
}

// cleanup releases session resources after run returns.
func (ss *session) cleanup() {
	close(ss.done)
	ss.cmdWG.Wait()
	if ss.ownDev {
		if err := ss.dev.Close(); err != nil {
			ss.srv.logf("target: session %q: close device: %v", ss.iqn, err)
		}
	}
}

func (ss *session) noteCmdSN(sn uint32) {
	for {
		cur := ss.lastCmdSN.Load()
		if sn <= cur || ss.lastCmdSN.CompareAndSwap(cur, sn) {
			return
		}
	}
}

func (ss *session) expCmdSN() uint32 { return ss.lastCmdSN.Load() + 1 }
func (ss *session) maxCmdSN() uint32 { return ss.lastCmdSN.Load() + 65 }

// send serializes one PDU to the connection under the session send lock.
func (ss *session) send(p *iscsi.PDU) error {
	ss.sendMu.Lock()
	defer ss.sendMu.Unlock()
	_, err := p.WriteTo(ss.conn)
	return err
}

// pduEncoder is a typed message that can encode into a caller-owned PDU.
type pduEncoder interface {
	EncodeInto(*iscsi.PDU) *iscsi.PDU
}

// sendMsg serializes m into the session's reusable wire PDU under sendMu, so
// steady-state responses allocate nothing for framing.
func (ss *session) sendMsg(m pduEncoder) error {
	ss.sendMu.Lock()
	defer ss.sendMu.Unlock()
	_, err := m.EncodeInto(&ss.wirePDU).WriteTo(ss.conn)
	return err
}

// startCommand dispatches a SCSI command to its own goroutine so the
// session serves QueueDepth commands concurrently. The goroutine owns pdu
// (the command's pooled data segment) and releases it once consumed.
func (ss *session) startCommand(cmd *iscsi.SCSICommand, pdu *iscsi.PDU) {
	ss.cmdWG.Add(1)
	go func() {
		defer ss.cmdWG.Done()
		ss.runCommand(cmd, pdu)
	}()
}

// runCommand executes one command end to end: data solicitation for
// writes, device execution, Data-In or response with status.
func (ss *session) runCommand(cmd *iscsi.SCSICommand, pdu *iscsi.PDU) {
	cdb, err := scsi.Decode(cmd.CDB[:])
	if err != nil {
		pdu.Release()
		var unsup *scsi.UnsupportedOpError
		if errors.As(err, &unsup) {
			ss.sendResponse(cmd.ITT, scsi.IllegalRequest(scsi.ASCInvalidOpcode))
		} else {
			ss.sendResponse(cmd.ITT, scsi.IllegalRequest(scsi.ASCInvalidFieldInCDB))
		}
		return
	}

	// The command's trace context (if any) travels out of band on the
	// connection, keyed by task tag. Binding it to this goroutine links
	// every downstream span — the stage span below, a relay's service
	// device stack, the onward forward session — to the upstream command.
	if tbl := obs.CarrierOf(ss.conn); tbl != nil {
		if tsc, ok := tbl.Take(cmd.ITT); ok {
			prev, had := obs.Bind(tsc)
			defer obs.Restore(prev, had)
		}
	}

	sp := ss.srv.obsReg.StartTraced(ss.srv.obsStage, strings.TrimPrefix(opSuffix(cdb), "."), int(cmd.ExpectedDataTransferLength))
	defer sp.End()

	var writeBuf []byte
	if cmd.Write {
		var sense *scsi.Sense
		var tr *transfer
		writeBuf, tr, sense = ss.collectWriteData(cmd)
		pdu.Release() // immediate data now staged in the transfer buffer
		defer tr.release()
		if sense != nil {
			ss.sendResponse(cmd.ITT, sense)
			return
		}
		if writeBuf == nil { // session ended mid-transfer
			return
		}
	} else {
		pdu.Release() // non-write commands carry no retained data
	}

	data, pooled, sense := ss.execute(cdb, writeBuf)
	defer pooled.Release()
	if sense != nil {
		ss.sendResponse(cmd.ITT, sense)
		return
	}
	if cmd.Read && len(data) > 0 {
		ss.sendDataIn(cmd.ITT, data)
		return
	}
	ss.sendResponse(cmd.ITT, nil)
}

// opSuffix classifies a CDB for stage-histogram naming.
func opSuffix(cdb *scsi.CDB) string {
	switch {
	case cdb.IsWrite():
		return ".write"
	case cdb.Op == scsi.OpRead10 || cdb.Op == scsi.OpRead16:
		return ".read"
	default:
		return ".ctl"
	}
}

// collectWriteData assembles the command's full data transfer: immediate
// data from the command PDU plus R2T-solicited bursts. The staging buffer is
// pooled; the caller must call release on the returned transfer once the
// device write completes. A nil data slice with nil sense means the session
// was torn down mid-transfer.
func (ss *session) collectWriteData(cmd *iscsi.SCSICommand) ([]byte, *transfer, *scsi.Sense) {
	total := int(cmd.ExpectedDataTransferLength)
	if total > maxTransfer {
		return nil, nil, scsi.IllegalRequest(scsi.ASCInvalidFieldInCDB)
	}
	// Zeroed: a peer that skips a solicited segment must not leak stale
	// pool bytes into the device write (make([]byte) was implicitly zero).
	pbuf := bufpool.GetZeroed(total)
	tr := &transfer{buf: pbuf.B, pbuf: pbuf, burst: make(chan struct{}, 2)}
	received := copy(tr.buf, cmd.Data)
	if received >= total {
		return tr.buf, tr, nil
	}

	ss.xferMu.Lock()
	ss.xfers[cmd.ITT] = tr
	ss.xferMu.Unlock()
	defer func() {
		ss.xferMu.Lock()
		delete(ss.xfers, cmd.ITT)
		ss.xferMu.Unlock()
	}()

	maxBurst := ss.params.MaxBurstLength
	if maxBurst <= 0 {
		maxBurst = 256 * 1024
	}
	var r2tsn uint32
	for received < total {
		desired := total - received
		if desired > maxBurst {
			desired = maxBurst
		}
		r2t := &iscsi.R2T{
			ITT:           cmd.ITT,
			TTT:           cmd.ITT,
			StatSN:        ss.statSN.Load(),
			ExpCmdSN:      ss.expCmdSN(),
			MaxCmdSN:      ss.maxCmdSN(),
			R2TSN:         r2tsn,
			BufferOffset:  uint32(received),
			DesiredLength: uint32(desired),
		}
		if err := ss.sendMsg(r2t); err != nil {
			return nil, tr, nil
		}
		select {
		case <-tr.burst:
		case <-ss.done:
			return nil, tr, nil
		}
		received += desired
		r2tsn++
	}
	return tr.buf, tr, nil
}

// handleDataOut copies a solicited data segment into its transfer buffer
// and signals burst completion on the Final PDU.
func (ss *session) handleDataOut(d *iscsi.DataOut) {
	ss.xferMu.Lock()
	tr := ss.xfers[d.ITT]
	ss.xferMu.Unlock()
	if tr == nil {
		return
	}
	tr.mu.Lock()
	off := int(d.BufferOffset)
	if off >= 0 && off+len(d.Data) <= len(tr.buf) {
		copy(tr.buf[off:], d.Data)
	}
	tr.mu.Unlock()
	if d.Final {
		select {
		case tr.burst <- struct{}{}:
		default:
		}
	}
}

// execute runs the decoded CDB against the session device. It returns
// Data-In payload for read-direction commands, or a sense error. When the
// payload is pooled (the block-read fast path) the second return carries the
// buffer for the caller to release after the Data-In sequence is sent.
func (ss *session) execute(cdb *scsi.CDB, writeBuf []byte) ([]byte, *bufpool.Buf, *scsi.Sense) {
	dev := ss.dev
	bs := dev.BlockSize()
	switch cdb.Op {
	case scsi.OpRead10, scsi.OpRead16:
		if cdb.LBA+uint64(cdb.Blocks) > dev.Blocks() {
			return nil, nil, scsi.IllegalRequest(scsi.ASCLBAOutOfRange)
		}
		pooled := bufpool.Get(int(cdb.Blocks) * bs)
		if len(pooled.B) > 0 {
			if err := dev.ReadAt(pooled.B, cdb.LBA); err != nil {
				pooled.Release()
				return nil, nil, senseFor(err, false, cdb.LBA)
			}
		}
		return pooled.B, pooled, nil
	case scsi.OpWrite10, scsi.OpWrite16:
		if cdb.LBA+uint64(cdb.Blocks) > dev.Blocks() {
			return nil, nil, scsi.IllegalRequest(scsi.ASCLBAOutOfRange)
		}
		if int(cdb.Blocks)*bs != len(writeBuf) {
			return nil, nil, scsi.IllegalRequest(scsi.ASCInvalidFieldInCDB)
		}
		if len(writeBuf) > 0 {
			if err := dev.WriteAt(writeBuf, cdb.LBA); err != nil {
				return nil, nil, senseFor(err, true, cdb.LBA)
			}
		}
		return nil, nil, nil
	case scsi.OpReadCapacity10:
		c := scsi.Capacity{LastLBA: dev.Blocks() - 1, BlockSize: uint32(bs)}
		return c.EncodeCapacity10(), nil, nil
	case scsi.OpReadCapacity16:
		c := scsi.Capacity{LastLBA: dev.Blocks() - 1, BlockSize: uint32(bs)}
		return clampAlloc(c.EncodeCapacity16(), cdb.AllocationLength), nil, nil
	case scsi.OpInquiry:
		return clampAlloc(ss.srv.inquiry.Encode(), cdb.AllocationLength), nil, nil
	case scsi.OpTestUnitReady:
		return nil, nil, nil
	case scsi.OpSyncCache10:
		if err := dev.Flush(); err != nil {
			return nil, nil, senseFor(err, true, uint64(0))
		}
		return nil, nil, nil
	default:
		return nil, nil, scsi.IllegalRequest(scsi.ASCInvalidOpcode)
	}
}

// clampAlloc truncates response data to the CDB's allocation length.
func clampAlloc(data []byte, alloc uint32) []byte {
	if alloc > 0 && int(alloc) < len(data) {
		return data[:alloc]
	}
	return data
}

// senseFor maps a device error to sense data, passing through sense the
// device itself raised.
func senseFor(err error, write bool, lba uint64) *scsi.Sense {
	var sense *scsi.Sense
	if errors.As(err, &sense) {
		return sense
	}
	if write {
		return scsi.MediumError(scsi.ASCWriteError, uint32(lba))
	}
	return scsi.MediumError(scsi.ASCUnrecoveredReadError, uint32(lba))
}

// sendDataIn streams read data in negotiated-size segments, collapsing
// status into the final Data-In (phase collapse).
func (ss *session) sendDataIn(itt uint32, data []byte) {
	maxSeg := ss.params.MaxRecvDataSegmentLength
	if maxSeg <= 0 {
		maxSeg = 8192
	}
	din := iscsi.DataIn{ITT: itt, TTT: 0xFFFFFFFF}
	for off := 0; off < len(data); {
		end := off + maxSeg
		if end > len(data) {
			end = len(data)
		}
		last := end == len(data)
		din.Final = last
		din.ExpCmdSN = ss.expCmdSN()
		din.MaxCmdSN = ss.maxCmdSN()
		din.BufferOffset = uint32(off)
		din.Data = data[off:end]
		if last {
			din.StatusPresent = true
			din.Status = byte(scsi.StatusGood)
			din.StatSN = ss.statSN.Add(1)
		}
		if err := ss.sendMsg(&din); err != nil {
			return
		}
		din.DataSN++
		off = end
	}
}

// sendResponse sends a SCSI Response carrying GOOD status or CHECK
// CONDITION with the given sense.
func (ss *session) sendResponse(itt uint32, sense *scsi.Sense) {
	resp := &iscsi.SCSIResponse{
		ITT:      itt,
		Response: iscsi.RespCompleted,
		Status:   byte(scsi.StatusGood),
		StatSN:   ss.statSN.Add(1),
		ExpCmdSN: ss.expCmdSN(),
		MaxCmdSN: ss.maxCmdSN(),
	}
	if sense != nil {
		resp.Status = byte(scsi.StatusCheckCondition)
		resp.Sense = sense.Encode()
	}
	if err := ss.sendMsg(resp); err != nil {
		ss.srv.logf("target: session %q: send response: %v", ss.iqn, err)
	}
}

// handleText answers a SendTargets discovery request with the exported
// target names.
func (ss *session) handleText(req *iscsi.PDU) error {
	names := ss.srv.targetNames()
	sort.Strings(names)
	var data []byte
	for _, iqn := range names {
		data = append(data, "TargetName="...)
		data = append(data, iqn...)
		data = append(data, 0)
	}
	resp := &iscsi.PDU{}
	resp.SetOp(iscsi.OpTextResp)
	resp.BHS[1] = 0x80 // final
	resp.SetITT(req.ITT())
	binary.BigEndian.PutUint32(resp.BHS[20:24], 0xFFFFFFFF) // TTT
	binary.BigEndian.PutUint32(resp.BHS[24:28], ss.statSN.Load())
	binary.BigEndian.PutUint32(resp.BHS[28:32], ss.expCmdSN())
	binary.BigEndian.PutUint32(resp.BHS[32:36], ss.maxCmdSN())
	resp.Data = data
	resp.BHS[5] = byte(len(data) >> 16)
	resp.BHS[6] = byte(len(data) >> 8)
	resp.BHS[7] = byte(len(data))
	return ss.send(resp)
}
