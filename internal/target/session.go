package target

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/blockdev"
	"repro/internal/bufpool"
	"repro/internal/iscsi"
	"repro/internal/obs"
	"repro/internal/scsi"
	"repro/internal/xerr"
)

// senseBusy is a pointer-identity marker, not real sense data: senseFor
// returns it for overload-classed device errors (a full write-back journal,
// a replicate box over its admission watermark) and sendResponse turns it
// into SCSI BUSY status with no sense — the standard "task set full, retry
// later" signal — instead of CHECK CONDITION, so initiators can tell
// backpressure from medium failure.
var senseBusy = &scsi.Sense{}

// maxTransfer bounds a single command's data transfer so a corrupt
// ExpectedDataTransferLength cannot allocate unbounded memory.
const maxTransfer = 64 << 20

// transfer tracks one in-progress R2T-solicited write. buf is pooled staging
// owned by the command goroutine, which releases it once the device write
// completes.
type transfer struct {
	mu   sync.Mutex
	buf  []byte
	pbuf *bufpool.Buf
	// burst is signaled when the Final Data-Out of a solicited burst
	// arrives.
	burst chan struct{}
}

// release detaches the staging buffer (so a straggling Data-Out can no
// longer copy into it — handleDataOut copies under tr.mu) and returns it to
// the pool. Nil-safe for paths that never created a transfer.
func (tr *transfer) release() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	pb := tr.pbuf
	tr.buf, tr.pbuf = nil, nil
	tr.mu.Unlock()
	pb.Release()
}

// sessionKey identifies a session for MC/S connection joining and session
// reinstatement: RFC 7143 names a session by the initiator, its ISID, and the
// target it logged into.
type sessionKey struct {
	initiator string
	isid      [6]byte
	iqn       string
}

// session is one iSCSI session: the negotiated operational parameters, the
// device, and the task state shared by the session's connections. With MC/S
// a session carries up to the negotiated MaxConnections connections; the
// CmdSN window is session-wide while StatSN and sends are per connection.
type session struct {
	srv    *Server
	params iscsi.Params
	dev    blockdev.Device
	ownDev bool
	iqn    string
	key    sessionKey
	tsih   uint16

	lastCmdSN atomic.Uint32
	inflight  atomic.Int32

	xferMu sync.Mutex
	xfers  map[uint32]*transfer

	cmdWG sync.WaitGroup

	connMu sync.Mutex
	conns  map[uint16]*sessConn
	ended  bool

	// done is closed when the session ends, releasing command goroutines
	// blocked on data solicitation.
	done chan struct{}
}

// sessConn is one connection of a session. Commands keep connection
// allegiance: R2Ts, Data-In, and the response for a command go out on the
// connection that delivered it, with that connection's StatSN.
type sessConn struct {
	ss   *session
	conn net.Conn
	cid  uint16

	sendMu  sync.Mutex
	wirePDU iscsi.PDU // reusable encode target for outgoing PDUs, guarded by sendMu
	statSN  atomic.Uint32
}

// serveConn runs one connection: login (creating or joining a session),
// full-feature phase, teardown.
func (s *Server) serveConn(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	sc, err := s.login(conn)
	if err != nil {
		s.logf("target: login on %v failed: %v", conn.RemoteAddr(), err)
		return
	}
	sc.run()
	sc.ss.detach(sc)
}

// login performs the single-round login exchange the initiator drives. A
// TSIH of zero creates a new session (reinstating any prior session with the
// same key); a non-zero TSIH joins an existing session as an MC/S connection.
func (s *Server) login(conn net.Conn) (*sessConn, error) {
	pdu, err := iscsi.ReadPDU(conn)
	if err != nil {
		return nil, fmt.Errorf("read login: %w", err)
	}
	req, err := iscsi.ParseLoginRequest(pdu)
	if err != nil {
		return nil, err
	}
	iqn := req.Pairs[iscsi.KeyTargetName]
	key := sessionKey{initiator: req.Pairs[iscsi.KeyInitiatorName], isid: req.ISID, iqn: iqn}
	reject := func(cause error) (*sessConn, error) {
		resp := &iscsi.LoginResponse{
			Transit:     true,
			CSG:         iscsi.StageOperational,
			NSG:         iscsi.StageFullFeature,
			ISID:        req.ISID,
			ITT:         req.ITT,
			StatSN:      1,
			ExpCmdSN:    req.CmdSN + 1,
			MaxCmdSN:    req.CmdSN + 1,
			StatusClass: iscsi.LoginStatusInitiatorErr,
		}
		// The refusal's wire status advertises the cause's error class so
		// the initiator spends its redial budget only where retrying can
		// help: terminal refusals (a draining relay) say "gone, don't
		// redial", overload says "retry after backoff".
		switch xerr.Classify(cause) {
		case xerr.Terminal:
			resp.StatusDetail = iscsi.LoginDetailTargetRemoved
		case xerr.Overload:
			resp.StatusClass = iscsi.LoginStatusTargetErr
			resp.StatusDetail = iscsi.LoginDetailOutOfResources
		case xerr.Transient:
			resp.StatusClass = iscsi.LoginStatusTargetErr
			resp.StatusDetail = iscsi.LoginDetailServiceUnavailable
		}
		if _, werr := resp.Encode().WriteTo(conn); werr != nil && cause == nil {
			cause = werr
		}
		return nil, cause
	}

	if req.TSIH != 0 {
		// MC/S join: attach this connection to the leading login's session.
		s.sessMu.Lock()
		ss := s.sessions[key]
		s.sessMu.Unlock()
		if ss == nil || ss.tsih != req.TSIH {
			return reject(fmt.Errorf("target: no session with TSIH %d for %q", req.TSIH, iqn))
		}
		sc, err := ss.attach(conn, req.CID)
		if err != nil {
			return reject(err)
		}
		resp := &iscsi.LoginResponse{
			Transit:     true,
			CSG:         iscsi.StageOperational,
			NSG:         iscsi.StageFullFeature,
			ISID:        req.ISID,
			TSIH:        ss.tsih,
			ITT:         req.ITT,
			StatSN:      1,
			ExpCmdSN:    ss.expCmdSN(),
			MaxCmdSN:    ss.maxCmdSN(),
			StatusClass: iscsi.LoginStatusSuccess,
			Pairs:       ss.params.Pairs(),
		}
		if _, err := resp.Encode().WriteTo(conn); err != nil {
			ss.detach(sc)
			return nil, fmt.Errorf("send login response: %w", err)
		}
		s.obsReg.Counter("iscsi.logins").Inc()
		return sc, nil
	}

	dev, owned, err := s.lookup(iqn, conn)
	if err != nil {
		return reject(err)
	}
	params, err := s.params.Negotiate(req.Pairs)
	if err != nil {
		if owned {
			_ = dev.Close()
		}
		return reject(err)
	}
	ss := &session{
		srv:    s,
		params: params,
		dev:    dev,
		ownDev: owned,
		iqn:    iqn,
		key:    key,
		xfers:  make(map[uint32]*transfer),
		conns:  make(map[uint16]*sessConn),
		done:   make(chan struct{}),
	}
	ss.lastCmdSN.Store(req.CmdSN)
	sc, err := ss.attach(conn, req.CID)
	if err != nil {
		if owned {
			_ = dev.Close()
		}
		return reject(err)
	}
	// Register under the session key, assigning the TSIH. A leading login
	// that collides with a live session reinstates it: the old session's
	// connections are closed and the new session takes the key.
	s.sessMu.Lock()
	old := s.sessions[key]
	s.tsihSeq++
	if s.tsihSeq == 0 {
		s.tsihSeq = 1
	}
	ss.tsih = s.tsihSeq
	s.sessions[key] = ss
	s.sessMu.Unlock()
	if old != nil {
		old.abort()
	}
	resp := &iscsi.LoginResponse{
		Transit:     true,
		CSG:         iscsi.StageOperational,
		NSG:         iscsi.StageFullFeature,
		ISID:        req.ISID,
		TSIH:        ss.tsih,
		ITT:         req.ITT,
		StatSN:      1,
		ExpCmdSN:    req.CmdSN + 1,
		MaxCmdSN:    req.CmdSN + 65,
		StatusClass: iscsi.LoginStatusSuccess,
		Pairs:       params.Pairs(),
	}
	if _, err := resp.Encode().WriteTo(conn); err != nil {
		ss.detach(sc)
		return nil, fmt.Errorf("send login response: %w", err)
	}
	if s.loginHook != nil {
		info := LoginInfo{
			TargetIQN:    iqn,
			InitiatorIQN: req.Pairs[iscsi.KeyInitiatorName],
			AttachedVM:   req.Pairs[iscsi.KeyAttachedVM],
			RemoteAddr:   conn.RemoteAddr(),
		}
		if v := req.Pairs[iscsi.KeySourcePort]; v != "" {
			if port, err := strconv.Atoi(v); err == nil {
				info.SourcePort = port
			}
		}
		s.loginHook(info)
	}
	s.obsReg.Counter("iscsi.logins").Inc()
	return sc, nil
}

// attach adds a connection to the session, enforcing the negotiated
// MaxConnections bound and CID uniqueness.
func (ss *session) attach(conn net.Conn, cid uint16) (*sessConn, error) {
	ss.connMu.Lock()
	defer ss.connMu.Unlock()
	if ss.ended {
		return nil, errors.New("target: session ended")
	}
	if len(ss.conns) >= ss.params.EffectiveMaxConnections() {
		return nil, fmt.Errorf("target: session at MaxConnections %d", ss.params.EffectiveMaxConnections())
	}
	if _, dup := ss.conns[cid]; dup {
		return nil, fmt.Errorf("target: CID %d already in session", cid)
	}
	sc := &sessConn{ss: ss, conn: conn, cid: cid}
	sc.statSN.Store(1)
	ss.conns[cid] = sc
	return sc, nil
}

// detach removes a connection; the last connection out tears the session
// down (task abort, device close, registry removal).
func (ss *session) detach(sc *sessConn) {
	ss.connMu.Lock()
	delete(ss.conns, sc.cid)
	last := len(ss.conns) == 0 && !ss.ended
	if last {
		ss.ended = true
	}
	ss.connMu.Unlock()
	if !last {
		return
	}
	ss.srv.dropSession(ss)
	close(ss.done)
	ss.cmdWG.Wait()
	if ss.ownDev {
		if err := ss.dev.Close(); err != nil {
			ss.srv.logf("target: session %q: close device: %v", ss.iqn, err)
		}
	}
}

// abort closes every connection of the session (reinstatement); the per-
// connection serve goroutines then detach and the last one cleans up.
func (ss *session) abort() {
	ss.connMu.Lock()
	conns := make([]*sessConn, 0, len(ss.conns))
	for _, sc := range ss.conns {
		conns = append(conns, sc)
	}
	ss.connMu.Unlock()
	for _, sc := range conns {
		_ = sc.conn.Close()
	}
}

// run is the full-feature phase loop for one connection. It returns when the
// connection drops, the initiator logs out, or the server closes.
func (sc *sessConn) run() {
	ss := sc.ss
	pr := iscsi.NewPDUReader(sc.conn)
	defer pr.Close()
	for {
		pdu, err := pr.ReadPDU()
		if err != nil {
			return
		}
		switch pdu.Op() {
		case iscsi.OpSCSICommand:
			cmd, err := iscsi.ParseSCSICommand(pdu)
			if err != nil {
				return
			}
			ss.noteCmdSN(cmd.CmdSN)
			// The command goroutine owns the PDU from here: cmd.Data (the
			// immediate write data) aliases its pooled segment, which is
			// released once that data is staged into the transfer buffer.
			sc.startCommand(cmd, pdu, pr.Buffered() == 0)
		case iscsi.OpSCSIDataOut:
			dout, err := iscsi.ParseDataOut(pdu)
			if err != nil {
				return
			}
			ss.handleDataOut(dout)
			pdu.Release()
		case iscsi.OpNopOut:
			nop, err := iscsi.ParseNopOut(pdu)
			if err != nil {
				return
			}
			pdu.Release()
			ss.noteCmdSN(nop.CmdSN)
			_ = sc.sendMsg(&iscsi.NopIn{
				ITT:      nop.ITT,
				TTT:      0xFFFFFFFF,
				StatSN:   sc.statSN.Load(),
				ExpCmdSN: ss.expCmdSN(),
				MaxCmdSN: ss.maxCmdSN(),
			})
		case iscsi.OpTextReq:
			err := sc.handleText(pdu)
			pdu.Release()
			if err != nil {
				return
			}
		case iscsi.OpLogoutReq:
			req, err := iscsi.ParseLogoutRequest(pdu)
			if err != nil {
				return
			}
			ss.noteCmdSN(req.CmdSN)
			// Let in-flight commands complete before acknowledging.
			ss.cmdWG.Wait()
			_ = sc.send((&iscsi.LogoutResponse{
				ITT:      req.ITT,
				StatSN:   sc.statSN.Add(1),
				ExpCmdSN: ss.expCmdSN(),
				MaxCmdSN: ss.maxCmdSN(),
			}).Encode())
			return
		default:
			ss.srv.logf("target: session %q: unsupported PDU %v", ss.iqn, pdu.Op())
			_ = sc.send((&iscsi.Reject{
				Reason: iscsi.RejectCommandNotSupported,
				StatSN: sc.statSN.Load(),
				Header: append([]byte(nil), pdu.BHS[:]...),
			}).Encode())
			return
		}
	}
}

func (ss *session) noteCmdSN(sn uint32) {
	for {
		cur := ss.lastCmdSN.Load()
		if !iscsi.SNAfter(sn, cur) || ss.lastCmdSN.CompareAndSwap(cur, sn) {
			return
		}
	}
}

func (ss *session) expCmdSN() uint32 { return ss.lastCmdSN.Load() + 1 }
func (ss *session) maxCmdSN() uint32 { return ss.lastCmdSN.Load() + 65 }

// send serializes one PDU to the connection under the connection send lock.
func (sc *sessConn) send(p *iscsi.PDU) error {
	sc.sendMu.Lock()
	defer sc.sendMu.Unlock()
	_, err := p.WriteTo(sc.conn)
	return err
}

// pduEncoder is a typed message that can encode into a caller-owned PDU.
type pduEncoder interface {
	EncodeInto(*iscsi.PDU) *iscsi.PDU
}

// sendMsg serializes m into the connection's reusable wire PDU under sendMu,
// so steady-state responses allocate nothing for framing.
func (sc *sessConn) sendMsg(m pduEncoder) error {
	sc.sendMu.Lock()
	defer sc.sendMu.Unlock()
	_, err := m.EncodeInto(&sc.wirePDU).WriteTo(sc.conn)
	return err
}

// startCommand dispatches a SCSI command. On servers opted into inline
// execution: when nothing else is in flight, no further input is queued on
// this connection, and the command is a read or fully-immediate write, it
// runs inline in the read loop — the goroutine hand-off (two scheduler
// wakeups) dominates small-I/O latency on pipe fabrics. Commands that need
// R2Ts, control commands, and pipelined arrivals get their own goroutine so
// the loop stays free to deliver Data-Out and serve the rest of the queue.
func (sc *sessConn) startCommand(cmd *iscsi.SCSICommand, pdu *iscsi.PDU, quiet bool) {
	ss := sc.ss
	solo := ss.srv.inlineExec && quiet && ss.inflight.Load() == 0 &&
		(cmd.Read || (cmd.Write && len(cmd.Data) >= int(cmd.ExpectedDataTransferLength)))
	if solo {
		ss.inflight.Add(1)
		sc.runCommand(cmd, pdu)
		ss.inflight.Add(-1)
		return
	}
	ss.inflight.Add(1)
	ss.cmdWG.Add(1)
	go func() {
		defer ss.cmdWG.Done()
		defer ss.inflight.Add(-1)
		sc.runCommand(cmd, pdu)
	}()
}

// runCommand executes one command end to end: data solicitation for
// writes, device execution, Data-In or response with status.
func (sc *sessConn) runCommand(cmd *iscsi.SCSICommand, pdu *iscsi.PDU) {
	ss := sc.ss
	cdb, err := scsi.Decode(cmd.CDB[:])
	if err != nil {
		pdu.Release()
		var unsup *scsi.UnsupportedOpError
		if errors.As(err, &unsup) {
			sc.sendResponse(cmd.ITT, scsi.IllegalRequest(scsi.ASCInvalidOpcode))
		} else {
			sc.sendResponse(cmd.ITT, scsi.IllegalRequest(scsi.ASCInvalidFieldInCDB))
		}
		return
	}

	// The command's trace context (if any) travels out of band on the
	// connection, keyed by task tag. Binding it to this goroutine links
	// every downstream span — the stage span below, a relay's service
	// device stack, the onward forward session — to the upstream command.
	if tbl := obs.CarrierOf(sc.conn); tbl != nil {
		if tsc, ok := tbl.Take(cmd.ITT); ok {
			prev, had := obs.Bind(tsc)
			defer obs.Restore(prev, had)
		}
	}

	sp := ss.srv.obsReg.StartTraced(ss.srv.obsStage, strings.TrimPrefix(opSuffix(cdb), "."), int(cmd.ExpectedDataTransferLength))
	defer sp.End()

	var writeBuf []byte
	if cmd.Write {
		var sense *scsi.Sense
		var tr *transfer
		writeBuf, tr, sense = sc.collectWriteData(cmd, pdu)
		pdu.Release() // immediate data now staged (or owned by) the transfer
		defer tr.release()
		if sense != nil {
			sc.sendResponse(cmd.ITT, sense)
			return
		}
		if writeBuf == nil { // session ended mid-transfer
			return
		}
	} else {
		pdu.Release() // non-write commands carry no retained data
	}

	data, pooled, sense := ss.execute(cdb, writeBuf)
	defer pooled.Release()
	if sense != nil {
		sc.sendResponse(cmd.ITT, sense)
		return
	}
	if cmd.Read && len(data) > 0 {
		sc.sendDataIn(cmd.ITT, data)
		return
	}
	sc.sendResponse(cmd.ITT, nil)
}

// opSuffix classifies a CDB for stage-histogram naming.
func opSuffix(cdb *scsi.CDB) string {
	switch {
	case cdb.IsWrite():
		return ".write"
	case cdb.Op == scsi.OpRead10 || cdb.Op == scsi.OpRead16:
		return ".read"
	default:
		return ".ctl"
	}
}

// collectWriteData assembles the command's full data transfer: immediate
// data from the command PDU plus R2T-solicited bursts. When the command
// arrived fully immediate, the transfer takes ownership of the PDU's pooled
// data segment instead of staging a copy — the wire buffer flows through to
// the device write untouched. The caller must call release on the returned
// transfer once the device write completes. A nil data slice with nil sense
// means the session was torn down mid-transfer.
func (sc *sessConn) collectWriteData(cmd *iscsi.SCSICommand, pdu *iscsi.PDU) ([]byte, *transfer, *scsi.Sense) {
	ss := sc.ss
	total := int(cmd.ExpectedDataTransferLength)
	if total > maxTransfer {
		return nil, nil, scsi.IllegalRequest(scsi.ASCInvalidFieldInCDB)
	}
	if len(cmd.Data) >= total {
		if data, buf := pdu.TakeData(); buf != nil {
			tr := &transfer{buf: data[:total], pbuf: buf}
			return tr.buf, tr, nil
		}
	}
	// Zeroed: a peer that skips a solicited segment must not leak stale
	// pool bytes into the device write (make([]byte) was implicitly zero).
	pbuf := bufpool.GetZeroed(total)
	tr := &transfer{buf: pbuf.B, pbuf: pbuf, burst: make(chan struct{}, 2)}
	received := copy(tr.buf, cmd.Data)
	if received >= total {
		return tr.buf, tr, nil
	}

	ss.xferMu.Lock()
	ss.xfers[cmd.ITT] = tr
	ss.xferMu.Unlock()
	defer func() {
		ss.xferMu.Lock()
		delete(ss.xfers, cmd.ITT)
		ss.xferMu.Unlock()
	}()

	maxBurst := ss.params.MaxBurstLength
	if maxBurst <= 0 {
		maxBurst = 256 * 1024
	}
	var r2tsn uint32
	for received < total {
		desired := total - received
		if desired > maxBurst {
			desired = maxBurst
		}
		r2t := &iscsi.R2T{
			ITT:           cmd.ITT,
			TTT:           cmd.ITT,
			StatSN:        sc.statSN.Load(),
			ExpCmdSN:      ss.expCmdSN(),
			MaxCmdSN:      ss.maxCmdSN(),
			R2TSN:         r2tsn,
			BufferOffset:  uint32(received),
			DesiredLength: uint32(desired),
		}
		if err := sc.sendMsg(r2t); err != nil {
			return nil, tr, nil
		}
		select {
		case <-tr.burst:
		case <-ss.done:
			return nil, tr, nil
		}
		received += desired
		r2tsn++
	}
	return tr.buf, tr, nil
}

// handleDataOut copies a solicited data segment into its transfer buffer
// and signals burst completion on the Final PDU.
func (ss *session) handleDataOut(d *iscsi.DataOut) {
	ss.xferMu.Lock()
	tr := ss.xfers[d.ITT]
	ss.xferMu.Unlock()
	if tr == nil {
		return
	}
	tr.mu.Lock()
	off := int(d.BufferOffset)
	if off >= 0 && off+len(d.Data) <= len(tr.buf) {
		copy(tr.buf[off:], d.Data)
	}
	tr.mu.Unlock()
	if d.Final {
		select {
		case tr.burst <- struct{}{}:
		default:
		}
	}
}

// execute runs the decoded CDB against the session device. It returns
// Data-In payload for read-direction commands, or a sense error. When the
// payload is pooled (the block-read fast path) the second return carries the
// buffer for the caller to release after the Data-In sequence is sent.
func (ss *session) execute(cdb *scsi.CDB, writeBuf []byte) ([]byte, *bufpool.Buf, *scsi.Sense) {
	dev := ss.dev
	bs := dev.BlockSize()
	switch cdb.Op {
	case scsi.OpRead10, scsi.OpRead16:
		if cdb.LBA+uint64(cdb.Blocks) > dev.Blocks() {
			return nil, nil, scsi.IllegalRequest(scsi.ASCLBAOutOfRange)
		}
		pooled := bufpool.Get(int(cdb.Blocks) * bs)
		if len(pooled.B) > 0 {
			if err := dev.ReadAt(pooled.B, cdb.LBA); err != nil {
				pooled.Release()
				return nil, nil, senseFor(err, false, cdb.LBA)
			}
		}
		return pooled.B, pooled, nil
	case scsi.OpWrite10, scsi.OpWrite16:
		if cdb.LBA+uint64(cdb.Blocks) > dev.Blocks() {
			return nil, nil, scsi.IllegalRequest(scsi.ASCLBAOutOfRange)
		}
		if int(cdb.Blocks)*bs != len(writeBuf) {
			return nil, nil, scsi.IllegalRequest(scsi.ASCInvalidFieldInCDB)
		}
		if len(writeBuf) > 0 {
			if err := dev.WriteAt(writeBuf, cdb.LBA); err != nil {
				return nil, nil, senseFor(err, true, cdb.LBA)
			}
		}
		return nil, nil, nil
	case scsi.OpReadCapacity10:
		c := scsi.Capacity{LastLBA: dev.Blocks() - 1, BlockSize: uint32(bs)}
		return c.EncodeCapacity10(), nil, nil
	case scsi.OpReadCapacity16:
		c := scsi.Capacity{LastLBA: dev.Blocks() - 1, BlockSize: uint32(bs)}
		return clampAlloc(c.EncodeCapacity16(), cdb.AllocationLength), nil, nil
	case scsi.OpInquiry:
		return clampAlloc(ss.srv.inquiry.Encode(), cdb.AllocationLength), nil, nil
	case scsi.OpTestUnitReady:
		return nil, nil, nil
	case scsi.OpSyncCache10:
		if err := dev.Flush(); err != nil {
			return nil, nil, senseFor(err, true, uint64(0))
		}
		return nil, nil, nil
	default:
		return nil, nil, scsi.IllegalRequest(scsi.ASCInvalidOpcode)
	}
}

// clampAlloc truncates response data to the CDB's allocation length.
func clampAlloc(data []byte, alloc uint32) []byte {
	if alloc > 0 && int(alloc) < len(data) {
		return data[:alloc]
	}
	return data
}

// senseFor maps a device error to sense data, passing through sense the
// device itself raised. Overload-classed errors map to the senseBusy marker
// (SCSI BUSY on the wire) rather than a medium error: the data is intact,
// the device just wants the initiator to retry later.
func senseFor(err error, write bool, lba uint64) *scsi.Sense {
	var sense *scsi.Sense
	if errors.As(err, &sense) {
		return sense
	}
	if xerr.Classify(err) == xerr.Overload {
		return senseBusy
	}
	if write {
		return scsi.MediumError(scsi.ASCWriteError, uint32(lba))
	}
	return scsi.MediumError(scsi.ASCUnrecoveredReadError, uint32(lba))
}

// sendDataIn streams read data in negotiated-size segments, collapsing
// status into the final Data-In (phase collapse). Multi-segment sequences
// are encoded back-to-back and leave in a single vectored write instead of
// one wire rendezvous per segment.
func (sc *sessConn) sendDataIn(itt uint32, data []byte) {
	ss := sc.ss
	maxSeg := ss.params.MaxRecvDataSegmentLength
	if maxSeg <= 0 {
		maxSeg = 8192
	}
	nseg := (len(data) + maxSeg - 1) / maxSeg
	din := iscsi.DataIn{ITT: itt, TTT: 0xFFFFFFFF}
	if nseg == 1 {
		din.Final = true
		din.ExpCmdSN = ss.expCmdSN()
		din.MaxCmdSN = ss.maxCmdSN()
		din.Data = data
		din.StatusPresent = true
		din.Status = byte(scsi.StatusGood)
		din.StatSN = sc.statSN.Add(1)
		_ = sc.sendMsg(&din)
		return
	}
	pdus := make([]iscsi.PDU, nseg)
	for i, off := 0, 0; off < len(data); i++ {
		end := off + maxSeg
		if end > len(data) {
			end = len(data)
		}
		last := end == len(data)
		din.Final = last
		din.ExpCmdSN = ss.expCmdSN()
		din.MaxCmdSN = ss.maxCmdSN()
		din.BufferOffset = uint32(off)
		din.Data = data[off:end]
		if last {
			din.StatusPresent = true
			din.Status = byte(scsi.StatusGood)
			din.StatSN = sc.statSN.Add(1)
		}
		din.EncodeInto(&pdus[i])
		din.DataSN++
		off = end
	}
	sc.sendMu.Lock()
	_, err := iscsi.WritePDUs(sc.conn, pdus)
	sc.sendMu.Unlock()
	if err != nil {
		return
	}
}

// sendResponse sends a SCSI Response carrying GOOD status, BUSY (for the
// senseBusy overload marker), or CHECK CONDITION with the given sense.
func (sc *sessConn) sendResponse(itt uint32, sense *scsi.Sense) {
	ss := sc.ss
	resp := &iscsi.SCSIResponse{
		ITT:      itt,
		Response: iscsi.RespCompleted,
		Status:   byte(scsi.StatusGood),
		StatSN:   sc.statSN.Add(1),
		ExpCmdSN: ss.expCmdSN(),
		MaxCmdSN: ss.maxCmdSN(),
	}
	if sense == senseBusy {
		resp.Status = byte(scsi.StatusBusy)
	} else if sense != nil {
		resp.Status = byte(scsi.StatusCheckCondition)
		resp.Sense = sense.Encode()
	}
	if err := sc.sendMsg(resp); err != nil {
		ss.srv.logf("target: session %q: send response: %v", ss.iqn, err)
	}
}

// handleText answers a SendTargets discovery request with the exported
// target names.
func (sc *sessConn) handleText(req *iscsi.PDU) error {
	ss := sc.ss
	names := ss.srv.targetNames()
	sort.Strings(names)
	var data []byte
	for _, iqn := range names {
		data = append(data, "TargetName="...)
		data = append(data, iqn...)
		data = append(data, 0)
	}
	resp := &iscsi.PDU{}
	resp.SetOp(iscsi.OpTextResp)
	resp.BHS[1] = 0x80 // final
	resp.SetITT(req.ITT())
	binary.BigEndian.PutUint32(resp.BHS[20:24], 0xFFFFFFFF) // TTT
	binary.BigEndian.PutUint32(resp.BHS[24:28], sc.statSN.Load())
	binary.BigEndian.PutUint32(resp.BHS[28:32], ss.expCmdSN())
	binary.BigEndian.PutUint32(resp.BHS[32:36], ss.maxCmdSN())
	resp.Data = data
	resp.BHS[5] = byte(len(data) >> 16)
	resp.BHS[6] = byte(len(data) >> 8)
	resp.BHS[7] = byte(len(data))
	return sc.send(resp)
}
