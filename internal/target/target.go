// Package target implements the iSCSI target server of the StorM test bed:
// the back-end volume service endpoint (tgtd in the paper's prototype) and
// the pseudo-server half of every middle-box relay. It speaks the protocol
// subset the repo's initiator uses — login negotiation with the StorM
// source-port exposure, tag-multiplexed commands, immediate data,
// R2T-solicited Data-Out, and phase-collapse Data-In — and serves each
// logical unit from a blockdev.Device.
package target

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"repro/internal/blockdev"
	"repro/internal/iscsi"
	"repro/internal/obs"
	"repro/internal/scsi"
)

// LoginInfo describes an accepted login, passed to the login hook. The
// SourcePort is the StorM extension: the initiator-reported TCP source
// port that lets the platform attribute the connection to a VM.
type LoginInfo struct {
	TargetIQN    string
	InitiatorIQN string
	// AttachedVM is the VM name from the StorM AttachedVM key ("" when the
	// initiator did not send one).
	AttachedVM string
	// SourcePort is the initiator's TCP source port from the StorM
	// SourcePort key (0 when absent).
	SourcePort int
	// RemoteAddr is the connection's network address.
	RemoteAddr net.Addr
}

// Resolver maps a requested target IQN to a device for one session. The
// second result reports whether the server owns the device and must close
// it when the session ends (the relay's per-session service stacks);
// statically added targets are shared and never closed by the server.
type Resolver func(iqn string, conn net.Conn) (blockdev.Device, bool, error)

// Option configures a Server.
type Option func(*Server)

// WithResolver installs a per-session device resolver, consulted before
// the static target table.
func WithResolver(r Resolver) Option {
	return func(s *Server) { s.resolver = r }
}

// WithLoginHook installs a callback fired after each successful login.
func WithLoginHook(h func(LoginInfo)) Option {
	return func(s *Server) { s.loginHook = h }
}

// WithLogger installs a logger for session-level events (nil disables).
func WithLogger(l *log.Logger) Option {
	return func(s *Server) { s.logger = l }
}

// WithObs records a per-command stage span ("stage.<stage>.read/.write/
// .ctl") into reg for every SCSI command this server executes. A nil
// registry disables tracing.
func WithObs(reg *obs.Registry, stage string) Option {
	return func(s *Server) {
		s.obsReg = reg
		s.obsStage = stage
	}
}

// WithInquiry overrides the standard INQUIRY data served for every LUN.
func WithInquiry(d scsi.InquiryData) Option {
	return func(s *Server) { s.inquiry = d }
}

// WithParams overrides the operational parameters the server offers during
// login negotiation (burst windows, immediate data, MC/S connection bound).
// Each session still converges on the RFC result functions against what the
// initiator offers.
func WithParams(p iscsi.Params) Option {
	return func(s *Server) { s.params = p }
}

// WithInlineExec lets a quiet connection execute reads and fully-immediate
// writes inline in its read loop instead of a per-command goroutine, saving
// two scheduler wakeups per command. Only safe when the served device stack
// completes quickly (early-ack relay fronts, memory disks): an inline command
// blocks the connection until it completes.
func WithInlineExec() Option {
	return func(s *Server) { s.inlineExec = true }
}

// Server is an iSCSI target serving block devices to initiator sessions.
// It may serve multiple listeners and many concurrent sessions.
type Server struct {
	resolver   Resolver
	loginHook  func(LoginInfo)
	logger     *log.Logger
	inquiry    scsi.InquiryData
	params     iscsi.Params
	inlineExec bool
	obsReg     *obs.Registry
	obsStage   string

	mu        sync.Mutex
	targets   map[string]blockdev.Device
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool

	// sessions tracks live sessions by (initiator, ISID, target IQN) for
	// MC/S connection joining and session reinstatement; tsihSeq hands out
	// target session identifying handles.
	sessMu   sync.Mutex
	sessions map[sessionKey]*session
	tsihSeq  uint16

	wg sync.WaitGroup
}

// dropSession removes ss from the registry unless a reinstating login
// already took its key.
func (s *Server) dropSession(ss *session) {
	s.sessMu.Lock()
	if s.sessions[ss.key] == ss {
		delete(s.sessions, ss.key)
	}
	s.sessMu.Unlock()
}

// NewServer builds a server with the given options.
func NewServer(opts ...Option) *Server {
	// The server is willing to carry wider MC/S sessions than the initiator
	// default requests: negotiation takes the minimum, so plain initiators
	// still get single-connection sessions while relays asking for a
	// multi-connection forward leg converge on their requested width.
	params := iscsi.DefaultParams()
	params.MaxConnections = 8
	s := &Server{
		inquiry:   scsi.InquiryData{Vendor: "STORM", Product: "VIRTUAL-DISK", Revision: "0001"},
		params:    params,
		obsStage:  obs.StageTarget,
		targets:   make(map[string]blockdev.Device),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		sessions:  make(map[sessionKey]*session),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// AddTarget exports dev under the given IQN. The server never closes
// statically added devices; they may back many concurrent sessions.
func (s *Server) AddTarget(iqn string, dev blockdev.Device) error {
	if iqn == "" {
		return errors.New("target: empty IQN")
	}
	if dev == nil {
		return fmt.Errorf("target: nil device for %q", iqn)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.targets[iqn]; ok {
		return fmt.Errorf("target: %q already exported", iqn)
	}
	s.targets[iqn] = dev
	return nil
}

// RemoveTarget stops exporting the IQN. Established sessions keep their
// device.
func (s *Server) RemoveTarget(iqn string) {
	s.mu.Lock()
	delete(s.targets, iqn)
	s.mu.Unlock()
}

// targetNames returns the exported IQNs (for SendTargets discovery).
func (s *Server) targetNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.targets))
	for iqn := range s.targets {
		out = append(out, iqn)
	}
	return out
}

// lookup finds a device for the session: resolver first, then the static
// table.
func (s *Server) lookup(iqn string, conn net.Conn) (blockdev.Device, bool, error) {
	if s.resolver != nil {
		dev, owned, err := s.resolver(iqn, conn)
		if err != nil || dev != nil {
			return dev, owned, err
		}
	}
	s.mu.Lock()
	dev := s.targets[iqn]
	s.mu.Unlock()
	if dev == nil {
		return nil, false, fmt.Errorf("target: unknown target %q", iqn)
	}
	return dev, false, nil
}

// Serve accepts sessions on ln until the listener or server is closed.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops all listeners, aborts active sessions, and waits for their
// goroutines. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	lns := make([]net.Listener, 0, len(s.listeners))
	for ln := range s.listeners {
		lns = append(lns, ln)
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}

// logf logs through the configured logger, if any.
func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}
