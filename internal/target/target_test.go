package target_test

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/initiator"
	"repro/internal/iscsi"
	"repro/internal/scsi"
	"repro/internal/target"
)

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// queueListener feeds test-created pipe connections to Server.Serve.
type queueListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func newQueueListener() *queueListener {
	return &queueListener{ch: make(chan net.Conn, 4), done: make(chan struct{})}
}

func (l *queueListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *queueListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *queueListener) Addr() net.Addr { return pipeAddr{} }

const testIQN = "iqn.2016-04.edu.purdue.storm:unit"

// serveTarget starts srv on a fresh queue listener and tears it down with
// the test.
func serveTarget(t *testing.T, srv *target.Server) *queueListener {
	t.Helper()
	ln := newQueueListener()
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return ln
}

func dialTarget(t *testing.T, ln *queueListener) net.Conn {
	t.Helper()
	c, s := net.Pipe()
	ln.ch <- s
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func readPDU(t *testing.T, conn net.Conn) *iscsi.PDU {
	t.Helper()
	p, err := iscsi.ReadPDU(conn)
	if err != nil {
		t.Fatalf("read PDU: %v", err)
	}
	return p
}

// rawLogin drives the single-round login exchange by hand so tests can
// inspect the response and then speak raw PDUs on the session.
func rawLogin(t *testing.T, conn net.Conn, pairs map[string]string) *iscsi.LoginResponse {
	t.Helper()
	req := &iscsi.LoginRequest{
		Transit: true,
		CSG:     iscsi.StageOperational,
		NSG:     iscsi.StageFullFeature,
		ITT:     1,
		CmdSN:   1,
		Pairs:   pairs,
	}
	if _, err := req.Encode().WriteTo(conn); err != nil {
		t.Fatalf("send login request: %v", err)
	}
	resp, err := iscsi.ParseLoginResponse(readPDU(t, conn))
	if err != nil {
		t.Fatalf("parse login response: %v", err)
	}
	return resp
}

func memTarget(t *testing.T, opts ...target.Option) (*target.Server, *blockdev.MemDisk, *queueListener) {
	t.Helper()
	disk, err := blockdev.NewMemDisk(512, 128)
	if err != nil {
		t.Fatal(err)
	}
	srv := target.NewServer(opts...)
	if err := srv.AddTarget(testIQN, disk); err != nil {
		t.Fatal(err)
	}
	return srv, disk, serveTarget(t, srv)
}

// TestLoginNegotiatesParamsAndFiresHook covers the happy-path login through
// the real initiator: parameters take the conservative merge, the login hook
// sees the session identity, and I/O round-trips afterwards.
func TestLoginNegotiatesParamsAndFiresHook(t *testing.T) {
	infoCh := make(chan target.LoginInfo, 1)
	_, disk, ln := memTarget(t, target.WithLoginHook(func(info target.LoginInfo) {
		infoCh <- info
	}))

	params := iscsi.DefaultParams()
	params.FirstBurstLength = 4096
	sess, err := initiator.Login(dialTarget(t, ln), initiator.Config{
		InitiatorIQN: "iqn.2016-04.edu.purdue.storm:vm1",
		TargetIQN:    testIQN,
		AttachedVM:   "vm-1",
		Params:       params,
	})
	if err != nil {
		t.Fatalf("login: %v", err)
	}

	var info target.LoginInfo
	select {
	case info = <-infoCh:
	case <-time.After(5 * time.Second):
		t.Fatal("login hook never fired")
	}
	if info.TargetIQN != testIQN {
		t.Errorf("hook TargetIQN = %q, want %q", info.TargetIQN, testIQN)
	}
	if info.InitiatorIQN != "iqn.2016-04.edu.purdue.storm:vm1" {
		t.Errorf("hook InitiatorIQN = %q", info.InitiatorIQN)
	}
	if info.AttachedVM != "vm-1" {
		t.Errorf("hook AttachedVM = %q, want vm-1", info.AttachedVM)
	}
	if got := sess.Params().FirstBurstLength; got != 4096 {
		t.Errorf("negotiated FirstBurstLength = %d, want 4096 (min of offer and default)", got)
	}

	want := bytes.Repeat([]byte{0xA5}, 512)
	if err := sess.Write(3, want, 512); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := sess.Read(3, 1, 512)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("round trip corrupted data")
	}
	if err := sess.Logout(); err != nil {
		t.Fatalf("Logout: %v", err)
	}
	check := make([]byte, 512)
	if err := disk.ReadAt(check, 3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(check, want) {
		t.Error("write never reached the backing device")
	}
}

// TestLoginRejected pins the reject path: unknown targets and malformed
// negotiation keys must produce a Login Response with an initiator-error
// status class, not a hang or a silent close.
func TestLoginRejected(t *testing.T) {
	_, _, ln := memTarget(t)
	cases := []struct {
		name  string
		pairs map[string]string
	}{
		{"unknown target", map[string]string{
			iscsi.KeyInitiatorName: "iqn.vm",
			iscsi.KeyTargetName:    "iqn.no-such-target",
		}},
		{"bad negotiation value", map[string]string{
			iscsi.KeyInitiatorName: "iqn.vm",
			iscsi.KeyTargetName:    testIQN,
			iscsi.KeyFirstBurst:    "-7",
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn := dialTarget(t, ln)
			resp := rawLogin(t, conn, tc.pairs)
			if resp.StatusClass != iscsi.LoginStatusInitiatorErr {
				t.Fatalf("StatusClass = 0x%02x, want initiator error 0x%02x",
					resp.StatusClass, iscsi.LoginStatusInitiatorErr)
			}
			// The server tears the connection down after a reject.
			if _, err := iscsi.ReadPDU(conn); err == nil {
				t.Fatal("connection still alive after login reject")
			}
		})
	}
}

// fullFeaturePairs logs a raw session in with small bursts so solicited
// transfers are easy to provoke.
func smallBurstLogin(t *testing.T, conn net.Conn) *iscsi.LoginResponse {
	t.Helper()
	resp := rawLogin(t, conn, map[string]string{
		iscsi.KeyInitiatorName: "iqn.raw-client",
		iscsi.KeyTargetName:    testIQN,
		iscsi.KeyFirstBurst:    "512",
		iscsi.KeyMaxBurst:      "1024",
		iscsi.KeyMaxRecvDSL:    "1024",
		iscsi.KeyImmediateData: "Yes",
		iscsi.KeyInitialR2T:    "No",
	})
	if resp.StatusClass != iscsi.LoginStatusSuccess {
		t.Fatalf("login StatusClass = 0x%02x, want success", resp.StatusClass)
	}
	return resp
}

// TestR2TSolicitedWriteFlow drives a write bigger than the first burst PDU
// by PDU and checks every R2T the target solicits: offsets, desired lengths,
// R2T sequence numbers, and the final GOOD status, with the data landing
// intact on the device.
func TestR2TSolicitedWriteFlow(t *testing.T) {
	_, disk, ln := memTarget(t)
	conn := dialTarget(t, ln)
	smallBurstLogin(t, conn)

	data := make([]byte, 2048) // 4 blocks; first 512 go as immediate data
	for i := range data {
		data[i] = byte(i * 11)
	}
	const itt = 0x10
	cmd := &iscsi.SCSICommand{
		Final:                      true,
		Write:                      true,
		ITT:                        itt,
		ExpectedDataTransferLength: uint32(len(data)),
		CmdSN:                      2,
		ExpStatSN:                  2,
		Data:                       data[:512],
	}
	if _, err := scsi.NewWrite(4, 4).EncodeInto(cmd.CDB[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := cmd.Encode().WriteTo(conn); err != nil {
		t.Fatalf("send write command: %v", err)
	}

	// Remaining 1536 bytes arrive in two solicited bursts: 1024 (MaxBurst)
	// then 512.
	wantBursts := []struct {
		offset, desired, r2tsn uint32
	}{
		{512, 1024, 0},
		{1536, 512, 1},
	}
	for _, want := range wantBursts {
		r2t, err := iscsi.ParseR2T(readPDU(t, conn))
		if err != nil {
			t.Fatalf("parse R2T: %v", err)
		}
		if r2t.ITT != itt || r2t.BufferOffset != want.offset ||
			r2t.DesiredLength != want.desired || r2t.R2TSN != want.r2tsn {
			t.Fatalf("R2T = {ITT:%#x off:%d len:%d sn:%d}, want {ITT:%#x off:%d len:%d sn:%d}",
				r2t.ITT, r2t.BufferOffset, r2t.DesiredLength, r2t.R2TSN,
				itt, want.offset, want.desired, want.r2tsn)
		}
		dout := &iscsi.DataOut{
			Final:        true,
			ITT:          itt,
			TTT:          r2t.TTT,
			BufferOffset: want.offset,
			Data:         data[want.offset : want.offset+want.desired],
		}
		if _, err := dout.Encode().WriteTo(conn); err != nil {
			t.Fatalf("send Data-Out: %v", err)
		}
	}

	resp, err := iscsi.ParseSCSIResponse(readPDU(t, conn))
	if err != nil {
		t.Fatalf("parse response: %v", err)
	}
	if resp.ITT != itt || resp.Status != byte(scsi.StatusGood) {
		t.Fatalf("response ITT=%#x status=%#x, want ITT=%#x GOOD", resp.ITT, resp.Status, itt)
	}
	got := make([]byte, 2048)
	for i := 0; i < 4; i++ {
		if err := disk.ReadAt(got[i*512:(i+1)*512], uint64(4+i)); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, data) {
		t.Fatal("solicited write corrupted data on the device")
	}
}

// gatedDisk parks WriteAt until released, so a test can hold a command in
// flight at the device.
type gatedDisk struct {
	blockdev.Device
	started chan struct{}
	release chan struct{}
}

func (g *gatedDisk) WriteAt(p []byte, lba uint64) error {
	select {
	case g.started <- struct{}{}:
	default:
	}
	<-g.release
	return g.Device.WriteAt(p, lba)
}

// TestLogoutWaitsForInFlightCommand pins the ordered-teardown contract: a
// Logout issued while a write is still executing must be acknowledged only
// after that command completes — the SCSI Response arrives strictly before
// the Logout Response.
func TestLogoutWaitsForInFlightCommand(t *testing.T) {
	disk, err := blockdev.NewMemDisk(512, 64)
	if err != nil {
		t.Fatal(err)
	}
	gate := &gatedDisk{Device: disk, started: make(chan struct{}, 1), release: make(chan struct{})}
	srv := target.NewServer()
	if err := srv.AddTarget(testIQN, gate); err != nil {
		t.Fatal(err)
	}
	ln := serveTarget(t, srv)
	conn := dialTarget(t, ln)
	rawLogin(t, conn, map[string]string{
		iscsi.KeyInitiatorName: "iqn.raw-client",
		iscsi.KeyTargetName:    testIQN,
	})

	payload := bytes.Repeat([]byte{0x5A}, 512)
	cmd := &iscsi.SCSICommand{
		Final: true, Write: true, ITT: 0x20,
		ExpectedDataTransferLength: 512, CmdSN: 2, Data: payload,
	}
	if _, err := scsi.NewWrite(9, 1).EncodeInto(cmd.CDB[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := cmd.Encode().WriteTo(conn); err != nil {
		t.Fatalf("send write command: %v", err)
	}
	select {
	case <-gate.started:
	case <-time.After(5 * time.Second):
		t.Fatal("write never reached the device")
	}
	logout := &iscsi.LogoutRequest{ITT: 0x21, CmdSN: 3}
	if _, err := logout.Encode().WriteTo(conn); err != nil {
		t.Fatalf("send logout: %v", err)
	}
	close(gate.release)

	first := readPDU(t, conn)
	if first.Op() != iscsi.OpSCSIResponse {
		t.Fatalf("first PDU after logout = %v, want the in-flight command's SCSI Response", first.Op())
	}
	resp, err := iscsi.ParseSCSIResponse(first)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ITT != 0x20 || resp.Status != byte(scsi.StatusGood) {
		t.Fatalf("command completed ITT=%#x status=%#x, want ITT=0x20 GOOD", resp.ITT, resp.Status)
	}
	lresp, err := iscsi.ParseLogoutResponse(readPDU(t, conn))
	if err != nil {
		t.Fatalf("parse logout response: %v", err)
	}
	if lresp.ITT != 0x21 {
		t.Fatalf("logout response ITT = %#x, want 0x21", lresp.ITT)
	}
	check := make([]byte, 512)
	if err := disk.ReadAt(check, 9); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(check, payload) {
		t.Fatal("logout acknowledged but the in-flight write never landed")
	}
}

// TestUnsupportedPDURejected sends an opcode the target does not implement
// and expects a Reject PDU echoing the offending header, then session end.
func TestUnsupportedPDURejected(t *testing.T) {
	_, _, ln := memTarget(t)
	conn := dialTarget(t, ln)
	rawLogin(t, conn, map[string]string{
		iscsi.KeyInitiatorName: "iqn.raw-client",
		iscsi.KeyTargetName:    testIQN,
	})

	bad := &iscsi.PDU{}
	bad.SetOp(iscsi.OpTaskMgmtReq)
	bad.BHS[1] = 0x80
	bad.SetITT(0x77)
	if _, err := bad.WriteTo(conn); err != nil {
		t.Fatalf("send unsupported PDU: %v", err)
	}
	rej, err := iscsi.ParseReject(readPDU(t, conn))
	if err != nil {
		t.Fatalf("parse reject: %v", err)
	}
	if rej.Reason != iscsi.RejectCommandNotSupported {
		t.Fatalf("reject reason = %#x, want command-not-supported %#x",
			rej.Reason, iscsi.RejectCommandNotSupported)
	}
	if len(rej.Header) < 48 || iscsi.Opcode(rej.Header[0]&0x3F) != iscsi.OpTaskMgmtReq {
		t.Fatalf("reject header does not echo the offending BHS (len=%d)", len(rej.Header))
	}
	if _, err := iscsi.ReadPDU(conn); err == nil {
		t.Fatal("session still alive after rejecting unsupported PDU")
	}
}

// TestNopOutEcho checks the keepalive path used by connection liveness
// probing: a NOP-Out gets a NOP-In with the same ITT and reserved TTT.
func TestNopOutEcho(t *testing.T) {
	_, _, ln := memTarget(t)
	conn := dialTarget(t, ln)
	rawLogin(t, conn, map[string]string{
		iscsi.KeyInitiatorName: "iqn.raw-client",
		iscsi.KeyTargetName:    testIQN,
	})
	nop := &iscsi.NopOut{ITT: 9, TTT: 0xFFFFFFFF, CmdSN: 2, ExpStatSN: 2}
	if _, err := nop.Encode().WriteTo(conn); err != nil {
		t.Fatalf("send NOP-Out: %v", err)
	}
	in, err := iscsi.ParseNopIn(readPDU(t, conn))
	if err != nil {
		t.Fatalf("parse NOP-In: %v", err)
	}
	if in.ITT != 9 || in.TTT != 0xFFFFFFFF {
		t.Fatalf("NOP-In ITT=%d TTT=%#x, want ITT=9 TTT=0xFFFFFFFF", in.ITT, in.TTT)
	}
}
