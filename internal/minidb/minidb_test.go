package minidb

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/blockdev"
)

func newDB(t *testing.T) *DB {
	t.Helper()
	dev, err := blockdev.NewMemDisk(512, 8192) // 4 MiB
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(dev, 4096)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

func TestOpenValidation(t *testing.T) {
	dev, _ := blockdev.NewMemDisk(512, 8192)
	if _, err := Open(dev, 1000); err == nil {
		t.Error("unaligned page size: want error")
	}
	if _, err := Open(dev, 0); err == nil {
		t.Error("zero page size: want error")
	}
	tiny, _ := blockdev.NewMemDisk(512, 8)
	if _, err := Open(tiny, 4096); err == nil {
		t.Error("tiny device: want error")
	}
}

func TestInsertGetRoundTrip(t *testing.T) {
	db := newDB(t)
	want := []byte("hello row")
	id, err := db.Insert(want)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if id != 1 {
		t.Errorf("first id = %d, want 1", id)
	}
	got, err := db.Get(id)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Get = %q, want %q", got, want)
	}
}

func TestGetMissing(t *testing.T) {
	db := newDB(t)
	if _, err := db.Get(42); !errors.Is(err, ErrRowNotFound) {
		t.Errorf("Get(42) err = %v, want ErrRowNotFound", err)
	}
	if _, err := db.Get(0); !errors.Is(err, ErrRowNotFound) {
		t.Errorf("Get(0) err = %v, want ErrRowNotFound", err)
	}
	if _, err := db.Get(db.Capacity() + 1); !errors.Is(err, ErrRowNotFound) {
		t.Errorf("Get(beyond) err = %v, want ErrRowNotFound", err)
	}
}

func TestUpdate(t *testing.T) {
	db := newDB(t)
	id, _ := db.Insert([]byte("v1"))
	if err := db.Update(id, []byte("v2-longer")); err != nil {
		t.Fatalf("Update: %v", err)
	}
	got, _ := db.Get(id)
	if string(got) != "v2-longer" {
		t.Errorf("after Update = %q", got)
	}
	// Shrinking works too (stale bytes cleared).
	if err := db.Update(id, []byte("v3")); err != nil {
		t.Fatal(err)
	}
	got, _ = db.Get(id)
	if string(got) != "v3" {
		t.Errorf("after shrink = %q", got)
	}
	if err := db.Update(999, []byte("x")); !errors.Is(err, ErrRowNotFound) {
		t.Errorf("Update(missing) err = %v", err)
	}
}

func TestDelete(t *testing.T) {
	db := newDB(t)
	id, _ := db.Insert([]byte("gone"))
	if err := db.Delete(id); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := db.Get(id); !errors.Is(err, ErrRowNotFound) {
		t.Errorf("Get after Delete err = %v", err)
	}
}

func TestPayloadTooLarge(t *testing.T) {
	db := newDB(t)
	big := make([]byte, MaxPayload+1)
	if _, err := db.Insert(big); !errors.Is(err, ErrTooLarge) {
		t.Errorf("Insert(big) err = %v", err)
	}
	id, _ := db.Insert([]byte("x"))
	if err := db.Update(id, big); !errors.Is(err, ErrTooLarge) {
		t.Errorf("Update(big) err = %v", err)
	}
}

func TestRangeScanSkipsHoles(t *testing.T) {
	db := newDB(t)
	for i := 0; i < 10; i++ {
		if _, err := db.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete(5); err != nil {
		t.Fatal(err)
	}
	rows, err := db.RangeScan(1, 10)
	if err != nil {
		t.Fatalf("RangeScan: %v", err)
	}
	if len(rows) != 9 {
		t.Errorf("RangeScan returned %d rows, want 9", len(rows))
	}
}

func TestPutPreload(t *testing.T) {
	db := newDB(t)
	if err := db.Put(100, []byte("row100")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if db.MaxID() != 100 {
		t.Errorf("MaxID = %d, want 100", db.MaxID())
	}
	// Insert continues after the preloaded id.
	id, _ := db.Insert([]byte("next"))
	if id != 101 {
		t.Errorf("Insert after Put = %d, want 101", id)
	}
}

func TestRowsSpanPages(t *testing.T) {
	db := newDB(t)
	perPage := 4096 / RowSize
	// Fill two pages worth.
	for i := 0; i < perPage*2; i++ {
		if _, err := db.Insert(bytes.Repeat([]byte{byte(i)}, 50)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= perPage*2; i++ {
		got, err := db.Get(uint64(i))
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if got[0] != byte(i-1) {
			t.Errorf("row %d = %d", i, got[0])
		}
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	db := newDB(t)
	for i := 0; i < 64; i++ {
		if err := db.Put(uint64(i+1), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := uint64(g*8 + i%8 + 1)
				if err := db.Put(id, []byte{byte(g), byte(i)}); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, err := db.Get(id); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestDBModelProperty(t *testing.T) {
	type op struct {
		ID   uint8
		Data []byte
		Del  bool
	}
	f := func(ops []op) bool {
		dev, err := blockdev.NewMemDisk(512, 4096)
		if err != nil {
			return false
		}
		db, err := Open(dev, 4096)
		if err != nil {
			return false
		}
		model := make(map[uint64][]byte)
		for _, o := range ops {
			id := uint64(o.ID%64 + 1)
			if o.Del {
				if err := db.Delete(id); err != nil {
					return false
				}
				delete(model, id)
				continue
			}
			data := o.Data
			if len(data) > MaxPayload {
				data = data[:MaxPayload]
			}
			if err := db.Put(id, data); err != nil {
				return false
			}
			model[id] = append([]byte(nil), data...)
		}
		for id, want := range model {
			got, err := db.Get(id)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFlush(t *testing.T) {
	db := newDB(t)
	if err := db.Flush(); err != nil {
		t.Errorf("Flush: %v", err)
	}
}
