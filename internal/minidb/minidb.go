// Package minidb implements a miniature page-based OLTP database engine —
// the MySQL stand-in for the replication case study (Section V-B3). Like
// InnoDB on a raw partition, it lays fixed-size rows onto the pages of a
// block device (the database server VM's attached volume), so every query
// becomes real block I/O through whatever middle-box chain the volume is
// wired to. Point reads run concurrently (sharing the device), while
// writes lock per-page, letting the replica dispatcher's read striping
// aggregate throughput exactly as the paper measures.
package minidb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"repro/internal/blockdev"
)

// RowSize is the fixed on-disk row size (header + payload).
const RowSize = 256

// rowHeader: id(8) + length(2) + crc(4).
const rowHeader = 14

// MaxPayload is the largest storable row payload.
const MaxPayload = RowSize - rowHeader

// Errors.
var (
	ErrRowNotFound = errors.New("minidb: row not found")
	ErrTooLarge    = errors.New("minidb: payload exceeds row capacity")
	ErrCorrupt     = errors.New("minidb: row checksum mismatch")
)

// DB is a fixed-schema table of rows keyed by dense uint64 ids.
type DB struct {
	dev         blockdev.Device
	pageSize    int
	rowsPerPage int
	capacity    uint64

	// pageLocks stripe write access.
	pageLocks []sync.Mutex

	mu     sync.Mutex
	nextID uint64
}

// Open creates a database view over the device. pageSize must be a
// multiple of the device block size (4096 typical).
func Open(dev blockdev.Device, pageSize int) (*DB, error) {
	if pageSize <= 0 || pageSize%dev.BlockSize() != 0 {
		return nil, fmt.Errorf("minidb: page size %d incompatible with device block size %d",
			pageSize, dev.BlockSize())
	}
	rowsPerPage := pageSize / RowSize
	if rowsPerPage == 0 {
		return nil, fmt.Errorf("minidb: page size %d smaller than row size %d", pageSize, RowSize)
	}
	totalPages := dev.Blocks() * uint64(dev.BlockSize()) / uint64(pageSize)
	if totalPages < 2 {
		return nil, errors.New("minidb: device too small")
	}
	db := &DB{
		dev:         dev,
		pageSize:    pageSize,
		rowsPerPage: rowsPerPage,
		capacity:    (totalPages - 1) * uint64(rowsPerPage), // page 0 reserved
		pageLocks:   make([]sync.Mutex, 64),
		nextID:      1,
	}
	return db, nil
}

// Capacity returns the maximum number of rows.
func (db *DB) Capacity() uint64 { return db.capacity }

// rowLocation maps an id to (device lba, offset in page, lock stripe).
func (db *DB) rowLocation(id uint64) (lba uint64, off int, stripe int, err error) {
	if id == 0 || id > db.capacity {
		return 0, 0, 0, fmt.Errorf("%w: id %d", ErrRowNotFound, id)
	}
	idx := id - 1
	page := 1 + idx/uint64(db.rowsPerPage) // page 0 reserved for metadata
	off = int(idx%uint64(db.rowsPerPage)) * RowSize
	sectorsPerPage := uint64(db.pageSize / db.dev.BlockSize())
	return page * sectorsPerPage, off, int(page % uint64(len(db.pageLocks))), nil
}

// readPage loads the page containing the row.
func (db *DB) readPage(lba uint64) ([]byte, error) {
	buf := make([]byte, db.pageSize)
	if err := db.dev.ReadAt(buf, lba); err != nil {
		return nil, err
	}
	return buf, nil
}

func encodeRow(dst []byte, id uint64, payload []byte) {
	binary.LittleEndian.PutUint64(dst[0:8], id)
	binary.LittleEndian.PutUint16(dst[8:10], uint16(len(payload)))
	binary.LittleEndian.PutUint32(dst[10:14], crc32.ChecksumIEEE(payload))
	copy(dst[rowHeader:], payload)
	// Zero any residue from a previous larger row.
	for i := rowHeader + len(payload); i < RowSize; i++ {
		dst[i] = 0
	}
}

func decodeRow(src []byte, wantID uint64) ([]byte, error) {
	id := binary.LittleEndian.Uint64(src[0:8])
	if id != wantID {
		return nil, fmt.Errorf("%w: id %d", ErrRowNotFound, wantID)
	}
	n := int(binary.LittleEndian.Uint16(src[8:10]))
	if n > MaxPayload {
		return nil, ErrCorrupt
	}
	payload := append([]byte(nil), src[rowHeader:rowHeader+n]...)
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(src[10:14]) {
		return nil, ErrCorrupt
	}
	return payload, nil
}

// Insert stores a new row and returns its id.
func (db *DB) Insert(payload []byte) (uint64, error) {
	if len(payload) > MaxPayload {
		return 0, ErrTooLarge
	}
	db.mu.Lock()
	if db.nextID > db.capacity {
		db.mu.Unlock()
		return 0, errors.New("minidb: table full")
	}
	id := db.nextID
	db.nextID++
	db.mu.Unlock()
	if err := db.writeRow(id, payload); err != nil {
		return 0, err
	}
	return id, nil
}

// Put writes a row at an explicit id (used to preload test fixtures).
func (db *DB) Put(id uint64, payload []byte) error {
	if len(payload) > MaxPayload {
		return ErrTooLarge
	}
	db.mu.Lock()
	if id >= db.nextID {
		db.nextID = id + 1
	}
	db.mu.Unlock()
	return db.writeRow(id, payload)
}

// writeRow performs a locked read-modify-write of the row's page.
func (db *DB) writeRow(id uint64, payload []byte) error {
	lba, off, stripe, err := db.rowLocation(id)
	if err != nil {
		return err
	}
	db.pageLocks[stripe].Lock()
	defer db.pageLocks[stripe].Unlock()
	page, err := db.readPage(lba)
	if err != nil {
		return err
	}
	encodeRow(page[off:off+RowSize], id, payload)
	return db.dev.WriteAt(page, lba)
}

// Get reads a row.
func (db *DB) Get(id uint64) ([]byte, error) {
	lba, off, _, err := db.rowLocation(id)
	if err != nil {
		return nil, err
	}
	page, err := db.readPage(lba)
	if err != nil {
		return nil, err
	}
	return decodeRow(page[off:off+RowSize], id)
}

// Update rewrites an existing row.
func (db *DB) Update(id uint64, payload []byte) error {
	if len(payload) > MaxPayload {
		return ErrTooLarge
	}
	if _, err := db.Get(id); err != nil {
		return err
	}
	return db.writeRow(id, payload)
}

// Delete clears a row.
func (db *DB) Delete(id uint64) error {
	lba, off, stripe, err := db.rowLocation(id)
	if err != nil {
		return err
	}
	db.pageLocks[stripe].Lock()
	defer db.pageLocks[stripe].Unlock()
	page, err := db.readPage(lba)
	if err != nil {
		return err
	}
	clear(page[off : off+RowSize])
	return db.dev.WriteAt(page, lba)
}

// RangeScan reads up to n consecutive rows starting at id, skipping holes.
func (db *DB) RangeScan(id uint64, n int) ([][]byte, error) {
	var out [][]byte
	for i := 0; i < n && id+uint64(i) <= db.capacity; i++ {
		row, err := db.Get(id + uint64(i))
		if errors.Is(err, ErrRowNotFound) {
			continue
		}
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// MaxID returns the highest id handed out so far.
func (db *DB) MaxID() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.nextID - 1
}

// Flush syncs the device.
func (db *DB) Flush() error { return db.dev.Flush() }
