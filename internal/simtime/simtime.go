// Package simtime provides a high-precision sleep for the simulation's
// latency models. Container kernels frequently round timer sleeps up to a
// coarse tick (~1 ms), which would swamp the microsecond-scale path costs
// the fabric models; Sleep burns the final stretch in a yielding spin so
// concurrent modelled delays stay accurate and overlap correctly even on a
// single CPU.
package simtime

import (
	"runtime"
	"time"
)

// coarse is the slack subtracted before the blocking sleep: the kernel may
// overshoot a timer by up to roughly this much.
const coarse = 2 * time.Millisecond

// Sleep pauses the calling goroutine for at least d, with microsecond-level
// precision. Delays longer than the coarse tick sleep for the bulk and spin
// (yielding the processor each iteration) for the remainder, so other
// goroutines keep running.
func Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	start := time.Now()
	if d > coarse {
		time.Sleep(d - coarse)
	}
	for time.Since(start) < d {
		runtime.Gosched()
	}
}

// SleepUntil pauses until the deadline t (no-op when t has passed).
func SleepUntil(t time.Time) {
	Sleep(time.Until(t))
}
