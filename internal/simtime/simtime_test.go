package simtime

import (
	"sync"
	"testing"
	"time"
)

func TestSleepZeroAndNegative(t *testing.T) {
	start := time.Now()
	Sleep(0)
	Sleep(-time.Second)
	if time.Since(start) > 5*time.Millisecond {
		t.Error("non-positive Sleep slept")
	}
}

func TestSleepShortIsPrecise(t *testing.T) {
	// Sub-tick sleeps must not round up to the kernel tick (~1 ms).
	for _, d := range []time.Duration{50 * time.Microsecond, 200 * time.Microsecond} {
		var tot time.Duration
		const n = 20
		for i := 0; i < n; i++ {
			start := time.Now()
			Sleep(d)
			tot += time.Since(start)
		}
		mean := tot / n
		if mean < d {
			t.Errorf("Sleep(%v) mean %v came back early", d, mean)
		}
		if mean > d+300*time.Microsecond {
			t.Errorf("Sleep(%v) mean %v too imprecise", d, mean)
		}
	}
}

func TestSleepLong(t *testing.T) {
	start := time.Now()
	Sleep(10 * time.Millisecond)
	el := time.Since(start)
	if el < 10*time.Millisecond || el > 14*time.Millisecond {
		t.Errorf("Sleep(10ms) took %v", el)
	}
}

func TestConcurrentSleepsOverlap(t *testing.T) {
	// N concurrent sleeps of d must take ~d wall time, not N*d — the
	// property the whole latency simulation depends on.
	const n = 16
	const d = 5 * time.Millisecond
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			Sleep(d)
		}()
	}
	wg.Wait()
	el := time.Since(start)
	if el > 3*d {
		t.Errorf("%d concurrent sleeps of %v took %v: not overlapping", n, d, el)
	}
}

func TestSleepUntil(t *testing.T) {
	target := time.Now().Add(3 * time.Millisecond)
	SleepUntil(target)
	if time.Now().Before(target) {
		t.Error("SleepUntil returned early")
	}
	SleepUntil(time.Now().Add(-time.Second)) // past deadline: no-op
}
