package netsim

import (
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/faults"
)

// dialEcho starts an echo server on the target endpoint and dials it,
// returning the client conn.
func dialEcho(t *testing.T, ln *Listener, from *Endpoint, hostport string) *Conn {
	t.Helper()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			defer c.Close()
			io.Copy(c, c)
		}()
	}()
	conn, err := from.Dial(StorageNet, hostport)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	return conn
}

func echoOnce(c *Conn, payload []byte) error {
	if _, err := c.Write(payload); err != nil {
		return err
	}
	buf := make([]byte, len(payload))
	_, err := io.ReadFull(c, buf)
	return err
}

func TestCutHostAbortsConnsAndRefusesDials(t *testing.T) {
	f, compute, storage := twoHostFabric(t, fastModel())
	tgt := storage.NewEndpoint("target")
	ln, err := tgt.Listen(StorageNet, 3260)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()

	vm := compute.NewEndpoint("vm")
	conn := dialEcho(t, ln, vm, "10.0.0.100:3260")
	if err := echoOnce(conn, []byte("ping")); err != nil {
		t.Fatalf("echo before cut: %v", err)
	}

	if n := f.CutHost("storage1"); n != 1 {
		t.Fatalf("CutHost aborted %d conns, want 1", n)
	}
	buf := make([]byte, 4)
	if _, err := conn.Read(buf); !errors.Is(err, ErrHostDown) {
		t.Fatalf("read on cut conn: err = %v, want ErrHostDown", err)
	}
	if _, err := vm.Dial(StorageNet, "10.0.0.100:3260"); !errors.Is(err, ErrHostDown) {
		t.Fatalf("dial to down host: err = %v, want ErrHostDown", err)
	}

	f.HealHost("storage1")
	conn2 := dialEcho(t, ln, vm, "10.0.0.100:3260")
	defer conn2.Close()
	if err := echoOnce(conn2, []byte("pong")); err != nil {
		t.Fatalf("echo after heal: %v", err)
	}
}

func TestPartitionIsolatesOnlyThePair(t *testing.T) {
	f, compute, storage := twoHostFabric(t, fastModel())
	other, err := f.AddHost("storage2", map[Network]string{StorageNet: "10.0.0.101"})
	if err != nil {
		t.Fatalf("AddHost: %v", err)
	}
	ln1, err := storage.NewEndpoint("t1").Listen(StorageNet, 3260)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln1.Close()
	ln2, err := other.NewEndpoint("t2").Listen(StorageNet, 3260)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln2.Close()

	vm := compute.NewEndpoint("vm")
	conn := dialEcho(t, ln1, vm, "10.0.0.100:3260")

	if n := f.Partition("compute1", "storage1"); n != 1 {
		t.Fatalf("Partition aborted %d conns, want 1", n)
	}
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("read across partition: err = %v, want ErrPartitioned", err)
	}
	if _, err := vm.Dial(StorageNet, "10.0.0.100:3260"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dial across partition: err = %v, want ErrPartitioned", err)
	}
	// The unpartitioned pair still works.
	conn2 := dialEcho(t, ln2, vm, "10.0.0.101:3260")
	defer conn2.Close()
	if err := echoOnce(conn2, []byte("ok")); err != nil {
		t.Fatalf("echo to third host during partition: %v", err)
	}

	f.HealPartition("compute1", "storage1")
	conn3 := dialEcho(t, ln1, vm, "10.0.0.100:3260")
	defer conn3.Close()
	if err := echoOnce(conn3, []byte("ok")); err != nil {
		t.Fatalf("echo after heal: %v", err)
	}
}

func TestCutLinkAllowsImmediateRedial(t *testing.T) {
	f, compute, storage := twoHostFabric(t, fastModel())
	ln, err := storage.NewEndpoint("target").Listen(StorageNet, 3260)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()

	vm := compute.NewEndpoint("vm")
	conn := dialEcho(t, ln, vm, "10.0.0.100:3260")
	if n := f.CutLink("compute1", "storage1"); n != 1 {
		t.Fatalf("CutLink aborted %d conns, want 1", n)
	}
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); !errors.Is(err, ErrConnReset) {
		t.Fatalf("read on cut link: err = %v, want ErrConnReset", err)
	}
	// No dial block: the very next dial succeeds with no heal step.
	conn2 := dialEcho(t, ln, vm, "10.0.0.100:3260")
	defer conn2.Close()
	if err := echoOnce(conn2, []byte("x")); err != nil {
		t.Fatalf("redial after CutLink: %v", err)
	}
}

func TestSetHostDelaySlowsLiveConn(t *testing.T) {
	f, compute, storage := twoHostFabric(t, fastModel())
	ln, err := storage.NewEndpoint("target").Listen(StorageNet, 3260)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()

	vm := compute.NewEndpoint("vm")
	conn := dialEcho(t, ln, vm, "10.0.0.100:3260")
	defer conn.Close()
	if err := echoOnce(conn, []byte("warm")); err != nil {
		t.Fatalf("echo: %v", err)
	}

	const d = 10 * time.Millisecond
	f.SetHostDelay("storage1", d)
	start := time.Now()
	if err := echoOnce(conn, []byte("slow")); err != nil {
		t.Fatalf("echo with delay: %v", err)
	}
	// The echo crosses the delayed host twice (request + response).
	if got := time.Since(start); got < 2*d {
		t.Fatalf("delayed echo took %v, want >= %v", got, 2*d)
	}
	f.SetHostDelay("storage1", 0)
	start = time.Now()
	if err := echoOnce(conn, []byte("fast")); err != nil {
		t.Fatalf("echo after delay removed: %v", err)
	}
	if got := time.Since(start); got >= 2*d {
		t.Fatalf("echo after heal took %v, want < %v", got, 2*d)
	}
}

func TestLiveConnTrackingRetiresOnClose(t *testing.T) {
	f, compute, storage := twoHostFabric(t, fastModel())
	ln, err := storage.NewEndpoint("target").Listen(StorageNet, 3260)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()

	vm := compute.NewEndpoint("vm")
	accepted := make(chan *Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c.(*Conn)
		}
	}()
	conn, err := vm.Dial(StorageNet, "10.0.0.100:3260")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	srv := <-accepted
	if n := f.LiveConns(); n != 1 {
		t.Fatalf("LiveConns = %d, want 1", n)
	}
	conn.Close()
	srv.Close()
	if n := f.LiveConns(); n != 0 {
		t.Fatalf("LiveConns after close = %d, want 0", n)
	}
}

// TestScheduleDrivenCut binds a CutLink to a logical tick of a fault
// schedule: the cut fires after exactly 5 completed echoes, with no
// wall-clock timing anywhere.
func TestScheduleDrivenCut(t *testing.T) {
	f, compute, storage := twoHostFabric(t, fastModel())
	ln, err := storage.NewEndpoint("target").Listen(StorageNet, 3260)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()

	vm := compute.NewEndpoint("vm")
	conn := dialEcho(t, ln, vm, "10.0.0.100:3260")

	sched := faults.NewSchedule()
	sched.At(5, "cut-link", func() { f.CutLink("compute1", "storage1") })

	completed := 0
	var lastErr error
	for i := 0; i < 20; i++ {
		if lastErr = echoOnce(conn, []byte("tick")); lastErr != nil {
			break
		}
		completed++
		sched.Step()
	}
	if completed != 5 {
		t.Fatalf("completed %d echoes before cut, want exactly 5 (err=%v)", completed, lastErr)
	}
	if !errors.Is(lastErr, ErrConnReset) {
		t.Fatalf("post-cut error = %v, want ErrConnReset", lastErr)
	}
	if fired := sched.Fired(); len(fired) != 1 || fired[0] != "cut-link" {
		t.Fatalf("Fired() = %v", fired)
	}
}

// TestHostThrottleCapsBandwidth: a throttled storage host must stretch a
// payload's transfer to roughly bytes/rate, a fresh bucket (after removal)
// restores full speed, and the cap applies to live connections.
func TestHostThrottleCapsBandwidth(t *testing.T) {
	f, compute, storage := twoHostFabric(t, fastModel())
	tgt := storage.NewEndpoint("target")
	ln, err := tgt.Listen(StorageNet, 3260)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()
	vm := compute.NewEndpoint("vm")
	conn := dialEcho(t, ln, vm, "10.0.0.100:3260")
	defer conn.Close()

	payload := make([]byte, 64*1024)
	if err := echoOnce(conn, payload); err != nil {
		t.Fatalf("echo before throttle: %v", err)
	}

	// 1 MiB/s with a 4 KiB burst: a 64 KiB echo moves 128 KiB through the
	// host, so it must take >= ~120ms of modelled time.
	f.SetHostThrottle("storage1", 1<<20, 4096)
	start := time.Now()
	if err := echoOnce(conn, payload); err != nil {
		t.Fatalf("echo under throttle: %v", err)
	}
	throttled := time.Since(start)
	if throttled < 100*time.Millisecond {
		t.Fatalf("throttled 128KiB round trip took %v, want >= 100ms at 1MiB/s", throttled)
	}

	f.SetHostThrottle("storage1", 0, 0)
	start = time.Now()
	if err := echoOnce(conn, payload); err != nil {
		t.Fatalf("echo after removing throttle: %v", err)
	}
	if unthrottled := time.Since(start); unthrottled > throttled/2 {
		t.Fatalf("unthrottled round trip %v not faster than throttled %v", unthrottled, throttled)
	}
}
