package netsim

import (
	"errors"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/bufpool"
	"repro/internal/faults"
)

// ErrTimeout is returned by reads that exceed the configured deadline.
// It matches os.ErrDeadlineExceeded so net.Conn callers behave normally.
var ErrTimeout = os.ErrDeadlineExceeded

// errClosedPipe reports use of a closed connection.
var errClosedPipe = errors.New("netsim: connection closed")

// frame is a unit of in-flight data with its modelled arrival time. data is
// the unread remainder of buf's bytes; buf returns to the pool once the frame
// is fully consumed.
type frame struct {
	at   time.Time
	data []byte
	buf  *bufpool.Buf
}

// framePipe is one direction of a simulated connection: a queue of frames
// that become readable at their modelled arrival times. Writers never block
// (the peer's TCP window is assumed open); readers block until data arrives.
type framePipe struct {
	mu          sync.Mutex
	cost        PathCost
	mtu         int
	frames      []frame
	lastArrival time.Time
	closed      bool
	closeErr    error
	deadline    time.Time
	extra       time.Duration         // fault-injected added delay per frame
	throttles   []*faults.SlowBackend // host bandwidth caps; each frame draws its bytes

	wake    chan struct{} // buffered(1): new data / close / deadline change
	charge  func(time.Duration)
	bytesIn int64
}

func newFramePipe(cost PathCost, mtu int, charge func(time.Duration)) *framePipe {
	if mtu <= 0 {
		mtu = 64 * 1024
	}
	return &framePipe{cost: cost, mtu: mtu, wake: make(chan struct{}, 1), charge: charge}
}

func (p *framePipe) signal() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// write enqueues b, chunked into MTU frames, computing each frame's arrival
// per the path cost model: frames are paced by the accumulated per-hop
// processing plus serialization, then delayed by the propagation time.
func (p *framePipe) write(b []byte) (int, error) {
	return p.writeBufs([][]byte{b})
}

// writeBufs is the vectored write: the concatenation of bufs is chunked into
// pooled MTU frames directly, so a header+payload send costs one copy total
// instead of an assembly copy plus a frame copy.
func (p *framePipe) writeBufs(bufs [][]byte) (int, error) {
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	if total == 0 {
		return 0, nil
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		err := p.closeErr
		if err == nil || err == io.EOF {
			err = errClosedPipe
		}
		return 0, err
	}
	now := time.Now()
	if p.lastArrival.Before(now) {
		p.lastArrival = now
	}
	var processing time.Duration
	vi, vo := 0, 0 // cursor: bufs[vi][vo:] is the next unconsumed byte
	for remaining := total; remaining > 0; {
		n := remaining
		if n > p.mtu {
			n = p.mtu
		}
		fb := bufpool.Get(n)
		for fill := 0; fill < n; {
			for vo == len(bufs[vi]) {
				vi, vo = vi+1, 0
			}
			c := copy(fb.B[fill:], bufs[vi][vo:])
			fill += c
			vo += c
		}
		delay := p.cost.FrameDelay(n)
		processing += delay
		// Host bandwidth caps stretch the frame's serialization (queueing,
		// not processing — no CPU charge): the shared bucket may run a debt,
		// so a saturated host delays every flow crossing it.
		for _, th := range p.throttles {
			delay += th.Delay(n)
		}
		p.lastArrival = p.lastArrival.Add(delay)
		p.frames = append(p.frames, frame{at: p.lastArrival.Add(p.cost.Propagation + p.extra), data: fb.B, buf: fb})
		remaining -= n
	}
	p.bytesIn += int64(total)
	p.mu.Unlock()
	if p.charge != nil {
		p.charge(processing)
	}
	p.signal()
	return total, nil
}

// read copies available bytes into b, blocking until the head frame's
// arrival time, new data, close, or the read deadline.
func (p *framePipe) read(b []byte) (int, error) {
	for {
		p.mu.Lock()
		if !p.deadline.IsZero() && !time.Now().Before(p.deadline) {
			p.mu.Unlock()
			return 0, ErrTimeout
		}
		if len(p.frames) > 0 {
			now := time.Now()
			head := &p.frames[0]
			if !head.at.After(now) {
				n := 0
				// Drain as many arrived frames as fit.
				for n < len(b) && len(p.frames) > 0 && !p.frames[0].at.After(now) {
					c := copy(b[n:], p.frames[0].data)
					n += c
					if c == len(p.frames[0].data) {
						p.frames[0].buf.Release()
						p.frames[0] = frame{}
						p.frames = p.frames[1:]
					} else {
						p.frames[0].data = p.frames[0].data[c:]
					}
				}
				p.mu.Unlock()
				return n, nil
			}
			wait := head.at.Sub(now)
			deadline := p.deadline
			p.mu.Unlock()
			if err := p.sleep(wait, deadline); err != nil {
				return 0, err
			}
			continue
		}
		if p.closed {
			err := p.closeErr
			p.mu.Unlock()
			if err == nil {
				err = io.EOF
			}
			return 0, err
		}
		deadline := p.deadline
		p.mu.Unlock()
		if err := p.waitForWake(deadline); err != nil {
			return 0, err
		}
	}
}

// sleep waits for d, bounded by the deadline, interruptible by wake-ups.
// The final stretch spins (yielding) for microsecond precision: container
// kernels round timer sleeps up to a coarse tick that would otherwise
// swamp the modelled path costs.
func (p *framePipe) sleep(d time.Duration, deadline time.Time) error {
	if !deadline.IsZero() {
		until := time.Until(deadline)
		if until <= 0 {
			return ErrTimeout
		}
		if until < d {
			d = until
		}
	}
	const coarse = 2 * time.Millisecond
	target := time.Now().Add(d)
	if d > coarse {
		t := time.NewTimer(d - coarse)
		select {
		case <-t.C:
		case <-p.wake:
			t.Stop()
			return nil
		}
	}
	for time.Now().Before(target) {
		select {
		case <-p.wake:
			return nil
		default:
			runtime.Gosched()
		}
	}
	return nil
}

// waitForWake blocks until new data, close, or deadline.
func (p *framePipe) waitForWake(deadline time.Time) error {
	if deadline.IsZero() {
		<-p.wake
		return nil
	}
	until := time.Until(deadline)
	if until <= 0 {
		return ErrTimeout
	}
	t := time.NewTimer(until)
	defer t.Stop()
	select {
	case <-p.wake:
		return nil
	case <-t.C:
		return ErrTimeout
	}
}

// close marks the pipe closed. Pending frames remain readable; err (or EOF)
// is reported once drained.
func (p *framePipe) close(err error) {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		p.closeErr = err
	}
	p.mu.Unlock()
	p.signal()
}

// setExtra installs the fault-injected per-frame delay (0 removes it).
// Frames already in flight keep their computed arrival times.
func (p *framePipe) setExtra(d time.Duration) {
	p.mu.Lock()
	p.extra = d
	p.mu.Unlock()
}

// setThrottles installs the host bandwidth caps future frames draw from
// (nil removes them). Frames already in flight keep their arrival times.
func (p *framePipe) setThrottles(ts []*faults.SlowBackend) {
	p.mu.Lock()
	p.throttles = ts
	p.mu.Unlock()
}

func (p *framePipe) setDeadline(t time.Time) {
	p.mu.Lock()
	p.deadline = t
	p.mu.Unlock()
	p.signal()
}

func (p *framePipe) bytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bytesIn
}
