package netsim

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// fastModel returns a model with negligible delays for functional tests.
func fastModel() Model {
	return Model{
		MTU:       8 * 1024,
		Bandwidth: 1 << 32,
		Latency:   map[HopKind]time.Duration{},
		PerPacket: map[HopKind]time.Duration{},
	}
}

// twoHostFabric builds storage+compute hosts with listeners for tests.
func twoHostFabric(t *testing.T, model Model) (*Fabric, *Host, *Host) {
	t.Helper()
	f := NewFabric(model)
	compute, err := f.AddHost("compute1", map[Network]string{
		StorageNet:  "10.0.0.1",
		InstanceNet: "192.168.0.1",
	})
	if err != nil {
		t.Fatalf("AddHost: %v", err)
	}
	storage, err := f.AddHost("storage1", map[Network]string{
		StorageNet: "10.0.0.100",
	})
	if err != nil {
		t.Fatalf("AddHost: %v", err)
	}
	return f, compute, storage
}

func TestParseHostPort(t *testing.T) {
	tests := []struct {
		give    string
		want    Addr
		wantErr bool
	}{
		{give: "10.0.0.1:3260", want: Addr{Net: StorageNet, IP: "10.0.0.1", Port: 3260}},
		{give: "noport", wantErr: true},
		{give: ":80", wantErr: true},
		{give: "h:notnum", wantErr: true},
		{give: "h:0", wantErr: true},
		{give: "h:70000", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseHostPort(StorageNet, tt.give)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseHostPort(%q): want error", tt.give)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseHostPort(%q): %v", tt.give, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseHostPort(%q) = %+v, want %+v", tt.give, got, tt.want)
		}
	}
}

func TestFlowReverse(t *testing.T) {
	f := Flow{Net: StorageNet, SrcIP: "a", SrcPort: 1, DstIP: "b", DstPort: 2}
	r := f.Reverse()
	if r.SrcIP != "b" || r.DstIP != "a" || r.SrcPort != 2 || r.DstPort != 1 {
		t.Errorf("Reverse() = %+v", r)
	}
	if r.Reverse() != f {
		t.Error("double Reverse is not identity")
	}
	if f.Src().IP != "a" || f.Dst().Port != 2 {
		t.Error("Src/Dst accessors wrong")
	}
}

func TestDialAndEcho(t *testing.T) {
	_, compute, storage := twoHostFabric(t, fastModel())
	tgt := storage.NewEndpoint("target")
	ln, err := tgt.Listen(StorageNet, 3260)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		defer c.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(c, buf); err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		if _, err := c.Write(bytes.ToUpper(buf)); err != nil {
			t.Errorf("server write: %v", err)
		}
	}()

	vm := compute.NewEndpoint("vm-proc")
	conn, err := vm.Dial(StorageNet, "10.0.0.100:3260")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatalf("client write: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatalf("client read: %v", err)
	}
	if string(buf) != "HELLO" {
		t.Errorf("echo = %q, want HELLO", buf)
	}
	<-done
}

func TestDialRefused(t *testing.T) {
	f, compute, _ := twoHostFabric(t, fastModel())
	_ = f
	vm := compute.NewEndpoint("vm")
	if _, err := vm.Dial(StorageNet, "10.0.0.100:9999"); !errors.Is(err, ErrConnRefused) {
		t.Errorf("Dial to closed port: err = %v, want ErrConnRefused", err)
	}
	if _, err := vm.Dial(StorageNet, "10.9.9.9:1"); err == nil {
		t.Error("Dial to unknown host: want error")
	}
}

func TestDialNoNIC(t *testing.T) {
	f, _, storage := twoHostFabric(t, fastModel())
	_ = f
	// storage1 has no instance network NIC.
	ep := storage.NewEndpoint("p")
	if _, err := ep.Dial(InstanceNet, "192.168.0.1:80"); !errors.Is(err, ErrNoRoute) {
		t.Errorf("Dial without NIC: err = %v, want ErrNoRoute", err)
	}
}

func TestListenConflict(t *testing.T) {
	_, compute, _ := twoHostFabric(t, fastModel())
	ep := compute.NewEndpoint("a")
	ln, err := ep.Listen(StorageNet, 3260)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if _, err := ep.Listen(StorageNet, 3260); err == nil {
		t.Error("second Listen on same address: want error")
	}
	ln.Close()
	// After closing, the address is free again.
	ln2, err := ep.Listen(StorageNet, 3260)
	if err != nil {
		t.Errorf("Listen after Close: %v", err)
	} else {
		ln2.Close()
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	_, compute, _ := twoHostFabric(t, fastModel())
	ep := compute.NewEndpoint("a")
	ln, err := ep.Listen(StorageNet, 3000)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	ln.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrListenerClosed) {
			t.Errorf("Accept err = %v, want ErrListenerClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Accept did not unblock on Close")
	}
}

func TestUniqueEphemeralPorts(t *testing.T) {
	_, compute, storage := twoHostFabric(t, fastModel())
	tgt := storage.NewEndpoint("t")
	ln, err := tgt.Listen(StorageNet, 3260)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()
	vm := compute.NewEndpoint("vm")
	seen := make(map[int]bool)
	for i := 0; i < 10; i++ {
		c, err := vm.Dial(StorageNet, "10.0.0.100:3260")
		if err != nil {
			t.Fatalf("Dial #%d: %v", i, err)
		}
		port := c.LocalAddr().(Addr).Port
		if seen[port] {
			t.Errorf("ephemeral port %d reused", port)
		}
		seen[port] = true
		c.Close()
	}
}

func TestGuestEndpointAddressing(t *testing.T) {
	f, compute, _ := twoHostFabric(t, fastModel())
	vm1, err := compute.NewGuest("vm1", "192.168.10.5")
	if err != nil {
		t.Fatalf("NewGuest: %v", err)
	}
	if vm1.IP(InstanceNet) != "192.168.10.5" {
		t.Errorf("guest instance IP = %q", vm1.IP(InstanceNet))
	}
	if vm1.IP(StorageNet) != "10.0.0.1" {
		t.Errorf("guest storage IP = %q, want host NIC", vm1.IP(StorageNet))
	}
	if !vm1.Guest() {
		t.Error("Guest() = false")
	}
	// Duplicate instance IP must be rejected.
	if _, err := compute.NewGuest("vm2", "192.168.10.5"); err == nil {
		t.Error("duplicate instance IP: want error")
	}
	// The fabric can find the host by guest IP.
	if h := f.HostByIP(InstanceNet, "192.168.10.5"); h == nil || h.Name() != "compute1" {
		t.Error("HostByIP did not resolve guest IP")
	}
}

func TestRouteMetadataOnAcceptedConn(t *testing.T) {
	_, compute, storage := twoHostFabric(t, fastModel())
	tgt := storage.NewEndpoint("t")
	ln, err := tgt.Listen(StorageNet, 3260)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()
	acceptCh := make(chan *Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			acceptCh <- c.(*Conn)
		}
	}()
	vm := compute.NewEndpoint("vm")
	c, err := vm.Dial(StorageNet, "10.0.0.100:3260")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	srv := <-acceptCh
	defer srv.Close()
	if srv.RemoteAddr().String() != c.LocalAddr().String() {
		t.Errorf("server sees peer %v, client is %v", srv.RemoteAddr(), c.LocalAddr())
	}
	if got := srv.Route().DialedDst.String(); got != "10.0.0.100:3260" {
		t.Errorf("Route().DialedDst = %v", got)
	}
	if len(srv.Route().Hops) == 0 {
		t.Error("route has no hops")
	}
}

func TestLatencyModelDelaysDelivery(t *testing.T) {
	model := fastModel()
	model.Latency = map[HopKind]time.Duration{HopWire: 20 * time.Millisecond}
	_, compute, storage := twoHostFabric(t, model)
	tgt := storage.NewEndpoint("t")
	ln, err := tgt.Listen(StorageNet, 3260)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()
	acceptCh := make(chan *Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			acceptCh <- c.(*Conn)
		}
	}()
	vm := compute.NewEndpoint("vm")
	c, err := vm.Dial(StorageNet, "10.0.0.100:3260")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	srv := <-acceptCh
	defer srv.Close()

	start := time.Now()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	buf := make([]byte, 1)
	if _, err := io.ReadFull(srv, buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Errorf("one-way delivery took %v, want >= ~20ms wire latency", el)
	}
}

func TestPerFramePacingAccumulates(t *testing.T) {
	// With per-packet cost C and N frames, delivery of the last byte should
	// take at least N*C.
	model := fastModel()
	model.MTU = 1024
	model.PerPacket = map[HopKind]time.Duration{HopSwitch: time.Millisecond}
	_, compute, storage := twoHostFabric(t, model)
	tgt := storage.NewEndpoint("t")
	ln, _ := tgt.Listen(StorageNet, 3260)
	defer ln.Close()
	acceptCh := make(chan *Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			acceptCh <- c.(*Conn)
		}
	}()
	vm := compute.NewEndpoint("vm")
	c, err := vm.Dial(StorageNet, "10.0.0.100:3260")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	srv := <-acceptCh
	defer srv.Close()

	const frames = 8
	payload := make([]byte, frames*1024)
	start := time.Now()
	if _, err := c.Write(payload); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := io.ReadFull(srv, make([]byte, len(payload))); err != nil {
		t.Fatalf("Read: %v", err)
	}
	// Path has 2 switch hops -> 2ms per frame -> >= 16ms total.
	if el := time.Since(start); el < frames*2*time.Millisecond*8/10 {
		t.Errorf("delivery took %v, want >= ~%v", el, frames*2*time.Millisecond)
	}
}

func TestReadDeadline(t *testing.T) {
	_, compute, storage := twoHostFabric(t, fastModel())
	tgt := storage.NewEndpoint("t")
	ln, _ := tgt.Listen(StorageNet, 3260)
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err == nil {
			defer c.Close()
			time.Sleep(200 * time.Millisecond)
		}
	}()
	vm := compute.NewEndpoint("vm")
	c, err := vm.Dial(StorageNet, "10.0.0.100:3260")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatalf("SetReadDeadline: %v", err)
	}
	start := time.Now()
	_, err = c.Read(make([]byte, 1))
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("Read err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 150*time.Millisecond {
		t.Error("deadline did not fire promptly")
	}
	// Clearing the deadline allows reads again.
	if err := c.SetReadDeadline(time.Time{}); err != nil {
		t.Fatalf("clear deadline: %v", err)
	}
}

func TestCloseDeliversEOFAfterDrain(t *testing.T) {
	_, compute, storage := twoHostFabric(t, fastModel())
	tgt := storage.NewEndpoint("t")
	ln, _ := tgt.Listen(StorageNet, 3260)
	defer ln.Close()
	acceptCh := make(chan *Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			acceptCh <- c.(*Conn)
		}
	}()
	vm := compute.NewEndpoint("vm")
	c, err := vm.Dial(StorageNet, "10.0.0.100:3260")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	srv := <-acceptCh
	defer srv.Close()
	if _, err := c.Write([]byte("tail")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	c.Close()
	got, err := io.ReadAll(srv)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(got) != "tail" {
		t.Errorf("drained %q, want \"tail\"", got)
	}
}

func TestAbortPropagatesError(t *testing.T) {
	_, compute, storage := twoHostFabric(t, fastModel())
	tgt := storage.NewEndpoint("t")
	ln, _ := tgt.Listen(StorageNet, 3260)
	defer ln.Close()
	acceptCh := make(chan *Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			acceptCh <- c.(*Conn)
		}
	}()
	vm := compute.NewEndpoint("vm")
	c, err := vm.Dial(StorageNet, "10.0.0.100:3260")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	srv := <-acceptCh
	wantErr := errors.New("connection reset by peer")
	c.Abort(wantErr)
	if _, err := srv.Read(make([]byte, 1)); !errors.Is(err, wantErr) {
		t.Errorf("peer Read err = %v, want %v", err, wantErr)
	}
	if _, err := c.Write([]byte("x")); err == nil {
		t.Error("Write after Abort: want error")
	}
}

func TestCustomRouteFuncTermination(t *testing.T) {
	// A forwarding plane that redirects all storage traffic to a relay
	// endpoint, exposing NextHop metadata.
	f, compute, storage := twoHostFabric(t, fastModel())
	mbHost, err := f.AddHost("mb1", map[Network]string{
		StorageNet:  "10.0.0.50",
		InstanceNet: "192.168.0.50",
	})
	if err != nil {
		t.Fatalf("AddHost: %v", err)
	}
	relay := mbHost.NewEndpoint("relay")
	relayLn, err := relay.Listen(StorageNet, 13260)
	if err != nil {
		t.Fatalf("relay Listen: %v", err)
	}
	defer relayLn.Close()
	tgt := storage.NewEndpoint("t")
	tgtLn, err := tgt.Listen(StorageNet, 3260)
	if err != nil {
		t.Fatalf("target Listen: %v", err)
	}
	defer tgtLn.Close()

	f.SetRoute(func(fb *Fabric, src *Endpoint, srcAddr, dst Addr) (*Route, error) {
		if src.Name() == "relay" {
			return DirectRoute(fb, src, srcAddr, dst)
		}
		return &Route{
			Terminate: Addr{Net: StorageNet, IP: "10.0.0.50", Port: 13260},
			SrcAsSeen: srcAddr,
			DialedDst: dst,
			NextHop:   dst,
			Hops:      PathHops(fb, src.Host().Name(), src.Guest(), "mb1", false),
		}, nil
	})

	// Relay: accept, then dial onward per NextHop and splice.
	go func() {
		c, err := relayLn.Accept()
		if err != nil {
			return
		}
		conn := c.(*Conn)
		next := conn.Route().NextHop
		out, err := relay.DialAddr(next)
		if err != nil {
			t.Errorf("relay onward dial: %v", err)
			return
		}
		go func() { _, _ = io.Copy(out, conn) }()
		_, _ = io.Copy(conn, out)
	}()
	// Target: echo one message.
	go func() {
		c, err := tgtLn.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 4)
		if _, err := io.ReadFull(c, buf); err != nil {
			return
		}
		_, _ = c.Write(buf)
	}()

	vm := compute.NewEndpoint("vm")
	c, err := vm.Dial(StorageNet, "10.0.0.100:3260")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(buf) != "ping" {
		t.Errorf("spliced echo = %q", buf)
	}
}

func TestRouteFuncRejection(t *testing.T) {
	f, compute, _ := twoHostFabric(t, fastModel())
	f.SetRoute(func(fb *Fabric, src *Endpoint, srcAddr, dst Addr) (*Route, error) {
		return nil, fmt.Errorf("%w: isolation policy", ErrNoRoute)
	})
	vm := compute.NewEndpoint("vm")
	if _, err := vm.Dial(StorageNet, "10.0.0.100:3260"); !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
}

func TestCPUChargingOnPath(t *testing.T) {
	model := fastModel()
	model.PerPacket = map[HopKind]time.Duration{
		HopSwitch: time.Millisecond,
		HopWire:   time.Millisecond,
	}
	f, compute, storage := twoHostFabric(t, model)
	tgt := storage.NewEndpoint("t")
	ln, _ := tgt.Listen(StorageNet, 3260)
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err == nil {
			defer c.Close()
			_, _ = io.Copy(io.Discard, c)
		}
	}()
	vm := compute.NewEndpoint("vm")
	c, err := vm.Dial(StorageNet, "10.0.0.100:3260")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Write(make([]byte, 64*1024)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	if f.Host("compute1").CPU().Busy("net") == 0 {
		t.Error("no CPU charged to source host for packet processing")
	}
	if f.Host("storage1").CPU().Busy("net") == 0 {
		t.Error("no CPU charged to destination host for packet processing")
	}
}

func TestPathHops(t *testing.T) {
	f, _, _ := twoHostFabric(t, fastModel())
	// Guest to remote host-level endpoint.
	hops := PathHops(f, "compute1", true, "storage1", false)
	wantKinds := []HopKind{HopVirtio, HopSwitch, HopWire, HopSwitch}
	if len(hops) != len(wantKinds) {
		t.Fatalf("hops = %v", hops)
	}
	for i, k := range wantKinds {
		if hops[i].Kind != k {
			t.Errorf("hop %d = %v, want %v", i, hops[i].Kind, k)
		}
	}
	// Same-host guest to guest crosses the bridge and two virtio copies.
	hops = PathHops(f, "compute1", true, "compute1", true)
	var virtio, bridge int
	for _, h := range hops {
		switch h.Kind {
		case HopVirtio:
			virtio++
		case HopBridge:
			bridge++
		case HopWire:
			t.Error("same-host path must not cross the wire")
		}
	}
	if virtio != 2 || bridge != 1 {
		t.Errorf("same-host path: %d virtio, %d bridge; want 2, 1", virtio, bridge)
	}
}

func TestForwardHops(t *testing.T) {
	hops := ForwardHops("mb1")
	var virtio, fwd int
	for _, h := range hops {
		if h.Host != "mb1" {
			t.Errorf("hop %v not charged to mb1", h)
		}
		switch h.Kind {
		case HopVirtio:
			virtio++
		case HopForward:
			fwd++
		}
	}
	if virtio != 2 || fwd != 1 {
		t.Errorf("ForwardHops: %d virtio, %d forward; want 2, 1", virtio, fwd)
	}
}

func TestConcurrentConnections(t *testing.T) {
	_, compute, storage := twoHostFabric(t, fastModel())
	tgt := storage.NewEndpoint("t")
	ln, _ := tgt.Listen(StorageNet, 3260)
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				buf := make([]byte, 128)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}()
		}
	}()
	var wg sync.WaitGroup
	vm := compute.NewEndpoint("vm")
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := vm.Dial(StorageNet, "10.0.0.100:3260")
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			defer c.Close()
			msg := []byte(fmt.Sprintf("conn-%02d", i))
			if _, err := c.Write(msg); err != nil {
				t.Errorf("Write: %v", err)
				return
			}
			buf := make([]byte, len(msg))
			if _, err := io.ReadFull(c, buf); err != nil {
				t.Errorf("Read: %v", err)
				return
			}
			if !bytes.Equal(buf, msg) {
				t.Errorf("echo mismatch: %q != %q", buf, msg)
			}
		}(i)
	}
	wg.Wait()
}
