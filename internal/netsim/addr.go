// Package netsim simulates the cloud datacenter fabric of Figure 1: compute
// and storage hosts joined by two isolated networks (the storage network and
// the instance network). Connections between endpoints are real in-process
// byte streams, but every connection follows a resolved multi-hop route whose
// per-hop latency, per-packet copy cost, and link bandwidth are modelled, so
// the routing overheads the paper measures (extra gateway/middle-box hops,
// intra-host virtio copies) appear in wall-clock behaviour.
//
// The fabric itself is policy-free: a pluggable RouteFunc decides how a
// dialed flow is translated and which hosts it traverses. The StorM
// forwarding plane (NAT gateways + SDN flow steering) is installed by the
// splice package.
package netsim

import (
	"fmt"
	"strconv"
	"strings"
)

// Network identifies one of the two isolated datacenter networks.
type Network int

// The two networks of the datacenter in Figure 1.
const (
	StorageNet Network = iota + 1
	InstanceNet
)

// String renders the network name.
func (n Network) String() string {
	switch n {
	case StorageNet:
		return "storage"
	case InstanceNet:
		return "instance"
	default:
		return fmt.Sprintf("network(%d)", int(n))
	}
}

// Addr is an endpoint address on one of the simulated networks. It
// implements net.Addr.
type Addr struct {
	Net  Network
	IP   string
	Port int
}

// Network implements net.Addr.
func (a Addr) Network() string { return a.Net.String() }

// String implements net.Addr.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.IP, a.Port) }

// HostPort returns the ip:port form without the network name.
func (a Addr) HostPort() string { return a.String() }

// IsZero reports whether the address is unset.
func (a Addr) IsZero() bool { return a.IP == "" && a.Port == 0 && a.Net == 0 }

// ParseHostPort splits an "ip:port" string into an Addr on the given network.
func ParseHostPort(network Network, s string) (Addr, error) {
	idx := strings.LastIndexByte(s, ':')
	if idx < 0 {
		return Addr{}, fmt.Errorf("netsim: address %q missing port", s)
	}
	port, err := strconv.Atoi(s[idx+1:])
	if err != nil || port <= 0 || port > 65535 {
		return Addr{}, fmt.Errorf("netsim: address %q has invalid port", s)
	}
	ip := s[:idx]
	if ip == "" {
		return Addr{}, fmt.Errorf("netsim: address %q missing host", s)
	}
	return Addr{Net: network, IP: ip, Port: port}, nil
}

// Flow is the 4-tuple (plus network) identifying one connection's packets.
// StorM's connection attribution and flow steering match on this tuple.
type Flow struct {
	Net     Network
	SrcIP   string
	SrcPort int
	DstIP   string
	DstPort int
}

// Src returns the source endpoint of the flow.
func (f Flow) Src() Addr { return Addr{Net: f.Net, IP: f.SrcIP, Port: f.SrcPort} }

// Dst returns the destination endpoint of the flow.
func (f Flow) Dst() Addr { return Addr{Net: f.Net, IP: f.DstIP, Port: f.DstPort} }

// Reverse returns the flow seen from the opposite direction.
func (f Flow) Reverse() Flow {
	return Flow{Net: f.Net, SrcIP: f.DstIP, SrcPort: f.DstPort, DstIP: f.SrcIP, DstPort: f.SrcPort}
}

// String renders the flow as "src -> dst (network)".
func (f Flow) String() string {
	return fmt.Sprintf("%s:%d -> %s:%d (%s)", f.SrcIP, f.SrcPort, f.DstIP, f.DstPort, f.Net)
}
