package netsim

import (
	"net"
	"time"

	"repro/internal/obs"
)

// Route describes where a dialed flow actually lands and what it traverses,
// as decided by the fabric's RouteFunc (the forwarding plane).
type Route struct {
	// Terminate is the listener address the connection lands on. It may
	// differ from the dialed address when NAT or steering redirects the
	// flow (e.g. to a storage gateway or a relay middle-box).
	Terminate Addr
	// SrcAsSeen is the source address the acceptor observes (post-SNAT).
	SrcAsSeen Addr
	// DialedDst is the (pre-translation) address the dialer targeted.
	DialedDst Addr
	// NextHop tells a terminating relay where the flow was ultimately
	// headed, so it can dial onward (transparent-proxy metadata).
	NextHop Addr
	// Hops is the forward-direction traversal; the reverse direction uses
	// the same stations in reverse order.
	Hops []Hop
}

// Conn is a simulated connection. It implements net.Conn. Data written on
// one side becomes readable on the other after the modelled path delay.
type Conn struct {
	out    *framePipe // local writes -> peer reads
	in     *framePipe // peer writes -> local reads
	local  Addr
	remote Addr
	route  *Route
	peer   *Conn
	track  *connTrack      // fault-plane registration; shared by both halves
	trace  *obs.TraceTable // per-connection trace carrier; shared by both halves
}

var _ net.Conn = (*Conn)(nil)
var _ obs.TraceCarrier = (*Conn)(nil)

// newConnPair builds the two endpoints of a connection whose forward and
// reverse directions follow the given route under the model. chargeFwd and
// chargeRev receive per-direction processing charges for CPU accounting.
func newConnPair(model Model, route *Route, chargeFwd, chargeRev func(time.Duration)) (dialSide, acceptSide *Conn) {
	fwdHops := route.Hops
	revHops := make([]Hop, len(fwdHops))
	for i, h := range fwdHops {
		revHops[len(fwdHops)-1-i] = h
	}
	fwd := newFramePipe(model.Cost(fwdHops), model.MTU, chargeFwd)
	rev := newFramePipe(model.Cost(revHops), model.MTU, chargeRev)

	trace := obs.NewTraceTable()
	d := &Conn{
		out:    fwd,
		in:     rev,
		local:  Addr{Net: route.SrcAsSeen.Net, IP: route.SrcAsSeen.IP, Port: route.SrcAsSeen.Port},
		remote: route.DialedDst,
		route:  route,
		trace:  trace,
	}
	a := &Conn{
		out:    rev,
		in:     fwd,
		local:  route.Terminate,
		remote: route.SrcAsSeen,
		route:  route,
		trace:  trace,
	}
	d.peer, a.peer = a, d
	return d, a
}

// Read implements net.Conn.
func (c *Conn) Read(b []byte) (int, error) { return c.in.read(b) }

// Write implements net.Conn.
func (c *Conn) Write(b []byte) (int, error) { return c.out.write(b) }

// WriteBuffers sends the concatenation of bufs as one write. The iSCSI layer
// uses it to emit a PDU's header and payload without an assembly copy: each
// segment is copied directly into the simulated MTU frames.
func (c *Conn) WriteBuffers(bufs ...[]byte) (int, error) { return c.out.writeBufs(bufs) }

// Close implements net.Conn. Both directions shut down; the peer's pending
// data remains readable and then reports EOF.
func (c *Conn) Close() error {
	c.out.close(nil)
	c.in.close(nil)
	c.track.remove()
	return nil
}

// Abort closes the connection reporting err to both sides, emulating a
// connection reset (used by failure-injection tests).
func (c *Conn) Abort(err error) {
	c.out.close(err)
	c.in.close(err)
	c.track.remove()
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// Route returns the resolved route metadata for this connection.
func (c *Conn) Route() *Route { return c.route }

// TraceTable returns the connection's out-of-band trace carrier, shared
// by both endpoints (obs.TraceCarrier).
func (c *Conn) TraceTable() *obs.TraceTable { return c.trace }

// BytesWritten returns the number of payload bytes written on this side.
func (c *Conn) BytesWritten() int64 { return c.out.bytes() }

// SetDeadline implements net.Conn (read side only; writes never block).
func (c *Conn) SetDeadline(t time.Time) error {
	c.in.setDeadline(t)
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.in.setDeadline(t)
	return nil
}

// SetWriteDeadline implements net.Conn. Writes are non-blocking, so the
// deadline is accepted and ignored.
func (c *Conn) SetWriteDeadline(time.Time) error { return nil }
