package netsim

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Common fabric errors.
var (
	// ErrConnRefused reports a dial to an address with no listener.
	ErrConnRefused = errors.New("netsim: connection refused")
	// ErrNoRoute reports that the forwarding plane rejected the flow (for
	// example a tenant VM dialing into an isolated middle-box).
	ErrNoRoute = errors.New("netsim: no route to host")
	// ErrListenerClosed reports Accept on a closed listener.
	ErrListenerClosed = errors.New("netsim: listener closed")
)

// RouteFunc is the fabric's forwarding plane: it decides how a flow dialed
// by src toward dst is translated, steered, and terminated. The default
// plane routes directly; the StorM splice package installs the NAT-gateway +
// SDN-steering plane.
type RouteFunc func(fabric *Fabric, src *Endpoint, srcAddr, dst Addr) (*Route, error)

// Fabric is the simulated datacenter network: hosts, endpoints, listeners,
// and the forwarding plane.
type Fabric struct {
	model Model

	mu        sync.Mutex
	hosts     map[string]*Host
	listeners map[string]*Listener // key: net|ip:port
	route     RouteFunc
	nextPort  int

	// Fault plane (see faults.go). All lazily allocated.
	tracks       map[*connTrack]struct{}
	downHosts    map[string]struct{}
	parts        map[partKey]struct{}
	hostDelay    map[string]time.Duration
	hostThrottle map[string]*faults.SlowBackend
}

// NewFabric creates a fabric with the given cost model and the direct
// forwarding plane.
func NewFabric(model Model) *Fabric {
	return &Fabric{
		model:     model,
		hosts:     make(map[string]*Host),
		listeners: make(map[string]*Listener),
		nextPort:  33000,
	}
}

// Model returns the fabric's cost model.
func (f *Fabric) Model() Model { return f.model }

// SetRoute installs the forwarding plane. A nil route restores direct
// routing.
func (f *Fabric) SetRoute(r RouteFunc) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.route = r
}

// AddHost registers a physical host with its per-network IP addresses.
func (f *Fabric) AddHost(name string, ips map[Network]string) (*Host, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.hosts[name]; ok {
		return nil, fmt.Errorf("netsim: host %q already exists", name)
	}
	h := &Host{
		name:   name,
		fabric: f,
		ips:    make(map[Network]string, len(ips)),
		cpu:    metrics.NewCPUAccount(),
	}
	for n, ip := range ips {
		h.ips[n] = ip
	}
	f.hosts[name] = h
	return h, nil
}

// Host returns the named host, or nil.
func (f *Fabric) Host(name string) *Host {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hosts[name]
}

// Hosts returns all registered host names.
func (f *Fabric) Hosts() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.hosts))
	for n := range f.hosts {
		names = append(names, n)
	}
	return names
}

// HostByIP returns the host owning ip on the given network, or nil.
func (f *Fabric) HostByIP(network Network, ip string) *Host {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hostByIPLocked(network, ip)
}

func (f *Fabric) hostByIPLocked(network Network, ip string) *Host {
	for _, h := range f.hosts {
		if h.ips[network] == ip {
			return h
		}
	}
	// Guest endpoints may own their own instance-network IPs.
	for _, h := range f.hosts {
		if h.guestIPs != nil {
			if _, ok := h.guestIPs[guestKey{network, ip}]; ok {
				return h
			}
		}
	}
	return nil
}

func (f *Fabric) allocPort() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nextPort++
	return f.nextPort
}

func lkey(a Addr) string { return fmt.Sprintf("%d|%s:%d", a.Net, a.IP, a.Port) }

func (f *Fabric) registerListener(l *Listener) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := lkey(l.addr)
	if _, ok := f.listeners[k]; ok {
		return fmt.Errorf("netsim: address %v already in use", l.addr)
	}
	f.listeners[k] = l
	return nil
}

func (f *Fabric) removeListener(l *Listener) {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := lkey(l.addr)
	if f.listeners[k] == l {
		delete(f.listeners, k)
	}
}

// FindListener returns the listener bound at addr, or nil.
func (f *Fabric) FindListener(addr Addr) *Listener {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.listeners[lkey(addr)]
}

// dial resolves a route for the flow and delivers a connection to the
// terminating listener.
func (f *Fabric) dial(src *Endpoint, dst Addr) (*Conn, error) {
	srcAddr := Addr{Net: dst.Net, IP: src.IP(dst.Net), Port: f.allocPort()}
	if srcAddr.IP == "" {
		return nil, fmt.Errorf("%w: endpoint %s has no NIC on the %s network", ErrNoRoute, src.name, dst.Net)
	}

	f.mu.Lock()
	routeFn := f.route
	f.mu.Unlock()

	var route *Route
	var err error
	if routeFn != nil {
		route, err = routeFn(f, src, srcAddr, dst)
	} else {
		route, err = DirectRoute(f, src, srcAddr, dst)
	}
	if err != nil {
		return nil, err
	}
	if route.SrcAsSeen.IsZero() {
		route.SrcAsSeen = srcAddr
	}
	if route.DialedDst.IsZero() {
		route.DialedDst = dst
	}
	if route.Terminate.IsZero() {
		route.Terminate = dst
	}

	ln := f.FindListener(route.Terminate)
	if ln == nil {
		return nil, fmt.Errorf("%w: %v (dialed %v)", ErrConnRefused, route.Terminate, dst)
	}

	chargeFor := func(hops []Hop) func(time.Duration) {
		// Charge per-direction processing to the hosts on the path,
		// proportionally to their share of the per-frame cost. The host
		// lookups, fractions, and stage timers are resolved once here so the
		// per-frame closure stays cheap. Stage-tagged hops also record their
		// share into per-stage latency histograms.
		var sum time.Duration
		for _, h := range hops {
			if h.Host != "" {
				sum += f.model.PerPacket[h.Kind]
			}
		}
		if sum <= 0 {
			return func(time.Duration) {}
		}
		type hopCharge struct {
			host  *Host
			timer obs.Timer
			stage string
			frac  float64
		}
		charges := make([]hopCharge, 0, len(hops))
		for _, h := range hops {
			if h.Host == "" {
				continue
			}
			hc := hopCharge{
				host:  f.Host(h.Host),
				stage: h.Stage,
				frac:  float64(f.model.PerPacket[h.Kind]) / float64(sum),
			}
			if h.Stage != "" {
				hc.timer = obs.Default().Timer(obs.StagePrefix + h.Stage)
			}
			charges = append(charges, hc)
		}
		return func(total time.Duration) {
			for _, hc := range charges {
				share := time.Duration(float64(total) * hc.frac)
				if hc.host != nil {
					hc.host.cpu.Charge("net", share)
				}
				if hc.timer.Enabled() {
					hc.timer.Observe(share)
					// With tracing on, the hop's share also lands as a span
					// on whatever trace the writing goroutine carries.
					obs.Default().RecordHop(hc.stage, share)
				}
			}
		}
	}
	revHops := make([]Hop, len(route.Hops))
	for i, h := range route.Hops {
		revHops[len(route.Hops)-1-i] = h
	}
	dialSide, acceptSide := newConnPair(f.model, route, chargeFor(route.Hops), chargeFor(revHops))
	track := &connTrack{
		fabric: f,
		aHost:  src.host.name,
		bHost:  ln.endpoint.host.name,
		dial:   dialSide,
	}
	extra, throttles, err := f.admitConn(track)
	if err != nil {
		return nil, err
	}
	dialSide.track, acceptSide.track = track, track
	if extra > 0 {
		dialSide.out.setExtra(extra)
		dialSide.in.setExtra(extra)
	}
	if len(throttles) > 0 {
		dialSide.out.setThrottles(throttles)
		dialSide.in.setThrottles(throttles)
	}
	if err := ln.deliver(acceptSide); err != nil {
		track.remove()
		return nil, err
	}
	return dialSide, nil
}

// DirectRoute is the default forwarding plane: the flow lands exactly where
// it was dialed, traversing the two hosts' switches and the wire (or an
// intra-host bridge when source and destination share a host).
func DirectRoute(f *Fabric, src *Endpoint, srcAddr, dst Addr) (*Route, error) {
	dstHost := f.HostByIP(dst.Net, dst.IP)
	if dstHost == nil {
		// The listener may be bound to a guest IP that matches a listener
		// but no host NIC; fall back to locating the listener itself.
		if ln := f.FindListener(dst); ln != nil {
			dstHost = ln.endpoint.host
		}
	}
	if dstHost == nil {
		return nil, fmt.Errorf("%w: %v", ErrNoRoute, dst)
	}
	var dstGuest bool
	if ln := f.FindListener(dst); ln != nil {
		dstGuest = ln.endpoint.guest
	}
	hops := PathHops(f, src.host.name, src.guest, dstHost.name, dstGuest)
	return &Route{Terminate: dst, SrcAsSeen: srcAddr, DialedDst: dst, Hops: hops}, nil
}

// PathHops builds the hop list between two endpoints, inserting virtio
// boundaries for guest endpoints and a wire leg (or intra-host bridge) as
// placement dictates. Forwarding planes use it to assemble route segments.
func PathHops(f *Fabric, srcHost string, srcGuest bool, dstHost string, dstGuest bool) []Hop {
	var hops []Hop
	if srcGuest {
		hops = append(hops, Hop{Kind: HopVirtio, Host: srcHost})
	}
	hops = append(hops, Hop{Kind: HopSwitch, Host: srcHost})
	if srcHost != dstHost {
		hops = append(hops, Hop{Kind: HopWire}, Hop{Kind: HopSwitch, Host: dstHost})
	} else if srcGuest || dstGuest {
		hops = append(hops, Hop{Kind: HopBridge, Host: srcHost})
	}
	if dstGuest {
		hops = append(hops, Hop{Kind: HopVirtio, Host: dstHost})
	}
	return hops
}

// ForwardHops builds the hop list for a non-terminating traversal of a
// middle-box VM on the named host (the MB-FWD case): into the host, a
// virtio copy each way, and kernel forwarding inside the guest.
func ForwardHops(host string) []Hop {
	return []Hop{
		{Kind: HopSwitch, Host: host},
		{Kind: HopVirtio, Host: host},
		{Kind: HopForward, Host: host},
		{Kind: HopVirtio, Host: host},
	}
}

// Listener accepts connections delivered by the fabric. It implements
// net.Listener.
type Listener struct {
	addr     Addr
	endpoint *Endpoint
	backlog  chan *Conn
	once     sync.Once
	done     chan struct{}
}

var _ net.Listener = (*Listener)(nil)

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrListenerClosed
	}
}

// Close implements net.Listener.
func (l *Listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.endpoint.host.fabric.removeListener(l)
	})
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.addr }

func (l *Listener) deliver(c *Conn) error {
	select {
	case <-l.done:
		return ErrConnRefused
	case l.backlog <- c:
		return nil
	}
}
