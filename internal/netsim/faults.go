package netsim

import (
	"errors"
	"sync"
	"time"

	"repro/internal/faults"
)

// Fault-injection errors. Aborted connections report these from every
// blocked or subsequent Read/Write, emulating a connection reset; refused
// dials return them wrapped.
var (
	// ErrHostDown reports traffic to or from a host cut with CutHost.
	ErrHostDown = errors.New("netsim: host down")
	// ErrPartitioned reports traffic across a partition installed with
	// Partition.
	ErrPartitioned = errors.New("netsim: hosts partitioned")
	// ErrConnReset reports a connection severed with CutLink. Unlike
	// CutHost, no dial block is installed: an immediate redial succeeds.
	ErrConnReset = errors.New("netsim: connection reset")
)

// connTrack links a live connection pair to the fault plane: which two hosts
// it touches and the handle to abort it. Both Conn halves share one track;
// the first Close/Abort retires it.
type connTrack struct {
	fabric *Fabric
	aHost  string
	bHost  string
	dial   *Conn
	once   sync.Once
}

func (t *connTrack) remove() {
	if t == nil {
		return
	}
	t.once.Do(func() {
		t.fabric.mu.Lock()
		delete(t.fabric.tracks, t)
		t.fabric.mu.Unlock()
	})
}

func (t *connTrack) touches(host string) bool {
	return t.aHost == host || t.bHost == host
}

func (t *connTrack) between(a, b string) bool {
	return (t.aHost == a && t.bHost == b) || (t.aHost == b && t.bHost == a)
}

type partKey struct{ a, b string }

func pkey(a, b string) partKey {
	if a > b {
		a, b = b, a
	}
	return partKey{a, b}
}

// checkDialFault rejects a dial blocked by an active fault. Called with
// f.mu held.
func (f *Fabric) checkDialFault(srcHost, dstHost string) error {
	if _, down := f.downHosts[srcHost]; down {
		return ErrHostDown
	}
	if _, down := f.downHosts[dstHost]; down {
		return ErrHostDown
	}
	if _, cut := f.parts[pkey(srcHost, dstHost)]; cut {
		return ErrPartitioned
	}
	return nil
}

// admitConn runs the fault checks for a new connection and, if admitted,
// registers its track and returns the extra per-frame delay its pipes must
// model (the sum of both endpoints' host delays) plus the token buckets of
// any throttled endpoint hosts.
func (f *Fabric) admitConn(t *connTrack) (time.Duration, []*faults.SlowBackend, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkDialFault(t.aHost, t.bHost); err != nil {
		return 0, nil, err
	}
	if f.tracks == nil {
		f.tracks = make(map[*connTrack]struct{})
	}
	f.tracks[t] = struct{}{}
	return f.hostDelay[t.aHost] + f.hostDelay[t.bHost], f.throttlesFor(t), nil
}

// throttlesFor collects the token buckets capping a connection's endpoint
// hosts. Called with f.mu held.
func (f *Fabric) throttlesFor(t *connTrack) []*faults.SlowBackend {
	var ts []*faults.SlowBackend
	if sb := f.hostThrottle[t.aHost]; sb != nil {
		ts = append(ts, sb)
	}
	if sb := f.hostThrottle[t.bHost]; sb != nil && t.bHost != t.aHost {
		ts = append(ts, sb)
	}
	return ts
}

// abortMatching collects live connections satisfying match under the lock,
// then aborts them outside it (Abort re-enters the fabric to retire the
// track). Returns the number aborted.
func (f *Fabric) abortMatching(match func(*connTrack) bool, reason error) int {
	f.mu.Lock()
	var victims []*Conn
	for t := range f.tracks {
		if match(t) {
			victims = append(victims, t.dial)
		}
	}
	f.mu.Unlock()
	for _, c := range victims {
		c.Abort(reason)
	}
	return len(victims)
}

// CutHost takes a host off the fabric: every live connection touching it is
// aborted with ErrHostDown and new dials to or from it are refused until
// HealHost. Returns the number of connections aborted.
func (f *Fabric) CutHost(name string) int {
	f.mu.Lock()
	if f.downHosts == nil {
		f.downHosts = make(map[string]struct{})
	}
	f.downHosts[name] = struct{}{}
	f.mu.Unlock()
	return f.abortMatching(func(t *connTrack) bool { return t.touches(name) }, ErrHostDown)
}

// HealHost re-admits a host cut with CutHost. Existing aborted connections
// stay dead; new dials succeed.
func (f *Fabric) HealHost(name string) {
	f.mu.Lock()
	delete(f.downHosts, name)
	f.mu.Unlock()
}

// Partition severs connectivity between two hosts: live connections between
// them are aborted with ErrPartitioned and dials across the pair are refused
// until HealPartition. Traffic to third hosts is unaffected. Returns the
// number of connections aborted.
func (f *Fabric) Partition(a, b string) int {
	f.mu.Lock()
	if f.parts == nil {
		f.parts = make(map[partKey]struct{})
	}
	f.parts[pkey(a, b)] = struct{}{}
	f.mu.Unlock()
	return f.abortMatching(func(t *connTrack) bool { return t.between(a, b) }, ErrPartitioned)
}

// HealPartition removes the partition between two hosts.
func (f *Fabric) HealPartition(a, b string) {
	f.mu.Lock()
	delete(f.parts, pkey(a, b))
	f.mu.Unlock()
}

// CutLink aborts every live connection between two hosts with ErrConnReset
// without blocking future dials — a transient blip: the victim observes a
// reset and may reconnect immediately. Returns the number aborted.
func (f *Fabric) CutLink(a, b string) int {
	return f.abortMatching(func(t *connTrack) bool { return t.between(a, b) }, ErrConnReset)
}

// SetHostDelay adds d of one-way delay to every frame crossing the named
// host, on live connections and future dials alike (a congested or
// brown-out host). d = 0 removes the delay.
func (f *Fabric) SetHostDelay(name string, d time.Duration) {
	f.mu.Lock()
	if f.hostDelay == nil {
		f.hostDelay = make(map[string]time.Duration)
	}
	if d == 0 {
		delete(f.hostDelay, name)
	} else {
		f.hostDelay[name] = d
	}
	var update []*connTrack
	for t := range f.tracks {
		if t.touches(name) {
			update = append(update, t)
		}
	}
	delays := make([]time.Duration, len(update))
	for i, t := range update {
		delays[i] = f.hostDelay[t.aHost] + f.hostDelay[t.bHost]
	}
	f.mu.Unlock()
	for i, t := range update {
		t.dial.out.setExtra(delays[i])
		t.dial.in.setExtra(delays[i])
	}
}

// SetHostThrottle caps the named host's aggregate bandwidth with a token
// bucket: every frame crossing the host — either direction, any connection,
// live or future — draws its byte count from one shared bucket refilling at
// rate bytes/sec up to burst, so a busy host slows *all* of its flows
// together rather than each in isolation. This is the brownout injection
// behind "1 slow of 3" overload scenarios: the host stays up and correct,
// just late. rate <= 0 removes the cap; frames already in flight keep their
// arrival times.
func (f *Fabric) SetHostThrottle(name string, rate, burst float64) {
	f.mu.Lock()
	if f.hostThrottle == nil {
		f.hostThrottle = make(map[string]*faults.SlowBackend)
	}
	if rate <= 0 {
		delete(f.hostThrottle, name)
	} else {
		f.hostThrottle[name] = faults.NewSlowBackend(rate, burst)
	}
	var update []*connTrack
	for t := range f.tracks {
		if t.touches(name) {
			update = append(update, t)
		}
	}
	lists := make([][]*faults.SlowBackend, len(update))
	for i, t := range update {
		lists[i] = f.throttlesFor(t)
	}
	f.mu.Unlock()
	for i, t := range update {
		t.dial.out.setThrottles(lists[i])
		t.dial.in.setThrottles(lists[i])
	}
}

// LiveConns returns the number of tracked live connections — a leak check
// for fault tests.
func (f *Fabric) LiveConns() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.tracks)
}
