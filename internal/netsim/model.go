package netsim

import "time"

// HopKind classifies a traversal station on a route; each kind has its own
// per-packet processing cost in the Model.
type HopKind int

// Hop kinds.
const (
	// HopVirtio is the hypervisor<->guest packet copy at a VM boundary. The
	// paper identifies this single-threaded copy as the dominant routing
	// cost ("the intra-host packet transfer contributes more to the routing
	// overhead than the inter-host packet transfer").
	HopVirtio HopKind = iota + 1
	// HopWire is an inter-host physical link traversal.
	HopWire
	// HopSwitch is a virtual switch (OVS) table lookup and forward.
	HopSwitch
	// HopForward is kernel IP forwarding inside a middle-box VM that is on
	// the path but not terminating the connection (the MB-FWD case).
	HopForward
	// HopBridge is an intra-host software bridge between two endpoints on
	// the same physical host.
	HopBridge
)

// String renders the hop kind.
func (k HopKind) String() string {
	switch k {
	case HopVirtio:
		return "virtio"
	case HopWire:
		return "wire"
	case HopSwitch:
		return "switch"
	case HopForward:
		return "forward"
	case HopBridge:
		return "bridge"
	default:
		return "hop(?)"
	}
}

// Hop is one traversal station on a route. Host names the physical host
// charged for the processing cost (empty for wire legs). Stage optionally
// labels the hop for the observability spine: a non-empty Stage routes the
// hop's share of each frame's delay into the "stage.<Stage>" latency
// histogram of the default obs registry (splice tags its gateway and
// MB-FWD hops this way).
type Hop struct {
	Kind  HopKind
	Host  string
	Stage string
}

// Model holds the fabric's latency and cost constants. The defaults are
// scaled-down analogues of the paper's 1 GbE testbed chosen so that the
// benchmark suite completes in seconds while preserving the relative shape
// of every figure; see EXPERIMENTS.md for the calibration notes.
type Model struct {
	// MTU is the frame size connections are chunked into for cost
	// accounting (a jumbo-frame analogue; larger values speed simulation).
	MTU int
	// Bandwidth is the per-link serialization rate in bytes/second.
	Bandwidth int64
	// Latency is the propagation delay per hop kind.
	Latency map[HopKind]time.Duration
	// PerPacket is the per-frame processing cost per hop kind; these costs
	// accumulate across hops without pipelining, modelling the synchronous
	// single-threaded packet copying the paper blames for routing overhead.
	PerPacket map[HopKind]time.Duration
}

// DefaultModel returns the calibrated fabric constants.
func DefaultModel() Model {
	return Model{
		MTU:       8 * 1024,
		Bandwidth: 1 << 30, // ~1 GiB/s serialization
		Latency: map[HopKind]time.Duration{
			HopVirtio:  8 * time.Microsecond,
			HopWire:    60 * time.Microsecond,
			HopSwitch:  4 * time.Microsecond,
			HopForward: 10 * time.Microsecond,
			HopBridge:  15 * time.Microsecond,
		},
		PerPacket: map[HopKind]time.Duration{
			HopVirtio:  22 * time.Microsecond,
			HopWire:    2 * time.Microsecond,
			HopSwitch:  2 * time.Microsecond,
			HopForward: 8 * time.Microsecond,
			HopBridge:  10 * time.Microsecond,
		},
	}
}

// PathCost summarizes the modelled cost of one route direction.
type PathCost struct {
	// Propagation is the fixed one-way delay added to every frame.
	Propagation time.Duration
	// PerFrame is the additional spacing between consecutive frames
	// (processing at every station plus serialization of MTU bytes).
	PerFrame time.Duration
	// PerByte is the serialization cost per payload byte.
	PerByte time.Duration
}

// Cost computes the path cost of traversing hops under the model.
func (m Model) Cost(hops []Hop) PathCost {
	var c PathCost
	for _, h := range hops {
		c.Propagation += m.Latency[h.Kind]
		c.PerFrame += m.PerPacket[h.Kind]
	}
	if m.Bandwidth > 0 {
		c.PerByte = time.Duration(float64(time.Second) / float64(m.Bandwidth))
	}
	return c
}

// FrameDelay returns the pacing cost of one frame of n payload bytes.
func (c PathCost) FrameDelay(n int) time.Duration {
	return c.PerFrame + time.Duration(n)*c.PerByte
}
