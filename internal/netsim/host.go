package netsim

import (
	"fmt"
	"net"

	"repro/internal/metrics"
)

type guestKey struct {
	net Network
	ip  string
}

// Host is a physical machine on the fabric with one NIC per attached
// network and a CPU account charged for packet processing and (by the upper
// layers) service work.
type Host struct {
	name   string
	fabric *Fabric
	ips    map[Network]string
	cpu    *metrics.CPUAccount

	// guestIPs registers per-VM instance-network addresses hosted here.
	guestIPs map[guestKey]string
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// IP returns the host's address on the given network ("" if not attached).
func (h *Host) IP(n Network) string { return h.ips[n] }

// CPU returns the host's CPU account.
func (h *Host) CPU() *metrics.CPUAccount { return h.cpu }

// Fabric returns the owning fabric.
func (h *Host) Fabric() *Fabric { return h.fabric }

// NewEndpoint creates a host-level endpoint (no virtio boundary), such as
// the iSCSI target daemon or a storage gateway.
func (h *Host) NewEndpoint(name string) *Endpoint {
	return &Endpoint{name: name, host: h}
}

// NewGuest creates a guest (VM) endpoint on this host. Traffic to and from
// it crosses the virtio boundary. On the instance network the guest owns
// its own IP; on the storage network guests share the host NIC (as in the
// paper, where the iSCSI initiator runs on the compute host).
func (h *Host) NewGuest(name, instanceIP string) (*Endpoint, error) {
	ep := &Endpoint{name: name, host: h, guest: true, instanceIP: instanceIP}
	if instanceIP != "" {
		h.fabric.mu.Lock()
		defer h.fabric.mu.Unlock()
		if h.guestIPs == nil {
			h.guestIPs = make(map[guestKey]string)
		}
		k := guestKey{InstanceNet, instanceIP}
		if owner, ok := h.guestIPs[k]; ok {
			return nil, fmt.Errorf("netsim: instance IP %s already owned by %s", instanceIP, owner)
		}
		h.guestIPs[k] = name
	}
	return ep, nil
}

// RemoveGuest releases a guest's instance-network address so the host can
// place another guest there (scale-down teardown). Endpoints holding the
// address keep working until closed; only the ownership registration goes.
func (h *Host) RemoveGuest(instanceIP string) {
	if instanceIP == "" {
		return
	}
	h.fabric.mu.Lock()
	defer h.fabric.mu.Unlock()
	delete(h.guestIPs, guestKey{InstanceNet, instanceIP})
}

// Endpoint is a dialing/listening identity attached to a host: either a
// host-level process or a guest VM.
type Endpoint struct {
	name       string
	host       *Host
	guest      bool
	instanceIP string
}

// Name returns the endpoint name.
func (e *Endpoint) Name() string { return e.name }

// Host returns the host the endpoint lives on.
func (e *Endpoint) Host() *Host { return e.host }

// Guest reports whether the endpoint is a VM (crosses virtio).
func (e *Endpoint) Guest() bool { return e.guest }

// IP returns the endpoint's address on the given network.
func (e *Endpoint) IP(n Network) string {
	if e.guest && n == InstanceNet && e.instanceIP != "" {
		return e.instanceIP
	}
	return e.host.ips[n]
}

// Dial opens a connection to hostport on the given network, routed by the
// fabric's forwarding plane.
func (e *Endpoint) Dial(network Network, hostport string) (*Conn, error) {
	dst, err := ParseHostPort(network, hostport)
	if err != nil {
		return nil, err
	}
	return e.host.fabric.dial(e, dst)
}

// DialAddr is Dial with a pre-parsed address.
func (e *Endpoint) DialAddr(dst Addr) (*Conn, error) {
	return e.host.fabric.dial(e, dst)
}

// Listen binds a listener at the endpoint's address on the given network
// and port.
func (e *Endpoint) Listen(network Network, port int) (*Listener, error) {
	ip := e.IP(network)
	if ip == "" {
		return nil, fmt.Errorf("netsim: endpoint %s has no NIC on the %s network", e.name, network)
	}
	return e.ListenAddr(Addr{Net: network, IP: ip, Port: port})
}

// ListenAddr binds a listener at an explicit address (which must belong to
// this endpoint's host or guest identity).
func (e *Endpoint) ListenAddr(addr Addr) (*Listener, error) {
	if addr.Port <= 0 {
		return nil, fmt.Errorf("netsim: invalid listen port %d", addr.Port)
	}
	l := &Listener{
		addr:     addr,
		endpoint: e,
		backlog:  make(chan *Conn, 64),
		done:     make(chan struct{}),
	}
	if err := e.host.fabric.registerListener(l); err != nil {
		return nil, err
	}
	return l, nil
}

var _ net.Addr = Addr{}
