package middlebox

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/faults"
)

// flakyBackend is a unit-test backend over a shared MemDisk: writes fail
// while down is set, Close never touches the shared disk, and every
// successful write is recorded in apply order.
type flakyBackend struct {
	disk *blockdev.MemDisk
	down atomic.Bool

	mu  sync.Mutex
	log []appliedWrite

	closed atomic.Int32
}

type appliedWrite struct {
	lba   uint64
	first byte
}

var errBackendDown = errors.New("backend session lost")

func (b *flakyBackend) BlockSize() int { return b.disk.BlockSize() }
func (b *flakyBackend) Blocks() uint64 { return b.disk.Blocks() }

func (b *flakyBackend) WriteAt(p []byte, lba uint64) error {
	if b.down.Load() {
		return errBackendDown
	}
	if err := b.disk.WriteAt(p, lba); err != nil {
		return err
	}
	b.mu.Lock()
	b.log = append(b.log, appliedWrite{lba: lba, first: p[0]})
	b.mu.Unlock()
	return nil
}

func (b *flakyBackend) ReadAt(p []byte, lba uint64) error {
	if b.down.Load() {
		return errBackendDown
	}
	return b.disk.ReadAt(p, lba)
}

func (b *flakyBackend) Flush() error {
	if b.down.Load() {
		return errBackendDown
	}
	return nil
}

func (b *flakyBackend) Close() error {
	b.closed.Add(1)
	return nil
}

func (b *flakyBackend) applied() []appliedWrite {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]appliedWrite(nil), b.log...)
}

// waitDegraded spins until the device enters (or leaves) degraded mode.
func waitDegraded(t *testing.T, wb *WriteBackDevice, want bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for wb.Degraded() != want {
		if time.Now().After(deadline) {
			t.Fatalf("device never reached degraded=%v", want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWriteBackRecoversAndReplaysJournal kills the backend mid-workload via
// a seed-deterministic schedule, lets the reopen hook fail twice, and
// asserts the full workload lands with the journal drained — the tentpole's
// replay path plus the StateFailed byte-reclaim fix in one run.
func TestWriteBackRecoversAndReplaysJournal(t *testing.T) {
	disk, err := blockdev.NewMemDisk(512, 256)
	if err != nil {
		t.Fatal(err)
	}
	be := &flakyBackend{disk: disk}
	var reopens atomic.Int32
	j := NewJournal(0)
	wb := NewWriteBackRecovering(be, j, RecoveryConfig{
		Reopen: func() (blockdev.Device, error) {
			if reopens.Add(1) <= 2 {
				return nil, errBackendDown
			}
			return &flakyBackend{disk: disk}, nil
		},
		BackoffBase: time.Millisecond,
		BackoffCap:  2 * time.Millisecond,
	})

	sched := faults.NewSchedule()
	sched.At(5, "kill-backend", func() { be.down.Store(true) })

	const n = 10
	for i := 0; i < n; i++ {
		p := bytes.Repeat([]byte{byte(i + 1)}, 512)
		if err := wb.WriteAt(p, uint64(i)); err != nil {
			t.Fatalf("WriteAt #%d: %v", i, err)
		}
		sched.Step()
	}
	if err := wb.Flush(); err != nil {
		t.Fatalf("Flush after recovery: %v", err)
	}
	for i := 0; i < n; i++ {
		got := make([]byte, 512)
		if err := disk.ReadAt(got, uint64(i)); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i+1) {
			t.Errorf("block %d = %d, want %d", i, got[0], i+1)
		}
	}
	if got := reopens.Load(); got != 3 {
		t.Errorf("reopen attempts = %d, want 3 (two failures then success)", got)
	}
	if len(j.Failures()) == 0 {
		t.Error("backend outage recorded no journal failures")
	}
	if used := j.UsedBytes(); used != 0 {
		t.Errorf("Journal.UsedBytes() = %d after recovery, want 0", used)
	}
	if p := j.Pending(); p != 0 {
		t.Errorf("Journal.Pending() = %d after recovery, want 0", p)
	}
	if wb.Degraded() {
		t.Error("device still degraded after recovery")
	}
	if err := wb.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestWriteBackReplayOrdersBeforeParkedWrites pins the sequence-order
// guarantee: a failed write to an extent replays before a newer parked write
// to the same extent applies, so the newest data wins.
func TestWriteBackReplayOrdersBeforeParkedWrites(t *testing.T) {
	disk, err := blockdev.NewMemDisk(512, 64)
	if err != nil {
		t.Fatal(err)
	}
	be := &flakyBackend{disk: disk}
	be.down.Store(true)
	heal := make(chan struct{})
	healed := &flakyBackend{disk: disk}
	j := NewJournal(0)
	wb := NewWriteBackRecovering(be, j, RecoveryConfig{
		Reopen: func() (blockdev.Device, error) {
			<-heal // hold recovery until the test parked its write
			return healed, nil
		},
		BackoffBase: time.Millisecond,
	})

	a := bytes.Repeat([]byte{'A'}, 512)
	if err := wb.WriteAt(a, 7); err != nil {
		t.Fatalf("WriteAt A: %v", err)
	}
	waitDegraded(t, wb, true)

	// The backend is down and recovery is gated: this write parks.
	b := bytes.Repeat([]byte{'B'}, 512)
	if err := wb.WriteAt(b, 7); err != nil {
		t.Fatalf("WriteAt B: %v", err)
	}
	close(heal)

	if err := wb.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got := make([]byte, 512)
	if err := disk.ReadAt(got, 7); err != nil {
		t.Fatal(err)
	}
	if got[0] != 'B' {
		t.Fatalf("block 7 = %q, want 'B' (parked write must apply after replay)", got[0])
	}
	log := healed.applied()
	if len(log) != 2 || log[0].first != 'A' || log[1].first != 'B' {
		t.Fatalf("apply order on recovered backend = %+v, want A then B", log)
	}
	if used := j.UsedBytes(); used != 0 {
		t.Errorf("Journal.UsedBytes() = %d, want 0", used)
	}
	if err := wb.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestWriteBackRecoveryExhaustionFailsTerminally checks the bounded side of
// recovery: when every reopen fails, callers get a terminal error instead of
// a hang, and the journal records the stranded writes for audit.
func TestWriteBackRecoveryExhaustionFailsTerminally(t *testing.T) {
	disk, err := blockdev.NewMemDisk(512, 64)
	if err != nil {
		t.Fatal(err)
	}
	be := &flakyBackend{disk: disk}
	be.down.Store(true)
	j := NewJournal(0)
	wb := NewWriteBackRecovering(be, j, RecoveryConfig{
		Reopen:      func() (blockdev.Device, error) { return nil, errBackendDown },
		MaxReopens:  2,
		BackoffBase: time.Millisecond,
	})

	if err := wb.WriteAt(make([]byte, 512), 0); err != nil {
		t.Fatalf("first WriteAt should early-ack: %v", err)
	}
	// The write fails, recovery runs out of reopens, and the device turns
	// terminal; poll until the terminal error surfaces on new writes.
	deadline := time.Now().Add(5 * time.Second)
	var werr error
	for {
		werr = wb.WriteAt(make([]byte, 512), 1)
		if werr != nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if werr == nil || !strings.Contains(werr.Error(), "recovery failed") {
		t.Fatalf("post-exhaustion WriteAt err = %v, want terminal recovery error", werr)
	}
	if err := wb.Flush(); err == nil || !strings.Contains(err.Error(), "recovery failed") {
		t.Fatalf("Flush err = %v, want terminal recovery error", err)
	}
	if len(j.Failures()) == 0 {
		t.Error("stranded writes recorded no journal failures")
	}
	done := make(chan error, 1)
	go func() { done <- wb.Close() }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung after terminal recovery failure")
	}
}

// TestJournalRecompleteReclaimsFailedBytes is the direct regression test for
// the StateFailed capacity leak: a failed entry keeps its bytes until replay
// re-completes it, at which point the space must come back.
func TestJournalRecompleteReclaimsFailedBytes(t *testing.T) {
	j := NewJournal(1024)
	seq, _, err := j.Append(3, make([]byte, 512))
	if err != nil {
		t.Fatal(err)
	}
	j.Complete(seq, errBackendDown)
	if used := j.UsedBytes(); used != 512 {
		t.Fatalf("UsedBytes after failure = %d, want 512 (kept for replay)", used)
	}
	if got := len(j.Failures()); got != 1 {
		t.Fatalf("Failures = %d, want 1", got)
	}
	un := j.Unapplied()
	if len(un) != 1 || un[0].Seq != seq || un[0].State != StateFailed {
		t.Fatalf("Unapplied = %+v, want the failed entry", un)
	}
	// Replay path: re-complete with success reclaims the bytes.
	j.Complete(seq, nil)
	if used := j.UsedBytes(); used != 0 {
		t.Fatalf("UsedBytes after re-complete = %d, want 0", used)
	}
	if len(j.Unapplied()) != 0 {
		t.Fatal("entry still journaled after re-complete")
	}
	// The freed capacity is usable again.
	if _, _, err := j.Append(0, make([]byte, 1024)); err != nil {
		t.Fatalf("Append after reclaim: %v", err)
	}
}
