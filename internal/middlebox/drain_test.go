package middlebox

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/initiator"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/target"
	"repro/internal/testutil"
	"repro/internal/xerr"
)

// multiListener yields pushed connections until closed, letting a test open
// several front sessions against one relay.
type multiListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func newMultiListener() *multiListener {
	return &multiListener{ch: make(chan net.Conn, 8), done: make(chan struct{})}
}

func (l *multiListener) push(c net.Conn) { l.ch <- c }

func (l *multiListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, errors.New("closed")
	}
}

func (l *multiListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *multiListener) Addr() net.Addr { return netsim.Addr{} }

// drainTestbed builds a relay in front of a real target and returns it with
// a login function that opens a fresh front session.
func drainTestbed(t *testing.T, mode Mode, reg *obs.Registry) (*Relay, func() (*initiator.Session, error)) {
	t.Helper()
	disk, err := blockdev.NewMemDisk(512, 2048)
	if err != nil {
		t.Fatal(err)
	}
	tsrv := target.NewServer()
	const iqn = "iqn.2016-04.edu.purdue.storm:vol1"
	if err := tsrv.AddTarget(iqn, disk); err != nil {
		t.Fatal(err)
	}
	relay, err := NewRelay(Config{
		Name: "mb1",
		Mode: mode,
		Dial: func(netsim.Addr) (net.Conn, error) {
			c, s := net.Pipe()
			go tsrv.Serve(newOneShotListener(s))
			return c, nil
		},
		NextHop: netsim.Addr{Net: netsim.StorageNet, IP: "10.0.0.100", Port: 3260},
		// Non-zero model with zero per-op costs: functional test, no sleeps.
		Cost: CostModel{MTU: 8192, BatchSize: 65536},
		Obs:  reg,
	})
	if err != nil {
		t.Fatalf("NewRelay: %v", err)
	}
	ml := newMultiListener()
	go relay.Serve(ml)
	t.Cleanup(func() {
		relay.Close()
		tsrv.Close()
	})
	login := func() (*initiator.Session, error) {
		front, back := net.Pipe()
		ml.push(back)
		return initiator.Login(front, initiator.Config{InitiatorIQN: "iqn.vm1", TargetIQN: iqn})
	}
	return relay, login
}

func waitQuiesced(t *testing.T, r *Relay) {
	t.Helper()
	testutil.WaitFor(t, 2*time.Second, "relay to quiesce", r.Quiesced)
}

func TestRelayDrainLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	relay, login := drainTestbed(t, Active, reg)

	sess, err := login()
	if err != nil {
		t.Fatalf("login: %v", err)
	}
	if got := relay.ActiveSessions(); got != 1 {
		t.Fatalf("ActiveSessions = %d, want 1", got)
	}
	if got := reg.Gauge("relay.mb1.sessions").Value(); got != 1 {
		t.Fatalf("sessions gauge = %d, want 1", got)
	}

	relay.Drain()
	if !relay.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	if relay.Quiesced() {
		t.Fatal("Quiesced() true with a live session")
	}
	// New logins are refused while draining — and the refusal travels the
	// wire as a terminal status, so initiators fail fast instead of
	// redialing an instance that is going away.
	if _, err := login(); err == nil {
		t.Fatal("login during drain succeeded, want refusal")
	} else if !xerr.IsTerminal(err) {
		t.Fatalf("drain refusal classed %v (%v), want Terminal on the initiator side", xerr.Classify(err), err)
	}
	// ...but the established session keeps full service.
	if err := sess.Write(0, make([]byte, 512), 512); err != nil {
		t.Fatalf("Write during drain: %v", err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatalf("Flush during drain: %v", err)
	}
	st := relay.DrainStatus()
	if !st.Draining || st.Sessions != 1 {
		t.Fatalf("DrainStatus = %+v, want draining with 1 session", st)
	}

	_ = sess.Close()
	waitQuiesced(t, relay)
	st = relay.DrainStatus()
	if st.Sessions != 0 || st.JournalBytes != 0 || st.JournalPending != 0 {
		t.Fatalf("DrainStatus after quiesce = %+v, want all zero", st)
	}
	if got := reg.Gauge("relay.mb1.sessions").Value(); got != 0 {
		t.Fatalf("sessions gauge after quiesce = %d, want 0", got)
	}

	// CancelDrain restores service for new sessions.
	relay.CancelDrain()
	s2, err := login()
	if err != nil {
		t.Fatalf("login after CancelDrain: %v", err)
	}
	_ = s2.Close()
}

func TestRelayPassiveDrainCountsSessions(t *testing.T) {
	relay, login := drainTestbed(t, Passive, nil)
	s1, err := login()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := login()
	if err != nil {
		t.Fatal(err)
	}
	if got := relay.ActiveSessions(); got != 2 {
		t.Fatalf("ActiveSessions = %d, want 2", got)
	}
	relay.Drain()
	_ = s1.Close()
	_ = s2.Close()
	waitQuiesced(t, relay)
}

// TestCopyGateSerializesInterception checks that CostModel.CopyThreads
// bounds concurrent copies: with one thread, four 10ms copies across two
// sessions must take at least ~40ms of wall clock, and the busy counter
// accounts the charged time.
func TestCopyGateSerializesInterception(t *testing.T) {
	disk, err := blockdev.NewMemDisk(512, 64)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{}, 1)
	busy := obs.NewRegistry().Counter("busy")
	cost := CostModel{PassivePerPacket: 10 * time.Millisecond, MTU: 8192, CopyThreads: 1}
	mk := func() *interceptDevice {
		d := newInterceptDevice(disk, Passive, cost, nil)
		d.gate = gate
		d.busy = busy
		return d
	}
	sessions := []*interceptDevice{mk(), mk()}
	start := time.Now()
	var wg sync.WaitGroup
	for _, d := range sessions {
		wg.Add(1)
		go func(d *interceptDevice) {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				if err := d.ReadAt(make([]byte, 512), 0); err != nil {
					t.Errorf("ReadAt: %v", err)
				}
			}
		}(d)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 38*time.Millisecond {
		t.Errorf("gated copies overlapped: 4 serialized 10ms copies finished in %v", elapsed)
	}
	if got := busy.Value(); got < int64(40*time.Millisecond) {
		t.Errorf("busy counter = %dns, want >= 40ms of charged copy time", got)
	}
}

func TestDefaultCostPreservedWithCopyThreads(t *testing.T) {
	// Setting only CopyThreads must still substitute the default per-op
	// costs, as a fully zero model does.
	r, err := NewRelay(Config{
		Name:    "mb1",
		Mode:    Active,
		NextHop: netsim.Addr{Net: netsim.StorageNet, IP: "10.0.0.1", Port: 3260},
		Dial:    func(netsim.Addr) (net.Conn, error) { return nil, errors.New("unused") },
		Cost:    CostModel{CopyThreads: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultCostModel()
	if r.cfg.Cost.ActivePerBatch != def.ActivePerBatch || r.cfg.Cost.PassivePerPacket != def.PassivePerPacket {
		t.Fatalf("cost model = %+v, want defaults with CopyThreads=2", r.cfg.Cost)
	}
	if r.CopyThreads() != 2 {
		t.Fatalf("CopyThreads() = %d, want 2", r.CopyThreads())
	}
	if cap(r.copyGate) != 2 {
		t.Fatalf("copy gate capacity = %d, want 2", cap(r.copyGate))
	}
}
