package middlebox

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/initiator"
	"repro/internal/netsim"
	"repro/internal/target"
)

func TestJournalLifecycle(t *testing.T) {
	j := NewJournal(0)
	seq, _, err := j.Append(10, []byte("abcd"))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if j.Pending() != 1 || j.UsedBytes() != 4 {
		t.Errorf("pending=%d used=%d, want 1/4", j.Pending(), j.UsedBytes())
	}
	j.Complete(seq, nil)
	if j.Pending() != 0 || j.UsedBytes() != 0 {
		t.Errorf("after Complete: pending=%d used=%d", j.Pending(), j.UsedBytes())
	}
	if len(j.Failures()) != 0 {
		t.Error("unexpected failures")
	}
}

func TestJournalCapacity(t *testing.T) {
	j := NewJournal(8)
	if _, _, err := j.Append(0, []byte("12345678")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, _, err := j.Append(1, []byte("x")); !errors.Is(err, ErrJournalFull) {
		t.Errorf("err = %v, want ErrJournalFull", err)
	}
}

func TestJournalFailureRecorded(t *testing.T) {
	j := NewJournal(0)
	seq, _, _ := j.Append(5, []byte("data"))
	wantErr := errors.New("backend gone")
	j.Complete(seq, wantErr)
	fails := j.Failures()
	if len(fails) != 1 || !errors.Is(fails[0], wantErr) {
		t.Errorf("Failures() = %v", fails)
	}
	// Failed entries keep their space (data not yet safe downstream).
	if j.UsedBytes() != 4 {
		t.Errorf("UsedBytes = %d, want 4", j.UsedBytes())
	}
	j.Complete(999, nil) // unknown seq: no-op
}

func TestJournalCopiesData(t *testing.T) {
	j := NewJournal(0)
	buf := []byte("orig")
	j.Append(0, buf)
	buf[0] = 'X'
	// No direct accessor; validate via used bytes + absence of panic. The
	// copy property is also covered by the write-back test below.
	if j.UsedBytes() != 4 {
		t.Error("journal lost data")
	}
}

func newWB(t *testing.T) (*WriteBackDevice, *blockdev.MemDisk) {
	t.Helper()
	disk, err := blockdev.NewMemDisk(512, 256)
	if err != nil {
		t.Fatal(err)
	}
	wb := NewWriteBack(disk, NewJournal(0))
	t.Cleanup(func() { _ = wb.Close() })
	return wb, disk
}

func TestWriteBackBasic(t *testing.T) {
	wb, disk := newWB(t)
	want := bytes.Repeat([]byte{3}, 1024)
	if err := wb.WriteAt(want, 4); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	// Read-your-write through the decorator.
	got := make([]byte, 1024)
	if err := wb.ReadAt(got, 4); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("read-your-write violated")
	}
	// And it actually landed on the backend.
	direct := make([]byte, 1024)
	if err := disk.ReadAt(direct, 4); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct, want) {
		t.Error("write did not reach backend")
	}
}

func TestWriteBackEarlyAck(t *testing.T) {
	// Backend with high write latency: WriteAt must return much faster
	// than the backend service time (the early acknowledgement).
	disk, err := blockdev.NewMemDisk(512, 64)
	if err != nil {
		t.Fatal(err)
	}
	slow := blockdev.NewLatencyDisk(disk, blockdev.ServiceModel{PerRequest: 50 * time.Millisecond})
	wb := NewWriteBack(slow, NewJournal(0))
	defer wb.Close()
	start := time.Now()
	if err := wb.WriteAt(make([]byte, 512), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if el := time.Since(start); el > 25*time.Millisecond {
		t.Errorf("WriteAt took %v, want early return well under 50ms", el)
	}
	if err := wb.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if wb.Pending() != 0 {
		t.Errorf("Pending = %d after Flush", wb.Pending())
	}
}

func TestWriteBackOrderPreserved(t *testing.T) {
	wb, disk := newWB(t)
	// Issue many overlapping writes; the last value must win.
	for i := 0; i < 50; i++ {
		if err := wb.WriteAt(bytes.Repeat([]byte{byte(i)}, 512), 7); err != nil {
			t.Fatalf("WriteAt #%d: %v", i, err)
		}
	}
	if err := wb.Flush(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if err := disk.ReadAt(got, 7); err != nil {
		t.Fatal(err)
	}
	if got[0] != 49 {
		t.Errorf("final value = %d, want 49 (ack order preserved)", got[0])
	}
}

func TestWriteBackReadDoesNotWaitOnDisjointWrites(t *testing.T) {
	disk, err := blockdev.NewMemDisk(512, 256)
	if err != nil {
		t.Fatal(err)
	}
	slow := blockdev.NewLatencyDisk(disk, blockdev.ServiceModel{PerRequest: 40 * time.Millisecond})
	wb := NewWriteBack(slow, NewJournal(0))
	defer wb.Close()
	if err := wb.WriteAt(make([]byte, 512), 100); err != nil {
		t.Fatal(err)
	}
	// Reading a disjoint range must not wait for the queued write, only
	// pay its own backend read latency (~40ms), not 80ms.
	start := time.Now()
	if err := wb.ReadAt(make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 65*time.Millisecond {
		t.Errorf("disjoint read took %v, should not serialize behind the write", el)
	}
}

func TestWriteBackJournalFullFallsBackToSync(t *testing.T) {
	disk, err := blockdev.NewMemDisk(512, 64)
	if err != nil {
		t.Fatal(err)
	}
	wb := NewWriteBack(disk, NewJournal(512)) // room for one block
	defer wb.Close()
	// Many rapid writes: some will overflow the journal and go sync; all
	// must land.
	for i := 0; i < 10; i++ {
		if err := wb.WriteAt(bytes.Repeat([]byte{byte(i + 1)}, 512), uint64(i)); err != nil {
			t.Fatalf("WriteAt #%d: %v", i, err)
		}
	}
	if err := wb.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		got := make([]byte, 512)
		if err := disk.ReadAt(got, uint64(i)); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i+1) {
			t.Errorf("block %d = %d, want %d", i, got[0], i+1)
		}
	}
}

func TestWriteBackBackendFailureSticks(t *testing.T) {
	disk, err := blockdev.NewMemDisk(512, 64)
	if err != nil {
		t.Fatal(err)
	}
	fd := blockdev.NewFaultDisk(disk)
	j := NewJournal(0)
	wb := NewWriteBack(fd, j)
	defer wb.Close()
	wantErr := errors.New("replica down")
	fd.Trip(wantErr)
	if err := wb.WriteAt(make([]byte, 512), 0); err != nil {
		t.Fatalf("first WriteAt should early-ack: %v", err)
	}
	// Wait for the background apply to fail.
	deadline := time.Now().Add(time.Second)
	for len(j.Failures()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(j.Failures()) == 0 {
		t.Fatal("backend failure never recorded")
	}
	// Subsequent writes refuse early-ack with the sticky error.
	if err := wb.WriteAt(make([]byte, 512), 1); !errors.Is(err, wantErr) {
		t.Errorf("post-failure WriteAt err = %v, want %v", err, wantErr)
	}
	if err := wb.Flush(); !errors.Is(err, wantErr) {
		t.Errorf("Flush err = %v, want %v", err, wantErr)
	}
}

func TestWriteBackRejectsBadLength(t *testing.T) {
	wb, _ := newWB(t)
	if err := wb.WriteAt(make([]byte, 100), 0); !errors.Is(err, blockdev.ErrBadLength) {
		t.Errorf("WriteAt err = %v, want ErrBadLength", err)
	}
	if err := wb.ReadAt(nil, 0); !errors.Is(err, blockdev.ErrBadLength) {
		t.Errorf("ReadAt err = %v, want ErrBadLength", err)
	}
}

func TestWriteBackConcurrentMixedLoad(t *testing.T) {
	wb, _ := newWB(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g * 16)
			want := bytes.Repeat([]byte{byte(g + 1)}, 512)
			for i := 0; i < 30; i++ {
				if err := wb.WriteAt(want, base); err != nil {
					t.Errorf("WriteAt: %v", err)
					return
				}
				got := make([]byte, 512)
				if err := wb.ReadAt(got, base); err != nil {
					t.Errorf("ReadAt: %v", err)
					return
				}
				if !bytes.Equal(got, want) {
					t.Errorf("g=%d read stale data", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := wb.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestCostModel(t *testing.T) {
	c := DefaultCostModel()
	// Passive cost grows per packet.
	small := c.interceptCost(Passive, 4*1024)
	large := c.interceptCost(Passive, 256*1024)
	if large <= small {
		t.Errorf("passive cost: 256K (%v) should exceed 4K (%v)", large, small)
	}
	if got, want := large, 32*c.PassivePerPacket; got != want {
		t.Errorf("passive 256K = %v, want %v (32 packets)", got, want)
	}
	// Active batches are cheaper.
	if a := c.interceptCost(Active, 256*1024); a >= large {
		t.Errorf("active 256K (%v) should be cheaper than passive (%v)", a, large)
	}
	// Zero-byte ops still cost one unit.
	if c.interceptCost(Passive, 0) == 0 {
		t.Error("zero-length op should cost one packet")
	}
	if c.interceptCost(Mode(99), 100) != 0 {
		t.Error("unknown mode should cost nothing")
	}
}

// relayTestbed builds VM -- relay -- target over net.Pipe links.
func relayTestbed(t testing.TB, mode Mode, services ...ServiceFactory) *initiator.Session {
	t.Helper()
	// Real target.
	disk, err := blockdev.NewMemDisk(512, 2048)
	if err != nil {
		t.Fatal(err)
	}
	tsrv := target.NewServer()
	const iqn = "iqn.2016-04.edu.purdue.storm:vol1"
	if err := tsrv.AddTarget(iqn, disk); err != nil {
		t.Fatal(err)
	}

	relay, err := NewRelay(Config{
		Name: "mb1",
		Mode: mode,
		Dial: func(netsim.Addr) (net.Conn, error) {
			c, s := net.Pipe()
			go func() {
				// Serve exactly this backend connection.
				ln := newOneShotListener(s)
				tsrv.Serve(ln)
			}()
			return c, nil
		},
		NextHop:  netsim.Addr{Net: netsim.StorageNet, IP: "10.0.0.100", Port: 3260},
		Services: services,
		Cost:     CostModel{}, // zero costs for functional tests
	})
	if err != nil {
		t.Fatalf("NewRelay: %v", err)
	}
	// Hand the cost model zero values but keep mode semantics.
	relay.cfg.Cost = CostModel{MTU: 8192, BatchSize: 65536}

	front, back := net.Pipe()
	go relay.Serve(newOneShotListener(back))
	t.Cleanup(func() {
		relay.Close()
		tsrv.Close()
	})

	sess, err := initiator.Login(front, initiator.Config{
		InitiatorIQN: "iqn.vm1", TargetIQN: iqn,
	})
	if err != nil {
		t.Fatalf("Login through relay: %v", err)
	}
	t.Cleanup(func() { _ = sess.Close() })
	return sess
}

// oneShotListener yields a single connection then blocks until closed.
type oneShotListener struct {
	c    net.Conn
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func newOneShotListener(c net.Conn) *oneShotListener {
	l := &oneShotListener{c: c, ch: make(chan net.Conn, 1), done: make(chan struct{})}
	l.ch <- c
	return l
}

func (l *oneShotListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, errors.New("closed")
	}
}

func (l *oneShotListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *oneShotListener) Addr() net.Addr { return netsim.Addr{} }

func TestRelayPassiveEndToEnd(t *testing.T) {
	sess := relayTestbed(t, Passive)
	want := bytes.Repeat([]byte{0xAA}, 4096)
	if err := sess.Write(8, want, 512); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := sess.Read(8, 8, 512)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("passive relay corrupted data")
	}
}

func TestRelayActiveEndToEnd(t *testing.T) {
	sess := relayTestbed(t, Active)
	want := bytes.Repeat([]byte{0xBB}, 8192)
	if err := sess.Write(0, want, 512); err != nil {
		t.Fatalf("Write: %v", err)
	}
	// Read-your-write through the journal path.
	got, err := sess.Read(0, 16, 512)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("active relay read-your-write violated")
	}
	if err := sess.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

// xorService is a trivial involutive cipher service for testing chaining.
func xorService(key byte) ServiceFactory {
	return func(backend blockdev.Device) (blockdev.Device, error) {
		return &xorDevice{dev: backend, key: key}, nil
	}
}

type xorDevice struct {
	dev blockdev.Device
	key byte
}

func (d *xorDevice) BlockSize() int { return d.dev.BlockSize() }
func (d *xorDevice) Blocks() uint64 { return d.dev.Blocks() }

func (d *xorDevice) ReadAt(p []byte, lba uint64) error {
	if err := d.dev.ReadAt(p, lba); err != nil {
		return err
	}
	for i := range p {
		p[i] ^= d.key
	}
	return nil
}

func (d *xorDevice) WriteAt(p []byte, lba uint64) error {
	enc := make([]byte, len(p))
	for i := range p {
		enc[i] = p[i] ^ d.key
	}
	return d.dev.WriteAt(enc, lba)
}

func (d *xorDevice) Flush() error { return d.dev.Flush() }
func (d *xorDevice) Close() error { return d.dev.Close() }

func TestRelayServiceChain(t *testing.T) {
	sess := relayTestbed(t, Active, xorService(0x5A), xorService(0x33))
	want := bytes.Repeat([]byte{0x11}, 1024)
	if err := sess.Write(4, want, 512); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := sess.Read(4, 2, 512)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("service chain is not transparent end-to-end")
	}
}

func TestRelayInvalidConfig(t *testing.T) {
	if _, err := NewRelay(Config{Mode: Mode(9), Endpoint: &netsim.Endpoint{}}); err == nil {
		t.Error("invalid mode: want error")
	}
	if _, err := NewRelay(Config{Mode: Active}); err == nil {
		t.Error("missing dialer: want error")
	}
}

func TestModeString(t *testing.T) {
	if Passive.String() != "passive-relay" || Active.String() != "active-relay" {
		t.Error("mode strings wrong")
	}
	if Mode(0).String() != "relay(?)" {
		t.Error("unknown mode string wrong")
	}
}
