package middlebox

import (
	"testing"
	"time"

	"repro/internal/blockdev"
)

// gateDisk blocks WriteAt until the gate closes, so benchmarks and tests can
// build a deterministic pending-write queue depth.
type gateDisk struct {
	dev  blockdev.Device
	gate chan struct{}
}

func (g *gateDisk) BlockSize() int                    { return g.dev.BlockSize() }
func (g *gateDisk) Blocks() uint64                    { return g.dev.Blocks() }
func (g *gateDisk) ReadAt(p []byte, lba uint64) error { return g.dev.ReadAt(p, lba) }
func (g *gateDisk) Flush() error                      { return g.dev.Flush() }
func (g *gateDisk) Close() error                      { return g.dev.Close() }
func (g *gateDisk) WriteAt(p []byte, lba uint64) error {
	<-g.gate
	return g.dev.WriteAt(p, lba)
}

// benchWritebackDrain measures admitting depth writes against a gated
// backend (so the queue actually reaches that depth) and then draining. The
// ns/write metric divides by the queue depth; a dispatch index that scales
// should keep it flat as depth grows.
func benchWritebackDrain(b *testing.B, depth int, overlap bool) {
	b.ReportAllocs()
	buf := make([]byte, 512)
	var total time.Duration
	for iter := 0; iter < b.N; iter++ {
		b.StopTimer()
		disk, err := blockdev.NewMemDisk(512, uint64(depth)+16)
		if err != nil {
			b.Fatal(err)
		}
		gate := make(chan struct{})
		wb := NewWriteBack(&gateDisk{dev: disk, gate: gate}, NewJournal(0))
		b.StartTimer()
		start := time.Now()
		for i := 0; i < depth; i++ {
			lba := uint64(0)
			if !overlap {
				lba = uint64(i)
			}
			if err := wb.WriteAt(buf, lba); err != nil {
				b.Fatal(err)
			}
		}
		close(gate)
		if err := wb.Flush(); err != nil {
			b.Fatal(err)
		}
		total += time.Since(start)
		b.StopTimer()
		_ = wb.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(total.Nanoseconds())/float64(b.N*depth), "ns/write")
}

// Disjoint writes: every extent unique, maximal apply parallelism.
func BenchmarkWritebackDrain64(b *testing.B)   { benchWritebackDrain(b, 64, false) }
func BenchmarkWritebackDrain256(b *testing.B)  { benchWritebackDrain(b, 256, false) }
func BenchmarkWritebackDrain1024(b *testing.B) { benchWritebackDrain(b, 1024, false) }

// Fully overlapping writes: a pure serial dependency chain — the worst case
// for the old O(n²) scan, which re-walked the whole queue per dispatch.
func BenchmarkWritebackOverlapDrain64(b *testing.B)   { benchWritebackDrain(b, 64, true) }
func BenchmarkWritebackOverlapDrain256(b *testing.B)  { benchWritebackDrain(b, 256, true) }
func BenchmarkWritebackOverlapDrain1024(b *testing.B) { benchWritebackDrain(b, 1024, true) }

// BenchmarkWritebackCoalesce measures sequential adjacent 4 KiB writes with
// a slow backend; coalescing should collapse them into far fewer applies.
// The applies/write metric reports the measured merge factor.
func BenchmarkWritebackCoalesce(b *testing.B) {
	b.ReportAllocs()
	disk, err := blockdev.NewMemDisk(512, 4096)
	if err != nil {
		b.Fatal(err)
	}
	slow := blockdev.NewLatencyDisk(disk, blockdev.ServiceModel{PerRequest: 20 * time.Microsecond})
	counting := blockdev.NewCountingDisk(slow)
	wb := NewWriteBack(counting, NewJournal(0))
	defer wb.Close()
	buf := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wb.WriteAt(buf, uint64((i%512)*8)); err != nil {
			b.Fatal(err)
		}
	}
	if err := wb.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(counting.Writes())/float64(b.N), "applies/write")
}

// Full-chain benchmarks: VM initiator → active relay (journal + write-back)
// → backend target over in-process pipes, the exact per-command path the
// paper's Figures 9–10 measure.
func BenchmarkChainWrite4K(b *testing.B) {
	sess := relayTestbed(b, Active)
	buf := make([]byte, 4096)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := sess.Write(uint64((i%64)*8), buf, 512); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChainRead4K(b *testing.B) {
	sess := relayTestbed(b, Active)
	buf := make([]byte, 4096)
	if err := sess.Write(0, buf, 512); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sess.ReadInto(buf, 0, 8, 512); err != nil {
			b.Fatal(err)
		}
	}
}
