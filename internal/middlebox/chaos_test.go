package middlebox

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/faults"
	"repro/internal/initiator"
	"repro/internal/netsim"
	"repro/internal/target"
)

// connQueue is a listener fed by tests: every connection pushed to ch is
// accepted by the serving loop, so one Serve goroutine handles any number of
// sessions (unlike oneShotListener).
type connQueue struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func newConnQueue() *connQueue {
	return &connQueue{ch: make(chan net.Conn, 4), done: make(chan struct{})}
}

func (l *connQueue) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, errors.New("closed")
	}
}

func (l *connQueue) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *connQueue) Addr() net.Addr { return netsim.Addr{} }

// TestRelayRetiresJournalsAcrossSessionChurn is the regression test for the
// journal-registry leak: a thousand login/logout cycles must not accumulate
// journals — each session's journal retires once it closes clean.
func TestRelayRetiresJournalsAcrossSessionChurn(t *testing.T) {
	disk, err := blockdev.NewMemDisk(512, 64)
	if err != nil {
		t.Fatal(err)
	}
	tsrv := target.NewServer()
	const iqn = "iqn.2016-04.edu.purdue.storm:churn"
	if err := tsrv.AddTarget(iqn, disk); err != nil {
		t.Fatal(err)
	}
	backendQ := newConnQueue()
	go tsrv.Serve(backendQ)

	relay, err := NewRelay(Config{
		Name: "mb-churn",
		Mode: Active,
		Dial: func(netsim.Addr) (net.Conn, error) {
			c, s := net.Pipe()
			backendQ.ch <- s
			return c, nil
		},
		NextHop: netsim.Addr{Net: netsim.StorageNet, IP: "10.0.0.100", Port: 3260},
		Cost:    CostModel{MTU: 8192, BatchSize: 65536},
	})
	if err != nil {
		t.Fatal(err)
	}
	frontQ := newConnQueue()
	go relay.Serve(frontQ)
	t.Cleanup(func() {
		relay.Close()
		tsrv.Close()
	})

	payload := bytes.Repeat([]byte{0xC7}, 512)
	const cycles = 1000
	for i := 0; i < cycles; i++ {
		front, back := net.Pipe()
		frontQ.ch <- back
		sess, err := initiator.Login(front, initiator.Config{
			InitiatorIQN: "iqn.vm-churn", TargetIQN: iqn,
		})
		if err != nil {
			t.Fatalf("cycle %d: login: %v", i, err)
		}
		if err := sess.Write(uint64(i%32), payload, 512); err != nil {
			t.Fatalf("cycle %d: write: %v", i, err)
		}
		if err := sess.Logout(); err != nil {
			t.Fatalf("cycle %d: logout: %v", i, err)
		}
	}

	// Session teardown on the relay side is asynchronous with Logout's
	// response; wait for the registry to empty out.
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := len(relay.AllJournals())
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d journals still registered after %d clean sessions", n, cycles)
		}
		time.Sleep(time.Millisecond)
	}
}

// chaosRun drives one write workload from a VM through an active relay to a
// storage target over the netsim fabric, cutting the relay→storage link at
// the given logical ticks, and returns the content hash read back through
// the relay plus the session journal for post-run audit. Fault timing is
// purely schedule-driven: the clock advances once per acknowledged write.
func chaosRun(t *testing.T, cuts ...uint64) ([32]byte, Journal) {
	t.Helper()
	model := netsim.Model{MTU: 8 * 1024, Bandwidth: 1 << 32,
		Latency: map[netsim.HopKind]time.Duration{}, PerPacket: map[netsim.HopKind]time.Duration{}}
	fab := netsim.NewFabric(model)
	vmHost, err := fab.AddHost("compute1", map[netsim.Network]string{netsim.StorageNet: "10.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	mbHost, err := fab.AddHost("mb1", map[netsim.Network]string{netsim.StorageNet: "10.0.0.50"})
	if err != nil {
		t.Fatal(err)
	}
	storHost, err := fab.AddHost("storage1", map[netsim.Network]string{netsim.StorageNet: "10.0.0.100"})
	if err != nil {
		t.Fatal(err)
	}

	disk, err := blockdev.NewMemDisk(512, 1024)
	if err != nil {
		t.Fatal(err)
	}
	tsrv := target.NewServer()
	const iqn = "iqn.2016-04.edu.purdue.storm:chaos"
	if err := tsrv.AddTarget(iqn, disk); err != nil {
		t.Fatal(err)
	}
	storLn, err := storHost.NewEndpoint("tgt").Listen(netsim.StorageNet, 3260)
	if err != nil {
		t.Fatal(err)
	}
	go tsrv.Serve(storLn)

	relay, err := NewRelay(Config{
		Name:     "mb1",
		Mode:     Active,
		Endpoint: mbHost.NewEndpoint("relay"),
		NextHop:  netsim.Addr{Net: netsim.StorageNet, IP: "10.0.0.100", Port: 3260},
		Cost:     CostModel{MTU: 8192, BatchSize: 65536},
		Recovery: RecoveryConfig{BackoffBase: time.Millisecond, BackoffCap: 4 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	mbLn, err := mbHost.NewEndpoint("front").Listen(netsim.StorageNet, 3260)
	if err != nil {
		t.Fatal(err)
	}
	go relay.Serve(mbLn)
	t.Cleanup(func() {
		relay.Close()
		tsrv.Close()
	})

	front, err := vmHost.NewEndpoint("vm").Dial(netsim.StorageNet, "10.0.0.50:3260")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := initiator.Login(front, initiator.Config{
		InitiatorIQN: "iqn.vm-chaos", TargetIQN: iqn,
	})
	if err != nil {
		t.Fatalf("login through relay: %v", err)
	}
	j := <-relay.Journals()

	sched := faults.NewSchedule()
	for _, tick := range cuts {
		sched.At(tick, fmt.Sprintf("cut@%d", tick), func() {
			fab.CutLink("mb1", "storage1")
		})
	}

	const n = 48
	for i := 0; i < n; i++ {
		p := make([]byte, 512)
		for k := range p {
			p[k] = byte(i*7 + k)
		}
		if err := sess.Write(uint64(i), p, 512); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		sched.Step()
	}
	if err := sess.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if fired := sched.Fired(); len(fired) != len(cuts) {
		t.Fatalf("fired %v, want %d cuts", fired, len(cuts))
	}

	h := sha256.New()
	for i := 0; i < n; i++ {
		b, err := sess.Read(uint64(i), 1, 512)
		if err != nil {
			t.Fatalf("read-back %d: %v", i, err)
		}
		h.Write(b)
	}
	if err := sess.Logout(); err != nil {
		t.Fatalf("logout: %v", err)
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum, j
}

// TestChaosBackendCutReplaysJournal is the acceptance chaos scenario: the
// relay's backend link is cut twice mid-workload; the relay must reconnect,
// replay the journal in sequence order, and finish the workload with content
// identical to a no-fault run and zero stuck journal bytes.
func TestChaosBackendCutReplaysJournal(t *testing.T) {
	wantHash, cleanJournal := chaosRun(t)
	if used := cleanJournal.UsedBytes(); used != 0 {
		t.Fatalf("no-fault run left %d journal bytes", used)
	}

	gotHash, j := chaosRun(t, 10, 30)
	if gotHash != wantHash {
		t.Fatal("content hash after backend cuts differs from no-fault run (lost or misordered blocks)")
	}
	if used := j.UsedBytes(); used != 0 {
		t.Errorf("Journal.UsedBytes() = %d after recovered run, want 0", used)
	}
	if j.Pending() != 0 {
		t.Errorf("Journal.Pending() = %d after recovered run, want 0", j.Pending())
	}
	if len(j.Failures()) == 0 {
		t.Error("backend cuts recorded no journal failures (fault never bit the data path?)")
	}
}
