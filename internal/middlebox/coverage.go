package middlebox

import "sort"

// covRange is one run of blocks owned by a single pending write-back item.
// Ranges are disjoint and sorted by start.
type covRange struct {
	start, end uint64
	owner      *wbItem
}

// coverage maps every block with a pending write to the latest-admitted
// pending write covering it (the block's "last writer"). It is the write-back
// engine's conflict index: a new write needs ordering edges only to the
// current owners of its extent — every older overlapping write is already
// ordered before one of those owners, block by block, so transitivity covers
// it. That keeps the dependency graph linear in the number of writes even
// when every write hits the same extent, where an all-overlapping-pairs edge
// set would grow quadratically.
//
// All methods are guarded by the engine mutex.
type coverage struct {
	r      []covRange
	owners []*wbItem // scratch for paint results, reused across calls
}

// search returns the index of the first range ending beyond lo — the first
// candidate to intersect an extent starting at lo.
func (c *coverage) search(lo uint64) int {
	return sort.Search(len(c.r), func(i int) bool { return c.r[i].end > lo })
}

// overlaps reports whether any block in [lo, hi) has a pending write.
func (c *coverage) overlaps(lo, hi uint64) bool {
	i := c.search(lo)
	return i < len(c.r) && c.r[i].start < hi
}

// paint assigns [lo, hi) to owner and returns the distinct previous owners of
// the painted-over blocks — the new write's direct dependencies. Boundary
// ranges only partly covered keep their unpainted remainder. The returned
// slice is scratch, valid until the next paint call.
func (c *coverage) paint(lo, hi uint64, owner *wbItem) []*wbItem {
	i := c.search(lo)
	j := i
	prev := c.owners[:0]
	// Surviving boundary pieces: at most a prefix (from the first replaced
	// range) and a suffix (from the last).
	var frag [2]covRange
	nfrag := 0
	for j < len(c.r) && c.r[j].start < hi {
		rg := c.r[j]
		dup := false
		for _, o := range prev {
			if o == rg.owner {
				dup = true
				break
			}
		}
		if !dup {
			prev = append(prev, rg.owner)
		}
		if rg.start < lo {
			frag[nfrag] = covRange{rg.start, lo, rg.owner}
			nfrag++
		}
		if rg.end > hi {
			frag[nfrag] = covRange{hi, rg.end, rg.owner}
			nfrag++
		}
		j++
	}
	var repl [3]covRange
	n := 0
	if nfrag > 0 && frag[0].end <= lo { // prefix piece sorts before the paint
		repl[n] = frag[0]
		n++
		frag[0] = frag[1]
		nfrag--
	}
	repl[n] = covRange{lo, hi, owner}
	n++
	if nfrag > 0 {
		repl[n] = frag[0]
		n++
	}
	c.splice(i, j, repl[:n])
	c.owners = prev
	return prev
}

// clearOwned removes every range still owned by it. All such ranges lie
// within [it.lba, it.end): paints never extend past the owner's extent, and
// later writes only shrink what it owns.
func (c *coverage) clearOwned(it *wbItem) {
	i := c.search(it.lba)
	w := i
	k := i
	for k < len(c.r) && c.r[k].start < it.end {
		if c.r[k].owner != it {
			c.r[w] = c.r[k]
			w++
		}
		k++
	}
	if w == k {
		return
	}
	n := copy(c.r[w:], c.r[k:])
	for x := w + n; x < len(c.r); x++ {
		c.r[x] = covRange{} // drop owner pointers in the vacated tail
	}
	c.r = c.r[:w+n]
}

// splice replaces c.r[i:j] with repl, shifting the tail in place.
func (c *coverage) splice(i, j int, repl []covRange) {
	old := j - i
	switch {
	case len(repl) < old:
		n := copy(c.r[i+len(repl):], c.r[j:])
		for x := i + len(repl) + n; x < len(c.r); x++ {
			c.r[x] = covRange{}
		}
		c.r = c.r[:i+len(repl)+n]
	case len(repl) > old:
		for g := old; g < len(repl); g++ {
			c.r = append(c.r, covRange{})
		}
		copy(c.r[j+len(repl)-old:], c.r[j:])
	}
	copy(c.r[i:], repl)
}
