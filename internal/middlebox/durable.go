package middlebox

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bufpool"
	"repro/internal/obs"
	"repro/internal/wal"
)

// DurableJournal is the crash-durable Journal: every append is written to a
// segmented on-disk WAL and fsynced before Append returns, so the early-ack
// contract holds across a middle-box crash — the paper's NVRAM journal
// realized with a write-ahead log. The in-memory entry map mirrors the
// unapplied set for the hot paths (dispatch, drain gates, backend-outage
// replay); the WAL is the recovery truth a replacement instance reopens.
type DurableJournal struct {
	mu       sync.Mutex
	log      *wal.Log
	capacity int
	used     int
	pending  int
	entries  map[uint64]*Entry
	failures failureRing
	closed   bool

	usedGauge *obs.Gauge
}

// NewDurableJournal creates a journal backed by a fresh WAL in dir. Meta
// identifies the journal to recovery (the relay records the backend volume
// and next hop). Capacity bounds in-flight bytes (0 means unbounded); opts
// tunes segment size and the group-commit fsync window.
func NewDurableJournal(dir string, meta wal.Meta, capacity int, opts wal.Options) (*DurableJournal, error) {
	log, err := wal.Create(dir, meta, opts)
	if err != nil {
		return nil, err
	}
	return &DurableJournal{
		log:       log,
		capacity:  capacity,
		entries:   make(map[uint64]*Entry),
		failures:  newFailureRing(),
		usedGauge: obs.Default().Gauge("journal.used_bytes"),
	}, nil
}

// Dir returns the WAL directory a recovery scan would reopen.
func (j *DurableJournal) Dir() string { return j.log.Dir() }

// Append journals the write durably: it returns only after the record is
// fsynced (possibly batched with concurrent appends by the group-commit
// window), which is what licenses the relay to early-ack. The WAL write
// happens outside the journal mutex so completes and drain polls never
// stall behind an fsync.
func (j *DurableJournal) Append(lba uint64, data []byte) (uint64, []byte, error) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return 0, nil, ErrJournalClosed
	}
	if j.capacity > 0 && j.used+len(data) > j.capacity {
		used := j.used
		j.mu.Unlock()
		obs.Default().Eventf("journal", "full: %d bytes used of %d, falling back to write-through", used, j.capacity)
		return 0, nil, fmt.Errorf("%w: %d bytes used of %d", ErrJournalFull, used, j.capacity)
	}
	// Reserve the bytes so concurrent appends cannot oversubscribe while
	// this one is out fsyncing.
	j.used += len(data)
	j.usedGauge.Add(int64(len(data)))
	j.mu.Unlock()

	seq, err := j.log.Append(lba, data)

	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		j.used -= len(data)
		j.usedGauge.Add(-int64(len(data)))
		if j.closed {
			return 0, nil, ErrJournalClosed
		}
		return 0, nil, err
	}
	if j.closed {
		// Killed while the append was in flight: the record may be on
		// disk, but the source was never acked — recovery replaying it is
		// harmless (idempotent), acking here would be wrong.
		j.used -= len(data)
		j.usedGauge.Add(-int64(len(data)))
		return 0, nil, ErrJournalClosed
	}
	dbuf := bufpool.Get(len(data))
	copy(dbuf.B, data)
	e := &Entry{
		Seq:   seq,
		LBA:   lba,
		Data:  dbuf.B,
		State: StateAcked,
		dbuf:  dbuf,
	}
	j.entries[seq] = e
	j.pending++
	return seq, e.Data, nil
}

// Complete marks the entry applied or failed. Success writes a buffered
// commit record — its durability is not awaited because losing a commit
// only costs an idempotent replay, never an acknowledged write.
func (j *DurableJournal) Complete(seq uint64, applyErr error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	e, ok := j.entries[seq]
	if !ok {
		return
	}
	if e.State == StateAcked {
		j.pending--
	}
	if applyErr != nil {
		e.State = StateFailed
		e.ApplyErr = applyErr
		j.failures.add(fmt.Errorf("middlebox: journal seq %d (lba %d): %w", seq, e.LBA, applyErr))
		return
	}
	e.State = StateApplied
	j.used -= len(e.Data)
	j.usedGauge.Add(-int64(len(e.Data)))
	delete(j.entries, seq)
	e.Data = nil
	e.dbuf.Release()
	e.dbuf = nil
	if err := j.log.Commit(seq); err != nil {
		obs.Default().Eventf("journal", "durable commit seq %d: %v", seq, err)
	}
}

// Unapplied returns the unapplied entries sorted by sequence number.
func (j *DurableJournal) Unapplied() []*Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]*Entry, 0, len(j.entries))
	for _, e := range j.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Pending returns the StateAcked entry count (counter, not a scan).
func (j *DurableJournal) Pending() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.pending
}

// UsedBytes returns the bytes held by unapplied entries.
func (j *DurableJournal) UsedBytes() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.used
}

// Failures returns the capped window of backend apply errors.
func (j *DurableJournal) Failures() []error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failures.snapshot()
}

// FailuresDropped reports failures discarded by the capped window.
func (j *DurableJournal) FailuresDropped() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failures.dropped
}

// Kill simulates the middle-box dying: the journal freezes mid-flight and
// the WAL directory is left exactly as the crash found it for a
// replacement instance to reopen and replay.
func (j *DurableJournal) Kill() {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return
	}
	j.closed = true
	j.mu.Unlock()
	j.log.Kill()
}

// Close releases the journal. Clean (nothing unapplied, no failures) means
// every acknowledged write reached the backend — the WAL owes recovery
// nothing and its directory is deleted. A dirty journal keeps its WAL on
// disk for replay or audit.
func (j *DurableJournal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	clean := len(j.entries) == 0 && j.failures.count() == 0
	j.mu.Unlock()
	if clean {
		return j.log.Remove()
	}
	return j.log.Close()
}
