// Package middlebox implements StorM's middle-box runtime (Section III-B):
// the packet interception API offered to tenant-defined storage services.
// A Relay terminates the spliced storage connection inside the middle-box
// VM as a pseudo-target, executes intercepted commands against a backend
// device reached through a pseudo-client connection to the next hop, and —
// in active-relay mode — acknowledges writes immediately after journaling
// them to non-volatile memory, hiding service processing and downstream
// forwarding latency from the data source.
//
// Tenant services plug in as blockdev.Device decorators around the backend
// (exactly the "read and write interfaces to the storage service
// processes" the paper describes), so encryption, monitoring, and
// replication compose by nesting.
package middlebox

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bufpool"
	"repro/internal/obs"
	"repro/internal/xerr"
)

// ErrJournalFull reports that the non-volatile buffer cannot accept more
// unacknowledged write data; the relay falls back to synchronous completion
// until space frees up. It is classed xerr.Overload: the condition clears
// once the appliers drain, so callers with retry budget should back off and
// retry rather than fail the write.
var ErrJournalFull = xerr.New(xerr.Overload, "middlebox: journal full")

// ErrJournalClosed reports an append against a journal that has been closed
// or crash-killed. Classed xerr.Terminal: no retry against this journal can
// succeed.
var ErrJournalClosed = xerr.New(xerr.Terminal, "middlebox: journal closed")

// EntryState tracks a journaled write through its lifecycle.
type EntryState int

// Journal entry states.
const (
	// StateAcked: the initiator has been acknowledged; the data lives only
	// in the journal.
	StateAcked EntryState = iota + 1
	// StateApplied: the write reached the backend (next hop acknowledged).
	StateApplied
	// StateFailed: the backend rejected the write after acknowledgement.
	StateFailed
)

// Entry is one journaled write. Data is pooled storage owned by the journal;
// it returns to the pool when the entry completes successfully (failed
// entries keep their data for fault-tolerance inspection).
type Entry struct {
	Seq      uint64
	LBA      uint64
	Data     []byte
	State    EntryState
	ApplyErr error

	dbuf *bufpool.Buf
}

// Journal is the middle-box's non-volatile write buffer: a copy of every
// early-acknowledged packet is kept until delivered and acknowledged by the
// next hop (Section III-B's consistency mechanism for the split
// connections). MemJournal stands in for NVRAM; DurableJournal backs the
// same contract with an on-disk WAL that survives a middle-box crash.
type Journal interface {
	// Append records a write before it is acknowledged to the source,
	// copying the data exactly once into journal-owned storage. The
	// returned slice is that stable copy: callers may alias it (read-only)
	// until they Complete the sequence — the relay's write-back pipeline
	// forwards straight out of it instead of keeping a second copy.
	// Durable implementations do not return until the record would survive
	// a crash. Fails with ErrJournalFull at capacity.
	Append(lba uint64, data []byte) (uint64, []byte, error)
	// Complete marks the entry applied (applyErr nil) or failed, releasing
	// its space on success.
	Complete(seq uint64, applyErr error)
	// Unapplied returns a snapshot of every entry whose data has not
	// reached the backend — StateAcked and StateFailed alike — sorted by
	// sequence number. Callers must treat the entries as read-only.
	Unapplied() []*Entry
	// Pending returns the number of journaled-but-unapplied StateAcked
	// entries.
	Pending() int
	// UsedBytes returns the bytes held by unapplied entries.
	UsedBytes() int
	// Failures returns backend apply errors recorded after early
	// acknowledgement — the data-loss surface fault-tolerance machinery
	// must cover. The slice is bounded; FailuresDropped counts overflow.
	Failures() []error
	// FailuresDropped reports how many failures fell out of the bounded
	// Failures window.
	FailuresDropped() int
	// Kill freezes the journal as a simulated crash would: appends and
	// completes fail or no-op, and durable state is left on disk exactly
	// as the crash found it.
	Kill()
	// Close releases the journal. A clean journal (nothing unapplied, no
	// failures) also releases any durable state; a dirty one keeps it for
	// recovery.
	Close() error
}

// maxFailures bounds the per-journal failure list: under a long backend
// outage every parked write eventually fails and an unbounded slice grows
// without limit. We keep the oldest half (how the outage began) and a ring
// of the newest half (where it stands now) and count the middle.
const maxFailures = 32

// failureRing is the capped first/last-N failure window shared by journal
// implementations. Not safe for concurrent use; callers hold their own
// mutex.
type failureRing struct {
	first   []error // the first maxFailures/2 ever recorded
	last    []error // ring of the most recent maxFailures/2
	lastPos int
	dropped int

	droppedCounter *obs.Counter
}

func newFailureRing() failureRing {
	return failureRing{droppedCounter: obs.Default().Counter("journal.failures_dropped")}
}

func (r *failureRing) add(err error) {
	if len(r.first) < maxFailures/2 {
		r.first = append(r.first, err)
		return
	}
	if len(r.last) < maxFailures/2 {
		r.last = append(r.last, err)
		return
	}
	// Overwrite the oldest of the recent ring; one failure leaves the window.
	r.last[r.lastPos] = err
	r.lastPos = (r.lastPos + 1) % len(r.last)
	r.dropped++
	r.droppedCounter.Inc()
}

func (r *failureRing) snapshot() []error {
	out := make([]error, 0, len(r.first)+len(r.last))
	out = append(out, r.first...)
	out = append(out, r.last[r.lastPos:]...)
	out = append(out, r.last[:r.lastPos]...)
	return out
}

func (r *failureRing) count() int { return len(r.first) + len(r.last) }

// MemJournal is the in-memory Journal: capacity-bounded, fast, and lost
// with the process — the data-loss surface the durable variant closes.
type MemJournal struct {
	mu       sync.Mutex
	capacity int
	used     int
	pending  int
	nextSeq  uint64
	entries  map[uint64]*Entry
	failures failureRing
	closed   bool

	usedGauge *obs.Gauge
}

// NewJournal creates an in-memory journal holding up to capacity bytes of
// unacknowledged write data (0 means unbounded).
func NewJournal(capacity int) *MemJournal {
	return &MemJournal{
		capacity:  capacity,
		entries:   make(map[uint64]*Entry),
		failures:  newFailureRing(),
		usedGauge: obs.Default().Gauge("journal.used_bytes"),
	}
}

// Append records a write before it is acknowledged to the source. The data
// is copied once into journal-owned storage (NVRAM persistence); the
// returned slice is that stable copy, valid until the entry completes. It
// fails with ErrJournalFull when capacity would be exceeded.
func (j *MemJournal) Append(lba uint64, data []byte) (uint64, []byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, nil, ErrJournalClosed
	}
	if j.capacity > 0 && j.used+len(data) > j.capacity {
		obs.Default().Eventf("journal", "full: %d bytes used of %d, falling back to write-through", j.used, j.capacity)
		return 0, nil, fmt.Errorf("%w: %d bytes used of %d", ErrJournalFull, j.used, j.capacity)
	}
	j.nextSeq++
	dbuf := bufpool.Get(len(data))
	copy(dbuf.B, data)
	e := &Entry{
		Seq:   j.nextSeq,
		LBA:   lba,
		Data:  dbuf.B,
		State: StateAcked,
		dbuf:  dbuf,
	}
	j.entries[e.Seq] = e
	j.used += len(data)
	j.pending++
	j.usedGauge.Add(int64(len(data)))
	return e.Seq, e.Data, nil
}

// Complete marks the entry applied (applyErr nil) or failed, releasing its
// space on success.
func (j *MemJournal) Complete(seq uint64, applyErr error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	e, ok := j.entries[seq]
	if !ok {
		return
	}
	if e.State == StateAcked {
		j.pending--
	}
	if applyErr != nil {
		e.State = StateFailed
		e.ApplyErr = applyErr
		j.failures.add(fmt.Errorf("middlebox: journal seq %d (lba %d): %w", seq, e.LBA, applyErr))
		return
	}
	e.State = StateApplied
	j.used -= len(e.Data)
	j.usedGauge.Add(-int64(len(e.Data)))
	delete(j.entries, seq)
	e.Data = nil
	e.dbuf.Release()
	e.dbuf = nil
}

// Unapplied returns a snapshot of every entry whose data has not reached the
// backend — StateAcked (never dispatched) and StateFailed (dispatched, backend
// rejected) alike — sorted by sequence number. Recovery replays this list in
// order; callers must treat the entries as read-only.
func (j *MemJournal) Unapplied() []*Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]*Entry, 0, len(j.entries))
	for _, e := range j.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Pending returns the number of journaled-but-unapplied entries. It is a
// counter maintained by Append/Complete, not a scan — drain quiesce gates
// and recovery loops poll it hot.
func (j *MemJournal) Pending() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.pending
}

// pendingScan recounts pending entries the slow way; tests assert it always
// matches the counter.
func (j *MemJournal) pendingScan() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, e := range j.entries {
		if e.State == StateAcked {
			n++
		}
	}
	return n
}

// UsedBytes returns the bytes held by unapplied entries.
func (j *MemJournal) UsedBytes() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.used
}

// Failures returns backend apply errors recorded after early
// acknowledgement — the data-loss surface existing fault-tolerance
// machinery must cover (Section III-B). The window is capped at maxFailures
// (oldest and newest halves); FailuresDropped counts what fell out.
func (j *MemJournal) Failures() []error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failures.snapshot()
}

// FailuresDropped reports how many failures the capped window discarded.
func (j *MemJournal) FailuresDropped() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failures.dropped
}

// Kill freezes the journal: a crashed middle-box can neither ack new writes
// nor complete old ones. In-memory state is unrecoverable by design — that
// is exactly the gap DurableJournal closes.
func (j *MemJournal) Kill() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.closed = true
}

// Close releases the journal.
func (j *MemJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.closed = true
	return nil
}
