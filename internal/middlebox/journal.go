// Package middlebox implements StorM's middle-box runtime (Section III-B):
// the packet interception API offered to tenant-defined storage services.
// A Relay terminates the spliced storage connection inside the middle-box
// VM as a pseudo-target, executes intercepted commands against a backend
// device reached through a pseudo-client connection to the next hop, and —
// in active-relay mode — acknowledges writes immediately after journaling
// them to non-volatile memory, hiding service processing and downstream
// forwarding latency from the data source.
//
// Tenant services plug in as blockdev.Device decorators around the backend
// (exactly the "read and write interfaces to the storage service
// processes" the paper describes), so encryption, monitoring, and
// replication compose by nesting.
package middlebox

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/bufpool"
	"repro/internal/obs"
)

// ErrJournalFull reports that the non-volatile buffer cannot accept more
// unacknowledged write data; the relay falls back to synchronous completion
// until space frees up.
var ErrJournalFull = errors.New("middlebox: journal full")

// EntryState tracks a journaled write through its lifecycle.
type EntryState int

// Journal entry states.
const (
	// StateAcked: the initiator has been acknowledged; the data lives only
	// in the journal.
	StateAcked EntryState = iota + 1
	// StateApplied: the write reached the backend (next hop acknowledged).
	StateApplied
	// StateFailed: the backend rejected the write after acknowledgement.
	StateFailed
)

// Entry is one journaled write. Data is pooled storage owned by the journal;
// it returns to the pool when the entry completes successfully (failed
// entries keep their data for fault-tolerance inspection).
type Entry struct {
	Seq      uint64
	LBA      uint64
	Data     []byte
	State    EntryState
	ApplyErr error

	dbuf *bufpool.Buf
}

// Journal is the middle-box's non-volatile write buffer: a copy of every
// early-acknowledged packet is kept until delivered and acknowledged by the
// next hop (Section III-B's consistency mechanism for the split
// connections). The in-memory implementation stands in for NVRAM; Capacity
// bounds outstanding bytes.
type Journal struct {
	mu       sync.Mutex
	capacity int
	used     int
	nextSeq  uint64
	entries  map[uint64]*Entry
	failures []error

	usedGauge *obs.Gauge
}

// NewJournal creates a journal holding up to capacity bytes of
// unacknowledged write data (0 means unbounded).
func NewJournal(capacity int) *Journal {
	return &Journal{
		capacity:  capacity,
		entries:   make(map[uint64]*Entry),
		usedGauge: obs.Default().Gauge("journal.used_bytes"),
	}
}

// Append records a write before it is acknowledged to the source. The data
// is copied (NVRAM persistence). It fails with ErrJournalFull when capacity
// would be exceeded.
func (j *Journal) Append(lba uint64, data []byte) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.capacity > 0 && j.used+len(data) > j.capacity {
		obs.Default().Eventf("journal", "full: %d bytes used of %d, falling back to write-through", j.used, j.capacity)
		return 0, fmt.Errorf("%w: %d bytes used of %d", ErrJournalFull, j.used, j.capacity)
	}
	j.nextSeq++
	dbuf := bufpool.Get(len(data))
	copy(dbuf.B, data)
	e := &Entry{
		Seq:   j.nextSeq,
		LBA:   lba,
		Data:  dbuf.B,
		State: StateAcked,
		dbuf:  dbuf,
	}
	j.entries[e.Seq] = e
	j.used += len(data)
	j.usedGauge.Add(int64(len(data)))
	return e.Seq, nil
}

// Complete marks the entry applied (applyErr nil) or failed, releasing its
// space on success.
func (j *Journal) Complete(seq uint64, applyErr error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[seq]
	if !ok {
		return
	}
	if applyErr != nil {
		e.State = StateFailed
		e.ApplyErr = applyErr
		j.failures = append(j.failures, fmt.Errorf("middlebox: journal seq %d (lba %d): %w", seq, e.LBA, applyErr))
		return
	}
	e.State = StateApplied
	j.used -= len(e.Data)
	j.usedGauge.Add(-int64(len(e.Data)))
	delete(j.entries, seq)
	e.Data = nil
	e.dbuf.Release()
	e.dbuf = nil
}

// Unapplied returns a snapshot of every entry whose data has not reached the
// backend — StateAcked (never dispatched) and StateFailed (dispatched, backend
// rejected) alike — sorted by sequence number. Recovery replays this list in
// order; callers must treat the entries as read-only.
func (j *Journal) Unapplied() []*Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]*Entry, 0, len(j.entries))
	for _, e := range j.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Pending returns the number of journaled-but-unapplied entries.
func (j *Journal) Pending() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, e := range j.entries {
		if e.State == StateAcked {
			n++
		}
	}
	return n
}

// UsedBytes returns the bytes held by unapplied entries.
func (j *Journal) UsedBytes() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.used
}

// Failures returns backend apply errors recorded after early
// acknowledgement — the data-loss surface existing fault-tolerance
// machinery must cover (Section III-B).
func (j *Journal) Failures() []error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]error(nil), j.failures...)
}
