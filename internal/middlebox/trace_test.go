package middlebox

import (
	"bytes"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blockdev"
	"repro/internal/initiator"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/target"
)

// TestTraceSpansAcrossTwoMiddleBoxChain verifies end-to-end trace
// propagation: a command issued by the initiator through a two-middle-box
// chain must leave per-stage latency observations at every station —
// initiator, each relay's service and forward legs, and the back-end
// target.
func TestTraceSpansAcrossTwoMiddleBoxChain(t *testing.T) {
	reg := obs.NewRegistry()

	disk, err := blockdev.NewMemDisk(512, 2048)
	if err != nil {
		t.Fatal(err)
	}
	tsrv := target.NewServer(target.WithObs(reg, obs.StageTarget))
	const iqn = "iqn.2016-04.edu.purdue.storm:vol1"
	if err := tsrv.AddTarget(iqn, disk); err != nil {
		t.Fatal(err)
	}

	relay2, err := NewRelay(Config{
		Name: "mb2",
		Mode: Active,
		Dial: func(netsim.Addr) (net.Conn, error) {
			c, s := net.Pipe()
			go tsrv.Serve(newOneShotListener(s))
			return c, nil
		},
		NextHop: netsim.Addr{Net: netsim.StorageNet, IP: "10.0.0.100", Port: 3260},
		Cost:    CostModel{MTU: 8192, BatchSize: 65536},
		Obs:     reg,
	})
	if err != nil {
		t.Fatalf("NewRelay mb2: %v", err)
	}
	relay1, err := NewRelay(Config{
		Name: "mb1",
		Mode: Passive,
		Dial: func(netsim.Addr) (net.Conn, error) {
			c, s := net.Pipe()
			go relay2.Serve(newOneShotListener(s))
			return c, nil
		},
		NextHop: netsim.Addr{Net: netsim.InstanceNet, IP: "192.168.20.2", Port: 3260},
		Cost:    CostModel{MTU: 8192, BatchSize: 65536},
		Obs:     reg,
	})
	if err != nil {
		t.Fatalf("NewRelay mb1: %v", err)
	}

	front, back := net.Pipe()
	go relay1.Serve(newOneShotListener(back))
	t.Cleanup(func() {
		relay1.Close()
		relay2.Close()
		tsrv.Close()
	})

	sess, err := initiator.Login(front, initiator.Config{
		InitiatorIQN: "iqn.vm1",
		TargetIQN:    iqn,
		Obs:          reg,
	})
	if err != nil {
		t.Fatalf("Login through chain: %v", err)
	}
	t.Cleanup(func() { _ = sess.Close() })

	want := bytes.Repeat([]byte{0xC4}, 4096)
	if err := sess.Write(16, want, 512); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := sess.Read(16, 8, 512)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("chain corrupted data")
	}

	// Collect the distinct stages that recorded at least one span,
	// stripping the .read/.write/.ctl suffix.
	snap := reg.Snapshot()
	stages := make(map[string]bool)
	for name, s := range snap.Histograms {
		if s.Count == 0 || !strings.HasPrefix(name, obs.StagePrefix) {
			continue
		}
		stage := strings.TrimPrefix(name, obs.StagePrefix)
		for _, suffix := range []string{".read", ".write", ".ctl"} {
			stage = strings.TrimSuffix(stage, suffix)
		}
		stages[stage] = true
	}
	for _, stage := range []string{
		obs.StageInitiator,
		obs.RelayServiceStage("mb1"),
		obs.RelayForwardStage("mb1"),
		obs.RelayServiceStage("mb2"),
		obs.RelayForwardStage("mb2"),
		obs.StageTarget,
	} {
		if !stages[stage] {
			t.Errorf("stage %q recorded no spans (got %v)", stage, stages)
		}
	}
	if len(stages) < 5 {
		t.Errorf("only %d distinct stages traced, want >= 5: %v", len(stages), stages)
	}
}

// delayDisk injects a settable per-request latency ahead of the inner
// device — the "slow I/O" for the tail-retention test.
type delayDisk struct {
	blockdev.Device
	delay atomic.Int64 // ns
}

func (d *delayDisk) ReadAt(p []byte, lba uint64) error {
	if ns := d.delay.Load(); ns > 0 {
		time.Sleep(time.Duration(ns))
	}
	return d.Device.ReadAt(p, lba)
}

func (d *delayDisk) WriteAt(p []byte, lba uint64) error {
	if ns := d.delay.Load(); ns > 0 {
		time.Sleep(time.Duration(ns))
	}
	return d.Device.WriteAt(p, lba)
}

// TestTracePropagationTwoMiddleBoxChain exercises the tracing plane end
// to end: with tracing enabled and every inter-station connection backed
// by a TracedPipe carrier, each command's spans — initiator root, both
// relays' service and forward legs, target — must collect under one
// stable trace ID with parent links forming a causal chain, and the
// tail-based retention must keep an injected slow read as the top
// exemplar. Run with -race: it crosses every propagation hand-off.
func TestTracePropagationTwoMiddleBoxChain(t *testing.T) {
	reg := obs.NewRegistry()
	reg.EnableTracing(obs.TraceConfig{SlowPerStage: 4, SampleEvery: -1})

	mem, err := blockdev.NewMemDisk(512, 2048)
	if err != nil {
		t.Fatal(err)
	}
	disk := &delayDisk{Device: mem}
	tsrv := target.NewServer(target.WithObs(reg, obs.StageTarget))
	const iqn = "iqn.2016-04.edu.purdue.storm:vol1"
	if err := tsrv.AddTarget(iqn, disk); err != nil {
		t.Fatal(err)
	}

	relay2, err := NewRelay(Config{
		Name: "mb2",
		Mode: Active,
		Dial: func(netsim.Addr) (net.Conn, error) {
			c, s := obs.TracedPipe()
			go tsrv.Serve(newOneShotListener(s))
			return c, nil
		},
		NextHop: netsim.Addr{Net: netsim.StorageNet, IP: "10.0.0.100", Port: 3260},
		Cost:    CostModel{MTU: 8192, BatchSize: 65536},
		Obs:     reg,
	})
	if err != nil {
		t.Fatalf("NewRelay mb2: %v", err)
	}
	relay1, err := NewRelay(Config{
		Name: "mb1",
		Mode: Passive,
		Dial: func(netsim.Addr) (net.Conn, error) {
			c, s := obs.TracedPipe()
			go relay2.Serve(newOneShotListener(s))
			return c, nil
		},
		NextHop: netsim.Addr{Net: netsim.InstanceNet, IP: "192.168.20.2", Port: 3260},
		Cost:    CostModel{MTU: 8192, BatchSize: 65536},
		Obs:     reg,
	})
	if err != nil {
		t.Fatalf("NewRelay mb1: %v", err)
	}

	front, back := obs.TracedPipe()
	go relay1.Serve(newOneShotListener(back))
	t.Cleanup(func() {
		relay1.Close()
		relay2.Close()
		tsrv.Close()
	})

	sess, err := initiator.Login(front, initiator.Config{
		InitiatorIQN: "iqn.vm1",
		TargetIQN:    iqn,
		Obs:          reg,
	})
	if err != nil {
		t.Fatalf("Login through chain: %v", err)
	}
	t.Cleanup(func() { _ = sess.Close() })

	data := bytes.Repeat([]byte{0x5A}, 4096)
	if err := sess.Write(0, data, 512); err != nil {
		t.Fatalf("Write: %v", err)
	}
	for i := 0; i < 8; i++ {
		if _, err := sess.Read(0, 8, 512); err != nil {
			t.Fatalf("fast read %d: %v", i, err)
		}
	}
	const slowDelay = 5 * time.Millisecond
	disk.delay.Store(int64(slowDelay))
	if _, err := sess.Read(0, 8, 512); err != nil {
		t.Fatalf("slow read: %v", err)
	}
	disk.delay.Store(0)

	// Downstream stations end their spans after sending the response, so
	// the deepest spans can land moments after the initiator returns (the
	// retention grace window absorbs them): poll until the slowest trace
	// carries the target stage.
	var tr obs.TraceRecord
	deadline := time.Now().Add(5 * time.Second)
	for {
		slow := reg.SlowTraces(1)
		if len(slow) == 1 {
			tr = slow[0]
			complete := false
			for _, sp := range tr.Spans {
				if sp.Stage == obs.StageTarget {
					complete = true
				}
			}
			if complete {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace never completed; got %d slow traces, spans: %+v", len(slow), tr.Spans)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if tr.Root != obs.StageInitiator {
		t.Errorf("slowest trace root = %q, want %q", tr.Root, obs.StageInitiator)
	}
	if tr.Dur < slowDelay {
		t.Errorf("slowest trace dur %v; injected slow I/O (%v) not retained as top exemplar", tr.Dur, slowDelay)
	}

	// Every span belongs to the one trace record (stable trace ID) and the
	// parent links must form a causal chain: each non-root span's parent is
	// another span of the same trace, and the deepest stage (target) must
	// reach the initiator root by walking parents.
	byID := make(map[uint64]obs.SpanRecord, len(tr.Spans))
	var rootID uint64
	for _, sp := range tr.Spans {
		if sp.ID == 0 {
			t.Fatalf("span with zero ID: %+v", sp)
		}
		byID[sp.ID] = sp
		if sp.Parent == 0 {
			if rootID != 0 {
				t.Errorf("two parentless spans (%d and %d)", rootID, sp.ID)
			}
			rootID = sp.ID
		}
	}
	if rootID == 0 || byID[rootID].Stage != obs.StageInitiator {
		t.Fatalf("no initiator root span; spans: %+v", tr.Spans)
	}
	for _, sp := range tr.Spans {
		if sp.Parent == 0 {
			continue
		}
		if _, ok := byID[sp.Parent]; !ok {
			t.Errorf("span %d (%s) has dangling parent %d", sp.ID, sp.Stage, sp.Parent)
		}
	}
	stageOf := make(map[string]obs.SpanRecord)
	for _, sp := range tr.Spans {
		stageOf[sp.Stage] = sp
	}
	for _, stage := range []string{
		obs.RelayServiceStage("mb1"), obs.RelayForwardStage("mb1"),
		obs.RelayServiceStage("mb2"), obs.RelayForwardStage("mb2"),
		obs.StageTarget,
	} {
		if _, ok := stageOf[stage]; !ok {
			t.Errorf("trace missing stage %q (spans: %+v)", stage, tr.Spans)
		}
	}
	// Walk the target span's ancestry to the root.
	if tgt, ok := stageOf[obs.StageTarget]; ok {
		seen := 0
		for cur := tgt; cur.Parent != 0; cur = byID[cur.Parent] {
			if seen++; seen > len(tr.Spans) {
				t.Fatal("parent cycle in trace")
			}
		}
		if cur := func() obs.SpanRecord { // re-walk to inspect terminus
			c := tgt
			for c.Parent != 0 {
				c = byID[c.Parent]
			}
			return c
		}(); cur.ID != rootID {
			t.Errorf("target span ancestry ends at %d (%s), want root %d", cur.ID, cur.Stage, rootID)
		}
	}
}
