package middlebox

import (
	"bytes"
	"net"
	"strings"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/initiator"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/target"
)

// TestTraceSpansAcrossTwoMiddleBoxChain verifies end-to-end trace
// propagation: a command issued by the initiator through a two-middle-box
// chain must leave per-stage latency observations at every station —
// initiator, each relay's service and forward legs, and the back-end
// target.
func TestTraceSpansAcrossTwoMiddleBoxChain(t *testing.T) {
	reg := obs.NewRegistry()

	disk, err := blockdev.NewMemDisk(512, 2048)
	if err != nil {
		t.Fatal(err)
	}
	tsrv := target.NewServer(target.WithObs(reg, obs.StageTarget))
	const iqn = "iqn.2016-04.edu.purdue.storm:vol1"
	if err := tsrv.AddTarget(iqn, disk); err != nil {
		t.Fatal(err)
	}

	relay2, err := NewRelay(Config{
		Name: "mb2",
		Mode: Active,
		Dial: func(netsim.Addr) (net.Conn, error) {
			c, s := net.Pipe()
			go tsrv.Serve(newOneShotListener(s))
			return c, nil
		},
		NextHop: netsim.Addr{Net: netsim.StorageNet, IP: "10.0.0.100", Port: 3260},
		Cost:    CostModel{MTU: 8192, BatchSize: 65536},
		Obs:     reg,
	})
	if err != nil {
		t.Fatalf("NewRelay mb2: %v", err)
	}
	relay1, err := NewRelay(Config{
		Name: "mb1",
		Mode: Passive,
		Dial: func(netsim.Addr) (net.Conn, error) {
			c, s := net.Pipe()
			go relay2.Serve(newOneShotListener(s))
			return c, nil
		},
		NextHop: netsim.Addr{Net: netsim.InstanceNet, IP: "192.168.20.2", Port: 3260},
		Cost:    CostModel{MTU: 8192, BatchSize: 65536},
		Obs:     reg,
	})
	if err != nil {
		t.Fatalf("NewRelay mb1: %v", err)
	}

	front, back := net.Pipe()
	go relay1.Serve(newOneShotListener(back))
	t.Cleanup(func() {
		relay1.Close()
		relay2.Close()
		tsrv.Close()
	})

	sess, err := initiator.Login(front, initiator.Config{
		InitiatorIQN: "iqn.vm1",
		TargetIQN:    iqn,
		Obs:          reg,
	})
	if err != nil {
		t.Fatalf("Login through chain: %v", err)
	}
	t.Cleanup(func() { _ = sess.Close() })

	want := bytes.Repeat([]byte{0xC4}, 4096)
	if err := sess.Write(16, want, 512); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := sess.Read(16, 8, 512)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("chain corrupted data")
	}

	// Collect the distinct stages that recorded at least one span,
	// stripping the .read/.write/.ctl suffix.
	snap := reg.Snapshot()
	stages := make(map[string]bool)
	for name, s := range snap.Histograms {
		if s.Count == 0 || !strings.HasPrefix(name, obs.StagePrefix) {
			continue
		}
		stage := strings.TrimPrefix(name, obs.StagePrefix)
		for _, suffix := range []string{".read", ".write", ".ctl"} {
			stage = strings.TrimSuffix(stage, suffix)
		}
		stages[stage] = true
	}
	for _, stage := range []string{
		obs.StageInitiator,
		obs.RelayServiceStage("mb1"),
		obs.RelayForwardStage("mb1"),
		obs.RelayServiceStage("mb2"),
		obs.RelayForwardStage("mb2"),
		obs.StageTarget,
	} {
		if !stages[stage] {
			t.Errorf("stage %q recorded no spans (got %v)", stage, stages)
		}
	}
	if len(stages) < 5 {
		t.Errorf("only %d distinct stages traced, want >= 5: %v", len(stages), stages)
	}
}
