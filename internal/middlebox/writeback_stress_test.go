package middlebox

import (
	"encoding/binary"
	"sync"
	"testing"

	"repro/internal/blockdev"
)

// TestWriteBackArrivalOrderStress hammers the write-back engine with
// concurrent overlapping writes (arrival order serialized by a mutex so the
// expected final state is well-defined), disjoint writers verifying
// read-your-writes, and hot-extent readers verifying non-torn blocks. Run
// with -race it also validates the interval-index locking.
func TestWriteBackArrivalOrderStress(t *testing.T) {
	const (
		bs        = 512
		hotBlocks = 32 // contested extent [0, hotBlocks)
		writers   = 4
		disjoint  = 4
		rounds    = 150
	)
	disk, err := blockdev.NewMemDisk(bs, 256)
	if err != nil {
		t.Fatal(err)
	}
	wb := NewWriteBack(disk, NewJournal(1<<20))

	// splitmix64 per goroutine: deterministic, race-free randomness.
	mkRnd := func(seed uint64) func(n int) int {
		state := seed
		return func(n int) int {
			state += 0x9e3779b97f4a7c15
			z := state
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			return int((z ^ (z >> 31)) % uint64(n))
		}
	}

	var (
		arrivalMu sync.Mutex
		version   uint32
		expected  [hotBlocks]uint32 // version whose write covers each block last
	)
	stamp := func(buf []byte, v uint32) {
		for i := 0; i < len(buf); i += 4 {
			binary.BigEndian.PutUint32(buf[i:], v)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, writers+disjoint+1)

	// Overlapping writers on the hot extent. The arrival mutex spans the
	// WriteAt call, so journal admission order == version order and the
	// engine must apply overlaps in exactly that order.
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rnd := mkRnd(uint64(g) + 1)
			buf := make([]byte, hotBlocks*bs)
			for i := 0; i < rounds; i++ {
				lba := rnd(hotBlocks - 1)
				n := 1 + rnd(hotBlocks-lba)
				arrivalMu.Lock()
				version++
				v := version
				for b := 0; b < n; b++ {
					expected[lba+b] = v
				}
				stamp(buf[:n*bs], v)
				err := wb.WriteAt(buf[:n*bs], uint64(lba))
				arrivalMu.Unlock()
				if err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}

	// Disjoint writers, each owning a private extent, checking
	// read-your-writes immediately after every early-acked write.
	for g := 0; g < disjoint; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rnd := mkRnd(uint64(g) + 100)
			base := uint64(hotBlocks + g*16)
			shadow := make([]byte, 16*bs)
			buf := make([]byte, 16*bs)
			got := make([]byte, 16*bs)
			for i := 0; i < rounds; i++ {
				lba := rnd(15)
				n := 1 + rnd(16-lba)
				stamp(buf[:n*bs], uint32(g*1000000+i))
				copy(shadow[lba*bs:], buf[:n*bs])
				if err := wb.WriteAt(buf[:n*bs], base+uint64(lba)); err != nil {
					errCh <- err
					return
				}
				// The caller may scribble on its buffer right after the
				// early ack — the engine must have copied.
				stamp(buf[:n*bs], 0xDEADBEEF)
				if err := wb.ReadAt(got, base); err != nil {
					errCh <- err
					return
				}
				for j := range got {
					if got[j] != shadow[j] {
						t.Errorf("writer %d round %d: read-your-writes violated at byte %d", g, i, j)
						return
					}
				}
			}
		}(g)
	}

	// Hot-extent reader: every block must be internally consistent (one
	// version per block, never torn mid-block).
	wg.Add(1)
	go func() {
		defer wg.Done()
		got := make([]byte, hotBlocks*bs)
		for i := 0; i < rounds; i++ {
			if err := wb.ReadAt(got, 0); err != nil {
				errCh <- err
				return
			}
			for blk := 0; blk < hotBlocks; blk++ {
				word := binary.BigEndian.Uint32(got[blk*bs:])
				for off := 4; off < bs; off += 4 {
					if w := binary.BigEndian.Uint32(got[blk*bs+off:]); w != word {
						t.Errorf("torn block %d: %d vs %d", blk, word, w)
						return
					}
				}
			}
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("stress I/O error: %v", err)
	}

	if err := wb.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	// Arrival-order apply: the backend must hold exactly the last-arrival
	// version for every hot block.
	final := make([]byte, hotBlocks*bs)
	if err := disk.ReadAt(final, 0); err != nil {
		t.Fatal(err)
	}
	for blk := 0; blk < hotBlocks; blk++ {
		if expected[blk] == 0 {
			continue // never written
		}
		for off := 0; off < bs; off += 4 {
			if w := binary.BigEndian.Uint32(final[blk*bs+off:]); w != expected[blk] {
				t.Fatalf("block %d byte %d: version %d on backend, want %d (arrival order violated)",
					blk, off, w, expected[blk])
			}
		}
	}
	if err := wb.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteBackCoalescing verifies adjacent sequential writes merge into
// fewer, larger backend applies without corrupting data.
func TestWriteBackCoalescing(t *testing.T) {
	const bs = 512
	disk, err := blockdev.NewMemDisk(bs, 1024)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	gd := &gateDisk{dev: disk, gate: gate}
	counting := blockdev.NewCountingDisk(gd)
	wb := NewWriteBack(counting, NewJournal(0))

	// One write dispatches immediately and parks on the gate; the rest
	// arrive strictly sequentially and must coalesce behind it.
	const writes = 64
	buf := make([]byte, 8*bs)
	for i := 0; i < writes; i++ {
		for j := range buf {
			buf[j] = byte(i)
		}
		if err := wb.WriteAt(buf, uint64(i*8)); err != nil {
			t.Fatalf("WriteAt %d: %v", i, err)
		}
	}
	close(gate)
	if err := wb.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	applies := counting.Writes()
	if applies >= writes {
		t.Errorf("no coalescing: %d backend applies for %d writes", applies, writes)
	}
	// Data intact?
	got := make([]byte, 8*bs)
	for i := 0; i < writes; i++ {
		if err := disk.ReadAt(got, uint64(i*8)); err != nil {
			t.Fatal(err)
		}
		for j, v := range got {
			if v != byte(i) {
				t.Fatalf("write %d corrupted at byte %d: %d", i, j, v)
			}
		}
	}
	if err := wb.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteBackCoalescingRespectsOverlap: a write adjacent to the tail but
// overlapping an older pending write must NOT merge (merging would apply it
// out of arrival order).
func TestWriteBackCoalescingRespectsOverlap(t *testing.T) {
	const bs = 512
	disk, err := blockdev.NewMemDisk(bs, 64)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	gd := &gateDisk{dev: disk, gate: gate}
	wb := NewWriteBack(gd, NewJournal(0))

	one := func(v byte, n int) []byte {
		b := make([]byte, n*bs)
		for i := range b {
			b[i] = v
		}
		return b
	}
	// A covers [4,6) and parks on the gate (dispatched).
	if err := wb.WriteAt(one(1, 2), 4); err != nil {
		t.Fatal(err)
	}
	// B covers [0,4): tail, undispatched (or dispatched — either way next).
	if err := wb.WriteAt(one(2, 4), 0); err != nil {
		t.Fatal(err)
	}
	// C covers [4,5): adjacent to B's end but overlaps A → must wait for A,
	// not coalesce into B.
	if err := wb.WriteAt(one(3, 1), 4); err != nil {
		t.Fatal(err)
	}
	close(gate)
	if err := wb.Flush(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, bs)
	if err := disk.ReadAt(got, 4); err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 {
		t.Fatalf("block 4 holds %d, want 3 (C must apply after A)", got[0])
	}
	if err := wb.Close(); err != nil {
		t.Fatal(err)
	}
}
