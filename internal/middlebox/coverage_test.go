package middlebox

import "testing"

// covModel is the brute-force reference: one owner pointer per block.
type covModel struct {
	owner []*wbItem
}

func (m *covModel) paint(lo, hi uint64, it *wbItem) []*wbItem {
	var prev []*wbItem
	for b := lo; b < hi; b++ {
		if o := m.owner[b]; o != nil {
			dup := false
			for _, p := range prev {
				if p == o {
					dup = true
				}
			}
			if !dup {
				prev = append(prev, o)
			}
		}
		m.owner[b] = it
	}
	return prev
}

func (m *covModel) overlaps(lo, hi uint64) bool {
	for b := lo; b < hi; b++ {
		if m.owner[b] != nil {
			return true
		}
	}
	return false
}

func (m *covModel) clearOwned(it *wbItem) {
	for b := it.lba; b < it.end; b++ {
		if m.owner[b] == it {
			m.owner[b] = nil
		}
	}
}

// checkCoverage validates the structural invariants (sorted, disjoint,
// non-empty ranges) and that the range set matches the per-block model.
func checkCoverage(t *testing.T, c *coverage, m *covModel) {
	t.Helper()
	var last uint64
	for i, rg := range c.r {
		if rg.start >= rg.end {
			t.Fatalf("range %d empty: [%d,%d)", i, rg.start, rg.end)
		}
		if i > 0 && rg.start < last {
			t.Fatalf("range %d [%d,%d) overlaps or disorders previous end %d", i, rg.start, rg.end, last)
		}
		if rg.owner == nil {
			t.Fatalf("range %d has nil owner", i)
		}
		last = rg.end
	}
	for b := range m.owner {
		var got *wbItem
		for _, rg := range c.r {
			if uint64(b) >= rg.start && uint64(b) < rg.end {
				got = rg.owner
			}
		}
		if got != m.owner[b] {
			t.Fatalf("block %d: coverage owner %p, model owner %p", b, got, m.owner[b])
		}
	}
}

func sameOwnerSet(a, b []*wbItem) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TestCoverageAgainstBruteForce drives the coverage map with a deterministic
// random mix of paints, owner completions, extent extensions, and overlap
// queries, cross-checking every result against a per-block model.
func TestCoverageAgainstBruteForce(t *testing.T) {
	const space = 256
	var c coverage
	m := &covModel{owner: make([]*wbItem, space)}
	live := []*wbItem{} // painted, not yet cleared

	state := uint64(42)
	rnd := func(n int) int {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return int((z ^ (z >> 31)) % uint64(n))
	}

	for step := 0; step < 6000; step++ {
		switch op := rnd(10); {
		case op < 5: // paint a new item
			lo := uint64(rnd(space - 1))
			hi := lo + 1 + uint64(rnd(space-int(lo)))
			it := &wbItem{lba: lo, end: hi}
			got := append([]*wbItem(nil), c.paint(lo, hi, it)...)
			want := m.paint(lo, hi, it)
			if !sameOwnerSet(got, want) {
				t.Fatalf("step %d: paint [%d,%d) owners %d, want %d", step, lo, hi, len(got), len(want))
			}
			live = append(live, it)
		case op < 7 && len(live) > 0: // complete a random live item
			i := rnd(len(live))
			it := live[i]
			c.clearOwned(it)
			m.clearOwned(it)
			live = append(live[:i], live[i+1:]...)
		case op < 8 && len(live) > 0: // extend a live item (coalescing path)
			it := live[len(live)-1]
			lo := it.end
			hi := lo + 1 + uint64(rnd(8))
			if hi > space || c.overlaps(lo, hi) {
				continue
			}
			c.paint(lo, hi, it)
			m.paint(lo, hi, it)
			it.end = hi
		default: // overlap query
			lo := uint64(rnd(space - 1))
			hi := lo + 1 + uint64(rnd(space-int(lo)))
			if got, want := c.overlaps(lo, hi), m.overlaps(lo, hi); got != want {
				t.Fatalf("step %d: overlaps [%d,%d) = %v, want %v", step, lo, hi, got, want)
			}
		}
		checkCoverage(t, &c, m)
	}
}

// TestCoveragePaintReturnsLastWriters pins the dependency-edge contract: a
// paint returns exactly the current owners of the extent, not every write
// that ever covered it.
func TestCoveragePaintReturnsLastWriters(t *testing.T) {
	var c coverage
	a := &wbItem{lba: 0, end: 10}
	b := &wbItem{lba: 4, end: 6}
	if got := c.paint(0, 10, a); len(got) != 0 {
		t.Fatalf("first paint returned %d owners", len(got))
	}
	if got := c.paint(4, 6, b); len(got) != 1 || got[0] != a {
		t.Fatalf("paint over a: got %v", got)
	}
	// A third write over the middle sees only b — a is shadowed there, and
	// ordering vs a flows transitively through b.
	mid := &wbItem{lba: 4, end: 6}
	if got := c.paint(4, 6, mid); len(got) != 1 || got[0] != b {
		t.Fatalf("paint over b: got %v", got)
	}
	// But a write spanning the whole extent sees both remaining owners.
	wide := &wbItem{lba: 0, end: 10}
	got := c.paint(0, 10, wide)
	if !sameOwnerSet(got, []*wbItem{a, mid}) {
		t.Fatalf("wide paint: got %d owners", len(got))
	}
	if len(c.r) != 1 || c.r[0] != (covRange{0, 10, wide}) {
		t.Fatalf("coverage after wide paint: %+v", c.r)
	}
}
